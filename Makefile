# Convenience targets for the reproduction. Everything is plain `go`
# under the hood; no other tools are required.

GO ?= go

.PHONY: all build test race bench vet results quick-results clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full suite under the race detector (exercises the sweep engine, the
# single-flight measurement cache, and the mpsim coordinator).
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment at full fidelity (~15 serial minutes,
# spread across all cores by default; see the iramsim -j flag).
results:
	$(GO) run ./cmd/iramsim all | tee full_results.txt

# CI-sized run (~1 minute).
quick-results:
	$(GO) run ./cmd/iramsim -quick all

clean:
	rm -f test_output.txt bench_output.txt
