# Convenience targets for the reproduction. Everything is plain `go`
# under the hood; no other tools are required.

GO ?= go

.PHONY: all build test race bench bench-figures bench-baseline bench-check bench-check-ci fuzz trace-cache result-cache cache-gc loadtest vet lint results quick-results results-check clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet, pinned so local and CI agree. Fetches the
# tool through the module proxy on first use (needs network; CI runs it,
# offline sandboxes can skip).
STATICCHECK_VERSION ?= 2024.1.1
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

test:
	$(GO) test ./...

# Full suite under the race detector (exercises the sweep engine, the
# single-flight measurement cache, and the mpsim coordinator).
race:
	$(GO) test -race ./...

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# The acceptance benchmarks: the single-pass measurement fast path
# (Figure 7/8 regeneration, live, trace-replay, and result-cache warm),
# the multiprocessor SPLASH runs (Figures 13-17), and the family-shared
# design-space search (replay-fed), with allocation stats.
bench-figures:
	$(GO) test -run '^$$' -bench 'Designspace$$|Fig[78](Replay|Warm)?$$|Fig1[3-7]' -benchmem -benchtime 2x .

# Record the current Fig7/Fig8 numbers as the checked-in baseline.
bench-baseline:
	$(MAKE) -s bench-figures | $(GO) run ./cmd/benchguard -write -baseline BENCH_baseline.json

# Compare against the baseline; fails on >20% ns/op or >2% allocs/op
# regression. CI uses bench-check-ci, which skips the wall-clock
# comparison (hardware-dependent) and gates on allocs/op only
# (deterministic). -require keeps the guard honest: the acceptance
# benchmarks must actually run, so the observability hooks cannot
# regress them unnoticed by a pattern that matches nothing.
BENCH_REQUIRED = BenchmarkFig7,BenchmarkFig8,BenchmarkFig7Replay,BenchmarkFig8Replay,BenchmarkFig7Warm,BenchmarkFig13LU,BenchmarkFig14MP3D,BenchmarkFig15Ocean,BenchmarkFig16Water,BenchmarkFig17Pthor,BenchmarkDesignspace

bench-check:
	$(MAKE) -s bench-figures | $(GO) run ./cmd/benchguard -baseline BENCH_baseline.json -threshold 0.20 -require $(BENCH_REQUIRED)

bench-check-ci:
	$(MAKE) -s bench-figures | $(GO) run ./cmd/benchguard -baseline BENCH_baseline.json -time=false -require $(BENCH_REQUIRED)

# Exercise the trace codec and assembler fuzz targets for a minute each
# (CI runs a 10-second smoke; this is the pre-commit depth).
FUZZTIME ?= 60s
fuzz:
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzReaderNext -fuzztime $(FUZZTIME)
	$(GO) test ./internal/trace -run '^$$' -fuzz FuzzFileRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/asm -run '^$$' -fuzz FuzzAssemble -fuzztime $(FUZZTIME)

# Pre-record every workload's reference stream into the local trace
# cache; later `iramsim -replay $(TRACE_DIR) ...` runs skip the VM.
TRACE_DIR ?= .trace-cache
trace-cache:
	$(GO) run ./cmd/iramsim -record $(TRACE_DIR)

# Pre-warm the on-disk result cache with one full-fidelity pass over
# every experiment; later `iramsim` runs (same fidelity) decode the
# assembled results instead of re-simulating. The cache is on by
# default under $(RESULT_DIR); -no-result-cache opts out.
RESULT_DIR ?= .result-cache
result-cache:
	$(GO) run ./cmd/iramsim -result-cache $(RESULT_DIR) all > /dev/null

# Prune the result cache to a size cap (oldest entries evicted first;
# every evicted entry regenerates on the next miss).
CACHE_MAX_BYTES ?= 268435456
cache-gc:
	$(GO) run ./cmd/iramsim -result-cache $(RESULT_DIR) -result-cache-max-bytes $(CACHE_MAX_BYTES)

# Self-contained iramsimd load test: warm the cache, then serve
# LOADTEST_N concurrent overlapping requests entirely from cache while
# a saturated probe server sheds load with 429s.
LOADTEST_N ?= 8
loadtest:
	$(GO) run ./cmd/iramsimd -loadtest $(LOADTEST_N) -j 4

# Regenerate every experiment at full fidelity (~15 serial minutes,
# spread across all cores by default; see the iramsim -j flag).
results:
	$(GO) run ./cmd/iramsim all | tee full_results.txt

# CI-sized run (~1 minute).
quick-results:
	$(GO) run ./cmd/iramsim -quick all

# Regenerate the full results and compare byte-for-byte against the
# checked-in golden transcript (testdata/full_results.txt). A diff means
# the reproduction's numbers moved: either a regression, or a deliberate
# change that should update the golden (cp full_results.txt
# testdata/full_results.txt) with an explanation in the commit.
results-check: results
	diff -u testdata/full_results.txt full_results.txt

clean:
	rm -f test_output.txt bench_output.txt
