# Convenience targets for the reproduction. Everything is plain `go`
# under the hood; no other tools are required.

GO ?= go

.PHONY: all build test bench vet results quick-results clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One benchmark per paper table/figure plus the ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment at full fidelity (~15 minutes).
results:
	$(GO) run ./cmd/iramsim all | tee full_results.txt

# CI-sized run (~1 minute).
quick-results:
	$(GO) run ./cmd/iramsim -quick all

clean:
	rm -f test_output.txt bench_output.txt
