package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFig7-8    	       2	 205000000 ns/op	        15.81 fpppp_advantage_x	 1048576 B/op	    2444 allocs/op
BenchmarkFig8-8    	       2	 206000000 ns/op	         7.20 tomcatv_victim_gain_x	  524288 B/op	    1200 allocs/op
PASS
ok  	repro	1.234s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2: %+v", len(got), got)
	}
	f7, ok := got["BenchmarkFig7"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %+v", got)
	}
	if f7.NsPerOp != 205000000 || f7.BytesPerOp != 1048576 || f7.AllocsPerOp != 2444 {
		t.Errorf("Fig7 = %+v", f7)
	}
	if f8 := got["BenchmarkFig8"]; f8.AllocsPerOp != 1200 {
		t.Errorf("Fig8 = %+v", f8)
	}
}

func TestParseBenchIgnoresNonBenchLines(t *testing.T) {
	got, err := parseBench(strings.NewReader("PASS\nok repro 1s\n--- FAIL: TestX\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("parsed %d benchmarks from non-bench output", len(got))
	}
}

func TestCompareDetectsRegressions(t *testing.T) {
	base := map[string]Result{
		"BenchmarkFig7": {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkFig8": {NsPerOp: 100, AllocsPerOp: 1000},
		"BenchmarkGone": {NsPerOp: 100, AllocsPerOp: 1000},
	}
	cur := map[string]Result{
		"BenchmarkFig7": {NsPerOp: 125, AllocsPerOp: 1000}, // +25% time
		"BenchmarkFig8": {NsPerOp: 100, AllocsPerOp: 1100}, // +10% allocs
		"BenchmarkNew":  {NsPerOp: 50, AllocsPerOp: 10},
	}
	_, failures := compare(base, cur, 0.20, 0.02, true)
	if len(failures) != 3 {
		t.Fatalf("got %d failures, want 3 (time, allocs, missing): %v", len(failures), failures)
	}
	joined := strings.Join(failures, "\n")
	for _, want := range []string{"BenchmarkFig7: ns/op", "BenchmarkFig8: allocs/op", "BenchmarkGone"} {
		if !strings.Contains(joined, want) {
			t.Errorf("failures missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareTimeDisabled(t *testing.T) {
	base := map[string]Result{"BenchmarkFig7": {NsPerOp: 100, AllocsPerOp: 1000}}
	cur := map[string]Result{"BenchmarkFig7": {NsPerOp: 900, AllocsPerOp: 1000}}
	if _, failures := compare(base, cur, 0.20, 0.02, false); len(failures) != 0 {
		t.Errorf("time comparison not disabled: %v", failures)
	}
}

func TestMissingRequired(t *testing.T) {
	current := map[string]Result{
		"BenchmarkFig7":  {NsPerOp: 1},
		"BenchmarkFig13": {NsPerOp: 1},
	}
	if m := missingRequired("", current); len(m) != 0 {
		t.Errorf("empty require list reported missing: %v", m)
	}
	if m := missingRequired("BenchmarkFig7, BenchmarkFig13", current); len(m) != 0 {
		t.Errorf("present benchmarks reported missing: %v", m)
	}
	m := missingRequired("BenchmarkFig7,BenchmarkFig14,BenchmarkFig15", current)
	if len(m) != 2 || m[0] != "BenchmarkFig14" || m[1] != "BenchmarkFig15" {
		t.Errorf("missingRequired = %v, want [BenchmarkFig14 BenchmarkFig15]", m)
	}
}

func TestComparePassesWithinThreshold(t *testing.T) {
	base := map[string]Result{"BenchmarkFig7": {NsPerOp: 100, AllocsPerOp: 1000}}
	cur := map[string]Result{"BenchmarkFig7": {NsPerOp: 115, AllocsPerOp: 1010}}
	if _, failures := compare(base, cur, 0.20, 0.02, true); len(failures) != 0 {
		t.Errorf("within-threshold run failed: %v", failures)
	}
}
