// Command benchguard parses `go test -bench -benchmem` output and
// compares it against a checked-in JSON baseline, benchstat-style: any
// benchmark whose ns/op or allocs/op regresses past the threshold
// fails the run. It is the CI tripwire behind `make bench-check`.
//
// Usage:
//
//	go test -run '^$' -bench 'Fig[78]' -benchmem . | benchguard -baseline BENCH_baseline.json
//	go test -run '^$' -bench 'Fig[78]' -benchmem . | benchguard -write -baseline BENCH_baseline.json
//
// Flags:
//
//	-baseline f    JSON baseline file to compare against (or write)
//	-write         record the parsed results as the new baseline
//	-threshold x   allowed relative ns/op increase (default 0.20)
//	-allocs x      allowed relative allocs/op increase (default 0.02)
//	-time          compare ns/op (default true; CI disables it because
//	               wall-clock time is hardware-dependent, while
//	               allocs/op is deterministic)
//	-require list  comma-separated benchmark names that must appear in
//	               this run; fails if any are missing (keeps the guard
//	               honest when a -bench pattern silently matches nothing)
//
// The benchmark name is keyed with its -GOMAXPROCS suffix stripped, so
// baselines recorded on one core count compare on another.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result holds the metrics benchguard tracks for one benchmark.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the on-disk JSON schema.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "JSON baseline file")
	write := flag.Bool("write", false, "record parsed results as the new baseline")
	threshold := flag.Float64("threshold", 0.20, "allowed relative ns/op increase")
	allocThreshold := flag.Float64("allocs", 0.02, "allowed relative allocs/op increase")
	useTime := flag.Bool("time", true, "compare ns/op (disable in CI: wall time is hardware-dependent)")
	require := flag.String("require", "", "comma-separated benchmark names that must appear in this run")
	flag.Parse()

	current, err := parseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(current) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin"))
	}
	if missing := missingRequired(*require, current); len(missing) > 0 {
		fatal(fmt.Errorf("required benchmark(s) missing from this run: %s", strings.Join(missing, ", ")))
	}

	if *write {
		b := Baseline{
			Note:       "regenerate with `make bench-baseline`; compared by `make bench-check`",
			Benchmarks: current,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(fmt.Errorf("%v (run `make bench-baseline` to create it)", err))
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		fatal(fmt.Errorf("%s: %v", *baselinePath, err))
	}

	report, failures := compare(base.Benchmarks, current, *threshold, *allocThreshold, *useTime)
	fmt.Print(report)
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("benchguard: ok")
}

// parseBench extracts Result lines from `go test -bench` output.
// Benchmark lines look like
//
//	BenchmarkFig7-8  2  205000000 ns/op  1048576 B/op  2444 allocs/op  15.8 fpppp_advantage_x
//
// i.e. a name, an iteration count, then value/unit pairs. Custom
// metrics are ignored; the -GOMAXPROCS suffix is stripped from the key.
func parseBench(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count; e.g. "BenchmarkX ... FAIL"
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res Result
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		out[name] = res
	}
	return out, sc.Err()
}

// compare checks every baseline benchmark against the current run and
// returns a rendered table plus the list of regression messages. A
// baseline entry missing from the current run is a failure (it keeps
// the baseline in sync with the bench set); a new benchmark absent
// from the baseline is reported but does not fail.
func compare(base, current map[string]Result, threshold, allocThreshold float64, useTime bool) (string, []string) {
	var sb strings.Builder
	var failures []string
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&sb, "%-28s %14s %14s %8s %12s %12s %8s\n",
		"benchmark", "base ns/op", "cur ns/op", "Δtime", "base allocs", "cur allocs", "Δallocs")
	for _, name := range names {
		b := base[name]
		c, ok := current[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but not in this run", name))
			fmt.Fprintf(&sb, "%-28s %14.0f %14s\n", name, b.NsPerOp, "MISSING")
			continue
		}
		dt := rel(b.NsPerOp, c.NsPerOp)
		da := rel(b.AllocsPerOp, c.AllocsPerOp)
		fmt.Fprintf(&sb, "%-28s %14.0f %14.0f %+7.1f%% %12.0f %12.0f %+7.1f%%\n",
			name, b.NsPerOp, c.NsPerOp, 100*dt, b.AllocsPerOp, c.AllocsPerOp, 100*da)
		if useTime && dt > threshold {
			failures = append(failures, fmt.Sprintf("%s: ns/op %+.1f%% (limit %+.0f%%)",
				name, 100*dt, 100*threshold))
		}
		if da > allocThreshold {
			failures = append(failures, fmt.Sprintf("%s: allocs/op %+.1f%% (limit %+.0f%%)",
				name, 100*da, 100*allocThreshold))
		}
	}
	for name := range current {
		if _, ok := base[name]; !ok {
			fmt.Fprintf(&sb, "%-28s (new; not in baseline — rerun `make bench-baseline` to record)\n", name)
		}
	}
	return sb.String(), failures
}

// missingRequired returns the names from the comma-separated require
// list (suffix-stripped keys, e.g. "BenchmarkFig7") absent from the
// parsed run, in list order.
func missingRequired(require string, current map[string]Result) []string {
	var missing []string
	for _, name := range strings.Split(require, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := current[name]; !ok {
			missing = append(missing, name)
		}
	}
	return missing
}

// rel returns (cur-base)/base, treating a zero baseline as no change
// unless the current value is nonzero (then it is an unbounded
// regression only if positive).
func rel(base, cur float64) float64 {
	if base == 0 {
		if cur == 0 {
			return 0
		}
		return 1 // grew from zero: report +100%
	}
	return (cur - base) / base
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
