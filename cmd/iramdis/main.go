// Command iramdis decodes a program image (.img) back to canonical
// assembly source. The output is exact: reassembling it with iramasm
// produces a byte-identical image, and -roundtrip proves that on the
// spot. Labels are recovered from the image's symbol table; data
// segments are re-expressed as .data/.org/.byte/.dword directives.
//
// Usage:
//
//	iramdis [-o out.s] [-roundtrip] file.img|file.s
//	iramdis [-o out.s] [-roundtrip] -workload NAME
//	iramdis -list
//
// A .s argument is assembled first, which makes
// `iramdis -roundtrip file.s` a one-step canonicality check for
// hand-written sources. -workload disassembles a registered workload
// generator's image without writing it to disk; -list prints the
// registered workload names.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/asm"
	"repro/internal/dis"
	"repro/internal/isa"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "iramdis:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("iramdis", flag.ContinueOnError)
	wl := fs.String("workload", "", "disassemble a registered workload instead of a file")
	out := fs.String("o", "", "output assembly file (default stdout)")
	roundtrip := fs.Bool("roundtrip", false, "verify the output reassembles byte-identical")
	list := fs.Bool("list", false, "print registered workload names and exit")
	fs.SetOutput(os.Stderr)
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, `usage:
  iramdis [-o out.s] [-roundtrip] file.img|file.s
  iramdis [-o out.s] [-roundtrip] -workload NAME
  iramdis -list`)
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, w := range workload.All() {
			fmt.Fprintln(stdout, w.Name)
		}
		return nil
	}

	var p *isa.Program
	switch {
	case *wl != "":
		if fs.NArg() != 0 {
			return fmt.Errorf("-workload and a file argument are mutually exclusive")
		}
		w, err := workload.ByName(*wl)
		if err != nil {
			return err
		}
		p = w.Build()
	case fs.NArg() == 1:
		var err error
		p, err = loadProgram(fs.Arg(0))
		if err != nil {
			return err
		}
	default:
		fs.Usage()
		return fmt.Errorf("need one file argument or -workload NAME")
	}

	src, err := dis.Disassemble(p)
	if err != nil {
		return err
	}
	if *roundtrip {
		if err := dis.RoundTrip(p); err != nil {
			return err
		}
	}
	if *out != "" {
		return os.WriteFile(*out, []byte(src), 0o644)
	}
	_, err = io.WriteString(stdout, src)
	return err
}

// loadProgram reads either assembly source or a prebuilt image,
// selected by the .img extension (mirrors iramasm's loader).
func loadProgram(path string) (*isa.Program, error) {
	if strings.HasSuffix(path, ".img") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return isa.ReadImage(f)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(string(src))
}
