package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRunWorkloadRoundTrip(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-roundtrip", "-workload", "hashjoin"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "main:") {
		t.Errorf("disassembly missing main label:\n%.400s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	names := strings.Fields(out.String())
	if len(names) != len(workload.All()) {
		t.Errorf("-list printed %d names, want %d", len(names), len(workload.All()))
	}
}

func TestRunFileAndOutput(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "demo.s")
	if err := os.WriteFile(src, []byte("main:\tli r1, 42\n\thalt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "demo.dis.s")
	var stdout bytes.Buffer
	if err := run([]string{"-roundtrip", "-o", out, src}, &stdout); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "addi r1, r0, 42") {
		t.Errorf("unexpected disassembly:\n%s", b)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no arguments accepted")
	}
	if err := run([]string{"-workload", "nonesuch"}, &out); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := run([]string{"-workload", "gemm", "extra.s"}, &out); err == nil {
		t.Error("-workload with a file argument accepted")
	}
	if err := run([]string{"/nonexistent.img"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
