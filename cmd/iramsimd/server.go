package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resultstore"
	"repro/internal/runner"
	"repro/internal/sweep"
)

// serverConfig sizes the daemon. The zero value is unusable; newServer
// applies the defaults noted on each field.
type serverConfig struct {
	Queue         int                // pending-run queue capacity (default 8)
	MaxRuns       int                // concurrent executor count (default 2)
	Workers       int                // sweep workers per run (default 1)
	Store         *resultstore.Store // shared result cache; nil = no cache
	CacheMaxBytes int64              // prune the store to this after each run (0 = never)
	Obs           *obs.Registry      // daemon-wide metrics (required)
	// RunFn is the execution seam; tests stub it. Defaults to runner.Run.
	RunFn func(context.Context, runner.Request, runner.Config) error
}

// server is the simulation service: a bounded queue of runs drained by
// a fixed executor pool, every run sharing one result store so
// overlapping requests single-flight their common units. All state
// transitions happen under mu; queue sends also happen under mu so the
// drain-time close(queue) can never race a send.
type server struct {
	cfg serverConfig
	mux *http.ServeMux

	mu       sync.Mutex
	draining bool
	queue    chan *run
	runs     map[string]*run
	nextID   int
	wg       sync.WaitGroup // executors

	mQueueDepth *obs.Gauge
	mActive     *obs.Gauge
	mAccepted   *obs.Counter
	mRejected   *obs.Counter
	mCanceled   *obs.Counter
	mCompleted  *obs.Counter
	mFailed     *obs.Counter
	mCacheHits  *obs.Counter
	mCacheMiss  *obs.Counter
}

// run is one submitted request moving through queued -> running ->
// done|failed|canceled. Events and output accumulate under mu; cond
// broadcasts wake every streaming reader on each append.
type run struct {
	id     string
	req    runner.Request
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	state  string
	errMsg string
	events []json.RawMessage
	output bytes.Buffer
	closed bool          // terminal: no more events will arrive
	done   chan struct{} // closed with closed=true
}

func newRun(id string, req runner.Request) *run {
	ctx, cancel := context.WithCancel(context.Background())
	ru := &run{id: id, req: req, ctx: ctx, cancel: cancel,
		state: "queued", done: make(chan struct{})}
	ru.cond = sync.NewCond(&ru.mu)
	return ru
}

// appendEvent marshals v onto the run's event log and wakes readers.
func (ru *run) appendEvent(v interface{}) {
	b, err := json.Marshal(v)
	if err != nil {
		return // event shapes are static; unreachable in practice
	}
	ru.mu.Lock()
	ru.events = append(ru.events, b)
	ru.mu.Unlock()
	ru.cond.Broadcast()
}

// finish moves the run to a terminal state exactly once.
func (ru *run) finish(state, errMsg string) {
	ru.mu.Lock()
	if ru.closed {
		ru.mu.Unlock()
		return
	}
	ru.state = state
	ru.errMsg = errMsg
	ru.closed = true
	ru.mu.Unlock()
	ru.cond.Broadcast()
	close(ru.done)
}

func (ru *run) snapshot() (state, errMsg string, events, outputBytes int) {
	ru.mu.Lock()
	defer ru.mu.Unlock()
	return ru.state, ru.errMsg, len(ru.events), ru.output.Len()
}

// lockedOutput serializes the runner's rendering goroutine against
// HTTP readers of the same buffer.
type lockedOutput struct{ ru *run }

func (w lockedOutput) Write(p []byte) (int, error) {
	w.ru.mu.Lock()
	defer w.ru.mu.Unlock()
	return w.ru.output.Write(p)
}

func newServer(cfg serverConfig) *server {
	if cfg.Queue <= 0 {
		cfg.Queue = 8
	}
	if cfg.MaxRuns <= 0 {
		cfg.MaxRuns = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.RunFn == nil {
		cfg.RunFn = runner.Run
	}
	s := &server{
		cfg:   cfg,
		queue: make(chan *run, cfg.Queue),
		runs:  make(map[string]*run),

		mQueueDepth: cfg.Obs.Gauge("iramsimd", "queue_depth"),
		mActive:     cfg.Obs.Gauge("iramsimd", "active_runs"),
		mAccepted:   cfg.Obs.Counter("iramsimd", "runs_accepted"),
		mRejected:   cfg.Obs.Counter("iramsimd", "runs_rejected"),
		mCanceled:   cfg.Obs.Counter("iramsimd", "runs_canceled"),
		mCompleted:  cfg.Obs.Counter("iramsimd", "runs_completed"),
		mFailed:     cfg.Obs.Counter("iramsimd", "runs_failed"),
		mCacheHits:  cfg.Obs.Counter("iramsimd", "cache_hits"),
		mCacheMiss:  cfg.Obs.Counter("iramsimd", "cache_misses"),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/runs/{id}/output", s.handleOutput)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	cfg.Obs.DebugHandlers(mux)
	s.mux = mux
	for i := 0; i < cfg.MaxRuns; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

func (s *server) Handler() http.Handler { return s.mux }

// submit enqueues a validated request. The queue send happens under mu
// after the draining check, so it can never race beginDrain's close.
func (s *server) submit(req runner.Request) (*run, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, http.StatusServiceUnavailable, errors.New("server is draining")
	}
	s.nextID++
	ru := newRun(fmt.Sprintf("r%d", s.nextID), req)
	select {
	case s.queue <- ru:
	default:
		s.nextID--  // id was never visible; reuse it
		ru.cancel() // release the context before discarding the run
		s.mRejected.Inc()
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d pending)", cap(s.queue))
	}
	s.runs[ru.id] = ru
	s.mAccepted.Inc()
	s.mQueueDepth.Set(int64(len(s.queue)))
	ru.appendEvent(map[string]interface{}{"type": "queued", "run": ru.id})
	return ru, http.StatusAccepted, nil
}

func (s *server) lookup(id string) *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.runs[id]
}

// executor drains the queue until beginDrain closes it.
func (s *server) executor() {
	defer s.wg.Done()
	for ru := range s.queue {
		s.mQueueDepth.Set(int64(len(s.queue)))
		s.execute(ru)
	}
}

// execute runs one dequeued request to its terminal state.
func (s *server) execute(ru *run) {
	if ru.ctx.Err() != nil { // canceled while still queued
		s.mCanceled.Inc()
		ru.appendEvent(map[string]interface{}{"type": "done", "run": ru.id, "state": "canceled"})
		ru.finish("canceled", context.Canceled.Error())
		return
	}
	s.mActive.Add(1)
	defer s.mActive.Add(-1)
	ru.mu.Lock()
	ru.state = "running"
	ru.mu.Unlock()
	ru.appendEvent(map[string]interface{}{"type": "start", "run": ru.id})

	// Per-run registry: the run's own cache hit ratio is part of its
	// result, then folds into the daemon-wide totals.
	reg := obs.NewRegistry()
	// A nil *Store must stay a nil interface, or the engine would call
	// methods on a typed-nil cache.
	var cache sweep.ResultCache
	if s.cfg.Store != nil {
		cache = s.cfg.Store
	}
	err := s.cfg.RunFn(ru.ctx, ru.req, runner.Config{
		Workers:     s.cfg.Workers,
		Out:         lockedOutput{ru},
		Obs:         reg,
		ResultCache: cache,
		OnUnit: func(ev sweep.UnitEvent) {
			e := map[string]interface{}{
				"type": "unit", "job": ev.Job, "unit": ev.Unit,
				"completed": ev.Completed, "total": ev.Total,
			}
			if ev.Skipped {
				e["skipped"] = true
			}
			if ev.Err != nil {
				e["error"] = ev.Err.Error()
			}
			if ev.Elapsed > 0 {
				e["elapsed_ms"] = float64(ev.Elapsed) / float64(time.Millisecond)
			}
			ru.appendEvent(e)
		},
		OnResult: func(r runner.Result) {
			ru.appendEvent(map[string]interface{}{
				"type": "result", "experiment": r.Name, "units": r.Units,
				"elapsed_ms": float64(r.Elapsed) / float64(time.Millisecond),
			})
		},
	})

	hits := reg.Counter("resultcache", "hits").Value()
	misses := reg.Counter("resultcache", "misses").Value()
	s.mCacheHits.Add(hits)
	s.mCacheMiss.Add(misses)

	state, errMsg := "done", ""
	switch {
	case err == nil:
		s.mCompleted.Inc()
	case errors.Is(err, context.Canceled):
		state, errMsg = "canceled", err.Error()
		s.mCanceled.Inc()
	default:
		state, errMsg = "failed", err.Error()
		s.mFailed.Inc()
	}
	_, _, _, outBytes := ru.snapshot()
	ev := map[string]interface{}{
		"type": "done", "run": ru.id, "state": state,
		"cache_hits": hits, "cache_misses": misses, "output_bytes": outBytes,
	}
	if errMsg != "" {
		ev["error"] = errMsg
	}
	ru.appendEvent(ev)
	ru.finish(state, errMsg)

	if s.cfg.CacheMaxBytes > 0 && s.cfg.Store != nil {
		_, _, _ = s.cfg.Store.Prune(s.cfg.CacheMaxBytes)
	}
}

// beginDrain rejects new submissions and closes the queue so executors
// exit once it is empty.
func (s *server) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	close(s.queue)
}

// cancelAll cancels every run that has not reached a terminal state.
func (s *server) cancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ru := range s.runs {
		ru.cancel()
	}
}

// drain gracefully shuts the run pipeline down: no new work, queued and
// in-flight runs finish, and past the deadline everything left is
// canceled (in-flight units still complete; queued ones are skipped).
func (s *server) drain(timeout time.Duration) {
	s.beginDrain()
	idle := make(chan struct{})
	go func() { s.wg.Wait(); close(idle) }()
	select {
	case <-idle:
	case <-time.After(timeout):
		s.cancelAll()
		<-idle
	}
}

// ---------------------------------------------------------------------
// HTTP handlers.
// ---------------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// handleSubmit accepts a runner.Request JSON body. Malformed bodies and
// invalid requests are 400s with the validation error verbatim; a full
// queue is 429 + Retry-After; a draining server is 503. With ?stream=1
// the response streams the run's events until it finishes, and closing
// the connection early cancels the run — a ^C on the curl is a cancel.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req runner.Request
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ru, status, err := s.submit(req)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, err)
		return
	}
	if r.URL.Query().Get("stream") != "" {
		s.streamEvents(w, r, ru, true)
		return
	}
	writeJSON(w, status, map[string]string{
		"id":     ru.id,
		"state":  "queued",
		"events": "/v1/runs/" + ru.id + "/events",
		"output": "/v1/runs/" + ru.id + "/output",
	})
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.runs))
	for id := range s.runs {
		ids = append(ids, id)
	}
	runs := make([]*run, 0, len(ids))
	for _, id := range ids {
		runs = append(runs, s.runs[id])
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })
	out := make([]map[string]interface{}, 0, len(runs))
	for _, ru := range runs {
		state, _, _, _ := ru.snapshot()
		out = append(out, map[string]interface{}{"id": ru.id, "state": state})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(r.PathValue("id"))
	if ru == nil {
		writeError(w, http.StatusNotFound, errors.New("no such run"))
		return
	}
	state, errMsg, events, outBytes := ru.snapshot()
	v := map[string]interface{}{
		"id": ru.id, "state": state, "events": events, "output_bytes": outBytes,
	}
	if errMsg != "" {
		v["error"] = errMsg
	}
	writeJSON(w, http.StatusOK, v)
}

// handleEvents replays the run's event log from the start and follows
// it live until the run reaches a terminal state. NDJSON by default,
// server-sent events when the client asks for text/event-stream.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(r.PathValue("id"))
	if ru == nil {
		writeError(w, http.StatusNotFound, errors.New("no such run"))
		return
	}
	s.streamEvents(w, r, ru, false)
}

// streamEvents writes the run's events to the client as they arrive.
// When cancelOnDisconnect is set (the streaming submit path), the
// client hanging up before the run finishes cancels the run.
func (s *server) streamEvents(w http.ResponseWriter, r *http.Request, ru *run, cancelOnDisconnect bool) {
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	ctx := r.Context()
	// Wake the wait loop when the client goes away. Firing after the
	// run finished is harmless: cancel on a terminal run is a no-op.
	stop := context.AfterFunc(ctx, func() {
		if cancelOnDisconnect {
			ru.cancel()
		}
		ru.cond.Broadcast()
	})
	defer stop()

	i := 0
	for {
		ru.mu.Lock()
		for i >= len(ru.events) && !ru.closed && ctx.Err() == nil {
			ru.cond.Wait()
		}
		batch := ru.events[i:]
		i = len(ru.events)
		closed := ru.closed
		ru.mu.Unlock()
		if ctx.Err() != nil {
			return
		}
		for _, e := range batch {
			if sse {
				fmt.Fprintf(w, "data: %s\n\n", e)
			} else {
				_, _ = w.Write(append(e, '\n'))
			}
		}
		if fl != nil {
			fl.Flush()
		}
		if closed {
			return
		}
	}
}

// handleOutput blocks until the run finishes, then returns the rendered
// experiment output — the same bytes `iramsim <names>` prints, which is
// what makes warm responses byte-comparable across transports.
func (s *server) handleOutput(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(r.PathValue("id"))
	if ru == nil {
		writeError(w, http.StatusNotFound, errors.New("no such run"))
		return
	}
	select {
	case <-ru.done:
	case <-r.Context().Done():
		return
	}
	state, errMsg, _, _ := ru.snapshot()
	switch state {
	case "failed":
		writeError(w, http.StatusInternalServerError, errors.New(errMsg))
		return
	case "canceled":
		writeError(w, http.StatusConflict, errors.New("run canceled"))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ru.mu.Lock()
	out := append([]byte(nil), ru.output.Bytes()...)
	ru.mu.Unlock()
	_, _ = w.Write(out)
}

// handleCancel requests cancellation: queued units are abandoned,
// in-flight units finish. The run reaches "canceled" asynchronously.
func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	ru := s.lookup(r.PathValue("id"))
	if ru == nil {
		writeError(w, http.StatusNotFound, errors.New("no such run"))
		return
	}
	ru.cancel()
	state, _, _, _ := ru.snapshot()
	writeJSON(w, http.StatusAccepted, map[string]string{"id": ru.id, "state": state})
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
