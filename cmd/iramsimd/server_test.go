package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resultstore"
	"repro/internal/runner"
	"repro/internal/sweep"
)

// newTestServer stands up a server with the given config defaulted for
// tests and tears it down with the test.
func newTestServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	s := newServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.drain(10 * time.Second)
	})
	return s, ts
}

func post(t *testing.T, url string, req runner.Request) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func submitID(t *testing.T, ts *httptest.Server, req runner.Request) string {
	t.Helper()
	resp := post(t, ts.URL+"/v1/runs", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: %s: %s", resp.Status, b)
	}
	var v struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v.ID
}

// waitState polls the run until it reaches a terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/runs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch v.State {
		case "done", "failed", "canceled":
			return v.State
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s never reached a terminal state", id)
	return ""
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %s", resp.Status)
	}
}

func TestSubmitBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{})
	cases := []struct {
		name, body, want string
	}{
		{"malformed", `{`, "bad request body"},
		{"unknown-field", `{"experiments":["fig7"],"bogus":1}`, "bad request body"},
		{"no-experiments", `{}`, "no experiments"},
		{"unknown-experiment", `{"experiments":["fig99"]}`, `unknown experiment \"fig99\"`},
		{"bad-machine", `{"experiments":["fig7"],"machine":{"Banks":0}}`, "machine config"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %s, want 400 (%s)", resp.Status, b)
			}
			if !strings.Contains(string(b), c.want) {
				t.Errorf("body = %s, want %q", b, c.want)
			}
		})
	}
}

// TestSubmitStreamsEvents: a stubbed run's unit events, result event,
// and terminal done event arrive over the streaming submit, and the
// output endpoint returns what the stub rendered.
func TestSubmitStreamsEvents(t *testing.T) {
	stub := func(ctx context.Context, req runner.Request, cfg runner.Config) error {
		cfg.OnUnit(sweep.UnitEvent{Job: "fig7", Unit: "u0", Completed: 1, Total: 2})
		cfg.OnUnit(sweep.UnitEvent{Job: "fig7", Unit: "u1", Completed: 2, Total: 2})
		fmt.Fprintln(cfg.Out, "rendered table")
		cfg.OnResult(runner.Result{Name: "fig7", Units: 2})
		return nil
	}
	_, ts := newTestServer(t, serverConfig{RunFn: stub})

	resp := post(t, ts.URL+"/v1/runs?stream=1", runner.Request{Experiments: []string{"fig7"}})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream submit = %s", resp.Status)
	}
	var types []string
	var id string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			Run   string `json:"run"`
			State string `json:"state"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event %q: %v", sc.Text(), err)
		}
		if ev.Run != "" {
			id = ev.Run
		}
		types = append(types, ev.Type)
		if ev.Type == "done" && ev.State != "done" {
			t.Errorf("done state = %q", ev.State)
		}
	}
	want := []string{"queued", "start", "unit", "unit", "result", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Errorf("event types = %v, want %v", types, want)
	}

	out, err := http.Get(ts.URL + "/v1/runs/" + id + "/output")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Body.Close()
	b, _ := io.ReadAll(out.Body)
	if string(b) != "rendered table\n" {
		t.Errorf("output = %q", b)
	}
}

// TestQueueFullRejects: with one executor blocked and the queue full,
// the next submission is shed with 429 + Retry-After — and accepted
// runs still complete once the blockage clears.
func TestQueueFullRejects(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, req runner.Request, cfg runner.Config) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	_, ts := newTestServer(t, serverConfig{Queue: 1, MaxRuns: 1, RunFn: stub})
	req := runner.Request{Experiments: []string{"fig7"}}

	running := submitID(t, ts, req) // occupies the executor
	queued := submitID(t, ts, req)  // fills the queue

	// Third must bounce. Allow a moment for the executor to dequeue the
	// first run (the queue slot frees asynchronously).
	deadline := time.Now().Add(5 * time.Second)
	var resp *http.Response
	for {
		resp = post(t, ts.URL+"/v1/runs", req)
		if resp.StatusCode == http.StatusTooManyRequests || time.Now().After(deadline) {
			break
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %s", resp.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit = %s, want 429", resp.Status)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(release)
	if got := waitState(t, ts, running); got != "done" {
		t.Errorf("first run = %q", got)
	}
	if got := waitState(t, ts, queued); got != "done" {
		t.Errorf("queued run = %q", got)
	}
}

// TestCancelFreesQueuedRun: DELETE on a queued run resolves it to
// canceled without executing it, and the executor moves on.
func TestCancelFreesQueuedRun(t *testing.T) {
	release := make(chan struct{})
	var executed []string
	stub := func(ctx context.Context, req runner.Request, cfg runner.Config) error {
		executed = append(executed, req.Experiments[0])
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	_, ts := newTestServer(t, serverConfig{Queue: 2, MaxRuns: 1, RunFn: stub})

	running := submitID(t, ts, runner.Request{Experiments: []string{"fig7"}})
	victim := submitID(t, ts, runner.Request{Experiments: []string{"fig8"}})

	del, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+victim, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %s", dresp.Status)
	}

	close(release)
	if got := waitState(t, ts, victim); got != "canceled" {
		t.Errorf("canceled-while-queued run = %q", got)
	}
	if got := waitState(t, ts, running); got != "done" {
		t.Errorf("running run = %q", got)
	}
	for _, name := range executed {
		if name == "fig8" {
			t.Error("canceled run was executed")
		}
	}
}

// TestStreamDisconnectCancels: the submitter hanging up on a streaming
// POST cancels the run — abandoned requests never hold a worker.
func TestStreamDisconnectCancels(t *testing.T) {
	started := make(chan struct{})
	stub := func(ctx context.Context, req runner.Request, cfg runner.Config) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}
	_, ts := newTestServer(t, serverConfig{RunFn: stub})

	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(runner.Request{Experiments: []string{"fig7"}})
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/runs?stream=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	cancel() // client walks away
	resp.Body.Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		list, err := http.Get(ts.URL + "/v1/runs")
		if err != nil {
			t.Fatal(err)
		}
		var runs []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		err = json.NewDecoder(list.Body).Decode(&runs)
		list.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(runs) == 1 && runs[0].State == "canceled" {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("run was not canceled after client disconnect")
}

// TestDrain: a draining server rejects new work with 503 on both the
// submit and health endpoints while the in-flight run finishes cleanly.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, req runner.Request, cfg runner.Config) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	s, ts := newTestServer(t, serverConfig{RunFn: stub})
	id := submitID(t, ts, runner.Request{Experiments: []string{"fig7"}})

	s.beginDrain()
	resp := post(t, ts.URL+"/v1/runs", runner.Request{Experiments: []string{"fig7"}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %s, want 503", resp.Status)
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %s, want 503", health.Status)
	}

	close(release)
	if got := waitState(t, ts, id); got != "done" {
		t.Errorf("in-flight run drained to %q, want done", got)
	}
	s.drain(10 * time.Second) // idempotent; waits for executors
}

// TestWarmCacheEndToEnd drives the real runner twice over a shared
// result store: the second run must be answered entirely from cache
// with byte-identical output — the daemon's core value proposition.
func TestWarmCacheEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation run")
	}
	store, err := resultstore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, serverConfig{Store: store, Workers: 4, Obs: reg})
	req := runner.Request{Experiments: []string{"fig7"}, Quick: true, Budget: 50_000}

	cold, coldDone, err := submitAndWait(ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if coldDone.CacheMisses == 0 {
		t.Fatalf("cold run reported no misses: %+v", coldDone)
	}
	warm, warmDone, err := submitAndWait(ts.URL, req)
	if err != nil {
		t.Fatal(err)
	}
	if warmDone.CacheHits == 0 || warmDone.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want hits>0 misses==0",
			warmDone.CacheHits, warmDone.CacheMisses)
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm output differs from cold")
	}
	if hits := reg.Counter("iramsimd", "cache_hits").Value(); hits == 0 {
		t.Error("daemon-wide cache_hits not accumulated")
	}
}
