package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/resultstore"
	"repro/internal/runner"
)

// runLoadTest is the daemon's built-in acceptance harness
// (`iramsimd -loadtest N`). It is fully self-contained: it stands up an
// in-process server over a fresh result cache, warms the cache with one
// fig7 and one fig8 run, then fires N concurrent overlapping streaming
// requests and asserts the service contract:
//
//   - every warm request is served entirely from cache (hits > 0,
//     misses == 0 in its done event);
//   - responses for the same experiment set are byte-identical;
//   - a saturated queue answers 429 (backpressure, not deadlock), and
//     the server stays responsive throughout.
func runLoadTest(n, workers int, out io.Writer) error {
	if n < 2 {
		n = 2
	}
	cacheDir, err := os.MkdirTemp("", "iramsimd-loadtest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(cacheDir)
	store, err := resultstore.NewStore(cacheDir)
	if err != nil {
		return err
	}
	reg := obs.NewRegistry()
	s := newServer(serverConfig{
		Queue:   2 * n,
		MaxRuns: 4,
		Workers: workers,
		Store:   store,
		Obs:     reg,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.drain(time.Minute)

	reqs := []runner.Request{
		{Experiments: []string{"fig7"}, Quick: true, Budget: 50_000},
		{Experiments: []string{"fig8"}, Quick: true, Budget: 50_000},
	}

	fmt.Fprintf(out, "loadtest: warming cache (fig7, fig8) ...\n")
	warmStart := time.Now()
	for _, req := range reqs {
		if _, _, err := submitAndWait(ts.URL, req); err != nil {
			return fmt.Errorf("warm run: %w", err)
		}
	}
	fmt.Fprintf(out, "loadtest: cache warm in %.1fs; firing %d concurrent requests\n",
		time.Since(warmStart).Seconds(), n)

	// Overlapping warm requests: alternate fig7/fig8 so concurrent runs
	// hit the same cache entries at the same time.
	type reply struct {
		idx    int
		output []byte
		done   doneEvent
		err    error
	}
	start := time.Now()
	results := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			output, done, err := submitAndWait(ts.URL, reqs[i%len(reqs)])
			results[i] = reply{idx: i, output: output, done: done, err: err}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var failures int
	byExp := map[int][]byte{}
	for _, r := range results {
		if r.err != nil {
			failures++
			fmt.Fprintf(out, "loadtest: FAIL request %d: %v\n", r.idx, r.err)
			continue
		}
		if r.done.State != "done" {
			failures++
			fmt.Fprintf(out, "loadtest: FAIL request %d: state %q (%s)\n", r.idx, r.done.State, r.done.Error)
			continue
		}
		if r.done.CacheHits == 0 || r.done.CacheMisses != 0 {
			failures++
			fmt.Fprintf(out, "loadtest: FAIL request %d: hits=%d misses=%d, want warm (hits>0 misses==0)\n",
				r.idx, r.done.CacheHits, r.done.CacheMisses)
		}
		key := r.idx % len(reqs)
		if prev, ok := byExp[key]; !ok {
			byExp[key] = r.output
		} else if !bytes.Equal(prev, r.output) {
			failures++
			fmt.Fprintf(out, "loadtest: FAIL request %d: output differs from request %d\n", r.idx, key)
		}
	}
	fmt.Fprintf(out, "loadtest: %d warm requests in %.2fs (%.1f req/s), %d failures\n",
		n, elapsed.Seconds(), float64(n)/elapsed.Seconds(), failures)

	// Backpressure probe: a tiny cold server (queue=1, runs=1, no
	// cache) flooded with submissions must shed load with 429s while
	// staying responsive, never deadlocking.
	rejected, err := probeBackpressure(workers, out)
	if err != nil {
		return err
	}
	if rejected == 0 {
		failures++
		fmt.Fprintf(out, "loadtest: FAIL backpressure probe observed no 429s\n")
	}
	if failures > 0 {
		return fmt.Errorf("%d check(s) failed", failures)
	}
	fmt.Fprintf(out, "loadtest: PASS\n")
	return nil
}

// doneEvent is the terminal event every run stream ends with.
type doneEvent struct {
	Type        string `json:"type"`
	State       string `json:"state"`
	Error       string `json:"error"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
}

// submitAndWait POSTs one streaming run and returns its rendered output
// plus the terminal done event.
func submitAndWait(baseURL string, req runner.Request) ([]byte, doneEvent, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, doneEvent{}, err
	}
	resp, err := http.Post(baseURL+"/v1/runs?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, doneEvent{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return nil, doneEvent{}, fmt.Errorf("submit: %s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var id string
	var done doneEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var ev struct {
			doneEvent
			Run string `json:"run"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, doneEvent{}, fmt.Errorf("bad event %q: %w", sc.Text(), err)
		}
		if ev.Run != "" {
			id = ev.Run
		}
		if ev.Type == "done" {
			done = ev.doneEvent
		}
	}
	if err := sc.Err(); err != nil {
		return nil, doneEvent{}, err
	}
	if done.Type != "done" {
		return nil, doneEvent{}, fmt.Errorf("stream ended without a done event")
	}
	outResp, err := http.Get(baseURL + "/v1/runs/" + id + "/output")
	if err != nil {
		return nil, doneEvent{}, err
	}
	defer outResp.Body.Close()
	output, err := io.ReadAll(outResp.Body)
	if err != nil {
		return nil, doneEvent{}, err
	}
	if outResp.StatusCode != http.StatusOK {
		return nil, done, fmt.Errorf("output: %s: %s", outResp.Status, bytes.TrimSpace(output))
	}
	return output, done, nil
}

// probeBackpressure floods a queue=1/runs=1 cold server and counts
// 429s; the accepted runs are canceled rather than waited for.
func probeBackpressure(workers int, out io.Writer) (rejected int, err error) {
	reg := obs.NewRegistry()
	s := newServer(serverConfig{Queue: 1, MaxRuns: 1, Workers: workers, Obs: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(runner.Request{Experiments: []string{"fig7"}, Quick: true, Budget: 50_000})
	var ids []string
	for i := 0; i < 8; i++ {
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			return rejected, err
		}
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			rejected++
		case http.StatusAccepted:
			var v struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
				ids = append(ids, v.ID)
			}
		default:
			resp.Body.Close()
			return rejected, fmt.Errorf("probe submit: unexpected %s", resp.Status)
		}
		resp.Body.Close()
	}
	// Server must still answer while saturated.
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		return rejected, fmt.Errorf("healthz under load: %w", err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusOK {
		return rejected, fmt.Errorf("healthz under load: %s", health.Status)
	}
	for _, id := range ids {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/runs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
	s.drain(time.Minute)
	fmt.Fprintf(out, "loadtest: backpressure probe: %d/8 submissions shed with 429\n", rejected)
	return rejected, nil
}
