// Command iramsimd serves the iramsim experiment runner over HTTP:
// simulation as a service. Clients POST runner.Request JSON bodies to
// /v1/runs and stream structured progress back; every run shares one
// on-disk result cache, so a fleet of overlapping requests costs one
// simulation per distinct unit and warm requests are answered without
// simulating at all.
//
//	POST   /v1/runs            submit a run ({"experiments":["fig7"],"quick":true});
//	                           ?stream=1 streams progress and cancels on disconnect
//	GET    /v1/runs            list runs
//	GET    /v1/runs/{id}        run status
//	GET    /v1/runs/{id}/events progress stream (NDJSON, or SSE via Accept)
//	GET    /v1/runs/{id}/output rendered output (blocks until the run finishes)
//	DELETE /v1/runs/{id}        cancel
//	GET    /healthz            liveness (503 while draining)
//	GET    /debug/...          metrics, expvar, pprof
//
// Backpressure is explicit: the run queue is bounded, and a full queue
// answers 429 with Retry-After rather than accepting unbounded work.
// SIGINT/SIGTERM drains gracefully: new submissions get 503, queued and
// in-flight runs finish (up to -drain-timeout, then they are canceled),
// and -metrics is flushed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/resultstore"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8351", "listen address")
		cacheDir      = flag.String("result-cache", "", "shared result-cache directory (empty = no cache)")
		cacheMaxBytes = flag.Int64("result-cache-max-bytes", 0, "prune the result cache to this size after each run (0 = unbounded)")
		queueCap      = flag.Int("queue", 8, "pending-run queue capacity (full queue answers 429)")
		maxRuns       = flag.Int("runs", 2, "maximum concurrently executing runs")
		workers       = flag.Int("j", 1, "sweep workers per run")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight runs before canceling them")
		metricsPath   = flag.String("metrics", "", "write the daemon metrics registry as JSON to this file on exit")
		loadtest      = flag.Int("loadtest", 0, "run a self-contained load test with N concurrent clients and exit")
	)
	flag.Parse()

	if *loadtest > 0 {
		if err := runLoadTest(*loadtest, *workers, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "iramsimd: loadtest: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := mainErr(*addr, *cacheDir, *cacheMaxBytes, *queueCap, *maxRuns, *workers, *drainTimeout, *metricsPath); err != nil {
		fmt.Fprintf(os.Stderr, "iramsimd: %v\n", err)
		os.Exit(1)
	}
}

func mainErr(addr, cacheDir string, cacheMaxBytes int64, queueCap, maxRuns, workers int,
	drainTimeout time.Duration, metricsPath string) error {
	reg := obs.NewRegistry()
	var store *resultstore.Store
	if cacheDir != "" {
		var err error
		store, err = resultstore.NewStore(cacheDir)
		if err != nil {
			return err
		}
	}
	s := newServer(serverConfig{
		Queue:         queueCap,
		MaxRuns:       maxRuns,
		Workers:       workers,
		Store:         store,
		CacheMaxBytes: cacheMaxBytes,
		Obs:           reg,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "iramsimd: listening on http://%s (queue=%d runs=%d j=%d cache=%q)\n",
		ln.Addr(), queueCap, maxRuns, workers, cacheDir)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err // listener died; nothing to drain
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "iramsimd: %v: draining (timeout %s)\n", got, drainTimeout)
	}

	// Drain: reject new runs (503), let the pipeline empty, then stop
	// accepting connections. Event streams for finished runs close on
	// their own; Close after Shutdown's grace kills stragglers.
	s.drain(drainTimeout)
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		_ = srv.Close()
	}

	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return fmt.Errorf("metrics: %w", err)
		}
		werr := reg.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("metrics: %w", werr)
		}
		fmt.Fprintf(os.Stderr, "iramsimd: metrics written to %s\n", metricsPath)
	}
	fmt.Fprintln(os.Stderr, "iramsimd: shutdown complete")
	return nil
}
