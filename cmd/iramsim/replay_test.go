package main

import (
	"bytes"
	"io"
	"os"
	"testing"

	"repro/internal/experiments"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// replayNames are the experiments whose measurements flow through the
// trace source: the cache-miss figures and their dependent CPI table,
// the Synopsys estimate, and the Mattson curves.
var replayNames = []string{"fig7", "fig8", "table3", "table1", "mattson"}

func renderWith(t *testing.T, opts experiments.Options) []byte {
	t.Helper()
	ms := experiments.NewMeasurementSet(opts)
	var buf bytes.Buffer
	if err := runNames(replayNames, opts, ms, 2, nil, &buf, io.Discard); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReplayMatchesLive is the pipeline's end-to-end golden check:
// rendered experiment output is byte-identical across the three source
// modes — live generation, a recording pass (-record), and a replay
// pass over the cache the recording left behind (-replay).
func TestReplayMatchesLive(t *testing.T) {
	opts := quickOpts()
	live := renderWith(t, opts)
	if len(live) == 0 {
		t.Fatal("live run produced no output")
	}

	store, err := tracestore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recOpts := opts
	recOpts.TraceSource = workload.Traced{Store: store, Seed: opts.Seed, Force: true}
	rec := renderWith(t, recOpts)
	if !bytes.Equal(live, rec) {
		t.Errorf("-record output differs from live:\n%s", firstDiff(live, rec))
	}

	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	cached := len(entries)
	if cached == 0 {
		t.Fatal("recording pass left no cache entries")
	}

	repOpts := opts
	repOpts.TraceSource = workload.Traced{Store: store, Seed: opts.Seed}
	rep := renderWith(t, repOpts)
	if !bytes.Equal(live, rep) {
		t.Errorf("-replay output differs from live:\n%s", firstDiff(live, rep))
	}
	// The replay pass served every stream from the cache: no new files.
	entries, err = os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != cached {
		t.Errorf("replay pass changed the cache: %d entries, was %d", len(entries), cached)
	}
}

// TestRecordAll drives the `iramsim -record <dir>` (no experiments)
// mode: every registered workload ends up with exactly one cache entry,
// and the progress log names each.
func TestRecordAll(t *testing.T) {
	opts := quickOpts()
	store, err := tracestore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.TraceSource = workload.Traced{Store: store, Seed: opts.Seed, Force: true}
	var progress bytes.Buffer
	if err := recordAll(opts, &progress); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	all := workload.All()
	if len(entries) != len(all) {
		t.Errorf("record-all left %d cache entries for %d workloads", len(entries), len(all))
	}
	for _, w := range all {
		if !bytes.Contains(progress.Bytes(), []byte(w.Name)) {
			t.Errorf("progress log does not mention %s", w.Name)
		}
	}
}

// TestResolveTraceDir pins the flag-combination contract.
func TestResolveTraceDir(t *testing.T) {
	cases := []struct {
		name    string
		c       cliConfig
		want    string
		wantErr bool
	}{
		{"none", cliConfig{}, "", false},
		{"trace-dir", cliConfig{traceDir: "a"}, "a", false},
		{"replay", cliConfig{replay: "a"}, "a", false},
		{"record", cliConfig{record: "a"}, "a", false},
		{"agreeing", cliConfig{record: "a", replay: "a"}, "a", false},
		{"record-vs-replay", cliConfig{record: "a", replay: "b"}, "", true},
		{"record-vs-trace-dir", cliConfig{record: "a", traceDir: "b"}, "", true},
	}
	for _, tc := range cases {
		got, err := resolveTraceDir(tc.c)
		if (err != nil) != tc.wantErr || got != tc.want {
			t.Errorf("%s: dir %q err %v, want %q wantErr=%v", tc.name, got, err, tc.want, tc.wantErr)
		}
	}
}
