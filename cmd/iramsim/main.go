// Command iramsim regenerates the tables and figures of Saulsbury,
// Pong & Nowatzyk, "Missing the Memory Wall" (ISCA 1996) from this
// repository's simulators.
//
// Usage:
//
//	iramsim [flags] <experiment> [...]
//
// Experiments: table1 fig2 fig7 fig8 fig11 fig12 table3 table4 banks
// mattson fig13 fig14 fig15 fig16 fig17 cost all
//
// Flags:
//
//	-quick        reduced fidelity (CI-sized runs)
//	-budget N     per-workload instruction budget
//	-seed N       Monte-Carlo seed
//	-procs list   processor counts for fig13..fig17 (e.g. 1,2,4,8,16)
//	-machine f    JSON machine description overriding core.Proposed()
//	-j N          worker goroutines for the experiment sweep
//	-trace-dir d  workload trace cache: replay recorded streams, record on miss
//	-replay d     synonym for -trace-dir (replay emphasis)
//	-record d     re-record workload traces into d; with no experiments,
//	              pre-populate every workload's stream and exit
//	-result-cache d   assembled-result cache dir (default .result-cache)
//	-no-result-cache  disable the result cache entirely
//	-cpuprofile f write a CPU profile to f
//	-memprofile f write a heap profile to f on exit
//	-metrics f    write simulator metrics (JSON) to f after the run
//	-trace f      write the sweep event trace to f after the run
//	-debug-addr a serve expvar/pprof/metrics on host:port while running
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resultstore"
	"repro/internal/selftest"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// jsonMode switches experiment output from rendered tables to JSON
// (structured results for downstream plotting).
var jsonMode bool

// cliConfig gathers the parsed command-line flags.
type cliConfig struct {
	quick         bool
	budget, seed  int64
	procs         string
	machine       string
	workers       int
	record        string
	replay        string
	traceDir      string
	resultCache   string
	noResultCache bool
	dsBanks       string
	dsColumns     string
	dsWays        string
	dsVictims     string
	dsCoarse      int
	dsRefine      int
	dsFrontier    string
	cpuprofile    string
	memprofile    string
	metrics       string
	trace         string
	debugAddr     string
}

func main() {
	var c cliConfig
	flag.BoolVar(&c.quick, "quick", false, "reduced-fidelity runs")
	flag.BoolVar(&jsonMode, "json", false, "emit experiment results as JSON instead of tables")
	flag.Int64Var(&c.budget, "budget", 0, "per-workload instruction budget (0 = default)")
	flag.Int64Var(&c.seed, "seed", 1, "Monte-Carlo seed")
	flag.StringVar(&c.procs, "procs", "", "comma-separated processor counts for fig13..fig17")
	flag.StringVar(&c.machine, "machine", "", "JSON machine description file (overrides the paper's integrated device)")
	flag.IntVar(&c.workers, "j", runtime.NumCPU(), "worker goroutines for the experiment sweep")
	flag.StringVar(&c.traceDir, "trace-dir", "", "workload trace cache dir: replay recorded reference streams, record on miss")
	flag.StringVar(&c.replay, "replay", "", "replay workload traces from this cache dir (synonym for -trace-dir)")
	flag.StringVar(&c.record, "record", "", "re-record workload traces into this cache dir; with no experiments, pre-populate every workload and exit")
	flag.StringVar(&c.resultCache, "result-cache", ".result-cache", "assembled-result cache dir (content-addressed; warm reruns decode instead of simulating)")
	flag.BoolVar(&c.noResultCache, "no-result-cache", false, "disable the result cache (every unit recomputes)")
	flag.StringVar(&c.dsBanks, "ds-banks", "", "designspace banks axis: comma list and/or lo..hi:step / lo..hi:*k ranges (e.g. 8..128:8)")
	flag.StringVar(&c.dsColumns, "ds-columns", "", "designspace column-size axis (bytes), same range syntax")
	flag.StringVar(&c.dsWays, "ds-ways", "", "designspace D-cache associativity axis, same range syntax")
	flag.StringVar(&c.dsVictims, "ds-victims", "", "designspace victim-entry axis (0 = no victim cache), same range syntax")
	flag.IntVar(&c.dsCoarse, "ds-coarse", 0, "designspace coarse-grid stride: evaluate every k-th lattice index per axis first (<=1 = exhaustive)")
	flag.IntVar(&c.dsRefine, "ds-refine", 0, "designspace adaptive-refinement rounds around the screening frontier")
	flag.StringVar(&c.dsFrontier, "ds-frontier", "", "write the designspace Pareto frontier to this file (.json or .csv)")
	flag.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&c.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&c.metrics, "metrics", "", "write simulator metrics as JSON to this file after the run")
	flag.StringVar(&c.trace, "trace", "", "write the sweep event trace to this file after the run")
	flag.StringVar(&c.debugAddr, "debug-addr", "", "serve expvar, pprof, and live metrics on this host:port")
	flag.Parse()

	// `iramsim -record <dir>` with no experiments is record-all mode:
	// pre-populate every workload's trace and exit.
	if flag.NArg() == 0 && c.record == "" {
		usage()
		os.Exit(2)
	}

	// mainErr carries the defers (profile flushes) that os.Exit would
	// skip; fatal runs only after they complete.
	if err := mainErr(c); err != nil {
		fatal(err)
	}
}

func mainErr(c cliConfig) error {
	if c.cpuprofile != "" {
		f, err := os.Create(c.cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if c.memprofile != "" {
		defer func() {
			f, err := os.Create(c.memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iramsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "iramsim: memprofile:", err)
			}
		}()
	}

	opts := experiments.Default()
	if c.quick {
		opts = experiments.Quick()
	}
	if c.budget > 0 {
		opts.Budget = c.budget
	}
	opts.Seed = c.seed
	if c.procs != "" {
		var procs []int
		for _, s := range strings.Split(c.procs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return fmt.Errorf("bad -procs value %q", s)
			}
			procs = append(procs, n)
		}
		opts.Procs = procs
	}
	if c.machine != "" {
		dev, err := core.LoadFile(c.machine)
		if err != nil {
			return err
		}
		opts.Machine = &dev
	}
	for _, ax := range []struct {
		name string
		val  string
		dst  *[]int
	}{
		{"ds-banks", c.dsBanks, &opts.DSBanks},
		{"ds-columns", c.dsColumns, &opts.DSColumns},
		{"ds-ways", c.dsWays, &opts.DSWays},
		{"ds-victims", c.dsVictims, &opts.DSVictims},
	} {
		if ax.val == "" {
			continue
		}
		vals, err := parseAxis(ax.name, ax.val)
		if err != nil {
			return err
		}
		*ax.dst = vals
	}
	opts.DSCoarse = c.dsCoarse
	opts.DSRefine = c.dsRefine
	opts.Workers = c.workers
	frontierPath = c.dsFrontier

	traceDir, err := resolveTraceDir(c)
	if err != nil {
		return err
	}
	if traceDir != "" {
		store, err := tracestore.NewStore(traceDir)
		if err != nil {
			return err
		}
		opts.TraceSource = workload.Traced{Store: store, Seed: opts.Seed, Force: c.record != ""}
	}
	if flag.NArg() == 0 {
		return recordAll(opts, os.Stderr)
	}

	// The result cache is on by default: warm reruns decode assembled
	// unit results instead of re-simulating, with byte-identical output
	// (versioned gob encodes float64s bit-exactly; any stale, corrupt,
	// or foreign entry decodes as a miss and is recomputed). A -record
	// run is the exception: its purpose is to execute every workload so
	// the traces get written, so it never satisfies units from cache.
	if !c.noResultCache && c.resultCache != "" && c.record == "" {
		store, err := resultstore.NewStore(c.resultCache)
		if err != nil {
			return err
		}
		opts.ResultCache = store
	}

	// Observability is opt-in: with no flag set, opts.Obs and tracer stay
	// nil and every hook in the simulators is a single pointer check.
	if c.metrics != "" || c.debugAddr != "" {
		opts.Obs = obs.NewRegistry()
	}
	var tracer *obs.Tracer
	if c.trace != "" {
		tracer = obs.NewTracer(obs.DefaultShardEvents)
	}
	if c.debugAddr != "" {
		srv, err := opts.Obs.ServeDebug(c.debugAddr)
		if err != nil {
			return fmt.Errorf("debug-addr: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "iramsim: debug server listening on http://%s/debug/\n", srv.Addr)
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = append([]string{"spec"}, experiments.SweepNames()...)
		names = append(names, "selftest")
	}

	ms := experiments.NewMeasurementSet(opts)
	runErr := runNames(names, opts, ms, c.workers, tracer, os.Stdout, os.Stderr)

	// Dump metrics and trace even after a failed run: the sweep engine
	// merges what it measured before reporting its first error, and a
	// partial dump is exactly what debugging a failed sweep needs.
	if c.metrics != "" {
		if err := writeMetrics(c.metrics, opts.Obs); err != nil {
			if runErr == nil {
				runErr = err
			} else {
				fmt.Fprintln(os.Stderr, "iramsim:", err)
			}
		}
	}
	if c.trace != "" {
		if err := writeTrace(c.trace, tracer); err != nil {
			if runErr == nil {
				runErr = err
			} else {
				fmt.Fprintln(os.Stderr, "iramsim:", err)
			}
		}
	}
	return runErr
}

// recordAll pre-populates the trace cache with every workload's
// reference stream (record-all mode: `iramsim -record <dir>` with no
// experiment arguments). -quick and -budget select the recorded budget.
// resolveTraceDir folds the three cache-directory spellings into one.
// -trace-dir and -replay replay cached streams (recording on miss);
// -record always re-records. Replayed and live streams are
// reference-for-reference identical, so experiment output does not
// depend on the mode. Naming two different directories is an error
// rather than a silent precedence rule.
func resolveTraceDir(c cliConfig) (string, error) {
	dir := c.traceDir
	for _, d := range []string{c.replay, c.record} {
		if d == "" {
			continue
		}
		if dir != "" && dir != d {
			return "", fmt.Errorf("conflicting trace cache dirs %q and %q (-record/-replay/-trace-dir)", dir, d)
		}
		dir = d
	}
	return dir, nil
}

func recordAll(opts experiments.Options, progress io.Writer) error {
	for _, w := range workload.All() {
		var counts trace.Counts
		if _, err := opts.TraceSource.Stream(w, opts.Budget, &counts); err != nil {
			return err
		}
		fmt.Fprintf(progress, "iramsim: recorded %-12s %10d refs (%d instructions)\n",
			w.Name, counts.Total(), counts.Ifetches)
	}
	return nil
}

// writeMetrics dumps the registry as indented JSON to path.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	werr := reg.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("metrics: %w", werr)
	}
	return nil
}

// writeTrace drains the tracer's ring buffers to path in global
// sequence order.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	werr := tr.Drain(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("trace: %w", werr)
	}
	return nil
}

// runNames fans the named experiments' units out over the worker pool
// and renders each experiment's result, in command-line order, as its
// units complete. Output on out is byte-identical for every worker
// count; progress and timing go to progress only.
func runNames(names []string, opts experiments.Options, ms *experiments.MeasurementSet,
	workers int, tracer *obs.Tracer, out io.Writer, progress io.Writer) error {
	jobs := make([]sweep.Job, 0, len(names))
	for _, name := range names {
		j, err := jobFor(name, opts, ms)
		if err != nil {
			return err
		}
		jobs = append(jobs, j)
	}
	eng := &sweep.Engine{Workers: workers, Progress: progress, Obs: opts.Obs, Trace: tracer,
		Cache: opts.ResultCache}
	return eng.Run(jobs, func(r sweep.JobResult) error {
		return render(out, r.Name, r.Value)
	})
}

// run executes one experiment serially; kept as the single-name entry
// point (and for tests).
func run(name string, opts experiments.Options, ms *experiments.MeasurementSet) error {
	return runNames([]string{name}, opts, ms, 1, nil, os.Stdout, io.Discard)
}

// jobFor maps a command-line experiment name to a sweep job. The
// text-only outputs (spec, workloads, fig910, selftest) live here as
// single-unit jobs that render into a buffer; everything else comes
// from the experiments registry.
func jobFor(name string, opts experiments.Options, ms *experiments.MeasurementSet) (sweep.Job, error) {
	switch name {
	case "spec":
		return sweep.Single(name, 0, func() (interface{}, error) {
			var buf bytes.Buffer
			for _, line := range opts.Device().Datasheet() {
				fmt.Fprintln(&buf, line)
			}
			fmt.Fprintln(&buf)
			return buf.Bytes(), nil
		}), nil
	case "workloads":
		return sweep.Single(name, 0, func() (interface{}, error) {
			var buf bytes.Buffer
			t := report.NewTable("Table 2: benchmark stand-ins",
				"benchmark", "fp", "base CPI", "budget", "description")
			for _, name := range workload.Names() {
				w, err := workload.ByName(name)
				if err != nil {
					return nil, err
				}
				desc := w.Description
				if len(desc) > 72 {
					desc = desc[:69] + "..."
				}
				t.Row(w.Name, w.Float, w.BaseCPI, w.Budget, desc)
			}
			t.Render(&buf)
			return buf.Bytes(), nil
		}), nil
	case "fig910":
		return sweep.Single(name, 0, func() (interface{}, error) {
			var buf bytes.Buffer
			for _, cfg := range []cpumodel.SystemConfig{cpumodel.ConfigFor(opts.Device()), cpumodel.Reference()} {
				m, err := cpumodel.Build(cfg, cpumodel.AppRates{
					Name: "shape", BaseCPI: 1, LoadFrac: 0.25, StoreFrac: 0.1,
					IHit: 0.95, LoadHit: 0.95, StoreHit: 0.95,
					IL2Hit: 0.9, LoadL2Hit: 0.9, StoreL2Hit: 0.9,
				})
				if err != nil {
					return nil, err
				}
				sh := m.Shape()
				fmt.Fprintf(&buf,
					"Figure 9/10 net (%s): %d places, %d immediate + %d deterministic + %d exponential transitions, %d banks, L2=%v"+"\n",
					cfg.Name, sh.Places, sh.Immediate, sh.Deterministic, sh.Exponential, sh.Banks, sh.HasL2)
			}
			fmt.Fprintln(&buf)
			return buf.Bytes(), nil
		}), nil
	case "selftest":
		return sweep.Single(name, 0, func() (interface{}, error) {
			var buf bytes.Buffer
			r, err := selftest.Run(selftest.Config{WindowBytes: 256 << 10})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&buf, "built-in self test: passed=%v phase=%s instructions=%d window=%dKB fills=%d\n\n",
				r.Passed, r.Phase, r.Instructions, r.MemoryBytes>>10, r.CacheFills)
			return buf.Bytes(), nil
		}), nil
	}
	j, err := experiments.JobFor(name, opts, ms)
	if err != nil {
		return sweep.Job{}, fmt.Errorf("unknown experiment %q", name)
	}
	return j, nil
}

// render writes one experiment's assembled result to out in the same
// format the serial CLI has always produced.
func render(out io.Writer, name string, v interface{}) error {
	switch name {
	case "cost", "fabric":
		// rendered as plain tables even in -json mode, as before
		v.(*report.Table).Render(out)
		return nil
	}
	if b, ok := v.([]byte); ok {
		_, err := out.Write(b)
		return err
	}
	if err := exportFrontier(v); err != nil {
		return err
	}
	if !jsonMode {
		if mt, ok := v.(multiTabler); ok {
			for _, tab := range mt.Tables() {
				tab.Render(out)
			}
			return nil
		}
	}
	t, ok := v.(tabler)
	if !ok {
		return fmt.Errorf("experiment %q returned unrenderable %T", name, v)
	}
	if err := emit(out, name, t); err != nil {
		return err
	}
	if !jsonMode {
		if p, ok := v.(plotter); ok {
			p.Plot().Render(out)
		}
	}
	return nil
}

// tabler is any experiment result that can render itself.
type tabler interface{ Table() *report.Table }

// multiTabler marks results that render as several tables (the
// designspace search: point grid + Pareto frontier). It takes
// precedence over tabler outside -json mode.
type multiTabler interface{ Tables() []*report.Table }

// plotter marks results that also render an ASCII plot (fig11, fig12,
// fig13..fig17).
type plotter interface{ Plot() *report.Series }

// emit writes a result as a table or, in -json mode, as indented JSON
// tagged with the experiment name.
func emit(out io.Writer, name string, v tabler) error {
	if !jsonMode {
		v.Table().Render(out)
		return nil
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{"experiment": name, "result": v})
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: iramsim [flags] <experiment> [...]")
	fmt.Fprintln(os.Stderr, "experiments: spec cost table1 fig2 fig7 fig8 fig11 fig12 table3 table4 banks mattson fig13..fig17 ablate-{linesize,victim,unit,scoreboard,inc,engines,jouppi} designspace scoma fabric selftest workloads fig910 all")
	fmt.Fprintln(os.Stderr, "machine descriptions: -machine examples/machine-32bank.json (see examples/)")
	fmt.Fprintln(os.Stderr, "trace cache: -trace-dir/-replay/-record <dir> (record-all: iramsim -record <dir>)")
	fmt.Fprintln(os.Stderr, "design-space search: iramsim designspace -ds-banks 8..128:8 -ds-columns 256..4096:*2 \\")
	fmt.Fprintln(os.Stderr, "  -ds-ways 1,2,4 -ds-victims 0,16 -ds-coarse 4 -ds-refine 2 -ds-frontier pareto.json")
	fmt.Fprintln(os.Stderr, "  (points group into column-size families; each family costs ONE trace pass per bench)")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iramsim:", err)
	os.Exit(1)
}
