// Command iramsim regenerates the tables and figures of Saulsbury,
// Pong & Nowatzyk, "Missing the Memory Wall" (ISCA 1996) from this
// repository's simulators.
//
// Usage:
//
//	iramsim [flags] <experiment> [...]
//
// Experiments: table1 fig2 fig7 fig8 fig11 fig12 table3 table4 banks
// fig13 fig14 fig15 fig16 fig17 cost all
//
// Flags:
//
//	-quick        reduced fidelity (CI-sized runs)
//	-budget N     per-workload instruction budget
//	-seed N       Monte-Carlo seed
//	-procs list   processor counts for fig13..fig17 (e.g. 1,2,4,8,16)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/selftest"
	"repro/internal/workload"
)

// jsonMode switches experiment output from rendered tables to JSON
// (structured results for downstream plotting).
var jsonMode bool

func main() {
	quick := flag.Bool("quick", false, "reduced-fidelity runs")
	flag.BoolVar(&jsonMode, "json", false, "emit experiment results as JSON instead of tables")
	budget := flag.Int64("budget", 0, "per-workload instruction budget (0 = default)")
	seed := flag.Int64("seed", 1, "Monte-Carlo seed")
	procsFlag := flag.String("procs", "", "comma-separated processor counts for fig13..fig17")
	flag.Parse()

	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	opts := experiments.Default()
	if *quick {
		opts = experiments.Quick()
	}
	if *budget > 0 {
		opts.Budget = *budget
	}
	opts.Seed = *seed
	if *procsFlag != "" {
		var procs []int
		for _, s := range strings.Split(*procsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fatal(fmt.Errorf("bad -procs value %q", s))
			}
			procs = append(procs, n)
		}
		opts.Procs = procs
	}

	names := flag.Args()
	if len(names) == 1 && names[0] == "all" {
		names = []string{"spec", "cost", "table1", "fig2", "fig7", "fig8", "fig11",
			"fig12", "table3", "table4", "banks",
			"fig13", "fig14", "fig15", "fig16", "fig17",
			"ablate-linesize", "ablate-victim", "ablate-unit",
			"ablate-scoreboard", "ablate-inc", "ablate-engines", "ablate-jouppi",
			"scoma", "fabric", "selftest"}
	}

	ms := experiments.NewMeasurementSet(opts)
	for _, name := range names {
		if err := run(name, opts, ms); err != nil {
			fatal(err)
		}
	}
}

func run(name string, opts experiments.Options, ms *experiments.MeasurementSet) error {
	out := os.Stdout
	switch name {
	case "table1":
		r, err := experiments.Table1(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "table1", r); err != nil {
			return err
		}
	case "fig2":
		r, err := experiments.Fig2(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "fig2", r); err != nil {
			return err
		}
	case "fig7":
		r, err := experiments.Fig7(opts, ms)
		if err != nil {
			return err
		}
		if err := emit(out, "fig7", r); err != nil {
			return err
		}
	case "fig8":
		r, err := experiments.Fig8(opts, ms)
		if err != nil {
			return err
		}
		if err := emit(out, "fig8", r); err != nil {
			return err
		}
	case "fig11":
		r, err := experiments.Fig11(opts, ms)
		if err != nil {
			return err
		}
		if err := emit(out, "fig11", r); err != nil {
			return err
		}
		if !jsonMode {
			r.Plot().Render(out)
		}
	case "fig12":
		r, err := experiments.Fig12(opts, ms)
		if err != nil {
			return err
		}
		if err := emit(out, "fig12", r); err != nil {
			return err
		}
		if !jsonMode {
			r.Plot().Render(out)
		}
	case "table3":
		r, err := experiments.Table34(opts, ms, false)
		if err != nil {
			return err
		}
		if err := emit(out, "table3", r); err != nil {
			return err
		}
	case "table4":
		r, err := experiments.Table34(opts, ms, true)
		if err != nil {
			return err
		}
		if err := emit(out, "table4", r); err != nil {
			return err
		}
	case "banks":
		r, err := experiments.Banks(opts, ms)
		if err != nil {
			return err
		}
		if err := emit(out, "banks", r); err != nil {
			return err
		}
	case "fig13", "fig14", "fig15", "fig16", "fig17":
		n, _ := strconv.Atoi(strings.TrimPrefix(name, "fig"))
		r, err := experiments.SplashFigure(opts, n)
		if err != nil {
			return err
		}
		if err := emit(out, name, r); err != nil {
			return err
		}
		if !jsonMode {
			r.Plot().Render(out)
		}
	case "cost":
		experiments.Cost().Render(out)
	case "workloads":
		t := report.NewTable("Table 2: benchmark stand-ins",
			"benchmark", "fp", "base CPI", "budget", "description")
		for _, name := range workload.Names() {
			w, err := workload.ByName(name)
			if err != nil {
				return err
			}
			desc := w.Description
			if len(desc) > 72 {
				desc = desc[:69] + "..."
			}
			t.Row(w.Name, w.Float, w.BaseCPI, w.Budget, desc)
		}
		t.Render(out)
	case "fig910":
		for _, cfg := range []cpumodel.SystemConfig{cpumodel.Integrated(), cpumodel.Reference()} {
			m, err := cpumodel.Build(cfg, cpumodel.AppRates{
				Name: "shape", BaseCPI: 1, LoadFrac: 0.25, StoreFrac: 0.1,
				IHit: 0.95, LoadHit: 0.95, StoreHit: 0.95,
				IL2Hit: 0.9, LoadL2Hit: 0.9, StoreL2Hit: 0.9,
			})
			if err != nil {
				return err
			}
			sh := m.Shape()
			fmt.Fprintf(out,
				"Figure 9/10 net (%s): %d places, %d immediate + %d deterministic + %d exponential transitions, %d banks, L2=%v"+"\n",
				cfg.Name, sh.Places, sh.Immediate, sh.Deterministic, sh.Exponential, sh.Banks, sh.HasL2)
		}
		fmt.Fprintln(out)
	case "spec":
		for _, line := range core.Proposed().Datasheet() {
			fmt.Fprintln(out, line)
		}
		fmt.Fprintln(out)
	case "ablate-linesize":
		r, err := experiments.AblateLineSize(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "ablate-linesize", r); err != nil {
			return err
		}
	case "ablate-victim":
		r, err := experiments.AblateVictimSize(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "ablate-victim", r); err != nil {
			return err
		}
	case "ablate-unit":
		r, err := experiments.AblateCoherenceUnit(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "ablate-unit", r); err != nil {
			return err
		}
	case "ablate-scoreboard":
		r, err := experiments.AblateScoreboard(opts, ms)
		if err != nil {
			return err
		}
		if err := emit(out, "ablate-scoreboard", r); err != nil {
			return err
		}
	case "selftest":
		r, err := selftest.Run(selftest.Config{WindowBytes: 256 << 10})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "built-in self test: passed=%v phase=%s instructions=%d window=%dKB fills=%d\n\n",
			r.Passed, r.Phase, r.Instructions, r.MemoryBytes>>10, r.CacheFills)
	case "scoma":
		r, err := experiments.SCOMA(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "scoma", r); err != nil {
			return err
		}
	case "fabric":
		t, err := experiments.Fabric()
		if err != nil {
			return err
		}
		t.Render(out)
	case "ablate-jouppi":
		r, err := experiments.AblateJouppi(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "ablate-jouppi", r); err != nil {
			return err
		}
	case "ablate-engines":
		r, err := experiments.AblateEngines(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "ablate-engines", r); err != nil {
			return err
		}
	case "ablate-inc":
		r, err := experiments.AblateINCAssociativity(opts)
		if err != nil {
			return err
		}
		if err := emit(out, "ablate-inc", r); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}

// tabler is any experiment result that can render itself.
type tabler interface{ Table() *report.Table }

// emit writes a result as a table or, in -json mode, as indented JSON
// tagged with the experiment name.
func emit(out io.Writer, name string, v tabler) error {
	if !jsonMode {
		v.Table().Render(out)
		return nil
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{"experiment": name, "result": v})
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: iramsim [flags] <experiment> [...]")
	fmt.Fprintln(os.Stderr, "experiments: spec cost table1 fig2 fig7 fig8 fig11 fig12 table3 table4 banks fig13..fig17 ablate-{linesize,victim,unit,scoreboard,inc,engines,jouppi} scoma fabric selftest workloads fig910 all")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iramsim:", err)
	os.Exit(1)
}
