// Command iramsim regenerates the tables and figures of Saulsbury,
// Pong & Nowatzyk, "Missing the Memory Wall" (ISCA 1996) from this
// repository's simulators.
//
// Usage:
//
//	iramsim [flags] <experiment> [...]
//
// Experiments: table1 fig2 fig7 fig8 fig11 fig12 table3 table4 banks
// mattson realcpi fig13 fig14 fig15 fig16 fig17 cost all
//
// Flags:
//
//	-quick        reduced fidelity (CI-sized runs)
//	-budget N     per-workload instruction budget
//	-seed N       Monte-Carlo seed
//	-procs list   processor counts for fig13..fig17 (e.g. 1,2,4,8,16)
//	-machine f    JSON machine description overriding core.Proposed()
//	-j N          worker goroutines for the experiment sweep
//	-trace-dir d  workload trace cache: replay recorded streams, record on miss
//	-replay d     synonym for -trace-dir (replay emphasis)
//	-record d     re-record workload traces into d; with no experiments,
//	              pre-populate every workload's stream and exit
//	-result-cache d   assembled-result cache dir (default .result-cache)
//	-no-result-cache  disable the result cache entirely
//	-result-cache-max-bytes N  prune the result cache to N bytes after the
//	              run (oldest entries first); with no experiments, prune
//	              and exit (`make cache-gc`)
//	-cpuprofile f write a CPU profile to f
//	-memprofile f write a heap profile to f on exit
//	-metrics f    write simulator metrics (JSON) to f after the run
//	-trace f      write the sweep event trace to f after the run
//	-debug-addr a serve expvar/pprof/metrics on host:port while running
//
// All orchestration — experiment dispatch, cache wiring, engine
// construction, rendering — lives in internal/runner; this command is
// a flag-parsing client of runner.Run, and cmd/iramsimd serves the
// same runs over HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/resultstore"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/workload"
)

// jsonMode switches experiment output from rendered tables to JSON
// (structured results for downstream plotting).
var jsonMode bool

// frontierPath is the -ds-frontier flag: when set, any experiment
// result that can export a Pareto frontier is written there after
// rendering.
var frontierPath string

// cliConfig gathers the parsed command-line flags.
type cliConfig struct {
	quick         bool
	budget, seed  int64
	procs         string
	machine       string
	workers       int
	record        string
	replay        string
	traceDir      string
	resultCache   string
	noResultCache bool
	cacheMaxBytes int64
	dsBanks       string
	dsColumns     string
	dsWays        string
	dsVictims     string
	dsCoarse      int
	dsRefine      int
	dsFrontier    string
	cpuprofile    string
	memprofile    string
	metrics       string
	traceOut      string
	debugAddr     string
}

func main() {
	var c cliConfig
	flag.BoolVar(&c.quick, "quick", false, "reduced-fidelity runs")
	flag.BoolVar(&jsonMode, "json", false, "emit experiment results as JSON instead of tables")
	flag.Int64Var(&c.budget, "budget", 0, "per-workload instruction budget (0 = default)")
	flag.Int64Var(&c.seed, "seed", 1, "Monte-Carlo seed")
	flag.StringVar(&c.procs, "procs", "", "comma-separated processor counts for fig13..fig17")
	flag.StringVar(&c.machine, "machine", "", "JSON machine description file (overrides the paper's integrated device)")
	flag.IntVar(&c.workers, "j", runtime.NumCPU(), "worker goroutines for the experiment sweep")
	flag.StringVar(&c.traceDir, "trace-dir", "", "workload trace cache dir: replay recorded reference streams, record on miss")
	flag.StringVar(&c.replay, "replay", "", "replay workload traces from this cache dir (synonym for -trace-dir)")
	flag.StringVar(&c.record, "record", "", "re-record workload traces into this cache dir; with no experiments, pre-populate every workload and exit")
	flag.StringVar(&c.resultCache, "result-cache", ".result-cache", "assembled-result cache dir (content-addressed; warm reruns decode instead of simulating)")
	flag.BoolVar(&c.noResultCache, "no-result-cache", false, "disable the result cache (every unit recomputes)")
	flag.Int64Var(&c.cacheMaxBytes, "result-cache-max-bytes", 0, "prune the result cache to this many bytes after the run, oldest entries first (0 = never; with no experiments, prune and exit)")
	flag.StringVar(&c.dsBanks, "ds-banks", "", "designspace banks axis: comma list and/or lo..hi:step / lo..hi:*k ranges (e.g. 8..128:8)")
	flag.StringVar(&c.dsColumns, "ds-columns", "", "designspace column-size axis (bytes), same range syntax")
	flag.StringVar(&c.dsWays, "ds-ways", "", "designspace D-cache associativity axis, same range syntax")
	flag.StringVar(&c.dsVictims, "ds-victims", "", "designspace victim-entry axis (0 = no victim cache), same range syntax")
	flag.IntVar(&c.dsCoarse, "ds-coarse", 0, "designspace coarse-grid stride: evaluate every k-th lattice index per axis first (<=1 = exhaustive)")
	flag.IntVar(&c.dsRefine, "ds-refine", 0, "designspace adaptive-refinement rounds around the screening frontier")
	flag.StringVar(&c.dsFrontier, "ds-frontier", "", "write the designspace Pareto frontier to this file (.json or .csv)")
	flag.StringVar(&c.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&c.memprofile, "memprofile", "", "write a heap profile to this file on exit")
	flag.StringVar(&c.metrics, "metrics", "", "write simulator metrics as JSON to this file after the run")
	flag.StringVar(&c.traceOut, "trace", "", "write the sweep event trace to this file after the run")
	flag.StringVar(&c.debugAddr, "debug-addr", "", "serve expvar, pprof, and live metrics on this host:port")
	flag.Parse()

	// `iramsim -record <dir>` with no experiments is record-all mode,
	// and `-result-cache-max-bytes` with no experiments is cache-gc
	// mode; anything else without experiments is a usage error.
	if flag.NArg() == 0 && c.record == "" && c.cacheMaxBytes == 0 {
		usage()
		os.Exit(2)
	}

	// mainErr carries the defers (profile flushes) that os.Exit would
	// skip; fatal runs only after they complete.
	if err := mainErr(c); err != nil {
		fatal(err)
	}
}

// request maps the fidelity flags onto the runner's request surface.
func request(c cliConfig) (runner.Request, error) {
	req := runner.Request{
		Experiments: flag.Args(),
		Quick:       c.quick,
		Budget:      c.budget,
		Seed:        c.seed,
		DSCoarse:    c.dsCoarse,
		DSRefine:    c.dsRefine,
	}
	if c.procs != "" {
		for _, s := range strings.Split(c.procs, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				return runner.Request{}, fmt.Errorf("bad -procs value %q", s)
			}
			req.Procs = append(req.Procs, n)
		}
	}
	if c.machine != "" {
		data, err := os.ReadFile(c.machine)
		if err != nil {
			return runner.Request{}, fmt.Errorf("core: machine config: %w", err)
		}
		req.Machine = data
	}
	for _, ax := range []struct {
		name string
		val  string
		dst  *[]int
	}{
		{"ds-banks", c.dsBanks, &req.DSBanks},
		{"ds-columns", c.dsColumns, &req.DSColumns},
		{"ds-ways", c.dsWays, &req.DSWays},
		{"ds-victims", c.dsVictims, &req.DSVictims},
	} {
		if ax.val == "" {
			continue
		}
		vals, err := parseAxis(ax.name, ax.val)
		if err != nil {
			return runner.Request{}, err
		}
		*ax.dst = vals
	}
	return req, nil
}

func mainErr(c cliConfig) error {
	if c.cpuprofile != "" {
		f, err := os.Create(c.cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if c.memprofile != "" {
		defer func() {
			f, err := os.Create(c.memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "iramsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "iramsim: memprofile:", err)
			}
		}()
	}

	req, err := request(c)
	if err != nil {
		return err
	}
	traceDir, err := resolveTraceDir(c)
	if err != nil {
		return err
	}
	if flag.NArg() == 0 && c.record != "" {
		opts, err := req.Options()
		if err != nil {
			return err
		}
		src, err := runner.OpenTraceSource(traceDir, opts.Seed, true)
		if err != nil {
			return err
		}
		opts.TraceSource = src
		return recordAll(opts, os.Stderr)
	}
	if flag.NArg() == 0 {
		return cacheGC(c, os.Stderr)
	}

	cfg := runner.Config{
		Workers:      c.workers,
		JSON:         jsonMode,
		Out:          os.Stdout,
		Progress:     os.Stderr,
		TraceDir:     traceDir,
		RecordTraces: c.record != "",
		FrontierPath: c.dsFrontier,
	}
	frontierPath = c.dsFrontier
	if !c.noResultCache {
		cfg.ResultCacheDir = c.resultCache
	}

	// Observability is opt-in: with no flag set, the registry stays nil
	// and every hook in the simulators is a single pointer check.
	if c.metrics != "" || c.debugAddr != "" {
		cfg.Obs = obs.NewRegistry()
	}
	if c.traceOut != "" {
		cfg.Trace = obs.NewTracer(obs.DefaultShardEvents)
	}
	if c.debugAddr != "" {
		srv, err := cfg.Obs.ServeDebug(c.debugAddr)
		if err != nil {
			return fmt.Errorf("debug-addr: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "iramsim: debug server listening on http://%s/debug/\n", srv.Addr)
	}

	runErr := runner.Run(context.Background(), req, cfg)

	// Dump metrics and trace even after a failed run: the sweep engine
	// merges what it measured before reporting its first error, and a
	// partial dump is exactly what debugging a failed sweep needs.
	if c.metrics != "" {
		if err := writeMetrics(c.metrics, cfg.Obs); err != nil {
			if runErr == nil {
				runErr = err
			} else {
				fmt.Fprintln(os.Stderr, "iramsim:", err)
			}
		}
	}
	if c.traceOut != "" {
		if err := writeTrace(c.traceOut, cfg.Trace); err != nil {
			if runErr == nil {
				runErr = err
			} else {
				fmt.Fprintln(os.Stderr, "iramsim:", err)
			}
		}
	}
	if runErr == nil && c.cacheMaxBytes > 0 && !c.noResultCache {
		runErr = cacheGC(c, os.Stderr)
	}
	return runErr
}

// resolveTraceDir folds the three cache-directory spellings into one.
// -trace-dir and -replay replay cached streams (recording on miss);
// -record always re-records. Replayed and live streams are
// reference-for-reference identical, so experiment output does not
// depend on the mode. Naming two different directories is an error
// rather than a silent precedence rule.
func resolveTraceDir(c cliConfig) (string, error) {
	dir := c.traceDir
	for _, d := range []string{c.replay, c.record} {
		if d == "" {
			continue
		}
		if dir != "" && dir != d {
			return "", fmt.Errorf("conflicting trace cache dirs %q and %q (-record/-replay/-trace-dir)", dir, d)
		}
		dir = d
	}
	return dir, nil
}

// recordAll pre-populates the trace cache with every workload's
// reference stream (record-all mode: `iramsim -record <dir>` with no
// experiment arguments). -quick and -budget select the recorded budget.
func recordAll(opts experiments.Options, progress io.Writer) error {
	for _, w := range workload.All() {
		var counts trace.Counts
		if _, err := opts.TraceSource.Stream(w, opts.Budget, &counts); err != nil {
			return err
		}
		fmt.Fprintf(progress, "iramsim: recorded %-12s %10d refs (%d instructions)\n",
			w.Name, counts.Total(), counts.Ifetches)
	}
	return nil
}

// cacheGC prunes the result cache to -result-cache-max-bytes, evicting
// oldest-mtime entries first (`make cache-gc`, and the post-run prune
// that keeps a long-running cache from filling the disk).
func cacheGC(c cliConfig, progress io.Writer) error {
	store, err := resultstore.NewStore(c.resultCache)
	if err != nil {
		return err
	}
	removed, freed, err := store.Prune(c.cacheMaxBytes)
	if err != nil {
		return err
	}
	fmt.Fprintf(progress, "iramsim: result-cache gc: pruned %d entries (%d bytes) from %s\n",
		removed, freed, c.resultCache)
	return nil
}

// writeMetrics dumps the registry as indented JSON to path.
func writeMetrics(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	werr := reg.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("metrics: %w", werr)
	}
	return nil
}

// writeTrace drains the tracer's ring buffers to path in global
// sequence order.
func writeTrace(path string, tr *obs.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	werr := tr.Drain(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("trace: %w", werr)
	}
	return nil
}

// runNames fans the named experiments' units out over the worker pool
// and renders each experiment's result, in command-line order, as its
// units complete. Kept as the byte-identity seam the determinism and
// golden tests drive; it is a thin adapter over runner.RunJobs.
func runNames(names []string, opts experiments.Options, ms *experiments.MeasurementSet,
	workers int, tracer *obs.Tracer, out io.Writer, progress io.Writer) error {
	return runner.RunJobs(context.Background(), names, opts, ms, runner.Config{
		Workers:      workers,
		JSON:         jsonMode,
		Out:          out,
		Progress:     progress,
		Obs:          opts.Obs,
		Trace:        tracer,
		ResultCache:  opts.ResultCache,
		FrontierPath: frontierPath,
	})
}

// run executes one experiment serially; kept as the single-name entry
// point (and for tests).
func run(name string, opts experiments.Options, ms *experiments.MeasurementSet) error {
	return runNames([]string{name}, opts, ms, 1, nil, os.Stdout, io.Discard)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: iramsim [flags] <experiment> [...]")
	fmt.Fprintln(os.Stderr, "experiments: spec cost table1 fig2 fig7 fig8 fig11 fig12 table3 table4 banks mattson realcpi fig13..fig17 ablate-{linesize,victim,unit,scoreboard,inc,engines,jouppi} designspace scoma fabric selftest workloads fig910 all")
	fmt.Fprintln(os.Stderr, "machine descriptions: -machine examples/machine-32bank.json (see examples/)")
	fmt.Fprintln(os.Stderr, "trace cache: -trace-dir/-replay/-record <dir> (record-all: iramsim -record <dir>)")
	fmt.Fprintln(os.Stderr, "design-space search: iramsim designspace -ds-banks 8..128:8 -ds-columns 256..4096:*2 \\")
	fmt.Fprintln(os.Stderr, "  -ds-ways 1,2,4 -ds-victims 0,16 -ds-coarse 4 -ds-refine 2 -ds-frontier pareto.json")
	fmt.Fprintln(os.Stderr, "  (points group into column-size families; each family costs ONE trace pass per bench)")
	fmt.Fprintln(os.Stderr, "result cache: on by default under .result-cache; -no-result-cache disables,")
	fmt.Fprintln(os.Stderr, "  -result-cache-max-bytes prunes (cache-gc: iramsim -result-cache-max-bytes N)")
	fmt.Fprintln(os.Stderr, "service: see cmd/iramsimd for the HTTP daemon serving these runs")
	flag.PrintDefaults()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iramsim:", err)
	os.Exit(1)
}
