package main

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseAxis(t *testing.T) {
	cases := []struct {
		spec string
		want []int
	}{
		{"16", []int{16}},
		{"0,8,16", []int{0, 8, 16}},
		{"8..32:8", []int{8, 16, 24, 32}},
		{"8..33:8", []int{8, 16, 24, 32}},
		{"256..4096:*2", []int{256, 512, 1024, 2048, 4096}},
		{"64..4096:*4", []int{64, 256, 1024, 4096}},
		{"4,2..8:2", []int{4, 2, 6, 8}}, // duplicates dropped, first wins
		{" 8 , 16 ", []int{8, 16}},
		{"2..2:1", []int{2}},
	}
	for _, c := range cases {
		got, err := parseAxis("ds-banks", c.spec)
		if err != nil {
			t.Errorf("parseAxis(%q): %v", c.spec, err)
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("parseAxis(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestParseAxisErrors(t *testing.T) {
	for _, spec := range []string{
		"",         // empty axis
		"x",        // not a number
		"-4",       // negative
		"8..4:2",   // end before start
		"8..16",    // missing step
		"8..16:0",  // zero step
		"8..16:*1", // geometric step must be >= 2
		"0..16:*2", // geometric from zero never terminates
		"8..16:-2", // negative step
	} {
		if _, err := parseAxis("ds-banks", spec); err == nil {
			t.Errorf("parseAxis(%q) accepted, want error", spec)
		} else if !strings.Contains(err.Error(), "ds-banks") {
			t.Errorf("parseAxis(%q) error %q does not name the flag", spec, err)
		}
	}
}
