package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// goldenNames is the quick-fidelity experiment subset the golden test
// pins: the datasheet, both cache-miss figures, a CPI table, a GSPN
// shape line, and one multiprocessor figure — together they cross every
// layer the machine-description refactor touched (core, workload,
// cpumodel, coherence/mpsim, experiments, CLI rendering).
var goldenNames = []string{"spec", "fig7", "fig8", "table3", "realcpi", "fig910", "fig13"}

// TestQuickGolden locks the default-device output byte-for-byte against
// testdata/quick_golden.txt. Any change to a derivation formula that
// shifts a simulated number fails here with a line diff. To bless an
// intentional change: UPDATE_GOLDEN=1 go test -run TestQuickGolden ./cmd/iramsim
func TestQuickGolden(t *testing.T) {
	opts := quickOpts()
	ms := experiments.NewMeasurementSet(opts)
	var buf bytes.Buffer
	if err := runNames(goldenNames, opts, ms, 1, nil, &buf, io.Discard); err != nil {
		t.Fatalf("runNames: %v", err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "quick_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("quick-fidelity output drifted from %s.\n"+
			"If intentional, regenerate with UPDATE_GOLDEN=1 and explain in the commit.\n%s",
			path, firstDiff(want, got))
	}
}

// TestDesignspaceGolden locks the design-space search output — grid
// table, Pareto frontier, and the accounting note proving pass sharing —
// byte-for-byte on a small grid (the default 12-point axes). To bless
// an intentional change:
// UPDATE_GOLDEN=1 go test -run TestDesignspaceGolden ./cmd/iramsim
func TestDesignspaceGolden(t *testing.T) {
	opts := quickOpts()
	ms := experiments.NewMeasurementSet(opts)
	var buf bytes.Buffer
	if err := runNames([]string{"designspace"}, opts, ms, 1, nil, &buf, io.Discard); err != nil {
		t.Fatalf("runNames: %v", err)
	}
	got := buf.Bytes()
	if !bytes.Contains(got, []byte("accounting: lattice=12")) {
		t.Fatalf("designspace output missing the accounting note:\n%s", got)
	}

	path := filepath.Join("testdata", "designspace_golden.txt")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("designspace output drifted from %s.\n"+
			"If intentional, regenerate with UPDATE_GOLDEN=1 and explain in the commit.\n%s",
			path, firstDiff(want, got))
	}
}

// firstDiff renders the first differing line of two outputs.
func firstDiff(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return "line " + itoa(i+1) + ":\n-" + w[i] + "\n+" + g[i]
		}
	}
	return "outputs differ in length: want " + itoa(len(w)) + " lines, got " + itoa(len(g))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestMachineFlag drives the -machine path end to end: the example
// 32-bank / 256 B-column device loads, validates, and runs the cache
// figures, the GSPN net, and a SPLASH multiprocessor figure, producing
// output that names the configured device and differs from the paper
// default where it should.
func TestMachineFlag(t *testing.T) {
	dev, err := core.LoadFile(filepath.Join("..", "..", "examples", "machine-32bank.json"))
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if dev.DRAM.Banks != 32 || dev.DRAM.ColumnBytes != 256 || dev.VictimEntries != 8 {
		t.Fatalf("example device = %d banks, %d B columns, %d victim entries; want 32/256/8",
			dev.DRAM.Banks, dev.DRAM.ColumnBytes, dev.VictimEntries)
	}

	opts := quickOpts()
	opts.Machine = &dev
	ms := experiments.NewMeasurementSet(opts)
	var buf bytes.Buffer
	if err := runNames([]string{"spec", "fig7", "fig8", "fig910", "fig13"}, opts, ms, 1, nil, &buf, io.Discard); err != nil {
		t.Fatalf("runNames with -machine device: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, dev.Name) {
		t.Errorf("spec output does not name the configured device %q", dev.Name)
	}
	if !strings.Contains(out, "32 banks") {
		t.Errorf("datasheet does not show the overridden bank count:\n%s", out)
	}

	// The same experiments on the default device must differ: the
	// refactor threads the device through, it doesn't just print it.
	defOpts := quickOpts()
	defMS := experiments.NewMeasurementSet(defOpts)
	var defBuf bytes.Buffer
	if err := runNames([]string{"fig7"}, defOpts, defMS, 1, nil, &defBuf, io.Discard); err != nil {
		t.Fatal(err)
	}
	var machBuf bytes.Buffer
	machMS := experiments.NewMeasurementSet(opts)
	if err := runNames([]string{"fig7"}, opts, machMS, 1, nil, &machBuf, io.Discard); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(defBuf.Bytes(), machBuf.Bytes()) {
		t.Error("fig7 output identical for default and 32-bank devices; -machine is not reaching the simulators")
	}
}

// TestMachineFlagRejectsBadConfig: an invalid geometry must fail at
// load time with the core validation error, not deep in a simulator.
func TestMachineFlagRejectsBadConfig(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	// 32 banks but I-cache left at the 16-bank default: violates the
	// one-column-buffer-per-bank identity.
	if err := os.WriteFile(bad, []byte(`{"DRAM": {"Banks": 32}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadFile(bad); err == nil {
		t.Error("invalid machine config accepted")
	}
	if _, err := core.LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing machine config accepted")
	}
	unknown := filepath.Join(dir, "unknown.json")
	if err := os.WriteFile(unknown, []byte(`{"NoSuchField": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := core.LoadFile(unknown); err == nil {
		t.Error("unknown field accepted")
	}
}
