package main

import (
	"fmt"
	"strconv"
	"strings"
)

// parseAxis parses one designspace axis flag: comma-separated terms,
// each a plain integer, an arithmetic range lo..hi:step, or a geometric
// range lo..hi:*k (e.g. "8..128:8", "256..4096:*2", "0,8,16").
// Duplicate values are dropped (first occurrence wins) so the search
// lattice stays a proper cross-product.
func parseAxis(name, spec string) ([]int, error) {
	var out []int
	seen := map[int]bool{}
	add := func(v int) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		lo, hi, step, geo, err := parseRange(term)
		if err != nil {
			return nil, fmt.Errorf("-%s: %w", name, err)
		}
		if !geo && step == 0 { // plain integer
			add(lo)
			continue
		}
		if geo {
			for v := lo; v <= hi; v *= step {
				add(v)
				if v > hi/step { // overflow guard
					break
				}
			}
			continue
		}
		for v := lo; v <= hi; v += step {
			add(v)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-%s: empty axis %q", name, spec)
	}
	return out, nil
}

// parseRange splits one axis term. A plain integer returns step 0.
func parseRange(term string) (lo, hi, step int, geo bool, err error) {
	i := strings.Index(term, "..")
	if i < 0 {
		v, err := strconv.Atoi(term)
		if err != nil || v < 0 {
			return 0, 0, 0, false, fmt.Errorf("bad axis value %q", term)
		}
		return v, 0, 0, false, nil
	}
	rest := term[i+2:]
	j := strings.Index(rest, ":")
	if j < 0 {
		return 0, 0, 0, false, fmt.Errorf("range %q needs a :step or :*k suffix", term)
	}
	lo, err = strconv.Atoi(term[:i])
	if err != nil || lo < 0 {
		return 0, 0, 0, false, fmt.Errorf("bad range start in %q", term)
	}
	hi, err = strconv.Atoi(rest[:j])
	if err != nil || hi < lo {
		return 0, 0, 0, false, fmt.Errorf("bad range end in %q", term)
	}
	s := rest[j+1:]
	if strings.HasPrefix(s, "*") {
		geo = true
		s = s[1:]
	}
	step, err = strconv.Atoi(s)
	if err != nil || (geo && step < 2) || (!geo && step < 1) || lo == 0 && geo {
		return 0, 0, 0, false, fmt.Errorf("bad range step in %q", term)
	}
	return lo, hi, step, geo, nil
}
