package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/resultstore"
)

// cheap experiments exercised through the dispatcher (the heavyweight
// ones are covered by internal/experiments' own tests).
func TestRunDispatcher(t *testing.T) {
	opts := experiments.Quick()
	opts.Budget = 50_000
	opts.GSPNInstr = 2_000
	opts.Procs = []int{1, 2}
	ms := experiments.NewMeasurementSet(opts)
	for _, name := range []string{"cost", "spec", "fabric", "selftest", "table1", "fig13", "fig910", "workloads"} {
		if err := run(name, opts, ms); err != nil {
			t.Errorf("run(%q): %v", name, err)
		}
	}
	if err := run("no-such-experiment", opts, ms); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// quickOpts is the CI-sized configuration the determinism tests sweep.
func quickOpts() experiments.Options {
	opts := experiments.Quick()
	opts.Budget = 50_000
	opts.GSPNInstr = 2_000
	opts.Procs = []int{1, 2}
	return opts
}

// sweepOutput runs a representative experiment mix through the worker
// pool and returns the deterministic stream. A fresh MeasurementSet
// per call makes every run recompute from its seeds.
func sweepOutput(t *testing.T, workers int, opts experiments.Options) []byte {
	t.Helper()
	names := []string{"spec", "cost", "table1", "fig7", "fig8", "table3", "realcpi", "fig13", "ablate-scoreboard", "fabric"}
	ms := experiments.NewMeasurementSet(opts)
	var buf bytes.Buffer
	if err := runNames(names, opts, ms, workers, nil, &buf, io.Discard); err != nil {
		t.Fatalf("runNames(j=%d): %v", workers, err)
	}
	return buf.Bytes()
}

// TestSweepDeterminism: the sweep's experiment output is byte-identical
// across worker counts (serial vs parallel) and across repeated
// parallel runs of the same configuration (seed stability), in both
// table and JSON modes.
func TestSweepDeterminism(t *testing.T) {
	opts := quickOpts()
	serial := sweepOutput(t, 1, opts)
	if len(serial) == 0 {
		t.Fatal("serial sweep produced no output")
	}
	parallel := sweepOutput(t, 8, opts)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("-j 1 and -j 8 output differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
	again := sweepOutput(t, 8, opts)
	if !bytes.Equal(parallel, again) {
		t.Errorf("two -j 8 runs of the same configuration differ")
	}

	jsonMode = true
	defer func() { jsonMode = false }()
	j1 := sweepOutput(t, 1, opts)
	j8 := sweepOutput(t, 8, opts)
	if !bytes.Equal(j1, j8) {
		t.Errorf("JSON output differs between -j 1 and -j 8")
	}
}

// TestSweepDeterminismWithCache extends the determinism guarantee to
// the result cache: against a shared store, the cold populating run and
// warm reruns at several worker counts must all reproduce the uncached
// stream byte-for-byte, in table and JSON modes.
func TestSweepDeterminismWithCache(t *testing.T) {
	opts := quickOpts()
	baseline := sweepOutput(t, 4, opts)

	store, err := resultstore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts.ResultCache = store
	if cold := sweepOutput(t, 1, opts); !bytes.Equal(baseline, cold) {
		t.Errorf("cold cached run differs from uncached baseline:\n--- plain ---\n%s\n--- cold ---\n%s", baseline, cold)
	}
	for _, w := range []int{2, 8} {
		if warm := sweepOutput(t, w, opts); !bytes.Equal(baseline, warm) {
			t.Errorf("warm cached run (-j %d) differs from uncached baseline", w)
		}
	}

	jsonMode = true
	defer func() { jsonMode = false }()
	plain := quickOpts()
	j1 := sweepOutput(t, 1, plain)
	if warm := sweepOutput(t, 8, opts); !bytes.Equal(j1, warm) {
		t.Errorf("JSON output differs between uncached and warm cached runs")
	}
}

// TestFastPathMatchesReplayTables: the rendered Figure 7/8 (and
// dependent Table 3) output must be byte-identical whether the
// measurements come from the single-pass stack-distance fast path
// (the default) or from per-configuration cache replay. Together with
// TestSweepDeterminism above — which runs the fast path — this extends
// the determinism guarantee to cover both measurement paths.
func TestFastPathMatchesReplayTables(t *testing.T) {
	opts := quickOpts()
	names := []string{"fig7", "fig8", "table3"}
	render := func(ms *experiments.MeasurementSet) []byte {
		var buf bytes.Buffer
		if err := runNames(names, opts, ms, 4, nil, &buf, io.Discard); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fast := render(experiments.NewMeasurementSet(opts))
	replay := render(experiments.NewReplayMeasurementSet(opts))
	if len(fast) == 0 {
		t.Fatal("fast path produced no output")
	}
	if !bytes.Equal(fast, replay) {
		t.Errorf("fast and replay tables differ:\n--- fast ---\n%s\n--- replay ---\n%s", fast, replay)
	}
}

// TestMetricsFlag drives the -metrics/-trace path end to end: a quick
// fig7+fig13 run with a live registry must (a) leave the experiment
// output byte-identical to an uninstrumented run, (b) dump JSON that
// encoding/json parses (no NaN/Inf leaks), and (c) populate the sweep,
// cache, mpsim, and coherence metric families.
func TestMetricsFlag(t *testing.T) {
	names := []string{"fig7", "fig13"}

	plain := quickOpts()
	plainMS := experiments.NewMeasurementSet(plain)
	var plainBuf bytes.Buffer
	if err := runNames(names, plain, plainMS, 2, nil, &plainBuf, io.Discard); err != nil {
		t.Fatalf("uninstrumented run: %v", err)
	}

	opts := quickOpts()
	opts.Obs = obs.NewRegistry()
	tracer := obs.NewTracer(1 << 10)
	ms := experiments.NewMeasurementSet(opts)
	var buf bytes.Buffer
	if err := runNames(names, opts, ms, 2, tracer, &buf, io.Discard); err != nil {
		t.Fatalf("instrumented run: %v", err)
	}
	if !bytes.Equal(plainBuf.Bytes(), buf.Bytes()) {
		t.Error("instrumentation changed the experiment output")
	}

	dir := t.TempDir()
	mpath := filepath.Join(dir, "metrics.json")
	if err := writeMetrics(mpath, opts.Obs); err != nil {
		t.Fatalf("writeMetrics: %v", err)
	}
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var dump map[string]map[string]interface{}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("metrics dump is not valid JSON: %v\n%s", err, raw)
	}
	for _, fam := range []string{"sweep", "cache", "mpsim", "coherence"} {
		if len(dump[fam]) == 0 {
			t.Errorf("metrics dump missing family %q; have %v", fam, dump)
		}
	}
	if v, ok := dump["sweep"]["units_completed"].(float64); !ok || v <= 0 {
		t.Errorf("sweep/units_completed = %v, want > 0", dump["sweep"]["units_completed"])
	}
	if v, ok := dump["mpsim"]["grants"].(float64); !ok || v < 0 {
		t.Errorf("mpsim/grants = %v, want >= 0", dump["mpsim"]["grants"])
	}

	tpath := filepath.Join(dir, "trace.log")
	if err := writeTrace(tpath, tracer); err != nil {
		t.Fatalf("writeTrace: %v", err)
	}
	tr, err := os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(tr), "unit_done") {
		t.Errorf("trace has no unit_done events:\n%s", tr)
	}
	if !strings.Contains(string(tr), "# trace:") {
		t.Errorf("trace missing summary line:\n%s", tr)
	}
}

func TestRunDispatcherJSON(t *testing.T) {
	jsonMode = true
	defer func() { jsonMode = false }()
	opts := experiments.Quick()
	opts.Budget = 50_000
	opts.GSPNInstr = 2_000
	opts.Procs = []int{1}
	ms := experiments.NewMeasurementSet(opts)
	if err := run("table1", opts, ms); err != nil {
		t.Errorf("json table1: %v", err)
	}
	if err := run("fig13", opts, ms); err != nil {
		t.Errorf("json fig13: %v", err)
	}
}
