package main

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/experiments"
)

// cheap experiments exercised through the dispatcher (the heavyweight
// ones are covered by internal/experiments' own tests).
func TestRunDispatcher(t *testing.T) {
	opts := experiments.Quick()
	opts.Budget = 50_000
	opts.GSPNInstr = 2_000
	opts.Procs = []int{1, 2}
	ms := experiments.NewMeasurementSet(opts)
	for _, name := range []string{"cost", "spec", "fabric", "selftest", "table1", "fig13", "fig910", "workloads"} {
		if err := run(name, opts, ms); err != nil {
			t.Errorf("run(%q): %v", name, err)
		}
	}
	if err := run("no-such-experiment", opts, ms); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// quickOpts is the CI-sized configuration the determinism tests sweep.
func quickOpts() experiments.Options {
	opts := experiments.Quick()
	opts.Budget = 50_000
	opts.GSPNInstr = 2_000
	opts.Procs = []int{1, 2}
	return opts
}

// sweepOutput runs a representative experiment mix through the worker
// pool and returns the deterministic stream. A fresh MeasurementSet
// per call makes every run recompute from its seeds.
func sweepOutput(t *testing.T, workers int, opts experiments.Options) []byte {
	t.Helper()
	names := []string{"spec", "cost", "table1", "fig7", "table3", "fig13", "ablate-scoreboard", "fabric"}
	ms := experiments.NewMeasurementSet(opts)
	var buf bytes.Buffer
	if err := runNames(names, opts, ms, workers, &buf, io.Discard); err != nil {
		t.Fatalf("runNames(j=%d): %v", workers, err)
	}
	return buf.Bytes()
}

// TestSweepDeterminism: the sweep's experiment output is byte-identical
// across worker counts (serial vs parallel) and across repeated
// parallel runs of the same configuration (seed stability), in both
// table and JSON modes.
func TestSweepDeterminism(t *testing.T) {
	opts := quickOpts()
	serial := sweepOutput(t, 1, opts)
	if len(serial) == 0 {
		t.Fatal("serial sweep produced no output")
	}
	parallel := sweepOutput(t, 8, opts)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("-j 1 and -j 8 output differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", serial, parallel)
	}
	again := sweepOutput(t, 8, opts)
	if !bytes.Equal(parallel, again) {
		t.Errorf("two -j 8 runs of the same configuration differ")
	}

	jsonMode = true
	defer func() { jsonMode = false }()
	j1 := sweepOutput(t, 1, opts)
	j8 := sweepOutput(t, 8, opts)
	if !bytes.Equal(j1, j8) {
		t.Errorf("JSON output differs between -j 1 and -j 8")
	}
}

// TestFastPathMatchesReplayTables: the rendered Figure 7/8 (and
// dependent Table 3) output must be byte-identical whether the
// measurements come from the single-pass stack-distance fast path
// (the default) or from per-configuration cache replay. Together with
// TestSweepDeterminism above — which runs the fast path — this extends
// the determinism guarantee to cover both measurement paths.
func TestFastPathMatchesReplayTables(t *testing.T) {
	opts := quickOpts()
	names := []string{"fig7", "fig8", "table3"}
	render := func(ms *experiments.MeasurementSet) []byte {
		var buf bytes.Buffer
		if err := runNames(names, opts, ms, 4, &buf, io.Discard); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	fast := render(experiments.NewMeasurementSet(opts))
	replay := render(experiments.NewReplayMeasurementSet(opts))
	if len(fast) == 0 {
		t.Fatal("fast path produced no output")
	}
	if !bytes.Equal(fast, replay) {
		t.Errorf("fast and replay tables differ:\n--- fast ---\n%s\n--- replay ---\n%s", fast, replay)
	}
}

func TestRunDispatcherJSON(t *testing.T) {
	jsonMode = true
	defer func() { jsonMode = false }()
	opts := experiments.Quick()
	opts.Budget = 50_000
	opts.GSPNInstr = 2_000
	opts.Procs = []int{1}
	ms := experiments.NewMeasurementSet(opts)
	if err := run("table1", opts, ms); err != nil {
		t.Errorf("json table1: %v", err)
	}
	if err := run("fig13", opts, ms); err != nil {
		t.Errorf("json fig13: %v", err)
	}
}
