package main

import (
	"testing"

	"repro/internal/experiments"
)

// cheap experiments exercised through the dispatcher (the heavyweight
// ones are covered by internal/experiments' own tests).
func TestRunDispatcher(t *testing.T) {
	opts := experiments.Quick()
	opts.Budget = 50_000
	opts.GSPNInstr = 2_000
	opts.Procs = []int{1, 2}
	ms := experiments.NewMeasurementSet(opts)
	for _, name := range []string{"cost", "spec", "fabric", "selftest", "table1", "fig13", "fig910", "workloads"} {
		if err := run(name, opts, ms); err != nil {
			t.Errorf("run(%q): %v", name, err)
		}
	}
	if err := run("no-such-experiment", opts, ms); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunDispatcherJSON(t *testing.T) {
	jsonMode = true
	defer func() { jsonMode = false }()
	opts := experiments.Quick()
	opts.Budget = 50_000
	opts.GSPNInstr = 2_000
	opts.Procs = []int{1}
	ms := experiments.NewMeasurementSet(opts)
	if err := run("table1", opts, ms); err != nil {
		t.Errorf("json table1: %v", err)
	}
	if err := run("fig13", opts, ms); err != nil {
		t.Errorf("json fig13: %v", err)
	}
}
