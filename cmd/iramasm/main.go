// Command iramasm is the developer tool for the simulated device's
// ISA: assemble, list, and run programs; capture their reference
// streams to trace files; replay traces into arbitrary cache
// configurations; and report instruction mixes.
//
// Usage:
//
//	iramasm build  -o out.img file.s
//	iramasm run    [-budget N] [-regs] file.s|file.img
//	iramasm list   file.s|file.img
//	iramasm mix    [-budget N] file.s|file.img
//	iramasm trace  [-budget N] -o out.trc file.s|file.img
//	iramasm replay [-cache SIZE:LINE:WAYS]... in.trc
//	iramasm dis    [-o out.s] [-roundtrip] file.s|file.img
//
// Program images (.img) are the serialized form of an assembled
// program — build once, run many times, or "download" into the device
// as the paper's Section 3 tester does.
//
// Cache specs are like "16384:32:1" (bytes:line:ways); "proposed"
// selects the paper's 16 KB 2-way column-buffer cache with the victim
// cache. Replay always reports each configured cache's miss rates.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/dis"
	"repro/internal/isa"
	"repro/internal/trace"
	"repro/internal/vm"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "build":
		err = cmdBuild(args)
	case "run":
		err = cmdRun(args)
	case "list":
		err = cmdList(args)
	case "mix":
		err = cmdMix(args)
	case "trace":
		err = cmdTrace(args)
	case "replay":
		err = cmdReplay(args)
	case "dis":
		err = cmdDis(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "iramasm:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  iramasm build  -o out.img file.s
  iramasm run    [-budget N] [-regs] file.s|file.img
  iramasm list   file.s|file.img
  iramasm mix    [-budget N] file.s|file.img
  iramasm trace  [-budget N] -o out.trc file.s|file.img
  iramasm replay [-cache SIZE:LINE:WAYS]... in.trc
  iramasm dis    [-o out.s] [-roundtrip] file.s|file.img`)
}

// loadProgram reads either assembly source or a prebuilt image,
// selected by the .img extension.
func loadProgram(path string) (*isa.Program, error) {
	if strings.HasSuffix(path, ".img") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return isa.ReadImage(f)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Assemble(string(src))
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "", "output image file (required)")
	fs.Parse(args)
	if fs.NArg() != 1 || *out == "" {
		return fmt.Errorf("build: need -o out.img and one source file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := isa.WriteImage(f, p); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d instructions, %d data segments, %d bytes\n",
		*out, len(p.Code), len(p.Data), info.Size())
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	budget := fs.Int64("budget", 10_000_000, "instruction budget")
	regs := fs.Bool("regs", false, "dump registers on exit")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("run: need exactly one source file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	var counts trace.Counts
	cpu, err := vm.RunProgram(p, &counts, *budget)
	if err != nil {
		return err
	}
	fmt.Printf("halted=%v instructions=%d loads=%d stores=%d branches=%d taken=%d flops=%d\n",
		cpu.Halted(), cpu.Instructions, counts.Loads, counts.Stores,
		cpu.Branches, cpu.TakenBranches, cpu.FloatOps)
	if *regs {
		for i := 0; i < isa.NumRegs; i += 4 {
			for j := i; j < i+4; j++ {
				fmt.Printf("r%-2d %#-18x ", j, cpu.Regs[j])
			}
			fmt.Println()
		}
	}
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("list: need exactly one source file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	// Invert the symbol table for labelling.
	labels := map[uint64][]string{}
	for name, addr := range p.Symbols {
		labels[addr] = append(labels[addr], name)
	}
	for addr := range labels {
		sort.Strings(labels[addr])
	}
	for i, ins := range p.Code {
		addr := p.CodeBase + uint64(i)*isa.WordSize
		for _, l := range labels[addr] {
			fmt.Printf("%s:\n", l)
		}
		fmt.Printf("  %#08x  %s\n", addr, ins)
	}
	if len(p.Data) > 0 {
		fmt.Println()
		for _, seg := range p.Data {
			fmt.Printf("  data %#08x  %d bytes\n", seg.Base, len(seg.Bytes))
		}
	}
	return nil
}

func cmdMix(args []string) error {
	fs := flag.NewFlagSet("mix", flag.ExitOnError)
	budget := fs.Int64("budget", 10_000_000, "instruction budget")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("mix: need exactly one source file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	// Execute and histogram dynamic opcodes by sampling the PC stream.
	hist := map[string]int64{}
	var total int64
	cpu := vm.New(p, trace.SinkFunc(func(r trace.Ref) {
		if r.Kind != trace.Ifetch {
			return
		}
		if ins, ok := p.InstrAt(r.Addr); ok {
			hist[ins.Op.String()]++
			total++
		}
	}))
	if err := cpu.Run(*budget); err != nil && err != vm.ErrBudget {
		return err
	}
	type row struct {
		op string
		n  int64
	}
	rows := make([]row, 0, len(hist))
	for op, n := range hist {
		rows = append(rows, row{op, n})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("dynamic instruction mix (%d instructions):\n", total)
	for _, r := range rows {
		fmt.Printf("  %-8s %10d  %5.1f%%\n", r.op, r.n, 100*float64(r.n)/float64(total))
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	budget := fs.Int64("budget", 10_000_000, "instruction budget")
	out := fs.String("o", "", "output trace file (required)")
	fs.Parse(args)
	if fs.NArg() != 1 || *out == "" {
		return fmt.Errorf("trace: need -o out.trc and one source file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}
	if _, err := vm.RunProgram(p, w, *budget); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d references (%d bytes, %.2f bytes/ref) to %s\n",
		w.Count(), info.Size(), float64(info.Size())/float64(w.Count()), *out)
	return nil
}

// cmdDis disassembles an image (or source, assembled first) back to
// canonical assembly via internal/dis — the same code path as the
// standalone iramdis tool. With -roundtrip it additionally proves the
// output reassembles to a byte-identical image.
func cmdDis(args []string) error {
	fs := flag.NewFlagSet("dis", flag.ExitOnError)
	out := fs.String("o", "", "output assembly file (default stdout)")
	roundtrip := fs.Bool("roundtrip", false, "verify the output reassembles byte-identical")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("dis: need exactly one source file")
	}
	p, err := loadProgram(fs.Arg(0))
	if err != nil {
		return err
	}
	src, err := dis.Disassemble(p)
	if err != nil {
		return err
	}
	if *roundtrip {
		if err := dis.RoundTrip(p); err != nil {
			return err
		}
	}
	if *out != "" {
		return os.WriteFile(*out, []byte(src), 0o644)
	}
	_, err = fmt.Print(src)
	return err
}

// cacheSpecs collects repeated -cache flags.
type cacheSpecs []string

func (c *cacheSpecs) String() string     { return strings.Join(*c, ",") }
func (c *cacheSpecs) Set(s string) error { *c = append(*c, s); return nil }

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var specs cacheSpecs
	fs.Var(&specs, "cache", "cache spec SIZE:LINE:WAYS or 'proposed' (repeatable)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("replay: need exactly one trace file")
	}
	if len(specs) == 0 {
		specs = cacheSpecs{"proposed", "16384:32:1", "16384:32:2"}
	}

	caches := make([]cache.Cache, 0, len(specs))
	for _, s := range specs {
		c, err := parseCacheSpec(s)
		if err != nil {
			return err
		}
		caches = append(caches, c)
	}

	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var counts trace.Counts
	n, err := r.Replay(trace.SinkFunc(func(ref trace.Ref) {
		counts.Ref(ref)
		if ref.Kind == trace.Ifetch {
			return
		}
		for _, c := range caches {
			c.Access(ref.Addr, ref.Kind)
		}
	}))
	if err != nil {
		return err
	}
	fmt.Printf("replayed %d references (%d data)\n", n, counts.Loads+counts.Stores)
	for _, c := range caches {
		s := c.Stats()
		fmt.Printf("  %-28s  load %6.3f%%  store %6.3f%%  total %6.3f%%\n",
			c.Name(), s.Load.Percent(), s.Store.Percent(), s.Data().Percent())
	}
	return nil
}

// maxCacheSize bounds -cache sizes: a simulated cache larger than
// 1 GiB is certainly a typo and would allocate its tag array for real.
const maxCacheSize = 1 << 30

// parseCacheSpec validates a -cache flag completely at parse time so
// a bad spec is a CLI error with a precise message, never a panic or a
// silently degenerate geometry deep inside the replay loop.
func parseCacheSpec(s string) (cache.Cache, error) {
	if s == "proposed" {
		return cache.Proposed(), nil
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -cache spec %q: want SIZE:LINE:WAYS or 'proposed'", s)
	}
	size, err := strconv.ParseUint(parts[0], 10, 64)
	if err != nil || size == 0 {
		return nil, fmt.Errorf("bad -cache spec %q: size %q is not a positive integer", s, parts[0])
	}
	line, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil || line == 0 {
		return nil, fmt.Errorf("bad -cache spec %q: line %q is not a positive integer", s, parts[1])
	}
	ways, err := strconv.Atoi(parts[2])
	if err != nil || ways < 1 {
		return nil, fmt.Errorf("bad -cache spec %q: ways %q is not a positive integer", s, parts[2])
	}
	if size > maxCacheSize {
		return nil, fmt.Errorf("bad -cache spec %q: size %d exceeds the 1 GiB limit", s, size)
	}
	if line&(line-1) != 0 {
		return nil, fmt.Errorf("bad -cache spec %q: line size %d is not a power of two", s, line)
	}
	if line > size {
		return nil, fmt.Errorf("bad -cache spec %q: line size %d exceeds cache size %d", s, line, size)
	}
	// Bound ways before multiplying so line*ways cannot overflow.
	if uint64(ways) > size/line {
		return nil, fmt.Errorf("bad -cache spec %q: %d ways needs %d lines but the cache holds only %d",
			s, ways, ways, size/line)
	}
	if size%(line*uint64(ways)) != 0 {
		return nil, fmt.Errorf("bad -cache spec %q: size %d not divisible by line %d × ways %d",
			s, size, line, ways)
	}
	if sets := size / (line * uint64(ways)); sets&(sets-1) != 0 {
		return nil, fmt.Errorf("bad -cache spec %q: derived set count %d is not a power of two", s, sets)
	}
	name := fmt.Sprintf("%dKB %d-way %dB", size>>10, ways, line)
	return cache.NewSetAssoc(name, size, line, ways), nil
}
