package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseCacheSpec(t *testing.T) {
	c, err := parseCacheSpec("16384:32:2")
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "16KB 2-way 32B" {
		t.Errorf("name = %q", c.Name())
	}
	if _, err := parseCacheSpec("proposed"); err != nil {
		t.Errorf("proposed spec rejected: %v", err)
	}
	for _, bad := range []string{
		"", "16384:32", "a:b:c", "100:32:2", "16384:32:0",
		"16384:0:1",                     // zero line
		"0:32:1",                        // zero size
		"16384:32:-2",                   // negative ways
		"16384:48:1",                    // non-power-of-two line
		"96:32:1",                       // 3 sets: non-power-of-two set count
		"16:32:1",                       // line larger than cache
		"16384:32:1024",                 // more ways than lines
		"2147483648:32:1",               // over the 1 GiB limit
		"18446744073709551615:32:1",     // uint64 max size
		"16384:18446744073709551615:1",  // uint64 max line
		"16384:32:18446744073709551616", // ways overflows int
	} {
		if _, err := parseCacheSpec(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		} else if !strings.Contains(err.Error(), "bad -cache spec") {
			t.Errorf("bad spec %q: error %q missing 'bad -cache spec' prefix", bad, err)
		}
	}
	// Fully-associative and direct-mapped extremes remain valid.
	for _, good := range []string{"16384:512:2", "512:512:1", "1024:32:32"} {
		if _, err := parseCacheSpec(good); err != nil {
			t.Errorf("good spec %q rejected: %v", good, err)
		}
	}
}

func TestCacheSpecsFlag(t *testing.T) {
	var cs cacheSpecs
	if err := cs.Set("proposed"); err != nil {
		t.Fatal(err)
	}
	if err := cs.Set("16384:32:1"); err != nil {
		t.Fatal(err)
	}
	if cs.String() != "proposed,16384:32:1" {
		t.Errorf("String() = %q", cs.String())
	}
}

func writeDemo(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.s")
	src := `
main:	li   r10, 0x1000000
	li   r2, 256
loop:	ld   r4, 0(r10)
	add  r5, r5, r4
	addi r10, r10, 8
	addi r2, r2, -1
	bne  r2, zero, loop
	halt
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCmdRunListMix(t *testing.T) {
	path := writeDemo(t)
	if err := cmdRun([]string{path}); err != nil {
		t.Errorf("run: %v", err)
	}
	if err := cmdList([]string{path}); err != nil {
		t.Errorf("list: %v", err)
	}
	if err := cmdMix([]string{path}); err != nil {
		t.Errorf("mix: %v", err)
	}
}

func TestCmdTraceReplay(t *testing.T) {
	path := writeDemo(t)
	trc := filepath.Join(filepath.Dir(path), "demo.trc")
	if err := cmdTrace([]string{"-o", trc, path}); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if err := cmdReplay([]string{trc}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if err := cmdReplay([]string{"-cache", "8192:32:1", trc}); err != nil {
		t.Fatalf("replay with spec: %v", err)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdRun([]string{}); err == nil {
		t.Error("run without file accepted")
	}
	if err := cmdTrace([]string{"nope.s"}); err == nil {
		t.Error("trace without -o accepted")
	}
	if err := cmdReplay([]string{"/nonexistent.trc"}); err == nil {
		t.Error("replay of missing file accepted")
	}
	if err := cmdRun([]string{"/nonexistent.s"}); err == nil {
		t.Error("run of missing file accepted")
	}
}

// TestCmdDisRoundTrip: `iramasm dis -roundtrip` on both a source file
// and a built image, writing the recovered assembly out and checking it
// is itself assemblable input for `iramasm run`.
func TestCmdDisRoundTrip(t *testing.T) {
	path := writeDemo(t)
	dir := filepath.Dir(path)
	img := filepath.Join(dir, "demo.img")
	if err := cmdBuild([]string{"-o", img, path}); err != nil {
		t.Fatalf("build: %v", err)
	}
	recovered := filepath.Join(dir, "recovered.s")
	if err := cmdDis([]string{"-roundtrip", "-o", recovered, img}); err != nil {
		t.Fatalf("dis image: %v", err)
	}
	if err := cmdDis([]string{"-roundtrip", path}); err != nil {
		t.Fatalf("dis source: %v", err)
	}
	if err := cmdRun([]string{recovered}); err != nil {
		t.Fatalf("run recovered assembly: %v", err)
	}
	if err := cmdDis([]string{}); err == nil {
		t.Error("dis without file accepted")
	}
	if err := cmdDis([]string{"/nonexistent.img"}); err == nil {
		t.Error("dis of missing file accepted")
	}
}

func TestCmdBuildAndRunImage(t *testing.T) {
	path := writeDemo(t)
	img := filepath.Join(filepath.Dir(path), "demo.img")
	if err := cmdBuild([]string{"-o", img, path}); err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := cmdRun([]string{img}); err != nil {
		t.Fatalf("run image: %v", err)
	}
	if err := cmdList([]string{img}); err != nil {
		t.Fatalf("list image: %v", err)
	}
	if err := cmdBuild([]string{path}); err == nil {
		t.Error("build without -o accepted")
	}
}
