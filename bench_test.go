// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md for the experiment index). Each benchmark
// runs the corresponding experiment at reduced fidelity so that
// `go test -bench=. -benchmem` completes in minutes; use cmd/iramsim
// without -quick for full-fidelity runs.
//
// Custom metrics surface each experiment's headline number so the
// bench output itself documents the reproduction:
//
//	BenchmarkTable1     ss5_speedup      (paper: 1.38x)
//	BenchmarkTable4     tomcatv_cpi      (paper: 1.23)
//	BenchmarkFig13..17  victim_vs_ref    (<= ~1 means integrated wins)
package repro_test

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/experiments"
	"repro/internal/resultstore"
	"repro/internal/sweep"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

func quickOpts() experiments.Options {
	o := experiments.Quick()
	o.Budget = 200_000
	o.GSPNInstr = 10_000
	o.Procs = []int{1, 4}
	return o
}

// BenchmarkTable1 regenerates Table 1 (SS-5 vs SS-10/61 Synopsys).
func BenchmarkTable1(b *testing.B) {
	o := quickOpts()
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		speedup = r.Rows[1].ModelNsPerInst / r.Rows[0].ModelNsPerInst
	}
	b.ReportMetric(speedup, "ss5_speedup")
}

// BenchmarkFig2 regenerates Figure 2 (latency vs size and stride).
func BenchmarkFig2(b *testing.B) {
	o := quickOpts()
	var beyond float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(o)
		if err != nil {
			b.Fatal(err)
		}
		beyond = r.AvgNs["SS-10/61"][16<<20][512] / r.AvgNs["SS-5"][16<<20][512]
	}
	b.ReportMetric(beyond, "ss10_vs_ss5_at_16MB")
}

// BenchmarkFig7 regenerates Figure 7 (I-cache miss rates).
func BenchmarkFig7(b *testing.B) {
	o := quickOpts()
	var fppppRatio float64
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		r, err := experiments.Fig7(o, ms)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Bench == "145.fpppp" && row.Proposed > 0 {
				fppppRatio = row.Conv[8] / row.Proposed
			}
		}
	}
	b.ReportMetric(fppppRatio, "fpppp_advantage_x")
}

// BenchmarkFig8 regenerates Figure 8 (D-cache miss rates).
func BenchmarkFig8(b *testing.B) {
	o := quickOpts()
	var victimGain float64
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		r, err := experiments.Fig8(o, ms)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Bench == "101.tomcatv" {
				victimGain = (row.PropLoad + row.PropStore) / (row.VicLoad + row.VicStore)
			}
		}
	}
	b.ReportMetric(victimGain, "tomcatv_victim_gain_x")
}

// BenchmarkFig7Warm is BenchmarkFig7 against a pre-populated result
// cache: every unit decodes its assembled row instead of simulating, so
// this measures the warm-rerun floor (store read + versioned gob
// decode). The gap to BenchmarkFig7 is what a rerun saves.
func BenchmarkFig7Warm(b *testing.B) {
	store, err := resultstore.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	o := quickOpts()
	run := func() {
		eng := &sweep.Engine{Workers: 4, Cache: store}
		job := experiments.Fig7Job(o, experiments.NewMeasurementSet(o))
		if err := eng.Run([]sweep.Job{job}, func(sweep.JobResult) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	run() // untimed cold pass populates the store
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// tracedOpts returns quickOpts with the reference streams served from a
// pre-populated trace cache, so the benchmark times replay (decode +
// cache models), not trace generation (VM execution + cache models).
func tracedOpts(b *testing.B) experiments.Options {
	b.Helper()
	store, err := tracestore.NewStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	o := quickOpts()
	o.TraceSource = workload.Traced{Store: store, Seed: o.Seed}
	return o
}

// BenchmarkFig7Replay is BenchmarkFig7 with recorded traces: the gap to
// BenchmarkFig7 is the cost of re-executing the workload generators.
func BenchmarkFig7Replay(b *testing.B) {
	o := tracedOpts(b)
	if _, err := experiments.Fig7(o, experiments.NewMeasurementSet(o)); err != nil {
		b.Fatal(err) // untimed recording pass populates the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		if _, err := experiments.Fig7(o, ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Replay is BenchmarkFig8 with recorded traces.
func BenchmarkFig8Replay(b *testing.B) {
	o := tracedOpts(b)
	if _, err := experiments.Fig8(o, experiments.NewMeasurementSet(o)); err != nil {
		b.Fatal(err) // untimed recording pass populates the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		if _, err := experiments.Fig8(o, ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDesignspace times the design-space search on a 64-point
// lattice, replay-fed: every point is answered by families x benches
// shared trace passes plus the capped GSPN stage, so this measures the
// whole pass-sharing fast path end to end.
func BenchmarkDesignspace(b *testing.B) {
	o := tracedOpts(b)
	o.Budget = 100_000
	o.GSPNInstr = 2_000
	o.DSBanks = []int{4, 8, 12, 16, 24, 32, 48, 64}
	o.DSColumns = []int{256, 512}
	o.DSWays = []int{1, 2}
	o.DSVictims = []int{0, 16}
	if _, err := experiments.Designspace(o); err != nil {
		b.Fatal(err) // untimed recording pass populates the trace cache
	}
	b.ResetTimer()
	var pointsPerPass float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Designspace(o)
		if err != nil {
			b.Fatal(err)
		}
		a := r.Accounting
		pointsPerPass = float64(a.Evaluated*a.Benches) / float64(a.Passes)
	}
	b.ReportMetric(pointsPerPass, "points_per_pass")
}

// BenchmarkFig11 regenerates Figure 11 (conventional CPI sensitivity).
func BenchmarkFig11(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		if _, err := experiments.Fig11(o, ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12 regenerates Figure 12 (integrated CPI sensitivity).
func BenchmarkFig12(b *testing.B) {
	o := quickOpts()
	var cpi30ns float64
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		r, err := experiments.Fig12(o, ms)
		if err != nil {
			b.Fatal(err)
		}
		if v, ok := r.CPIAt("126.gcc", 0, 6); ok {
			cpi30ns = v
		}
	}
	b.ReportMetric(cpi30ns, "gcc_cpi_at_30ns")
}

// BenchmarkTable3 regenerates Table 3 (Spec'95 CPI, no victim cache).
func BenchmarkTable3(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		if _, err := experiments.Table34(o, ms, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4 regenerates Table 4 (Spec'95 CPI, with victim cache).
func BenchmarkTable4(b *testing.B) {
	o := quickOpts()
	var tomcatv float64
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		r, err := experiments.Table34(o, ms, true)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Bench == "101.tomcatv" {
				tomcatv = row.TotalCPI
			}
		}
	}
	b.ReportMetric(tomcatv, "tomcatv_cpi")
}

// BenchmarkBankSensitivity regenerates the Section 5.6 study.
func BenchmarkBankSensitivity(b *testing.B) {
	o := quickOpts()
	var util16 float64
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		r, err := experiments.Banks(o, ms)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Integrated && row.Banks == 16 && row.Bench == "126.gcc" {
				util16 = 100 * row.Utilization
			}
		}
	}
	b.ReportMetric(util16, "gcc_bank_util_pct")
}

// splashBench runs one of Figures 13-17 and reports the victim-config
// execution time relative to the reference CC-NUMA at the highest
// processor count.
func splashBench(b *testing.B, figure int) {
	o := quickOpts()
	var rel float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.SplashFigure(o, figure)
		if err != nil {
			b.Fatal(err)
		}
		p := o.Procs[len(o.Procs)-1]
		ref, _ := r.Cycles(coherence.ReferenceCCNUMA, p)
		vic, _ := r.Cycles(coherence.IntegratedVictim, p)
		if ref > 0 {
			rel = float64(vic) / float64(ref)
		}
	}
	b.ReportMetric(rel, "victim_vs_ref")
}

// BenchmarkFig13LU regenerates Figure 13 (LU).
func BenchmarkFig13LU(b *testing.B) { splashBench(b, 13) }

// BenchmarkFig14MP3D regenerates Figure 14 (MP3D).
func BenchmarkFig14MP3D(b *testing.B) { splashBench(b, 14) }

// BenchmarkFig15Ocean regenerates Figure 15 (OCEAN).
func BenchmarkFig15Ocean(b *testing.B) { splashBench(b, 15) }

// BenchmarkFig16Water regenerates Figure 16 (WATER).
func BenchmarkFig16Water(b *testing.B) { splashBench(b, 16) }

// BenchmarkFig17Pthor regenerates Figure 17 (PTHOR).
func BenchmarkFig17Pthor(b *testing.B) { splashBench(b, 17) }

// BenchmarkAblateLineSize sweeps the D-cache line size (Section 5.3/5.6
// design tension).
func BenchmarkAblateLineSize(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateLineSize(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblateVictimSize sweeps the victim-cache capacity around
// the paper's 16-entry choice.
func BenchmarkAblateVictimSize(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateVictimSize(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblateCoherenceUnit quantifies the paper's false-sharing
// warning about 512 B coherence units.
func BenchmarkAblateCoherenceUnit(b *testing.B) {
	o := quickOpts()
	var blowup float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblateCoherenceUnit(o)
		if err != nil {
			b.Fatal(err)
		}
		var small, big uint64
		for _, row := range r.Rows {
			if row.Bench == "falseshare (micro)" {
				if row.UnitBytes == 32 {
					small = row.Cycles
				}
				if row.UnitBytes == 512 {
					big = row.Cycles
				}
			}
		}
		if small > 0 {
			blowup = float64(big) / float64(small)
		}
	}
	b.ReportMetric(blowup, "falseshare_blowup_x")
}

// BenchmarkAblateINC compares INC associativities (Section 6.2).
func BenchmarkAblateINC(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateINCAssociativity(o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblateScoreboard sweeps the Figure 10 T23 stall rate.
func BenchmarkAblateScoreboard(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		ms := experiments.NewMeasurementSet(o)
		if _, err := experiments.AblateScoreboard(o, ms); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblateEngines varies the protocol-engine count (Section 4.2
// budgets two engines).
func BenchmarkAblateEngines(b *testing.B) {
	o := quickOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateEngines(o); err != nil {
			b.Fatal(err)
		}
	}
}
