package iram_test

import (
	"fmt"

	"repro/iram"
)

// A sequential sweep shows the 512-byte column-buffer lines at work:
// 64 consecutive 8-byte loads per line means at most 1/64 of accesses
// can miss, where a conventional 32-byte line misses every 4th access.
func ExampleRun() {
	prog := iram.MustAssemble(`
	main:	li   r10, 0x1000000
		li   r2, 65536
	loop:	ld   r4, 0(r10)
		addi r10, r10, 8
		addi r2, r2, -1
		bne  r2, zero, loop
		halt
	`)
	stats, err := iram.Run(prog, iram.RunConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("proposed %.2f%% vs conventional %.2f%%\n",
		stats.Proposed.LoadMissPct, stats.Conv16KB.LoadMissPct)
	// Output:
	// proposed 1.56% vs conventional 25.00%
}

func ExampleAssemble() {
	prog, err := iram.Assemble("main: li r1, 42\nhalt")
	if err != nil {
		panic(err)
	}
	fmt.Println(len(prog.Code), "instructions at", prog.Entry)
	// Output:
	// 2 instructions at 4096
}

// Custom parallel workloads run against the coherent shared-memory
// machine of Section 6.
func ExampleRunParallel() {
	res := iram.RunParallel(4, iram.IntegratedVictim, func(p *iram.Proc) {
		base := uint64(p.ID) * 4096 // each processor works on its own page
		for i := uint64(0); i < 64; i++ {
			p.Read(base + i*32)
			p.Compute(2)
		}
		p.Barrier()
	})
	fmt.Println(res.Accesses, "accesses on", res.Procs, "processors")
	// Output:
	// 256 accesses on 4 processors
}

func ExampleSelfTest() {
	r, err := iram.SelfTest(16 << 10)
	if err != nil {
		panic(err)
	}
	fmt.Println("passed:", r.Passed, "phase:", r.Phase)
	// Output:
	// passed: true phase: complete
}
