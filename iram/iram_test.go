package iram

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleErrors(t *testing.T) {
	if _, err := Assemble("bogus r1"); err == nil {
		t.Error("Assemble accepted invalid source")
	}
}

func TestRunSimpleProgram(t *testing.T) {
	p := MustAssemble(`
	main:	li r10, 0x100000
		li r2, 1024
	loop:	ld r4, 0(r10)
		add r5, r5, r4
		addi r10, r10, 8
		addi r2, r2, -1
		bne r2, zero, loop
		halt
	`)
	st, err := Run(p, RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions != 3+1024*5 { // 2 li + loop + halt
		t.Errorf("instructions = %d", st.Instructions)
	}
	if st.Loads != 1024 {
		t.Errorf("loads = %d", st.Loads)
	}
	// Sequential loads: the 512 B lines give far fewer misses than the
	// conventional 32 B lines.
	if st.Proposed.LoadMissPct >= st.Conv16KB.LoadMissPct {
		t.Errorf("proposed %.2f%% should beat conventional %.2f%% on a sequential sweep",
			st.Proposed.LoadMissPct, st.Conv16KB.LoadMissPct)
	}
	if st.TotalCPI < 1 {
		t.Errorf("total CPI = %v", st.TotalCPI)
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 22 {
		t.Errorf("%d workloads, want 22 (SPEC + synopsys + real kernels)", len(ws))
	}
}

func TestRunWorkload(t *testing.T) {
	st, err := RunWorkload("132.ijpeg", 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions < 50_000 {
		t.Errorf("instructions = %d", st.Instructions)
	}
	if st.BaseCPI != 1.00 {
		t.Errorf("ijpeg base CPI = %v, want the paper's 1.00", st.BaseCPI)
	}
	if _, err := RunWorkload("nonesuch", 0); err == nil {
		t.Error("RunWorkload accepted an unknown name")
	}
}

func TestSPLASH(t *testing.T) {
	names := SPLASHBenchmarks()
	if len(names) != 5 {
		t.Fatalf("%d SPLASH benchmarks", len(names))
	}
	r, err := RunSPLASH("LU", 2, IntegratedVictim, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Accesses == 0 {
		t.Error("empty SPLASH run")
	}
	if _, err := RunSPLASH("nonesuch", 2, IntegratedVictim, true); err == nil {
		t.Error("RunSPLASH accepted an unknown name")
	}
}

func TestRunParallel(t *testing.T) {
	r := RunParallel(2, ReferenceCCNUMA, func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Read(uint64(i * 32))
		}
		p.Barrier()
	})
	if r.Accesses != 20 {
		t.Errorf("accesses = %d, want 20", r.Accesses)
	}
}

func TestMPConfigStrings(t *testing.T) {
	for _, c := range []MPConfig{ReferenceCCNUMA, IntegratedPlain, IntegratedVictim} {
		if !strings.Contains(c.String(), " ") {
			t.Errorf("config %d: poor description %q", int(c), c.String())
		}
	}
}

func TestRawRun(t *testing.T) {
	p := MustAssemble("main: li r1, 1\nhalt")
	n := 0
	_, err := RawRun(p, trace.SinkFunc(func(trace.Ref) { n++ }), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("saw %d refs, want 2 ifetches", n)
	}
}

func TestSelfTest(t *testing.T) {
	r, err := SelfTest(8 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed || r.Phase != "complete" {
		t.Errorf("self test: %+v", r)
	}
}

func TestSimpleCOMAConfig(t *testing.T) {
	r, err := RunSPLASH("OCEAN", 2, SimpleCOMA, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 {
		t.Error("empty S-COMA run")
	}
}
