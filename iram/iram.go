// Package iram is the public API of this reproduction of Saulsbury,
// Pong & Nowatzyk, "Missing the Memory Wall: The Case for
// Processor/Memory Integration" (ISCA 1996).
//
// It exposes the building blocks a downstream user needs:
//
//   - Assemble and run programs on the simulated processor while
//     measuring the proposed column-buffer caches against conventional
//     organisations (Section 5 methodology);
//
//   - estimate CPI for the integrated device or the conventional
//     reference system using the paper's GSPN models (Figures 9–12);
//
//   - run the bundled SPEC'95-like workloads and the SPLASH-like
//     multiprocessor benchmarks on the integrated CC-NUMA and the
//     reference CC-NUMA (Section 6);
//
//   - regenerate every table and figure of the paper's evaluation
//     (see cmd/iramsim and EXPERIMENTS.md).
//
// The heavy machinery lives in internal packages; this package keeps a
// small, stable surface.
package iram

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/coherence"
	"repro/internal/cpumodel"
	"repro/internal/isa"
	"repro/internal/mpsim"
	"repro/internal/selftest"
	"repro/internal/splash"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Program is an assembled program for the simulated processor.
type Program = isa.Program

// Assemble translates assembly source (see internal/asm for the
// syntax) into a Program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// MustAssemble is Assemble that panics on error.
func MustAssemble(src string) *Program { return asm.MustAssemble(src) }

// CacheRates summarises one cache organisation's miss behaviour.
type CacheRates struct {
	IMissPct     float64 // instruction misses / instruction fetches
	LoadMissPct  float64
	StoreMissPct float64
}

// RunStats is the result of executing a program on the integrated
// processing element model.
type RunStats struct {
	Instructions int64
	Loads        int64
	Stores       int64

	// Proposed is the paper's organisation: 8 KB/512 B I-cache and
	// 16 KB 2-way/512 B D-cache with the victim cache.
	Proposed CacheRates
	// ProposedNoVictim is the same without the victim cache.
	ProposedNoVictim CacheRates
	// Conv16KB is a conventional pair of 16 KB direct-mapped caches
	// with 32 B lines, for comparison.
	Conv16KB CacheRates

	// MemCPI and TotalCPI are GSPN estimates for the integrated device
	// at the paper's 200 MHz / 30 ns operating point. BaseCPI is the
	// assumed functional-unit component (1.0 unless set via RunConfig).
	BaseCPI  float64
	MemCPI   float64
	TotalCPI float64
}

// RunConfig adjusts Run.
type RunConfig struct {
	// Budget limits executed instructions (0 = run to halt, up to a
	// 100M safety cap).
	Budget int64
	// BaseCPI is the functional-unit CPI component (default 1.0).
	BaseCPI float64
	// GSPNInstructions sets the Monte-Carlo length (default 50000).
	GSPNInstructions int64
	// Seed drives the Monte-Carlo runs (default 1).
	Seed int64
}

// Run executes a program against the full uniprocessor methodology:
// trace-driven cache simulation plus the GSPN CPI model.
func Run(p *Program, cfg RunConfig) (*RunStats, error) {
	if cfg.Budget <= 0 {
		cfg.Budget = 100_000_000
	}
	if cfg.BaseCPI == 0 {
		cfg.BaseCPI = 1
	}
	if cfg.GSPNInstructions <= 0 {
		cfg.GSPNInstructions = 50_000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cs := workload.NewCacheSet()
	cpu, err := vm.RunProgram(p, cs, cfg.Budget)
	if err != nil {
		return nil, err
	}
	counts := cs.RefCounts()
	propI := cs.PropIStats()
	propD := cs.PropDStats()
	vicD := cs.PropDVictimStats()
	convI16 := cs.ConvIStats(16)
	convD16 := cs.ConvDMStats(16)
	st := &RunStats{
		Instructions: cpu.Instructions,
		Loads:        counts.Loads,
		Stores:       counts.Stores,
		BaseCPI:      cfg.BaseCPI,
		Proposed: CacheRates{
			IMissPct:     propI.Ifetch.Percent(),
			LoadMissPct:  vicD.Load.Percent(),
			StoreMissPct: vicD.Store.Percent(),
		},
		ProposedNoVictim: CacheRates{
			IMissPct:     propI.Ifetch.Percent(),
			LoadMissPct:  propD.Load.Percent(),
			StoreMissPct: propD.Store.Percent(),
		},
		Conv16KB: CacheRates{
			IMissPct:     convI16.Ifetch.Percent(),
			LoadMissPct:  convD16.Load.Percent(),
			StoreMissPct: convD16.Store.Percent(),
		},
	}
	rates := cpumodel.AppRates{
		Name:      "user-program",
		BaseCPI:   cfg.BaseCPI,
		LoadFrac:  counts.LoadFrac(),
		StoreFrac: counts.StoreFrac(),
		IHit:      1 - propI.Ifetch.Rate(),
		LoadHit:   1 - vicD.Load.Rate(),
		StoreHit:  1 - vicD.Store.Rate(),
	}
	r, err := cpumodel.Evaluate(cpumodel.Integrated(), rates, cfg.GSPNInstructions, cfg.Seed)
	if err != nil {
		return nil, err
	}
	st.MemCPI = r.MemCPI
	st.TotalCPI = r.TotalCPI
	return st, nil
}

// Workloads lists the bundled benchmark stand-ins (Table 2).
func Workloads() []string { return workload.Names() }

// RunWorkload executes one bundled workload under the full
// methodology. budget <= 0 uses the workload's default (~2M
// instructions).
func RunWorkload(name string, budget int64) (*RunStats, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	cfg := RunConfig{Budget: budget, BaseCPI: w.BaseCPI}
	if cfg.Budget <= 0 {
		cfg.Budget = w.Budget
	}
	return Run(w.Build(), cfg)
}

// MPConfig selects the multiprocessor system architecture.
type MPConfig int

// The three systems of Figures 13–17, plus the Simple-COMA mode the
// paper's protocol engines also support (Section 4.2).
const (
	ReferenceCCNUMA  = MPConfig(coherence.ReferenceCCNUMA)
	IntegratedPlain  = MPConfig(coherence.IntegratedPlain)
	IntegratedVictim = MPConfig(coherence.IntegratedVictim)
	SimpleCOMA       = MPConfig(coherence.SimpleCOMA)
)

func (c MPConfig) String() string { return coherence.Config(c).String() }

// MPResult is a multiprocessor benchmark outcome.
type MPResult struct {
	Benchmark string
	Procs     int
	Cycles    uint64
	Accesses  int64
}

// SPLASHBenchmarks lists the bundled parallel benchmarks (Table 5).
func SPLASHBenchmarks() []string {
	var names []string
	for _, b := range splash.All() {
		names = append(names, b.Name)
	}
	return names
}

// RunSPLASH executes one SPLASH benchmark on procs processors under
// the chosen architecture. quick selects the reduced data set.
func RunSPLASH(name string, procs int, cfg MPConfig, quick bool) (*MPResult, error) {
	b, err := splash.ByName(name)
	if err != nil {
		return nil, err
	}
	sz := splash.Full()
	if quick {
		sz = splash.Quick()
	}
	r := b.Run(procs, coherence.Config(cfg), sz)
	return &MPResult{Benchmark: name, Procs: procs, Cycles: r.Cycles, Accesses: r.Accesses}, nil
}

// Machine exposes the coherence machine + execution-driven simulator
// for custom parallel workloads: body runs once per simulated
// processor and issues references through the Proc handle.
func RunParallel(procs int, cfg MPConfig, body func(p *Proc)) *MPResult {
	m := coherence.NewConfiguredMachine(coherence.Config(cfg), procs)
	r := mpsim.Run(procs, m, m.Lat.SyncCosts(), func(p *mpsim.Proc) {
		body(&Proc{p})
	})
	return &MPResult{Benchmark: "custom", Procs: procs, Cycles: r.Cycles, Accesses: r.Accesses}
}

// Proc is a simulated processor handle for RunParallel bodies.
type Proc struct{ *mpsim.Proc }

// TraceSink adapts a user function into a sink usable with RawRun.
type TraceSink = trace.Sink

// RawRun executes a program delivering the raw reference stream to the
// given sink (advanced use: custom cache studies).
func RawRun(p *Program, sink TraceSink, budget int64) (instructions int64, err error) {
	cpu, err := vm.RunProgram(p, sink, budget)
	if err != nil {
		return 0, err
	}
	return cpu.Instructions, nil
}

// Validate sanity-checks the library against a few paper invariants;
// it is cheap and intended for smoke tests in downstream projects.
func Validate() error {
	p, err := Assemble("main: li r1, 1\nhalt")
	if err != nil {
		return fmt.Errorf("iram: assembler broken: %w", err)
	}
	st, err := Run(p, RunConfig{Budget: 10})
	if err != nil {
		return fmt.Errorf("iram: run broken: %w", err)
	}
	if st.Instructions != 2 {
		return fmt.Errorf("iram: executed %d instructions, want 2", st.Instructions)
	}
	return nil
}

// SelfTestResult reports a built-in self-test run (Section 3 of the
// paper: the integrated device is tested by downloading a self-test
// program, not by an external memory/CPU tester).
type SelfTestResult struct {
	Passed       bool
	Phase        string
	Instructions int64
}

// SelfTest runs the built-in self-test over a memory window of the
// given size (0 = 64 KiB).
func SelfTest(windowBytes uint64) (*SelfTestResult, error) {
	r, err := selftest.Run(selftest.Config{WindowBytes: windowBytes})
	if err != nil {
		return nil, err
	}
	return &SelfTestResult{Passed: r.Passed, Phase: r.Phase, Instructions: r.Instructions}, nil
}
