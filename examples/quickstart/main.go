// Quickstart: assemble a small program, run it on the integrated
// processor/memory model, and print what the paper's methodology
// reports about it — cache miss rates for the proposed organisation
// versus a conventional one, and the GSPN CPI estimate.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/iram"
)

// A little kernel: sum a 1 MB array with stride 8 (sequential), then
// chase a pseudo-random index around a 4 MB table. The sequential
// phase loves the 512-byte column-buffer lines; the random phase
// defeats every cache — a two-act summary of the whole paper.
const src = `
	.text 0x1000
main:	li   r10, 0x1000000        # array base
	li   r2, 131072            # 1 MB / 8
seq:	ld   r4, 0(r10)
	add  r5, r5, r4
	addi r10, r10, 8
	addi r2, r2, -1
	bne  r2, zero, seq

	li   r3, 123456789         # LCG state
	li   r2, 100000            # random probes
rnd:	muli r4, r3, 1103515245
	addi r4, r4, 12345
	andi r3, r4, 0x7fffffff
	srli r9, r3, 5
	andi r9, r9, 0x3ffff8      # 4 MB, 8-byte aligned
	addi r9, r9, 0x2000000     # table base
	ld   r4, 0(r9)
	add  r5, r5, r4
	addi r2, r2, -1
	bne  r2, zero, rnd
	halt
`

func main() {
	prog, err := iram.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := iram.Run(prog, iram.RunConfig{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("executed %d instructions (%d loads, %d stores)\n\n",
		stats.Instructions, stats.Loads, stats.Stores)
	fmt.Println("data-cache miss rates (loads):")
	fmt.Printf("  proposed 16KB 2-way, 512B lines + victim:  %6.3f%%\n", stats.Proposed.LoadMissPct)
	fmt.Printf("  proposed without victim cache:             %6.3f%%\n", stats.ProposedNoVictim.LoadMissPct)
	fmt.Printf("  conventional 16KB direct-mapped, 32B:      %6.3f%%\n", stats.Conv16KB.LoadMissPct)
	fmt.Println("\nGSPN CPI estimate for the integrated device (200 MHz, 30 ns DRAM):")
	fmt.Printf("  base CPI %.2f + memory CPI %.3f = %.3f total\n",
		stats.BaseCPI, stats.MemCPI, stats.TotalCPI)

	fmt.Println("\nbundled workloads:", iram.Workloads())
}
