// Customcpu shows the advanced API: feed a custom program's raw
// reference stream into cache models of your own choosing, and build a
// custom parallel workload against the coherent shared-memory machine.
//
// Run with:
//
//	go run ./examples/customcpu
package main

import (
	"fmt"
	"log"

	"repro/internal/cache"
	"repro/internal/trace"
	"repro/iram"
)

// A stencil kernel whose two streams collide in the 16-set column
// buffer cache (bases 8 KiB apart) — the tomcatv effect in miniature.
const src = `
	.text 0x1000
main:	li   r10, 0x1000000
	li   r11, 0x1004040        # 8 KiB + 64 B away: same proposed set
	li   r12, 0x1008080
	li   r2, 65536
loop:	ld   r4, 0(r10)
	ld   r5, 0(r11)
	ld   r6, 0(r12)
	fadd r7, r4, r5
	fadd r7, r7, r6
	addi r10, r10, 8
	addi r11, r11, 8
	addi r12, r12, 8
	addi r2, r2, -1
	bne  r2, zero, loop
	halt
`

func main() {
	prog, err := iram.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	// Hand-picked cache organisations to compare.
	proposed := cache.Proposed()    // column buffers + victim
	plain := cache.ProposedDCache() // column buffers only
	conv := cache.NewDirectMapped("conv 16KB", 16<<10, 32)

	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.Ifetch {
			return
		}
		proposed.Access(r.Addr, r.Kind)
		plain.Access(r.Addr, r.Kind)
		conv.Access(r.Addr, r.Kind)
	})
	if _, err := iram.RawRun(prog, sink, 0); err != nil {
		log.Fatal(err)
	}

	fmt.Println("three colliding streams, data-cache miss rates:")
	fmt.Printf("  column buffers only:        %6.2f%%  (16 sets thrash)\n", plain.Stats().Data().Percent())
	fmt.Printf("  column buffers + victim:    %6.2f%%  (victim absorbs the conflicts)\n", proposed.Stats().Data().Percent())
	fmt.Printf("  conventional 16KB DM 32B:   %6.2f%%  (512 sets: no conflict)\n", conv.Stats().Data().Percent())

	// A custom parallel workload: 4 processors ping-pong a counter.
	res := iram.RunParallel(4, iram.IntegratedVictim, func(p *iram.Proc) {
		const counter = 0x1000
		for i := 0; i < 200; i++ {
			p.Lock(1)
			p.Read(counter)
			p.Compute(3)
			p.Write(counter)
			p.Unlock(1)
		}
		p.Barrier()
	})
	fmt.Printf("\ncustom 4-proc lock ping-pong: %d cycles for %d shared accesses\n",
		res.Cycles, res.Accesses)
}
