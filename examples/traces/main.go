// Traces demonstrates the Shade-style capture/replay workflow: run a
// bundled workload once, capture its reference stream to a compact
// trace file, then replay the trace into a sweep of cache geometries —
// the methodology loop behind Figures 7 and 8, without re-executing
// the program for every configuration.
//
// Run with:
//
//	go run ./examples/traces
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

func main() {
	w, err := workload.ByName("101.tomcatv")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Capture: one execution, one trace file.
	path := filepath.Join(os.TempDir(), "tomcatv.trc")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	tw, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	const budget = 400_000
	if _, err := vm.RunProgram(w.Build(), tw, budget); err != nil {
		log.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := f.Stat()
	f.Close()
	fmt.Printf("captured %d references of %s to %s (%.2f bytes/ref)\n\n",
		tw.Count(), w.Name, path, float64(info.Size())/float64(tw.Count()))

	// 2. Replay: one pass of the trace drives a whole design sweep.
	sweep := []cache.Cache{
		cache.NewDirectMapped("16KB DM 32B", 16<<10, 32),
		cache.NewSetAssoc("16KB 2W 32B", 16<<10, 32, 2),
		cache.ProposedDCache(),
		cache.Proposed(),
	}
	in, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer in.Close()
	tr, err := trace.NewReader(in)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tr.Replay(trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.Ifetch {
			return
		}
		for _, c := range sweep {
			c.Access(r.Addr, r.Kind)
		}
	})); err != nil {
		log.Fatal(err)
	}

	fmt.Println("data-cache miss rates from one captured trace:")
	for _, c := range sweep {
		fmt.Printf("  %-34s %7.3f%%\n", c.Name(), c.Stats().Data().Percent())
	}
	fmt.Println("\ntomcatv's Figure 8 story in four lines: the 512B-line cache thrashes,")
	fmt.Println("the victim cache absorbs the conflicts, conventional caches sit between.")
}
