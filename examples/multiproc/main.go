// Multiproc runs a SPLASH benchmark across processor counts on the
// three machine models of Section 6 — the reference CC-NUMA (infinite
// second-level cache), the integrated design with only column buffers,
// and the integrated design with the victim cache — and prints the
// execution-time comparison of Figures 13–17.
//
// Run with:
//
//	go run ./examples/multiproc [benchmark]
//
// where benchmark is LU, MP3D, OCEAN, WATER, or PTHOR (default LU).
package main

import (
	"fmt"
	"log"
	"os"

	"repro/iram"
)

func main() {
	bench := "LU"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	configs := []iram.MPConfig{
		iram.ReferenceCCNUMA, iram.IntegratedPlain, iram.IntegratedVictim,
	}
	fmt.Printf("%s execution time (cycles) on the three Section 6 machines (quick data set):\n\n", bench)
	fmt.Printf("%-6s %-20s %-24s %-20s\n", "procs", "reference CC-NUMA", "integrated (no victim)", "integrated + victim")
	for _, procs := range []int{1, 2, 4, 8} {
		fmt.Printf("%-6d", procs)
		for _, cfg := range configs {
			r, err := iram.RunSPLASH(bench, procs, cfg, true)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %-22d", r.Cycles)
		}
		fmt.Println()
	}
	fmt.Println("\nThe victim cache lets the integrated design match or beat a CC-NUMA")
	fmt.Println("with an infinitely large second-level cache (paper, Section 6.2).")
}
