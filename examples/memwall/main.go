// Memwall reproduces the paper's Section 2 motivation on demand: the
// SparcStation-5 versus SparcStation-10/61 latency surface (Figure 2)
// and the Synopsys-style run-time estimate (Table 1), showing how a
// "slower" machine with an integrated memory controller beats a
// "faster" one once the working set escapes the caches.
//
// Run with:
//
//	go run ./examples/memwall
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/experiments"
)

func main() {
	opts := experiments.Quick()

	fig2, err := experiments.Fig2(opts)
	if err != nil {
		log.Fatal(err)
	}
	fig2.Table().Render(os.Stdout)

	t1, err := experiments.Table1(opts)
	if err != nil {
		log.Fatal(err)
	}
	t1.Table().Render(os.Stdout)

	ss5 := t1.Rows[0]
	ss10 := t1.Rows[1]
	fmt.Printf("SPEC'92 says the SS-10/61 is %.2fx faster;", ss10.SpecInt92/ss5.SpecInt92)
	fmt.Printf(" on the >50 MB workload the SS-5 is %.2fx faster.\n",
		ss10.ModelNsPerInst/ss5.ModelNsPerInst)
	fmt.Println("That inversion is the memory wall the paper is pointing at.")
}
