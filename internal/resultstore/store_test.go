package resultstore

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := newStore(t)
	key := "fig7_126.gcc-deadbeef"
	payload := []byte("the result bytes")

	if _, ok := s.Get(key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	if err := s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("Get = %q, want %q", got, payload)
	}

	// Overwrite wins.
	next := []byte("newer result")
	if err := s.Put(key, next); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(key); !bytes.Equal(got, next) {
		t.Errorf("Get after overwrite = %q, want %q", got, next)
	}
}

func TestStoreEmptyDir(t *testing.T) {
	if _, err := NewStore(""); err == nil {
		t.Fatal("NewStore(\"\") succeeded")
	}
}

// TestStoreConcurrentPut mirrors tracestore's TestStoreConcurrentRecord:
// many writers race on one key (run under -race), exactly one complete
// file wins, no temp files leak, and a read returns the payload intact.
func TestStoreConcurrentPut(t *testing.T) {
	s := newStore(t)
	const key = "race-key-0123456789abcdef"
	payload := bytes.Repeat([]byte("unit result "), 1024)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Put(key, payload)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
	if len(files) != 1 {
		t.Fatalf("want exactly one cache file, got %v", files)
	}
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("Get after concurrent Put missed")
	}
	if !bytes.Equal(got, payload) {
		t.Error("Get after concurrent Put returned different bytes")
	}
}

// TestStoreCorruption: truncated, bit-flipped, magic-less, and
// header-short entries all read back as a miss, never as wrong bytes.
func TestStoreCorruption(t *testing.T) {
	payload := bytes.Repeat([]byte{0xa5, 0x5a, 0x01}, 512)
	corrupt := map[string]func([]byte) []byte{
		"truncated":  func(raw []byte) []byte { return raw[:len(raw)/2] },
		"bit-flip":   func(raw []byte) []byte { raw[len(raw)-7] ^= 0x40; return raw },
		"bad-magic":  func(raw []byte) []byte { raw[0] ^= 0xff; return raw },
		"header-cut": func(raw []byte) []byte { return raw[:10] },
		"empty":      func([]byte) []byte { return nil },
	}
	for name, mangle := range corrupt {
		t.Run(name, func(t *testing.T) {
			s := newStore(t)
			key := "victim-" + name
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			raw, err := os.ReadFile(s.Path(key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.Path(key), mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry (%s) hit with %d bytes; want miss", name, len(got))
			}
			// Recompute-and-overwrite heals the entry.
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); !ok || !bytes.Equal(got, payload) {
				t.Error("Put after corruption did not restore the entry")
			}
		})
	}
}

// TestAcquireSingleFlight: two holders of the same key never overlap;
// holders of different keys do not block each other.
func TestAcquireSingleFlight(t *testing.T) {
	s := newStore(t)
	var holders atomic.Int32
	var maxHolders atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			release := s.Acquire("one-key")
			n := holders.Add(1)
			for {
				m := maxHolders.Load()
				if n <= m || maxHolders.CompareAndSwap(m, n) {
					break
				}
			}
			holders.Add(-1)
			release()
		}()
	}
	wg.Wait()
	if maxHolders.Load() != 1 {
		t.Errorf("max concurrent holders of one key = %d, want 1", maxHolders.Load())
	}

	// Distinct keys are independent: acquiring b while a is held must
	// not block (a deadlock here fails the test by timeout).
	ra := s.Acquire("a")
	rb := s.Acquire("b")
	rb()
	ra()
}

func TestPathSanitizesKeys(t *testing.T) {
	s := newStore(t)
	key := "designspace/gspn/b=16 col=512/126.gcc-abc123"
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	base := s.Path(key)
	for _, r := range base[len(s.Dir())+1:] {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			t.Fatalf("Path(%q) contains unsafe rune %q", key, r)
		}
	}
	if _, ok := s.Get(key); !ok {
		t.Error("round trip through sanitized path failed")
	}

	long := strings.Repeat("x", 400) + "-digestdigestdigest"
	if err := s.Put(long, []byte("y")); err != nil {
		t.Fatalf("long key: %v", err)
	}
	if _, ok := s.Get(long); !ok {
		t.Error("long key round trip failed")
	}
}

// putSized writes an entry of n payload bytes and backdates its mtime
// so eviction order is deterministic regardless of test speed.
func putSized(t *testing.T, s *Store, key string, n int, age time.Duration) {
	t.Helper()
	if err := s.Put(key, bytes.Repeat([]byte{'x'}, n)); err != nil {
		t.Fatal(err)
	}
	when := time.Now().Add(-age)
	if err := os.Chtimes(s.Path(key), when, when); err != nil {
		t.Fatal(err)
	}
}

func TestPruneEvictsOldestFirst(t *testing.T) {
	s := newStore(t)
	putSized(t, s, "old", 100, 3*time.Hour)
	putSized(t, s, "mid", 100, 2*time.Hour)
	putSized(t, s, "new", 100, time.Hour)
	total, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}

	// Cap just under the total: exactly one (the oldest) must go.
	removed, freed, err := s.Prune(total - 1)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 || freed != total/3 {
		t.Fatalf("Prune = (%d, %d), want 1 entry of %d bytes", removed, freed, total/3)
	}
	if _, ok := s.Get("old"); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, key := range []string{"mid", "new"} {
		if _, ok := s.Get(key); !ok {
			t.Errorf("entry %q evicted out of order", key)
		}
	}
}

func TestPruneUnderCapIsNoop(t *testing.T) {
	s := newStore(t)
	putSized(t, s, "a", 50, time.Hour)
	putSized(t, s, "b", 50, time.Hour)
	removed, freed, err := s.Prune(1 << 20)
	if err != nil || removed != 0 || freed != 0 {
		t.Fatalf("Prune under cap = (%d, %d, %v), want noop", removed, freed, err)
	}
}

func TestPruneZeroEmptiesStore(t *testing.T) {
	s := newStore(t)
	putSized(t, s, "a", 10, time.Hour)
	putSized(t, s, "b", 10, time.Hour)
	if removed, _, err := s.Prune(0); err != nil || removed != 2 {
		t.Fatalf("Prune(0) removed %d (err %v), want 2", removed, err)
	}
	if size, _ := s.Size(); size != 0 {
		t.Errorf("store size after Prune(0) = %d", size)
	}
}

// TestPruneSweepsStaleTemps: an orphaned temp file from a crashed
// writer is removed once clearly stale; a fresh one (possibly an
// in-flight Put from another process) is left alone.
func TestPruneSweepsStaleTemps(t *testing.T) {
	s := newStore(t)
	stale := filepath.Join(s.dir, "crashed.tmp")
	fresh := filepath.Join(s.dir, "inflight.tmp")
	for _, p := range []string{stale, fresh} {
		if err := os.WriteFile(p, []byte("partial"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * staleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}

	if _, _, err := s.Prune(1 << 20); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale temp file survived prune")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Error("fresh temp file was swept; may race an in-flight Put")
	}
}
