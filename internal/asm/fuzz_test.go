package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble checks that the assembler never panics on arbitrary
// source and that anything it accepts satisfies basic structural
// invariants. (Run with `go test -fuzz=FuzzAssemble ./internal/asm`
// for an open-ended session; the seed corpus runs in ordinary tests.)
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"main: halt",
		"main: li r1, 5\nadd r2, r1, r1\nhalt",
		".text 0x4000\nmain: j main",
		".data\nx: .word 1,2,3",
		"main: lw r1, 8(r2)\nsw r1, -8(sp)\nhalt",
		"a: b: c: nop",
		".org 0x100",
		"main: beq r1, r2, main",
		"label: .space 10, 0xff",
		"main: li r1, 0xffffffffffff\nhalt",
		"# only a comment",
		"main: add r1, r2",              // arity error
		"main: frob r1",                 // unknown op
		".align 3",                      // bad align
		"main: lw r1, (r2",              // malformed mem operand
		"x: .word x+4, x-4\nmain: halt", // label arithmetic
		// Overflow crashers: location-counter arithmetic near 2^64 used
		// to wrap past the "moves backwards" check and explode pass2.
		".org 0xffffffffffffff00",
		".org 0xfffffffffffffffc\nmain: halt",
		".data\n.org 0xffffffffffffffff",
		".data\n.space 0xffffffffffffffff",
		".data\n.space 0x7fffffffffffffff, 1",
		".data 0xfffffffffffffff8\n.align 0x8000000000000000",
		".text 0xfffffffffffffff0\nmain: halt",
		".org 0x20000000\nmain: halt", // text span over the 64 MiB cap
		".text 2\nnop",                // unaligned text base
		".org 0x1001\nnop",            // unaligned .org in text
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			// Errors must be asm.Error with a usable line number.
			ae, ok := err.(*Error)
			if !ok {
				t.Fatalf("error type %T, want *Error (%v)", err, err)
			}
			if ae.Line < 0 || ae.Line > strings.Count(src, "\n")+1 {
				t.Fatalf("error line %d out of range for source with %d lines",
					ae.Line, strings.Count(src, "\n")+1)
			}
			return
		}
		// Accepted programs must be structurally sound.
		if p.CodeBase%4 != 0 {
			t.Fatalf("unaligned code base %#x", p.CodeBase)
		}
		if p.Entry < p.CodeBase && len(p.Code) > 0 {
			t.Fatalf("entry %#x before code base %#x", p.Entry, p.CodeBase)
		}
		for name, addr := range p.Symbols {
			if name == "" {
				t.Fatal("empty symbol name")
			}
			_ = addr
		}
		// Re-assembly is deterministic.
		p2, err2 := Assemble(src)
		if err2 != nil {
			t.Fatalf("second assembly failed: %v", err2)
		}
		if len(p2.Code) != len(p.Code) || p2.Entry != p.Entry {
			t.Fatal("assembly not deterministic")
		}
	})
}
