package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(`
		.text 0x1000
	main:	li   r1, 5
		addi r2, r1, 3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x1000 {
		t.Errorf("entry = %#x, want 0x1000", p.Entry)
	}
	if len(p.Code) != 3 {
		t.Fatalf("code length = %d, want 3", len(p.Code))
	}
	if p.Code[0].Op != isa.OpAddi || p.Code[0].Rd != 1 || p.Code[0].Imm != 5 {
		t.Errorf("li expansion wrong: %v", p.Code[0])
	}
	if p.Code[2].Op != isa.OpHalt {
		t.Errorf("instruction 2 = %v, want halt", p.Code[2])
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p, err := Assemble(`
		.text 0x2000
	main:	li r1, 0
	loop:	addi r1, r1, 1
		slti r2, r1, 10
		bne  r2, zero, loop
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	// loop is the second instruction: 0x2000 + 4.
	if got := p.Symbols["loop"]; got != 0x2004 {
		t.Errorf("loop = %#x, want 0x2004", got)
	}
	br := p.Code[3]
	if br.Op != isa.OpBne || uint64(br.Imm) != 0x2004 {
		t.Errorf("branch = %v, want bne to 0x2004", br)
	}
}

func TestMemOperands(t *testing.T) {
	p, err := Assemble(`
		.text
	main:	lw  r1, 8(r2)
		sw  r3, -4(sp)
		ld  r4, 0(r5)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if ins := p.Code[0]; ins.Op != isa.OpLw || ins.Rd != 1 || ins.Rs1 != 2 || ins.Imm != 8 {
		t.Errorf("lw = %+v", ins)
	}
	if ins := p.Code[1]; ins.Op != isa.OpSw || ins.Rs2 != 3 || ins.Rs1 != isa.RegSP || ins.Imm != -4 {
		t.Errorf("sw = %+v", ins)
	}
}

func TestDataDirectives(t *testing.T) {
	p, err := Assemble(`
		.text
	main:	la r1, arr
		halt
		.data 0x100000
	arr:	.word 1, 2, 3
	vals:	.dword 0x1122334455667788
	pi:	.double 3.25
	buf:	.space 16, 0xff
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Symbols["arr"]; got != 0x100000 {
		t.Errorf("arr = %#x, want 0x100000", got)
	}
	if got := p.Symbols["vals"]; got != 0x10000c {
		t.Errorf("vals = %#x, want 0x10000c", got)
	}
	if got := p.Symbols["buf"]; got != 0x10001c {
		t.Errorf("buf = %#x, want 0x10001c", got)
	}
	if len(p.Data) != 1 {
		t.Fatalf("segments = %d, want 1 merged segment", len(p.Data))
	}
	b := p.Data[0].Bytes
	if b[0] != 1 || b[4] != 2 || b[8] != 3 {
		t.Errorf("words wrong: % x", b[:12])
	}
	if b[12] != 0x88 || b[19] != 0x11 {
		t.Errorf("dword wrong: % x", b[12:20])
	}
	if b[28] != 0xff || b[43] != 0xff {
		t.Errorf("space fill wrong: % x", b[28:44])
	}
}

func TestAlignAndOrg(t *testing.T) {
	p, err := Assemble(`
		.text 0x1000
	main:	nop
		.org 0x1100
	func:	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Symbols["func"]; got != 0x1100 {
		t.Errorf("func = %#x, want 0x1100", got)
	}
	// Padding must be nops.
	if ins, ok := p.InstrAt(0x1050); !ok || ins.Op != isa.OpNop {
		t.Errorf("padding at 0x1050 = %v, %v; want nop", ins, ok)
	}
	if ins, ok := p.InstrAt(0x1100); !ok || ins.Op != isa.OpHalt {
		t.Errorf("func instr = %v, %v; want halt", ins, ok)
	}
}

func TestDataAlign(t *testing.T) {
	p, err := Assemble(`
		.text
	main:	halt
		.data 0x100000
	a:	.byte 1
		.align 64
	b:	.byte 2
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Symbols["b"]; got != 0x100040 {
		t.Errorf("b = %#x, want 0x100040", got)
	}
}

func TestLabelArithmetic(t *testing.T) {
	p, err := Assemble(`
		.text
	main:	la r1, arr+8
		la r2, arr-4
		halt
		.data 0x200000
	arr:	.space 64
	`)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Code[0].Imm; got != 0x200008 {
		t.Errorf("arr+8 = %#x", got)
	}
	if got := p.Code[1].Imm; got != 0x1ffffc {
		t.Errorf("arr-4 = %#x", got)
	}
}

func TestPseudoOps(t *testing.T) {
	p, err := Assemble(`
		.text
	main:	mv r1, r2
		not r3, r4
		neg r5, r6
		j end
		call fn
	fn:	ret
	end:	halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		i  int
		op isa.Op
	}{
		{0, isa.OpAdd}, {1, isa.OpXori}, {2, isa.OpSub},
		{3, isa.OpJal}, {4, isa.OpJal}, {5, isa.OpJalr}, {6, isa.OpHalt},
	}
	for _, c := range checks {
		if p.Code[c.i].Op != c.op {
			t.Errorf("instr %d op = %v, want %v", c.i, p.Code[c.i].Op, c.op)
		}
	}
	if p.Code[4].Rd != isa.RegRA {
		t.Errorf("call must link ra, got r%d", p.Code[4].Rd)
	}
	if p.Code[3].Rd != isa.RegZero {
		t.Errorf("j must not link, got r%d", p.Code[3].Rd)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown instr", "main: frobnicate r1, r2", "unknown instruction"},
		{"bad register", "main: add r1, r2, r99\nhalt", "bad register"},
		{"undefined label", "main: j nowhere", "undefined symbol"},
		{"duplicate label", "a: nop\na: nop", "duplicate label"},
		{"wrong arity", "main: add r1, r2", "expects 3 operands"},
		{"instr in data", ".data\nmain: add r1, r2, r3", "in data section"},
		{"word in text", ".text\n.word 5", "outside data section"},
		{"bad align", ".text\n.align 3", "power of two"},
		{"org backwards", ".text 0x1000\nnop\n.org 0x500", "moves backwards"},
		{"bad mem operand", "main: lw r1, r2", "memory operand"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("Assemble accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("nop\nnop\nbogus r1\nnop")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if !asError(err, &ae) {
		t.Fatalf("error type %T, want *Error", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line = %d, want 3", ae.Line)
	}
}

func asError(err error, target **Error) bool {
	e, ok := err.(*Error)
	if ok {
		*target = e
	}
	return ok
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble(`
	# full-line comment
	main:	nop    ; trailing comment
		; another
		halt   # done
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 2 {
		t.Errorf("code length = %d, want 2", len(p.Code))
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	p, err := Assemble("main: start: nop\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["main"] != p.Symbols["start"] {
		t.Errorf("stacked labels differ: %#x vs %#x", p.Symbols["main"], p.Symbols["start"])
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bogus instruction here")
}

func TestMuliAndNestedParens(t *testing.T) {
	p, err := Assemble(`
	main:	li r1, 7
		muli r2, r1, -3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Op != isa.OpMuli || p.Code[1].Imm != -3 {
		t.Errorf("muli = %+v", p.Code[1])
	}
}

func TestSplitArgsNestedParens(t *testing.T) {
	got := splitArgs("r1, 8(r2), label+4")
	if len(got) != 3 || got[1] != "8(r2)" || got[2] != "label+4" {
		t.Errorf("splitArgs = %q", got)
	}
	if got := splitArgs("   "); got != nil {
		t.Errorf("blank args = %q", got)
	}
}

func TestDoubleDirectiveBadFloat(t *testing.T) {
	_, err := Assemble(".data\nx: .double notanumber")
	if err == nil {
		t.Error("bad float accepted")
	}
}

func TestSpaceBadSize(t *testing.T) {
	_, err := Assemble(".data\nx: .space lots")
	if err == nil {
		t.Error("bad .space size accepted")
	}
}

func TestTextBaseRedefinitionRejected(t *testing.T) {
	_, err := Assemble(".text 0x1000\nnop\n.text 0x2000\nnop")
	if err == nil {
		t.Error("text base redefinition accepted")
	}
	// Re-entering .text without an address is fine.
	if _, err := Assemble(".text 0x1000\nnop\n.data\nx: .word 1\n.text\nhalt"); err != nil {
		t.Errorf("re-entering .text rejected: %v", err)
	}
}

func TestNegativeHexImmediate(t *testing.T) {
	p, err := Assemble("main: li r1, -0x10\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != -16 {
		t.Errorf("imm = %d, want -16", p.Code[0].Imm)
	}
}

func TestEntryDefaultsToTextBase(t *testing.T) {
	p, err := Assemble(".text 0x3000\nstart: halt")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0x3000 {
		t.Errorf("entry = %#x, want text base when no main label", p.Entry)
	}
}
