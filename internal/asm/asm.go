// Package asm implements a two-pass assembler for the ISA defined in
// internal/isa. Workload kernels (internal/workload) are written in —
// or generated as — this assembly language, assembled to a Program, and
// executed by the functional simulator to produce reference streams.
//
// Syntax summary (one statement per line, '#' or ';' start a comment):
//
//	.text [addr]          switch to code emission (default base 0x1000)
//	.data [addr]          switch to data emission (default base 0x100000)
//	.org addr             advance the location counter (nop/zero padding)
//	.align n              align location counter to n bytes
//	.word v, v, ...       emit 32-bit little-endian values
//	.dword v, ...         emit 64-bit little-endian values
//	.double f, ...        emit IEEE-754 float64 values
//	.byte v, ...          emit bytes
//	.space n [, fill]     emit n fill bytes (default 0)
//	label:                define a label at the current location
//
// Instructions use the mnemonics from internal/isa plus pseudo-ops:
//
//	li rd, imm            addi rd, zero, imm
//	la rd, label          addi rd, zero, addr(label)
//	mv rd, rs             add rd, rs, zero
//	not rd, rs            xori rd, rs, -1
//	neg rd, rs            sub rd, zero, rs
//	j label               jal zero, label
//	call label            jal ra, label
//	ret                   jalr zero, ra, 0
//	ble/bgt rs1,rs2,l     bge/blt with operands swapped
//
// Registers are r0..r31 with aliases zero (r0), sp (r30), ra (r31).
// Immediates are decimal or 0x-hex, optionally negative, or a label
// name (which resolves to its address), or label+offset / label-offset.
package asm

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Default segment bases, overridable by .text/.data arguments.
const (
	DefaultTextBase = 0x1000
	DefaultDataBase = 0x100000
)

// Section limits. A single assembled program may not span more than the
// image format's decode limits (isa.ReadImage refuses larger inputs),
// and bases are kept well below 2^64 so that every location-counter
// computation (.org spans, .align padding, .space sizes) stays wrap-free:
// base ≤ maxBaseAddr and span ≤ maxTextSpan/maxDataSpan means base+span
// cannot overflow uint64 and every span fits in an int.
const (
	maxTextSpan = (16 << 20) * isa.WordSize // 16M instructions
	maxDataSpan = 1 << 30                   // 1 GiB
	maxBaseAddr = 1 << 62
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type section int

const (
	secText section = iota
	secData
)

// item is a parsed source statement retained between passes.
type item struct {
	line    int
	sec     section
	addr    uint64
	op      string   // instruction or directive (without '.')
	args    []string // raw operand strings
	isDir   bool
	nInstrs int // instructions this item expands to (text section)
	nBytes  int // bytes this item occupies (data section)
}

type assembler struct {
	items   []item
	symbols map[string]uint64

	textBase, textLoc uint64
	dataBase, dataLoc uint64
	textBaseSet       bool
	cur               section
}

// Assemble translates source text into a Program. The entry point is
// the label "main" if present, otherwise the start of the text segment.
func Assemble(src string) (*isa.Program, error) {
	a := &assembler{
		symbols:  make(map[string]uint64),
		textBase: DefaultTextBase,
		textLoc:  DefaultTextBase,
		dataBase: DefaultDataBase,
		dataLoc:  DefaultDataBase,
	}
	if err := a.pass1(src); err != nil {
		return nil, err
	}
	return a.pass2()
}

// MustAssemble is Assemble that panics on error; intended for workload
// generators whose source is produced programmatically and therefore
// must be valid by construction.
func MustAssemble(src string) *isa.Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) loc() *uint64 {
	if a.cur == secText {
		return &a.textLoc
	}
	return &a.dataLoc
}

// checkSpan rejects a new location-counter value that would put the
// current section over its size cap. Every location-counter advance
// funnels through this, which is what keeps the address arithmetic in
// pass1/pass2 overflow-free.
func (a *assembler) checkSpan(line int, newLoc uint64) error {
	base, span, what := a.dataBase, uint64(maxDataSpan), "data"
	if a.cur == secText {
		base, span, what = a.textBase, maxTextSpan, "text"
	}
	if newLoc-base > span {
		return a.errf(line, "%s section spans 0x%x bytes from base 0x%x (max 0x%x)",
			what, newLoc-base, base, span)
	}
	return nil
}

// pass1 tokenises, defines labels, and sizes every statement.
func (a *assembler) pass1(src string) error {
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		s := raw
		if i := strings.IndexAny(s, "#;"); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
		// Peel off any leading labels.
		for {
			i := strings.Index(s, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(s[:i])
			if !isIdent(name) {
				break
			}
			if _, dup := a.symbols[name]; dup {
				return a.errf(line, "duplicate label %q", name)
			}
			a.symbols[name] = *a.loc()
			s = strings.TrimSpace(s[i+1:])
		}
		if s == "" {
			continue
		}
		op, rest := splitOp(s)
		args := splitArgs(rest)
		if strings.HasPrefix(op, ".") {
			if err := a.directive1(line, op[1:], args); err != nil {
				return err
			}
			continue
		}
		n, err := expansionSize(op, args)
		if err != nil {
			return a.errf(line, "%v", err)
		}
		if a.cur != secText {
			return a.errf(line, "instruction %q in data section", op)
		}
		if err := a.checkSpan(line, a.textLoc+uint64(n*isa.WordSize)); err != nil {
			return err
		}
		a.items = append(a.items, item{
			line: line, sec: secText, addr: a.textLoc,
			op: op, args: args, nInstrs: n,
		})
		a.textLoc += uint64(n * isa.WordSize)
	}
	return nil
}

// directive1 handles a directive during pass 1 (sizing + label math).
func (a *assembler) directive1(line int, dir string, args []string) error {
	switch dir {
	case "text", "data":
		sec := secText
		base := &a.textBase
		loc := &a.textLoc
		if dir == "data" {
			sec = secData
			base = &a.dataBase
			loc = &a.dataLoc
		}
		a.cur = sec
		if len(args) == 1 {
			v, err := parseUint(args[0])
			if err != nil {
				return a.errf(line, "bad %s address %q", dir, args[0])
			}
			if v > maxBaseAddr {
				return a.errf(line, ".%s address 0x%x too large (max 0x%x)", dir, v, uint64(maxBaseAddr))
			}
			if sec == secText {
				if v%isa.WordSize != 0 {
					return a.errf(line, ".text address 0x%x not %d-byte aligned", v, isa.WordSize)
				}
				if a.textBaseSet && v != a.textBase {
					return a.errf(line, "text base redefined; use .org to move within text")
				}
				a.textBaseSet = true
			}
			*base = v
			*loc = v
		} else if len(args) > 1 {
			return a.errf(line, ".%s takes at most one address", dir)
		}
		if sec == secText {
			a.textBaseSet = true
		}
		return nil
	case "org":
		if len(args) != 1 {
			return a.errf(line, ".org needs one address")
		}
		v, err := parseUint(args[0])
		if err != nil {
			return a.errf(line, "bad .org address %q", args[0])
		}
		if v < *a.loc() {
			return a.errf(line, ".org 0x%x moves backwards from 0x%x", v, *a.loc())
		}
		if a.cur == secText && v%isa.WordSize != 0 {
			return a.errf(line, ".org 0x%x not instruction-aligned in text", v)
		}
		// The location counter never precedes the section base, so with
		// the span check here v-base (and hence every later nBytes and
		// index computation) is bounded and cannot wrap.
		if err := a.checkSpan(line, v); err != nil {
			return err
		}
		a.items = append(a.items, item{line: line, sec: a.cur, addr: *a.loc(),
			op: "org", args: args, isDir: true,
			nBytes: int(v - *a.loc())})
		*a.loc() = v
		return nil
	case "align":
		if len(args) != 1 {
			return a.errf(line, ".align needs one argument")
		}
		n, err := parseUint(args[0])
		if err != nil || n == 0 || n&(n-1) != 0 {
			return a.errf(line, ".align needs a power of two, got %q", args[0])
		}
		cur := *a.loc()
		pad := (n - cur%n) % n
		// cur ≤ maxBaseAddr+span, pad < n ≤ 2^63: cur+pad cannot wrap,
		// but the padded address can still blow the section cap.
		if err := a.checkSpan(line, cur+pad); err != nil {
			return err
		}
		a.items = append(a.items, item{line: line, sec: a.cur, addr: cur,
			op: "align", args: args, isDir: true, nBytes: int(pad)})
		*a.loc() = cur + pad
		return nil
	case "word", "dword", "double", "byte", "space":
		if a.cur != secData {
			return a.errf(line, ".%s outside data section", dir)
		}
		size, err := dataSize(dir, args)
		if err != nil {
			return a.errf(line, "%v", err)
		}
		if err := a.checkSpan(line, a.dataLoc+uint64(size)); err != nil {
			return err
		}
		a.items = append(a.items, item{line: line, sec: secData, addr: a.dataLoc,
			op: dir, args: args, isDir: true, nBytes: size})
		a.dataLoc += uint64(size)
		return nil
	default:
		return a.errf(line, "unknown directive .%s", dir)
	}
}

func dataSize(dir string, args []string) (int, error) {
	switch dir {
	case "word":
		return 4 * len(args), nil
	case "dword", "double":
		return 8 * len(args), nil
	case "byte":
		return len(args), nil
	case "space":
		if len(args) < 1 || len(args) > 2 {
			return 0, fmt.Errorf(".space needs a size and optional fill")
		}
		n, err := parseUint(args[0])
		if err != nil {
			return 0, fmt.Errorf("bad .space size %q", args[0])
		}
		if n > maxDataSpan {
			return 0, fmt.Errorf(".space size %d exceeds data section limit", n)
		}
		return int(n), nil
	}
	return 0, fmt.Errorf("unknown data directive %q", dir)
}

// expansionSize returns how many machine instructions a mnemonic
// expands to, validating the operand count.
func expansionSize(op string, args []string) (int, error) {
	spec, ok := instrSpecs[op]
	if !ok {
		return 0, fmt.Errorf("unknown instruction %q", op)
	}
	if len(args) != spec.nargs {
		return 0, fmt.Errorf("%s expects %d operands, got %d", op, spec.nargs, len(args))
	}
	return 1, nil
}

// pass2 emits instructions and data with all symbols resolved.
func (a *assembler) pass2() (*isa.Program, error) {
	nInstr := int((a.textLoc - a.textBase) / isa.WordSize)
	code := make([]isa.Instr, nInstr)
	for i := range code {
		code[i] = isa.Instr{Op: isa.OpNop} // .org padding in text is nops
	}
	var data []isa.Segment

	for _, it := range a.items {
		if it.sec == secText && !it.isDir {
			ins, err := a.encode(it)
			if err != nil {
				return nil, err
			}
			idx := (it.addr - a.textBase) / isa.WordSize
			code[idx] = ins
			continue
		}
		if it.sec == secData && it.isDir && it.op != "org" && it.op != "align" {
			b, err := a.emitData(it)
			if err != nil {
				return nil, err
			}
			if len(b) > 0 {
				data = append(data, isa.Segment{Base: it.addr, Bytes: b})
			}
		}
	}

	entry := a.textBase
	if m, ok := a.symbols["main"]; ok {
		entry = m
	}
	return &isa.Program{
		Entry:    entry,
		CodeBase: a.textBase,
		Code:     code,
		Data:     mergeSegments(data),
		Symbols:  a.symbols,
	}, nil
}

// mergeSegments coalesces adjacent data segments to keep Program.Data
// small when many directives emit consecutively.
func mergeSegments(segs []isa.Segment) []isa.Segment {
	var out []isa.Segment
	for _, s := range segs {
		if n := len(out); n > 0 && out[n-1].Base+uint64(len(out[n-1].Bytes)) == s.Base {
			out[n-1].Bytes = append(out[n-1].Bytes, s.Bytes...)
		} else {
			out = append(out, s)
		}
	}
	return out
}

func (a *assembler) emitData(it item) ([]byte, error) {
	var b []byte
	switch it.op {
	case "word":
		for _, s := range it.args {
			v, err := a.evalImm(it.line, s)
			if err != nil {
				return nil, err
			}
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
	case "dword":
		for _, s := range it.args {
			v, err := a.evalImm(it.line, s)
			if err != nil {
				return nil, err
			}
			b = binary.LittleEndian.AppendUint64(b, uint64(v))
		}
	case "double":
		for _, s := range it.args {
			f, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, a.errf(it.line, "bad float %q", s)
			}
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
		}
	case "byte":
		for _, s := range it.args {
			v, err := a.evalImm(it.line, s)
			if err != nil {
				return nil, err
			}
			b = append(b, byte(v))
		}
	case "space":
		n, _ := parseUint(it.args[0])
		fill := byte(0)
		if len(it.args) == 2 {
			v, err := a.evalImm(it.line, it.args[1])
			if err != nil {
				return nil, err
			}
			fill = byte(v)
		}
		b = make([]byte, n)
		if fill != 0 {
			for i := range b {
				b[i] = fill
			}
		}
	}
	return b, nil
}

// operand kinds for instruction encoding.
type argKind int

const (
	akReg argKind = iota
	akImm
	akMem   // imm(reg)
	akLabel // label or immediate used as an absolute address
)

type spec struct {
	nargs int
	kinds []argKind
	enc   func(a *assembler, it item, ops []operand) (isa.Instr, error)
}

type operand struct {
	reg uint8
	imm int64
}

func regArg(r uint8) operand { return operand{reg: r} }
func immArg(v int64) operand { return operand{imm: v} }
func memArg(v int64, r uint8) operand {
	return operand{reg: r, imm: v}
}

func rrr(op isa.Op) func(*assembler, item, []operand) (isa.Instr, error) {
	return func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
		return isa.Instr{Op: op, Rd: o[0].reg, Rs1: o[1].reg, Rs2: o[2].reg}, nil
	}
}

func rri(op isa.Op) func(*assembler, item, []operand) (isa.Instr, error) {
	return func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
		return isa.Instr{Op: op, Rd: o[0].reg, Rs1: o[1].reg, Imm: o[2].imm}, nil
	}
}

func loadEnc(op isa.Op) func(*assembler, item, []operand) (isa.Instr, error) {
	return func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
		return isa.Instr{Op: op, Rd: o[0].reg, Rs1: o[1].reg, Imm: o[1].imm}, nil
	}
}

func storeEnc(op isa.Op) func(*assembler, item, []operand) (isa.Instr, error) {
	return func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
		return isa.Instr{Op: op, Rs2: o[0].reg, Rs1: o[1].reg, Imm: o[1].imm}, nil
	}
}

func branchEnc(op isa.Op, swap bool) func(*assembler, item, []operand) (isa.Instr, error) {
	return func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
		r1, r2 := o[0].reg, o[1].reg
		if swap {
			r1, r2 = r2, r1
		}
		return isa.Instr{Op: op, Rs1: r1, Rs2: r2, Imm: o[2].imm}, nil
	}
}

var instrSpecs map[string]spec

func init() {
	rrrOps := map[string]isa.Op{
		"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
		"xor": isa.OpXor, "sll": isa.OpSll, "srl": isa.OpSrl, "sra": isa.OpSra,
		"mul": isa.OpMul, "div": isa.OpDiv, "rem": isa.OpRem,
		"slt": isa.OpSlt, "sltu": isa.OpSltu,
		"fadd": isa.OpFAdd, "fsub": isa.OpFSub, "fmul": isa.OpFMul,
		"fdiv": isa.OpFDiv, "fslt": isa.OpFSlt,
	}
	rriOps := map[string]isa.Op{
		"addi": isa.OpAddi, "andi": isa.OpAndi, "ori": isa.OpOri,
		"xori": isa.OpXori, "slli": isa.OpSlli, "srli": isa.OpSrli,
		"srai": isa.OpSrai, "slti": isa.OpSlti, "muli": isa.OpMuli,
	}
	loadOps := map[string]isa.Op{
		"lb": isa.OpLb, "lbu": isa.OpLbu, "lh": isa.OpLh, "lhu": isa.OpLhu,
		"lw": isa.OpLw, "lwu": isa.OpLwu, "ld": isa.OpLd,
	}
	storeOps := map[string]isa.Op{
		"sb": isa.OpSb, "sh": isa.OpSh, "sw": isa.OpSw, "sd": isa.OpSd,
	}
	branchOps := map[string]isa.Op{
		"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt,
		"bge": isa.OpBge, "bltu": isa.OpBltu, "bgeu": isa.OpBgeu,
	}

	instrSpecs = map[string]spec{
		"nop":  {0, nil, func(*assembler, item, []operand) (isa.Instr, error) { return isa.Instr{Op: isa.OpNop}, nil }},
		"halt": {0, nil, func(*assembler, item, []operand) (isa.Instr, error) { return isa.Instr{Op: isa.OpHalt}, nil }},
		"ret": {0, nil, func(*assembler, item, []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpJalr, Rd: isa.RegZero, Rs1: isa.RegRA}, nil
		}},
		"lui": {2, []argKind{akReg, akImm}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpLui, Rd: o[0].reg, Imm: o[1].imm}, nil
		}},
		"li": {2, []argKind{akReg, akImm}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpAddi, Rd: o[0].reg, Rs1: isa.RegZero, Imm: o[1].imm}, nil
		}},
		"la": {2, []argKind{akReg, akLabel}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpAddi, Rd: o[0].reg, Rs1: isa.RegZero, Imm: o[1].imm}, nil
		}},
		"mv": {2, []argKind{akReg, akReg}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpAdd, Rd: o[0].reg, Rs1: o[1].reg, Rs2: isa.RegZero}, nil
		}},
		"not": {2, []argKind{akReg, akReg}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpXori, Rd: o[0].reg, Rs1: o[1].reg, Imm: -1}, nil
		}},
		"neg": {2, []argKind{akReg, akReg}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpSub, Rd: o[0].reg, Rs1: isa.RegZero, Rs2: o[1].reg}, nil
		}},
		"fsqrt": {2, []argKind{akReg, akReg}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpFSqrt, Rd: o[0].reg, Rs1: o[1].reg}, nil
		}},
		"cvtif": {2, []argKind{akReg, akReg}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpCvtIF, Rd: o[0].reg, Rs1: o[1].reg}, nil
		}},
		"cvtfi": {2, []argKind{akReg, akReg}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpCvtFI, Rd: o[0].reg, Rs1: o[1].reg}, nil
		}},
		"j": {1, []argKind{akLabel}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpJal, Rd: isa.RegZero, Imm: o[0].imm}, nil
		}},
		"call": {1, []argKind{akLabel}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpJal, Rd: isa.RegRA, Imm: o[0].imm}, nil
		}},
		"jal": {2, []argKind{akReg, akLabel}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpJal, Rd: o[0].reg, Imm: o[1].imm}, nil
		}},
		"jalr": {3, []argKind{akReg, akReg, akImm}, func(_ *assembler, _ item, o []operand) (isa.Instr, error) {
			return isa.Instr{Op: isa.OpJalr, Rd: o[0].reg, Rs1: o[1].reg, Imm: o[2].imm}, nil
		}},
		"ble": {3, []argKind{akReg, akReg, akLabel}, branchEnc(isa.OpBge, true)},
		"bgt": {3, []argKind{akReg, akReg, akLabel}, branchEnc(isa.OpBlt, true)},
	}
	for name, op := range rrrOps {
		instrSpecs[name] = spec{3, []argKind{akReg, akReg, akReg}, rrr(op)}
	}
	for name, op := range rriOps {
		instrSpecs[name] = spec{3, []argKind{akReg, akReg, akImm}, rri(op)}
	}
	for name, op := range loadOps {
		instrSpecs[name] = spec{2, []argKind{akReg, akMem}, loadEnc(op)}
	}
	for name, op := range storeOps {
		instrSpecs[name] = spec{2, []argKind{akReg, akMem}, storeEnc(op)}
	}
	for name, op := range branchOps {
		instrSpecs[name] = spec{3, []argKind{akReg, akReg, akLabel}, branchEnc(op, false)}
	}
}

// encode translates one parsed instruction item into an isa.Instr.
func (a *assembler) encode(it item) (isa.Instr, error) {
	sp := instrSpecs[it.op]
	ops := make([]operand, len(it.args))
	for i, s := range it.args {
		kind := akImm
		if i < len(sp.kinds) {
			kind = sp.kinds[i]
		}
		o, err := a.parseOperand(it.line, s, kind)
		if err != nil {
			return isa.Instr{}, err
		}
		ops[i] = o
	}
	return sp.enc(a, it, ops)
}

func (a *assembler) parseOperand(line int, s string, kind argKind) (operand, error) {
	switch kind {
	case akReg:
		r, ok := parseReg(s)
		if !ok {
			return operand{}, a.errf(line, "bad register %q", s)
		}
		return regArg(r), nil
	case akImm, akLabel:
		v, err := a.evalImm(line, s)
		if err != nil {
			return operand{}, err
		}
		return immArg(v), nil
	case akMem:
		open := strings.Index(s, "(")
		if open < 0 || !strings.HasSuffix(s, ")") {
			return operand{}, a.errf(line, "bad memory operand %q (want off(reg))", s)
		}
		offStr := strings.TrimSpace(s[:open])
		regStr := strings.TrimSpace(s[open+1 : len(s)-1])
		var off int64
		if offStr != "" {
			v, err := a.evalImm(line, offStr)
			if err != nil {
				return operand{}, err
			}
			off = v
		}
		r, ok := parseReg(regStr)
		if !ok {
			return operand{}, a.errf(line, "bad base register %q", regStr)
		}
		return memArg(off, r), nil
	}
	return operand{}, a.errf(line, "internal: unknown operand kind")
}

// evalImm evaluates an immediate: a number, a label, or label±number.
func (a *assembler) evalImm(line int, s string) (int64, error) {
	s = strings.TrimSpace(s)
	if v, err := parseInt(s); err == nil {
		return v, nil
	}
	// label, label+off, label-off
	for _, sep := range []byte{'+', '-'} {
		if i := strings.LastIndexByte(s, sep); i > 0 {
			base, err1 := a.evalImm(line, s[:i])
			off, err2 := parseInt(s[i+1:])
			if err1 == nil && err2 == nil {
				if sep == '-' {
					return base - off, nil
				}
				return base + off, nil
			}
		}
	}
	if v, ok := a.symbols[s]; ok {
		return int64(v), nil
	}
	return 0, a.errf(line, "undefined symbol or bad immediate %q", s)
}

var regAliases = map[string]uint8{
	"zero": isa.RegZero,
	"sp":   isa.RegSP,
	"ra":   isa.RegRA,
}

func parseReg(s string) (uint8, bool) {
	s = strings.TrimSpace(strings.ToLower(s))
	if r, ok := regAliases[s]; ok {
		return r, true
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return uint8(n), true
		}
	}
	return 0, false
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err = strconv.ParseUint(s[2:], 16, 64)
	} else {
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func parseUint(s string) (uint64, error) {
	v, err := parseInt(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad unsigned value %q", s)
	}
	return uint64(v), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOp(s string) (op, rest string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return strings.ToLower(s), ""
	}
	return strings.ToLower(s[:i]), strings.TrimSpace(s[i+1:])
}

// splitArgs splits on commas that are not inside parentheses.
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var args []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	args = append(args, strings.TrimSpace(s[start:]))
	return args
}
