package tracestore

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// testStream writes n deterministic references (mixed kinds, strided
// addresses) into sink.
func testStream(n int) func(trace.Sink) error {
	return func(sink trace.Sink) error {
		for i := 0; i < n; i++ {
			sink.Ref(trace.Ref{Kind: trace.Ifetch, Addr: 0x1000 + uint64(i)*4, Size: 4})
			if i%3 == 0 {
				sink.Ref(trace.Ref{Kind: trace.Load, Addr: 0x90000 + uint64(i)*32, Size: 8})
			}
			if i%7 == 0 {
				sink.Ref(trace.Ref{Kind: trace.Store, Addr: 0xA0000 + uint64(i)*8, Size: 4})
			}
		}
		return nil
	}
}

// collect gathers a replayed stream for comparison.
type collect struct{ refs []trace.Ref }

func (c *collect) Ref(r trace.Ref) { c.refs = append(c.refs, r) }

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreRecordReplay(t *testing.T) {
	s := newStore(t)
	k := Key{Workload: "099.go", Budget: 1000, Seed: 1}

	var live collect
	rec, err := s.Record(k, testStream(1000), &live)
	if err != nil {
		t.Fatal(err)
	}
	var rep collect
	counts, err := s.ReplayTo(k, &rep)
	if err != nil {
		t.Fatal(err)
	}
	if counts != rec {
		t.Errorf("replay counts %+v != recorded %+v", counts, rec)
	}
	if len(rep.refs) != len(live.refs) {
		t.Fatalf("replayed %d refs, recorded %d", len(rep.refs), len(live.refs))
	}
	for i := range live.refs {
		if rep.refs[i] != live.refs[i] {
			t.Fatalf("ref %d: replayed %+v, recorded %+v", i, rep.refs[i], live.refs[i])
		}
	}
}

func TestStoreMiss(t *testing.T) {
	s := newStore(t)
	_, err := s.ReplayTo(Key{Workload: "absent", Budget: 1}, trace.Discard)
	if !errors.Is(err, ErrMiss) {
		t.Errorf("missing entry: err %v, want ErrMiss", err)
	}
}

// TestStoreKeyComponents verifies each key component (and the format
// version in particular) addresses a distinct entry: a bumped version
// misses rather than replaying a stale stream.
func TestStoreKeyComponents(t *testing.T) {
	s := newStore(t)
	base := Key{Workload: "w", Budget: 100, Seed: 1}
	if _, err := s.Record(base, testStream(100), trace.Discard); err != nil {
		t.Fatal(err)
	}
	for name, k := range map[string]Key{
		"workload": {Workload: "w2", Budget: 100, Seed: 1},
		"budget":   {Workload: "w", Budget: 101, Seed: 1},
		"seed":     {Workload: "w", Budget: 100, Seed: 2},
		"version":  {Workload: "w", Budget: 100, Seed: 1, Version: trace.FormatVersion + 1},
	} {
		if _, err := s.ReplayTo(k, trace.Discard); !errors.Is(err, ErrMiss) {
			t.Errorf("%s changed: err %v, want ErrMiss", name, err)
		}
	}
	if _, err := s.ReplayTo(base, trace.Discard); err != nil {
		t.Errorf("unchanged key: %v", err)
	}
	// Recording an entry for a format this writer cannot produce is
	// refused rather than silently written as the current version.
	legacy := Key{Workload: "w", Budget: 100, Seed: 1, Version: trace.FormatVersion + 1}
	if _, err := s.Record(legacy, testStream(1), trace.Discard); err == nil {
		t.Error("recording a foreign format version was accepted")
	}
}

// TestStoreConcurrentRecord races recorders on one key: every reader
// afterwards sees exactly one complete file, and no temp files leak.
// Run under -race (the CI race job covers this package).
func TestStoreConcurrentRecord(t *testing.T) {
	s := newStore(t)
	k := Key{Workload: "race", Budget: 5000, Seed: 1}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Record(k, testStream(5000), trace.Discard)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("recorder %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		files = append(files, e.Name())
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("leaked temp file %s", e.Name())
		}
	}
	if len(files) != 1 {
		t.Fatalf("want exactly one cache file, got %v", files)
	}
	want, err := s.Record(k, testStream(5000), trace.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReplayTo(k, trace.Discard)
	if err != nil {
		t.Fatalf("replay after race: %v", err)
	}
	if got != want {
		t.Errorf("replay counts %+v, want %+v", got, want)
	}
}

// TestStoreCorruptionRerecords covers the distrust contract: a
// truncated or bit-flipped entry is detected before any reference
// reaches the sink, and Fetch re-records it instead of trusting it.
func TestStoreCorruptionRerecords(t *testing.T) {
	corruptions := map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-5] },
		"bitflip":   func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"empty":     func(b []byte) []byte { return nil },
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			s := newStore(t)
			k := Key{Workload: "c", Budget: 2000, Seed: 1}
			want, err := s.Record(k, testStream(2000), trace.Discard)
			if err != nil {
				t.Fatal(err)
			}
			path := s.Path(k)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(data), 0o644); err != nil {
				t.Fatal(err)
			}
			// A fresh store has no memoised verification for the path.
			s2, err := NewStore(s.Dir())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s2.ReplayTo(k, trace.Discard); !errors.Is(err, ErrMiss) {
				t.Fatalf("corrupt entry: err %v, want ErrMiss", err)
			}
			var sink collect
			counts, hit, err := s2.Fetch(k, testStream(2000), &sink)
			if err != nil {
				t.Fatalf("Fetch over corrupt entry: %v", err)
			}
			if hit {
				t.Error("corrupt entry reported as cache hit")
			}
			if counts != want {
				t.Errorf("re-recorded counts %+v, want %+v", counts, want)
			}
			if int64(len(sink.refs)) != want.Total() {
				t.Errorf("sink saw %d refs during re-record, want %d", len(sink.refs), want.Total())
			}
			// The re-recorded entry is valid again.
			if got, err := s2.ReplayTo(k, trace.Discard); err != nil || got != want {
				t.Errorf("replay after re-record: counts %+v err %v", got, err)
			}
		})
	}
}

func TestStoreFetchHitAndMiss(t *testing.T) {
	s := newStore(t)
	k := Key{Workload: "f", Budget: 300, Seed: 1}
	gen := testStream(300)
	counts1, hit, err := s.Fetch(k, gen, trace.Discard)
	if err != nil || hit {
		t.Fatalf("first fetch: hit=%v err=%v, want miss", hit, err)
	}
	counts2, hit, err := s.Fetch(k, gen, trace.Discard)
	if err != nil || !hit {
		t.Fatalf("second fetch: hit=%v err=%v, want hit", hit, err)
	}
	if counts1 != counts2 {
		t.Errorf("fetch counts diverge: %+v vs %+v", counts1, counts2)
	}
}

// TestStorePathShape pins the human-readable cache layout documented in
// EXPERIMENTS.md.
func TestStorePathShape(t *testing.T) {
	s := newStore(t)
	p := filepath.Base(s.Path(Key{Workload: "101.tomcatv", Budget: 2_000_000, Seed: 1}))
	if !strings.HasPrefix(p, "101.tomcatv-b2000000-s1-v2-") || !strings.HasSuffix(p, ".trc") {
		t.Errorf("cache filename %q does not follow <name>-b<budget>-s<seed>-v<version>-<hash>.trc", p)
	}
	odd := filepath.Base(s.Path(Key{Workload: "a/b c", Budget: 1}))
	if strings.ContainsAny(odd, "/ ") {
		t.Errorf("unsafe filename %q", odd)
	}
}

// TestStoreGenError verifies a failing generator never installs an
// entry.
func TestStoreGenError(t *testing.T) {
	s := newStore(t)
	k := Key{Workload: "boom", Budget: 10}
	genErr := errors.New("vm exploded")
	_, err := s.Record(k, func(sink trace.Sink) error {
		sink.Ref(trace.Ref{Kind: trace.Ifetch, Addr: 4096, Size: 4})
		return genErr
	}, trace.Discard)
	if !errors.Is(err, genErr) {
		t.Fatalf("err %v, want the generator's", err)
	}
	if _, err := os.Stat(s.Path(k)); !os.IsNotExist(err) {
		t.Error("failed recording left a cache entry behind")
	}
	entries, _ := os.ReadDir(s.Dir())
	if len(entries) != 0 {
		t.Errorf("failed recording left files: %v", entries)
	}
}
