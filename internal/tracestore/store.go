// Package tracestore caches recorded reference streams on disk so a
// workload is executed once and replayed into every subsequent
// measurement (ROADMAP item 3: generate once, replay everywhere).
package tracestore

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/trace"
)

// Store is an on-disk cache of recorded reference streams: generate a
// workload's trace once, replay it into every subsequent measurement.
// Entries are content-addressed by Key — (workload name, instruction
// budget, seed, format version) — so a workload change that alters any
// key component, or a format bump, misses cleanly instead of replaying
// a stale stream.
//
// Writes commit by atomic rename: a recording streams into a unique
// temp file in the cache directory and only an error-free, fully
// flushed file is renamed onto the final path. Concurrent recorders
// racing on one key each produce a complete file and the last rename
// wins; readers only ever observe absent or complete entries, never
// partial ones.
//
// Replays verify the entry (full decode, end-of-trace record, count
// cross-check) before any reference reaches the caller's sink, so a
// corrupt or truncated entry is re-recorded rather than trusted — and
// never pollutes a measurement. Verification results are memoised per
// path for the life of the Store.
type Store struct {
	dir string

	mu       sync.Mutex
	verified map[string]bool
}

// ErrMiss reports that a store has no valid entry for a key.
var ErrMiss = errors.New("trace: store miss")

// NewStore opens (creating if needed) a trace cache directory.
func NewStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("trace: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("trace: store: %w", err)
	}
	return &Store{dir: dir, verified: make(map[string]bool)}, nil
}

// Dir returns the cache directory.
func (s *Store) Dir() string { return s.dir }

// Key identifies one recorded stream. Version selects the file format
// generation; leave it zero for the current trace.FormatVersion.
type Key struct {
	Workload string
	Budget   int64
	Seed     int64
	Version  int
}

func (k Key) normalized() Key {
	if k.Version == 0 {
		k.Version = trace.FormatVersion
	}
	return k
}

// Path returns the file path an entry for k lives at (whether or not
// it exists). The name embeds every key component plus a hash of the
// canonical key string, so humans can read the cache directory and
// collisions cannot alias two keys.
func (s *Store) Path(k Key) string {
	k = k.normalized()
	sum := sha256.Sum256([]byte(fmt.Sprintf("%s|%d|%d|%d", k.Workload, k.Budget, k.Seed, k.Version)))
	name := fmt.Sprintf("%s-b%d-s%d-v%d-%x.trc",
		sanitize(k.Workload), k.Budget, k.Seed, k.Version, sum[:6])
	return filepath.Join(s.dir, name)
}

// sanitize maps a workload name onto the filename-safe alphabet.
func sanitize(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
}

// Record generates the stream for k via gen and atomically installs it
// in the cache, delivering every reference to sink as it is produced
// (pass trace.Discard to only populate the cache). It returns the tally of
// references recorded. An existing entry is replaced.
func (s *Store) Record(k Key, gen func(trace.Sink) error, sink trace.Sink) (trace.Counts, error) {
	k = k.normalized()
	if k.Version != trace.FormatVersion {
		return trace.Counts{}, fmt.Errorf("trace: store: cannot record format version %d (writer is version %d)",
			k.Version, trace.FormatVersion)
	}
	path := s.Path(k)
	tmp, err := os.CreateTemp(s.dir, ".rec-*.tmp")
	if err != nil {
		return trace.Counts{}, fmt.Errorf("trace: store: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	w, err := trace.NewWriter(tmp)
	if err != nil {
		return trace.Counts{}, fmt.Errorf("trace: store: %w", err)
	}
	var counts trace.Counts
	if err := gen(trace.Tee{w, &counts, sink}); err != nil {
		return counts, err
	}
	if err := w.Close(); err != nil {
		return counts, fmt.Errorf("trace: store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return counts, fmt.Errorf("trace: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return counts, fmt.Errorf("trace: store: %w", err)
	}
	// CreateTemp's 0600 would make a shared cache dir unreadable for
	// other users; traces are world-readable artifacts.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return counts, fmt.Errorf("trace: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		tmp = nil
		return counts, fmt.Errorf("trace: store: %w", err)
	}
	tmp = nil // committed; nothing to clean up
	s.mu.Lock()
	s.verified[path] = true
	s.mu.Unlock()
	return counts, nil
}

// ReplayTo replays the cached entry for k into sink. A missing entry
// returns ErrMiss; a corrupt or truncated one returns ErrMiss wrapping
// the decode error, in both cases before sink sees a single reference.
func (s *Store) ReplayTo(k Key, sink trace.Sink) (trace.Counts, error) {
	path := s.Path(k)
	f, err := os.Open(path)
	if err != nil {
		return trace.Counts{}, fmt.Errorf("%w: %s", ErrMiss, k.normalized().Workload)
	}
	defer f.Close()

	// Verify the whole file before the first reference reaches sink:
	// scan once against trace.Discard (memoised per path), then rewind and
	// replay for real. The held descriptor pins the verified bytes even
	// if a concurrent recorder renames a new file over the path.
	s.mu.Lock()
	ok := s.verified[path]
	s.mu.Unlock()
	if !ok {
		if err := verify(f); err != nil {
			return trace.Counts{}, fmt.Errorf("%w: invalid entry %s: %w", ErrMiss, filepath.Base(path), err)
		}
		s.mu.Lock()
		s.verified[path] = true
		s.mu.Unlock()
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return trace.Counts{}, fmt.Errorf("trace: store: %w", err)
		}
	}

	r, err := trace.NewReader(f)
	if err != nil {
		return trace.Counts{}, fmt.Errorf("trace: store: %s: %w", filepath.Base(path), err)
	}
	var counts trace.Counts
	if _, err := r.ReplayBatch(trace.Tee{&counts, sink}, nil); err != nil {
		return counts, fmt.Errorf("trace: store: %s: %w", filepath.Base(path), err)
	}
	return counts, nil
}

// verify decodes f end to end, checking the end-of-trace record.
func verify(f *os.File) error {
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	_, err = r.ReplayBatch(trace.Discard, nil)
	return err
}

// Fetch delivers the stream for k into sink: from the cache when a
// valid entry exists, otherwise by generating via gen while recording
// (one pass — gen's output is teed into both the cache file and sink).
// hit reports whether the cache served the stream.
func (s *Store) Fetch(k Key, gen func(trace.Sink) error, sink trace.Sink) (counts trace.Counts, hit bool, err error) {
	counts, rerr := s.ReplayTo(k, sink)
	if rerr == nil {
		return counts, true, nil
	}
	if !errors.Is(rerr, ErrMiss) {
		// The replay failed after references reached sink (e.g. the
		// file vanished mid-read); regenerating into the same sink
		// would double-count, so surface the error instead.
		return counts, false, rerr
	}
	s.mu.Lock()
	delete(s.verified, s.Path(k))
	s.mu.Unlock()
	counts, err = s.Record(k, gen, sink)
	return counts, false, err
}
