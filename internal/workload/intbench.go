package workload

import "repro/internal/isa"

// Integer benchmark stand-ins (SPEC'95 CINT + Synopsys). Parameter
// choices are annotated with the paper observation they reproduce.

func init() {
	register(Workload{
		Name: "099.go",
		Description: "AI game playing: branchy evaluation over small " +
			"board structures scattered through a medium arena; poor " +
			"spatial locality, so 512 B lines cannot help and the victim " +
			"cache recovers only a modest fraction of the misses.",
		Build: func() *isa.Program {
			return chase{
				arenaBytes:  512 << 10,
				recordBytes: 64,
				fields:      4,
				storeEvery:  4,
				hotBytes:    2 << 10, // the board itself stays hot
				hotReads:    4,
				alus:        8,
				branchy:     true,
				seqRun:      1,
				randomEvery: 2, // evaluator revisits the current node
				// ...and periodically re-reads nodes from its search
				// stack whose lines have just been evicted: the source
				// of go's modest victim-cache benefit (Figure 8).
				revisitEvery: 4,
				revisitLag:   40,
			}.build()
		},
	})

	register(Workload{
		Name: "124.m88ksim",
		Description: "CPU simulator: a dispatch loop over ~16 KB of " +
			"handler code working in a small sliding window, a hot " +
			"register file, and a simulated memory image.",
		Build: func() *isa.Program {
			return farm{
				nFuncs:         128,
				funcInstrs:     30, // 128 B slots -> 16 KB of handler code
				pattern:        farmWindow,
				window:         16,
				callsPerWindow: 256,
				dataBytes:      256 << 10,
				dataReads:      1,
				randomEvery:    8,
				funcData:       2,
				hotBytes:       1 << 10,
				hotReads:       2,
			}.build()
		},
	})

	register(Workload{
		Name: "126.gcc",
		Description: "Compiler: ~128 KB of code executed in pass-like " +
			"phases (a sliding window of functions) over per-function " +
			"literal pools, a sequential IR stream, and occasional " +
			"symbol-table probes. The long I-cache lines prefetch each " +
			"function body in one fill, keeping the proposed I-cache " +
			"within reach of much larger conventional caches.",
		Build: func() *isa.Program {
			return farm{
				nFuncs:         512,
				funcInstrs:     64, // 256 B slots -> 128 KB of code
				pattern:        farmWindow,
				window:         32,
				callsPerWindow: 64,
				dataBytes:      2 << 20,
				dataReads:      1,
				randomEvery:    8,
				seqReads:       2,
				funcData:       3,
				dataWrites:     true,
				hotBytes:       8 << 10,
				hotReads:       1,
			}.build()
		},
	})

	register(Workload{
		Name: "129.compress",
		Description: "Adaptive Lempel-Ziv: a tiny code loop reading a " +
			"sequential input stream and hashing into a table with " +
			"effectively random probes plus an insert store; neither " +
			"long lines nor the victim cache can manufacture locality " +
			"that is not there.",
		Build: func() *isa.Program {
			return chase{
				arenaBytes:  512 << 10, // hash table
				recordBytes: 32,
				fields:      2,
				storeEvery:  2,
				hotBytes:    4 << 10, // code tables
				hotReads:    2,
				alus:        8,
				branchy:     true,
				seqRun:      1,
				seqReads:    2, // the input text
				randomEvery: 2,
			}.build()
		},
	})

	register(Workload{
		Name: "130.li",
		Description: "Lisp interpreter: three cons-cell lists traversed " +
			"in lockstep whose heap bases alias in the 16-set column-" +
			"buffer cache. Without the victim cache every cell access " +
			"thrashes; the victim cache holds each list's current 32 B " +
			"block (two cells), absorbing the conflicts.",
		Build: buildLi,
	})

	register(Workload{
		Name: "132.ijpeg",
		Description: "JPEG compression: block-transform over a working " +
			"set that fits on chip; essentially no misses anywhere, as " +
			"in the paper.",
		Build: func() *isa.Program {
			return sweep{
				reads: []stream{
					{base: dataArena, neighbor: true},
					{base: dataArena + 0x2200, neighbor: true}, // distinct sets
				},
				writes:   []uint64{dataArena + 0x4400},
				elems:    512, // ~12 KB working set, reswept forever
				elemSize: 8,
				flops:    8,
				alus:     4,
			}.build()
		},
	})

	register(Workload{
		Name: "134.perl",
		Description: "Interpreter with large, poor-locality code: " +
			"uniformly random dispatch over 64 KB of handlers. High " +
			"I-miss rates everywhere, though each 512 B fill captures a " +
			"whole handler, so the proposed cache still beats a same-" +
			"size conventional one.",
		Build: func() *isa.Program {
			return farm{
				nFuncs:      256,
				funcInstrs:  56, // 256 B slots -> 64 KB of code
				pattern:     farmUniform,
				dataBytes:   512 << 10,
				dataReads:   1,
				randomEvery: 8,
				hotBytes:    8 << 10,
				hotReads:    3,
			}.build()
		},
	})

	register(Workload{
		Name: "147.vortex",
		Description: "Object-oriented database: 64 KB of code in " +
			"transaction-shaped phases over a multi-megabyte record " +
			"heap (reads, updates, index probes) — the heaviest data " +
			"memory component among the integer codes, as in Table 3.",
		Build: func() *isa.Program {
			return farm{
				nFuncs:         256,
				funcInstrs:     60, // 256 B slots -> 64 KB of code
				pattern:        farmWindow,
				window:         32,
				callsPerWindow: 128,
				dataBytes:      16 << 20,
				dataReads:      1,
				randomEvery:    4,
				funcData:       3,
				dataWrites:     true,
				hotBytes:       8 << 10,
				hotReads:       2,
			}.build()
		},
	})

	register(Workload{
		Name: "synopsys",
		Description: "Logic verification: random traversal of a >50 MB " +
			"netlist graph — the paper's example of a working set no " +
			"SRAM cache hierarchy can contain (Table 1, Figure 2).",
		Budget: 3 * DefaultBudget / 2,
		Build: func() *isa.Program {
			return chase{
				arenaBytes:  64 << 20,
				recordBytes: 64,
				fields:      2, // one 16 B pin-pair read per gate record
				storeEvery:  8,
				hotBytes:    4 << 10, // evaluation tables stay tiny
				hotReads:    2,
				alus:        10,
				branchy:     true,
				seqRun:      1,
			}.build()
		},
	})
}

// buildLi constructs the Lisp-interpreter kernel: three lists whose
// bases all map to set 0 of the proposed data cache, traversed in
// lockstep by genuine cdr pointer-chasing (the cells really link to
// each other in simulated memory).
func buildLi() *isa.Program {
	const listLen = 1024 // 16 KB per list; all three fit a 64 KB cache
	bases := []uint64{
		collideBase(dataArena, 0, listLen*16),
		collideBase(dataArena, 1, listLen*16),
		collideBase(dataArena, 2, listLen*16),
	}
	var p prog
	p.f(".text 0x1000")
	p.label("main")
	p.f("li r7, 0")
	p.f("li r1, 0x7fffffff")
	p.label("reset")
	for i, b := range bases {
		p.f("li r%d, 0x%x", 10+i, b)
	}
	p.f("li r20, 0x%x", dataArena-0x100000) // hot environment frame
	p.label("loop")
	// Most of the interpreter's references hit its small environment;
	// only every fourth iteration advances the heap traversal.
	p.f("addi r22, r22, 1")
	p.f("andi r4, r22, 3")
	p.f("bne r4, zero, envwork")
	for i := range bases {
		reg := 10 + i
		p.f("ld r4, 0(r%d)", reg)       // car
		p.f("add r7, r7, r4")           // evaluate
		p.f("ld r%d, 8(r%d)", reg, reg) // cdr chase
	}
	p.f("j evaldone")
	p.label("envwork")
	for k := 0; k < 3; k++ {
		p.f("ld r4, %d(r20)", k*16)
		p.f("add r7, r7, r4")
	}
	p.f("sd r7, 48(r20)")
	p.label("evaldone")
	// Some interpreter-ish ALU work between cells.
	for k := 0; k < 6; k++ {
		p.f("xor r5, r5, r7")
	}
	p.f("slli r6, r7, 1")
	p.f("add r5, r5, r6")
	p.f("addi r1, r1, -1")
	p.f("beq r1, zero, done")
	// When the first list ends (nil cdr), restart all three.
	p.f("beq r10, zero, reset")
	p.f("j loop")
	p.label("done")
	p.f("halt")
	program := p.assemble()
	program.Data = append(program.Data, buildLists(bases, listLen)...)
	return program
}
