package workload

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

// TestCollideBaseAliases: every base in a collideBase family maps to
// the same set of the proposed 16-set 512 B cache, while landing in
// distinct sets of a conventional 16 KB direct-mapped 32 B cache.
func TestCollideBaseAliases(t *testing.T) {
	const span = 512 << 10
	propSet := func(addr uint64) uint64 { return (addr / 512) % 16 }
	convSet := func(addr uint64) uint64 { return (addr / 32) % 512 }
	base0 := collideBase(dataArena, 0, span)
	seenConv := map[uint64]bool{convSet(base0): true}
	for k := 1; k < 6; k++ {
		b := collideBase(dataArena, k, span)
		if propSet(b) != propSet(base0) {
			t.Errorf("k=%d: proposed set %d != %d", k, propSet(b), propSet(base0))
		}
		if seenConv[convSet(b)] {
			t.Errorf("k=%d: conventional set %d collides", k, convSet(b))
		}
		seenConv[convSet(b)] = true
		if b < base0+uint64(k)*span {
			t.Errorf("k=%d: arrays overlap", k)
		}
	}
}

// TestSpreadBaseSpreads: spreadBase families land in distinct proposed
// sets.
func TestSpreadBaseSpreads(t *testing.T) {
	const span = 1 << 20
	propSet := func(addr uint64) uint64 { return (addr / 512) % 16 }
	seen := map[uint64]bool{}
	for k := 0; k < 6; k++ {
		b := spreadBase(dataArena, k, span)
		if seen[propSet(b)] {
			t.Errorf("k=%d: proposed set %d reused", k, propSet(b))
		}
		seen[propSet(b)] = true
	}
}

// TestFarmSlotsDoNotOverflow: every registered farm-based workload
// assembles, which (via .org) proves no function body exceeds its slot.
// Also check that the generated code is position-exact: fn0 sits at
// the expected base.
func TestFarmSlotsDoNotOverflow(t *testing.T) {
	f := farm{
		nFuncs: 8, funcInstrs: 30, pattern: farmWindow,
		window: 4, callsPerWindow: 16,
		dataBytes: 1 << 16, dataReads: 1, randomEvery: 2,
		seqReads: 1, funcData: 2, dataWrites: true,
		hotBytes: 1 << 10, hotReads: 1,
	}
	p := f.build()
	if got := p.Symbols["fn0"]; got != 0x10000 {
		t.Errorf("fn0 at %#x, want 0x10000", got)
	}
	// Slot = 128 B for 30 instructions.
	if got := p.Symbols["fn1"]; got != 0x10000+128 {
		t.Errorf("fn1 at %#x, want fn0+128", got)
	}
	// And the program must actually run: every function reachable.
	cpu, err := vm.RunProgram(p, trace.Discard, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Instructions < 20_000 {
		t.Errorf("farm program halted early at %d instructions", cpu.Instructions)
	}
}

// TestChaseStaysInArena: the chase generator's addresses stay inside
// [dataArena, dataArena+arena+recordBytes).
func TestChaseStaysInArena(t *testing.T) {
	c := chase{
		arenaBytes: 1 << 16, recordBytes: 64, fields: 2,
		storeEvery: 2, hotBytes: 1 << 10, hotReads: 1,
		alus: 2, branchy: true, seqRun: 2,
	}
	p := c.build()
	bad := 0
	hotBase := uint64(dataArena - 0x100000)
	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.Ifetch {
			return
		}
		inArena := r.Addr >= dataArena && r.Addr < dataArena+(1<<16)+128
		inHot := r.Addr >= hotBase && r.Addr < hotBase+(1<<10)
		if !inArena && !inHot {
			bad++
		}
	})
	if _, err := vm.RunProgram(p, sink, 30_000); err != nil {
		t.Fatal(err)
	}
	if bad > 0 {
		t.Errorf("%d accesses escaped the arena/hot regions", bad)
	}
}

// TestSweepTouchesAllStreams: each configured stream and write target
// is actually accessed.
func TestSweepTouchesAllStreams(t *testing.T) {
	s := sweep{
		reads: []stream{
			{base: dataArena, neighbor: true},
			{base: dataArena + 0x10000, prevRow: true},
		},
		writes:   []uint64{dataArena + 0x20000},
		elems:    64,
		elemSize: 8,
		rowBytes: 256,
		flops:    2,
		alus:     1,
		rereads:  1,
	}
	p := s.build()
	touched := map[uint64]bool{}
	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind != trace.Ifetch {
			touched[r.Addr&^0xffff] = true
		}
	})
	if _, err := vm.RunProgram(p, sink, 10_000); err != nil {
		t.Fatal(err)
	}
	for _, base := range []uint64{dataArena, dataArena + 0x10000, dataArena + 0x20000} {
		if !touched[base&^0xffff] {
			t.Errorf("region %#x never touched", base)
		}
	}
}

// TestBuildListsLinkage: cons cells really point at each other.
func TestBuildListsLinkage(t *testing.T) {
	segs := buildLists([]uint64{0x100000}, 4)
	if len(segs) != 1 || len(segs[0].Bytes) != 64 {
		t.Fatalf("segments: %+v", segs)
	}
	b := segs[0].Bytes
	// cdr of cell 0 -> cell 1.
	cdr0 := uint64(b[8]) | uint64(b[9])<<8 | uint64(b[10])<<16 | uint64(b[11])<<24
	if cdr0 != 0x100010 {
		t.Errorf("cdr0 = %#x, want 0x100010", cdr0)
	}
	// cdr of the last cell is nil.
	last := b[3*16+8 : 3*16+16]
	for _, v := range last {
		if v != 0 {
			t.Error("last cdr not nil")
		}
	}
}

func TestLog2(t *testing.T) {
	for v, want := range map[uint64]int{1: 0, 2: 1, 64: 6, 4096: 12} {
		if got := log2(v); got != want {
			t.Errorf("log2(%d) = %d, want %d", v, got, want)
		}
	}
}
