package workload

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpumodel"
	"repro/internal/stackdist"
	"repro/internal/trace"
	"repro/internal/vm"
)

// convLineSize and propLineSize are the two line sizes in the study:
// conventional caches use 32 B lines, the proposed column-buffer caches
// use 512 B lines (one DRAM column buffer).
const (
	convLineSize = 32
	propLineSize = 512
)

// ConvISizesKB and ConvDSizesKB are the conventional cache sizes
// plotted in Figures 7 and 8, in ascending order (iterate these — not a
// map — when deterministic output order matters).
var (
	ConvISizesKB = []int{8, 16, 32, 64}
	ConvDSizesKB = []int{8, 16, 32, 64, 128, 256}
)

// CacheMeasurer is what one simulation pass of a workload produces:
// miss statistics for every cache organisation in the Figure 7/8 grids,
// the proposed column-buffer caches of Tables 3/4, and the reference
// system's L2. Two implementations exist — CacheSet, the single-pass
// stack-distance profiler, and ReplayCacheSet, the original
// one-simulated-cache-per-configuration path — and they produce
// identical statistics (see TestFastMatchesReplay).
type CacheMeasurer interface {
	trace.Sink
	// RefCounts tallies the reference stream by kind.
	RefCounts() trace.Counts
	// PropIStats is the proposed 8 KB DM 512 B I-cache.
	PropIStats() cache.Stats
	// PropDStats is the proposed 16 KB 2-way 512 B D-cache, no victim.
	PropDStats() cache.Stats
	// PropDVictimStats is the proposed D-cache plus 16×32 B victim.
	PropDVictimStats() cache.Stats
	// ConvIStats is the conventional DM 32 B I-cache of the given size.
	ConvIStats(kb int) cache.Stats
	// ConvDMStats is the conventional DM 32 B D-cache of the given size.
	ConvDMStats(kb int) cache.Stats
	// Conv2WStats is the conventional 2-way 32 B D-cache of the given size.
	Conv2WStats(kb int) cache.Stats
	// L2Stats is the reference system's 256 KB 2-way unified L2, which
	// sees only misses from the 16 KB first-level pair.
	L2Stats() cache.Stats
}

// CacheSet measures every Figure 7/8 configuration in a single profiled
// pass. Instead of simulating one cache per grid point, it maintains
// four stack-distance set profilers (conventional-I, proposed-I,
// conventional-D, proposed-D) whose per-set LRU position histograms
// answer every set count × associativity in the grid exactly
// (internal/stackdist). Two organisations the profilers cannot express
// still replay: the victim cache (its contents depend on eviction
// order) and the L2 (it sees a conditional stream — only first-level
// misses). Runs of references to the same 32 B line — the common case
// for instruction fetches, at 8 instructions per line — collapse into
// MRU-hit counter bumps without touching any LRU state.
type CacheSet struct {
	counts trace.Counts

	iconv *stackdist.SetProfiler // 32 B lines, ifetch stream
	iprop *stackdist.SetProfiler // 512 B lines, ifetch stream
	dconv *stackdist.SetProfiler // 32 B lines, data stream
	dprop *stackdist.SetProfiler // 512 B lines, data stream
	vic   *cache.WithVictim      // replay fallback: eviction-order state
	l2    *cache.SetAssoc        // replay fallback: conditional stream

	i16 int // iconv tracker index of the 16 KB DM geometry (512 sets)
	d16 int // dconv tracker index of the same

	lastILine uint64 // previous ifetch 32 B line + 1 (0 = none)
	lastDLine uint64 // previous load/store 32 B line + 1 (0 = none)
}

// NewCacheSet builds the profilers and fallback models for one run.
func NewCacheSet() *CacheSet {
	var ig []stackdist.Geometry
	for _, kb := range ConvISizesKB {
		ig = append(ig, stackdist.Geometry{Sets: uint64(kb) << 10 / convLineSize, Ways: 1})
	}
	var dg []stackdist.Geometry
	for _, kb := range ConvDSizesKB {
		dg = append(dg,
			stackdist.Geometry{Sets: uint64(kb) << 10 / convLineSize, Ways: 1},
			stackdist.Geometry{Sets: uint64(kb) << 10 / (2 * convLineSize), Ways: 2})
	}
	cs := &CacheSet{
		iconv: stackdist.NewSetProfiler(convLineSize, ig),
		iprop: stackdist.NewSetProfiler(propLineSize,
			[]stackdist.Geometry{{Sets: 16, Ways: 1}}),
		dconv: stackdist.NewSetProfiler(convLineSize, dg),
		dprop: stackdist.NewSetProfiler(propLineSize,
			[]stackdist.Geometry{{Sets: 16, Ways: 2}}),
		vic: cache.Proposed(),
		l2: cache.NewSetAssoc("256KB 2-way 32B unified L2",
			256<<10, convLineSize, 2),
	}
	cs.i16 = cs.iconv.TrackerIndex(16 << 10 / convLineSize)
	cs.d16 = cs.dconv.TrackerIndex(16 << 10 / convLineSize)
	return cs
}

// Ref implements trace.Sink: one reference drives every measurement.
func (cs *CacheSet) Ref(r trace.Ref) {
	line := r.Addr >> 5 // convLineSize == 32
	if r.Kind == trace.Ifetch {
		cs.counts.Ifetches++
		if line+1 == cs.lastILine {
			// Same line as the previous fetch: an MRU hit in every
			// tracked I-geometry (both line sizes), and necessarily a
			// 16 KB first-level hit, so the L2 never sees it.
			cs.iconv.AddRepeats(trace.Ifetch, 1)
			cs.iprop.AddRepeats(trace.Ifetch, 1)
			return
		}
		cs.lastILine = line + 1
		cs.iconv.Access(r.Addr, trace.Ifetch)
		cs.iprop.Access(r.Addr, trace.Ifetch)
		// The reference system's L2 sees 16 KB first-level I misses:
		// the DM 16 KB cache hit iff the access hit at LRU position 0.
		if cs.iconv.Pos[cs.i16] != 0 {
			cs.l2.Access(r.Addr, trace.Ifetch)
		}
		return
	}
	cs.counts.Ref(r)
	// The victim-cache organisation replays every data reference: its
	// contents depend on main-cache eviction order and sub-block
	// recency, which no stack-distance histogram captures.
	cs.vic.Access(r.Addr, r.Kind)
	if line+1 == cs.lastDLine {
		cs.dconv.AddRepeats(r.Kind, 1)
		cs.dprop.AddRepeats(r.Kind, 1)
		return
	}
	cs.lastDLine = line + 1
	cs.dconv.Access(r.Addr, r.Kind)
	cs.dprop.Access(r.Addr, r.Kind)
	if cs.dconv.Pos[cs.d16] != 0 {
		cs.l2.Access(r.Addr, r.Kind)
	}
}

// Refs implements trace.BatchSink.
func (cs *CacheSet) Refs(rs []trace.Ref) {
	for i := range rs {
		cs.Ref(rs[i])
	}
}

// RefCounts implements CacheMeasurer.
func (cs *CacheSet) RefCounts() trace.Counts { return cs.counts }

// setStats assembles per-kind miss statistics for one geometry.
func setStats(p *stackdist.SetProfiler, sets uint64, ways int) cache.Stats {
	return cache.Stats{
		Ifetch: p.MissCounter(sets, ways, trace.Ifetch),
		Load:   p.MissCounter(sets, ways, trace.Load),
		Store:  p.MissCounter(sets, ways, trace.Store),
	}
}

// PropIStats implements CacheMeasurer.
func (cs *CacheSet) PropIStats() cache.Stats { return setStats(cs.iprop, 16, 1) }

// PropDStats implements CacheMeasurer.
func (cs *CacheSet) PropDStats() cache.Stats { return setStats(cs.dprop, 16, 2) }

// PropDVictimStats implements CacheMeasurer.
func (cs *CacheSet) PropDVictimStats() cache.Stats { return cs.vic.Stats() }

// ConvIStats implements CacheMeasurer.
func (cs *CacheSet) ConvIStats(kb int) cache.Stats {
	return setStats(cs.iconv, uint64(kb)<<10/convLineSize, 1)
}

// ConvDMStats implements CacheMeasurer.
func (cs *CacheSet) ConvDMStats(kb int) cache.Stats {
	return setStats(cs.dconv, uint64(kb)<<10/convLineSize, 1)
}

// Conv2WStats implements CacheMeasurer.
func (cs *CacheSet) Conv2WStats(kb int) cache.Stats {
	return setStats(cs.dconv, uint64(kb)<<10/(2*convLineSize), 2)
}

// L2Stats implements CacheMeasurer.
func (cs *CacheSet) L2Stats() cache.Stats { return cs.l2.Stats() }

// ReplayCacheSet is the original measurement path: one simulated cache
// per configuration, every reference replayed through all of them. It
// is retained as the fallback/oracle the fast path is verified against,
// and for organisations outside the profiled grid.
type ReplayCacheSet struct {
	// Proposed organisation.
	PropI       *cache.SetAssoc   // 8 KB DM, 512 B lines (column buffers)
	PropD       *cache.SetAssoc   // 16 KB 2-way, 512 B lines, no victim
	PropDVictim *cache.WithVictim // same + 16×32 B victim cache

	// Conventional I-caches, direct-mapped, 32 B lines (Figure 7 bars).
	ConvI map[int]*cache.SetAssoc // size KB -> cache

	// Conventional D-caches, 32 B lines (Figure 8 bars).
	ConvD1 map[int]*cache.SetAssoc // direct-mapped, size KB -> cache
	ConvD2 map[int]*cache.SetAssoc // 2-way, size KB -> cache

	// Reference-system second-level cache (unified, 2-way, 32 B lines,
	// 256 KB): sees only first-level misses from the 16 KB ConvI/ConvD1
	// pair, exactly as in the Figure 10 grey components.
	L2 *cache.SetAssoc

	Counts trace.Counts
}

// NewReplayCacheSet builds fresh caches for one replay measurement run.
func NewReplayCacheSet() *ReplayCacheSet {
	cs := &ReplayCacheSet{
		PropI:       cache.ProposedICache(),
		PropD:       cache.ProposedDCache(),
		PropDVictim: cache.Proposed(),
		ConvI:       make(map[int]*cache.SetAssoc),
		ConvD1:      make(map[int]*cache.SetAssoc),
		ConvD2:      make(map[int]*cache.SetAssoc),
		L2: cache.NewSetAssoc("256KB 2-way 32B unified L2",
			256<<10, convLineSize, 2),
	}
	for _, kb := range ConvISizesKB {
		cs.ConvI[kb] = cache.NewDirectMapped(
			fmt.Sprintf("%dKB DM 32B I", kb), uint64(kb)<<10, convLineSize)
	}
	for _, kb := range ConvDSizesKB {
		cs.ConvD1[kb] = cache.NewDirectMapped(
			fmt.Sprintf("%dKB DM 32B D", kb), uint64(kb)<<10, convLineSize)
		cs.ConvD2[kb] = cache.NewSetAssoc(
			fmt.Sprintf("%dKB 2-way 32B D", kb), uint64(kb)<<10, convLineSize, 2)
	}
	return cs
}

// Ref implements trace.Sink: one reference drives every cache model.
func (cs *ReplayCacheSet) Ref(r trace.Ref) {
	cs.Counts.Ref(r)
	if r.Kind == trace.Ifetch {
		cs.PropI.Access(r.Addr, r.Kind)
		hit16 := false
		for kb, c := range cs.ConvI {
			if c.Access(r.Addr, r.Kind) && kb == 16 {
				hit16 = true
			}
		}
		// The reference system's L2 sees 16 KB first-level I misses.
		if !hit16 {
			cs.L2.Access(r.Addr, r.Kind)
		}
		return
	}
	cs.PropD.Access(r.Addr, r.Kind)
	cs.PropDVictim.Access(r.Addr, r.Kind)
	hit16 := false
	for kb, c := range cs.ConvD1 {
		if c.Access(r.Addr, r.Kind) && kb == 16 {
			hit16 = true
		}
	}
	for _, c := range cs.ConvD2 {
		c.Access(r.Addr, r.Kind)
	}
	if !hit16 {
		cs.L2.Access(r.Addr, r.Kind)
	}
}

// Refs implements trace.BatchSink.
func (cs *ReplayCacheSet) Refs(rs []trace.Ref) {
	for i := range rs {
		cs.Ref(rs[i])
	}
}

// RefCounts implements CacheMeasurer.
func (cs *ReplayCacheSet) RefCounts() trace.Counts { return cs.Counts }

// PropIStats implements CacheMeasurer.
func (cs *ReplayCacheSet) PropIStats() cache.Stats { return cs.PropI.Stats() }

// PropDStats implements CacheMeasurer.
func (cs *ReplayCacheSet) PropDStats() cache.Stats { return cs.PropD.Stats() }

// PropDVictimStats implements CacheMeasurer.
func (cs *ReplayCacheSet) PropDVictimStats() cache.Stats { return cs.PropDVictim.Stats() }

// ConvIStats implements CacheMeasurer.
func (cs *ReplayCacheSet) ConvIStats(kb int) cache.Stats { return cs.ConvI[kb].Stats() }

// ConvDMStats implements CacheMeasurer.
func (cs *ReplayCacheSet) ConvDMStats(kb int) cache.Stats { return cs.ConvD1[kb].Stats() }

// Conv2WStats implements CacheMeasurer.
func (cs *ReplayCacheSet) Conv2WStats(kb int) cache.Stats { return cs.ConvD2[kb].Stats() }

// L2Stats implements CacheMeasurer.
func (cs *ReplayCacheSet) L2Stats() cache.Stats { return cs.L2.Stats() }

// Measurement is the distilled result of one workload run.
type Measurement struct {
	Workload Workload
	Caches   CacheMeasurer
	Instr    int64
}

// Run executes the workload for the given instruction budget (<= 0
// means the workload's own default) and measures every cache model via
// the single-pass profiled path.
func Run(w Workload, budget int64) (*Measurement, error) {
	return runWith(w, budget, NewCacheSet())
}

// RunReplay is Run on the per-configuration replay path. The two paths
// produce identical statistics; replay exists as the oracle for tests
// and as the template for organisations the profilers cannot express.
func RunReplay(w Workload, budget int64) (*Measurement, error) {
	return runWith(w, budget, NewReplayCacheSet())
}

func runWith(w Workload, budget int64, cs CacheMeasurer) (*Measurement, error) {
	if budget <= 0 {
		budget = w.Budget
	}
	program := w.Build()
	cpu, err := vm.RunProgram(program, cs, budget)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return &Measurement{Workload: w, Caches: cs, Instr: cpu.Instructions}, nil
}

// Rates converts the measurement into GSPN inputs for the given system.
// For the integrated system, withVictim selects whether the data-cache
// hit probability includes the victim cache (Table 4) or not (Table 3).
func (m *Measurement) Rates(integrated, withVictim bool) cpumodel.AppRates {
	cs := m.Caches
	counts := cs.RefCounts()
	app := cpumodel.AppRates{
		Name:      m.Workload.Name,
		BaseCPI:   m.Workload.BaseCPI,
		LoadFrac:  counts.LoadFrac(),
		StoreFrac: counts.StoreFrac(),
	}
	if app.BaseCPI < 1 {
		app.BaseCPI = 1
	}
	if integrated {
		app.IHit = 1 - cs.PropIStats().Ifetch.Rate()
		d := cs.PropDStats()
		if withVictim {
			d = cs.PropDVictimStats()
		}
		app.LoadHit = 1 - d.Load.Rate()
		app.StoreHit = 1 - d.Store.Rate()
		return app
	}
	// Reference system: 16 KB first-level caches + measured conditional
	// L2 hit rates.
	app.IHit = 1 - cs.ConvIStats(16).Ifetch.Rate()
	d := cs.ConvDMStats(16)
	app.LoadHit = 1 - d.Load.Rate()
	app.StoreHit = 1 - d.Store.Rate()
	l2 := cs.L2Stats()
	app.IL2Hit = 1 - l2.Ifetch.Rate()
	app.LoadL2Hit = 1 - l2.Load.Rate()
	app.StoreL2Hit = 1 - l2.Store.Rate()
	return app
}
