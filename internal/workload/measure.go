package workload

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpumodel"
	"repro/internal/trace"
	"repro/internal/vm"
)

// CacheSet is the collection of cache models fed by one simulation run
// of a workload — everything needed for Figures 7 and 8 and for the
// GSPN inputs of Tables 3 and 4, gathered in a single pass.
type CacheSet struct {
	// Proposed organisation.
	PropI       *cache.SetAssoc   // 8 KB DM, 512 B lines (column buffers)
	PropD       *cache.SetAssoc   // 16 KB 2-way, 512 B lines, no victim
	PropDVictim *cache.WithVictim // same + 16×32 B victim cache

	// Conventional I-caches, direct-mapped, 32 B lines (Figure 7 bars).
	ConvI map[int]*cache.SetAssoc // size KB -> cache

	// Conventional D-caches, 32 B lines (Figure 8 bars).
	ConvD1 map[int]*cache.SetAssoc // direct-mapped, size KB -> cache
	ConvD2 map[int]*cache.SetAssoc // 2-way, size KB -> cache

	// Reference-system second-level cache (unified, 2-way, 32 B lines,
	// 256 KB): sees only first-level misses from the 16 KB ConvI/ConvD1
	// pair, exactly as in the Figure 10 grey components.
	L2 *cache.SetAssoc

	Counts trace.Counts
}

// ConvISizesKB and ConvDSizesKB are the conventional cache sizes
// plotted in Figures 7 and 8.
var (
	ConvISizesKB = []int{8, 16, 32, 64}
	ConvDSizesKB = []int{8, 16, 32, 64, 128, 256}
)

// NewCacheSet builds fresh caches for one measurement run.
func NewCacheSet() *CacheSet {
	cs := &CacheSet{
		PropI:       cache.ProposedICache(),
		PropD:       cache.ProposedDCache(),
		PropDVictim: cache.Proposed(),
		ConvI:       make(map[int]*cache.SetAssoc),
		ConvD1:      make(map[int]*cache.SetAssoc),
		ConvD2:      make(map[int]*cache.SetAssoc),
		L2: cache.NewSetAssoc("256KB 2-way 32B unified L2",
			256<<10, 32, 2),
	}
	for _, kb := range ConvISizesKB {
		cs.ConvI[kb] = cache.NewDirectMapped(
			fmt.Sprintf("%dKB DM 32B I", kb), uint64(kb)<<10, 32)
	}
	for _, kb := range ConvDSizesKB {
		cs.ConvD1[kb] = cache.NewDirectMapped(
			fmt.Sprintf("%dKB DM 32B D", kb), uint64(kb)<<10, 32)
		cs.ConvD2[kb] = cache.NewSetAssoc(
			fmt.Sprintf("%dKB 2-way 32B D", kb), uint64(kb)<<10, 32, 2)
	}
	return cs
}

// Ref implements trace.Sink: one reference drives every cache model.
func (cs *CacheSet) Ref(r trace.Ref) {
	cs.Counts.Ref(r)
	if r.Kind == trace.Ifetch {
		cs.PropI.Access(r.Addr, r.Kind)
		hit16 := false
		for kb, c := range cs.ConvI {
			if c.Access(r.Addr, r.Kind) && kb == 16 {
				hit16 = true
			}
		}
		// The reference system's L2 sees 16 KB first-level I misses.
		if !hit16 {
			cs.L2.Access(r.Addr, r.Kind)
		}
		return
	}
	cs.PropD.Access(r.Addr, r.Kind)
	cs.PropDVictim.Access(r.Addr, r.Kind)
	hit16 := false
	for kb, c := range cs.ConvD1 {
		if c.Access(r.Addr, r.Kind) && kb == 16 {
			hit16 = true
		}
	}
	for _, c := range cs.ConvD2 {
		c.Access(r.Addr, r.Kind)
	}
	if !hit16 {
		cs.L2.Access(r.Addr, r.Kind)
	}
}

// Measurement is the distilled result of one workload run.
type Measurement struct {
	Workload Workload
	Caches   *CacheSet
	Instr    int64
}

// Run executes the workload for the given instruction budget (<= 0
// means the workload's own default) and measures every cache model.
func Run(w Workload, budget int64) (*Measurement, error) {
	if budget <= 0 {
		budget = w.Budget
	}
	cs := NewCacheSet()
	program := w.Build()
	cpu, err := vm.RunProgram(program, cs, budget)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return &Measurement{Workload: w, Caches: cs, Instr: cpu.Instructions}, nil
}

// Rates converts the measurement into GSPN inputs for the given system.
// For the integrated system, withVictim selects whether the data-cache
// hit probability includes the victim cache (Table 4) or not (Table 3).
func (m *Measurement) Rates(integrated, withVictim bool) cpumodel.AppRates {
	cs := m.Caches
	app := cpumodel.AppRates{
		Name:      m.Workload.Name,
		BaseCPI:   m.Workload.BaseCPI,
		LoadFrac:  cs.Counts.LoadFrac(),
		StoreFrac: cs.Counts.StoreFrac(),
	}
	if app.BaseCPI < 1 {
		app.BaseCPI = 1
	}
	if integrated {
		app.IHit = 1 - cs.PropI.Stats().Ifetch.Rate()
		d := cs.PropD.Stats()
		if withVictim {
			d = cs.PropDVictim.Stats()
		}
		app.LoadHit = 1 - d.Load.Rate()
		app.StoreHit = 1 - d.Store.Rate()
		return app
	}
	// Reference system: 16 KB first-level caches + measured conditional
	// L2 hit rates.
	app.IHit = 1 - cs.ConvI[16].Stats().Ifetch.Rate()
	d := cs.ConvD1[16].Stats()
	app.LoadHit = 1 - d.Load.Rate()
	app.StoreHit = 1 - d.Store.Rate()
	l2 := cs.L2.Stats()
	app.IL2Hit = 1 - l2.Ifetch.Rate()
	app.LoadL2Hit = 1 - l2.Load.Rate()
	app.StoreL2Hit = 1 - l2.Store.Rate()
	return app
}
