package workload

import (
	"fmt"
	"math/bits"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/stackdist"
	"repro/internal/trace"
	"repro/internal/tracestore"
	"repro/internal/vm"
)

// convLineSize and propLineSize are the paper's two line sizes:
// conventional caches use 32 B lines (core.Reference's L1 line), the
// proposed column-buffer caches 512 B lines (one DRAM column buffer,
// core.Proposed's D-cache line). The measurement sets derive their
// actual geometries from the devices they are built for; these named
// defaults remain for the grid documentation and the ablations.
const (
	convLineSize = 32
	propLineSize = 512
)

// RefL1KB is the reference system's first-level cache size in KB
// (core.Reference().ICacheBytes >> 10): the grid point whose misses
// feed the L2 and whose rates parameterise the reference GSPN.
const RefL1KB = 16

// ConvISizesKB and ConvDSizesKB are the conventional cache sizes
// plotted in Figures 7 and 8, in ascending order (iterate these — not a
// map — when deterministic output order matters).
var (
	ConvISizesKB = []int{8, 16, 32, 64}
	ConvDSizesKB = []int{8, 16, 32, 64, 128, 256}
)

// CacheMeasurer is what one simulation pass of a workload produces:
// miss statistics for every cache organisation in the Figure 7/8 grids,
// the proposed column-buffer caches of Tables 3/4, and the reference
// system's L2. Two implementations exist — CacheSet, the single-pass
// stack-distance profiler, and ReplayCacheSet, the original
// one-simulated-cache-per-configuration path — and they produce
// identical statistics (see TestFastMatchesReplay).
type CacheMeasurer interface {
	trace.Sink
	// RefCounts tallies the reference stream by kind.
	RefCounts() trace.Counts
	// PropIStats is the proposed 8 KB DM 512 B I-cache.
	PropIStats() cache.Stats
	// PropDStats is the proposed 16 KB 2-way 512 B D-cache, no victim.
	PropDStats() cache.Stats
	// PropDVictimStats is the proposed D-cache plus 16×32 B victim.
	PropDVictimStats() cache.Stats
	// ConvIStats is the conventional DM 32 B I-cache of the given size.
	ConvIStats(kb int) cache.Stats
	// ConvDMStats is the conventional DM 32 B D-cache of the given size.
	ConvDMStats(kb int) cache.Stats
	// Conv2WStats is the conventional 2-way 32 B D-cache of the given size.
	Conv2WStats(kb int) cache.Stats
	// L2Stats is the reference system's 256 KB 2-way unified L2, which
	// sees only misses from the 16 KB first-level pair.
	L2Stats() cache.Stats
}

// CacheSet measures every Figure 7/8 configuration in a single profiled
// pass. Instead of simulating one cache per grid point, it maintains
// four stack-distance set profilers (conventional-I, proposed-I,
// conventional-D, proposed-D) whose per-set LRU position histograms
// answer every set count × associativity in the grid exactly
// (internal/stackdist). Two organisations the profilers cannot express
// still replay: the victim cache (its contents depend on eviction
// order) and the L2 (it sees a conditional stream — only first-level
// misses). Runs of references to the same 32 B line — the common case
// for instruction fetches, at 8 instructions per line — collapse into
// MRU-hit counter bumps without touching any LRU state.
type CacheSet struct {
	counts trace.Counts

	iconv *stackdist.SetProfiler // conventional lines, ifetch stream
	iprop *stackdist.SetProfiler // column-buffer lines, ifetch stream
	dconv *stackdist.SetProfiler // conventional lines, data stream
	dprop *stackdist.SetProfiler // column-buffer lines, data stream
	vic   *cache.WithVictim      // replay fallback: eviction-order state (nil: no victim)
	l2    *cache.SetAssoc        // replay fallback: conditional stream (nil: no L2)

	ipSets uint64 // proposed I-cache geometry in the iprop profiler
	dpSets uint64 // proposed D-cache geometry in the dprop profiler
	dpWays int

	i16 int // iconv tracker index of the reference L1 geometry (512 sets)
	d16 int // dconv tracker index of the same

	convShift uint   // log2 of the conventional line size
	lastILine uint64 // previous ifetch conventional line + 1 (0 = none)
	lastDLine uint64 // previous load/store conventional line + 1 (0 = none)
}

// NewCacheSet builds the profilers and fallback models for one run of
// the paper's configurations.
func NewCacheSet() *CacheSet {
	return NewCacheSetFor(core.Proposed(), core.Reference())
}

// NewCacheSetFor builds the measurement set for an explicit device
// pair: prop supplies the column-buffer cache geometries (and victim
// cache), ref the conventional line size, the L1 grid point feeding the
// L2, and the L2 itself. The conventional size grids stay on the
// Figure 7/8 axes; ref's L1 sizes must lie on them.
func NewCacheSetFor(prop, ref core.Device) *CacheSet {
	convLine := uint64(ref.DCacheLineBytes)
	var ig []stackdist.Geometry
	for _, kb := range ConvISizesKB {
		ig = append(ig, stackdist.Geometry{Sets: uint64(kb) << 10 / convLine, Ways: 1})
	}
	var dg []stackdist.Geometry
	for _, kb := range ConvDSizesKB {
		dg = append(dg,
			stackdist.Geometry{Sets: uint64(kb) << 10 / convLine, Ways: 1},
			stackdist.Geometry{Sets: uint64(kb) << 10 / (2 * convLine), Ways: 2})
	}
	cs := &CacheSet{
		ipSets: uint64(prop.ICacheBytes / prop.ICacheLineBytes),
		dpSets: uint64(prop.DCacheBytes / (prop.DCacheWays * prop.DCacheLineBytes)),
		dpWays: prop.DCacheWays,
	}
	cs.iconv = stackdist.NewSetProfiler(convLine, ig)
	cs.iprop = stackdist.NewSetProfiler(uint64(prop.ICacheLineBytes),
		[]stackdist.Geometry{{Sets: cs.ipSets, Ways: 1}})
	cs.dconv = stackdist.NewSetProfiler(convLine, dg)
	cs.dprop = stackdist.NewSetProfiler(uint64(prop.DCacheLineBytes),
		[]stackdist.Geometry{{Sets: cs.dpSets, Ways: cs.dpWays}})
	if prop.VictimEntries > 0 {
		cs.vic = cache.NewWithVictim(
			cache.NewSetAssoc("prop D + victim main", uint64(prop.DCacheBytes),
				uint64(prop.DCacheLineBytes), prop.DCacheWays),
			cache.NewVictim(prop.VictimEntries, uint64(prop.VictimLineBytes)))
	}
	if ref.L2Bytes > 0 {
		cs.l2 = cache.NewSetAssoc(
			fmt.Sprintf("%dKB %d-way %dB unified L2", ref.L2Bytes>>10, ref.L2Ways, ref.L2LineBytes),
			uint64(ref.L2Bytes), uint64(ref.L2LineBytes), ref.L2Ways)
	}
	cs.convShift = uint(bits.TrailingZeros64(convLine))
	cs.i16 = cs.iconv.TrackerIndex(uint64(ref.ICacheBytes) / convLine)
	cs.d16 = cs.dconv.TrackerIndex(uint64(ref.DCacheBytes) / convLine)
	return cs
}

// Ref implements trace.Sink: one reference drives every measurement.
func (cs *CacheSet) Ref(r trace.Ref) {
	line := r.Addr >> cs.convShift
	if r.Kind == trace.Ifetch {
		cs.counts.Ifetches++
		if line+1 == cs.lastILine {
			// Same line as the previous fetch: an MRU hit in every
			// tracked I-geometry (both line sizes), and necessarily a
			// 16 KB first-level hit, so the L2 never sees it.
			cs.iconv.AddRepeats(trace.Ifetch, 1)
			cs.iprop.AddRepeats(trace.Ifetch, 1)
			return
		}
		cs.lastILine = line + 1
		cs.iconv.Access(r.Addr, trace.Ifetch)
		cs.iprop.Access(r.Addr, trace.Ifetch)
		// The reference system's L2 sees 16 KB first-level I misses:
		// the DM 16 KB cache hit iff the access hit at LRU position 0.
		if cs.l2 != nil && cs.iconv.Pos[cs.i16] != 0 {
			cs.l2.Access(r.Addr, trace.Ifetch)
		}
		return
	}
	cs.counts.Ref(r)
	// The victim-cache organisation replays every data reference: its
	// contents depend on main-cache eviction order and sub-block
	// recency, which no stack-distance histogram captures.
	if cs.vic != nil {
		cs.vic.Access(r.Addr, r.Kind)
	}
	if line+1 == cs.lastDLine {
		cs.dconv.AddRepeats(r.Kind, 1)
		cs.dprop.AddRepeats(r.Kind, 1)
		return
	}
	cs.lastDLine = line + 1
	cs.dconv.Access(r.Addr, r.Kind)
	cs.dprop.Access(r.Addr, r.Kind)
	if cs.l2 != nil && cs.dconv.Pos[cs.d16] != 0 {
		cs.l2.Access(r.Addr, r.Kind)
	}
}

// Refs implements trace.BatchSink.
func (cs *CacheSet) Refs(rs []trace.Ref) {
	for i := range rs {
		cs.Ref(rs[i])
	}
}

// RefCounts implements CacheMeasurer.
func (cs *CacheSet) RefCounts() trace.Counts { return cs.counts }

// setStats assembles per-kind miss statistics for one geometry.
func setStats(p *stackdist.SetProfiler, sets uint64, ways int) cache.Stats {
	return cache.Stats{
		Ifetch: p.MissCounter(sets, ways, trace.Ifetch),
		Load:   p.MissCounter(sets, ways, trace.Load),
		Store:  p.MissCounter(sets, ways, trace.Store),
	}
}

// PropIStats implements CacheMeasurer.
func (cs *CacheSet) PropIStats() cache.Stats { return setStats(cs.iprop, cs.ipSets, 1) }

// PropDStats implements CacheMeasurer.
func (cs *CacheSet) PropDStats() cache.Stats { return setStats(cs.dprop, cs.dpSets, cs.dpWays) }

// PropDVictimStats implements CacheMeasurer. Without a victim cache it
// is simply the D-cache.
func (cs *CacheSet) PropDVictimStats() cache.Stats {
	if cs.vic == nil {
		return cs.PropDStats()
	}
	return cs.vic.Stats()
}

// ConvIStats implements CacheMeasurer.
func (cs *CacheSet) ConvIStats(kb int) cache.Stats {
	return setStats(cs.iconv, uint64(kb)<<10/convLineSize, 1)
}

// ConvDMStats implements CacheMeasurer.
func (cs *CacheSet) ConvDMStats(kb int) cache.Stats {
	return setStats(cs.dconv, uint64(kb)<<10/convLineSize, 1)
}

// Conv2WStats implements CacheMeasurer.
func (cs *CacheSet) Conv2WStats(kb int) cache.Stats {
	return setStats(cs.dconv, uint64(kb)<<10/(2*convLineSize), 2)
}

// L2Stats implements CacheMeasurer.
func (cs *CacheSet) L2Stats() cache.Stats {
	if cs.l2 == nil {
		return cache.Stats{}
	}
	return cs.l2.Stats()
}

// ReplayCacheSet is the original measurement path: one simulated cache
// per configuration, every reference replayed through all of them. It
// is retained as the fallback/oracle the fast path is verified against,
// and for organisations outside the profiled grid.
type ReplayCacheSet struct {
	// Proposed organisation.
	PropI       *cache.SetAssoc   // 8 KB DM, 512 B lines (column buffers)
	PropD       *cache.SetAssoc   // 16 KB 2-way, 512 B lines, no victim
	PropDVictim *cache.WithVictim // same + 16×32 B victim cache

	// Conventional I-caches, direct-mapped, 32 B lines (Figure 7 bars).
	ConvI map[int]*cache.SetAssoc // size KB -> cache

	// Conventional D-caches, 32 B lines (Figure 8 bars).
	ConvD1 map[int]*cache.SetAssoc // direct-mapped, size KB -> cache
	ConvD2 map[int]*cache.SetAssoc // 2-way, size KB -> cache

	// Reference-system second-level cache (unified, 2-way, 32 B lines,
	// 256 KB): sees only first-level misses from the 16 KB ConvI/ConvD1
	// pair, exactly as in the Figure 10 grey components.
	L2 *cache.SetAssoc

	Counts trace.Counts

	refKB int // the L1 grid point whose misses feed the L2
}

// NewReplayCacheSet builds fresh caches for one replay measurement run
// of the paper's configurations.
func NewReplayCacheSet() *ReplayCacheSet {
	return NewReplayCacheSetFor(core.Proposed(), core.Reference())
}

// NewReplayCacheSetFor is NewCacheSetFor's replay-path counterpart.
func NewReplayCacheSetFor(prop, ref core.Device) *ReplayCacheSet {
	convLine := uint64(ref.DCacheLineBytes)
	cs := &ReplayCacheSet{
		PropI: cache.NewSetAssoc(
			fmt.Sprintf("prop %dKB DM %dB I", prop.ICacheBytes>>10, prop.ICacheLineBytes),
			uint64(prop.ICacheBytes), uint64(prop.ICacheLineBytes), 1),
		PropD: cache.NewSetAssoc(
			fmt.Sprintf("prop %dKB %d-way %dB D", prop.DCacheBytes>>10, prop.DCacheWays, prop.DCacheLineBytes),
			uint64(prop.DCacheBytes), uint64(prop.DCacheLineBytes), prop.DCacheWays),
		ConvI:  make(map[int]*cache.SetAssoc),
		ConvD1: make(map[int]*cache.SetAssoc),
		ConvD2: make(map[int]*cache.SetAssoc),
		refKB:  ref.ICacheBytes >> 10,
	}
	if prop.VictimEntries > 0 {
		cs.PropDVictim = cache.NewWithVictim(
			cache.NewSetAssoc("prop D + victim main", uint64(prop.DCacheBytes),
				uint64(prop.DCacheLineBytes), prop.DCacheWays),
			cache.NewVictim(prop.VictimEntries, uint64(prop.VictimLineBytes)))
	}
	if ref.L2Bytes > 0 {
		cs.L2 = cache.NewSetAssoc(
			fmt.Sprintf("%dKB %d-way %dB unified L2", ref.L2Bytes>>10, ref.L2Ways, ref.L2LineBytes),
			uint64(ref.L2Bytes), uint64(ref.L2LineBytes), ref.L2Ways)
	}
	for _, kb := range ConvISizesKB {
		cs.ConvI[kb] = cache.NewDirectMapped(
			fmt.Sprintf("%dKB DM 32B I", kb), uint64(kb)<<10, convLine)
	}
	for _, kb := range ConvDSizesKB {
		cs.ConvD1[kb] = cache.NewDirectMapped(
			fmt.Sprintf("%dKB DM 32B D", kb), uint64(kb)<<10, convLine)
		cs.ConvD2[kb] = cache.NewSetAssoc(
			fmt.Sprintf("%dKB 2-way 32B D", kb), uint64(kb)<<10, convLine, 2)
	}
	return cs
}

// Ref implements trace.Sink: one reference drives every cache model.
func (cs *ReplayCacheSet) Ref(r trace.Ref) {
	cs.Counts.Ref(r)
	if r.Kind == trace.Ifetch {
		cs.PropI.Access(r.Addr, r.Kind)
		hit16 := false
		for kb, c := range cs.ConvI {
			if c.Access(r.Addr, r.Kind) && kb == cs.refKB {
				hit16 = true
			}
		}
		// The reference system's L2 sees first-level I misses.
		if cs.L2 != nil && !hit16 {
			cs.L2.Access(r.Addr, r.Kind)
		}
		return
	}
	cs.PropD.Access(r.Addr, r.Kind)
	if cs.PropDVictim != nil {
		cs.PropDVictim.Access(r.Addr, r.Kind)
	}
	hit16 := false
	for kb, c := range cs.ConvD1 {
		if c.Access(r.Addr, r.Kind) && kb == cs.refKB {
			hit16 = true
		}
	}
	for _, c := range cs.ConvD2 {
		c.Access(r.Addr, r.Kind)
	}
	if cs.L2 != nil && !hit16 {
		cs.L2.Access(r.Addr, r.Kind)
	}
}

// Refs implements trace.BatchSink.
func (cs *ReplayCacheSet) Refs(rs []trace.Ref) {
	for i := range rs {
		cs.Ref(rs[i])
	}
}

// RefCounts implements CacheMeasurer.
func (cs *ReplayCacheSet) RefCounts() trace.Counts { return cs.Counts }

// PropIStats implements CacheMeasurer.
func (cs *ReplayCacheSet) PropIStats() cache.Stats { return cs.PropI.Stats() }

// PropDStats implements CacheMeasurer.
func (cs *ReplayCacheSet) PropDStats() cache.Stats { return cs.PropD.Stats() }

// PropDVictimStats implements CacheMeasurer.
func (cs *ReplayCacheSet) PropDVictimStats() cache.Stats {
	if cs.PropDVictim == nil {
		return cs.PropD.Stats()
	}
	return cs.PropDVictim.Stats()
}

// ConvIStats implements CacheMeasurer.
func (cs *ReplayCacheSet) ConvIStats(kb int) cache.Stats { return cs.ConvI[kb].Stats() }

// ConvDMStats implements CacheMeasurer.
func (cs *ReplayCacheSet) ConvDMStats(kb int) cache.Stats { return cs.ConvD1[kb].Stats() }

// Conv2WStats implements CacheMeasurer.
func (cs *ReplayCacheSet) Conv2WStats(kb int) cache.Stats { return cs.ConvD2[kb].Stats() }

// L2Stats implements CacheMeasurer.
func (cs *ReplayCacheSet) L2Stats() cache.Stats {
	if cs.L2 == nil {
		return cache.Stats{}
	}
	return cs.L2.Stats()
}

// Source produces a workload's reference stream. The two
// implementations are Live (build the program and execute it on the
// functional simulator — the default) and Traced (replay a recorded
// stream from a tracestore.Store, recording it on first use). Every
// measurement path is written against this interface, so swapping the
// expensive generator for a cached trace is invisible to the cache
// models: both sources deliver byte-for-byte the same stream in the
// same batch granularity.
type Source interface {
	// Stream delivers the workload's reference stream for the given
	// instruction budget (<= 0 means the workload's default) into sink,
	// returning the number of instructions executed.
	Stream(w Workload, budget int64, sink trace.Sink) (int64, error)
}

// Live executes the workload program on the VM: the generate-every-time
// path.
type Live struct{}

// Stream implements Source.
func (Live) Stream(w Workload, budget int64, sink trace.Sink) (int64, error) {
	if budget <= 0 {
		budget = w.Budget
	}
	cpu, err := vm.RunProgram(w.Build(), sink, budget)
	if err != nil {
		return 0, fmt.Errorf("workload %s: %w", w.Name, err)
	}
	return cpu.Instructions, nil
}

// Traced serves reference streams from a tracestore.Store: a cached trace
// replays (allocation-free, no VM execution); a missing or corrupt
// entry is generated live and recorded in the same pass, so later runs
// replay. With Force set every stream re-records, refreshing the cache.
type Traced struct {
	Store *tracestore.Store
	// Seed participates in the cache key alongside the workload name and
	// budget (workload generation is deterministic, but the key is
	// deliberately conservative).
	Seed int64
	// Force re-records even when a valid entry exists (iramsim -record).
	Force bool
}

// Stream implements Source. The instruction count equals the stream's
// ifetch tally: the VM emits exactly one ifetch per retired
// instruction, so a replayed measurement reports the same Instr a live
// one would.
func (t Traced) Stream(w Workload, budget int64, sink trace.Sink) (int64, error) {
	if budget <= 0 {
		budget = w.Budget
	}
	k := tracestore.Key{Workload: w.Name, Budget: budget, Seed: t.Seed}
	gen := func(s trace.Sink) error {
		_, err := vm.RunProgram(w.Build(), s, budget)
		if err != nil {
			return fmt.Errorf("workload %s: %w", w.Name, err)
		}
		return nil
	}
	var counts trace.Counts
	var err error
	if t.Force {
		counts, err = t.Store.Record(k, gen, sink)
	} else {
		counts, _, err = t.Store.Fetch(k, gen, sink)
	}
	if err != nil {
		return counts.Ifetches, err
	}
	return counts.Ifetches, nil
}

// Measurement is the distilled result of one workload run.
type Measurement struct {
	Workload Workload
	Caches   CacheMeasurer
	Instr    int64
}

// Run executes the workload for the given instruction budget (<= 0
// means the workload's own default) and measures every cache model via
// the single-pass profiled path.
func Run(w Workload, budget int64) (*Measurement, error) {
	return runWith(w, budget, NewCacheSet(), Live{})
}

// RunDevices is Run against an explicit device pair (the -machine path
// and the designspace sweep).
func RunDevices(w Workload, budget int64, prop, ref core.Device) (*Measurement, error) {
	return runWith(w, budget, NewCacheSetFor(prop, ref), Live{})
}

// RunDevicesFrom is RunDevices with the reference stream drawn from an
// explicit Source (the trace record/replay path).
func RunDevicesFrom(w Workload, budget int64, prop, ref core.Device, src Source) (*Measurement, error) {
	return runWith(w, budget, NewCacheSetFor(prop, ref), src)
}

// RunReplay is Run on the per-configuration cache-replay path. The two
// paths produce identical statistics; it exists as the oracle for tests
// and as the template for organisations the profilers cannot express.
func RunReplay(w Workload, budget int64) (*Measurement, error) {
	return runWith(w, budget, NewReplayCacheSet(), Live{})
}

// RunReplayDevices is RunReplay against an explicit device pair.
func RunReplayDevices(w Workload, budget int64, prop, ref core.Device) (*Measurement, error) {
	return runWith(w, budget, NewReplayCacheSetFor(prop, ref), Live{})
}

// RunReplayDevicesFrom is RunReplayDevices with an explicit Source.
func RunReplayDevicesFrom(w Workload, budget int64, prop, ref core.Device, src Source) (*Measurement, error) {
	return runWith(w, budget, NewReplayCacheSetFor(prop, ref), src)
}

func runWith(w Workload, budget int64, cs CacheMeasurer, src Source) (*Measurement, error) {
	instr, err := src.Stream(w, budget, cs)
	if err != nil {
		return nil, err
	}
	return &Measurement{Workload: w, Caches: cs, Instr: instr}, nil
}

// Rates converts the measurement into GSPN inputs for the given system.
// For the integrated system, withVictim selects whether the data-cache
// hit probability includes the victim cache (Table 4) or not (Table 3).
func (m *Measurement) Rates(integrated, withVictim bool) cpumodel.AppRates {
	cs := m.Caches
	counts := cs.RefCounts()
	app := cpumodel.AppRates{
		Name:      m.Workload.Name,
		BaseCPI:   m.Workload.BaseCPI,
		LoadFrac:  counts.LoadFrac(),
		StoreFrac: counts.StoreFrac(),
	}
	if app.BaseCPI < 1 {
		app.BaseCPI = 1
	}
	if integrated {
		app.IHit = 1 - cs.PropIStats().Ifetch.Rate()
		d := cs.PropDStats()
		if withVictim {
			d = cs.PropDVictimStats()
		}
		app.LoadHit = 1 - d.Load.Rate()
		app.StoreHit = 1 - d.Store.Rate()
		return app
	}
	// Reference system: 16 KB first-level caches + measured conditional
	// L2 hit rates.
	app.IHit = 1 - cs.ConvIStats(RefL1KB).Ifetch.Rate()
	d := cs.ConvDMStats(RefL1KB)
	app.LoadHit = 1 - d.Load.Rate()
	app.StoreHit = 1 - d.Store.Rate()
	l2 := cs.L2Stats()
	app.IL2Hit = 1 - l2.Ifetch.Rate()
	app.LoadL2Hit = 1 - l2.Load.Rate()
	app.StoreL2Hit = 1 - l2.Store.Rate()
	return app
}
