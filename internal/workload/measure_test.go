package workload

import (
	"testing"
)

// TestFastMatchesReplay is the workload half of the property-based
// equivalence suite (the random-trace half lives in
// internal/stackdist): the single-pass profiled measurement and the
// per-configuration replay must report identical miss counts for every
// size/associativity in the Figure 7/8 grid, the proposed caches, the
// victim-augmented cache, and the conditional L2.
func TestFastMatchesReplay(t *testing.T) {
	for _, name := range []string{"129.compress", "101.tomcatv", "126.gcc", "synopsys", "145.fpppp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			fast, err := Run(w, 150_000)
			if err != nil {
				t.Fatal(err)
			}
			replay, err := RunReplay(w, 150_000)
			if err != nil {
				t.Fatal(err)
			}
			f, r := fast.Caches, replay.Caches
			if fc, rc := f.RefCounts(), r.RefCounts(); fc != rc {
				t.Errorf("counts: fast %+v, replay %+v", fc, rc)
			}
			if a, b := f.PropIStats(), r.PropIStats(); a != b {
				t.Errorf("PropI: fast %+v, replay %+v", a, b)
			}
			if a, b := f.PropDStats(), r.PropDStats(); a != b {
				t.Errorf("PropD: fast %+v, replay %+v", a, b)
			}
			if a, b := f.PropDVictimStats(), r.PropDVictimStats(); a != b {
				t.Errorf("PropDVictim: fast %+v, replay %+v", a, b)
			}
			if a, b := f.L2Stats(), r.L2Stats(); a != b {
				t.Errorf("L2: fast %+v, replay %+v", a, b)
			}
			for _, kb := range ConvISizesKB {
				if a, b := f.ConvIStats(kb), r.ConvIStats(kb); a != b {
					t.Errorf("ConvI %dKB: fast %+v, replay %+v", kb, a, b)
				}
			}
			for _, kb := range ConvDSizesKB {
				if a, b := f.ConvDMStats(kb), r.ConvDMStats(kb); a != b {
					t.Errorf("ConvDM %dKB: fast %+v, replay %+v", kb, a, b)
				}
				if a, b := f.Conv2WStats(kb), r.Conv2WStats(kb); a != b {
					t.Errorf("Conv2W %dKB: fast %+v, replay %+v", kb, a, b)
				}
			}
			if fast.Instr != replay.Instr {
				t.Errorf("instructions: fast %d, replay %d", fast.Instr, replay.Instr)
			}
		})
	}
}

// TestRatesAgreeAcrossPaths checks the GSPN input derivation end to
// end on both measurement paths.
func TestRatesAgreeAcrossPaths(t *testing.T) {
	w, err := ByName("102.swim")
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(w, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := RunReplay(w, 120_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, integrated := range []bool{true, false} {
		for _, victim := range []bool{true, false} {
			a := fast.Rates(integrated, victim)
			b := replay.Rates(integrated, victim)
			if a != b {
				t.Errorf("integrated=%v victim=%v: fast %+v, replay %+v",
					integrated, victim, a, b)
			}
		}
	}
}
