package workload

import (
	"encoding/binary"
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/isa"
)

// prog accumulates assembly source text.
type prog struct{ b strings.Builder }

func (p *prog) f(format string, args ...interface{}) {
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

func (p *prog) label(name string) { p.f("%s:", name) }

func (p *prog) assemble() *isa.Program { return asm.MustAssemble(p.b.String()) }

// Generated-code register conventions (documented once here):
//
//	r1  outer loop counter        r10..r17 stream pointers
//	r2  inner loop counter        r18..r19 write pointers
//	r3  LCG state                 r20..r25 temporaries
//	r4,r5 scratch                 r8  window base (farm)
//	r6,r7 accumulators            r9  address scratch
//	r26 row-reuse pointer

// dataArena is where generated kernels place their main data. It is
// comfortably above the assembler's default data base and the stack.
const dataArena = 0x1000000

// lcgStep emits the linear congruential update of r3 (31-bit state).
func (p *prog) lcgStep() {
	p.f("muli r4, r3, 1103515245")
	p.f("addi r4, r4, 12345")
	p.f("andi r3, r4, 0x7fffffff")
}

// ---------------------------------------------------------------------
// Multi-stream sweep generator: the floating-point stencil kernels.
// ---------------------------------------------------------------------

// stream describes one array walked by a sweep kernel.
type stream struct {
	base     uint64
	neighbor bool // additionally read [i+1] from this stream
	prevRow  bool // additionally read [i - rowBytes] (previous-row reuse)
}

// sweep parameterises a stencil-like kernel: every inner iteration
// reads each read-stream, performs flops, writes each write-stream, and
// advances all pointers by elemSize. Base addresses control aliasing in
// the caches under test; see each benchmark for its chosen layout.
type sweep struct {
	reads    []stream
	writes   []uint64
	elems    int // elements per pass
	elemSize int // bytes per element (8 for float64 kernels)
	rowBytes int // row length for prevRow streams
	flops    int // extra FP ops per iteration
	alus     int // extra integer ops per iteration
	rereads  int // extra round-robin re-read rounds over all streams
	// rereads models stencils that consume each operand several times.
	// The rounds revisit the streams in A,B,C,A,B,C order: on streams
	// that conflict in a small-set cache every round thrashes again
	// (multiplying the conflict misses the paper attributes to the long
	// lines), while on spread streams and in high-set-count caches the
	// re-reads simply hit, lowering the per-access miss floor.
}

func (s sweep) build() *isa.Program {
	var p prog
	p.f(".text 0x1000")
	p.label("main")
	p.f("li r6, 0")
	p.f("li r7, 0")
	p.f("li r1, 0x7fffffff") // effectively run until the budget expires
	p.label("outer")
	for i, st := range s.reads {
		p.f("li r%d, 0x%x", 10+i, st.base)
	}
	for i, w := range s.writes {
		p.f("li r%d, 0x%x", 18+i, w)
	}
	p.f("li r2, %d", s.elems)
	p.label("inner")
	for i, st := range s.reads {
		reg := 10 + i
		p.f("ld r4, 0(r%d)", reg)
		p.f("fadd r6, r6, r4")
		if st.neighbor {
			p.f("ld r4, %d(r%d)", s.elemSize, reg)
			p.f("fadd r6, r6, r4")
		}
		if st.prevRow && s.rowBytes > 0 {
			p.f("ld r4, -%d(r%d)", s.rowBytes, reg)
			p.f("fadd r6, r6, r4")
		}
	}
	for round := 0; round < s.rereads; round++ {
		for i := range s.reads {
			p.f("ld r4, 0(r%d)", 10+i)
			p.f("fadd r6, r6, r4")
		}
	}
	for j := 0; j < s.flops; j++ {
		p.f("fmul r7, r6, r6")
	}
	for j := 0; j < s.alus; j++ {
		p.f("add r5, r5, r2")
	}
	for i := range s.writes {
		p.f("sd r7, 0(r%d)", 18+i)
	}
	for i := range s.reads {
		p.f("addi r%d, r%d, %d", 10+i, 10+i, s.elemSize)
	}
	for i := range s.writes {
		p.f("addi r%d, r%d, %d", 18+i, 18+i, s.elemSize)
	}
	p.f("addi r2, r2, -1")
	p.f("bne r2, zero, inner")
	p.f("addi r1, r1, -1")
	p.f("bne r1, zero, outer")
	p.f("halt")
	return p.assemble()
}

// Alias-layout helpers. The proposed D-cache has 16 sets of 512 B lines
// (set period 8 KiB); a conventional 16 KiB direct-mapped 32 B cache has
// 512 sets (period 16 KiB).

// collideBase returns the k-th base address of a family that all map to
// the *same* set of the proposed column-buffer cache while occupying
// well-separated sets of conventional 32 B-line caches: spacing is
// arraySpan rounded up to an odd multiple of 8 KiB, plus k·64 B of skew
// (which moves 2 conventional sets per array but stays inside the same
// 512 B column).
func collideBase(arena uint64, k int, arraySpan uint64) uint64 {
	span := (arraySpan/8192 + 1) * 8192
	if (span/8192)%2 == 0 {
		span += 8192 // odd multiple of 8 KiB: alternates 16 KiB DM halves
	}
	return arena + uint64(k)*span + uint64(k)*64
}

// spreadBase returns the k-th base of a family spread across *different*
// proposed sets (and different conventional sets): spacing is the array
// span rounded up to 8 KiB plus one 512 B column per array.
func spreadBase(arena uint64, k int, arraySpan uint64) uint64 {
	span := (arraySpan/8192 + 1) * 8192
	return arena + uint64(k)*(span+512)
}

// ---------------------------------------------------------------------
// Index-chase generator: pointer-heavy integer kernels.
// ---------------------------------------------------------------------

// chase parameterises a kernel that visits pseudo-random records in a
// large arena (an LCG supplies the indices, so no initialisation pass
// is needed), reads a few fields of each record, occasionally writes
// one, mixes in accesses to a small hot region, and branches on the
// random state — the access signature of 099.go, 129.compress,
// 147.vortex, and the Synopsys netlist walk.
type chase struct {
	arenaBytes  uint64 // power of two
	recordBytes int    // power of two; fields live at 8-byte offsets
	fields      int    // loads per record
	storeEvery  int    // one field store every N records (0 = never)
	hotBytes    uint64 // power of two; 0 disables the hot region
	hotReads    int    // loads from the hot region per record
	alus        int    // extra integer ops per record
	branchy     bool   // add a data-dependent branch per record
	seqRun      int    // visit N consecutive records per random jump (spatial locality)
	seqReads    int    // loads from a sequential input stream per iteration
	randomEvery int    // take the random jump only every N iterations (power of two; 0/1 = always)
	// revisitEvery re-touches an old record every N iterations (power
	// of two; 0 disables). The record visited revisitLag jumps ago is
	// read again: recent enough that its evicted 32 B block may still
	// sit in the victim cache, old enough that its 512 B line has left
	// the 32-line main cache — the access pattern behind 099.go's
	// modest (~25%) victim-cache benefit in Figure 8.
	revisitEvery int
	revisitLag   int // jumps back (must be < 64)
}

func (c chase) build() *isa.Program {
	if c.arenaBytes&(c.arenaBytes-1) != 0 {
		panic("chase: arena must be a power of two")
	}
	run := c.seqRun
	if run < 1 {
		run = 1
	}
	var p prog
	p.f(".text 0x1000")
	p.label("main")
	p.f("li r3, 123456789")
	p.f("li r7, 0")
	p.f("li r5, 0") // record counter for storeEvery
	p.f("li r1, 0x7fffffff")
	if c.seqReads > 0 {
		p.f("li r23, 0x%x", dataArena+2*c.arenaBytes+0x1340) // sequential input
	}
	p.f("li r9, 0x%x", dataArena)   // current record
	hotBase := dataArena - 0x100000 // hot region sits below the arena
	ringBase := hotBase - 0x10000   // 64-entry ring of past record addresses
	if c.revisitEvery > 1 {
		p.f("li r26, 0") // ring index
	}
	p.label("loop")
	p.lcgStep()
	if c.randomEvery > 1 {
		// Revisit the current record most iterations; jump randomly
		// only every randomEvery-th iteration.
		p.f("addi r22, r22, 1")
		p.f("andi r4, r22, %d", c.randomEvery-1)
		p.f("bne r4, zero, nojump")
	}
	// r9 = arena + (rand * recordBytes) & (arenaBytes-1)
	p.f("srli r9, r3, 7")
	p.f("slli r9, r9, %d", log2(uint64(c.recordBytes)))
	p.f("andi r9, r9, 0x%x", c.arenaBytes-1)
	p.f("addi r9, r9, 0x%x", dataArena)
	if c.randomEvery > 1 {
		p.label("nojump")
	}
	if c.revisitEvery > 1 {
		// Log the current record in the ring (the ring itself stays
		// cache-hot; it models the evaluator's node stack).
		p.f("andi r24, r26, 63")
		p.f("slli r24, r24, 3")
		p.f("addi r24, r24, 0x%x", ringBase)
		p.f("sd r9, 0(r24)")
		p.f("addi r26, r26, 1")
		// Every revisitEvery-th iteration, re-read a field of the
		// record visited revisitLag jumps ago.
		p.f("andi r24, r26, %d", c.revisitEvery-1)
		p.f("bne r24, zero, norevisit")
		p.f("addi r24, r26, %d", 64-c.revisitLag)
		p.f("andi r24, r24, 63")
		p.f("slli r24, r24, 3")
		p.f("addi r24, r24, 0x%x", ringBase)
		p.f("ld r24, 0(r24)")
		p.f("ld r25, 0(r24)")
		p.f("add r7, r7, r25")
		p.label("norevisit")
	}
	for s := 0; s < c.seqReads; s++ {
		p.f("ld r4, %d(r23)", s*8)
		p.f("add r7, r7, r4")
	}
	if c.seqReads > 0 {
		p.f("addi r23, r23, %d", c.seqReads*8)
	}
	for r := 0; r < run; r++ {
		for fld := 0; fld < c.fields; fld++ {
			p.f("ld r4, %d(r9)", fld*8)
			p.f("add r7, r7, r4")
		}
		if c.storeEvery > 0 {
			p.f("addi r5, r5, 1")
			p.f("andi r4, r5, %d", c.storeEvery-1)
			p.f("bne r4, zero, nostore%d", r)
			p.f("sd r7, %d(r9)", (c.fields-1)*8)
			p.label(fmt.Sprintf("nostore%d", r))
		}
		if r < run-1 {
			p.f("addi r9, r9, %d", c.recordBytes)
		}
	}
	for h := 0; h < c.hotReads; h++ {
		// Hot-region index derived from a different slice of the state.
		p.f("srli r4, r3, %d", 3+h)
		p.f("andi r4, r4, 0x%x", (c.hotBytes-1)&^7)
		p.f("addi r4, r4, 0x%x", hotBase)
		p.f("ld r4, 0(r4)")
		p.f("add r7, r7, r4")
	}
	if c.branchy {
		p.f("andi r4, r3, 64")
		p.f("beq r4, zero, even")
		p.f("addi r7, r7, 1")
		p.f("j join")
		p.label("even")
		p.f("addi r7, r7, 3")
		p.label("join")
	}
	for a := 0; a < c.alus; a++ {
		p.f("xor r6, r6, r7")
	}
	p.f("addi r1, r1, -1")
	p.f("bne r1, zero, loop")
	p.f("halt")
	return p.assemble()
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// ---------------------------------------------------------------------
// Function-farm generator: code-footprint-heavy kernels.
// ---------------------------------------------------------------------

// farmPattern selects how the driver picks the next function.
type farmPattern int

const (
	// farmWindow walks a window of consecutive functions, calling
	// random members of the window, sliding the window periodically —
	// the phase behaviour of a compiler (126.gcc) or simulator.
	farmWindow farmPattern = iota
	// farmUniform picks functions uniformly at random — the dispatch
	// behaviour of an interpreter with poor code locality (134.perl).
	farmUniform
)

// farm parameterises a kernel dominated by its instruction footprint:
// nFuncs functions of funcInstrs instructions each (padded to a
// power-of-two slot so indirect calls are cheap), called from a driver
// loop. Function bodies mix ALU work with loads from a shared data
// arena and a hot region.
type farm struct {
	nFuncs         int // power of two
	funcInstrs     int // instructions per function incl. ret; slot rounded up
	pattern        farmPattern
	window         int    // farmWindow: window size (power of two)
	callsPerWindow int    // farmWindow: calls before the window slides
	dataBytes      uint64 // power of two; shared LCG-indexed arena
	dataReads      int    // random-arena loads per qualifying call
	randomEvery    int    // random-arena loads only every N calls (power of two; 0/1 = always)
	seqReads       int    // sequential-stream loads per call
	funcData       int    // loads from the function's private 256 B blob per call
	dataWrites     bool   // one store per qualifying call
	hotBytes       uint64
	hotReads       int
}

// fdataBase is where farm functions keep their private 256 B data
// blobs (constants, literal pools): high-reuse data whose working set
// follows the active code window.
const fdataBase = dataArena - 0x300000

func (f farm) build() *isa.Program {
	slot := 1
	for slot < f.funcInstrs*isa.WordSize {
		slot <<= 1
	}
	const funcBase = 0x10000
	var p prog
	p.f(".text 0x1000")
	p.label("main")
	p.f("li r3, 987654321")
	p.f("li r5, 0")
	p.f("li r7, 0")
	p.f("li r8, 0")
	if f.seqReads > 0 {
		p.f("li r23, 0x%x", dataArena+2*f.dataBytes+0x1340)
	}
	p.f("li r1, 0x7fffffff")
	p.label("drv")
	p.lcgStep()
	p.f("srli r4, r3, 9")
	switch f.pattern {
	case farmWindow:
		p.f("andi r4, r4, %d", f.window-1)
		p.f("add r4, r4, r8")
		p.f("andi r4, r4, %d", f.nFuncs-1)
	case farmUniform:
		p.f("andi r4, r4, %d", f.nFuncs-1)
	}
	p.f("slli r4, r4, %d", log2(uint64(slot)))
	p.f("addi r4, r4, 0x%x", funcBase)
	p.f("jalr ra, r4, 0")
	if f.pattern == farmWindow {
		p.f("addi r5, r5, 1")
		p.f("andi r4, r5, %d", f.callsPerWindow-1)
		p.f("bne r4, zero, nowslide")
		p.f("addi r8, r8, %d", f.window/2)
		p.label("nowslide")
	}
	p.f("addi r1, r1, -1")
	p.f("bne r1, zero, drv")
	p.f("halt")

	// Function bodies.
	hotBase := dataArena - 0x100000
	for i := 0; i < f.nFuncs; i++ {
		p.f(".org 0x%x", uint64(funcBase)+uint64(i)*uint64(slot))
		p.label(fmt.Sprintf("fn%d", i))
		used := 1 // ret
		if f.funcData > 0 {
			p.f("li r9, 0x%x", uint64(fdataBase)+uint64(i)*256)
			used++
			for d := 0; d < f.funcData; d++ {
				p.f("ld r20, %d(r9)", (d*8)%256)
				p.f("add r7, r7, r20")
				used += 2
			}
		}
		for s := 0; s < f.seqReads; s++ {
			p.f("ld r20, %d(r23)", s*8)
			p.f("add r7, r7, r20")
			used += 2
		}
		if f.seqReads > 0 {
			p.f("addi r23, r23, %d", f.seqReads*8)
			used++
		}
		skipData := f.randomEvery > 1 && f.dataReads > 0
		if skipData {
			p.f("addi r22, r22, 1")
			p.f("andi r20, r22, %d", f.randomEvery-1)
			p.f("bne r20, zero, fnskip%d", i)
			used += 3
		}
		for d := 0; d < f.dataReads; d++ {
			p.f("srli r9, r3, %d", 4+d)
			p.f("andi r9, r9, 0x%x", (f.dataBytes-1)&^7)
			p.f("addi r9, r9, 0x%x", dataArena)
			p.f("ld r20, 0(r9)")
			p.f("add r7, r7, r20")
			used += 5
		}
		if f.dataWrites {
			p.f("sd r7, 0(r9)")
			used++
		}
		if skipData {
			p.label(fmt.Sprintf("fnskip%d", i))
		}
		for h := 0; h < f.hotReads; h++ {
			p.f("srli r9, r3, %d", 6+h)
			p.f("andi r9, r9, 0x%x", (f.hotBytes-1)&^7)
			p.f("addi r9, r9, 0x%x", hotBase)
			p.f("ld r20, 0(r9)")
			p.f("add r7, r7, r20")
			used += 5
		}
		// A data-independent branch diamond adds realistic control flow.
		p.f("andi r20, r3, %d", 16<<(i%3))
		p.f("beq r20, zero, fna%d", i)
		p.f("addi r7, r7, %d", i)
		p.f("j fnb%d", i)
		p.label(fmt.Sprintf("fna%d", i))
		p.f("addi r7, r7, %d", i+1)
		p.label(fmt.Sprintf("fnb%d", i))
		used += 5
		for used < f.funcInstrs-1 {
			p.f("xor r21, r21, r7")
			used++
		}
		p.f("ret")
	}
	return p.assemble()
}

// ---------------------------------------------------------------------
// Straight-line generator: 145.fpppp.
// ---------------------------------------------------------------------

// straightLine builds a kernel whose loop body is a single enormous
// straight-line code sequence (nBlocks × blockInstrs instructions of FP
// work on a small data set), re-executed from the top — the structure
// that makes 145.fpppp stream through its instruction cache.
type straightLine struct {
	nBlocks     int
	blockInstrs int
	dataBytes   uint64 // small working set, power of two
}

func (s straightLine) build() *isa.Program {
	var p prog
	p.f(".text 0x1000")
	p.label("main")
	p.f("li r7, 0")
	p.f("li r1, 0x7fffffff")
	p.label("top")
	for b := 0; b < s.nBlocks; b++ {
		// Each block touches one slot of the small working set and
		// then grinds floating-point registers.
		off := (uint64(b) * 264) & (s.dataBytes - 1) & ^uint64(7)
		p.f("li r9, 0x%x", dataArena+off)
		p.f("ld r4, 0(r9)")
		p.f("fadd r6, r6, r4")
		rem := s.blockInstrs - 4
		for k := 0; k < rem; k++ {
			switch k % 3 {
			case 0:
				p.f("fmul r5, r6, r6")
			case 1:
				p.f("fadd r6, r6, r5")
			default:
				p.f("fsub r5, r5, r6")
			}
		}
		p.f("sd r6, 0(r9)")
	}
	p.f("addi r1, r1, -1")
	p.f("bne r1, zero, top")
	p.f("halt")
	return p.assemble()
}

// ---------------------------------------------------------------------
// Linked-list builder: 130.li.
// ---------------------------------------------------------------------

// buildLists creates nLists cons-cell lists of listLen cells each.
// Cell layout: [car int64][cdr pointer]. Cells of each list are
// allocated sequentially (allocation order = traversal order, as in a
// fresh heap), and list base addresses are chosen by the caller. The
// returned segments initialise the heap.
func buildLists(bases []uint64, listLen int) []isa.Segment {
	segs := make([]isa.Segment, 0, len(bases))
	for _, base := range bases {
		buf := make([]byte, listLen*16)
		for i := 0; i < listLen; i++ {
			car := uint64(i)*7 + 1
			var cdr uint64
			if i < listLen-1 {
				cdr = base + uint64(i+1)*16
			}
			binary.LittleEndian.PutUint64(buf[i*16:], car)
			binary.LittleEndian.PutUint64(buf[i*16+8:], cdr)
		}
		segs = append(segs, isa.Segment{Base: base, Bytes: buf})
	}
	return segs
}
