package workload

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cpumodel"
	"repro/internal/trace"
)

// FamilyGeom is one victimless D-cache geometry inside a family: the
// (banks, ways) pair a DStats lookup is keyed by.
type FamilyGeom struct {
	Banks, Ways int
}

// FamilySummary is the serializable distillation of one
// (column family, workload) trace pass: the final cache statistics of
// every registered design point plus the stream tallies — everything
// the design-space assembly reads, none of the live profiler state.
// Unlike FamilyCacheSet (stack-distance histograms plus in-flight
// victim compounds, which only exist as live data structures), a
// summary is a plain exported-field struct, so it can travel through
// the result cache (gob) and, later, over the wire to iramsimd
// clients. Its accessors mirror FamilyCacheSet's and reproduce
// FamilyMeasurement.Rates bit for bit.
type FamilySummary struct {
	Bench    string
	BaseCPI  float64
	Refs     trace.Counts
	Instr    int64
	Compound int // in-pass victim compounds the pass carried

	IBanks map[int]cache.Stats         // banks -> I-cache stats
	DGeom  map[FamilyGeom]cache.Stats  // (banks, ways) -> D-cache stats
	DVic   map[FamilyPoint]cache.Stats // victim-bearing point -> stats
}

// Summary distills the measurement for the given registered points.
// The points must be (a subset of) those the family set was built
// with; statistics for unregistered geometries would panic exactly as
// they do on FamilyCacheSet.
func (m *FamilyMeasurement) Summary(points []FamilyPoint) *FamilySummary {
	s := &FamilySummary{
		Bench:    m.Workload.Name,
		BaseCPI:  m.Workload.BaseCPI,
		Refs:     m.Set.RefCounts(),
		Instr:    m.Instr,
		Compound: m.Set.Compounds(),
		IBanks:   make(map[int]cache.Stats),
		DGeom:    make(map[FamilyGeom]cache.Stats),
		DVic:     make(map[FamilyPoint]cache.Stats),
	}
	for _, p := range points {
		s.IBanks[p.Banks] = m.Set.IStats(p.Banks)
		s.DGeom[FamilyGeom{Banks: p.Banks, Ways: p.Ways}] = m.Set.DStats(p.Banks, p.Ways)
		if p.VictimEntries > 0 {
			s.DVic[FamilyPoint{Banks: p.Banks, Ways: p.Ways, VictimEntries: p.VictimEntries}] = m.Set.DVictimStats(p)
		}
	}
	return s
}

// Compounds reports the in-pass victim replays the original pass made.
func (s *FamilySummary) Compounds() int { return s.Compound }

// RefCounts tallies the reference stream by kind.
func (s *FamilySummary) RefCounts() trace.Counts { return s.Refs }

// IStats returns the I-cache statistics for the given bank count.
func (s *FamilySummary) IStats(banks int) cache.Stats {
	st, ok := s.IBanks[banks]
	if !ok {
		panic(fmt.Sprintf("workload: family summary has no I-stats for banks=%d", banks))
	}
	return st
}

// DStats returns the victimless D-cache statistics for the geometry.
func (s *FamilySummary) DStats(banks, ways int) cache.Stats {
	st, ok := s.DGeom[FamilyGeom{Banks: banks, Ways: ways}]
	if !ok {
		panic(fmt.Sprintf("workload: family summary has no D-stats for banks=%d ways=%d", banks, ways))
	}
	return st
}

// DVictimStats returns the D-cache-plus-victim statistics for a
// victim-bearing point; for VictimEntries == 0 it is DStats.
func (s *FamilySummary) DVictimStats(p FamilyPoint) cache.Stats {
	if p.VictimEntries <= 0 {
		return s.DStats(p.Banks, p.Ways)
	}
	st, ok := s.DVic[p]
	if !ok {
		panic(fmt.Sprintf("workload: family summary has no victim stats for %+v", p))
	}
	return st
}

// Rates converts one family point's statistics into integrated-system
// GSPN inputs. The arithmetic replicates FamilyMeasurement.Rates
// operation for operation, so a summary read back from the result
// cache feeds the GSPN bit-identical inputs.
func (s *FamilySummary) Rates(p FamilyPoint) cpumodel.AppRates {
	app := cpumodel.AppRates{
		Name:      s.Bench,
		BaseCPI:   s.BaseCPI,
		LoadFrac:  s.Refs.LoadFrac(),
		StoreFrac: s.Refs.StoreFrac(),
	}
	if app.BaseCPI < 1 {
		app.BaseCPI = 1
	}
	app.IHit = 1 - s.IStats(p.Banks).Ifetch.Rate()
	d := s.DStats(p.Banks, p.Ways)
	if p.VictimEntries > 0 {
		d = s.DVictimStats(p)
	}
	app.LoadHit = 1 - d.Load.Rate()
	app.StoreHit = 1 - d.Store.Rate()
	return app
}
