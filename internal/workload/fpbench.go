package workload

import "repro/internal/isa"

// Floating-point benchmark stand-ins (SPEC'95 CFP). The aliasing
// helpers collideBase/spreadBase (gen.go) place array bases either in
// the same set of the proposed 16-set column-buffer cache or in
// well-separated sets; that single choice reproduces the paper's split
// between the long-line winners (hydro2d, mgrid) and the conflict
// victims (tomcatv, swim, su2cor, wave5).

func init() {
	const mb = 1 << 20

	register(Workload{
		Name: "101.tomcatv",
		Description: "Mesh generation: seven large array streams swept " +
			"in lockstep; three alias in the proposed cache and thrash " +
			"its two ways, which the victim cache then absorbs (back to " +
			"roughly conventional 2-way levels, as in Figure 8).",
		Build: func() *isa.Program {
			const span = 512 << 10
			return sweep{
				reads: []stream{
					{base: collideBase(dataArena, 0, span)},
					{base: collideBase(dataArena, 1, span)},
					{base: collideBase(dataArena, 2, span)},
					{base: spreadBase(dataArena+16*mb+0x1340, 0, span), neighbor: true},
					{base: spreadBase(dataArena+16*mb+0x1340, 1, span), neighbor: true},
					{base: spreadBase(dataArena+16*mb+0x1340, 2, span)},
				},
				writes:   []uint64{spreadBase(dataArena+32*mb+0x2680, 0, span), spreadBase(dataArena+32*mb+0x2680, 1, span)},
				elems:    span / 8,
				elemSize: 8,
				flops:    3,
				alus:     2,
				rereads:  2,
			}.build()
		},
	})

	register(Workload{
		Name: "102.swim",
		Description: "Shallow-water model: many array streams; two " +
			"separate three-way alias groups thrash two of the proposed " +
			"cache's sets. The victim cache holds every stream's current " +
			"32 B block and recovers the factor the paper reports.",
		Build: func() *isa.Program {
			const span = 512 << 10
			return sweep{
				reads: []stream{
					{base: collideBase(dataArena, 0, span)},
					{base: collideBase(dataArena, 1, span)},
					{base: collideBase(dataArena, 2, span)},
					{base: collideBase(dataArena+16*mb+1024, 0, span)},
					{base: collideBase(dataArena+16*mb+1024, 1, span)},
					{base: collideBase(dataArena+16*mb+1024, 2, span)},
				},
				writes:   []uint64{spreadBase(dataArena+32*mb+0x2680, 0, span)},
				elems:    span / 8,
				elemSize: 8,
				flops:    4,
				alus:     2,
				rereads:  2,
			}.build()
		},
	})

	register(Workload{
		Name: "103.su2cor",
		Description: "Quark-gluon lattice: strided sweeps whose bases " +
			"alias in the proposed cache; conflict-dominated like " +
			"tomcatv, recovered by the victim cache.",
		Build: func() *isa.Program {
			const span = 1 << 20
			return sweep{
				reads: []stream{
					{base: collideBase(dataArena, 0, span)},
					{base: collideBase(dataArena, 1, span)},
					{base: collideBase(dataArena, 2, span), neighbor: true},
					{base: spreadBase(dataArena+16*mb+0x1340, 0, span), neighbor: true},
				},
				writes:   []uint64{spreadBase(dataArena+32*mb+0x2680, 0, span)},
				elems:    span / 8,
				elemSize: 8,
				flops:    4,
				alus:     3,
				rereads:  2,
			}.build()
		},
	})

	register(Workload{
		Name: "104.hydro2d",
		Description: "Navier-Stokes on a grid: pure row-major sweeps " +
			"with no aliasing. Each 512 B fill prefetches 64 elements, " +
			"so the proposed cache misses an order of magnitude less " +
			"than a conventional 32 B-line cache (Figure 8).",
		Build: func() *isa.Program {
			const span = 1 << 20
			return sweep{
				reads: []stream{
					{base: spreadBase(dataArena, 0, span), neighbor: true},
					{base: spreadBase(dataArena, 1, span), neighbor: true},
					{base: spreadBase(dataArena, 2, span), neighbor: true},
					{base: spreadBase(dataArena, 3, span)},
				},
				writes:   []uint64{spreadBase(dataArena, 4, span), spreadBase(dataArena, 5, span)},
				elems:    span / 8,
				elemSize: 8,
				flops:    6,
				alus:     2,
				rereads:  2,
			}.build()
		},
	})

	register(Workload{
		Name: "107.mgrid",
		Description: "3-D multigrid: stencil sweeps through adjacent " +
			"planes of one array — the paper's best case for long " +
			"lines (over 10× better than a same-size conventional DM " +
			"cache).",
		Build: func() *isa.Program {
			const plane = 128 * 128 * 8 // one 128×128 float64 plane
			// Plane bases are skewed by 0x1340 each: a raw 128 KB plane
			// stride is ≡ 0 mod 8 KiB and would alias all three plane
			// streams into a single proposed set. (SPEC's mgrid pads its
			// grids similarly; an unpadded power-of-two grid is a known
			// cache pathological case.)
			return sweep{
				reads: []stream{
					{base: dataArena + plane + 0x1340, neighbor: true, prevRow: true}, // centre
					{base: dataArena},                    // below
					{base: dataArena + 2*plane + 0x2680}, // above
				},
				writes:   []uint64{dataArena + 8*mb + 0x4d00},
				elems:    plane / 8,
				elemSize: 8,
				rowBytes: 128 * 8,
				flops:    6,
				alus:     2,
				rereads:  2,
			}.build()
		},
	})

	register(Workload{
		Name: "110.applu",
		Description: "Blocked LU solver: the active block fits on " +
			"chip; essentially no misses (paper: 0.01 memory CPI).",
		Build: func() *isa.Program {
			return sweep{
				reads: []stream{
					{base: dataArena, neighbor: true},
					{base: dataArena + 0x1200, neighbor: true},
					{base: dataArena + 0x2400},
				},
				writes:   []uint64{dataArena + 0x3600},
				elems:    512, // ~16 KB working set, reswept forever
				elemSize: 8,
				flops:    7,
				alus:     3,
			}.build()
		},
	})

	register(Workload{
		Name:        "125.turb3d",
		Description: "Turbulence: the one I-cache regression — a loop calling a subroutine whose address is 8 KiB (+256 B) away, so loop and callee share one of the proposed cache's 16 lines but occupy disjoint lines of every conventional cache.",
		Build:       buildTurb3d,
	})

	register(Workload{
		Name: "141.apsi",
		Description: "Mesoscale weather: many routines over moderate " +
			"grids; dominated by its functional-unit CPI (1.70), with a " +
			"small memory component.",
		Build: func() *isa.Program {
			return farm{
				nFuncs:         128,
				funcInstrs:     60, // 256 B slots -> 32 KB of code
				pattern:        farmWindow,
				window:         16,
				callsPerWindow: 128,
				dataBytes:      1 << 20,
				dataReads:      1,
				randomEvery:    8,
				seqReads:       1,
				funcData:       3,
				hotBytes:       8 << 10,
				hotReads:       1,
			}.build()
		},
	})

	register(Workload{
		Name: "145.fpppp",
		Description: "Multi-electron derivatives: ~40 KB of straight-" +
			"line code streamed from the top on every iteration. Each " +
			"512 B fill delivers 128 instructions, giving the paper's " +
			"~11× I-miss advantage over a same-size 32 B-line cache.",
		Build: func() *isa.Program {
			return straightLine{
				nBlocks:     80,
				blockInstrs: 128, // 80×128 instructions = 40 KB of code
				dataBytes:   8 << 10,
			}.build()
		},
	})

	register(Workload{
		Name: "146.wave5",
		Description: "Particle-in-cell: particle stream plus field " +
			"streams whose bases alias in the proposed cache; the " +
			"victim cache recovers the 2–5× the paper reports.",
		Build: func() *isa.Program {
			const span = 2 << 20
			return sweep{
				reads: []stream{
					{base: collideBase(dataArena, 0, span), neighbor: true},
					{base: collideBase(dataArena, 1, span)},
					{base: collideBase(dataArena, 2, span)},
					{base: spreadBase(dataArena+32*mb+0x1340, 0, span), neighbor: true},
					{base: spreadBase(dataArena+32*mb+0x1340, 1, span)},
				},
				writes:   []uint64{spreadBase(dataArena+64*mb+0x2680, 0, span)},
				elems:    span / 8,
				elemSize: 8,
				flops:    4,
				alus:     2,
				rereads:  2,
			}.build()
		},
	})
}

// buildTurb3d constructs the loop/subroutine I-cache conflict kernel.
// Layout (chosen so the conflict exists *only* in the proposed cache):
//
//	loop body at 0x2000:            proposed line (0x2000/512)%16 = 0
//	subroutine at 0x2000+8K+256:    proposed line (0x4100/512)%16 = 0
//
// In an 8 KB conventional cache the two occupy byte offsets 0x000–0x0a0
// and 0x100–0x1a0 of the index space — no overlap; larger conventional
// caches separate them further.
func buildTurb3d() *isa.Program {
	var p prog
	p.f(".text 0x1000")
	p.f(".org 0x2000")
	p.label("main")
	p.f("li r7, 0")
	p.f("li r1, 0x7fffffff")
	p.f("li r10, 0x%x", dataArena)
	p.f("li r2, %d", 4096)
	p.label("loop")
	// Part A of the loop body: FP work on a sequential stream.
	p.f("ld r4, 0(r10)")
	p.f("fadd r6, r6, r4")
	for i := 0; i < 10; i++ {
		p.f("fmul r5, r6, r6")
	}
	// The conflicting subroutine runs every fourth iteration (the FFT
	// pass it models is per-plane, not per-point); this sets the
	// conflict frequency that makes turb3d the paper's one I-cache
	// regression without overstating it.
	p.f("addi r22, r22, 1")
	p.f("andi r4, r22, 3")
	p.f("bne r4, zero, nocall")
	p.f("call turbsub")
	p.label("nocall")
	// Part B (after a return, the loop's line has been evicted by
	// the callee in the proposed cache).
	for i := 0; i < 10; i++ {
		p.f("fadd r6, r6, r5")
	}
	p.f("addi r10, r10, 8")
	p.f("addi r2, r2, -1")
	p.f("bne r2, zero, loop")
	p.f("li r10, 0x%x", dataArena)
	p.f("addi r1, r1, -1")
	p.f("bne r1, zero, loop")
	p.f("halt")
	// Place the subroutine at the aliasing distance.
	p.f(".org 0x%x", 0x2000+8192+256)
	p.label("turbsub")
	p.f("ld r4, 8(r10)")
	p.f("fadd r6, r6, r4")
	for i := 0; i < 20; i++ {
		p.f("fmul r5, r6, r6")
	}
	p.f("ret")
	return p.assemble()
}
