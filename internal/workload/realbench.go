package workload

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/isa"
)

// Real-program kernels (GroupReal). Unlike the SPEC stand-ins, which
// are engineered from the paper's characterisation of each benchmark,
// these are actual programs with verifiable architectural output: each
// kernel computes a result, folds it into a checksum, and compares the
// checksum against the expected value computed by a Go mirror of the
// same algorithm at generation time. Register convention for the
// self-check epilogue:
//
//	r28  running checksum (integer wraparound accumulation)
//	r27  pass flag: 1 if r28 matched the embedded expected value
//
// A test runs each program to completion (budget 0) and asserts
// Halted, r27 == 1, and r28 == the mirror's checksum. The kernels are
// not in paperref.Tables34 — the paper measured SPEC'95, not these —
// so BaseCPI is an explicit, documented estimate and SpecCal is absent
// (there is no paper calibration constant mapping a non-SPEC program's
// CPI onto a SPEC'95 ratio; consumers guard with SpecCal > 0).

func init() {
	register(Workload{
		Name:  "gemm",
		Group: GroupReal,
		Description: "blocked 96x96 GEMM, sum-stationary 4x4 register tile " +
			"over row-block/column-block operand layout; self-checking",
		Float:   true,
		BaseCPI: 1.4, // FP multiply-add dominated, between tomcatv-class sweeps and fpppp
		Build:   buildGEMM,
	})
	register(Workload{
		Name:  "bfs",
		Group: GroupReal,
		Description: "breadth-first search over a seeded 4096-node CSR graph " +
			"with per-node and per-edge work; self-checking",
		BaseCPI: 1.2, // pointer-heavy integer code, mostly single-cycle ops
		Build:   buildBFS,
	})
	register(Workload{
		Name:  "hashjoin",
		Group: GroupReal,
		Description: "hash join: build 16K-tuple open-addressing table, " +
			"probe 128K keys summing matching payloads; self-checking",
		BaseCPI: 1.25, // integer compare/branch dominated probe loop
		Build:   buildHashJoin,
	})
}

// lcg31 is the same linear congruential step the generated kernels
// execute (see prog.lcgStep); the Go mirrors use it so that generated
// data and in-program derivations agree bit for bit.
func lcg31(s uint64) uint64 { return (s*1103515245 + 12345) & 0x7fffffff }

// checkEpilogue emits the shared self-check tail: compare the running
// checksum in r28 against the expected value and set r27.
func (p *prog) checkEpilogue(expected uint64) {
	p.f("li r20, %d", int64(expected))
	p.f("li r27, 1")
	p.f("beq r28, r20, check_done")
	p.f("li r27, 0")
	p.label("check_done")
	p.f("halt")
}

// ---------------------------------------------------------------------
// Blocked GEMM, sum-stationary layout (SNIPPETS.md).
// ---------------------------------------------------------------------

const (
	gemmD     = 96 // square matrix dimension; 96^3 = 884736 MACs
	gemmTile  = 4  // register tile edge: 4x4 C tile = 16 accumulators
	gemmABase = dataArena
	gemmBBase = dataArena + 0x20000
	gemmCBase = dataArena + 0x40000
)

func gemmA(i, k int) float64 { return float64((i*7+k*13)%32) * 0.25 }
func gemmB(k, j int) float64 { return float64((k*11+j*5)%32) * 0.125 }

// gemmMirror computes C = A*B with exactly the FP operation order the
// generated kernel uses (each accumulator sums its k-products in
// sequence), then the checksum: wraparound sum of the raw IEEE bits of
// C in row-major order. Addition of float bits as integers is
// order-insensitive, but the C values themselves depend on FP rounding
// order, which is why the mirror replicates the tile loop exactly.
func gemmMirror() uint64 {
	d, t := gemmD, gemmTile
	c := make([]float64, d*d)
	for bi := 0; bi < d/t; bi++ {
		for bj := 0; bj < d/t; bj++ {
			var acc [gemmTile * gemmTile]float64 // acc[cc*t+r] ~ asm reg r1+cc*4+r
			for k := 0; k < d; k++ {
				var av [gemmTile]float64
				for r := 0; r < t; r++ {
					av[r] = gemmA(bi*t+r, k)
				}
				for cc := 0; cc < t; cc++ {
					bv := gemmB(k, bj*t+cc)
					for r := 0; r < t; r++ {
						acc[cc*t+r] += av[r] * bv
					}
				}
			}
			for r := 0; r < t; r++ {
				for cc := 0; cc < t; cc++ {
					c[(bi*t+r)*d+bj*t+cc] = acc[cc*t+r]
				}
			}
		}
	}
	var sum uint64
	for _, v := range c {
		sum += math.Float64bits(v)
	}
	return sum
}

// gemmSegments lays A out as row blocks (column-major within each
// 4-row block: the 4 values of column k are contiguous) and B as
// column blocks (row-major within each 4-column block), so one k-step
// of a tile reads 4+4 contiguous doubles — the sum-stationary layout.
func gemmSegments() []isa.Segment {
	d, t := gemmD, gemmTile
	var aBytes, bBytes []byte
	for bi := 0; bi < d/t; bi++ {
		for k := 0; k < d; k++ {
			for r := 0; r < t; r++ {
				aBytes = binary.LittleEndian.AppendUint64(aBytes, math.Float64bits(gemmA(bi*t+r, k)))
			}
		}
	}
	for bj := 0; bj < d/t; bj++ {
		for k := 0; k < d; k++ {
			for cc := 0; cc < t; cc++ {
				bBytes = binary.LittleEndian.AppendUint64(bBytes, math.Float64bits(gemmB(k, bj*t+cc)))
			}
		}
	}
	return []isa.Segment{
		{Base: gemmABase, Bytes: aBytes},
		{Base: gemmBBase, Bytes: bBytes},
	}
}

func buildGEMM() *isa.Program {
	d, t := gemmD, gemmTile
	blockBytes := d * t * 8 // one row/column block: d columns x t doubles
	rowBytes := d * 8
	var p prog
	p.f(".text 0x1000")
	p.label("main")
	p.f("li r26, 0") // bi
	p.label("bi_loop")
	p.f("li r29, 0") // bj
	p.label("bj_loop")
	for i := 1; i <= t*t; i++ {
		p.f("li r%d, 0", i) // zero the C-tile accumulators r1..r16
	}
	p.f("muli r17, r26, %d", blockBytes)
	p.f("addi r17, r17, 0x%x", uint64(gemmABase))
	p.f("muli r18, r29, %d", blockBytes)
	p.f("addi r18, r18, 0x%x", uint64(gemmBBase))
	p.f("li r19, %d", d)
	p.label("k_loop")
	for r := 0; r < t; r++ {
		p.f("ld r%d, %d(r17)", 20+r, r*8) // column k of the A row block
	}
	for cc := 0; cc < t; cc++ {
		p.f("ld r24, %d(r18)", cc*8) // B[k][4*bj+cc]
		for r := 0; r < t; r++ {
			p.f("fmul r25, r%d, r24", 20+r)
			p.f("fadd r%d, r%d, r25", 1+cc*t+r, 1+cc*t+r)
		}
	}
	p.f("addi r17, r17, %d", t*8)
	p.f("addi r18, r18, %d", t*8)
	p.f("addi r19, r19, -1")
	p.f("bne r19, zero, k_loop")
	// Store the C tile row-major: row r holds acc[cc*4+r] for cc=0..3.
	p.f("muli r25, r26, %d", t*rowBytes)
	p.f("addi r25, r25, 0x%x", uint64(gemmCBase))
	p.f("muli r24, r29, %d", t*8)
	p.f("add r25, r25, r24")
	for r := 0; r < t; r++ {
		if r > 0 {
			p.f("addi r25, r25, %d", rowBytes)
		}
		for cc := 0; cc < t; cc++ {
			p.f("sd r%d, %d(r25)", 1+cc*t+r, cc*8)
		}
	}
	p.f("addi r29, r29, 1")
	p.f("li r25, %d", d/t)
	p.f("bne r29, r25, bj_loop")
	p.f("addi r26, r26, 1")
	p.f("li r25, %d", d/t)
	p.f("bne r26, r25, bi_loop")
	// Checksum: wraparound sum of the raw bits of C.
	p.f("li r17, 0x%x", uint64(gemmCBase))
	p.f("li r19, %d", d*d)
	p.label("ck_loop")
	p.f("ld r20, 0(r17)")
	p.f("add r28, r28, r20")
	p.f("addi r17, r17, 8")
	p.f("addi r19, r19, -1")
	p.f("bne r19, zero, ck_loop")
	p.checkEpilogue(gemmMirror())
	program := p.assemble()
	program.Data = append(program.Data, gemmSegments()...)
	return program
}

// ---------------------------------------------------------------------
// BFS over a seeded CSR graph.
// ---------------------------------------------------------------------

const (
	bfsV           = 4096
	bfsRoots       = 6
	bfsOffBase     = dataArena           // (V+1) uint64 CSR offsets
	bfsEdgeBase    = dataArena + 0x10000 // edge dword = target | weight<<32
	bfsVisitedBase = dataArena + 0x80000 // epoch-tagged visit marks (zero)
	bfsQueueBase   = dataArena + 0xA0000 // FIFO ring, entry = node | depth<<32
)

func bfsRoot(i int) int { return (17 + 701*i) % bfsV }

// bfsGraph generates the CSR adjacency deterministically: node degrees
// 4..12, uniform random targets and 4-bit edge weights from lcg31.
func bfsGraph() (off []uint64, edges []uint64) {
	off = make([]uint64, bfsV+1)
	s := uint64(424243)
	for v := 0; v < bfsV; v++ {
		s = lcg31(s)
		deg := 4 + int(s%9)
		for e := 0; e < deg; e++ {
			s = lcg31(s)
			target := s % bfsV
			s = lcg31(s)
			weight := s % 16
			edges = append(edges, target|weight<<32)
		}
		off[v+1] = uint64(len(edges))
	}
	return off, edges
}

// bfsMirror runs the exact traversal the kernel executes: for each
// root (epoch = index+1), a FIFO BFS accumulating node*depth + node
// per dequeued node and the weight of every scanned edge. All
// arithmetic is integer, so equality with the VM is exact.
func bfsMirror(off, edges []uint64) uint64 {
	visited := make([]uint64, bfsV)
	queue := make([]uint64, 0, bfsV)
	var sum uint64
	for i := 0; i < bfsRoots; i++ {
		epoch := uint64(i + 1)
		root := uint64(bfsRoot(i))
		visited[root] = epoch
		queue = append(queue[:0], root)
		for head := 0; head < len(queue); head++ {
			entry := queue[head]
			depth := entry >> 32
			node := entry & 0xffffffff
			sum += node*depth + node
			for e := off[node]; e < off[node+1]; e++ {
				edge := edges[e]
				sum += edge >> 32
				t := edge & 0xffffffff
				if visited[t] != epoch {
					visited[t] = epoch
					queue = append(queue, t|(depth+1)<<32)
				}
			}
		}
	}
	return sum
}

func buildBFS() *isa.Program {
	off, edges := bfsGraph()
	var p prog
	p.f(".text 0x1000")
	p.label("main")
	p.f("li r10, 0x%x", uint64(bfsOffBase))
	p.f("li r11, 0x%x", uint64(bfsEdgeBase))
	p.f("li r12, 0x%x", uint64(bfsVisitedBase))
	p.f("li r13, 0x%x", uint64(bfsQueueBase))
	p.f("li r21, 0") // epoch
	for i := 0; i < bfsRoots; i++ {
		p.f("addi r21, r21, 1")
		p.f("li r20, %d", bfsRoot(i))
		p.f("call bfs_run")
	}
	p.checkEpilogue(bfsMirror(off, edges))

	// bfs_run: BFS from root r20 under epoch r21.
	// r14 head, r15 tail, r16 node, r17 depth, r18/r19 edge range.
	p.label("bfs_run")
	p.f("slli r22, r20, 3")
	p.f("add r22, r22, r12")
	p.f("sd r21, 0(r22)") // visited[root] = epoch
	p.f("sd r20, 0(r13)") // queue[0] = root (depth 0)
	p.f("li r14, 0")
	p.f("li r15, 1")
	p.label("node_loop")
	p.f("beq r14, r15, bfs_done")
	p.f("slli r22, r14, 3")
	p.f("add r22, r22, r13")
	p.f("ld r16, 0(r22)")
	p.f("addi r14, r14, 1")
	p.f("srli r17, r16, 32")         // depth
	p.f("andi r16, r16, 0xffffffff") // node
	p.f("mul r22, r16, r17")         // per-node work
	p.f("add r28, r28, r22")
	p.f("add r28, r28, r16")
	p.f("slli r22, r16, 3")
	p.f("add r22, r22, r10")
	p.f("ld r18, 0(r22)") // edge start
	p.f("ld r19, 8(r22)") // edge end
	p.label("edge_loop")
	p.f("beq r18, r19, node_loop")
	p.f("slli r22, r18, 3")
	p.f("add r22, r22, r11")
	p.f("ld r23, 0(r22)") // edge word
	p.f("addi r18, r18, 1")
	p.f("srli r24, r23, 32") // weight
	p.f("add r28, r28, r24")
	p.f("andi r23, r23, 0xffffffff") // target
	p.f("slli r22, r23, 3")
	p.f("add r22, r22, r12")
	p.f("ld r24, 0(r22)")
	p.f("beq r24, r21, edge_loop") // already visited this epoch
	p.f("sd r21, 0(r22)")
	p.f("addi r24, r17, 1")
	p.f("slli r24, r24, 32")
	p.f("or r24, r24, r23")
	p.f("slli r22, r15, 3")
	p.f("add r22, r22, r13")
	p.f("sd r24, 0(r22)")
	p.f("addi r15, r15, 1")
	p.f("j edge_loop")
	p.label("bfs_done")
	p.f("ret")

	var offBytes, edgeBytes []byte
	for _, v := range off {
		offBytes = binary.LittleEndian.AppendUint64(offBytes, v)
	}
	for _, v := range edges {
		edgeBytes = binary.LittleEndian.AppendUint64(edgeBytes, v)
	}
	if uint64(bfsEdgeBase)+uint64(len(edgeBytes)) > bfsVisitedBase {
		panic(fmt.Sprintf("workload: bfs edge segment overruns visited region (%d bytes)", len(edgeBytes)))
	}
	program := p.assemble()
	program.Data = append(program.Data,
		isa.Segment{Base: bfsOffBase, Bytes: offBytes},
		isa.Segment{Base: bfsEdgeBase, Bytes: edgeBytes},
	)
	return program
}

// ---------------------------------------------------------------------
// Hash join: build + probe over seeded relations.
// ---------------------------------------------------------------------

const (
	hjSlots     = 65536 // open-addressing table, 16-byte slots (1 MiB)
	hjBuildN    = 16384 // build-side tuples (25% fill)
	hjProbeN    = 131072
	hjKeySpace  = 0x3ffff // keys 1..2^18: ~1/16 probe hit rate
	hjBuildSeed = 2024
	hjProbeSeed = 777
	hjTableBase = dataArena // zero-initialised; key 0 marks an empty slot
)

func hjKey(s uint64) uint64     { return s&hjKeySpace + 1 }
func hjPayload(k uint64) uint64 { return k ^ 0x15555 }

// hjMirror replicates the kernel: build inserts each key at the first
// empty slot from its hash slot (linear probing with wraparound);
// probe scans from the hash slot to the first empty slot, summing the
// payload of every matching key and counting matches. Checksum =
// payload sum + matches*2654435761, all uint64 wraparound.
func hjMirror() uint64 {
	keys := make([]uint64, hjSlots)
	pays := make([]uint64, hjSlots)
	s := uint64(hjBuildSeed)
	for i := 0; i < hjBuildN; i++ {
		s = lcg31(s)
		k := hjKey(s)
		slot := k % hjSlots
		for keys[slot] != 0 {
			slot = (slot + 1) % hjSlots
		}
		keys[slot] = k
		pays[slot] = hjPayload(k)
	}
	var paySum, matches uint64
	s = uint64(hjProbeSeed)
	for i := 0; i < hjProbeN; i++ {
		s = lcg31(s)
		k := hjKey(s)
		for slot := k % hjSlots; keys[slot] != 0; slot = (slot + 1) % hjSlots {
			if keys[slot] == k {
				paySum += pays[slot]
				matches++
			}
		}
	}
	return paySum + matches*2654435761
}

func buildHashJoin() *isa.Program {
	var p prog
	p.f(".text 0x1000")
	p.label("main")
	p.f("li r9, 0x%x", uint64(hjTableBase))
	p.f("li r10, 0x%x", uint64(hjTableBase)+hjSlots*16)
	// Build phase.
	p.f("li r3, %d", hjBuildSeed)
	p.f("li r2, %d", hjBuildN)
	p.label("build_loop")
	p.lcgStep()
	p.f("andi r20, r3, 0x%x", uint64(hjKeySpace))
	p.f("addi r20, r20, 1") // key (nonzero)
	p.f("xori r21, r20, 0x15555")
	p.f("andi r22, r20, 0x%x", uint64(hjSlots-1))
	p.f("slli r22, r22, 4")
	p.f("add r22, r22, r9")
	p.label("ins_probe")
	p.f("ld r23, 0(r22)")
	p.f("beq r23, zero, ins_do")
	p.f("addi r22, r22, 16")
	p.f("bne r22, r10, ins_probe")
	p.f("mv r22, r9")
	p.f("j ins_probe")
	p.label("ins_do")
	p.f("sd r20, 0(r22)")
	p.f("sd r21, 8(r22)")
	p.f("addi r2, r2, -1")
	p.f("bne r2, zero, build_loop")
	// Probe phase.
	p.f("li r3, %d", hjProbeSeed)
	p.f("li r2, %d", hjProbeN)
	p.f("li r26, 0") // match count
	p.label("probe_loop")
	p.lcgStep()
	p.f("andi r20, r3, 0x%x", uint64(hjKeySpace))
	p.f("addi r20, r20, 1")
	p.f("andi r22, r20, 0x%x", uint64(hjSlots-1))
	p.f("slli r22, r22, 4")
	p.f("add r22, r22, r9")
	p.label("pr_scan")
	p.f("ld r23, 0(r22)")
	p.f("beq r23, zero, pr_next")
	p.f("bne r23, r20, pr_skip")
	p.f("ld r24, 8(r22)")
	p.f("add r28, r28, r24")
	p.f("addi r26, r26, 1")
	p.label("pr_skip")
	p.f("addi r22, r22, 16")
	p.f("bne r22, r10, pr_scan")
	p.f("mv r22, r9")
	p.f("j pr_scan")
	p.label("pr_next")
	p.f("addi r2, r2, -1")
	p.f("bne r2, zero, probe_loop")
	p.f("muli r26, r26, 2654435761")
	p.f("add r28, r28, r26")
	p.checkEpilogue(hjMirror())
	return p.assemble()
}
