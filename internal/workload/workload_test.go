package workload

import (
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

const testBudget = 300_000

// measured caches one measurement per workload for the whole test
// package (the assertions below all read the same run).
var measured = map[string]*Measurement{}

func measure(t *testing.T, name string) *Measurement {
	t.Helper()
	if m, ok := measured[name]; ok {
		return m
	}
	w, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Run(w, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	measured[name] = m
	return m
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 22 {
		t.Fatalf("registered %d workloads, want 22 (Table 2 + real group)", len(names))
	}
	want := []string{
		"099.go", "124.m88ksim", "126.gcc", "129.compress", "130.li",
		"132.ijpeg", "134.perl", "147.vortex",
		"101.tomcatv", "102.swim", "103.su2cor", "104.hydro2d", "107.mgrid",
		"110.applu", "125.turb3d", "141.apsi", "145.fpppp", "146.wave5",
		"synopsys",
		"bfs", "hashjoin", "gemm",
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("order[%d] = %s, want %s", i, names[i], n)
		}
	}
	if len(Spec()) != 18 {
		t.Errorf("Spec() returned %d workloads, want 18", len(Spec()))
	}
	if len(Real()) != 3 {
		t.Errorf("Real() returned %d workloads, want 3", len(Real()))
	}
}

// TestGroupOrdering: groups are strictly ordered in All() — the SPEC
// stand-ins, then synopsys, then the real-program kernels — so a new
// group can never reorder rows in existing figures or goldens.
func TestGroupOrdering(t *testing.T) {
	last := GroupSpec
	for _, w := range All() {
		if w.Group < last {
			t.Fatalf("%s (group %d) sorted after group %d", w.Name, w.Group, last)
		}
		last = w.Group
	}
	for _, w := range Spec() {
		if w.Group != GroupSpec {
			t.Errorf("Spec() leaked %s (group %d)", w.Name, w.Group)
		}
	}
	for _, w := range Real() {
		if w.Group != GroupReal {
			t.Errorf("Real() leaked %s (group %d)", w.Name, w.Group)
		}
		if w.SpecCal != 0 {
			t.Errorf("%s: real kernels have no paper SPEC calibration, got %v", w.Name, w.SpecCal)
		}
		if w.BaseCPI < 1 {
			t.Errorf("%s: explicit BaseCPI %v missing or implausible", w.Name, w.BaseCPI)
		}
	}
}

func TestByNameErrors(t *testing.T) {
	if _, err := ByName("nonesuch"); err == nil {
		t.Error("ByName accepted an unknown benchmark")
	}
}

func TestAllBuildAndRun(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			m := measure(t, w.Name)
			if m.Instr < testBudget/2 {
				t.Errorf("executed only %d instructions", m.Instr)
			}
			counts := m.Caches.RefCounts()
			lf := counts.LoadFrac()
			if lf < 0.005 || lf > 0.6 {
				t.Errorf("load fraction %.3f outside a plausible range", lf)
			}
			if w.Name != "synopsys" && w.BaseCPI < 1 {
				t.Errorf("BaseCPI %v not wired from paperref", w.BaseCPI)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Figure 7 shapes.
// ---------------------------------------------------------------------

// TestFig7TightLoopsFitICache: the paper lists applu, compress, swim,
// mgrid and ijpeg as fitting an 8 KB I-cache almost entirely.
func TestFig7TightLoopsFitICache(t *testing.T) {
	for _, name := range []string{"110.applu", "129.compress", "102.swim", "107.mgrid", "132.ijpeg"} {
		m := measure(t, name)
		if miss := m.Caches.PropIStats().Ifetch.Percent(); miss > 0.1 {
			t.Errorf("%s: proposed I-miss %.3f%%, want ~0", name, miss)
		}
	}
}

// TestFig7LongLinesBeatConventional: for the code-heavy benchmarks the
// proposed 8 KB cache beats a conventional cache of twice its size.
func TestFig7LongLinesBeatConventional(t *testing.T) {
	for _, name := range []string{"126.gcc", "134.perl", "147.vortex", "145.fpppp", "141.apsi"} {
		m := measure(t, name)
		prop := m.Caches.PropIStats().Ifetch.Percent()
		conv16 := m.Caches.ConvIStats(16).Ifetch.Percent()
		if prop >= conv16 {
			t.Errorf("%s: proposed %.3f%% not better than conventional 16KB %.3f%%",
				name, prop, conv16)
		}
	}
}

// TestFig7FppppFactor: fpppp's straight-line code gives the proposed
// cache a ~11x advantage over the same-size conventional cache.
func TestFig7FppppFactor(t *testing.T) {
	m := measure(t, "145.fpppp")
	prop := m.Caches.PropIStats().Ifetch.Percent()
	conv8 := m.Caches.ConvIStats(8).Ifetch.Percent()
	if prop <= 0 {
		t.Fatal("fpppp proposed I-miss is zero; kernel too small")
	}
	ratio := conv8 / prop
	if ratio < 8 || ratio > 25 {
		t.Errorf("fpppp advantage %.1fx, want ~11x (8-25 accepted)", ratio)
	}
}

// TestFig7Turb3dRegression: turb3d is the one application whose I-miss
// rate is *higher* on the proposed cache (loop/callee line conflict).
func TestFig7Turb3dRegression(t *testing.T) {
	m := measure(t, "125.turb3d")
	prop := m.Caches.PropIStats().Ifetch.Percent()
	conv8 := m.Caches.ConvIStats(8).Ifetch.Percent()
	if prop <= conv8 {
		t.Errorf("turb3d: proposed %.3f%% should exceed conventional %.3f%%", prop, conv8)
	}
	// And it should be the ONLY such benchmark.
	for _, w := range All() {
		if w.Name == "125.turb3d" {
			continue
		}
		mm := measure(t, w.Name)
		p := mm.Caches.PropIStats().Ifetch.Percent()
		c := mm.Caches.ConvIStats(8).Ifetch.Percent()
		if p > c+0.05 {
			t.Errorf("%s: unexpected proposed I-cache regression (%.3f%% vs %.3f%%)",
				w.Name, p, c)
		}
	}
}

// ---------------------------------------------------------------------
// Figure 8 shapes.
// ---------------------------------------------------------------------

// TestFig8LongLineWinners: mgrid and hydro2d benefit dramatically from
// the 512 B lines (paper: ~10x better than same-size conventional DM).
func TestFig8LongLineWinners(t *testing.T) {
	for _, name := range []string{"107.mgrid", "104.hydro2d"} {
		m := measure(t, name)
		prop := m.Caches.PropDStats().Data().Percent()
		conv := m.Caches.ConvDMStats(16).Data().Percent()
		if prop <= 0 {
			t.Fatalf("%s: zero miss rate, kernel degenerate", name)
		}
		if conv/prop < 5 {
			t.Errorf("%s: long-line advantage only %.1fx, want >= 5x", name, conv/prop)
		}
	}
}

// TestFig8ConflictVictims: tomcatv, swim, su2cor and wave5 suffer MORE
// conflict misses with long lines than a same-size conventional cache.
func TestFig8ConflictVictims(t *testing.T) {
	for _, name := range []string{"101.tomcatv", "102.swim", "103.su2cor", "146.wave5"} {
		m := measure(t, name)
		prop := m.Caches.PropDStats().Data().Percent()
		conv := m.Caches.ConvDMStats(16).Data().Percent()
		if prop <= conv {
			t.Errorf("%s: proposed %.2f%% should exceed conventional 16KB DM %.2f%%",
				name, prop, conv)
		}
	}
}

// TestFig8VictimRecovers: the victim cache absorbs those conflicts,
// bringing the miss rate to (or below) conventional 2-way levels.
func TestFig8VictimRecovers(t *testing.T) {
	for _, name := range []string{"101.tomcatv", "102.swim", "103.su2cor", "146.wave5"} {
		m := measure(t, name)
		prop := m.Caches.PropDStats().Data().Percent()
		vic := m.Caches.PropDVictimStats().Data().Percent()
		conv2w := m.Caches.Conv2WStats(16).Data().Percent()
		if vic > prop/3 {
			t.Errorf("%s: victim only improved %.2f%% -> %.2f%%, want >= 3x", name, prop, vic)
		}
		if vic > conv2w*1.3 {
			t.Errorf("%s: victim %.2f%% should approach 2-way conventional %.2f%%",
				name, vic, conv2w)
		}
	}
}

// TestFig8GoVictimSmall: 099.go's poor locality limits the victim
// cache to a modest benefit (paper: ~25% — contrast tomcatv's ~7x).
func TestFig8GoVictimSmall(t *testing.T) {
	m := measure(t, "099.go")
	prop := m.Caches.PropDStats().Data().Percent()
	vic := m.Caches.PropDVictimStats().Data().Percent()
	gain := (prop - vic) / prop
	if gain < 0.08 || gain > 0.45 {
		t.Errorf("go: victim gain %.0f%% outside the paper's ~25%% regime (%.2f%% -> %.2f%%)",
			100*gain, prop, vic)
	}
}

// TestFig8VictimNeverHurts: across the whole suite the victim cache
// never increases the miss rate.
func TestFig8VictimNeverHurts(t *testing.T) {
	for _, w := range All() {
		m := measure(t, w.Name)
		prop := m.Caches.PropDStats().Data().Events
		vic := m.Caches.PropDVictimStats().Data().Events
		if vic > prop {
			t.Errorf("%s: victim increased misses %d -> %d", w.Name, prop, vic)
		}
	}
}

// TestLiListsAreRealPointers: the li kernel must truly chase cdr
// pointers through simulated memory (a regression guard for the data
// segment builder).
func TestLiListsAreRealPointers(t *testing.T) {
	w, err := ByName("130.li")
	if err != nil {
		t.Fatal(err)
	}
	prog := w.Build()
	if len(prog.Data) == 0 {
		t.Fatal("li has no initialised heap")
	}
	cpu, err := vm.RunProgram(prog, trace.Discard, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[7] == 0 {
		t.Error("li accumulated nothing: cars were never loaded")
	}
}

// TestRatesProduceValidGSPNInputs: every workload's measured rates
// must pass cpumodel validation for all four system/victim variants.
func TestRatesProduceValidGSPNInputs(t *testing.T) {
	for _, w := range All() {
		m := measure(t, w.Name)
		for _, integrated := range []bool{true, false} {
			for _, victim := range []bool{true, false} {
				r := m.Rates(integrated, victim)
				if err := r.Validate(); err != nil {
					t.Errorf("%s integrated=%v victim=%v: %v", w.Name, integrated, victim, err)
				}
			}
		}
	}
}

func TestDescriptionsPresent(t *testing.T) {
	for _, w := range All() {
		if !strings.Contains(w.Description, " ") {
			t.Errorf("%s: missing description", w.Name)
		}
	}
}
