package workload

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vm"
)

// mirrors maps each real-program kernel to its Go-mirror checksum so
// the test can assert the architectural output independently of the
// kernel's own embedded self-check.
func mirrors() map[string]uint64 {
	off, edges := bfsGraph()
	return map[string]uint64{
		"gemm":     gemmMirror(),
		"bfs":      bfsMirror(off, edges),
		"hashjoin": hjMirror(),
	}
}

// TestRealKernelsSelfVerify runs every GroupReal kernel to completion
// (budget 0 = until halt) and asserts the program's own verdict (r27)
// and the raw checksum (r28) against the Go mirror.
func TestRealKernelsSelfVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel runs (~2.5M instructions each)")
	}
	want := mirrors()
	for _, w := range Real() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			cpu, err := vm.RunProgram(w.Build(), trace.Discard, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !cpu.Halted() {
				t.Fatal("kernel did not halt")
			}
			expected, ok := want[w.Name]
			if !ok {
				t.Fatalf("no mirror checksum registered for %s", w.Name)
			}
			if cpu.Regs[28] != expected {
				t.Errorf("checksum r28 = %#x, want %#x", cpu.Regs[28], expected)
			}
			if cpu.Regs[27] != 1 {
				t.Errorf("self-check flag r27 = %d, want 1", cpu.Regs[27])
			}
			// The kernels must be substantial enough to exceed the
			// default experiment budget, so figure runs never see the
			// self-check epilogue inside the measured window.
			if cpu.Instructions < DefaultBudget {
				t.Errorf("kernel retired %d instructions, want >= %d", cpu.Instructions, DefaultBudget)
			}
		})
	}
}

// TestRealKernelDataSegmentsCanonical: segments attached by the real
// kernels must be sorted, non-empty and non-adjacent — the shape the
// assembler itself produces — so disassembler round trips stay exact.
func TestRealKernelDataSegmentsCanonical(t *testing.T) {
	for _, w := range Real() {
		p := w.Build()
		for i, seg := range p.Data {
			if len(seg.Bytes) == 0 {
				t.Errorf("%s: empty data segment %d", w.Name, i)
			}
			if i == 0 {
				continue
			}
			prev := p.Data[i-1]
			if prevEnd := prev.Base + uint64(len(prev.Bytes)); seg.Base <= prevEnd {
				t.Errorf("%s: segment %d at %#x not strictly after previous end %#x",
					w.Name, i, seg.Base, prevEnd)
			}
		}
	}
}
