package workload

import (
	"testing"

	"repro/internal/core"
)

// TestFamilyMatchesPerPoint is the design-space equivalence anchor: one
// family pass must report, for every (banks, ways, victim) point, the
// exact statistics the per-point measurement path (one CacheSet per
// device, one trace pass per point) reports — including the
// victim-compound replays, whose eviction-order state cannot come from
// the histograms.
func TestFamilyMatchesPerPoint(t *testing.T) {
	points := []FamilyPoint{
		{Banks: 8, Ways: 1, VictimEntries: 0},
		{Banks: 8, Ways: 2, VictimEntries: 16},
		{Banks: 16, Ways: 2, VictimEntries: 0},
		{Banks: 16, Ways: 2, VictimEntries: 16},
		{Banks: 16, Ways: 4, VictimEntries: 8},
		{Banks: 24, Ways: 2, VictimEntries: 16}, // non-power-of-two banks
	}
	for _, name := range []string{"126.gcc", "101.tomcatv"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, col := range []int{256, 512} {
			fam, err := RunFamily(w, 120_000, NewFamilyCacheSet(col, points), Live{})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range points {
				dev := core.Proposed().WithOrganisation(p.Banks, col, p.VictimEntries, p.Ways)
				if err := dev.Validate(); err != nil {
					t.Fatalf("col=%d %+v: %v", col, p, err)
				}
				m, err := RunDevices(w, 120_000, dev, core.Reference())
				if err != nil {
					t.Fatal(err)
				}
				if a, b := fam.Set.RefCounts(), m.Caches.RefCounts(); a != b {
					t.Errorf("%s col=%d %+v counts: family %+v, point %+v", name, col, p, a, b)
				}
				if a, b := fam.Set.IStats(p.Banks), m.Caches.PropIStats(); a != b {
					t.Errorf("%s col=%d %+v I: family %+v, point %+v", name, col, p, a, b)
				}
				if a, b := fam.Set.DStats(p.Banks, p.Ways), m.Caches.PropDStats(); a != b {
					t.Errorf("%s col=%d %+v D: family %+v, point %+v", name, col, p, a, b)
				}
				if a, b := fam.Set.DVictimStats(p), m.Caches.PropDVictimStats(); a != b {
					t.Errorf("%s col=%d %+v D+victim: family %+v, point %+v", name, col, p, a, b)
				}
				if a, b := fam.Rates(p), m.Rates(true, p.VictimEntries > 0); a != b {
					t.Errorf("%s col=%d %+v rates: family %+v, point %+v", name, col, p, a, b)
				}
				if fam.Instr != m.Instr {
					t.Errorf("%s col=%d %+v instr: family %d, point %d", name, col, p, fam.Instr, m.Instr)
				}
			}
		}
	}
}

// TestFamilyCompoundsDeduplicated checks that duplicate victim points
// share one compound and victimless points cost none.
func TestFamilyCompoundsDeduplicated(t *testing.T) {
	f := NewFamilyCacheSet(512, []FamilyPoint{
		{Banks: 16, Ways: 2, VictimEntries: 16},
		{Banks: 16, Ways: 2, VictimEntries: 16},
		{Banks: 16, Ways: 2, VictimEntries: 0},
		{Banks: 32, Ways: 2, VictimEntries: 16},
	})
	if got := f.Compounds(); got != 2 {
		t.Errorf("compounds = %d, want 2", got)
	}
	if got := f.Passes(); got != 1 {
		t.Errorf("passes = %d, want 1", got)
	}
}
