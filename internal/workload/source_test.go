package workload

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/tracestore"
)

// refCollector gathers every reference delivered to it, whatever the
// batch granularity upstream.
type refCollector struct{ refs []trace.Ref }

func (c *refCollector) Ref(r trace.Ref) { c.refs = append(c.refs, r) }

func (c *refCollector) counts() trace.Counts {
	var n trace.Counts
	for _, r := range c.refs {
		n.Ref(r)
	}
	return n
}

// TestRecordReplayEquivalence is the pipeline's fidelity contract: for
// every registered workload, the recorded-then-replayed reference
// stream is Ref-for-Ref identical to live generation, and the replayed
// instruction count matches the VM's. Everything downstream (cache
// models, GSPN rates, figures) therefore cannot tell the sources apart.
func TestRecordReplayEquivalence(t *testing.T) {
	const budget = 60_000
	store, err := tracestore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := Traced{Store: store, Seed: 1}
	for _, w := range All() {
		t.Run(w.Name, func(t *testing.T) {
			var live refCollector
			liveInstr, err := Live{}.Stream(w, budget, &live)
			if err != nil {
				t.Fatal(err)
			}
			var rec refCollector
			recInstr, err := src.Stream(w, budget, &rec) // miss: records
			if err != nil {
				t.Fatal(err)
			}
			var rep refCollector
			repInstr, err := src.Stream(w, budget, &rep) // hit: replays
			if err != nil {
				t.Fatal(err)
			}
			if liveInstr != recInstr || liveInstr != repInstr {
				t.Fatalf("instructions: live %d, record %d, replay %d",
					liveInstr, recInstr, repInstr)
			}
			if lc, pc := live.counts(), rep.counts(); lc != pc {
				t.Fatalf("counts: live %+v, replay %+v", lc, pc)
			}
			if len(live.refs) != len(rep.refs) {
				t.Fatalf("refs: live %d, replay %d", len(live.refs), len(rep.refs))
			}
			for i := range live.refs {
				if live.refs[i] != rec.refs[i] || live.refs[i] != rep.refs[i] {
					t.Fatalf("ref %d: live %+v, record %+v, replay %+v",
						i, live.refs[i], rec.refs[i], rep.refs[i])
				}
			}
		})
	}
}

// TestTracedInstrFromIfetches pins the invariant the replay path leans
// on: the VM emits exactly one ifetch per retired instruction, so a
// stream's ifetch tally is its instruction count.
func TestTracedInstrFromIfetches(t *testing.T) {
	w, err := ByName("126.gcc")
	if err != nil {
		t.Fatal(err)
	}
	var c refCollector
	instr, err := Live{}.Stream(w, 50_000, &c)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.counts().Ifetches; got != instr {
		t.Fatalf("ifetches %d != instructions %d", got, instr)
	}
}
