package workload

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/cache"
	"repro/internal/cpumodel"
	"repro/internal/stackdist"
	"repro/internal/trace"
)

// FamilyPoint is one integrated-device geometry inside a column-size
// family: the three axes that vary at a fixed column (= cache line)
// size. Banks is simultaneously the DRAM bank count and the set count
// of both column-buffer caches (I-cache: banks × column direct-mapped;
// D-cache: ways × banks × column); VictimEntries of 0 means no victim
// cache.
type FamilyPoint struct {
	Banks, Ways, VictimEntries int
}

// FamilyCacheSet measures every point of one column-size family in a
// single pass over a reference stream. The column size is the profiler
// line size, so all bank counts collapse into set-count trackers of one
// stack-distance profiler per stream (inclusion over associativity
// answers every ways value sharing a bank count), and N = |banks| ×
// |ways| × |victims| design points cost one trace pass instead of N.
//
// Victim-bearing points are the exception: a victim cache's contents
// depend on main-cache eviction order and sub-block recency (and a
// victim hit deliberately does not refill the main cache, so the main
// cache diverges from pure LRU), which no histogram captures. Each
// distinct (banks, ways, victim) combination therefore keeps a
// cache.WithVictim compound replayed in the same pass — fed every data
// reference, exactly as CacheSet feeds its single victim compound — so
// family results stay bit-identical to the per-point path. The victim
// axis multiplies in-pass replay work, not trace passes.
//
// Runs of references to the same column line collapse into pending
// repeat counters flushed on line change: per the stack-distance
// inclusion argument a same-line re-reference is an MRU hit in every
// tracker with no LRU movement, so batching changes no histogram.
type FamilyCacheSet struct {
	column   uint64
	colShift uint
	counts   trace.Counts

	iprof *stackdist.SetProfiler // ifetch stream: {sets: banks, ways: 1}
	dprof *stackdist.SetProfiler // data stream: {sets: banks, ways}

	vics   []*cache.WithVictim
	vicIdx map[FamilyPoint]int

	lastILine uint64 // previous ifetch column line + 1 (0 = none)
	lastDLine uint64 // previous load/store column line + 1 (0 = none)
	iPend     int64
	dPend     [3]int64 // pending data repeats indexed by trace.Kind
}

// NewFamilyCacheSet builds the single-pass measurement state for one
// column size covering every given point. Points must describe valid
// device geometries (positive banks/ways; VictimEntries evenly dividing
// columnBytes) — the design-space search filters through
// core.Device.Validate before building families.
func NewFamilyCacheSet(columnBytes int, points []FamilyPoint) *FamilyCacheSet {
	col := uint64(columnBytes)
	if col == 0 || col&(col-1) != 0 {
		panic(fmt.Sprintf("workload: column size %d not a power of two", columnBytes))
	}
	f := &FamilyCacheSet{
		column:   col,
		colShift: uint(bits.TrailingZeros64(col)),
		vicIdx:   make(map[FamilyPoint]int),
	}

	var ig, dg []stackdist.Geometry
	seenBanks := map[int]bool{}
	for _, p := range points {
		if p.Banks < 1 || p.Ways < 1 {
			panic(fmt.Sprintf("workload: invalid family point %+v", p))
		}
		if !seenBanks[p.Banks] {
			seenBanks[p.Banks] = true
			ig = append(ig, stackdist.Geometry{Sets: uint64(p.Banks), Ways: 1})
		}
		dg = append(dg, stackdist.Geometry{Sets: uint64(p.Banks), Ways: p.Ways})
	}
	f.iprof = stackdist.NewSetProfiler(col, ig)
	f.dprof = stackdist.NewSetProfiler(col, dg)

	// In-pass victim compounds, deduplicated and built in sorted order
	// so the construction (and any iteration over f.vics) is
	// deterministic regardless of the caller's point order.
	var vicPts []FamilyPoint
	for _, p := range points {
		if p.VictimEntries <= 0 {
			continue
		}
		key := FamilyPoint{Banks: p.Banks, Ways: p.Ways, VictimEntries: p.VictimEntries}
		if _, ok := f.vicIdx[key]; ok {
			continue
		}
		f.vicIdx[key] = -1 // placeholder until sorted
		vicPts = append(vicPts, key)
	}
	sort.Slice(vicPts, func(i, j int) bool {
		a, b := vicPts[i], vicPts[j]
		if a.Banks != b.Banks {
			return a.Banks < b.Banks
		}
		if a.Ways != b.Ways {
			return a.Ways < b.Ways
		}
		return a.VictimEntries < b.VictimEntries
	})
	for _, p := range vicPts {
		if columnBytes%p.VictimEntries != 0 {
			panic(fmt.Sprintf("workload: victim entries %d do not divide column %d", p.VictimEntries, columnBytes))
		}
		f.vicIdx[p] = len(f.vics)
		f.vics = append(f.vics, cache.NewWithVictim(
			cache.NewSetAssoc("family D + victim main",
				uint64(p.Ways*p.Banks*columnBytes), col, p.Ways),
			cache.NewVictim(p.VictimEntries, col/uint64(p.VictimEntries))))
	}
	return f
}

// Passes reports how many trace passes this measurement costs: always
// exactly one, however many points the family answers.
func (f *FamilyCacheSet) Passes() int { return 1 }

// Compounds reports the number of in-pass victim replays.
func (f *FamilyCacheSet) Compounds() int { return len(f.vics) }

func (f *FamilyCacheSet) flushI() {
	if f.iPend > 0 {
		f.iprof.AddRepeats(trace.Ifetch, f.iPend)
		f.iPend = 0
	}
}

func (f *FamilyCacheSet) flushD() {
	for k := range f.dPend {
		if f.dPend[k] > 0 {
			f.dprof.AddRepeats(trace.Kind(k), f.dPend[k])
			f.dPend[k] = 0
		}
	}
}

// Ref implements trace.Sink.
func (f *FamilyCacheSet) Ref(r trace.Ref) {
	line := r.Addr >> f.colShift
	if r.Kind == trace.Ifetch {
		f.counts.Ifetches++
		if line+1 == f.lastILine {
			f.iPend++
			return
		}
		f.flushI()
		f.lastILine = line + 1
		f.iprof.Access(r.Addr, trace.Ifetch)
		return
	}
	f.counts.Ref(r)
	// Victim compounds replay every data reference (matching CacheSet,
	// which feeds its compound before any run-collapse check): a repeat
	// after a victim hit is not a main-cache MRU hit, so compounds
	// cannot share the run collapse.
	for _, v := range f.vics {
		v.Access(r.Addr, r.Kind)
	}
	if line+1 == f.lastDLine {
		f.dPend[r.Kind]++
		return
	}
	f.flushD()
	f.lastDLine = line + 1
	f.dprof.Access(r.Addr, r.Kind)
}

// Refs implements trace.BatchSink.
func (f *FamilyCacheSet) Refs(rs []trace.Ref) {
	for i := range rs {
		f.Ref(rs[i])
	}
}

// RefCounts tallies the reference stream by kind.
func (f *FamilyCacheSet) RefCounts() trace.Counts { return f.counts }

// IStats returns the direct-mapped column-buffer I-cache statistics for
// the given bank count.
func (f *FamilyCacheSet) IStats(banks int) cache.Stats {
	f.flushI()
	return setStats(f.iprof, uint64(banks), 1)
}

// DStats returns the victimless column-buffer D-cache statistics for
// the given bank count and associativity.
func (f *FamilyCacheSet) DStats(banks, ways int) cache.Stats {
	f.flushD()
	return setStats(f.dprof, uint64(banks), ways)
}

// DVictimStats returns the D-cache-plus-victim statistics for a
// victim-bearing point; for VictimEntries == 0 it is DStats.
func (f *FamilyCacheSet) DVictimStats(p FamilyPoint) cache.Stats {
	if p.VictimEntries <= 0 {
		return f.DStats(p.Banks, p.Ways)
	}
	i, ok := f.vicIdx[p]
	if !ok {
		panic(fmt.Sprintf("workload: family point %+v has no victim compound", p))
	}
	return f.vics[i].Stats()
}

// FamilyMeasurement is the distilled result of one (column family,
// workload) pass: every point of the family is answerable from it.
type FamilyMeasurement struct {
	Workload Workload
	Set      *FamilyCacheSet
	Instr    int64
}

// RunFamily streams the workload once through the family measurement
// state. It is the family counterpart of RunDevicesFrom: one call, one
// trace pass, every design point of the family answered.
func RunFamily(w Workload, budget int64, f *FamilyCacheSet, src Source) (*FamilyMeasurement, error) {
	instr, err := src.Stream(w, budget, f)
	if err != nil {
		return nil, err
	}
	return &FamilyMeasurement{Workload: w, Set: f, Instr: instr}, nil
}

// Rates converts one family point's statistics into integrated-system
// GSPN inputs, matching Measurement.Rates(true, p.VictimEntries > 0) on
// the corresponding device bit for bit.
func (m *FamilyMeasurement) Rates(p FamilyPoint) cpumodel.AppRates {
	counts := m.Set.RefCounts()
	app := cpumodel.AppRates{
		Name:      m.Workload.Name,
		BaseCPI:   m.Workload.BaseCPI,
		LoadFrac:  counts.LoadFrac(),
		StoreFrac: counts.StoreFrac(),
	}
	if app.BaseCPI < 1 {
		app.BaseCPI = 1
	}
	app.IHit = 1 - m.Set.IStats(p.Banks).Ifetch.Rate()
	d := m.Set.DStats(p.Banks, p.Ways)
	if p.VictimEntries > 0 {
		d = m.Set.DVictimStats(p)
	}
	app.LoadHit = 1 - d.Load.Rate()
	app.StoreHit = 1 - d.Store.Rate()
	return app
}
