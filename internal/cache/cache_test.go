package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestDirectMappedBasics(t *testing.T) {
	c := NewDirectMapped("t", 1024, 32) // 32 sets
	if c.Access(0, trace.Load) {
		t.Error("cold access hit")
	}
	if !c.Access(0, trace.Load) {
		t.Error("second access missed")
	}
	if !c.Access(31, trace.Load) {
		t.Error("same-line access missed")
	}
	if c.Access(32, trace.Load) {
		t.Error("next-line cold access hit")
	}
	// 1024 bytes = 32 lines; address 0 and 1024 conflict.
	if c.Access(1024, trace.Load) {
		t.Error("aliasing address hit")
	}
	if c.Access(0, trace.Load) {
		t.Error("evicted line still hit")
	}
}

func TestSetAssocLRU(t *testing.T) {
	// One set, 2 ways, 32 B lines => size 64.
	c := NewSetAssoc("t", 64, 32, 2)
	a, b, cc := uint64(0), uint64(64), uint64(128)
	c.Access(a, trace.Load) // miss, a in
	c.Access(b, trace.Load) // miss, b in
	if !c.Access(a, trace.Load) {
		t.Fatal("a should hit (2 ways)")
	}
	c.Access(cc, trace.Load) // evicts LRU = b
	if c.Access(b, trace.Load) {
		t.Error("b should have been evicted (LRU)")
	}
	// That access reloaded b, evicting a's set-mate... verify a gone:
	// order now: b, c. a was evicted when b reloaded.
	if c.Access(a, trace.Load) {
		t.Error("a should have been evicted")
	}
}

func TestStatsPerKind(t *testing.T) {
	c := NewDirectMapped("t", 1024, 32)
	c.Access(0, trace.Load)     // miss
	c.Access(0, trace.Load)     // hit
	c.Access(64, trace.Store)   // miss
	c.Access(64, trace.Store)   // hit
	c.Access(128, trace.Ifetch) // miss
	s := c.Stats()
	if s.Load.Events != 1 || s.Load.Total != 2 {
		t.Errorf("load stats = %+v", s.Load)
	}
	if s.Store.Events != 1 || s.Store.Total != 2 {
		t.Errorf("store stats = %+v", s.Store)
	}
	if s.Ifetch.Events != 1 || s.Ifetch.Total != 1 {
		t.Errorf("ifetch stats = %+v", s.Ifetch)
	}
	if s.Data().Total != 4 || s.All().Total != 5 {
		t.Errorf("aggregates wrong: %+v", s)
	}
}

func TestInvalidate(t *testing.T) {
	c := NewDirectMapped("t", 1024, 32)
	c.Access(0, trace.Load)
	if !c.Invalidate(16) {
		t.Error("Invalidate missed a resident line")
	}
	if c.Access(0, trace.Load) {
		t.Error("invalidated line hit")
	}
	if c.Invalidate(9999) {
		t.Error("Invalidate hit a non-resident line")
	}
}

func TestProposedGeometries(t *testing.T) {
	ic := ProposedICache()
	if ic.Sets() != 16 || ic.Ways() != 1 || ic.LineSize() != 512 {
		t.Errorf("I-cache geometry: %d sets, %d ways, %d B lines",
			ic.Sets(), ic.Ways(), ic.LineSize())
	}
	dc := ProposedDCache()
	if dc.Sets() != 16 || dc.Ways() != 2 || dc.LineSize() != 512 {
		t.Errorf("D-cache geometry: %d sets, %d ways, %d B lines",
			dc.Sets(), dc.Ways(), dc.LineSize())
	}
	v := ProposedVictim()
	if len(v.entries) != 16 || v.lineSize != 32 {
		t.Errorf("victim geometry: %d entries, %d B", len(v.entries), v.lineSize)
	}
}

// TestVictimAbsorbsConflicts reproduces Section 5.4's core mechanism:
// three sequential streams aliasing into one 2-way set thrash without
// the victim cache; with it, only 32 B-block boundary crossings miss.
func TestVictimAbsorbsConflicts(t *testing.T) {
	plain := ProposedDCache()
	withV := Proposed()
	// Three streams, 8 KiB apart: same set in a 16-set 512 B cache.
	bases := []uint64{0x100000, 0x102000, 0x104000}
	run := func(c Cache) float64 {
		for i := uint64(0); i < 4096; i += 8 {
			for _, b := range bases {
				c.Access(b+i, trace.Load)
			}
		}
		return c.Stats().Data().Rate()
	}
	plainRate := run(plain)
	victimRate := run(withV)
	if plainRate < 0.9 {
		t.Errorf("plain column-buffer cache should thrash: miss rate %.3f", plainRate)
	}
	if victimRate > plainRate/3 {
		t.Errorf("victim cache should absorb conflicts: %.3f vs %.3f", victimRate, plainRate)
	}
}

// TestVictimNoMainReload verifies the paper's explicit rule: a victim
// hit does not reload the main cache (the size disparity forbids it).
func TestVictimNoMainReload(t *testing.T) {
	w := Proposed()
	a := uint64(0x100000)
	b := uint64(0x102000)   // same set
	c := uint64(0x104000)   // same set
	w.Access(a, trace.Load) // a in main
	w.Access(b, trace.Load) // b in main
	w.Access(c, trace.Load) // c evicts LRU a; a's block -> victim
	if w.Main.Probe(a) {
		t.Fatal("a should be out of the main cache")
	}
	if !w.Access(a, trace.Load) {
		t.Fatal("a should hit in the victim cache")
	}
	if w.Main.Probe(a) {
		t.Error("victim hit must not reload the main cache")
	}
}

// TestVictimFillsFromEvictedMRUBlock: the victim receives the
// most-recently-accessed 32 B sub-block of the evicted line.
func TestVictimFillsFromEvictedMRUBlock(t *testing.T) {
	w := Proposed()
	a := uint64(0x100000)
	w.Access(a+200, trace.Load) // a's line in main; last access at offset 200
	w.Access(a+100, trace.Load) // ...now at offset 100
	// Evict a twice over (2 ways).
	w.Access(0x102000, trace.Load)
	w.Access(0x104000, trace.Load)
	// Offset 100's 32 B block (96..127) should be in the victim cache.
	if !w.Vic.Lookup(a + 96) {
		t.Error("MRU sub-block of evicted line not in victim cache")
	}
	if w.Vic.Lookup(a + 192) {
		t.Error("non-MRU sub-block should not be in victim cache")
	}
}

// TestMissRateMonotoneInSize (property): for a random access sequence,
// a larger direct-mapped cache never has more misses (same line size —
// this holds for direct-mapped caches with power-of-two sizes under
// LRU since sets refine).
func TestMissRateMonotoneInSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		small := NewDirectMapped("s", 4<<10, 32)
		big := NewDirectMapped("b", 16<<10, 32)
		for i := 0; i < 4000; i++ {
			addr := uint64(rng.Intn(1 << 16))
			small.Access(addr, trace.Load)
			big.Access(addr, trace.Load)
		}
		return big.Stats().Data().Events <= small.Stats().Data().Events
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestHigherAssocNoWorse (property): LRU caches of equal size obey
// inclusion-like behaviour under associativity increase for most
// workloads; we assert it statistically for random streams (allowing
// tiny violations is unnecessary: for random streams full LRU
// associativity strictly dominates in expectation, and these seeds are
// fixed by quick.Check's deterministic generator).
func TestHigherAssocNoWorse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dm := NewDirectMapped("dm", 2<<10, 32)
		fa := NewSetAssoc("fa", 2<<10, 32, 64) // fully associative
		for i := 0; i < 4000; i++ {
			// Loop-ish pattern with noise: LRU-friendly.
			addr := uint64(i%3000) * 32
			if rng.Intn(8) == 0 {
				addr = uint64(rng.Intn(1 << 14))
			}
			dm.Access(addr, trace.Load)
			fa.Access(addr, trace.Load)
		}
		// Full associativity should not be dramatically worse: allow
		// sequential-scan pathologies a 10% margin.
		return float64(fa.Stats().Data().Events) <= 1.1*float64(dm.Stats().Data().Events)+10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestVictimNeverIncreasesMisses (property): adding the victim cache
// can only convert misses into hits, never the reverse (the main cache
// state transitions are identical in both configurations).
func TestVictimNeverIncreasesMisses(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		plain := ProposedDCache()
		withV := Proposed()
		for i := 0; i < 6000; i++ {
			var addr uint64
			switch rng.Intn(3) {
			case 0: // sequential
				addr = uint64(i) * 8
			case 1: // strided across sets
				addr = uint64(i%97) * 520
			default: // random
				addr = uint64(rng.Intn(1 << 18))
			}
			kind := trace.Load
			if rng.Intn(4) == 0 {
				kind = trace.Store
			}
			plain.Access(addr, kind)
			withV.Access(addr, kind)
		}
		return withV.Stats().Data().Events <= plain.Stats().Data().Events
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFlushClearsContents(t *testing.T) {
	c := ProposedDCache()
	c.Access(1234, trace.Load)
	c.Flush()
	if c.Probe(1234) {
		t.Error("line survived Flush")
	}
	if c.Stats().Data().Total != 1 {
		t.Error("Flush should retain statistics")
	}
}

func TestEvictionCallback(t *testing.T) {
	c := NewDirectMapped("t", 64, 32) // 2 sets
	var evictions []Eviction
	c.OnEvict = func(e Eviction) { evictions = append(evictions, e) }
	c.Access(0, trace.Store) // fill, dirty
	c.Access(64, trace.Load) // evicts line 0
	if len(evictions) != 1 {
		t.Fatalf("got %d evictions, want 1", len(evictions))
	}
	if evictions[0].Addr != 0 || !evictions[0].Dirty {
		t.Errorf("eviction = %+v", evictions[0])
	}
}

func TestVictimInvalidate(t *testing.T) {
	v := ProposedVictim()
	v.Insert(0x1000)
	if !v.Invalidate(0x1010) { // same 32 B block
		t.Error("Invalidate missed resident block")
	}
	if v.Lookup(0x1000) {
		t.Error("block survived Invalidate")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSetAssoc("bad", 100, 32, 2) }, // not divisible
		func() { NewSetAssoc("bad", 0, 32, 1) },
		func() { NewVictim(0, 32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for invalid geometry")
				}
			}()
			f()
		}()
	}
}

func TestSinkAdapter(t *testing.T) {
	c := NewDirectMapped("t", 1024, 32)
	s := Sink{C: c}
	s.Ref(trace.Ref{Kind: trace.Load, Addr: 0, Size: 8})
	s.Ref(trace.Ref{Kind: trace.Load, Addr: 0, Size: 8})
	if c.Stats().Load.Total != 2 || c.Stats().Load.Events != 1 {
		t.Errorf("sink adapter stats: %+v", c.Stats().Load)
	}
}

func TestStreamBufferSequentialStream(t *testing.T) {
	sb := NewStreamBuffer(4, 4)
	// Miss at block 0 allocates a stream; blocks 1,2,3... then hit.
	if sb.Lookup(0) {
		t.Fatal("cold lookup hit")
	}
	for b := uint64(1); b < 10; b++ {
		if !sb.Lookup(b * VictimLineSize) {
			t.Fatalf("sequential block %d missed the stream buffer", b)
		}
	}
	if sb.Hits != 9 {
		t.Errorf("hits = %d, want 9", sb.Hits)
	}
}

func TestStreamBufferMultipleStreams(t *testing.T) {
	sb := NewStreamBuffer(2, 4)
	sb.Lookup(0)       // stream A
	sb.Lookup(1 << 20) // stream B
	if !sb.Lookup(VictimLineSize) {
		t.Error("stream A lost after allocating B")
	}
	if !sb.Lookup(1<<20 + VictimLineSize) {
		t.Error("stream B lost")
	}
	// A third allocation evicts the LRU stream (A, B was just used).
	sb.Lookup(2 << 20)
	if sb.Lookup(2*VictimLineSize) && sb.Hits > 3 {
		t.Error("evicted stream still hitting")
	}
}

// TestVictimBeatsStreamOnConflicts reproduces the design rationale:
// on the 3-colliding-streams pattern (the tomcatv mechanism), the
// victim cache absorbs conflicts that stream buffers cannot, because
// the conflicting re-references are to *evicted* blocks, not to the
// next sequential ones.
func TestVictimBeatsStreamOnConflicts(t *testing.T) {
	vic := Proposed()
	str := NewWithStream(ProposedDCache(), NewStreamBuffer(4, 4))
	bases := []uint64{0x100000, 0x102000, 0x104000} // same proposed set
	run := func(c Cache) float64 {
		for i := uint64(0); i < 4096; i += 8 {
			for _, b := range bases {
				c.Access(b+i, trace.Load)
			}
		}
		return c.Stats().Data().Rate()
	}
	vicRate := run(vic)
	strRate := run(str)
	if vicRate >= strRate {
		t.Errorf("victim (%.3f) should beat stream buffers (%.3f) on conflicts",
			vicRate, strRate)
	}
}

func TestStreamBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewStreamBuffer(0, 4)
}

// TestStatsCopySemantics is the regression test for the Data()/All()
// value-copy contract: the returned counters are independent copies, so
// accumulating into them must never corrupt the underlying Stats. Every
// call site in the repo relies on this when it chains .Percent()/.Rate()
// off the result or folds several caches' counters together.
func TestStatsCopySemantics(t *testing.T) {
	c := NewDirectMapped("t", 1024, 32)
	c.Access(0, trace.Load)
	c.Access(0, trace.Store)
	c.Access(4096, trace.Ifetch)
	before := c.Stats()

	d := c.Stats().Data()
	d.Events += 100
	d.Total += 100
	a := c.Stats().All()
	a.Add(d)

	if got := c.Stats(); got != before {
		t.Errorf("mutating Data()/All() results changed Stats: %+v -> %+v", before, got)
	}
	if got := c.Stats().Data(); got.Total != 2 {
		t.Errorf("Data total = %d, want 2", got.Total)
	}
	if got := c.Stats().All(); got.Total != 3 {
		t.Errorf("All total = %d, want 3", got.Total)
	}
}

// TestMaskModuloEquivalence pins the precomputed shift/mask index path
// against the general divide/modulo path: a power-of-two geometry and a
// non-power-of-two geometry must both match a brute-force reference
// decomposition on every access.
func TestMaskModuloEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, tc := range []struct {
		sets uint64
		ways int
	}{
		{16, 2},  // power-of-two sets: mask path
		{12, 2},  // non-power-of-two sets: modulo path
		{256, 1}, // DM mask path
		{100, 4}, // non-power-of-two, wider
	} {
		fast := NewSetAssoc("fast", tc.sets*uint64(tc.ways)*32, 32, tc.ways)
		if fast.setPow2 != (tc.sets&(tc.sets-1) == 0) {
			t.Fatalf("sets=%d: setPow2 = %v", tc.sets, fast.setPow2)
		}
		for i := 0; i < 50_000; i++ {
			addr := uint64(rng.Intn(1 << 18))
			lineAddr, set, sub := fast.locate(addr)
			if want := addr / 32; lineAddr != want {
				t.Fatalf("sets=%d addr=%#x: lineAddr %d, want %d", tc.sets, addr, lineAddr, want)
			}
			if want := uint32(addr % 32); sub != want {
				t.Fatalf("sets=%d addr=%#x: sub %d, want %d", tc.sets, addr, sub, want)
			}
			if want := &fast.lines[(addr/32)%tc.sets][0]; &set[0] != want {
				t.Fatalf("sets=%d addr=%#x: wrong set selected", tc.sets, addr)
			}
		}
	}
}
