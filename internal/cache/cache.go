// Package cache implements the cache organisations evaluated in
// Sections 5.2–5.4 of the paper:
//
//   - conventional direct-mapped and N-way set-associative caches with
//     32-byte lines (the comparison points in Figures 7 and 8),
//   - the proposed column-buffer caches: the 8 KB direct-mapped
//     instruction cache (16 × 512 B column buffers) and the 16 KB 2-way
//     data cache (16 banks × 2 × 512 B column buffers),
//   - the 512 B victim cache (16 × 32 B lines, fully associative, LRU)
//     that augments the column-buffer data cache.
//
// All caches are trace-driven: Access records one reference and reports
// hit or miss, maintaining exact LRU state. Miss statistics are kept
// separately for instruction fetches, loads, and stores, because
// Figure 8 plots the load and store miss components separately.
package cache

import (
	"fmt"
	"math/bits"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Stats holds per-reference-kind hit/miss counters. The Counter's
// Events field counts misses; Total counts accesses.
type Stats struct {
	Ifetch stats.Counter
	Load   stats.Counter
	Store  stats.Counter
}

// Data returns the combined load+store counter. The result is a fresh
// value derived from copies of the per-kind counters: mutating it (e.g.
// via Add) never writes back into the Stats it came from.
func (s Stats) Data() stats.Counter {
	c := s.Load
	c.Add(s.Store)
	return c
}

// All returns the combined counter over every reference kind. Like
// Data, the result is an independent copy; callers may accumulate into
// it freely.
func (s Stats) All() stats.Counter {
	c := s.Data()
	c.Add(s.Ifetch)
	return c
}

func (s *Stats) record(kind trace.Kind, miss bool) {
	var c *stats.Counter
	switch kind {
	case trace.Ifetch:
		c = &s.Ifetch
	case trace.Load:
		c = &s.Load
	default:
		c = &s.Store
	}
	c.Total++
	if miss {
		c.Events++
	}
}

// Cache is the common interface of all cache models.
type Cache interface {
	// Access simulates one reference and reports whether it hit.
	Access(addr uint64, kind trace.Kind) bool
	// Stats returns accumulated hit/miss statistics.
	Stats() Stats
	// Name identifies the configuration, e.g. "16KB 2-way 32B".
	Name() string
}

// Sink adapts a Cache to trace.Sink so it can be fed directly from the
// functional simulator.
type Sink struct{ C Cache }

// Ref implements trace.Sink.
func (s Sink) Ref(r trace.Ref) { s.C.Access(r.Addr, r.Kind) }

// Refs implements trace.BatchSink.
func (s Sink) Refs(rs []trace.Ref) {
	for i := range rs {
		s.C.Access(rs[i].Addr, rs[i].Kind)
	}
}

// line is one cache line's bookkeeping.
type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastSub uint32 // byte offset within line of the most recent access
}

// Eviction describes a line pushed out of a cache, delivered to an
// optional eviction handler (used to fill the victim cache).
type Eviction struct {
	Addr    uint64 // base address of the evicted line
	LastSub uint32 // offset of the most recently accessed sub-block byte
	Dirty   bool
}

// SetAssoc is an N-way set-associative cache with true-LRU replacement.
// ways == 1 gives a direct-mapped cache. It also implements the
// column-buffer caches: the proposed I-cache is SetAssoc{16 sets, 1 way,
// 512 B lines} and the proposed D-cache is SetAssoc{16 sets (= banks),
// 2 ways (= column buffers per bank), 512 B lines}: selecting the set by
// line-address modulo set-count is exactly the bank-interleaving of the
// integrated device.
type SetAssoc struct {
	name     string
	lineSize uint64
	sets     uint64
	ways     int
	lines    [][]line // [set][way], way order = MRU first
	stats    Stats

	// Precomputed index constants: when lineSize (resp. sets) is a power
	// of two, addr/lineSize and lineAddr%sets reduce to a shift and a
	// mask, which the hot lookup path uses instead of integer division.
	lineShift uint
	lineMask  uint64
	linePow2  bool
	setMask   uint64
	setPow2   bool

	// OnEvict, if set, is called when a valid line is replaced.
	OnEvict func(Eviction)
	// Fills counts line fills (== misses that allocate).
	Fills int64
}

// NewSetAssoc builds a cache of the given total size in bytes.
// size must be an exact multiple of lineSize*ways, and the resulting
// set count must be a power of two is NOT required (the paper's 16-bank
// device happens to be a power of two, but modulo mapping is general).
func NewSetAssoc(name string, size, lineSize uint64, ways int) *SetAssoc {
	if ways < 1 || lineSize == 0 || size == 0 {
		panic("cache: invalid geometry")
	}
	if size%(lineSize*uint64(ways)) != 0 {
		panic(fmt.Sprintf("cache %s: size %d not divisible by line %d × ways %d",
			name, size, lineSize, ways))
	}
	sets := size / (lineSize * uint64(ways))
	c := &SetAssoc{name: name, lineSize: lineSize, sets: sets, ways: ways}
	if lineSize&(lineSize-1) == 0 {
		c.linePow2 = true
		c.lineShift = uint(bits.TrailingZeros64(lineSize))
		c.lineMask = lineSize - 1
	}
	if sets&(sets-1) == 0 {
		c.setPow2 = true
		c.setMask = sets - 1
	}
	c.lines = make([][]line, sets)
	backing := make([]line, sets*uint64(ways))
	for i := range c.lines {
		c.lines[i] = backing[uint64(i)*uint64(ways) : (uint64(i)+1)*uint64(ways)]
	}
	return c
}

// NewDirectMapped builds a 1-way cache.
func NewDirectMapped(name string, size, lineSize uint64) *SetAssoc {
	return NewSetAssoc(name, size, lineSize, 1)
}

// ProposedICache is the paper's instruction cache: 16 column buffers of
// 512 B, direct-mapped (8 KB total).
func ProposedICache() *SetAssoc {
	return NewDirectMapped("proposed 8KB DM 512B", 8<<10, 512)
}

// ProposedDCache is the paper's data cache: 16 banks × 2 column buffers
// of 512 B, i.e. 16 KB 2-way set-associative with 512 B lines.
func ProposedDCache() *SetAssoc {
	return NewSetAssoc("proposed 16KB 2-way 512B", 16<<10, 512, 2)
}

// Name implements Cache.
func (c *SetAssoc) Name() string { return c.name }

// Stats implements Cache.
func (c *SetAssoc) Stats() Stats { return c.stats }

// LineSize returns the cache's line size in bytes.
func (c *SetAssoc) LineSize() uint64 { return c.lineSize }

// Sets returns the number of sets.
func (c *SetAssoc) Sets() uint64 { return c.sets }

// Ways returns the associativity.
func (c *SetAssoc) Ways() int { return c.ways }

// Access implements Cache.
func (c *SetAssoc) Access(addr uint64, kind trace.Kind) bool {
	hit := c.access(addr, kind == trace.Store)
	c.stats.record(kind, !hit)
	return hit
}

// locate maps addr to its line address, set, and sub-line offset using
// the precomputed shift/mask constants where the geometry permits.
func (c *SetAssoc) locate(addr uint64) (lineAddr uint64, set []line, sub uint32) {
	if c.linePow2 {
		lineAddr = addr >> c.lineShift
		sub = uint32(addr & c.lineMask)
	} else {
		lineAddr = addr / c.lineSize
		sub = uint32(addr % c.lineSize)
	}
	if c.setPow2 {
		set = c.lines[lineAddr&c.setMask]
	} else {
		set = c.lines[lineAddr%c.sets]
	}
	return
}

// Probe reports whether addr would hit, without changing any state.
func (c *SetAssoc) Probe(addr uint64) bool {
	lineAddr, set, _ := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			return true
		}
	}
	return false
}

func (c *SetAssoc) access(addr uint64, isStore bool) bool {
	if c.lookup(addr, isStore) {
		return true
	}
	c.fill(addr, isStore)
	return false
}

// lookup probes for addr, updating LRU and dirty state on a hit.
func (c *SetAssoc) lookup(addr uint64, isStore bool) bool {
	lineAddr, set, sub := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			l := set[i]
			l.lastSub = sub
			if isStore {
				l.dirty = true
			}
			copy(set[1:i+1], set[:i])
			set[0] = l
			return true
		}
	}
	return false
}

// fill allocates a line for addr at MRU, evicting the set's LRU line
// (reported to OnEvict when valid).
func (c *SetAssoc) fill(addr uint64, isStore bool) {
	lineAddr, set, sub := c.locate(addr)
	victim := set[len(set)-1]
	if victim.valid && c.OnEvict != nil {
		c.OnEvict(Eviction{
			Addr:    victim.tag * c.lineSize,
			LastSub: victim.lastSub,
			Dirty:   victim.dirty,
		})
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = line{tag: lineAddr, valid: true, dirty: isStore, lastSub: sub}
	c.Fills++
}

// Invalidate removes the line containing addr if present, returning
// whether it was present. Used by the coherence layer.
func (c *SetAssoc) Invalidate(addr uint64) bool {
	lineAddr, set, _ := c.locate(addr)
	for i := range set {
		if set[i].valid && set[i].tag == lineAddr {
			copy(set[i:], set[i+1:])
			set[len(set)-1] = line{}
			return true
		}
	}
	return false
}

// Flush invalidates the entire cache (statistics are retained).
func (c *SetAssoc) Flush() {
	for _, set := range c.lines {
		for i := range set {
			set[i] = line{}
		}
	}
}

// Victim is the paper's victim cache: a fully associative array of
// 32-byte lines with LRU replacement, totalling one column buffer
// (512 B = 16 entries) in the proposed design. Entries are filled from
// the most-recently-used 32 B sub-block of lines evicted from the main
// data cache; contents are never promoted back into the main cache
// (the 512 B/32 B size disparity forbids it).
type Victim struct {
	lineSize uint64
	entries  []line // MRU first
	stats    Stats
	// Hits counts victim-cache hits (i.e. main-cache misses absorbed).
	Hits int64
}

// VictimLineSize is the sub-block size of the proposed victim cache.
const VictimLineSize = 32

// NewVictim builds a victim cache of n lines of the given size.
func NewVictim(n int, lineSize uint64) *Victim {
	if n < 1 || lineSize == 0 {
		panic("cache: invalid victim geometry")
	}
	return &Victim{lineSize: lineSize, entries: make([]line, n)}
}

// ProposedVictim is the paper's 16 × 32 B victim cache.
func ProposedVictim() *Victim { return NewVictim(16, VictimLineSize) }

// Lookup probes the victim cache and updates LRU on hit.
func (v *Victim) Lookup(addr uint64) bool {
	lineAddr := addr / v.lineSize
	for i := range v.entries {
		if v.entries[i].valid && v.entries[i].tag == lineAddr {
			l := v.entries[i]
			copy(v.entries[1:i+1], v.entries[:i])
			v.entries[0] = l
			v.Hits++
			return true
		}
	}
	return false
}

// Insert places the 32 B block containing addr into the victim cache at
// MRU, evicting the LRU entry. If the block is already present it is
// simply made MRU.
func (v *Victim) Insert(addr uint64) {
	lineAddr := addr / v.lineSize
	for i := range v.entries {
		if v.entries[i].valid && v.entries[i].tag == lineAddr {
			l := v.entries[i]
			copy(v.entries[1:i+1], v.entries[:i])
			v.entries[0] = l
			return
		}
	}
	copy(v.entries[1:], v.entries[:len(v.entries)-1])
	v.entries[0] = line{tag: lineAddr, valid: true}
}

// Invalidate removes the 32 B block containing addr if present.
func (v *Victim) Invalidate(addr uint64) bool {
	lineAddr := addr / v.lineSize
	for i := range v.entries {
		if v.entries[i].valid && v.entries[i].tag == lineAddr {
			copy(v.entries[i:], v.entries[i+1:])
			v.entries[len(v.entries)-1] = line{}
			return true
		}
	}
	return false
}

// WithVictim combines a main data cache with a victim cache, exactly as
// in Section 5.4: the victim array is searched in parallel with the main
// cache; on a main-cache miss that hits in the victim cache the access
// is a hit (the main cache is *not* refilled); on a genuine miss the
// main cache fills and the evicted line's most-recently-accessed 32 B
// sub-block is copied into the victim cache (for free, hidden under the
// DRAM access).
type WithVictim struct {
	Main   *SetAssoc
	Vic    *Victim
	stats  Stats
	nameFn string
}

// NewWithVictim wires a main cache to a victim cache. The main cache's
// OnEvict hook is claimed by this wrapper.
func NewWithVictim(main *SetAssoc, vic *Victim) *WithVictim {
	w := &WithVictim{Main: main, Vic: vic,
		nameFn: main.Name() + " + victim"}
	main.OnEvict = func(e Eviction) {
		// Copy the most recently accessed 32 B sub-block of the
		// evicted line. LastSub is a byte offset; round to block.
		sub := e.Addr + uint64(e.LastSub)/vic.lineSize*vic.lineSize
		vic.Insert(sub)
	}
	return w
}

// Proposed returns the paper's complete data-cache organisation:
// 16 KB 2-way column-buffer cache plus 16×32 B victim cache.
func Proposed() *WithVictim {
	return NewWithVictim(ProposedDCache(), ProposedVictim())
}

// Name implements Cache.
func (w *WithVictim) Name() string { return w.nameFn }

// Stats implements Cache. The statistics count an access as a miss only
// if it missed both the main and victim caches.
func (w *WithVictim) Stats() Stats { return w.stats }

// Access implements Cache.
func (w *WithVictim) Access(addr uint64, kind trace.Kind) bool {
	isStore := kind == trace.Store
	// Both arrays are probed in parallel in hardware; a main hit takes
	// priority and leaves the victim LRU untouched.
	if w.Main.lookup(addr, isStore) {
		w.stats.record(kind, false)
		return true
	}
	// A victim hit services the access without a memory round trip and
	// — unlike a conventional victim cache — does NOT reload the main
	// cache: the 512 B / 32 B size disparity forbids promotion, so the
	// main cache state is left alone (Section 5.4).
	if w.Vic.Lookup(addr) {
		w.stats.record(kind, false)
		return true
	}
	// Genuine miss: the main cache reloads the full column buffer from
	// the DRAM array; the evicted line's most-recently-accessed 32 B
	// sub-block is copied into the victim cache via OnEvict during the
	// DRAM access window.
	w.Main.fill(addr, isStore)
	w.stats.record(kind, true)
	return false
}

// Invalidate removes addr's block from both structures (coherence).
func (w *WithVictim) Invalidate(addr uint64) bool {
	m := w.Main.Invalidate(addr)
	v := w.Vic.Invalidate(addr)
	return m || v
}
