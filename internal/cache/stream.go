package cache

import "repro/internal/trace"

// StreamBuffer is the *other* structure from Jouppi's 1990 paper (the
// paper's reference [18] proposes both victim caches and stream
// buffers). The proposed device adopts the victim cache; this
// implementation exists so the ablation experiments can show why: on
// the conflict-dominated workloads of Figure 8 the victim cache's
// eviction-driven fill beats sequential prefetch (the 512 B column
// fills already deliver the sequential prefetch a stream buffer would).
//
// Model: N buffers of Depth sequential 32 B blocks. A main-cache miss
// that hits the HEAD of a buffer is serviced from the buffer (1 cycle);
// the buffer then shifts and prefetches the next sequential block. A
// miss that hits no buffer reallocates the LRU buffer to prefetch the
// blocks after the missing one.
type StreamBuffer struct {
	blockSize uint64
	depth     int
	// heads[i] is the next expected block of buffer i; buffers are in
	// MRU order.
	heads []uint64
	valid []bool
	Hits  int64
}

// NewStreamBuffer builds n stream buffers of the given depth over
// 32-byte blocks.
func NewStreamBuffer(n, depth int) *StreamBuffer {
	if n < 1 || depth < 1 {
		panic("cache: invalid stream buffer geometry")
	}
	return &StreamBuffer{
		blockSize: VictimLineSize,
		depth:     depth,
		heads:     make([]uint64, n),
		valid:     make([]bool, n),
	}
}

// Lookup services a main-cache miss: a head hit consumes the block and
// prefetches the next; a miss reallocates the LRU buffer.
func (s *StreamBuffer) Lookup(addr uint64) bool {
	block := addr / s.blockSize
	for i := range s.heads {
		if s.valid[i] && s.heads[i] == block {
			// Consume and advance the stream; move buffer to MRU.
			head := block + 1
			copy(s.heads[1:i+1], s.heads[:i])
			copy(s.valid[1:i+1], s.valid[:i])
			s.heads[0] = head
			s.valid[0] = true
			s.Hits++
			return true
		}
	}
	// Allocate the LRU buffer to stream from the block after the miss.
	n := len(s.heads)
	copy(s.heads[1:], s.heads[:n-1])
	copy(s.valid[1:], s.valid[:n-1])
	s.heads[0] = block + 1
	s.valid[0] = true
	return false
}

// WithStream pairs a main cache with stream buffers, mirroring
// WithVictim so the two Jouppi structures are directly comparable.
type WithStream struct {
	Main   *SetAssoc
	Stream *StreamBuffer
	stats  Stats
	name   string
}

// NewWithStream wires a main cache to stream buffers.
func NewWithStream(main *SetAssoc, sb *StreamBuffer) *WithStream {
	return &WithStream{Main: main, Stream: sb, name: main.Name() + " + stream"}
}

// Name implements Cache.
func (w *WithStream) Name() string { return w.name }

// Stats implements Cache.
func (w *WithStream) Stats() Stats { return w.stats }

// Access implements Cache.
func (w *WithStream) Access(addr uint64, kind trace.Kind) bool {
	isStore := kind == trace.Store
	if w.Main.lookup(addr, isStore) {
		w.stats.record(kind, false)
		return true
	}
	if w.Stream.Lookup(addr) {
		// Stream-buffer hit: the block moves into the main cache
		// (unlike the victim cache, block and line sizes permit it in
		// Jouppi's design only for equal lines; with 512 B lines the
		// fill happens from DRAM anyway, so we model a main fill).
		w.Main.fill(addr, isStore)
		w.stats.record(kind, false)
		return true
	}
	w.Main.fill(addr, isStore)
	w.stats.record(kind, true)
	return false
}
