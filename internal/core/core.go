// Package core models the integrated processor/memory device itself —
// the chip of Figure 3 — as a structured, self-checking specification:
// the DRAM array and its bank organisation, the column-buffer caches
// carved out of it, the victim cache, the ECC/directory layout, the
// processor core, the protocol engines, and the serial-link fabric.
//
// Where the other internal packages simulate behaviour, this package
// captures the *architecture*: which numbers the paper commits to and
// how they must relate (16 banks × 3 column buffers; a 64-bit datapath
// at 200 MHz delivering 1.6 GB/s; an off-chip fabric sized to match;
// an area budget the core must fit). Validate() re-derives every
// relationship so that a configuration change that breaks the paper's
// balance is caught by the test suite.
package core

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/costmodel"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/interconnect"
)

// Device is the full integrated processing element specification.
type Device struct {
	Name string

	// ClockMHz is the processor and datapath clock.
	ClockMHz int
	// DRAM is the memory array organisation.
	DRAM dram.Params
	// ICacheBytes / ICacheLineBytes: the direct-mapped instruction
	// cache built from one column buffer per bank.
	ICacheBytes, ICacheLineBytes int
	// DCacheBytes / DCacheWays / DCacheLineBytes: the data cache built
	// from two column buffers per bank.
	DCacheBytes, DCacheWays, DCacheLineBytes int
	// VictimEntries × VictimLineBytes: the fully associative victim
	// cache (one column's worth).
	VictimEntries, VictimLineBytes int
	// DatapathBits is the width of each of the two core<->memory
	// datapaths (instruction and data).
	DatapathBits int
	// Links / LinkGbit: the serial interconnect.
	Links    int
	LinkGbit float64
	// ProtocolEngines is the number of coherence/communication engines.
	ProtocolEngines int
	// INCBytes is the default Inter-Node Cache capacity.
	INCBytes int
	// INCWays is the Inter-Node Cache associativity.
	INCWays int
	// CoherenceUnitBytes is the coherence unit (directory granularity).
	CoherenceUnitBytes int
	// ScoreboardRate is the fraction of memory accesses the scoreboard
	// can overlap with execution (Section 4.1's non-blocking loads).
	ScoreboardRate float64
	// Integrated distinguishes the merged-logic/DRAM device from a
	// conventional (reference) system built from discrete parts.
	Integrated bool
	// L2Bytes/L2Ways/L2LineBytes/L2Cycles describe the board-level
	// second-level cache of the reference system; all zero on the
	// integrated device, which has none.
	L2Bytes, L2Ways, L2LineBytes, L2Cycles int
	// Cost carries the Section 3 economics.
	Cost costmodel.Inputs
}

// Proposed returns the paper's device.
func Proposed() Device {
	return Device{
		Name:            "integrated 256Mbit PE",
		ClockMHz:        200,
		DRAM:            dram.Proposed(),
		ICacheBytes:     8 << 10,
		ICacheLineBytes: 512,
		DCacheBytes:     16 << 10,
		DCacheWays:      2,
		DCacheLineBytes: 512,
		VictimEntries:   16,
		VictimLineBytes: 32,
		DatapathBits:    64,
		Links:           4,
		LinkGbit:        2.5,
		ProtocolEngines: 2,
		INCBytes:        1 << 20,
		INCWays:         7,

		CoherenceUnitBytes: 32,
		ScoreboardRate:     1,
		Integrated:         true,
		Cost:               costmodel.Default(),
	}
}

// Reference returns the conventional system the paper compares against:
// a discrete processor with a 16 KB direct-mapped first-level cache, a
// 256 KB board-level second-level cache, and two-bank conventional DRAM
// (Section 5's reference CC-NUMA node and the GSPN reference config).
func Reference() Device {
	return Device{
		Name:            "reference discrete-part node",
		ClockMHz:        200,
		DRAM:            dram.Conventional(),
		ICacheBytes:     16 << 10,
		ICacheLineBytes: 32,
		DCacheBytes:     16 << 10,
		DCacheWays:      1,
		DCacheLineBytes: 32,
		DatapathBits:    64,
		Links:           4,
		LinkGbit:        2.5,
		ProtocolEngines: 2,

		CoherenceUnitBytes: 32,
		ScoreboardRate:     1,
		L2Bytes:            256 << 10,
		L2Ways:             2,
		L2LineBytes:        32,
		L2Cycles:           6,
		Cost:               costmodel.Default(),
	}
}

// WithGeometry re-derives the column-buffer cache organisation for a
// different bank count / column size / victim configuration, preserving
// the structural invariants Validate() checks: the I-cache is one column
// buffer per bank, the D-cache DCacheWays buffers per bank, and the
// victim cache one column's worth of entries. victimEntries == 0 drops
// the victim cache entirely.
func (d Device) WithGeometry(banks, columnBytes, victimEntries int) Device {
	d.DRAM.Banks = banks
	d.DRAM.ColumnBytes = columnBytes
	d.ICacheBytes = banks * columnBytes
	d.ICacheLineBytes = columnBytes
	d.DCacheBytes = d.DCacheWays * banks * columnBytes
	d.DCacheLineBytes = columnBytes
	d.VictimEntries = victimEntries
	if victimEntries > 0 {
		d.VictimLineBytes = columnBytes / victimEntries
	} else {
		d.VictimLineBytes = 0
	}
	return d
}

// WithOrganisation is WithGeometry plus a data-cache associativity
// change: the D-cache becomes dataWays column buffers per bank, and the
// DRAM buffer count follows (1 I + dataWays D) so Validate() still
// holds. It is the full four-axis re-derivation the design-space search
// sweeps over.
func (d Device) WithOrganisation(banks, columnBytes, victimEntries, dataWays int) Device {
	d.DCacheWays = dataWays
	d.DRAM.BuffersPerBank = 1 + dataWays
	return d.WithGeometry(banks, columnBytes, victimEntries)
}

// AreaMM2 evaluates the die-area proxy for this device's geometry: DRAM
// cells + per-bank periphery + column-buffer SRAM + victim CAM + core.
func (d Device) AreaMM2() float64 {
	m := costmodel.DefaultArea()
	return m.DeviceAreaMM2(costmodel.AreaParams{
		CapacityMbit:       float64(d.DRAM.CapacityBytes) * 8 / (1 << 20),
		Banks:              d.DRAM.Banks,
		BufferBytesPerBank: d.DRAM.BuffersPerBank * d.DRAM.ColumnBytes,
		VictimBytes:        d.VictimEntries * d.VictimLineBytes,
		CoreAreaMM2:        d.Cost.CPUCoreAreaMM2,
	})
}

// MemoryBandwidthGBs returns one datapath's bandwidth in GB/s
// (the paper: "each provides 1.6 GBytes/sec").
func (d Device) MemoryBandwidthGBs() float64 {
	return float64(d.DatapathBits) / 8 * float64(d.ClockMHz) * 1e6 / 1e9
}

// IOBandwidthGBs returns the peak raw off-chip bandwidth in GB/s.
func (d Device) IOBandwidthGBs() float64 {
	return float64(d.Links) * d.LinkGbit / 8
}

// Validate re-derives the structural relationships of Section 4.
func (d Device) Validate() error {
	if err := d.DRAM.Validate(); err != nil {
		return err
	}
	if d.CoherenceUnitBytes < 32 || d.CoherenceUnitBytes&(d.CoherenceUnitBytes-1) != 0 {
		return fmt.Errorf("core: coherence unit %d B must be a power of two >= 32", d.CoherenceUnitBytes)
	}
	if d.ScoreboardRate < 0 || d.ScoreboardRate > 1 {
		return fmt.Errorf("core: scoreboard rate %g outside [0,1]", d.ScoreboardRate)
	}
	if !d.Integrated {
		return d.validateReference()
	}
	// The I-cache is one column buffer per bank.
	if d.ICacheBytes != d.DRAM.Banks*d.DRAM.ColumnBytes {
		return fmt.Errorf("core: I-cache %d B != banks × column (%d × %d)",
			d.ICacheBytes, d.DRAM.Banks, d.DRAM.ColumnBytes)
	}
	if d.ICacheLineBytes != d.DRAM.ColumnBytes {
		return fmt.Errorf("core: I-cache line %d != column %d",
			d.ICacheLineBytes, d.DRAM.ColumnBytes)
	}
	// The D-cache is two column buffers per bank (2-way).
	if d.DCacheBytes != d.DCacheWays*d.DRAM.Banks*d.DRAM.ColumnBytes {
		return fmt.Errorf("core: D-cache %d B != ways × banks × column", d.DCacheBytes)
	}
	// I + D column buffers per bank must match the DRAM's buffer count.
	if want := 1 + d.DCacheWays; d.DRAM.BuffersPerBank != want {
		return fmt.Errorf("core: %d buffers per bank, want %d (1 I + %d D)",
			d.DRAM.BuffersPerBank, want, d.DCacheWays)
	}
	// The victim cache, when present, is exactly one column's worth.
	if d.VictimEntries != 0 && d.VictimEntries*d.VictimLineBytes != d.DRAM.ColumnBytes {
		return fmt.Errorf("core: victim %d×%d B != one %d B column",
			d.VictimEntries, d.VictimLineBytes, d.DRAM.ColumnBytes)
	}
	// Datapath bandwidth: 64 bits at 200 MHz = 1.6 GB/s.
	if bw := d.MemoryBandwidthGBs(); bw < 1.5 {
		return fmt.Errorf("core: memory datapath %.2f GB/s below the paper's 1.6", bw)
	}
	// The paper sizes the fabric to match the internal bandwidth
	// (4 × 2.5 Gbit/s ≈ 1.25 GB/s raw, "matching" at the GB/s scale).
	if io := d.IOBandwidthGBs(); io < 1.0 {
		return fmt.Errorf("core: I/O bandwidth %.2f GB/s too low to balance the datapath", io)
	}
	// The directory must fit the freed ECC bits.
	if ecc.FreedBitsPer32B() < ecc.DirEntryBits {
		return fmt.Errorf("core: directory entry does not fit the relaxed ECC budget")
	}
	// The processor must fit the 10% die budget.
	if r := costmodel.Evaluate(d.Cost); !r.CoreFitsBudget {
		return fmt.Errorf("core: CPU core exceeds the %0.f mm² area budget", r.ProcessorAreaMM2)
	}
	if d.ProtocolEngines != 2 {
		return fmt.Errorf("core: %d protocol engines, want 2 (Section 4.2)", d.ProtocolEngines)
	}
	if d.INCWays < 1 {
		return fmt.Errorf("core: INC associativity %d, want >= 1", d.INCWays)
	}
	if d.INCBytes%d.DRAM.ColumnBytes != 0 {
		return fmt.Errorf("core: INC %d B not a multiple of the %d B column",
			d.INCBytes, d.DRAM.ColumnBytes)
	}
	return nil
}

// validateReference checks the (much looser) conventional system: the
// column-buffer identities do not apply to discrete SRAM caches.
func (d Device) validateReference() error {
	if d.ICacheBytes < 1 || d.ICacheLineBytes < 1 || d.DCacheBytes < 1 ||
		d.DCacheWays < 1 || d.DCacheLineBytes < 1 {
		return fmt.Errorf("core: reference device needs non-empty L1 caches")
	}
	if d.L2Bytes > 0 {
		if d.L2Ways < 1 || d.L2LineBytes < 1 || d.L2Cycles < 1 {
			return fmt.Errorf("core: reference L2 %d B needs ways/line/cycles", d.L2Bytes)
		}
		if d.L2Bytes%(d.L2Ways*d.L2LineBytes) != 0 {
			return fmt.Errorf("core: reference L2 %d B not divisible into %d-way %d B lines",
				d.L2Bytes, d.L2Ways, d.L2LineBytes)
		}
	}
	return nil
}

// Caches instantiates the device's cache models (fresh state).
func (d Device) Caches() (icache *cache.SetAssoc, dcache *cache.WithVictim) {
	ic := cache.NewSetAssoc("device I-cache",
		uint64(d.ICacheBytes), uint64(d.ICacheLineBytes), 1)
	dc := cache.NewSetAssoc("device D-cache",
		uint64(d.DCacheBytes), uint64(d.DCacheLineBytes), d.DCacheWays)
	vc := cache.NewVictim(d.VictimEntries, uint64(d.VictimLineBytes))
	return ic, cache.NewWithVictim(dc, vc)
}

// Fabric instantiates the device's interconnect interface.
func (d Device) Fabric() *interconnect.Node {
	p := interconnect.Default()
	p.GbitPerSec = d.LinkGbit
	return interconnect.NewNode(d.Links, p)
}

// Datasheet renders the specification as key/value lines.
func (d Device) Datasheet() []string {
	return []string{
		fmt.Sprintf("device:            %s", d.Name),
		fmt.Sprintf("clock:             %d MHz", d.ClockMHz),
		fmt.Sprintf("DRAM:              %d MB in %d banks, %d ns access",
			d.DRAM.CapacityBytes>>20, d.DRAM.Banks, int(d.DRAM.AccessNanos())),
		fmt.Sprintf("I-cache:           %d KB direct-mapped, %d B lines (column buffers)",
			d.ICacheBytes>>10, d.ICacheLineBytes),
		fmt.Sprintf("D-cache:           %d KB %d-way, %d B lines (column buffers)",
			d.DCacheBytes>>10, d.DCacheWays, d.DCacheLineBytes),
		fmt.Sprintf("victim cache:      %d × %d B fully associative",
			d.VictimEntries, d.VictimLineBytes),
		fmt.Sprintf("memory datapaths:  2 × %d bit = %.1f GB/s each",
			d.DatapathBits, d.MemoryBandwidthGBs()),
		fmt.Sprintf("interconnect:      %d × %.1f Gbit/s serial links (%.2f GB/s)",
			d.Links, d.LinkGbit, d.IOBandwidthGBs()),
		fmt.Sprintf("protocol engines:  %d (CC-NUMA / S-COMA microcode)", d.ProtocolEngines),
		fmt.Sprintf("inter-node cache:  %d MB, %d-way, in-DRAM", d.INCBytes>>20, d.INCWays),
		fmt.Sprintf("directory:         %d bits per 32 B block, in ECC", ecc.DirEntryBits),
	}
}
