package core

import (
	"strings"
	"testing"
)

func TestProposedValidates(t *testing.T) {
	if err := Proposed().Validate(); err != nil {
		t.Fatalf("the paper's own device must validate: %v", err)
	}
}

func TestBandwidths(t *testing.T) {
	d := Proposed()
	if got := d.MemoryBandwidthGBs(); got != 1.6 {
		t.Errorf("datapath = %v GB/s, want 1.6 (64 bit × 200 MHz)", got)
	}
	if got := d.IOBandwidthGBs(); got != 1.25 {
		t.Errorf("I/O = %v GB/s, want 1.25 (4 × 2.5 Gbit)", got)
	}
}

// TestValidateCatchesImbalance: every structural relationship the
// paper commits to must be enforced.
func TestValidateCatchesImbalance(t *testing.T) {
	mutations := map[string]func(*Device){
		"icache size":  func(d *Device) { d.ICacheBytes = 16 << 10 },
		"icache line":  func(d *Device) { d.ICacheLineBytes = 256 },
		"dcache size":  func(d *Device) { d.DCacheBytes = 32 << 10 },
		"buffers":      func(d *Device) { d.DRAM.BuffersPerBank = 2 },
		"victim":       func(d *Device) { d.VictimEntries = 8 },
		"datapath":     func(d *Device) { d.DatapathBits = 32 },
		"links":        func(d *Device) { d.Links = 1 },
		"engines":      func(d *Device) { d.ProtocolEngines = 1 },
		"monster core": func(d *Device) { d.Cost.CPUCoreAreaMM2 = 200 },
		"broken dram":  func(d *Device) { d.DRAM.Banks = 0 },
	}
	for name, mutate := range mutations {
		d := Proposed()
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an imbalanced device", name)
		}
	}
}

func TestCachesMatchSpec(t *testing.T) {
	d := Proposed()
	ic, dc := d.Caches()
	if ic.Sets() != 16 || ic.LineSize() != 512 {
		t.Errorf("I-cache instantiation: %d sets, %d B", ic.Sets(), ic.LineSize())
	}
	if dc.Main.Sets() != 16 || dc.Main.Ways() != 2 {
		t.Errorf("D-cache instantiation: %d sets, %d ways", dc.Main.Sets(), dc.Main.Ways())
	}
}

func TestFabric(t *testing.T) {
	n := Proposed().Fabric()
	if n.Links != 4 {
		t.Errorf("fabric links = %d", n.Links)
	}
}

func TestDatasheet(t *testing.T) {
	lines := Proposed().Datasheet()
	if len(lines) < 8 {
		t.Fatalf("datasheet too short: %d lines", len(lines))
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"200 MHz", "32 MB", "16 banks", "victim", "2.5 Gbit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("datasheet missing %q", want)
		}
	}
}

// TestWithOrganisation checks the four-axis re-derivation: changing
// D-cache associativity must track the DRAM buffer count so the derived
// device still validates, and the paper point must be reproduced when
// all four axes match Proposed().
func TestWithOrganisation(t *testing.T) {
	d := Proposed().WithOrganisation(16, 512, 16, 2)
	if err := d.Validate(); err != nil {
		t.Fatalf("paper point via WithOrganisation: %v", err)
	}
	if d.DCacheBytes != Proposed().DCacheBytes || d.DRAM.BuffersPerBank != Proposed().DRAM.BuffersPerBank {
		t.Errorf("WithOrganisation(paper axes) diverges from Proposed(): %+v", d)
	}
	for _, ways := range []int{1, 2, 4} {
		g := Proposed().WithOrganisation(32, 256, 8, ways)
		if err := g.Validate(); err != nil {
			t.Errorf("ways=%d: %v", ways, err)
		}
		if g.DCacheBytes != ways*32*256 {
			t.Errorf("ways=%d: D-cache %d B, want %d", ways, g.DCacheBytes, ways*32*256)
		}
		if g.DRAM.BuffersPerBank != 1+ways {
			t.Errorf("ways=%d: %d buffers per bank, want %d", ways, g.DRAM.BuffersPerBank, 1+ways)
		}
	}
}

// TestAreaMM2 pins the paper device near the Section 3 die and checks
// geometry monotonicity at the device level.
func TestAreaMM2(t *testing.T) {
	base := Proposed()
	a := base.AreaMM2()
	if a < 290 || a > 310 {
		t.Errorf("Proposed() area = %.1f mm², want ~300", a)
	}
	if more := base.WithGeometry(32, 512, 16); more.AreaMM2() <= a {
		t.Error("more banks must cost area")
	}
	if less := base.WithGeometry(16, 512, 0); less.AreaMM2() >= a {
		t.Error("dropping the victim cache must save area")
	}
}
