package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// FromJSON decodes a machine description, overlaying the supplied
// fields onto the paper's Proposed() device so a config file only
// needs to name what it changes. Unknown fields are rejected, and the
// result must pass Validate(): a file cannot describe a device whose
// column-buffer caches don't match its DRAM organisation.
//
// The field names are the Go field names of Device (and dram.Params /
// costmodel.Inputs for the nested structs), e.g.:
//
//	{
//	  "Name": "32-bank experiment",
//	  "DRAM": {"Banks": 32, "ColumnBytes": 256},
//	  "ICacheBytes": 8192, "ICacheLineBytes": 256,
//	  "DCacheBytes": 16384, "DCacheLineBytes": 256,
//	  "VictimEntries": 8
//	}
func FromJSON(data []byte) (Device, error) {
	d := Proposed()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return Device{}, fmt.Errorf("core: machine config: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Device{}, fmt.Errorf("core: machine config: %w", err)
	}
	return d, nil
}

// LoadFile reads a machine description from a JSON file (see FromJSON).
func LoadFile(path string) (Device, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Device{}, fmt.Errorf("core: machine config: %w", err)
	}
	return FromJSON(data)
}
