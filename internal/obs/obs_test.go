package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestNilSafety: a nil registry, tracer, and all nil metric handles are
// usable no-ops — the "instrumentation off" configuration every hot
// path compiles against.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("f", "c").Inc()
	r.Counter("f", "c").Add(5)
	r.Gauge("f", "g").Set(3)
	r.Gauge("f", "g").SetMax(9)
	r.Running("f", "r").Add(1.5)
	r.Histogram("f", "h", 0, 1, 4).Add(0.5)
	if got := r.Counter("f", "c").Value(); got != 0 {
		t.Errorf("nil counter value = %d", got)
	}
	if len(r.Snapshot()) != 0 || r.Families() != nil {
		t.Error("nil registry snapshot not empty")
	}
	var tr *Tracer
	tr.Shard("w").Emit("ev", "detail", 1, 2)
	if err := tr.Drain(&bytes.Buffer{}); err != nil {
		t.Errorf("nil tracer drain: %v", err)
	}
}

// TestRegistryIdempotent: the same (family, name) always yields the
// same metric, so concurrent publishers accumulate.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("fam", "n")
	b := r.Counter("fam", "n")
	if a != b {
		t.Fatal("Counter not idempotent")
	}
	a.Add(2)
	b.Add(3)
	if got := r.Counter("fam", "n").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if h1, h2 := r.Histogram("f", "h", 0, 10, 4), r.Histogram("f", "h", 0, 99, 7); h1 != h2 {
		t.Error("Histogram not idempotent")
	}
}

// TestConcurrentCounters: many goroutines bumping the same counters and
// gauges produce exact totals (run under -race in CI).
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("f", "ops")
			g := r.Gauge("f", "hi")
			a := r.Running("f", "x")
			for i := 0; i < each; i++ {
				c.Inc()
				g.SetMax(int64(w*each + i))
				a.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("f", "ops").Value(); got != workers*each {
		t.Errorf("ops = %d, want %d", got, workers*each)
	}
	if got := r.Gauge("f", "hi").Value(); got != workers*each-1 {
		t.Errorf("hi = %d, want %d", got, workers*each-1)
	}
	snap := r.Running("f", "x").Snapshot()
	if got := snap.N(); got != workers*each {
		t.Errorf("running n = %d, want %d", got, workers*each)
	}
}

// TestWriteJSONSanitised: the dump parses with encoding/json even when
// the underlying statistics could misbehave, and empty accumulators
// render n=0 with all-zero moments rather than NaN.
func TestWriteJSONSanitised(t *testing.T) {
	r := NewRegistry()
	r.Counter("sweep", "units").Add(7)
	r.Running("sweep", "empty") // n == 0: every derived stat must be 0
	one := r.Running("sweep", "single")
	one.Add(42)                                      // n == 1: stderr/CI must be 0, not NaN
	r.Histogram("cache", "lat", 0, 100, 10).Add(250) // clamped
	r.Histogram("cache", "none", 0, 1, 2)            // empty

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if s := buf.String(); strings.Contains(s, "NaN") || strings.Contains(s, "Inf") {
		t.Fatalf("dump contains NaN/Inf:\n%s", s)
	}
	var parsed map[string]map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("dump does not parse: %v\n%s", err, buf.String())
	}
	if _, ok := parsed["sweep"]; !ok {
		t.Error("missing sweep family")
	}
	single := parsed["sweep"]["single"].(map[string]interface{})
	if single["n"].(float64) != 1 || single["stderr"].(float64) != 0 {
		t.Errorf("single-sample running = %v, want n=1 stderr=0", single)
	}
}

// TestSafe: the sanitiser maps every non-finite value to 0.
func TestSafe(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := safe(v); got != 0 {
			t.Errorf("safe(%v) = %v, want 0", v, got)
		}
	}
	if got := safe(1.5); got != 1.5 {
		t.Errorf("safe(1.5) = %v", got)
	}
}

// TestTracerDrainOrder: events from several shards drain in global
// sequence order with their shard labels.
func TestTracerDrainOrder(t *testing.T) {
	tr := NewTracer(16)
	a := tr.Shard("a")
	b := tr.Shard("b")
	a.Emit("start", "u1", 1, 0)
	b.Emit("start", "u2", 2, 0)
	a.Emit("done", "u1", 1, 10)
	var buf bytes.Buffer
	if err := tr.Drain(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 { // 3 events + summary
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	for i, want := range []string{"u1", "u2", "u1"} {
		if !strings.Contains(lines[i], want) {
			t.Errorf("line %d = %q, want detail %q", i, lines[i], want)
		}
	}
	var prev uint64
	for _, l := range lines[:3] {
		var seq uint64
		if _, err := fmt.Sscanf(l, "%d", &seq); err != nil {
			t.Fatalf("bad line %q", l)
		}
		if seq <= prev {
			t.Errorf("sequence not increasing: %d after %d", seq, prev)
		}
		prev = seq
	}
	if !strings.Contains(lines[3], "3 events emitted, 3 retained, 0 dropped") {
		t.Errorf("summary = %q", lines[3])
	}
}

// TestTracerRingOverflow: a shard past capacity keeps the newest
// events and reports the drop count.
func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Shard("w")
	for i := 0; i < 10; i++ {
		s.Emit("ev", "", int64(i), 0)
	}
	var buf bytes.Buffer
	if err := tr.Drain(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "10 events emitted, 4 retained, 6 dropped") {
		t.Errorf("overflow summary wrong:\n%s", out)
	}
	// The retained events are the last four (a=6..9).
	for _, want := range []string{"a=6", "a=7", "a=8", "a=9"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing retained event %s:\n%s", want, out)
		}
	}
}

// TestServeDebug: the debug server exposes expvar, pprof, and the
// metrics dump over HTTP on an ephemeral port.
func TestServeDebug(t *testing.T) {
	r := NewRegistry()
	r.Counter("mpsim", "accesses").Add(11)
	srv, err := r.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	defer srv.Close()
	for path, want := range map[string]string{
		"/debug/metrics":      `"accesses": 11`,
		"/debug/vars":         `"iramsim"`,
		"/debug/pprof/":       "profiles",
		"/debug/pprof/symbol": "",
	} {
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var body bytes.Buffer
		_, _ = body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if want != "" && !strings.Contains(body.String(), want) {
			t.Errorf("GET %s: body missing %q:\n%s", path, want, body.String())
		}
	}
}
