// Package obs is the simulator's observability layer: a metrics
// registry (counters, gauges, streaming statistics, histograms) plus a
// lightweight event tracer, both designed so that instrumentation can
// stay compiled into the hot paths permanently.
//
// Two properties are load-bearing for the rest of the repository:
//
//   - Off by default, invisible when off. Every instrumented component
//     takes a nil-able handle; all metric and trace operations are
//     nil-safe no-ops, so an uninstrumented run costs one pointer check
//     per hook and allocates nothing (the memsys and mpsim zero-alloc
//     guards run with these hooks compiled in).
//
//   - Cheap and allocation-free when on. Counters and gauges are single
//     atomics; Running/Histogram adapters take an uncontended mutex;
//     trace events are written into preallocated ring buffers. No hook
//     allocates on a hot path — allocation happens only at registration
//     time and when the results are drained after the run.
//
// The registry renders as JSON (cmd/iramsim -metrics): families sorted
// by name, every float sanitised so the dump never contains NaN or Inf
// (encoding/json rejects both, and a metrics file that cannot be parsed
// is worse than none).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/stats"
)

// Registry is a set of named metrics grouped into families ("sweep",
// "mpsim", "cache", ...). Metric creation is idempotent: asking twice
// for the same (family, name) returns the same metric, so concurrent
// sweep units can all publish into one accumulated series. A nil
// *Registry is a valid "instrumentation off" value: every method
// returns a nil metric whose operations are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	runnings   map[string]*Running
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{
			counters:   make(map[string]*Counter),
			gauges:     make(map[string]*Gauge),
			runnings:   make(map[string]*Running),
			histograms: make(map[string]*Histogram),
		}
		r.families[name] = f
	}
	return f
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(fam, name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(fam)
	c, ok := f.counters[name]
	if !ok {
		c = &Counter{}
		f.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(fam, name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(fam)
	g, ok := f.gauges[name]
	if !ok {
		g = &Gauge{}
		f.gauges[name] = g
	}
	return g
}

// Running returns (creating if needed) the named streaming accumulator.
func (r *Registry) Running(fam, name string) *Running {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(fam)
	a, ok := f.runnings[name]
	if !ok {
		a = &Running{}
		f.runnings[name] = a
	}
	return a
}

// Histogram returns (creating if needed) the named histogram over
// [lo, hi) with the given bucket count. The range and bucket count are
// fixed by the first caller; later callers get the existing histogram.
func (r *Registry) Histogram(fam, name string, lo, hi float64, buckets int) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(fam)
	h, ok := f.histograms[name]
	if !ok {
		h = &Histogram{h: stats.NewHistogram(lo, hi, buckets)}
		f.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing event count. The zero value is
// ready; a nil *Counter is a no-op (instrumentation off).
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins instantaneous measurement (queue depth,
// worker count). A nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta and returns the new value (0 on nil).
// It makes a gauge usable as a shared live counter — e.g. outstanding
// sweep units across concurrently running engines — where last-value
// Set semantics would lose updates.
func (g *Gauge) Add(delta int64) int64 {
	if g == nil {
		return 0
	}
	return g.v.Add(delta)
}

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Running adapts stats.Running for concurrent observation: a streaming
// mean/variance/min/max over float64 samples. A nil *Running is a
// no-op.
type Running struct {
	mu sync.Mutex
	r  stats.Running
}

// Add records one sample.
func (a *Running) Add(x float64) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.r.Add(x)
	a.mu.Unlock()
}

// Merge folds a stats.Running (e.g. a sweep worker's shard) into a.
func (a *Running) Merge(o stats.Running) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.r.Merge(o)
	a.mu.Unlock()
}

// Snapshot returns a copy of the underlying accumulator.
func (a *Running) Snapshot() stats.Running {
	if a == nil {
		return stats.Running{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.r
}

// Histogram adapts stats.Histogram for concurrent observation. A nil
// *Histogram is a no-op.
type Histogram struct {
	mu sync.Mutex
	h  *stats.Histogram
}

// Add records one observation (clamped into the histogram's range, as
// stats.Histogram.Add documents).
func (h *Histogram) Add(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(x)
	h.mu.Unlock()
}

// ---------------------------------------------------------------------
// JSON rendering.
// ---------------------------------------------------------------------

// safe replaces NaN and ±Inf with 0 so the dump always marshals:
// encoding/json refuses to encode either, and the stats accessors are
// only NaN-free as long as nobody regresses them — the dump must stay
// parseable regardless.
func safe(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return f
}

// runningJSON is the JSON shape of a streaming accumulator.
type runningJSON struct {
	N      int64   `json:"n"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	StdErr float64 `json:"stderr"`
	CI95   float64 `json:"ci95"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

// histogramJSON is the JSON shape of a histogram.
type histogramJSON struct {
	Lo      float64 `json:"lo"`
	Hi      float64 `json:"hi"`
	N       int64   `json:"n"`
	Mean    float64 `json:"mean"`
	P50     float64 `json:"p50"`
	P90     float64 `json:"p90"`
	P99     float64 `json:"p99"`
	Buckets []int64 `json:"buckets"`
}

// Snapshot renders the registry as a nested map: family -> metric name
// -> value. Counters and gauges render as integers, Running and
// Histogram as small objects. Keys are sorted by encoding/json, so a
// dump of the same run is byte-stable.
func (r *Registry) Snapshot() map[string]map[string]interface{} {
	out := make(map[string]map[string]interface{})
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for famName, f := range r.families {
		m := make(map[string]interface{})
		for name, c := range f.counters {
			m[name] = c.Value()
		}
		for name, g := range f.gauges {
			m[name] = g.Value()
		}
		for name, a := range f.runnings {
			s := a.Snapshot()
			m[name] = runningJSON{
				N:      s.N(),
				Mean:   safe(s.Mean()),
				StdDev: safe(s.StdDev()),
				StdErr: safe(s.StdErr()),
				CI95:   safe(s.CI95()),
				Min:    safe(s.Min()),
				Max:    safe(s.Max()),
			}
		}
		for name, h := range f.histograms {
			h.mu.Lock()
			buckets := make([]int64, len(h.h.Buckets))
			copy(buckets, h.h.Buckets)
			m[name] = histogramJSON{
				Lo:      safe(h.h.Lo),
				Hi:      safe(h.h.Hi),
				N:       h.h.N(),
				Mean:    safe(h.h.Mean()),
				P50:     safe(h.h.Quantile(0.50)),
				P90:     safe(h.h.Quantile(0.90)),
				P99:     safe(h.h.Quantile(0.99)),
				Buckets: buckets,
			}
			h.mu.Unlock()
		}
		out[famName] = m
	}
	return out
}

// WriteJSON writes the registry as indented JSON. The output is
// guaranteed to parse with encoding/json: every float is sanitised.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Families returns the family names in sorted order (for tests and the
// debug endpoint).
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// String summarises the registry ("3 families, 42 metrics").
func (r *Registry) String() string {
	if r == nil {
		return "obs: off"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	metrics := 0
	for _, f := range r.families {
		metrics += len(f.counters) + len(f.gauges) + len(f.runnings) + len(f.histograms)
	}
	return fmt.Sprintf("obs: %d families, %d metrics", len(r.families), metrics)
}
