package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards the one-time expvar publication: expvar.Publish
// panics on duplicate names, and tests (or a CLI run that restarts the
// debug server) may install more than one registry over a process
// lifetime, so the published Func indirects through a swappable pointer.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarReg  *Registry
)

// PublishExpvar exposes the registry's snapshot as the expvar variable
// "iramsim" (rendered inside /debug/vars). Safe to call more than once;
// the latest registry wins.
func (r *Registry) PublishExpvar() {
	expvarMu.Lock()
	expvarReg = r
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("iramsim", expvar.Func(func() interface{} {
			expvarMu.Lock()
			defer expvarMu.Unlock()
			return expvarReg.Snapshot()
		}))
	})
}

// DebugServer is a running debug HTTP endpoint.
type DebugServer struct {
	Addr string // actual listen address (resolves ":0" requests)
	srv  *http.Server
}

// DebugHandlers registers the registry's debug endpoints on mux:
//
//	/debug/vars          expvar (including the "iramsim" registry snapshot)
//	/debug/pprof/...     net/http/pprof profiles
//	/debug/metrics       the registry's JSON dump, rendered on demand
//
// It also publishes the registry via PublishExpvar so /debug/vars shows
// it. Both the standalone ServeDebug server and iramsimd's service mux
// mount the same set, so operators get one debug surface everywhere.
func (r *Registry) DebugHandlers(mux *http.ServeMux) {
	r.PublishExpvar()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// ServeDebug starts an HTTP server on addr exposing the DebugHandlers
// endpoints while a long sweep runs. The server runs until Close. It
// uses its own mux, so nothing leaks into http.DefaultServeMux.
func (r *Registry) ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	r.DebugHandlers(mux)
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{Addr: ln.Addr().String(), srv: srv}, nil
}

// Close shuts the debug server down.
func (d *DebugServer) Close() error {
	if d == nil || d.srv == nil {
		return nil
	}
	return d.srv.Close()
}
