package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Event is one trace record: a globally ordered sequence number, a
// static event name, an optional detail string (unit names, benchmark
// names — existing strings, never formatted on the hot path), and two
// integer arguments whose meaning is event-specific.
type Event struct {
	Seq    uint64
	Name   string
	Detail string
	A, B   int64
}

// Tracer is a lightweight event tracer: each participating goroutine
// owns a Shard (a fixed-size ring buffer) it writes without locking,
// and the shards are merged by sequence number when the run is drained.
// Recording an event is one atomic add plus a few stores into
// preallocated memory; when the ring wraps, the oldest events in that
// shard are overwritten (the drop count is reported by Drain). A nil
// *Tracer hands out nil shards, and a nil *Shard drops events for free
// — so call sites need no conditionals beyond holding the shard.
type Tracer struct {
	seq    atomic.Uint64
	events int

	mu     sync.Mutex
	shards []*Shard
}

// DefaultShardEvents is the per-shard ring capacity used by the CLI.
const DefaultShardEvents = 1 << 14

// NewTracer creates a tracer whose shards each hold shardEvents events
// (values below 1 get a minimal ring).
func NewTracer(shardEvents int) *Tracer {
	if shardEvents < 1 {
		shardEvents = 1
	}
	return &Tracer{events: shardEvents}
}

// Shard registers and returns a new ring buffer for one goroutine.
// Returns nil (a valid no-op shard) when the tracer is nil.
func (t *Tracer) Shard(label string) *Shard {
	if t == nil {
		return nil
	}
	s := &Shard{label: label, t: t, buf: make([]Event, t.events)}
	t.mu.Lock()
	t.shards = append(t.shards, s)
	t.mu.Unlock()
	return s
}

// Shard is one goroutine's event ring. Emit must only be called from
// the owning goroutine; Drain must only run after every emitter is
// done (the sweep engine drains after its worker pool joins).
type Shard struct {
	label string
	t     *Tracer
	buf   []Event
	n     uint64 // events ever emitted; buf index is n % len(buf)
}

// Emit records one event. No-op on a nil shard.
func (s *Shard) Emit(name, detail string, a, b int64) {
	if s == nil {
		return
	}
	e := &s.buf[s.n%uint64(len(s.buf))]
	e.Seq = s.t.seq.Add(1)
	e.Name = name
	e.Detail = detail
	e.A = a
	e.B = b
	s.n++
}

// Drain merges all shards' retained events in sequence order and
// writes one line per event:
//
//	<seq> <shard> <name> <detail> a=<a> b=<b>
//
// followed by a summary line with the emitted/retained/dropped counts.
// Drain must not race with Emit (drain post-run).
func (t *Tracer) Drain(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	shards := t.shards
	t.mu.Unlock()

	var all []Event
	var emitted, dropped uint64
	for _, s := range shards {
		emitted += s.n
		kept := s.n
		if kept > uint64(len(s.buf)) {
			dropped += s.n - uint64(len(s.buf))
			kept = uint64(len(s.buf))
		}
		for i := uint64(0); i < kept; i++ {
			all = append(all, s.buf[i])
		}
	}
	// Shard labels are needed per event for the merged view; carry them
	// through the Detail-preserving sort by annotating indices instead
	// of copying labels into every Event at emit time.
	labels := make([]string, 0, len(all))
	for _, s := range shards {
		kept := s.n
		if kept > uint64(len(s.buf)) {
			kept = uint64(len(s.buf))
		}
		for i := uint64(0); i < kept; i++ {
			labels = append(labels, s.label)
		}
	}
	idx := make([]int, len(all))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return all[idx[i]].Seq < all[idx[j]].Seq })

	bw := bufio.NewWriter(w)
	for _, i := range idx {
		e := all[i]
		if _, err := fmt.Fprintf(bw, "%8d %-12s %-12s %s a=%d b=%d\n",
			e.Seq, labels[i], e.Name, e.Detail, e.A, e.B); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "# trace: %d events emitted, %d retained, %d dropped (ring capacity %d/shard, %d shards)\n",
		emitted, uint64(len(all)), dropped, t.events, len(shards)); err != nil {
		return err
	}
	return bw.Flush()
}
