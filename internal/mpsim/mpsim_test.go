package mpsim

import (
	"testing"
)

// flatMemory charges a fixed latency for every access.
type flatMemory struct {
	lat   uint64
	calls int64
}

func (m *flatMemory) Access(proc int, addr uint64, write bool) uint64 {
	m.calls++
	return m.lat
}

func TestSingleProcTiming(t *testing.T) {
	mem := &flatMemory{lat: 5}
	r := Run(1, mem, DefaultSyncCosts(), func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Read(uint64(i))
		}
		p.Compute(7)
		p.Write(0)
	})
	// 11 accesses × 5 cycles + 7 compute.
	if r.Cycles != 11*5+7 {
		t.Errorf("cycles = %d, want 62", r.Cycles)
	}
	if r.Accesses != 11 || mem.calls != 11 {
		t.Errorf("accesses = %d / %d", r.Accesses, mem.calls)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	body := func(p *Proc) {
		for i := 0; i < 50; i++ {
			p.Read(uint64(p.ID*1000 + i))
			p.Compute(uint64(p.ID + 1))
		}
		p.Barrier()
		for i := 0; i < 20; i++ {
			p.Write(uint64(i))
		}
	}
	run := func() uint64 {
		return Run(4, &flatMemory{lat: 3}, DefaultSyncCosts(), body).Cycles
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("run %d: cycles %d != %d (nondeterministic)", i, got, first)
		}
	}
}

func TestBarrierSynchronises(t *testing.T) {
	// Proc 0 does much more work before the barrier; everyone must
	// leave the barrier at (max arrival + barrier cost).
	costs := DefaultSyncCosts()
	r := Run(2, &flatMemory{lat: 10}, costs, func(p *Proc) {
		if p.ID == 0 {
			for i := 0; i < 100; i++ {
				p.Read(uint64(i))
			}
		} else {
			p.Read(0)
		}
		p.Barrier()
	})
	want := uint64(100*10) + costs.Barrier
	for pid, cy := range r.ProcCycles {
		if cy != want {
			t.Errorf("proc %d finished at %d, want %d", pid, cy, want)
		}
	}
	if r.Barriers != 2 {
		t.Errorf("barrier arrivals = %d, want 2", r.Barriers)
	}
}

func TestLockMutualExclusionAndHandoff(t *testing.T) {
	// Two procs increment a shared counter under a lock; the simulated
	// critical sections must serialise.
	costs := SyncCosts{LockAcquire: 10, LockHandoff: 10, Barrier: 10}
	counter := 0
	r := Run(2, &flatMemory{lat: 1}, costs, func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Lock(7)
			v := counter
			p.Read(0)
			p.Compute(3)
			counter = v + 1
			p.Write(0)
			p.Unlock(7)
		}
	})
	if counter != 10 {
		t.Errorf("counter = %d, want 10 (lost updates)", counter)
	}
	// Each critical section is >= acquire(10) + read(1) + compute(3) +
	// write(1) = 15 cycles and they serialise: total >= 10 × 15.
	if r.Cycles < 150 {
		t.Errorf("cycles = %d, want >= 150 (critical sections must serialise)", r.Cycles)
	}
}

func TestUnlockWithoutHoldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unlocking a lock not held")
		}
	}()
	Run(1, &flatMemory{lat: 1}, DefaultSyncCosts(), func(p *Proc) {
		p.Unlock(3)
	})
}

func TestEarlyFinisherDoesNotBlockBarrier(t *testing.T) {
	// Proc 1 exits before the others' barrier; the barrier must
	// complete among the survivors.
	r := Run(3, &flatMemory{lat: 1}, DefaultSyncCosts(), func(p *Proc) {
		p.Read(0)
		if p.ID == 1 {
			return // finishes without joining the barrier
		}
		p.Barrier()
	})
	if r.Procs != 3 {
		t.Errorf("procs = %d", r.Procs)
	}
}

func TestComputeAccumulates(t *testing.T) {
	r := Run(1, &flatMemory{lat: 1}, DefaultSyncCosts(), func(p *Proc) {
		p.Compute(5)
		p.Compute(5)
		p.Read(0) // posts 10 accumulated compute cycles + 1 access
	})
	if r.Cycles != 11 {
		t.Errorf("cycles = %d, want 11", r.Cycles)
	}
}

func TestMinTimeOrdering(t *testing.T) {
	// Proc 1 computes a lot first; proc 0's accesses must be admitted
	// first (smaller virtual times). Observable via a shared counter
	// written in admission order by the memory model.
	var order []int
	mem := orderMemory{order: &order}
	Run(2, mem, DefaultSyncCosts(), func(p *Proc) {
		if p.ID == 1 {
			p.Compute(1000)
		}
		for i := 0; i < 3; i++ {
			p.Read(uint64(i))
		}
	})
	want := []int{0, 0, 0, 1, 1, 1}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("admission order = %v, want %v", order, want)
		}
	}
}

type orderMemory struct{ order *[]int }

func (m orderMemory) Access(proc int, addr uint64, write bool) uint64 {
	*m.order = append(*m.order, proc)
	return 1
}

func TestSpeedupHelper(t *testing.T) {
	rs := []Result{{Procs: 1, Cycles: 100}, {Procs: 2, Cycles: 50}, {Procs: 4, Cycles: 25}}
	s := Speedup(rs)
	if s[0] != 1 || s[1] != 2 || s[2] != 4 {
		t.Errorf("speedups = %v", s)
	}
	if out := Speedup(nil); len(out) != 0 {
		t.Error("empty speedup")
	}
}

func TestSortByProcs(t *testing.T) {
	rs := []Result{{Procs: 4}, {Procs: 1}, {Procs: 2}}
	SortByProcs(rs)
	if rs[0].Procs != 1 || rs[2].Procs != 4 {
		t.Errorf("sorted = %v", rs)
	}
}

func TestImbalance(t *testing.T) {
	balanced := Result{Procs: 2, Cycles: 100, ProcCycles: []uint64{100, 100}}
	if got := balanced.Imbalance(); got != 1 {
		t.Errorf("balanced imbalance = %v, want 1", got)
	}
	skewed := Result{Procs: 2, Cycles: 100, ProcCycles: []uint64{100, 50}}
	if got := skewed.Imbalance(); got < 1.3 || got > 1.4 {
		t.Errorf("skewed imbalance = %v, want ~1.33", got)
	}
	if (Result{}).Imbalance() != 1 {
		t.Error("empty result imbalance")
	}
}

// TestSplashStyleImbalanceLow: barrier-synchronised SPMD bodies finish
// together, so imbalance stays ~1.
func TestSplashStyleImbalanceLow(t *testing.T) {
	r := Run(4, &flatMemory{lat: 2}, DefaultSyncCosts(), func(p *Proc) {
		for i := 0; i < 100*(p.ID+1); i++ { // deliberately uneven work
			p.Read(uint64(i))
		}
		p.Barrier() // ...but the barrier equalises finish times
	})
	if got := r.Imbalance(); got > 1.01 {
		t.Errorf("post-barrier imbalance = %v, want ~1", got)
	}
}
