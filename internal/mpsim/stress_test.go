package mpsim

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// traceEntry is one serviced access as the coordinator saw it.
type traceEntry struct {
	Proc  int
	Addr  uint64
	Write bool
	Now   uint64
}

// tracingMemory records every access with the issuing processor's
// virtual time. It implements TimedMemory, so the coordinator hands it
// the clock it schedules by; the trace therefore exposes the global
// service order.
type tracingMemory struct {
	lat   uint64
	trace []traceEntry
}

func (m *tracingMemory) Access(proc int, addr uint64, write bool) uint64 { return m.lat }

func (m *tracingMemory) AccessAt(proc int, addr uint64, write bool, now uint64) uint64 {
	m.trace = append(m.trace, traceEntry{proc, addr, write, now})
	// Latency depends on the inputs only, never on host scheduling.
	return m.lat + addr%7
}

// stressBody mixes reads, writes, compute, contended locks, and
// barriers; everything it does is a pure function of the processor ID,
// so any run-to-run variation can only come from the coordinator.
func stressBody(p *Proc) {
	for round := 0; round < 8; round++ {
		for i := 0; i < 6; i++ {
			a := uint64(p.ID*131 + round*17 + i)
			if (p.ID+round+i)%3 == 0 {
				p.Write(a)
			} else {
				p.Read(a)
			}
			p.Compute(uint64(1 + (p.ID+i)%5))
		}
		// Contended critical section: every proc hammers a small set of
		// locks, including one global lock.
		p.Lock(p.ID % 4)
		p.Read(uint64(7000 + p.ID%4))
		p.Write(uint64(7000 + p.ID%4))
		p.Unlock(p.ID % 4)
		p.Lock(99)
		p.Compute(3)
		p.Unlock(99)
		p.Barrier()
	}
}

// TestCoordinatorStress runs many goroutine-backed processors through
// a lock/barrier-heavy workload and checks the two properties the
// sweep engine's determinism rests on: service timestamps never move
// backwards, and repeated runs produce the identical access trace and
// result, regardless of goroutine scheduling (run with -race to also
// exercise the memory model's single-writer invariant).
func TestCoordinatorStress(t *testing.T) {
	const procs = 32
	run := func() (Result, []traceEntry) {
		mem := &tracingMemory{lat: 4}
		r := Run(procs, mem, DefaultSyncCosts(), stressBody)
		return r, mem.trace
	}

	ref, refTrace := run()
	if ref.Accesses != int64(len(refTrace)) {
		t.Fatalf("result counts %d accesses, trace has %d", ref.Accesses, len(refTrace))
	}
	// 8 rounds × (6 loop accesses + 2 critical-section accesses) per proc.
	if want := int64(procs * 8 * 8); ref.Accesses != want {
		t.Fatalf("accesses = %d, want %d", ref.Accesses, want)
	}
	if want := int64(procs * 8); ref.Barriers != want {
		t.Fatalf("barriers = %d, want %d", ref.Barriers, want)
	}

	// Conservative discrete-event invariant: the coordinator serves
	// operations in global virtual-time order.
	for i := 1; i < len(refTrace); i++ {
		if refTrace[i].Now < refTrace[i-1].Now {
			t.Fatalf("service time moved backwards at access %d: %+v after %+v",
				i, refTrace[i], refTrace[i-1])
		}
	}

	// Grant delivery accounting (gate vs. channel, spin vs. park) depends
	// on host scheduling by design — only the gate/channel split varies,
	// never what is granted or when in virtual time. Normalise those
	// fields before the determinism comparison.
	normalise := func(r Result) Result {
		r.Coord = r.Coord.Deterministic()
		return r
	}
	// Conservation: every grant plus each proc's final done-wake is
	// delivered exactly once, through the gate or the channel.
	if got, want := ref.Coord.GateWakes+ref.Coord.ChannelWakes, ref.Coord.Grants+procs; got != int64(want) {
		t.Errorf("gate+channel wakes = %d, want grants+procs = %d", got, want)
	}
	if ref.Coord.MaxHeapDepth > procs {
		t.Errorf("heap depth %d exceeds processor count %d", ref.Coord.MaxHeapDepth, procs)
	}

	for rep := 0; rep < 3; rep++ {
		r, trace := run()
		if !reflect.DeepEqual(normalise(r), normalise(ref)) {
			t.Fatalf("rep %d: result %+v != %+v (nondeterministic)", rep, r, ref)
		}
		if !reflect.DeepEqual(trace, refTrace) {
			for i := range refTrace {
				if trace[i] != refTrace[i] {
					t.Fatalf("rep %d: access %d = %+v, want %+v", rep, i, trace[i], refTrace[i])
				}
			}
			t.Fatalf("rep %d: traces differ in length: %d vs %d", rep, len(trace), len(refTrace))
		}
	}
}

// TestCoordStatsPublish: Result.Coord lands in the registry's "mpsim"
// family, accumulating across runs; a nil registry is a no-op.
func TestCoordStatsPublish(t *testing.T) {
	mem := &tracingMemory{lat: 4}
	r := Run(4, mem, DefaultSyncCosts(), stressBody)
	if r.Coord.SelfServes+r.Coord.Grants == 0 {
		t.Fatal("no coordinator activity recorded")
	}
	reg := obs.NewRegistry()
	r.Coord.Publish(reg)
	r.Coord.Publish(reg) // counters accumulate
	if got := reg.Counter("mpsim", "grants").Value(); got != 2*r.Coord.Grants {
		t.Errorf("grants = %d, want %d", got, 2*r.Coord.Grants)
	}
	if got := reg.Gauge("mpsim", "heap_depth_max").Value(); got != int64(r.Coord.MaxHeapDepth) {
		t.Errorf("heap_depth_max = %d, want %d", got, r.Coord.MaxHeapDepth)
	}
	r.Coord.Publish(nil) // must not panic
}
