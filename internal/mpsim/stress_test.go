package mpsim

import (
	"reflect"
	"testing"
)

// traceEntry is one serviced access as the coordinator saw it.
type traceEntry struct {
	Proc  int
	Addr  uint64
	Write bool
	Now   uint64
}

// tracingMemory records every access with the issuing processor's
// virtual time. It implements TimedMemory, so the coordinator hands it
// the clock it schedules by; the trace therefore exposes the global
// service order.
type tracingMemory struct {
	lat   uint64
	trace []traceEntry
}

func (m *tracingMemory) Access(proc int, addr uint64, write bool) uint64 { return m.lat }

func (m *tracingMemory) AccessAt(proc int, addr uint64, write bool, now uint64) uint64 {
	m.trace = append(m.trace, traceEntry{proc, addr, write, now})
	// Latency depends on the inputs only, never on host scheduling.
	return m.lat + addr%7
}

// stressBody mixes reads, writes, compute, contended locks, and
// barriers; everything it does is a pure function of the processor ID,
// so any run-to-run variation can only come from the coordinator.
func stressBody(p *Proc) {
	for round := 0; round < 8; round++ {
		for i := 0; i < 6; i++ {
			a := uint64(p.ID*131 + round*17 + i)
			if (p.ID+round+i)%3 == 0 {
				p.Write(a)
			} else {
				p.Read(a)
			}
			p.Compute(uint64(1 + (p.ID+i)%5))
		}
		// Contended critical section: every proc hammers a small set of
		// locks, including one global lock.
		p.Lock(p.ID % 4)
		p.Read(uint64(7000 + p.ID%4))
		p.Write(uint64(7000 + p.ID%4))
		p.Unlock(p.ID % 4)
		p.Lock(99)
		p.Compute(3)
		p.Unlock(99)
		p.Barrier()
	}
}

// TestCoordinatorStress runs many goroutine-backed processors through
// a lock/barrier-heavy workload and checks the two properties the
// sweep engine's determinism rests on: service timestamps never move
// backwards, and repeated runs produce the identical access trace and
// result, regardless of goroutine scheduling (run with -race to also
// exercise the memory model's single-writer invariant).
func TestCoordinatorStress(t *testing.T) {
	const procs = 32
	run := func() (Result, []traceEntry) {
		mem := &tracingMemory{lat: 4}
		r := Run(procs, mem, DefaultSyncCosts(), stressBody)
		return r, mem.trace
	}

	ref, refTrace := run()
	if ref.Accesses != int64(len(refTrace)) {
		t.Fatalf("result counts %d accesses, trace has %d", ref.Accesses, len(refTrace))
	}
	// 8 rounds × (6 loop accesses + 2 critical-section accesses) per proc.
	if want := int64(procs * 8 * 8); ref.Accesses != want {
		t.Fatalf("accesses = %d, want %d", ref.Accesses, want)
	}
	if want := int64(procs * 8); ref.Barriers != want {
		t.Fatalf("barriers = %d, want %d", ref.Barriers, want)
	}

	// Conservative discrete-event invariant: the coordinator serves
	// operations in global virtual-time order.
	for i := 1; i < len(refTrace); i++ {
		if refTrace[i].Now < refTrace[i-1].Now {
			t.Fatalf("service time moved backwards at access %d: %+v after %+v",
				i, refTrace[i], refTrace[i-1])
		}
	}

	for rep := 0; rep < 3; rep++ {
		r, trace := run()
		if !reflect.DeepEqual(r, ref) {
			t.Fatalf("rep %d: result %+v != %+v (nondeterministic)", rep, r, ref)
		}
		if !reflect.DeepEqual(trace, refTrace) {
			for i := range refTrace {
				if trace[i] != refTrace[i] {
					t.Fatalf("rep %d: access %d = %+v, want %+v", rep, i, trace[i], refTrace[i])
				}
			}
			t.Fatalf("rep %d: traces differ in length: %d vs %d", rep, len(trace), len(refTrace))
		}
	}
}
