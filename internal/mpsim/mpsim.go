// Package mpsim is an execution-driven multiprocessor simulator in the
// style of the CacheMire Test Bench used by the paper (Section 6.1):
// the parallel workloads really execute (as Go code, one goroutine per
// simulated processor), and every shared-memory reference is routed
// through an architecture timing model that delays the issuing
// processor by the appropriate latency.
//
// Timing model: each processor has a virtual clock. Memory operations
// are admitted in global virtual-time order (a conservative
// discrete-event scheme): no operation is serviced until every
// runnable processor has posted its next one, and the operation with
// the smallest timestamp (ties broken by processor id) goes first —
// which makes simulations deterministic regardless of goroutine
// scheduling. Locks and barriers are modelled in the same admission
// step with round-trip costs on the scale of the paper's remote
// operations.
//
// Admission structure: there is no dedicated coordinator goroutine,
// and the hot path is allocation-free. Posted operations live in
// per-processor preallocated slots and a binary min-heap keyed by
// (virtual time, processor id); the last runnable processor to post
// becomes the driver, serving heap-minimum operations inline under a
// mutex and waking the released processor directly over its reusable
// one-token channel — one goroutine handoff per admitted operation,
// and none at all when the driver releases itself. When a serve step
// leaves exactly one processor runnable, that processor is also handed
// an admission horizon (the (time, id) key of the earliest other
// posted operation) and services its own operations inline — no
// mutex, no channel — until its clock reaches the horizon; this makes
// single-processor runs and serialised phases of multiprocessor runs
// handoff-free while preserving the exact global service order.
//
// Concurrency invariant: although each simulated processor is a real
// goroutine, a workload body only executes between its grant and its
// next post, and grants are only issued by the driver once all
// previously released bodies have posted. Workload code may therefore
// update shared host-side data (matrices, particle arrays) without
// additional locking; all updates are totally ordered through the
// admission mutex and the per-processor grant channels.
package mpsim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Memory is the architecture timing model (implemented by
// internal/coherence.Machine).
type Memory interface {
	// Access services one reference and returns its latency in cycles.
	Access(proc int, addr uint64, write bool) uint64
}

// TimedMemory is an optional extension: models that track global time
// (e.g. protocol-engine occupancy) receive the issuing processor's
// virtual clock. When a Memory also implements TimedMemory, the
// simulator calls AccessAt instead of Access.
type TimedMemory interface {
	AccessAt(proc int, addr uint64, write bool, now uint64) uint64
}

// SyncCosts parameterises synchronisation latencies.
type SyncCosts struct {
	LockAcquire uint64 // uncontended lock acquire round trip
	LockHandoff uint64 // handoff to the next waiter
	Barrier     uint64 // barrier release after the last arrival
}

// DefaultSyncCosts uses the paper's remote round-trip scale (Table 6).
func DefaultSyncCosts() SyncCosts {
	return SyncCosts{LockAcquire: 80, LockHandoff: 80, Barrier: 80}
}

// Proc is a simulated processor handle passed to workload bodies.
// All methods must be called only from the body's own goroutine.
type Proc struct {
	ID int
	N  int // total processors

	sim     *sim
	pending uint64 // accumulated compute cycles not yet posted

	// Per-proc await outcome counters. await runs outside the admission
	// mutex, so these must be goroutine-local; Run sums them after the
	// pool joins.
	awaitImmediate int64
	awaitSpins     int64
	awaitParks     int64
}

// Read issues a shared-memory load.
func (p *Proc) Read(addr uint64) {
	p.op(opAccess, addr, false, 0)
}

// Write issues a shared-memory store.
func (p *Proc) Write(addr uint64) {
	p.op(opAccess, addr, true, 0)
}

// Compute advances the processor's clock by n cycles of local work.
// It is cheap (no synchronisation) — the time is folded into the next
// memory or synchronisation operation.
func (p *Proc) Compute(n uint64) { p.pending += n }

// Lock acquires the numbered lock (FIFO, with handoff latency).
// Lock ids must be small non-negative integers.
func (p *Proc) Lock(id int) { p.op(opLock, 0, false, id) }

// Unlock releases the numbered lock.
func (p *Proc) Unlock(id int) { p.op(opUnlock, 0, false, id) }

// Barrier joins the global barrier across all processors.
func (p *Proc) Barrier() { p.op(opBarrier, 0, false, 0) }

type opKind uint8

const (
	opAccess opKind = iota
	opLock
	opUnlock
	opBarrier
	opDone
)

// request is one posted operation. Each processor owns one slot in
// sim.slots for its lifetime: the body goroutine fills the slot while
// posting (under the admission mutex), and the slot is only read by
// whichever driver serves the operation — so no request is ever copied
// or heap-allocated per operation.
type request struct {
	kind   opKind
	write  bool
	addr   uint64
	lockID int
}

func (p *Proc) op(kind opKind, addr uint64, write bool, lockID int) {
	s := p.sim
	if s.fast[p.ID].ok && p.selfServe(kind, addr, write, lockID) {
		return
	}
	pid := int32(p.ID)
	s.mu.Lock()
	slot := &s.slots[pid]
	slot.kind = kind
	slot.addr = addr
	slot.write = write
	slot.lockID = lockID
	s.time[pid] += p.pending
	p.pending = 0
	s.push(pid)
	s.running--
	if s.running == 0 {
		// Last runnable body to post: this goroutine becomes the driver
		// and serves posted operations in (time, id) order until it
		// grants somebody — possibly itself, in which case await
		// consumes the gate without parking.
		s.drive()
	}
	// Spin for the grant only when it looked imminent at post time:
	// this processor's own operation leads the admission heap, so the
	// next driver pass serves it first.
	spin := len(s.heap) > 0 && s.heap[0] == pid
	s.mu.Unlock()
	p.await(spin)
}

// selfServe runs one operation inline in the processor's own
// goroutine, without a coordinator round trip. It is only entered when
// the last grant carried self-serve rights (this proc was the sole
// runnable processor, so it owns the coordinator state exclusively
// until its next post), and it only serves operations strictly below
// the admission horizon — the (time, id) key of the earliest other
// posted operation — so the global service order is exactly what the
// coordinator would have produced. Operations it cannot serve
// (synchronisation handoffs, anything at or past the horizon) return
// false and take the normal posted path.
func (p *Proc) selfServe(kind opKind, addr uint64, write bool, lockID int) bool {
	s := p.sim
	pid := int32(p.ID)
	h := &s.fast[p.ID]
	t := s.time[p.ID] + p.pending
	if t > h.time || (t == h.time && pid >= h.id) {
		return false
	}
	switch kind {
	case opAccess:
		p.pending = 0
		var lat uint64
		if s.tmem != nil {
			lat = s.tmem.AccessAt(p.ID, addr, write, t)
		} else {
			lat = s.mem.Access(p.ID, addr, write)
		}
		s.time[p.ID] = t + lat
		s.accesses++
		s.selfServes++ // owner-exclusive: plain increment is race-free
		return true
	case opLock:
		l := s.lock(lockID)
		if l.held {
			return false // will block: the coordinator parks it
		}
		p.pending = 0
		s.lockOps++
		s.selfServes++
		l.held = true
		l.owner = pid
		if l.lastFree > t {
			t = l.lastFree
		}
		s.time[p.ID] = t + s.costs.LockAcquire
		return true
	case opUnlock:
		l := s.lock(lockID)
		if !l.held || l.owner != pid || len(l.waiters) > 0 {
			// Handoffs (and misuse panics) go through the coordinator.
			return false
		}
		p.pending = 0
		s.lockOps++
		s.selfServes++
		s.time[p.ID] = t
		l.lastFree = t
		l.held = false
		return true
	}
	return false // barriers and done always post
}

// Result summarises one simulation run.
type Result struct {
	Procs      int
	Cycles     uint64   // completion time (max processor clock)
	ProcCycles []uint64 // per-processor finish times
	Accesses   int64
	LockOps    int64
	Barriers   int64
	Coord      CoordStats
}

// CoordStats is the admission machinery's own accounting: how
// operations were served (inline under self-serve rights vs. through
// the posted path), how grants were delivered (consumed at the spin
// gate vs. a goroutine park on the reply channel), and how deep the
// admission heap got. It is bookkeeping about the simulator, not the
// simulated machine, and costs plain field increments already under
// the admission mutex (or goroutine-local, for await outcomes).
type CoordStats struct {
	SelfServes     int64 // operations served inline, no mutex, no handoff
	Grants         int64 // grants issued through the posted path
	GateWakes      int64 // grants delivered via the spin gate CAS
	ChannelWakes   int64 // grants delivered via the park channel
	AwaitImmediate int64 // grant already pending when the waiter arrived
	AwaitSpins     int64 // grant consumed during (or right after) the spin loop
	AwaitParks     int64 // waiter parked on the reply channel
	MaxHeapDepth   int   // admission heap high-water mark
}

// Publish adds the coordinator accounting to reg's "mpsim" family
// (counters accumulate across runs; the heap depth is a high-water
// gauge). A nil registry is a no-op.
func (c CoordStats) Publish(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("mpsim", "self_serves").Add(c.SelfServes)
	reg.Counter("mpsim", "grants").Add(c.Grants)
	reg.Counter("mpsim", "gate_wakes").Add(c.GateWakes)
	reg.Counter("mpsim", "channel_wakes").Add(c.ChannelWakes)
	reg.Counter("mpsim", "await_immediate").Add(c.AwaitImmediate)
	reg.Counter("mpsim", "await_spins").Add(c.AwaitSpins)
	reg.Counter("mpsim", "await_parks").Add(c.AwaitParks)
	reg.Gauge("mpsim", "heap_depth_max").SetMax(int64(c.MaxHeapDepth))
}

// Deterministic returns a copy with the wake-delivery accounting
// (gate vs. channel split, immediate/spin/park await outcomes) zeroed.
// Those fields depend on host goroutine scheduling by design: what is
// granted, and at which virtual time, never varies, but which doorbell
// delivers a grant does. Determinism tests compare Results after
// applying this; SelfServes, Grants, and MaxHeapDepth stay exact.
func (c CoordStats) Deterministic() CoordStats {
	c.GateWakes = 0
	c.ChannelWakes = 0
	c.AwaitImmediate = 0
	c.AwaitSpins = 0
	c.AwaitParks = 0
	return c
}

// Imbalance returns the load imbalance: max finish time over mean
// finish time (1.0 = perfectly balanced). A high value means barriers
// and partitioning, not the memory system, bound the run.
func (r Result) Imbalance() float64 {
	if len(r.ProcCycles) == 0 || r.Cycles == 0 {
		return 1
	}
	var sum uint64
	for _, t := range r.ProcCycles {
		sum += t
	}
	mean := float64(sum) / float64(len(r.ProcCycles))
	if mean == 0 {
		return 1
	}
	return float64(r.Cycles) / mean
}

// sim is the coordinator state.
type sim struct {
	mem   Memory
	tmem  TimedMemory // non-nil when mem implements TimedMemory
	costs SyncCosts
	n     int

	mu    sync.Mutex      // admission mutex: guards all fields below
	gates []gate          // per-proc spin-then-park grant gates
	reply []chan struct{} // per-proc park channels, used when a spin misses
	slots []request       // per-proc posted-operation slots

	time    []uint64
	heap    []int32 // min-heap of posted procs keyed by (time, proc id)
	running int     // bodies currently executing (granted, post not yet arrived)
	alive   int     // procs that have not finished

	locks []lockState // keyed by lock id
	bar   barrierState

	fast []horizon // per-proc self-serve rights, written before a grant

	accesses int64
	lockOps  int64
	barriers int64

	// Coordinator accounting (see CoordStats). All written under s.mu
	// except the per-proc await outcomes, which live on each Proc.
	selfServes int64
	grants     int64
	gateWakes  int64
	chanWakes  int64
	maxHeap    int
}

// horizon is a processor's self-serve admission bound: the (time, id)
// key of the earliest operation posted by any other processor at grant
// time. The driver writes it immediately before granting the
// processor, and only that processor reads it (synchronised by the
// grant gate), so there is never a concurrent access.
type horizon struct {
	time uint64
	id   int32
	ok   bool
}

// gate is a one-shot grant flag between the driver and a waiting
// processor, padded to a cache line so spinning waiters do not false-
// share. States: 0 no grant pending, 1 granted, 2 waiter parked on the
// reply channel. A waiter whose grant is likely imminent (its
// operation is at the top of the admission heap) spins on the gate and
// usually consumes the grant without a goroutine park/wake at all; the
// channel is the fallback. The atomic gate transfers state ownership:
// the driver's writes under the mutex happen-before the waiter's
// successful CAS of 1→0.
type gate struct {
	v atomic.Uint32
	_ [15]uint32
}

// spinIters bounds the gate spin. The mid-spin Gosched keeps
// GOMAXPROCS=1 runs cheap: it yields to the driver, which posts the
// grant, and the resumed spinner consumes it without a park.
const spinIters = 1536

// await consumes this processor's next grant: first the fast gate
// (optionally spinning when the grant looked imminent at post time),
// then the park channel.
func (p *Proc) await(spin bool) {
	g := &p.sim.gates[p.ID].v
	if g.CompareAndSwap(1, 0) {
		p.awaitImmediate++
		return
	}
	if spin {
		for i := 0; i < spinIters; i++ {
			if g.Load() == 1 && g.CompareAndSwap(1, 0) {
				p.awaitSpins++
				return
			}
			if i == 512 {
				runtime.Gosched()
			}
		}
	}
	if g.CompareAndSwap(0, 2) {
		<-p.sim.reply[p.ID] // driver saw the parked state and sent a token
		p.awaitParks++
		return
	}
	// The grant landed between the spin and the CAS: consumed without a
	// park, so it counts as a spin outcome.
	g.Store(0)
	p.awaitSpins++
}

// wake delivers a grant to pid: through the gate if the waiter is
// still spinning (or has not reached await yet), through the channel
// if it already parked.
func (s *sim) wake(pid int32) {
	if !s.gates[pid].v.CompareAndSwap(0, 1) {
		s.gates[pid].v.Store(0)
		s.chanWakes++ // wake always runs under s.mu
		s.reply[pid] <- struct{}{}
		return
	}
	s.gateWakes++
}

type lockState struct {
	held     bool
	owner    int32
	lastFree uint64  // virtual time the lock was last released
	waiters  []int32 // FIFO of blocked proc ids
}

type barrierState struct {
	waiting []int32 // arrived (blocked) proc ids; len() is the arrival count
	maxTime uint64
}

// Run executes body on n simulated processors over the memory model.
// It returns when every body has finished.
func Run(n int, mem Memory, costs SyncCosts, body func(p *Proc)) Result {
	if n < 1 {
		panic("mpsim: need at least one processor")
	}
	s := &sim{
		mem:   mem,
		costs: costs,
		n:     n,
		gates: make([]gate, n),
		reply: make([]chan struct{}, n),
		slots: make([]request, n),
		time:  make([]uint64, n),
		heap:  make([]int32, 0, n),
		fast:  make([]horizon, n),
		bar:   barrierState{waiting: make([]int32, 0, n)},

		running: n,
		alive:   n,
	}
	s.tmem, _ = mem.(TimedMemory)
	// Admission panics (deadlock, lock misuse) are raised inside a
	// processor goroutine — the one driving at the time — and rethrown
	// here so callers can recover them as before.
	panicCh := make(chan any, 1)
	var wg sync.WaitGroup
	// Retained so the per-proc await outcome counters can be summed
	// after the pool joins (one constant allocation per run, not per op).
	procs := make([]*Proc, n)
	for i := 0; i < n; i++ {
		s.reply[i] = make(chan struct{}, 1)
		p := &Proc{ID: i, N: n, sim: s}
		procs[i] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					select {
					case panicCh <- r:
					default:
					}
				}
			}()
			body(p)
			p.op(opDone, 0, false, 0)
		}()
	}
	allDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(allDone)
	}()
	select {
	case <-allDone:
	case r := <-panicCh:
		panic(r)
	}

	res := Result{
		Procs:      n,
		ProcCycles: s.time,
		Accesses:   s.accesses,
		LockOps:    s.lockOps,
		Barriers:   s.barriers,
		Coord: CoordStats{
			SelfServes:   s.selfServes,
			Grants:       s.grants,
			GateWakes:    s.gateWakes,
			ChannelWakes: s.chanWakes,
			MaxHeapDepth: s.maxHeap,
		},
	}
	for _, p := range procs {
		res.Coord.AwaitImmediate += p.awaitImmediate
		res.Coord.AwaitSpins += p.awaitSpins
		res.Coord.AwaitParks += p.awaitParks
	}
	for _, t := range s.time {
		if t > res.Cycles {
			res.Cycles = t
		}
	}
	return res
}

// drive is the coordinator logic, run inline (under s.mu) by the last
// runnable processor to post: serve posted operations in (time, id)
// order until at least one body is released to run. There is no
// dedicated coordinator goroutine — the admitting handoff goes
// directly from the posting processor to the processor it releases,
// which halves the goroutine wakeups per admitted operation, and a
// processor whose own operation is the global minimum grants itself
// and continues without parking at all.
func (s *sim) drive() {
	for s.running == 0 {
		if len(s.heap) == 0 {
			if s.alive == 0 {
				return
			}
			// Everyone alive is blocked: this is a workload deadlock
			// (e.g. a barrier not joined by all procs). Fail loudly.
			panic("mpsim: deadlock — all processors blocked")
		}
		s.serve(s.pop())
	}
}

// less orders posted procs by (virtual time, proc id) — the admission
// order the package doc promises.
func (s *sim) less(a, b int32) bool {
	ta, tb := s.time[a], s.time[b]
	return ta < tb || (ta == tb && a < b)
}

// push adds a posted proc to the admission heap. The backing array is
// preallocated to n, so steady-state pushes never allocate.
func (s *sim) push(pid int32) {
	h := append(s.heap, pid)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.heap = h
	if len(h) > s.maxHeap {
		s.maxHeap = len(h)
	}
}

// pop removes and returns the earliest posted proc.
func (s *sim) pop() int32 {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && s.less(h[l], h[min]) {
			min = l
		}
		if r < len(h) && s.less(h[r], h[min]) {
			min = r
		}
		if min == i {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	s.heap = h
	return top
}

// grant releases the proc to run its body until its next post. The
// reply channels are buffered, so the send never blocks the driver.
// It revokes any stale self-serve rights: the plain grant is used
// whenever another body may run concurrently (lock handoffs, barrier
// releases).
func (s *sim) grant(pid int32) {
	s.fast[pid].ok = false
	s.running++
	s.grants++
	s.wake(pid)
}

// grantFast is grant for serve steps that release exactly one
// processor. When no other body is runnable (running == 0 — always
// true for single-grant steps, by the drive-loop invariant), the
// granted processor becomes the sole owner of the simulation state
// until its next post, so it is handed the admission horizon and may
// serve its own operations inline, with no mutex and no handoff,
// while it stays below that horizon.
func (s *sim) grantFast(pid int32) {
	if s.running != 0 {
		s.grant(pid)
		return
	}
	h := &s.fast[pid]
	if len(s.heap) > 0 {
		top := s.heap[0]
		h.time, h.id, h.ok = s.time[top], top, true
	} else {
		h.time, h.id, h.ok = ^uint64(0), int32(1<<30), true
	}
	s.running++
	s.grants++
	s.wake(pid)
}

// lock returns the state for the lock id, growing the slot table on
// first use (lock ids are dense small integers in every workload).
func (s *sim) lock(id int) *lockState {
	if id < 0 {
		panic(fmt.Sprintf("mpsim: negative lock id %d", id))
	}
	for len(s.locks) <= id {
		s.locks = append(s.locks, lockState{})
	}
	return &s.locks[id]
}

func (s *sim) serve(pid int32) {
	r := &s.slots[pid]
	switch r.kind {
	case opAccess:
		var lat uint64
		if s.tmem != nil {
			lat = s.tmem.AccessAt(int(pid), r.addr, r.write, s.time[pid])
		} else {
			lat = s.mem.Access(int(pid), r.addr, r.write)
		}
		s.time[pid] += lat
		s.accesses++
		s.grantFast(pid)

	case opLock:
		s.lockOps++
		l := s.lock(r.lockID)
		if !l.held {
			l.held = true
			l.owner = pid
			t := s.time[pid]
			if l.lastFree > t {
				t = l.lastFree
			}
			s.time[pid] = t + s.costs.LockAcquire
			s.grantFast(pid)
			return
		}
		// Block until handoff (no grant: the proc posts nothing more
		// until the lock holder releases it).
		l.waiters = append(l.waiters, pid)

	case opUnlock:
		s.lockOps++
		l := s.lock(r.lockID)
		if !l.held || l.owner != pid {
			panic(fmt.Sprintf("mpsim: proc %d unlocking lock %d it does not hold",
				pid, r.lockID))
		}
		now := s.time[pid]
		l.lastFree = now
		if len(l.waiters) > 0 {
			w := l.waiters[0]
			l.waiters = l.waiters[:copy(l.waiters, l.waiters[1:])]
			l.owner = w
			t := s.time[w]
			if now > t {
				t = now
			}
			s.time[w] = t + s.costs.LockHandoff
			// Two grants: the waiter and the unlocker run concurrently,
			// so neither may self-serve.
			s.grant(w)
			s.grant(pid)
			return
		}
		l.held = false
		s.grantFast(pid)

	case opBarrier:
		s.barriers++
		s.bar.waiting = append(s.bar.waiting, pid)
		if s.time[pid] > s.bar.maxTime {
			s.bar.maxTime = s.time[pid]
		}
		if len(s.bar.waiting) >= s.alive {
			s.releaseBarrier()
		}

	case opDone:
		s.alive--
		s.wake(pid) // final grant: the body has returned
		// A processor finishing can complete a barrier among the
		// remaining ones.
		if len(s.bar.waiting) > 0 && len(s.bar.waiting) >= s.alive {
			s.releaseBarrier()
		}
	}
}

// releaseBarrier releases all current barrier waiters at the barrier
// completion time.
func (s *sim) releaseBarrier() {
	release := s.bar.maxTime + s.costs.Barrier
	if len(s.bar.waiting) == 1 {
		// Sole waiter (single-processor runs, or the last survivor of a
		// shrinking barrier): it resumes alone, so it keeps self-serve
		// rights across the barrier.
		w := s.bar.waiting[0]
		s.time[w] = release
		s.grantFast(w)
	} else {
		for _, w := range s.bar.waiting {
			s.time[w] = release
			s.grant(w)
		}
	}
	s.bar.waiting = s.bar.waiting[:0]
	s.bar.maxTime = 0
}

// Speedup computes relative speedups from a series of Results ordered
// by processor count, normalised to the first entry.
func Speedup(results []Result) []float64 {
	out := make([]float64, len(results))
	if len(results) == 0 || results[0].Cycles == 0 {
		return out
	}
	base := float64(results[0].Cycles)
	for i, r := range results {
		if r.Cycles > 0 {
			out[i] = base / float64(r.Cycles)
		}
	}
	return out
}

// SortByProcs sorts results by processor count (helper for reports).
func SortByProcs(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Procs < rs[j].Procs })
}
