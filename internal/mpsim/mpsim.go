// Package mpsim is an execution-driven multiprocessor simulator in the
// style of the CacheMire Test Bench used by the paper (Section 6.1):
// the parallel workloads really execute (as Go code, one goroutine per
// simulated processor), and every shared-memory reference is routed
// through an architecture timing model that delays the issuing
// processor by the appropriate latency.
//
// Timing model: each processor has a virtual clock. A central
// coordinator admits memory operations in global virtual-time order
// (a conservative discrete-event scheme): it waits until every
// runnable processor has posted its next operation, then services the
// operation with the smallest timestamp (ties broken by processor id),
// which makes simulations deterministic regardless of goroutine
// scheduling. Locks and barriers are modelled in the coordinator with
// round-trip costs on the same scale as the paper's remote operations.
//
// Concurrency invariant: although each simulated processor is a real
// goroutine, exactly one workload body executes between coordinator
// handoffs — every other body is blocked waiting for its operation
// reply, and the coordinator will not grant a second reply until the
// running body posts its next operation. Workload code may therefore
// update shared host-side data (matrices, particle arrays) without
// additional locking; all updates are totally ordered through the
// coordinator's channels.
package mpsim

import (
	"fmt"
	"sort"
	"sync"
)

// Memory is the architecture timing model (implemented by
// internal/coherence.Machine).
type Memory interface {
	// Access services one reference and returns its latency in cycles.
	Access(proc int, addr uint64, write bool) uint64
}

// TimedMemory is an optional extension: models that track global time
// (e.g. protocol-engine occupancy) receive the issuing processor's
// virtual clock. When a Memory also implements TimedMemory, the
// simulator calls AccessAt instead of Access.
type TimedMemory interface {
	AccessAt(proc int, addr uint64, write bool, now uint64) uint64
}

// SyncCosts parameterises synchronisation latencies.
type SyncCosts struct {
	LockAcquire uint64 // uncontended lock acquire round trip
	LockHandoff uint64 // handoff to the next waiter
	Barrier     uint64 // barrier release after the last arrival
}

// DefaultSyncCosts uses the paper's remote round-trip scale (Table 6).
func DefaultSyncCosts() SyncCosts {
	return SyncCosts{LockAcquire: 80, LockHandoff: 80, Barrier: 80}
}

// Proc is a simulated processor handle passed to workload bodies.
// All methods must be called only from the body's own goroutine.
type Proc struct {
	ID int
	N  int // total processors

	sim     *sim
	pending uint64 // accumulated compute cycles not yet posted
}

// Read issues a shared-memory load.
func (p *Proc) Read(addr uint64) {
	p.op(opAccess, addr, false, 0)
}

// Write issues a shared-memory store.
func (p *Proc) Write(addr uint64) {
	p.op(opAccess, addr, true, 0)
}

// Compute advances the processor's clock by n cycles of local work.
// It is cheap (no synchronisation) — the time is folded into the next
// memory or synchronisation operation.
func (p *Proc) Compute(n uint64) { p.pending += n }

// Lock acquires the numbered lock (FIFO, with handoff latency).
func (p *Proc) Lock(id int) { p.op(opLock, 0, false, id) }

// Unlock releases the numbered lock.
func (p *Proc) Unlock(id int) { p.op(opUnlock, 0, false, id) }

// Barrier joins the global barrier across all processors.
func (p *Proc) Barrier() { p.op(opBarrier, 0, false, 0) }

type opKind uint8

const (
	opAccess opKind = iota
	opLock
	opUnlock
	opBarrier
	opDone
)

type request struct {
	proc    int
	kind    opKind
	addr    uint64
	write   bool
	lockID  int
	compute uint64
	reply   chan struct{}
}

func (p *Proc) op(kind opKind, addr uint64, write bool, lockID int) {
	r := request{
		proc: p.ID, kind: kind, addr: addr, write: write,
		lockID: lockID, compute: p.pending,
		reply: make(chan struct{}),
	}
	p.pending = 0
	p.sim.reqCh <- r
	<-r.reply
}

// Result summarises one simulation run.
type Result struct {
	Procs      int
	Cycles     uint64   // completion time (max processor clock)
	ProcCycles []uint64 // per-processor finish times
	Accesses   int64
	LockOps    int64
	Barriers   int64
}

// Imbalance returns the load imbalance: max finish time over mean
// finish time (1.0 = perfectly balanced). A high value means barriers
// and partitioning, not the memory system, bound the run.
func (r Result) Imbalance() float64 {
	if len(r.ProcCycles) == 0 || r.Cycles == 0 {
		return 1
	}
	var sum uint64
	for _, t := range r.ProcCycles {
		sum += t
	}
	mean := float64(sum) / float64(len(r.ProcCycles))
	if mean == 0 {
		return 1
	}
	return float64(r.Cycles) / mean
}

// sim is the coordinator state.
type sim struct {
	mem   Memory
	costs SyncCosts
	n     int

	reqCh chan request

	time    []uint64
	posted  []*request
	blocked []bool // waiting on a lock or barrier (no posted op expected)
	done    []bool

	locks map[int]*lockState
	bar   *barrierState

	accesses int64
	lockOps  int64
	barriers int64
}

type lockState struct {
	held     bool
	owner    int
	lastFree uint64 // virtual time the lock was last released
	waiters  []*request
}

type barrierState struct {
	waiting []*request
	arrived int
	maxTime uint64
}

// Run executes body on n simulated processors over the memory model.
// It returns when every body has finished.
func Run(n int, mem Memory, costs SyncCosts, body func(p *Proc)) Result {
	if n < 1 {
		panic("mpsim: need at least one processor")
	}
	s := &sim{
		mem:     mem,
		costs:   costs,
		n:       n,
		reqCh:   make(chan request, n),
		time:    make([]uint64, n),
		posted:  make([]*request, n),
		blocked: make([]bool, n),
		done:    make([]bool, n),
		locks:   make(map[int]*lockState),
		bar:     &barrierState{},
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		p := &Proc{ID: i, N: n, sim: s}
		wg.Add(1)
		go func() {
			defer wg.Done()
			body(p)
			p.op(opDone, 0, false, 0)
		}()
	}
	s.loop()
	wg.Wait()

	res := Result{
		Procs:      n,
		ProcCycles: s.time,
		Accesses:   s.accesses,
		LockOps:    s.lockOps,
		Barriers:   s.barriers,
	}
	for _, t := range s.time {
		if t > res.Cycles {
			res.Cycles = t
		}
	}
	return res
}

// loop is the coordinator: gather one posted op per runnable proc,
// serve the earliest, repeat until all procs are done.
func (s *sim) loop() {
	for {
		if s.allDone() {
			return
		}
		// Collect until every runnable, non-done proc has posted.
		for s.missingPosts() {
			r := <-s.reqCh
			rr := r
			s.time[r.proc] += r.compute
			s.posted[r.proc] = &rr
		}
		idx := s.earliest()
		if idx < 0 {
			// Everyone alive is blocked: this is a workload deadlock
			// (e.g. a barrier not joined by all procs). Fail loudly.
			panic("mpsim: deadlock — all processors blocked")
		}
		r := s.posted[idx]
		s.posted[idx] = nil
		s.serve(r)
	}
}

func (s *sim) allDone() bool {
	for _, d := range s.done {
		if !d {
			return false
		}
	}
	return true
}

func (s *sim) missingPosts() bool {
	for i := 0; i < s.n; i++ {
		if !s.done[i] && !s.blocked[i] && s.posted[i] == nil {
			return true
		}
	}
	return false
}

func (s *sim) earliest() int {
	best := -1
	for i := 0; i < s.n; i++ {
		if s.posted[i] == nil {
			continue
		}
		if best < 0 || s.time[i] < s.time[best] {
			best = i
		}
	}
	return best
}

func (s *sim) serve(r *request) {
	switch r.kind {
	case opAccess:
		var lat uint64
		if tm, ok := s.mem.(TimedMemory); ok {
			lat = tm.AccessAt(r.proc, r.addr, r.write, s.time[r.proc])
		} else {
			lat = s.mem.Access(r.proc, r.addr, r.write)
		}
		s.time[r.proc] += lat
		s.accesses++
		close(r.reply)

	case opLock:
		s.lockOps++
		l := s.locks[r.lockID]
		if l == nil {
			l = &lockState{}
			s.locks[r.lockID] = l
		}
		if !l.held {
			l.held = true
			l.owner = r.proc
			t := s.time[r.proc]
			if l.lastFree > t {
				t = l.lastFree
			}
			s.time[r.proc] = t + s.costs.LockAcquire
			close(r.reply)
			return
		}
		// Block until handoff.
		s.blocked[r.proc] = true
		l.waiters = append(l.waiters, r)

	case opUnlock:
		s.lockOps++
		l := s.locks[r.lockID]
		if l == nil || !l.held || l.owner != r.proc {
			panic(fmt.Sprintf("mpsim: proc %d unlocking lock %d it does not hold",
				r.proc, r.lockID))
		}
		now := s.time[r.proc]
		l.lastFree = now
		if len(l.waiters) > 0 {
			w := l.waiters[0]
			l.waiters = l.waiters[1:]
			l.owner = w.proc
			s.blocked[w.proc] = false
			t := s.time[w.proc]
			if now > t {
				t = now
			}
			s.time[w.proc] = t + s.costs.LockHandoff
			close(w.reply)
		} else {
			l.held = false
		}
		close(r.reply)

	case opBarrier:
		s.barriers++
		b := s.bar
		b.waiting = append(b.waiting, r)
		b.arrived++
		if s.time[r.proc] > b.maxTime {
			b.maxTime = s.time[r.proc]
		}
		if b.arrived < s.alive() {
			s.blocked[r.proc] = true
			return
		}
		s.releaseBarrier()

	case opDone:
		s.done[r.proc] = true
		close(r.reply)
		// A processor finishing can complete a barrier among the
		// remaining ones.
		if s.bar.arrived > 0 && s.bar.arrived >= s.alive() {
			s.releaseBarrier()
		}
	}
}

// releaseBarrier releases all current barrier waiters at the barrier
// completion time.
func (s *sim) releaseBarrier() {
	release := s.bar.maxTime + s.costs.Barrier
	for _, w := range s.bar.waiting {
		s.time[w.proc] = release
		s.blocked[w.proc] = false
		close(w.reply)
	}
	s.bar = &barrierState{}
}

// alive counts processors that have not finished.
func (s *sim) alive() int {
	n := 0
	for _, d := range s.done {
		if !d {
			n++
		}
	}
	return n
}

// Speedup computes relative speedups from a series of Results ordered
// by processor count, normalised to the first entry.
func Speedup(results []Result) []float64 {
	out := make([]float64, len(results))
	if len(results) == 0 || results[0].Cycles == 0 {
		return out
	}
	base := float64(results[0].Cycles)
	for i, r := range results {
		if r.Cycles > 0 {
			out[i] = base / float64(r.Cycles)
		}
	}
	return out
}

// SortByProcs sorts results by processor count (helper for reports).
func SortByProcs(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Procs < rs[j].Procs })
}
