package mpsim

import "testing"

// opsBody issues a deterministic mix of reads, writes, locks, and
// barriers totalling `ops` coordinator operations per processor (the
// steady-state operation mix of a SPLASH kernel).
func opsBody(ops int) func(p *Proc) {
	return func(p *Proc) {
		for i := 0; i < ops; i++ {
			a := uint64(p.ID*977 + i)
			switch {
			case i%97 == 96:
				p.Lock(p.ID % 3)
				p.Unlock(p.ID % 3)
			case i%251 == 250:
				p.Barrier()
			case i%3 == 0:
				p.Write(a)
			default:
				p.Read(a)
			}
			p.Compute(uint64(i % 7))
		}
	}
}

// TestRunZeroAllocsPerOp pins the coordinator hot path at ~0 heap
// allocations per steady-state operation (the analogue of
// memsys.TestAccessNsZeroAllocs for the multiprocessor path). Run has
// fixed startup costs — goroutines, the heap, the reply channels — so
// the guard measures the marginal allocations between a short and a
// long run of the same body and requires them to vanish per op.
func TestRunZeroAllocsPerOp(t *testing.T) {
	const procs = 4
	measure := func(ops int) float64 {
		return testing.AllocsPerRun(5, func() {
			Run(procs, &flatMemory{lat: 3}, DefaultSyncCosts(), opsBody(ops))
		})
	}
	short := measure(500)
	long := measure(10_500)
	perOp := (long - short) / float64(procs*10_000)
	if perOp > 0.01 {
		t.Errorf("coordinator allocates %.4f allocs per steady-state op (short run %.0f, long run %.0f), want ~0",
			perOp, short, long)
	}
}

// BenchmarkCoordinatorOps measures the coordinator alone — a flat
// memory model, so ns/op is the cost of one posted-and-served
// operation: slot write, handoff, heap push/pop, grant.
func BenchmarkCoordinatorOps(b *testing.B) {
	const procs = 4
	b.ReportAllocs()
	perProc := b.N/procs + 1
	b.ResetTimer()
	Run(procs, &flatMemory{lat: 3}, DefaultSyncCosts(), opsBody(perProc))
}
