// Package report renders the reproduction's tables and figures as
// fixed-width text. "Figures" (the paper's bar charts and line plots)
// are rendered as numeric series tables plus ASCII bars, which keeps
// the output diffable and dependency-free.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; values are formatted with %v, floats with 4
// significant digits.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote printed under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case float64:
		if v == math.Trunc(v) && math.Abs(v) < 1e6 {
			return fmt.Sprintf("%.1f", v)
		}
		return fmt.Sprintf("%.4g", v)
	case float32:
		return formatCell(float64(v))
	default:
		return fmt.Sprintf("%v", c)
	}
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var total int
	for _, wd := range widths {
		total += wd + 2
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", max(len(t.Title), total)))
	}
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s", widths[i]+2, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s", widths[i]+2, cell)
			}
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Bars renders a labelled horizontal bar chart for one group of values
// (a "figure" in text form). Values are scaled to maxWidth characters.
type Bars struct {
	Title    string
	MaxWidth int
	items    []barItem
}

type barItem struct {
	label string
	value float64
	unit  string
}

// NewBars creates a bar chart.
func NewBars(title string) *Bars { return &Bars{Title: title, MaxWidth: 48} }

// Add appends one bar.
func (b *Bars) Add(label string, value float64, unit string) {
	b.items = append(b.items, barItem{label, value, unit})
}

// Render writes the chart to w.
func (b *Bars) Render(w io.Writer) {
	if b.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", b.Title, strings.Repeat("-", len(b.Title)))
	}
	var maxV float64
	maxL := 0
	for _, it := range b.items {
		if it.value > maxV {
			maxV = it.value
		}
		if len(it.label) > maxL {
			maxL = len(it.label)
		}
	}
	for _, it := range b.items {
		n := 0
		if maxV > 0 {
			n = int(it.value / maxV * float64(b.MaxWidth))
		}
		fmt.Fprintf(w, "%-*s %8.4g %-4s |%s\n",
			maxL+1, it.label, it.value, it.unit, strings.Repeat("#", n))
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (b *Bars) String() string {
	var sb strings.Builder
	b.Render(&sb)
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
