package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series renders multi-series line plots as ASCII — the closest text
// form to the paper's Figures 11–17. Each series is a set of (x, y)
// points; the plot is a character grid with one marker per series and
// a legend. X values are treated as ordinal categories (the paper's
// processor counts and latencies are discrete sweeps).
type Series struct {
	Title  string
	XLabel string
	YLabel string
	Height int // plot rows (default 12)

	names  []string
	marks  []byte
	points map[string]map[float64]float64
	xs     map[float64]bool
}

// seriesMarks are assigned to series in order.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@'}

// NewSeries creates an empty plot.
func NewSeries(title, xlabel, ylabel string) *Series {
	return &Series{
		Title: title, XLabel: xlabel, YLabel: ylabel, Height: 12,
		points: map[string]map[float64]float64{},
		xs:     map[float64]bool{},
	}
}

// Add records one point of the named series.
func (s *Series) Add(name string, x, y float64) {
	if _, ok := s.points[name]; !ok {
		s.points[name] = map[float64]float64{}
		s.names = append(s.names, name)
		s.marks = append(s.marks, seriesMarks[(len(s.names)-1)%len(seriesMarks)])
	}
	s.points[name][x] = y
	s.xs[x] = true
}

// Render writes the plot to w.
func (s *Series) Render(w io.Writer) {
	if len(s.xs) == 0 {
		fmt.Fprintf(w, "%s\n(no data)\n\n", s.Title)
		return
	}
	xs := make([]float64, 0, len(s.xs))
	for x := range s.xs {
		xs = append(xs, x)
	}
	sort.Float64s(xs)

	// Y range over all points.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, pts := range s.points {
		for _, y := range pts {
			lo = math.Min(lo, y)
			hi = math.Max(hi, y)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	// Pad the top a little so maxima are visible inside the frame.
	span := hi - lo
	hi += span * 0.05
	lo -= span * 0.05
	if lo < 0 && span > 0 {
		lo = math.Max(lo, 0)
	}

	height := s.Height
	if height < 4 {
		height = 4
	}
	const colWidth = 6
	width := len(xs) * colWidth

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, name := range s.names {
		for xi, x := range xs {
			y, ok := s.points[name][x]
			if !ok {
				continue
			}
			row := int((hi - y) / (hi - lo) * float64(height-1))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := xi*colWidth + colWidth/2
			if grid[row][col] == ' ' {
				grid[row][col] = s.marks[si]
			} else {
				grid[row][col] = '&' // overlapping series
			}
		}
	}

	if s.Title != "" {
		fmt.Fprintf(w, "%s\n%s\n", s.Title, strings.Repeat("-", len(s.Title)))
	}
	for i, row := range grid {
		yTick := hi - (hi-lo)*float64(i)/float64(height-1)
		fmt.Fprintf(w, "%10.3g |%s\n", yTick, string(row))
	}
	fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width))
	// X axis labels.
	var xrow strings.Builder
	for _, x := range xs {
		xrow.WriteString(fmt.Sprintf("%*g", colWidth, x))
	}
	fmt.Fprintf(w, "%10s  %s  (%s)\n", "", xrow.String(), s.XLabel)
	// Legend.
	for si, name := range s.names {
		fmt.Fprintf(w, "%10s  %c = %s\n", "", s.marks[si], name)
	}
	if s.YLabel != "" {
		fmt.Fprintf(w, "%10s  y: %s ('&' marks overlapping series)\n", "", s.YLabel)
	}
	fmt.Fprintln(w)
}

// String renders to a string.
func (s *Series) String() string {
	var b strings.Builder
	s.Render(&b)
	return b.String()
}
