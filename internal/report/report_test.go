package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("My Table", "name", "value")
	tab.Row("alpha", 1.5)
	tab.Row("beta", "text")
	tab.Note("a footnote")
	out := tab.String()
	for _, want := range []string{"My Table", "name", "value", "alpha", "1.5", "beta", "text", "note: a footnote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableColumnAlignment(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.Row("longer-cell", "x")
	out := tab.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header and row must place column b at the same offset.
	head := lines[0]
	row := lines[len(lines)-1]
	if strings.Index(head, "b") != strings.Index(row, "x") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestFormatCell(t *testing.T) {
	cases := map[interface{}]string{
		3.0:        "3.0",
		3.14159:    "3.142",
		42:         "42",
		"s":        "s",
		float32(2): "2.0",
	}
	for in, want := range cases {
		if got := formatCell(in); got != want {
			t.Errorf("formatCell(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestBarsRender(t *testing.T) {
	b := NewBars("Chart")
	b.Add("one", 1, "x")
	b.Add("two", 2, "x")
	out := b.String()
	if !strings.Contains(out, "Chart") || !strings.Contains(out, "one") {
		t.Errorf("bars output missing labels:\n%s", out)
	}
	// The larger value must have the longer bar.
	var oneHashes, twoHashes int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "#")
		if strings.HasPrefix(line, "one") {
			oneHashes = n
		}
		if strings.HasPrefix(line, "two") {
			twoHashes = n
		}
	}
	if twoHashes <= oneHashes {
		t.Errorf("bar lengths wrong: one=%d two=%d\n%s", oneHashes, twoHashes, out)
	}
}

func TestBarsZeroValues(t *testing.T) {
	b := NewBars("z")
	b.Add("only", 0, "")
	if out := b.String(); !strings.Contains(out, "only") {
		t.Error("zero-valued bars must still render")
	}
}

func TestSeriesRender(t *testing.T) {
	s := NewSeries("Speedup", "procs", "cycles")
	for _, p := range []float64{1, 2, 4, 8} {
		s.Add("reference", p, 100/p)
		s.Add("integrated", p, 80/p)
	}
	out := s.String()
	for _, want := range []string{"Speedup", "procs", "reference", "integrated", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("series plot missing %q:\n%s", want, out)
		}
	}
	// The higher series' marker must appear on an earlier (higher) row
	// than the lower one at x=1.
	lines := strings.Split(out, "\n")
	rowOf := func(mark string) int {
		for i, l := range lines {
			if strings.Contains(l, mark) && strings.Contains(l, "|") {
				return i
			}
		}
		return -1
	}
	if rowOf("*") >= rowOf("o") && rowOf("o") >= 0 {
		t.Errorf("series ordering wrong:\n%s", out)
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("empty", "x", "y")
	if !strings.Contains(s.String(), "no data") {
		t.Error("empty series must say so")
	}
}

func TestSeriesFlatLine(t *testing.T) {
	s := NewSeries("flat", "x", "y")
	s.Add("a", 1, 5)
	s.Add("a", 2, 5)
	if out := s.String(); !strings.Contains(out, "*") {
		t.Errorf("flat series lost its points:\n%s", out)
	}
}

func TestSeriesOverlapMarker(t *testing.T) {
	s := NewSeries("overlap", "x", "y")
	s.Add("a", 1, 5)
	s.Add("b", 1, 5)
	if out := s.String(); !strings.Contains(out, "&") {
		t.Errorf("overlapping points not marked:\n%s", out)
	}
}
