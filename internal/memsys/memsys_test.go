package memsys

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func TestSS5HitAndMiss(t *testing.T) {
	h := SS5()
	// Cold miss costs memory latency; the refill makes the retry a hit.
	if got := h.AccessNs(0, trace.Load); got != h.MemoryNs {
		t.Errorf("cold access = %v ns, want %v", got, h.MemoryNs)
	}
	if got := h.AccessNs(0, trace.Load); got != h.Levels[0].LatencyNs {
		t.Errorf("warm access = %v ns, want L1 latency", got)
	}
}

func TestSS10LevelsFill(t *testing.T) {
	h := SS10()
	h.AccessNs(0, trace.Load) // memory; fills L1 and L2
	// Evict from 16 KB L1 with an aliasing address, keep in 1 MB L2.
	h.AccessNs(16<<10, trace.Load)
	if got := h.AccessNs(0, trace.Load); got != h.Levels[1].LatencyNs {
		t.Errorf("L2 hit = %v ns, want %v", got, h.Levels[1].LatencyNs)
	}
}

func TestPrefetchHidesLinearStride(t *testing.T) {
	h := SS10()
	// Two sequential 32-byte-stride misses establish the stride; the
	// third sequential miss should be served at L2 latency.
	base := uint64(0x4000000)
	h.AccessNs(base, trace.Load)
	h.AccessNs(base+32, trace.Load)
	got := h.AccessNs(base+64, trace.Load)
	if got != h.Levels[1].LatencyNs {
		t.Errorf("prefetched access = %v ns, want L2 latency %v", got, h.Levels[1].LatencyNs)
	}
	// A large jump must pay full memory latency.
	if got := h.AccessNs(base+1<<22, trace.Load); got != h.MemoryNs {
		t.Errorf("non-strided miss = %v ns, want memory latency", got)
	}
}

// TestFigure2Crossover is the paper's Figure 2 in miniature: inside
// the SS-10's 1 MB L2 the SS-10 is faster; beyond it the SS-5 wins.
func TestFigure2Crossover(t *testing.T) {
	ss5, ss10 := SS5(), SS10()
	inside5 := ss5.Walk(256<<10, 512).AvgNs
	inside10 := ss10.Walk(256<<10, 512).AvgNs
	if inside10 >= inside5 {
		t.Errorf("inside L2: SS-10 %v ns should beat SS-5 %v ns", inside10, inside5)
	}
	beyond5 := ss5.Walk(8<<20, 512).AvgNs
	beyond10 := ss10.Walk(8<<20, 512).AvgNs
	if beyond5 >= beyond10 {
		t.Errorf("beyond L2: SS-5 %v ns should beat SS-10 %v ns", beyond5, beyond10)
	}
}

func TestIntegratedLatencyFlat(t *testing.T) {
	h := Integrated()
	small := h.Walk(64<<10, 512).AvgNs
	big := h.Walk(16<<20, 512).AvgNs
	if big > 31 {
		t.Errorf("integrated device beyond cache = %v ns, want <= ~30", big)
	}
	if small > big {
		t.Errorf("latency should not decrease with size: %v vs %v", small, big)
	}
}

func TestWalkSurfaceSkipsDegenerate(t *testing.T) {
	h := SS5()
	rs := h.WalkSurface([]uint64{4096}, []uint64{16, 8192})
	if len(rs) != 1 {
		t.Errorf("surface rows = %d, want 1 (stride >= size skipped)", len(rs))
	}
}

func TestEstimator(t *testing.T) {
	h := SS5()
	e := &Estimator{H: h}
	e.Ref(trace.Ref{Kind: trace.Ifetch, Addr: 0, Size: 4})
	e.Ref(trace.Ref{Kind: trace.Load, Addr: 0, Size: 8}) // miss: 280 ns
	e.Ref(trace.Ref{Kind: trace.Load, Addr: 0, Size: 8}) // hit: 12 ns
	est := e.Estimate()
	if est.Instructions != 1 || est.DataAccesses != 2 {
		t.Errorf("estimate counts: %+v", est)
	}
	if est.AvgAccessNs != (280+12)/2.0 {
		t.Errorf("avg access = %v", est.AvgAccessNs)
	}
	wantTotal := 1.3*(1000.0/85) + 292
	if diff := est.NsPerInstr - wantTotal; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ns/instr = %v, want %v", est.NsPerInstr, wantTotal)
	}
}

func TestStringDescribes(t *testing.T) {
	if s := SS10().String(); s == "" {
		t.Error("empty description")
	}
}

// TestAccessNsZeroAllocs is the -benchmem guard for the walk loop: the
// per-call defer closure that used to live in AccessNs cost one
// allocation per reference, which dominates Figure 2's tens of millions
// of calls. The hot path must stay allocation-free.
func TestAccessNsZeroAllocs(t *testing.T) {
	h := SS10()
	h.Reset()
	addr := uint64(0x40000000)
	allocs := testing.AllocsPerRun(10_000, func() {
		h.AccessNs(addr, trace.Load)
		addr += 32
	})
	if allocs != 0 {
		t.Errorf("AccessNs allocates %.1f times per call, want 0", allocs)
	}
}

// TestAccessNsZeroAllocsInstrumented repeats the guard with a live
// metrics registry attached: instrumentation must be allocation-free
// when on, not just when off.
func TestAccessNsZeroAllocsInstrumented(t *testing.T) {
	h := SS10()
	h.Instrument(obs.NewRegistry())
	h.Reset()
	addr := uint64(0x40000000)
	allocs := testing.AllocsPerRun(10_000, func() {
		h.AccessNs(addr, trace.Load)
		addr += 32
	})
	if allocs != 0 {
		t.Errorf("instrumented AccessNs allocates %.1f times per call, want 0", allocs)
	}
}

// TestInstrumentAccounting: the cache family's counters add up — every
// access is exactly one of a level hit, a prefetch hit, or a memory
// access, and the latency histogram sees all of them.
func TestInstrumentAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	h := SS10()
	h.Instrument(reg)
	h.Walk(1<<20, 64)

	total := reg.Counter("cache", "SS-10/61/accesses").Value()
	if total == 0 {
		t.Fatal("no accesses recorded")
	}
	sum := reg.Counter("cache", "SS-10/61/L1_hits").Value() +
		reg.Counter("cache", "SS-10/61/L2_hits").Value() +
		reg.Counter("cache", "SS-10/61/prefetch_hits").Value() +
		reg.Counter("cache", "SS-10/61/memory_accesses").Value()
	if sum != total {
		t.Errorf("outcome counters sum to %d, want %d", sum, total)
	}
	// Walking with a 64-byte stride keeps the SS-10 prefetcher engaged,
	// so prefetch hits must show up.
	if reg.Counter("cache", "SS-10/61/prefetch_hits").Value() == 0 {
		t.Error("no prefetch hits on a 64-byte-stride walk")
	}
	// Uninstrumented hierarchies record nothing.
	h2 := SS5()
	h2.Walk(1<<16, 32)
	if got := reg.Counter("cache", "SS-5/accesses").Value(); got != 0 {
		t.Errorf("uninstrumented hierarchy recorded %d accesses", got)
	}
}

// TestEstimatorZeroAllocs extends the guard through the Estimator sink
// wrapper, both per-ref and batched.
func TestEstimatorZeroAllocs(t *testing.T) {
	e := &Estimator{H: SS5()}
	batch := make([]trace.Ref, 64)
	for i := range batch {
		batch[i] = trace.Ref{Kind: trace.Load, Addr: uint64(i) * 32, Size: 4}
	}
	allocs := testing.AllocsPerRun(1_000, func() {
		e.Refs(batch)
	})
	if allocs != 0 {
		t.Errorf("Estimator.Refs allocates %.1f times per batch, want 0", allocs)
	}
}

// BenchmarkAccessNs measures the walk-loop hot path; run with -benchmem
// to confirm 0 allocs/op.
func BenchmarkAccessNs(b *testing.B) {
	h := SS10()
	h.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AccessNs(0x40000000+uint64(i)*32, trace.Load)
	}
}
