// Package memsys models complete memory hierarchies as seen by a
// running program: one or more cache levels in front of a main memory,
// each with an access latency. It reproduces the paper's Section 2
// motivation study — the SparcStation 5 versus SparcStation 10/61
// comparison of Table 1 and the stride/size latency surface of
// Figure 2 — and provides the hierarchy abstraction used by the
// Table 1 run-time estimator.
//
// Latency parameters for the two workstations are modelled estimates
// chosen to match the era's published characteristics (MicroSparc @
// 85 MHz with an on-chip memory controller; SuperSparc @ 60 MHz behind
// an MBus with a 1 MB second-level cache): the SS-10/61 wins while its
// 1 MB L2 holds the working set and loses beyond it, which is the
// paper's point. They are inputs to the model, not measurements.
package memsys

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Level is one cache level of a hierarchy.
type Level struct {
	Cache     *cache.SetAssoc
	LatencyNs float64 // access (hit) latency in nanoseconds
}

// Hierarchy is a memory system: zero or more cache levels backed by
// main memory. All levels are managed inclusively with LRU.
type Hierarchy struct {
	Name     string
	Levels   []Level
	MemoryNs float64 // main memory access latency
	ClockMHz float64 // processor clock, for run-time estimates
	BaseCPI  float64 // CPI with a zero-latency memory system
	// PrefetchStride, when non-zero, models a hardware prefetch unit
	// (the SS-10's, per the paper's Figure 2 footnote): memory accesses
	// that continue a small, linear stride (<= PrefetchStride bytes)
	// cost only the last cache level's latency instead of the full
	// memory latency.
	PrefetchStride uint64

	lastAddr  uint64
	lastDelta int64
	haveLast  bool

	// obs, when non-nil (set by Instrument), receives per-level access
	// accounting. The hot path pays one pointer check when nil.
	obs *hierObs
}

// hierObs bundles the metric handles Instrument resolves once, so
// AccessNs never performs registry lookups.
type hierObs struct {
	levelHits      []*obs.Counter
	prefetchHits   *obs.Counter
	memoryAccesses *obs.Counter
	accesses       *obs.Counter
	latency        *obs.Histogram
}

// LevelSpec is the declarative description of one cache level.
type LevelSpec struct {
	Name      string
	Bytes     uint64
	LineBytes uint64
	Ways      int
	LatencyNs float64
}

// Spec is the declarative description of a hierarchy; Build turns it
// into a runnable Hierarchy. The workstation models (SS5, SS10) and the
// device-derived Integrated hierarchy are all expressed this way.
type Spec struct {
	Name           string
	Levels         []LevelSpec
	MemoryNs       float64
	ClockMHz       float64
	BaseCPI        float64
	PrefetchStride uint64
}

// Build instantiates the spec with fresh cache state.
func (s Spec) Build() *Hierarchy {
	h := &Hierarchy{
		Name:           s.Name,
		MemoryNs:       s.MemoryNs,
		ClockMHz:       s.ClockMHz,
		BaseCPI:        s.BaseCPI,
		PrefetchStride: s.PrefetchStride,
	}
	for _, l := range s.Levels {
		h.Levels = append(h.Levels, Level{
			Cache:     cache.NewSetAssoc(l.Name, l.Bytes, l.LineBytes, l.Ways),
			LatencyNs: l.LatencyNs,
		})
	}
	return h
}

// SS5Spec describes the SparcStation 5: single-level on-chip caches
// with the memory controller integrated on the CPU (low memory latency).
func SS5Spec() Spec {
	return Spec{
		Name: "SS-5",
		Levels: []LevelSpec{
			{Name: "SS-5 L1D 8KB", Bytes: 8 << 10, LineBytes: 16, Ways: 1, LatencyNs: 12},
		},
		MemoryNs: 280, // integrated memory controller: short path to DRAM
		ClockMHz: 85,
		BaseCPI:  1.3, // single-scalar MicroSparc
	}
}

// SS5 builds the SparcStation 5 model.
func SS5() *Hierarchy { return SS5Spec().Build() }

// SS10Spec describes the SparcStation 10/61: two cache levels,
// higher-latency main memory behind the MBus, plus a small-stride
// prefetch unit.
func SS10Spec() Spec {
	return Spec{
		Name: "SS-10/61",
		Levels: []LevelSpec{
			{Name: "SS-10 L1D 16KB", Bytes: 16 << 10, LineBytes: 32, Ways: 1, LatencyNs: 17},
			{Name: "SS-10 L2 1MB", Bytes: 1 << 20, LineBytes: 32, Ways: 1, LatencyNs: 100},
		},
		// Main memory sits behind the L2 controller and the MBus; the
		// end-to-end load latency is several times the SS-5's — this
		// is the gap Figure 2 exposes and Table 1 monetises.
		MemoryNs:       760,
		ClockMHz:       60,
		BaseCPI:        0.9, // super-scalar SuperSparc
		PrefetchStride: 64,
	}
}

// SS10 builds the SparcStation 10/61 model.
func SS10() *Hierarchy { return SS10Spec().Build() }

// SpecFor describes a machine-description device as a flat hierarchy
// for Figure 2-style comparisons: its data column buffers (one-cycle
// access at the device clock) in front of the DRAM array.
func SpecFor(d core.Device) Spec {
	return Spec{
		Name: "Integrated",
		Levels: []LevelSpec{{
			Name:      fmt.Sprintf("%s D-cache", d.Name),
			Bytes:     uint64(d.DCacheBytes),
			LineBytes: uint64(d.DCacheLineBytes),
			Ways:      d.DCacheWays,
			LatencyNs: 1000 / float64(d.ClockMHz),
		}},
		MemoryNs: d.DRAM.AccessNanos(),
		ClockMHz: float64(d.ClockMHz),
		BaseCPI:  1.0,
	}
}

// IntegratedFrom builds the hierarchy model of a device specification.
func IntegratedFrom(d core.Device) *Hierarchy { return SpecFor(d).Build() }

// Integrated models the proposed processor/memory device: column-buffer
// "cache" at 5 ns in front of a 30 ns DRAM array.
func Integrated() *Hierarchy { return IntegratedFrom(core.Proposed()) }

// Instrument publishes the hierarchy's per-level hit counts, prefetch
// and memory access counts, and its access latency distribution into
// reg's "cache" family (metric names are prefixed with the hierarchy
// name, so several hierarchies share one registry). Fresh hierarchies
// built from the same spec resolve to the same metrics, so sweeps that
// rebuild per unit accumulate one series per machine. A nil registry
// leaves the hierarchy uninstrumented.
func (h *Hierarchy) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	ho := &hierObs{
		prefetchHits:   reg.Counter("cache", h.Name+"/prefetch_hits"),
		memoryAccesses: reg.Counter("cache", h.Name+"/memory_accesses"),
		accesses:       reg.Counter("cache", h.Name+"/accesses"),
		latency:        reg.Histogram("cache", h.Name+"/access_ns", 0, h.MemoryNs+1, 16),
	}
	for i := range h.Levels {
		ho.levelHits = append(ho.levelHits,
			reg.Counter("cache", fmt.Sprintf("%s/L%d_hits", h.Name, i+1)))
	}
	h.obs = ho
}

// AccessNs simulates one data access and returns its latency in
// nanoseconds. Lower levels are filled on a miss (inclusive hierarchy).
func (h *Hierarchy) AccessNs(addr uint64, kind trace.Kind) float64 {
	// Capture the previous access's state, then update it inline: this
	// is the hottest loop in the repo (Walk issues tens of millions of
	// calls) and a deferred closure here costs an allocation per call.
	prevAddr, prevDelta, hadLast := h.lastAddr, h.lastDelta, h.haveLast
	if hadLast {
		h.lastDelta = int64(addr) - int64(prevAddr)
	}
	h.lastAddr = addr
	h.haveLast = true
	for i := range h.Levels {
		if h.Levels[i].Cache.Access(addr, kind) {
			if h.obs != nil {
				h.obs.accesses.Inc()
				h.obs.levelHits[i].Inc()
				h.obs.latency.Add(h.Levels[i].LatencyNs)
			}
			return h.Levels[i].LatencyNs
		}
	}
	// Miss in every level (already filled by Access's side effects).
	if h.PrefetchStride > 0 && hadLast {
		delta := int64(addr) - int64(prevAddr)
		if delta == prevDelta && delta > 0 && uint64(delta) <= h.PrefetchStride {
			// The prefetch unit has already issued this access.
			last := h.Levels[len(h.Levels)-1]
			if h.obs != nil {
				h.obs.accesses.Inc()
				h.obs.prefetchHits.Inc()
				h.obs.latency.Add(last.LatencyNs)
			}
			return last.LatencyNs
		}
	}
	if h.obs != nil {
		h.obs.accesses.Inc()
		h.obs.memoryAccesses.Inc()
		h.obs.latency.Add(h.MemoryNs)
	}
	return h.MemoryNs
}

// Reset clears all cache state (statistics are retained by the caches).
func (h *Hierarchy) Reset() {
	for i := range h.Levels {
		h.Levels[i].Cache.Flush()
	}
	h.haveLast = false
}

// String describes the hierarchy.
func (h *Hierarchy) String() string {
	s := h.Name + ":"
	for _, l := range h.Levels {
		s += fmt.Sprintf(" %s @%gns →", l.Cache.Name(), l.LatencyNs)
	}
	return s + fmt.Sprintf(" memory @%gns", h.MemoryNs)
}

// WalkResult is one cell of the Figure 2 latency surface.
type WalkResult struct {
	ArrayBytes uint64
	Stride     uint64
	AvgNs      float64
}

// Walk measures the average load latency of repeatedly walking an
// array of the given size with the given stride — the classic
// microbenchmark behind Figure 2. One warm-up pass is excluded.
func (h *Hierarchy) Walk(arrayBytes, stride uint64) WalkResult {
	h.Reset()
	const base = 0x40000000
	if stride == 0 {
		stride = 8
	}
	// Warm-up pass.
	for off := uint64(0); off < arrayBytes; off += stride {
		h.AccessNs(base+off, trace.Load)
	}
	// Measured passes: walk enough to amortise, at least 2 passes and
	// at least ~64k accesses for stable averages.
	var total float64
	var n int
	passes := 2
	for uint64(passes)*(arrayBytes/stride+1) < 65536 {
		passes++
	}
	for p := 0; p < passes; p++ {
		for off := uint64(0); off < arrayBytes; off += stride {
			total += h.AccessNs(base+off, trace.Load)
			n++
		}
	}
	return WalkResult{ArrayBytes: arrayBytes, Stride: stride, AvgNs: total / float64(n)}
}

// WalkSurface evaluates Walk over the cross product of sizes and
// strides, returning rows in size-major order.
func (h *Hierarchy) WalkSurface(sizes, strides []uint64) []WalkResult {
	var out []WalkResult
	for _, sz := range sizes {
		for _, st := range strides {
			if st >= sz {
				continue
			}
			out = append(out, h.Walk(sz, st))
		}
	}
	return out
}

// RunEstimate is a Table 1-style run-time estimate for a workload
// reference stream executed on the hierarchy.
type RunEstimate struct {
	Machine      string
	Instructions int64
	DataAccesses int64
	AvgAccessNs  float64
	NsPerInstr   float64
	TotalSeconds float64
}

// Estimator accumulates a run-time estimate from a reference stream:
// instruction time from the base CPI plus measured data access time.
// Instruction fetches are assumed to hit on-chip I-caches (both
// machines' Synopsys I-footprints are modest next to the >50 MB data
// working set driving Table 1).
type Estimator struct {
	H      *Hierarchy
	Instr  int64
	DataN  int64
	DataNs float64
}

// Ref implements trace.Sink.
func (e *Estimator) Ref(r trace.Ref) {
	switch r.Kind {
	case trace.Ifetch:
		e.Instr++
	default:
		e.DataNs += e.H.AccessNs(r.Addr, r.Kind)
		e.DataN++
	}
}

// Refs implements trace.BatchSink.
func (e *Estimator) Refs(rs []trace.Ref) {
	for i := range rs {
		e.Ref(rs[i])
	}
}

// Estimate finalises the run-time estimate.
func (e *Estimator) Estimate() RunEstimate {
	cycleNs := 1000 / e.H.ClockMHz
	perInstr := e.H.BaseCPI * cycleNs
	total := float64(e.Instr)*perInstr + e.DataNs
	est := RunEstimate{
		Machine:      e.H.Name,
		Instructions: e.Instr,
		DataAccesses: e.DataN,
		TotalSeconds: total / 1e9,
	}
	if e.DataN > 0 {
		est.AvgAccessNs = e.DataNs / float64(e.DataN)
	}
	if e.Instr > 0 {
		est.NsPerInstr = total / float64(e.Instr)
	}
	return est
}
