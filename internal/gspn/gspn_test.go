package gspn

import (
	"errors"
	"math"
	"testing"
)

// TestTimedLoopThroughput: a single token cycling through a
// deterministic transition of delay d has throughput exactly 1/d.
func TestTimedLoopThroughput(t *testing.T) {
	n := NewNet()
	p := n.Place("p", 1)
	tr := n.Timed("t", 2.5)
	n.In(tr, p, 1)
	n.Out(tr, p, 1)

	s := NewSim(n, 1)
	if err := s.RunUntilFirings(tr, 1000); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Now(), 2500.0; got != want {
		t.Errorf("time after 1000 firings = %v, want %v", got, want)
	}
	if got := s.Throughput(tr); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("throughput = %v, want 0.4", got)
	}
}

// TestImmediateWeights: a weighted immediate conflict splits tokens in
// proportion to transition weights.
func TestImmediateWeights(t *testing.T) {
	n := NewNet()
	src := n.Place("src", 0)
	a := n.Place("a", 0)
	b := n.Place("b", 0)
	feeder := n.Place("clockTok", 1)
	tick := n.Timed("tick", 1)
	n.In(tick, feeder, 1)
	n.Out(tick, feeder, 1)
	n.Out(tick, src, 1)

	ta := n.Immediate("ta", 3, 0)
	n.In(ta, src, 1)
	n.Out(ta, a, 1)
	tb := n.Immediate("tb", 1, 0)
	n.In(tb, src, 1)
	n.Out(tb, b, 1)

	s := NewSim(n, 42)
	const total = 20000
	if err := s.RunUntilFirings(tick, total); err != nil {
		t.Fatal(err)
	}
	fa := float64(s.Firings(ta))
	frac := fa / float64(s.Firings(ta)+s.Firings(tb))
	if math.Abs(frac-0.75) > 0.02 {
		t.Errorf("weighted split fraction = %v, want 0.75 ± 0.02", frac)
	}
}

// TestImmediatePriority: a higher-priority immediate transition always
// wins a conflict regardless of weight.
func TestImmediatePriority(t *testing.T) {
	n := NewNet()
	src := n.Place("src", 5)
	hi := n.Place("hi", 0)
	lo := n.Place("lo", 0)
	thi := n.Immediate("thi", 0.001, 5)
	n.In(thi, src, 1)
	n.Out(thi, hi, 1)
	tlo := n.Immediate("tlo", 1000, 1)
	n.In(tlo, src, 1)
	n.Out(tlo, lo, 1)
	// A timed transition keeps Step from declaring deadlock after the
	// immediates settle.
	idle := n.Place("idle", 1)
	tt := n.Timed("tt", 1)
	n.In(tt, idle, 1)
	n.Out(tt, idle, 1)

	s := NewSim(n, 7)
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if got := s.Marking(hi); got != 5 {
		t.Errorf("high-priority transition fired %d times, want 5", got)
	}
	if got := s.Marking(lo); got != 0 {
		t.Errorf("low-priority transition fired %d times, want 0", got)
	}
}

// TestExponentialMean: mean inter-firing time of an exponential
// transition approaches 1/rate.
func TestExponentialMean(t *testing.T) {
	n := NewNet()
	p := n.Place("p", 1)
	tr := n.Exponential("t", 4)
	n.In(tr, p, 1)
	n.Out(tr, p, 1)

	s := NewSim(n, 99)
	const fires = 50000
	if err := s.RunUntilFirings(tr, fires); err != nil {
		t.Fatal(err)
	}
	mean := s.Now() / fires
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("mean delay = %v, want 0.25 ± 0.01", mean)
	}
}

// TestMM1QueueLength: exponential arrivals (λ) to a single exponential
// server (μ) form an M/M/1 queue; mean number in system is ρ/(1-ρ).
func TestMM1QueueLength(t *testing.T) {
	const lambda, mu = 1.0, 2.0
	n := NewNet()
	arrTok := n.Place("arrTok", 1)
	queue := n.Place("queue", 0)
	arrive := n.Exponential("arrive", lambda)
	n.In(arrive, arrTok, 1)
	n.Out(arrive, arrTok, 1)
	n.Out(arrive, queue, 1)
	serve := n.Exponential("serve", mu)
	n.In(serve, queue, 1)

	s := NewSim(n, 12345)
	if err := s.RunUntilTime(200000); err != nil {
		t.Fatal(err)
	}
	// In this net "queue" counts jobs in system (the job in service
	// keeps its token until service completes).
	want := (lambda / mu) / (1 - lambda/mu) // = 1.0
	got := s.TimeAvgTokens(queue)
	if math.Abs(got-want) > 0.08 {
		t.Errorf("M/M/1 mean jobs in system = %v, want %v ± 0.08", got, want)
	}
}

// TestInhibitorArc: a transition with an inhibitor arc never fires
// while the inhibiting place is marked.
func TestInhibitorArc(t *testing.T) {
	n := NewNet()
	blocker := n.Place("blocker", 1)
	p := n.Place("p", 1)
	out := n.Place("out", 0)
	tr := n.Timed("t", 1)
	n.In(tr, p, 1)
	n.Out(tr, out, 1)
	n.Inhibit(tr, blocker, 1)
	// A second transition drains the blocker at t=5.
	drain := n.Timed("drain", 5)
	n.In(drain, blocker, 1)

	s := NewSim(n, 3)
	if err := s.Step(); err != nil { // must be the drain at t=5
		t.Fatal(err)
	}
	if s.Now() != 5 {
		t.Fatalf("first event at t=%v, want 5 (inhibited transition fired early)", s.Now())
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.Marking(out) != 1 || s.Now() != 6 {
		t.Errorf("after unblocking: out=%d at t=%v, want 1 at t=6", s.Marking(out), s.Now())
	}
}

// TestDeadlock: a net with no enabled transitions reports ErrDeadlock.
func TestDeadlock(t *testing.T) {
	n := NewNet()
	p := n.Place("p", 0)
	tr := n.Timed("t", 1)
	n.In(tr, p, 1)
	s := NewSim(n, 1)
	if err := s.Step(); !errors.Is(err, ErrDeadlock) {
		t.Errorf("Step() = %v, want ErrDeadlock", err)
	}
}

// TestLivelock: two immediate transitions feeding each other loop
// forever; the simulator must detect it rather than hang.
func TestLivelock(t *testing.T) {
	n := NewNet()
	a := n.Place("a", 1)
	b := n.Place("b", 0)
	t1 := n.Immediate("t1", 1, 0)
	n.In(t1, a, 1)
	n.Out(t1, b, 1)
	t2 := n.Immediate("t2", 1, 0)
	n.In(t2, b, 1)
	n.Out(t2, a, 1)
	s := NewSim(n, 1)
	if err := s.Step(); !errors.Is(err, ErrLivelock) {
		t.Errorf("Step() = %v, want ErrLivelock", err)
	}
}

// TestArcMultiplicity: a transition requiring 3 tokens fires only when
// all three are present and consumes all of them.
func TestArcMultiplicity(t *testing.T) {
	n := NewNet()
	src := n.Place("src", 0)
	dst := n.Place("dst", 0)
	feederTok := n.Place("ft", 1)
	feed := n.Timed("feed", 1)
	n.In(feed, feederTok, 1)
	n.Out(feed, feederTok, 1)
	n.Out(feed, src, 1)

	gather := n.Immediate("gather", 1, 0)
	n.In(gather, src, 3)
	n.Out(gather, dst, 1)

	s := NewSim(n, 1)
	if err := s.RunUntilFirings(feed, 7); err != nil {
		t.Fatal(err)
	}
	if got := s.Marking(dst); got != 2 {
		t.Errorf("dst = %d after 7 feeds, want 2", got)
	}
	if got := s.Marking(src); got != 1 {
		t.Errorf("src leftover = %d after 7 feeds, want 1", got)
	}
}

// TestDeterministicReproducibility: same seed, same trajectory.
func TestDeterministicReproducibility(t *testing.T) {
	build := func() (*Net, TransID) {
		n := NewNet()
		p := n.Place("p", 1)
		q := n.Place("q", 0)
		t1 := n.Exponential("t1", 1)
		n.In(t1, p, 1)
		n.Out(t1, q, 1)
		t2 := n.Exponential("t2", 2)
		n.In(t2, q, 1)
		n.Out(t2, p, 1)
		return n, t1
	}
	n1, tr1 := build()
	n2, tr2 := build()
	s1 := NewSim(n1, 777)
	s2 := NewSim(n2, 777)
	if err := s1.RunUntilFirings(tr1, 1000); err != nil {
		t.Fatal(err)
	}
	if err := s2.RunUntilFirings(tr2, 1000); err != nil {
		t.Fatal(err)
	}
	if s1.Now() != s2.Now() {
		t.Errorf("same seed diverged: %v vs %v", s1.Now(), s2.Now())
	}
}

// TestTimeAvgTokens: a place holding k tokens forever averages k.
func TestTimeAvgTokens(t *testing.T) {
	n := NewNet()
	constP := n.Place("const", 3)
	p := n.Place("p", 1)
	tr := n.Timed("t", 1)
	n.In(tr, p, 1)
	n.Out(tr, p, 1)
	s := NewSim(n, 1)
	if err := s.RunUntilTime(100); err != nil {
		t.Fatal(err)
	}
	if got := s.TimeAvgTokens(constP); got != 3 {
		t.Errorf("TimeAvgTokens(const) = %v, want 3", got)
	}
}

func TestNamesAndCounts(t *testing.T) {
	n := NewNet()
	p := n.Place("myplace", 1)
	tr := n.Timed("mytrans", 2)
	n.In(tr, p, 1)
	n.Out(tr, p, 1)
	if n.PlaceName(p) != "myplace" || n.TransName(tr) != "mytrans" {
		t.Error("names lost")
	}
	if n.NumPlaces() != 1 || n.NumTrans() != 1 {
		t.Error("counts wrong")
	}
	if n.TransKind(tr) != Deterministic {
		t.Error("kind wrong")
	}
	if Immediate.String() != "immediate" || Exponential.String() != "exponential" ||
		Kind(9).String() != "unknown" {
		t.Error("kind strings")
	}
}

func TestRunUntilTimePropagatesDeadlock(t *testing.T) {
	n := NewNet()
	p := n.Place("p", 1)
	tr := n.Timed("t", 1)
	n.In(tr, p, 1) // fires once, then deadlock
	s := NewSim(n, 1)
	if err := s.RunUntilTime(100); !errors.Is(err, ErrDeadlock) {
		t.Errorf("RunUntilTime = %v, want ErrDeadlock", err)
	}
	if s.Throughput(tr) != 1 {
		t.Errorf("throughput = %v, want 1 (one firing at t=1)", s.Throughput(tr))
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []func(){
		func() { NewNet().Place("p", -1) },
		func() { NewNet().Immediate("t", 0, 0) },
		func() { NewNet().Timed("t", 0) },
		func() { NewNet().Exponential("t", -1) },
		func() {
			n := NewNet()
			p := n.Place("p", 0)
			n.In(TransID(5), p, 1)
		},
		func() {
			n := NewNet()
			tr := n.Timed("t", 1)
			n.In(tr, PlaceID(9), 1)
		},
		func() {
			n := NewNet()
			p := n.Place("p", 0)
			tr := n.Timed("t", 1)
			n.In(tr, p, 0)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// buildMixedNet is a synthetic net exercising everything the
// incremental reschedule must handle: an exponential source transition
// with no input arcs (in no dependency list — only the fired-transition
// rule reschedules it), deterministic servers, an inhibitor arc,
// weighted immediate conflicts, and a higher-priority immediate class.
func buildMixedNet() *Net {
	n := NewNet()
	q := n.Place("q", 1)
	done := n.Place("done", 0)
	a := n.Place("a", 0)
	bp := n.Place("b", 0)
	maint := n.Place("maint", 0)

	src := n.Exponential("src", 1.0) // source: no inputs at all
	n.Out(src, q, 1)

	srv := n.Timed("srv", 0.8)
	n.In(srv, q, 1)
	n.Out(srv, done, 1)
	n.Inhibit(srv, maint, 2)

	ta := n.Immediate("ta", 3, 0)
	n.In(ta, done, 1)
	n.Out(ta, a, 1)
	tb := n.Immediate("tb", 1, 0)
	n.In(tb, done, 1)
	n.Out(tb, bp, 1)

	tc := n.Immediate("tc", 1, 1) // higher priority: pairs of b -> maint
	n.In(tc, bp, 2)
	n.Out(tc, maint, 1)

	mend := n.Exponential("mend", 0.5)
	n.In(mend, maint, 1)
	n.Out(mend, a, 1)

	drain := n.Timed("drain", 2.0)
	n.In(drain, a, 3)
	return n
}

// TestRescheduleEquivalence pins the incremental (adjacency-driven)
// reschedule against the full-rescan reference path: for a fixed seed
// the two must produce identical firing counts, markings, and clocks
// at every step — the exponential samples must consume the shared RNG
// stream in exactly the same order.
func TestRescheduleEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		fast := NewSim(buildMixedNet(), seed)
		ref := NewSim(buildMixedNet(), seed)
		ref.fullRescan = true
		for step := 0; step < 2000; step++ {
			errFast, errRef := fast.Step(), ref.Step()
			if (errFast == nil) != (errRef == nil) {
				t.Fatalf("seed %d step %d: incremental err=%v, full-rescan err=%v",
					seed, step, errFast, errRef)
			}
			if errFast != nil {
				break
			}
			if fast.Now() != ref.Now() {
				t.Fatalf("seed %d step %d: clock %v != %v", seed, step, fast.Now(), ref.Now())
			}
			for i := 0; i < fast.net.NumTrans(); i++ {
				if fast.Firings(TransID(i)) != ref.Firings(TransID(i)) {
					t.Fatalf("seed %d step %d: firings(%s) %d != %d", seed, step,
						fast.net.TransName(TransID(i)),
						fast.Firings(TransID(i)), ref.Firings(TransID(i)))
				}
			}
			for i := 0; i < fast.net.NumPlaces(); i++ {
				if fast.Marking(PlaceID(i)) != ref.Marking(PlaceID(i)) {
					t.Fatalf("seed %d step %d: marking(%s) %d != %d", seed, step,
						fast.net.PlaceName(PlaceID(i)),
						fast.Marking(PlaceID(i)), ref.Marking(PlaceID(i)))
				}
			}
		}
	}
}

// TestSharedNetConcurrentSims: one Net backing many Sims is the
// documented usage; the lazily built adjacency must be race-free.
func TestSharedNetConcurrentSims(t *testing.T) {
	n := buildMixedNet()
	results := make([]float64, 8)
	donech := make(chan struct{})
	for i := range results {
		go func(i int) {
			defer func() { donech <- struct{}{} }()
			s := NewSim(n, 7)
			for step := 0; step < 500; step++ {
				if err := s.Step(); err != nil {
					t.Errorf("sim %d: %v", i, err)
					return
				}
			}
			results[i] = s.Now()
		}(i)
	}
	for range results {
		<-donech
	}
	for i, r := range results {
		if r != results[0] {
			t.Errorf("sim %d diverged: clock %v != %v", i, r, results[0])
		}
	}
}

// BenchmarkSimStep measures the per-event cost of the simulator loop
// with the incremental reschedule (the default path).
func BenchmarkSimStep(b *testing.B) {
	s := NewSim(buildMixedNet(), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimStepFullRescan is the same loop on the full-rescan
// reference path, so the adjacency win is visible in one bench diff.
func BenchmarkSimStepFullRescan(b *testing.B) {
	s := NewSim(buildMixedNet(), 1)
	s.fullRescan = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
