// Package gspn implements Generalized Stochastic Petri Nets evaluated by
// Monte-Carlo discrete-event simulation, the modelling formalism the
// paper uses for its CPI analysis (Section 5.5, citing Marsan & Conti).
//
// Supported net elements:
//
//   - places with integer markings,
//   - immediate transitions (zero delay) with firing weights and
//     priorities for conflict resolution,
//   - deterministically timed transitions (fixed delay, e.g. a DRAM
//     access taking exactly 6 cycles),
//   - exponentially timed transitions (rate λ, e.g. transition T23 of
//     Figure 10 modelling scoreboard stalls),
//   - input, output, and inhibitor arcs with multiplicities.
//
// Timed transitions follow race semantics with resampling ("race with
// restart"): a transition samples its firing time when it becomes
// enabled and abandons it if disabled before firing. The nets used by
// internal/cpumodel never disable an in-flight timed transition, so the
// choice of memory policy does not affect their results; it is
// documented here for completeness.
//
// Immediate transitions take priority over timed ones: whenever any
// immediate transition is enabled, the marking is vanishing and one
// enabled immediate transition (highest priority class first, then
// weighted-random within the class) fires without advancing time.
package gspn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// PlaceID identifies a place within its Net.
type PlaceID int

// TransID identifies a transition within its Net.
type TransID int

// Kind is the transition timing class.
type Kind uint8

// Transition kinds.
const (
	Immediate Kind = iota
	Deterministic
	Exponential
)

func (k Kind) String() string {
	switch k {
	case Immediate:
		return "immediate"
	case Deterministic:
		return "deterministic"
	case Exponential:
		return "exponential"
	default:
		return "unknown"
	}
}

type arc struct {
	place PlaceID
	mult  int
}

type place struct {
	name    string
	initial int
}

type transition struct {
	name     string
	kind     Kind
	delay    float64 // Deterministic
	rate     float64 // Exponential
	weight   float64 // Immediate conflict resolution
	priority int     // Immediate: higher fires first
	in       []arc
	out      []arc
	inhibit  []arc
}

// Net is an immutable-after-build Petri net structure. Build the net
// with Place/Immediate/Timed/Exponential and the arc methods, then
// create Sims from it; one Net can back many concurrent Sims.
type Net struct {
	places []place
	trans  []transition
	sealed bool

	// dep[p] lists the timed transitions whose enabling condition reads
	// place p (an input or inhibitor arc), ascending and deduplicated.
	// Built once on first NewSim; it lets a Sim reschedule only the
	// transitions a firing could have affected instead of rescanning
	// every transition per event (the dominant cost of large nets).
	sealOnce sync.Once
	dep      [][]TransID
}

// seal freezes the net and derives the place -> dependent-timed-
// transitions adjacency. Iterating transitions in ascending id keeps
// every dep list ascending, which the incremental reschedule relies on
// to sample newly enabled transitions in the same order as a full
// scan (RNG-stream equivalence).
func (n *Net) seal() {
	n.sealed = true
	n.dep = make([][]TransID, len(n.places))
	for ti := range n.trans {
		tr := &n.trans[ti]
		if tr.kind == Immediate {
			continue
		}
		seen := make(map[PlaceID]bool, len(tr.in)+len(tr.inhibit))
		for _, arcs := range [][]arc{tr.in, tr.inhibit} {
			for _, a := range arcs {
				if !seen[a.place] {
					seen[a.place] = true
					n.dep[a.place] = append(n.dep[a.place], TransID(ti))
				}
			}
		}
	}
}

// NewNet returns an empty net.
func NewNet() *Net { return &Net{} }

// Place adds a place with an initial marking and returns its id.
func (n *Net) Place(name string, initial int) PlaceID {
	if initial < 0 {
		panic(fmt.Sprintf("gspn: place %s: negative initial marking", name))
	}
	n.places = append(n.places, place{name: name, initial: initial})
	return PlaceID(len(n.places) - 1)
}

// Immediate adds an immediate transition. Weight resolves conflicts
// among enabled immediate transitions of the same priority; priority
// classes fire strictly highest-first.
func (n *Net) Immediate(name string, weight float64, priority int) TransID {
	if weight <= 0 {
		panic(fmt.Sprintf("gspn: transition %s: weight must be positive", name))
	}
	n.trans = append(n.trans, transition{
		name: name, kind: Immediate, weight: weight, priority: priority,
	})
	return TransID(len(n.trans) - 1)
}

// Timed adds a deterministically timed transition with a fixed delay.
func (n *Net) Timed(name string, delay float64) TransID {
	if delay <= 0 {
		panic(fmt.Sprintf("gspn: transition %s: delay must be positive", name))
	}
	n.trans = append(n.trans, transition{name: name, kind: Deterministic, delay: delay})
	return TransID(len(n.trans) - 1)
}

// Exponential adds an exponentially timed transition with the given
// rate (mean delay 1/rate).
func (n *Net) Exponential(name string, rate float64) TransID {
	if rate <= 0 {
		panic(fmt.Sprintf("gspn: transition %s: rate must be positive", name))
	}
	n.trans = append(n.trans, transition{name: name, kind: Exponential, rate: rate})
	return TransID(len(n.trans) - 1)
}

// In adds an input arc: firing t consumes mult tokens from p.
func (n *Net) In(t TransID, p PlaceID, mult int) {
	n.checkArc(t, p, mult)
	n.trans[t].in = append(n.trans[t].in, arc{p, mult})
}

// Out adds an output arc: firing t deposits mult tokens into p.
func (n *Net) Out(t TransID, p PlaceID, mult int) {
	n.checkArc(t, p, mult)
	n.trans[t].out = append(n.trans[t].out, arc{p, mult})
}

// Inhibit adds an inhibitor arc: t is disabled while p holds >= mult
// tokens.
func (n *Net) Inhibit(t TransID, p PlaceID, mult int) {
	n.checkArc(t, p, mult)
	n.trans[t].inhibit = append(n.trans[t].inhibit, arc{p, mult})
}

func (n *Net) checkArc(t TransID, p PlaceID, mult int) {
	if int(t) < 0 || int(t) >= len(n.trans) {
		panic("gspn: arc references unknown transition")
	}
	if int(p) < 0 || int(p) >= len(n.places) {
		panic("gspn: arc references unknown place")
	}
	if mult < 1 {
		panic("gspn: arc multiplicity must be >= 1")
	}
}

// PlaceName returns the place's name.
func (n *Net) PlaceName(p PlaceID) string { return n.places[p].name }

// TransName returns the transition's name.
func (n *Net) TransName(t TransID) string { return n.trans[t].name }

// NumPlaces returns the number of places.
func (n *Net) NumPlaces() int { return len(n.places) }

// NumTrans returns the number of transitions.
func (n *Net) NumTrans() int { return len(n.trans) }

// ErrLivelock is returned when immediate transitions fire more than the
// livelock bound without reaching a tangible marking — an immediate
// cycle in the net.
var ErrLivelock = errors.New("gspn: immediate-transition livelock")

// ErrDeadlock is returned by Step when no transition is enabled.
var ErrDeadlock = errors.New("gspn: deadlock (no enabled transitions)")

// maxImmediateChain bounds consecutive immediate firings per event.
const maxImmediateChain = 1 << 16

// Sim is one Monte-Carlo run of a Net.
type Sim struct {
	net     *Net
	rng     *rand.Rand
	marking []int
	sched   []float64 // absolute firing time per timed transition; +Inf = unscheduled
	now     float64

	firings []int64
	tokTime []float64 // ∫ marking dt per place
	lastT   float64

	touched  []PlaceID // places whose marking changed since last reschedule
	affected []TransID // scratch for rescheduleAffected
	// fullRescan forces the O(transitions) reference reschedule after
	// every firing — the pre-adjacency behaviour, kept as the oracle the
	// incremental path is pinned against (see TestRescheduleEquivalence).
	fullRescan bool
}

// NewSim creates a simulation of the net with the given random seed.
func NewSim(n *Net, seed int64) *Sim {
	n.sealOnce.Do(n.seal)
	s := &Sim{
		net:     n,
		rng:     rand.New(rand.NewSource(seed)),
		marking: make([]int, len(n.places)),
		sched:   make([]float64, len(n.trans)),
		firings: make([]int64, len(n.trans)),
		tokTime: make([]float64, len(n.places)),
	}
	for i, p := range n.places {
		s.marking[i] = p.initial
	}
	for i := range s.sched {
		s.sched[i] = math.Inf(1)
	}
	s.reschedule()
	return s
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Marking returns the current token count of a place.
func (s *Sim) Marking(p PlaceID) int { return s.marking[p] }

// Firings returns how many times a transition has fired.
func (s *Sim) Firings(t TransID) int64 { return s.firings[t] }

// TimeAvgTokens returns the time-averaged token count of a place.
func (s *Sim) TimeAvgTokens(p PlaceID) float64 {
	if s.now == 0 {
		return float64(s.marking[p])
	}
	return s.tokTime[p] / s.now
}

// enabled reports whether transition t may fire in the current marking.
func (s *Sim) enabled(t TransID) bool {
	tr := &s.net.trans[t]
	for _, a := range tr.in {
		if s.marking[a.place] < a.mult {
			return false
		}
	}
	for _, a := range tr.inhibit {
		if s.marking[a.place] >= a.mult {
			return false
		}
	}
	return true
}

// fire consumes and produces tokens for transition t, recording the
// places it changed for the next incremental reschedule.
func (s *Sim) fire(t TransID) {
	tr := &s.net.trans[t]
	for _, a := range tr.in {
		s.marking[a.place] -= a.mult
		s.touched = append(s.touched, a.place)
	}
	for _, a := range tr.out {
		s.marking[a.place] += a.mult
		s.touched = append(s.touched, a.place)
	}
	s.firings[t]++
}

// reschedule re-derives timed-transition schedules after a marking
// change: newly enabled transitions sample a firing time, disabled ones
// are cancelled. This is the full O(transitions) scan; the hot path
// uses rescheduleAffected, which visits only the transitions a firing
// could have touched and is pinned RNG-for-RNG against this one.
func (s *Sim) reschedule() {
	for i := range s.net.trans {
		tr := &s.net.trans[i]
		if tr.kind == Immediate {
			continue
		}
		s.applySchedule(TransID(i), tr)
	}
}

// applySchedule is the per-transition reschedule step shared by the
// full and incremental paths: sample when newly enabled, cancel when
// newly disabled.
func (s *Sim) applySchedule(t TransID, tr *transition) {
	en := s.enabled(t)
	switch {
	case en && math.IsInf(s.sched[t], 1):
		s.sched[t] = s.now + s.sample(tr)
	case !en && !math.IsInf(s.sched[t], 1):
		s.sched[t] = math.Inf(1)
	}
}

// rescheduleAffected is the incremental reschedule: only transitions
// with an input or inhibitor arc on a place the last firing changed can
// have flipped their enabling, so only dep(touched places) — plus the
// just-fired timed transition itself (fired >= 0), which must resample
// even when it has no input arcs at all (a source transition is in no
// dep list) — need revisiting. Candidates are processed in ascending
// id order after deduplication, so the exponential transitions that
// sample here consume the RNG stream in exactly the order the full
// rescan would: identical firings and markings for a fixed seed.
func (s *Sim) rescheduleAffected(fired TransID) {
	if s.fullRescan || s.net.dep == nil {
		s.touched = s.touched[:0]
		s.reschedule()
		return
	}
	aff := s.affected[:0]
	for _, p := range s.touched {
		aff = append(aff, s.net.dep[p]...)
	}
	s.touched = s.touched[:0]
	if fired >= 0 && s.net.trans[fired].kind != Immediate {
		aff = append(aff, fired)
	}
	// Insertion sort: the affected sets of the cpumodel nets are a
	// handful of entries, and sort.Slice would allocate its closure on
	// every event.
	for i := 1; i < len(aff); i++ {
		for j := i; j > 0 && aff[j] < aff[j-1]; j-- {
			aff[j], aff[j-1] = aff[j-1], aff[j]
		}
	}
	prev := TransID(-1)
	for _, t := range aff {
		if t == prev {
			continue
		}
		prev = t
		s.applySchedule(t, &s.net.trans[t])
	}
	s.affected = aff[:0]
}

func (s *Sim) sample(tr *transition) float64 {
	if tr.kind == Deterministic {
		return tr.delay
	}
	return s.rng.ExpFloat64() / tr.rate
}

// settleImmediates fires enabled immediate transitions until none is
// enabled (reaching a tangible marking).
func (s *Sim) settleImmediates() error {
	for iter := 0; ; iter++ {
		if iter >= maxImmediateChain {
			return ErrLivelock
		}
		// Find the highest priority class with an enabled transition.
		bestPrio := math.MinInt64
		var totalW float64
		for i := range s.net.trans {
			tr := &s.net.trans[i]
			if tr.kind != Immediate || !s.enabled(TransID(i)) {
				continue
			}
			if tr.priority > bestPrio {
				bestPrio = tr.priority
				totalW = 0
			}
			if tr.priority == bestPrio {
				totalW += tr.weight
			}
		}
		if totalW == 0 {
			return nil // tangible marking
		}
		// Weighted-random selection within the class.
		pick := s.rng.Float64() * totalW
		for i := range s.net.trans {
			tr := &s.net.trans[i]
			if tr.kind != Immediate || tr.priority != bestPrio || !s.enabled(TransID(i)) {
				continue
			}
			pick -= tr.weight
			if pick <= 0 {
				s.fire(TransID(i))
				break
			}
		}
		s.rescheduleAffected(-1)
	}
}

// accrue integrates token-time up to time t.
func (s *Sim) accrue(t float64) {
	dt := t - s.lastT
	if dt <= 0 {
		return
	}
	for i, m := range s.marking {
		s.tokTime[i] += float64(m) * dt
	}
	s.lastT = t
}

// Step advances the simulation by one tangible event: it settles
// immediate transitions, then fires the earliest scheduled timed
// transition. It returns ErrDeadlock when nothing can fire.
func (s *Sim) Step() error {
	if err := s.settleImmediates(); err != nil {
		return err
	}
	best := -1
	bestT := math.Inf(1)
	for i, at := range s.sched {
		if at < bestT {
			bestT = at
			best = i
		}
	}
	if best < 0 {
		return ErrDeadlock
	}
	s.accrue(bestT)
	s.now = bestT
	s.sched[best] = math.Inf(1)
	s.fire(TransID(best))
	s.rescheduleAffected(TransID(best))
	// Settle any immediates enabled by the firing so observers always
	// see tangible markings.
	return s.settleImmediates()
}

// RunUntilFirings advances the simulation until transition t has fired
// n times (or an error occurs). It is the usual way CPI runs terminate:
// "simulate until N instructions have issued".
func (s *Sim) RunUntilFirings(t TransID, n int64) error {
	for s.firings[t] < n {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// RunUntilTime advances the simulation until the clock reaches at least
// the given time.
func (s *Sim) RunUntilTime(t float64) error {
	for s.now < t {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Throughput returns firings of t per unit time.
func (s *Sim) Throughput(t TransID) float64 {
	if s.now == 0 {
		return 0
	}
	return float64(s.firings[t]) / s.now
}

// TransKind returns the transition's timing class.
func (n *Net) TransKind(t TransID) Kind { return n.trans[t].kind }
