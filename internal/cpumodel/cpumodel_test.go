package cpumodel

import (
	"math"
	"testing"
)

// perfect returns rates for an application that never misses.
func perfect() AppRates {
	return AppRates{
		Name: "perfect", BaseCPI: 1,
		LoadFrac: 0.25, StoreFrac: 0.10,
		IHit: 1, LoadHit: 1, StoreHit: 1,
		IL2Hit: 1, LoadL2Hit: 1, StoreL2Hit: 1,
	}
}

const testInstr = 20000

// TestPerfectCachesCPIOne: with 100% hit rates the pipeline issues one
// instruction per cycle, so the memory CPI component is ~0.
func TestPerfectCachesCPIOne(t *testing.T) {
	for _, cfg := range []SystemConfig{Integrated(), Reference()} {
		r, err := Evaluate(cfg, perfect(), testInstr, 1)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if r.MemCPI > 0.01 {
			t.Errorf("%s: MemCPI = %v with perfect caches, want ~0", cfg.Name, r.MemCPI)
		}
		if math.Abs(r.TotalCPI-1) > 0.01 {
			t.Errorf("%s: TotalCPI = %v, want ~1", cfg.Name, r.TotalCPI)
		}
	}
}

// TestIMissPenalty: with every ifetch missing to memory and no data
// traffic, each instruction pays roughly the memory latency on top of
// its issue cycle.
func TestIMissPenalty(t *testing.T) {
	app := perfect()
	app.LoadFrac, app.StoreFrac = 0, 0
	app.IHit = 0
	app.IL2Hit = 0
	cfg := Integrated()
	r, err := Evaluate(cfg, app, testInstr, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Every fetch goes to a random bank: 6-cycle access, plus rare
	// precharge queueing when the same bank is hit twice in a row.
	if r.MemCPI < cfg.MemCycles-0.5 || r.MemCPI > cfg.MemCycles+2 {
		t.Errorf("MemCPI = %v, want ≈ %v", r.MemCPI, cfg.MemCycles)
	}
}

// TestLoadMissStallNoScoreboard: without scoreboarding, a load miss
// stalls the CPU for the full memory latency; the expected memory CPI
// is loadFrac × missRate × latency (plus small queueing effects).
func TestLoadMissStallNoScoreboard(t *testing.T) {
	app := perfect()
	app.LoadHit = 0.5
	cfg := Integrated()
	cfg.ScoreboardRate = 0 // stall immediately
	r, err := Evaluate(cfg, app, testInstr, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := app.LoadFrac * (1 - app.LoadHit) * cfg.MemCycles
	if r.MemCPI < want*0.8 || r.MemCPI > want*1.5 {
		t.Errorf("MemCPI = %v, want ≈ %v", r.MemCPI, want)
	}
}

// TestScoreboardingHidesLatency: with scoreboarding (rate 1), about one
// instruction issues under each outstanding load, so the stall CPI is
// lower than without scoreboarding.
func TestScoreboardingHidesLatency(t *testing.T) {
	app := perfect()
	app.LoadHit = 0.5
	with := Integrated()
	without := Integrated()
	without.ScoreboardRate = 0
	rw, err := Evaluate(with, app, testInstr, 4)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Evaluate(without, app, testInstr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rw.MemCPI >= ro.MemCPI {
		t.Errorf("scoreboarding did not help: with=%v without=%v", rw.MemCPI, ro.MemCPI)
	}
	// It should hide roughly one cycle per miss, not eliminate the cost.
	if rw.MemCPI < ro.MemCPI/3 {
		t.Errorf("scoreboarding hides too much: with=%v without=%v", rw.MemCPI, ro.MemCPI)
	}
}

// TestL2ReducesPenalty: in the reference system, a higher conditional
// L2 hit rate strictly reduces memory CPI.
func TestL2ReducesPenalty(t *testing.T) {
	app := perfect()
	app.LoadHit = 0.7
	app.LoadL2Hit = 0.0
	cfg := Reference()
	rNoL2, err := Evaluate(cfg, app, testInstr, 5)
	if err != nil {
		t.Fatal(err)
	}
	app.LoadL2Hit = 0.95
	rL2, err := Evaluate(cfg, app, testInstr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rL2.MemCPI >= rNoL2.MemCPI {
		t.Errorf("L2 hits did not reduce CPI: %v vs %v", rL2.MemCPI, rNoL2.MemCPI)
	}
}

// TestMissRateMonotonicity: memory CPI grows monotonically (within
// noise) as the data miss rate rises.
func TestMissRateMonotonicity(t *testing.T) {
	var prev float64
	for i, hit := range []float64{1.0, 0.95, 0.85, 0.7, 0.5} {
		app := perfect()
		app.LoadHit = hit
		app.StoreHit = hit
		r, err := Evaluate(Integrated(), app, testInstr, 6)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && r.MemCPI+0.02 < prev {
			t.Errorf("MemCPI not monotone: hit=%v gives %v, previous %v", hit, r.MemCPI, prev)
		}
		prev = r.MemCPI
	}
}

// TestBankUtilizationLowForRealisticRates: the paper reports per-bank
// utilisation around 1–2% for gcc on 16 banks; a realistic miss mix
// must give low utilisation here too.
func TestBankUtilizationLowForRealisticRates(t *testing.T) {
	app := AppRates{
		Name: "gcc-like", BaseCPI: 1.01,
		LoadFrac: 0.23, StoreFrac: 0.09,
		IHit: 0.985, LoadHit: 0.97, StoreHit: 0.97,
	}
	r, err := Evaluate(Integrated(), app, testInstr, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.BankUtilization > 0.05 {
		t.Errorf("bank utilisation = %v, want < 5%%", r.BankUtilization)
	}
}

// TestFewerBanksMoreContention: with a high miss rate, fewer banks must
// not reduce CPI, and utilisation per bank must rise.
func TestFewerBanksMoreContention(t *testing.T) {
	app := perfect()
	app.IHit = 0.7
	app.LoadHit = 0.5
	cfg16 := Integrated()
	cfg2 := Integrated()
	cfg2.Banks = 2
	r16, err := Evaluate(cfg16, app, testInstr, 8)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(cfg2, app, testInstr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r2.MemCPI+0.05 < r16.MemCPI {
		t.Errorf("2 banks beat 16 banks: %v vs %v", r2.MemCPI, r16.MemCPI)
	}
	if r2.BankUtilization <= r16.BankUtilization {
		t.Errorf("per-bank utilisation did not rise with fewer banks: %v vs %v",
			r2.BankUtilization, r16.BankUtilization)
	}
}

// TestValidateRejectsBadRates exercises AppRates.Validate.
func TestValidateRejectsBadRates(t *testing.T) {
	cases := []func(*AppRates){
		func(a *AppRates) { a.IHit = 1.5 },
		func(a *AppRates) { a.LoadHit = -0.1 },
		func(a *AppRates) { a.LoadFrac = 0.8; a.StoreFrac = 0.5 },
		func(a *AppRates) { a.BaseCPI = 0.5 },
	}
	for i, mutate := range cases {
		app := perfect()
		mutate(&app)
		if err := app.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid rates %+v", i, app)
		}
	}
	good := perfect()
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid rates: %v", err)
	}
}

// TestStoresDoNotStall: a store-miss-heavy workload stalls far less
// than a load-miss-heavy one, because the store buffer decouples the
// pipeline (stores only occupy the LSU).
func TestStoresDoNotStall(t *testing.T) {
	ldApp := perfect()
	ldApp.LoadFrac, ldApp.StoreFrac = 0.25, 0.0
	ldApp.LoadHit = 0.6
	stApp := perfect()
	stApp.LoadFrac, stApp.StoreFrac = 0.0, 0.25
	stApp.StoreHit = 0.6
	rl, err := Evaluate(Integrated(), ldApp, testInstr, 9)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Evaluate(Integrated(), stApp, testInstr, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MemCPI >= rl.MemCPI {
		t.Errorf("store misses stall as much as load misses: stores=%v loads=%v",
			rs.MemCPI, rl.MemCPI)
	}
}

// TestReproducible: same seed gives identical results.
func TestReproducible(t *testing.T) {
	app := perfect()
	app.LoadHit = 0.9
	app.IHit = 0.95
	r1, err := Evaluate(Integrated(), app, testInstr, 42)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Evaluate(Integrated(), app, testInstr, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("same seed diverged: %+v vs %+v", r1, r2)
	}
}

// TestNetShape pins the Figure 9/10 topology: the integrated net has
// 16 bank subnets and no L2 plumbing; the reference adds the grey
// components (L2 paths and the shared port) with only 2 banks.
func TestNetShape(t *testing.T) {
	integ, err := Build(Integrated(), perfect())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Build(Reference(), perfect())
	if err != nil {
		t.Fatal(err)
	}
	is, rs := integ.Shape(), ref.Shape()
	if is.Banks != 16 || rs.Banks != 2 {
		t.Errorf("banks: integrated %d / reference %d", is.Banks, rs.Banks)
	}
	if is.HasL2 || !rs.HasL2 {
		t.Error("L2 flags wrong")
	}
	if is.Exponential != 1 || rs.Exponential != 1 {
		t.Errorf("T23 count: %d / %d, want 1 each", is.Exponential, rs.Exponential)
	}
	// Integrated: 3 bank paths × 16 banks × 2 timed + issue + 2 hit-done
	// deterministic transitions.
	if want := 3*16*2 + 3; is.Deterministic != want {
		t.Errorf("integrated deterministic transitions = %d, want %d", is.Deterministic, want)
	}
	// Reference: 3 bank paths × 2 banks × 2 timed + 3 L2 access + issue
	// + 2 hit-done.
	if want := 3*2*2 + 3 + 3; rs.Deterministic != want {
		t.Errorf("reference deterministic transitions = %d, want %d", rs.Deterministic, want)
	}
	if is.Places == 0 || is.Immediate == 0 {
		t.Error("empty shape")
	}
}

// TestAnalyticAgreesWithGSPN cross-validates the Monte-Carlo model
// against the closed-form first-order approximation at light load.
func TestAnalyticAgreesWithGSPN(t *testing.T) {
	apps := []AppRates{
		{Name: "light", BaseCPI: 1, LoadFrac: 0.2, StoreFrac: 0.05,
			IHit: 0.99, LoadHit: 0.98, StoreHit: 0.98},
		{Name: "moderate", BaseCPI: 1, LoadFrac: 0.25, StoreFrac: 0.1,
			IHit: 0.97, LoadHit: 0.92, StoreHit: 0.95},
	}
	for _, app := range apps {
		want := AnalyticMemCPI(Integrated(), app)
		r, err := Evaluate(Integrated(), app, 40_000, 11)
		if err != nil {
			t.Fatal(err)
		}
		// The GSPN includes contention and store-drain effects the
		// analytic form omits, so it may exceed the approximation
		// slightly, but must track it.
		if r.MemCPI < want*0.7 || r.MemCPI > want*1.6+0.02 {
			t.Errorf("%s: GSPN %.4f vs analytic %.4f", app.Name, r.MemCPI, want)
		}
	}
}

// TestEnsembleNoise: the §5.6 claim made measurable — bank-count CPI
// differences for a realistic mix are within the ensembles' combined
// 95% intervals, while a genuinely different configuration is not.
func TestEnsembleNoise(t *testing.T) {
	app := AppRates{
		Name: "gcc-like", BaseCPI: 1.01,
		LoadFrac: 0.23, StoreFrac: 0.09,
		IHit: 0.985, LoadHit: 0.97, StoreHit: 0.97,
	}
	cfg16 := Integrated()
	cfg4 := Integrated()
	cfg4.Banks = 4
	e16, err := EvaluateN(cfg16, app, 15_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	e4, err := EvaluateN(cfg4, app, 15_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !WithinNoise(e16, e4) {
		t.Errorf("4 vs 16 banks differ beyond noise: %.4f±%.4f vs %.4f±%.4f",
			e4.MemCPI.Mean(), e4.MemCPI.CI95(), e16.MemCPI.Mean(), e16.MemCPI.CI95())
	}
	// A much slower memory is NOT within noise.
	slow := Integrated()
	slow.MemCycles = 30
	eSlow, err := EvaluateN(slow, app, 15_000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if WithinNoise(e16, eSlow) {
		t.Error("a 5x memory latency change should exceed simulation noise")
	}
	if _, err := EvaluateN(cfg16, app, 1000, 0); err == nil {
		t.Error("zero seeds accepted")
	}
}
