// Package cpumodel builds and evaluates the paper's GSPN performance
// models (Section 5.5): the memory-bank net of Figure 9 and the
// processor/cache net of Figure 10. The Figure 10 net exists in two
// variants selected by SystemConfig:
//
//   - the integrated processor/memory device: instruction and data
//     column-buffer caches backed directly by a 16-bank DRAM array with
//     6-cycle access, and scoreboarding that lets roughly one
//     instruction issue under an outstanding load (transition T23,
//     exponential with rate 1);
//
//   - the conventional reference system (the grey components of
//     Figure 10): first-level caches backed by a shared unified
//     second-level cache and a dual-banked main memory, with the shared
//     port enforcing mutual exclusion between instruction and data
//     traffic (place P6).
//
// Cache hit probabilities measured by the trace-driven simulations
// (internal/workload + internal/cache) are dialled into the transition
// weights exactly as the paper describes, and the net is evaluated by
// Monte-Carlo simulation to yield the memory CPI component. The
// functional-unit ("cpu") CPI component is an input per application —
// the paper obtains it from an internal MicroSparc-II simulator; we
// carry the paper's published values as model inputs (see DESIGN.md,
// substitution 2).
package cpumodel

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gspn"
	"repro/internal/stats"
)

// AppRates carries one application's measured reference mix and cache
// hit probabilities — the quantities the paper "dials into" the GSPN.
type AppRates struct {
	Name string

	// BaseCPI is the functional-unit CPI component (pipeline
	// dependencies, FP latencies) with a zero-latency memory system.
	BaseCPI float64

	// LoadFrac and StoreFrac are loads/stores per instruction.
	LoadFrac, StoreFrac float64

	// First-level (or column-buffer) hit probabilities.
	IHit, LoadHit, StoreHit float64

	// Conditional second-level hit probabilities given a first-level
	// miss; used only when the config has an L2.
	IL2Hit, LoadL2Hit, StoreL2Hit float64
}

// Validate reports obviously inconsistent rates.
func (a AppRates) Validate() error {
	in01 := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("cpumodel: %s: %s=%g outside [0,1]", a.Name, name, v)
		}
		return nil
	}
	for _, c := range []struct {
		n string
		v float64
	}{
		{"IHit", a.IHit}, {"LoadHit", a.LoadHit}, {"StoreHit", a.StoreHit},
		{"IL2Hit", a.IL2Hit}, {"LoadL2Hit", a.LoadL2Hit}, {"StoreL2Hit", a.StoreL2Hit},
		{"LoadFrac", a.LoadFrac}, {"StoreFrac", a.StoreFrac},
	} {
		if err := in01(c.n, c.v); err != nil {
			return err
		}
	}
	if a.LoadFrac+a.StoreFrac > 1 {
		return fmt.Errorf("cpumodel: %s: load+store fraction %g exceeds 1",
			a.Name, a.LoadFrac+a.StoreFrac)
	}
	if a.BaseCPI < 1 {
		return fmt.Errorf("cpumodel: %s: base CPI %g below 1", a.Name, a.BaseCPI)
	}
	return nil
}

// SystemConfig selects and parameterises the net variant.
type SystemConfig struct {
	Name string

	// Banks is the number of independent memory banks (16 for the
	// integrated device, 2 for the reference system).
	Banks int

	// MemCycles is the DRAM array access time in CPU cycles
	// (transitions T1/T3 of Figure 9).
	MemCycles float64

	// PrechargeCycles is the bank recovery time (transition T2).
	PrechargeCycles float64

	// HasL2 includes the grey second-level-cache components.
	HasL2 bool

	// L2Cycles is the second-level cache access time (T24/T25).
	L2Cycles float64

	// ScoreboardRate is the rate of the exponential stall transition
	// T23: the mean number of instructions that issue under an
	// outstanding load is 1/rate. Zero models a machine *without*
	// scoreboarding (the paper's "rate set to infinity"): the processor
	// stalls immediately on a load miss.
	ScoreboardRate float64
}

// ConfigFor derives the GSPN system configuration from a machine
// description: bank count and access/precharge timing from the DRAM
// organisation, the grey L2 components from the reference device's
// board-level cache, and the scoreboard stall rate from the device.
func ConfigFor(d core.Device) SystemConfig {
	cfg := SystemConfig{
		Name:            "integrated",
		Banks:           d.DRAM.Banks,
		MemCycles:       float64(d.DRAM.AccessCycles),
		PrechargeCycles: float64(d.DRAM.PrechargeCycles),
		ScoreboardRate:  d.ScoreboardRate,
	}
	if !d.Integrated {
		cfg.Name = "reference"
	}
	if d.L2Bytes > 0 {
		cfg.HasL2 = true
		cfg.L2Cycles = float64(d.L2Cycles)
	}
	return cfg
}

// Integrated returns the proposed device's configuration: 16 banks,
// 30 ns (6-cycle) access, no L2, scoreboarding rate 1.
func Integrated() SystemConfig {
	return ConfigFor(core.Proposed())
}

// Reference returns the conventional validation system of Section 5.5:
// 16 KB first-level caches, a 256 KB unified second-level cache at
// 6 cycles, dual-banked main memory at 60 ns (12 cycles at 200 MHz).
func Reference() SystemConfig {
	return ConfigFor(core.Reference())
}

// Model is a built net for one (config, application) pair.
type Model struct {
	Cfg   SystemConfig
	App   AppRates
	net   *gspn.Net
	ids   ids
	banks int
}

// ids collects the node handles needed for observation.
type ids struct {
	tIssue    gspn.TransID
	pBankFree []gspn.PlaceID
	pRun      gspn.PlaceID
	pLSU      gspn.PlaceID
	pStalled  gspn.PlaceID
}

// Build constructs the GSPN for the configuration and application.
func Build(cfg SystemConfig, app AppRates) (*Model, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if cfg.Banks < 1 {
		return nil, fmt.Errorf("cpumodel: config %s: need at least one bank", cfg.Name)
	}
	m := &Model{Cfg: cfg, App: app, banks: cfg.Banks}
	m.net, m.ids = buildNet(cfg, app)
	return m, nil
}

// eps floors probabilities so immediate weights stay positive; a path
// with weight eps fires ~never but keeps the net structurally valid.
const eps = 1e-12

func wf(p float64) float64 {
	if p < eps {
		return eps
	}
	return p
}

// buildNet wires the Figure 9 + Figure 10 nets.
func buildNet(cfg SystemConfig, app AppRates) (*gspn.Net, ids) {
	n := gspn.NewNet()
	var id ids

	// ----- shared processor state -----
	pFetchReq := n.Place("fetchReq", 1) // need to fetch next instruction
	pInstr := n.Place("instrReady", 0)  // P1: loaded instruction
	pDecide := n.Place("decide", 0)     // P7: issued instruction to classify
	id.pRun = n.Place("run", 1)         // absent while the CPU is stalled
	id.pLSU = n.Place("lsuFree", 1)     // P10: one outstanding mem op
	pLdOut := n.Place("loadOutstanding", 0)
	id.pStalled = n.Place("stalled", 0)
	pLdComplete := n.Place("loadComplete", 0)

	// L2 port (P6): mutual exclusion between instruction and data
	// traffic into the shared second-level cache and memory.
	var pL2Port gspn.PlaceID
	if cfg.HasL2 {
		pL2Port = n.Place("l2Port", 1)
	}

	// ----- Figure 9: memory banks -----
	// Requests enter a per-bank queue chosen uniformly at random
	// (immediate selection), wait for the bank, are served for
	// MemCycles, and the bank recovers for PrechargeCycles.
	id.pBankFree = make([]gspn.PlaceID, cfg.Banks)
	for b := 0; b < cfg.Banks; b++ {
		id.pBankFree[b] = n.Place(fmt.Sprintf("bank%dFree", b), 1)
	}

	// bankPath wires "req place -> banks -> done place" and returns it.
	// kindTag distinguishes instruction/load/store plumbing.
	bankPath := func(kindTag string, pReq, pDone gspn.PlaceID, holdPort bool) {
		for b := 0; b < cfg.Banks; b++ {
			pQ := n.Place(fmt.Sprintf("%sQ%d", kindTag, b), 0)
			pSvc := n.Place(fmt.Sprintf("%sSvc%d", kindTag, b), 0)
			pPre := n.Place(fmt.Sprintf("%sPre%d", kindTag, b), 0)

			tSel := n.Immediate(fmt.Sprintf("%sSel%d", kindTag, b), 1, 0)
			n.In(tSel, pReq, 1)
			n.Out(tSel, pQ, 1)

			tStart := n.Immediate(fmt.Sprintf("%sStart%d", kindTag, b), 1, 0)
			n.In(tStart, pQ, 1)
			n.In(tStart, id.pBankFree[b], 1)
			if holdPort {
				n.In(tStart, pL2Port, 1)
			}
			n.Out(tStart, pSvc, 1)

			tAcc := n.Timed(fmt.Sprintf("%sAcc%d", kindTag, b), cfg.MemCycles)
			n.In(tAcc, pSvc, 1)
			n.Out(tAcc, pDone, 1)
			n.Out(tAcc, pPre, 1)
			if holdPort {
				n.Out(tAcc, pL2Port, 1)
			}

			tPre := n.Timed(fmt.Sprintf("%sPre%dT", kindTag, b), cfg.PrechargeCycles)
			n.In(tPre, pPre, 1)
			n.Out(tPre, id.pBankFree[b], 1)
		}
	}

	// l2Path wires "req -> L2 (holding the port) -> done".
	l2Path := func(kindTag string, pReq, pDone gspn.PlaceID) {
		pSvc := n.Place(kindTag+"L2Svc", 0)
		tStart := n.Immediate(kindTag+"L2Start", 1, 0)
		n.In(tStart, pReq, 1)
		n.In(tStart, pL2Port, 1)
		n.Out(tStart, pSvc, 1)
		tEnd := n.Timed(kindTag+"L2Acc", cfg.L2Cycles)
		n.In(tEnd, pSvc, 1)
		n.Out(tEnd, pDone, 1)
		n.Out(tEnd, pL2Port, 1)
	}

	// ----- instruction fetch (top of Figure 10) -----
	// T2: first-level instruction cache hit.
	tIHit := n.Immediate("T2_ihit", wf(app.IHit), 0)
	n.In(tIHit, pFetchReq, 1)
	n.Out(tIHit, pInstr, 1)

	if cfg.HasL2 {
		// T3: second-level hit; T4: fill from memory.
		pIL2Req := n.Place("iL2Req", 0)
		tIL2 := n.Immediate("T3_il2", wf((1-app.IHit)*app.IL2Hit), 0)
		n.In(tIL2, pFetchReq, 1)
		n.Out(tIL2, pIL2Req, 1)
		l2Path("ifetch", pIL2Req, pInstr)

		pIMemReq := n.Place("iMemReq", 0)
		tIMem := n.Immediate("T4_imem", wf((1-app.IHit)*(1-app.IL2Hit)), 0)
		n.In(tIMem, pFetchReq, 1)
		n.Out(tIMem, pIMemReq, 1)
		bankPath("ifetch", pIMemReq, pInstr, true)
	} else {
		pIMemReq := n.Place("iMemReq", 0)
		tIMem := n.Immediate("T4_imem", wf(1-app.IHit), 0)
		n.In(tIMem, pFetchReq, 1)
		n.Out(tIMem, pIMemReq, 1)
		bankPath("ifetch", pIMemReq, pInstr, false)
	}

	// ----- issue and classification -----
	// T1: one instruction issues per cycle while the CPU is running.
	id.tIssue = n.Timed("T1_issue", 1)
	n.In(id.tIssue, pInstr, 1)
	n.In(id.tIssue, id.pRun, 1)
	n.Out(id.tIssue, pDecide, 1)
	n.Out(id.tIssue, id.pRun, 1)

	// T7/T8/T9: non-memory / load / store. Fetching of the next
	// instruction proceeds immediately in all three cases.
	pLdReq := n.Place("ldReq", 0)
	pStReq := n.Place("stReq", 0)

	tOther := n.Immediate("T7_other", wf(1-app.LoadFrac-app.StoreFrac), 0)
	n.In(tOther, pDecide, 1)
	n.Out(tOther, pFetchReq, 1)

	tLoad := n.Immediate("T8_load", wf(app.LoadFrac), 0)
	n.In(tLoad, pDecide, 1)
	n.Out(tLoad, pFetchReq, 1)
	n.Out(tLoad, pLdReq, 1)

	tStore := n.Immediate("T9_store", wf(app.StoreFrac), 0)
	n.In(tStore, pDecide, 1)
	n.Out(tStore, pFetchReq, 1)
	n.Out(tStore, pStReq, 1)

	// ----- load path -----
	pLdIss := n.Place("ldIssued", 0)
	tLdIssue := n.Immediate("ldIssue", 1, 0)
	n.In(tLdIssue, pLdReq, 1)
	n.In(tLdIssue, id.pLSU, 1)
	n.Out(tLdIssue, pLdIss, 1)

	// T14: data cache hit — completes in one cycle, LSU released, no
	// stall possible.
	pLdFast := n.Place("ldFast", 0)
	tLdHit := n.Immediate("T14_dhit", wf(app.LoadHit), 0)
	n.In(tLdHit, pLdIss, 1)
	n.Out(tLdHit, pLdFast, 1)
	tLdFastDone := n.Timed("ldHitDone", 1)
	n.In(tLdFastDone, pLdFast, 1)
	n.Out(tLdFastDone, id.pLSU, 1)

	if cfg.HasL2 {
		// T15: SLC hit.
		pLdL2Req := n.Place("ldL2Req", 0)
		tLdL2 := n.Immediate("T15_dl2", wf((1-app.LoadHit)*app.LoadL2Hit), 0)
		n.In(tLdL2, pLdIss, 1)
		n.Out(tLdL2, pLdL2Req, 1)
		n.Out(tLdL2, pLdOut, 1)
		l2Path("ld", pLdL2Req, pLdComplete)

		// T12: main memory reference.
		pLdMemReq := n.Place("ldMemReq", 0)
		tLdMem := n.Immediate("T12_dmem", wf((1-app.LoadHit)*(1-app.LoadL2Hit)), 0)
		n.In(tLdMem, pLdIss, 1)
		n.Out(tLdMem, pLdMemReq, 1)
		n.Out(tLdMem, pLdOut, 1)
		bankPath("ld", pLdMemReq, pLdComplete, true)
	} else {
		pLdMemReq := n.Place("ldMemReq", 0)
		tLdMem := n.Immediate("T12_dmem", wf(1-app.LoadHit), 0)
		n.In(tLdMem, pLdIss, 1)
		n.Out(tLdMem, pLdMemReq, 1)
		n.Out(tLdMem, pLdOut, 1)
		bankPath("ld", pLdMemReq, pLdComplete, false)
	}

	// Load completion: if the CPU is stalled waiting for this load,
	// resume it (higher priority); otherwise just release the LSU.
	tComplStalled := n.Immediate("ldComplStalled", 1, 2)
	n.In(tComplStalled, pLdComplete, 1)
	n.In(tComplStalled, id.pStalled, 1)
	n.In(tComplStalled, pLdOut, 1)
	n.Out(tComplStalled, id.pLSU, 1)
	n.Out(tComplStalled, id.pRun, 1)

	tCompl := n.Immediate("ldCompl", 1, 1)
	n.In(tCompl, pLdComplete, 1)
	n.In(tCompl, pLdOut, 1)
	n.Out(tCompl, id.pLSU, 1)

	// T23: scoreboard stall. While a load is outstanding the CPU keeps
	// issuing until T23 fires (exponential, mean 1/rate instructions),
	// then stalls until the load completes. Without scoreboarding the
	// stall is immediate.
	if cfg.ScoreboardRate > 0 {
		tStall := n.Exponential("T23_stall", cfg.ScoreboardRate)
		n.In(tStall, id.pRun, 1)
		n.In(tStall, pLdOut, 1)
		n.Out(tStall, id.pStalled, 1)
		n.Out(tStall, pLdOut, 1)
	} else {
		tStall := n.Immediate("T23_stall_now", 1, 0)
		n.In(tStall, id.pRun, 1)
		n.In(tStall, pLdOut, 1)
		n.Out(tStall, id.pStalled, 1)
		n.Out(tStall, pLdOut, 1)
	}

	// ----- store path -----
	// The store buffer postpones stores (P9 never stalls the CPU), but
	// each store occupies the load/store unit until it drains.
	pStIss := n.Place("stIssued", 0)
	tStIssue := n.Immediate("stIssue", 1, 0)
	n.In(tStIssue, pStReq, 1)
	n.In(tStIssue, id.pLSU, 1)
	n.Out(tStIssue, pStIss, 1)

	pStFast := n.Place("stFast", 0)
	tStHit := n.Immediate("T13_shit", wf(app.StoreHit), 0)
	n.In(tStHit, pStIss, 1)
	n.Out(tStHit, pStFast, 1)
	tStFastDone := n.Timed("stHitDone", 1)
	n.In(tStFastDone, pStFast, 1)
	n.Out(tStFastDone, id.pLSU, 1)

	pStDone := n.Place("stDone", 0)
	tStDrain := n.Immediate("stDrain", 1, 0)
	n.In(tStDrain, pStDone, 1)
	n.Out(tStDrain, id.pLSU, 1)

	if cfg.HasL2 {
		pStL2Req := n.Place("stL2Req", 0)
		tStL2 := n.Immediate("T16_sl2", wf((1-app.StoreHit)*app.StoreL2Hit), 0)
		n.In(tStL2, pStIss, 1)
		n.Out(tStL2, pStL2Req, 1)
		l2Path("st", pStL2Req, pStDone)

		pStMemReq := n.Place("stMemReq", 0)
		tStMem := n.Immediate("T17_smem", wf((1-app.StoreHit)*(1-app.StoreL2Hit)), 0)
		n.In(tStMem, pStIss, 1)
		n.Out(tStMem, pStMemReq, 1)
		bankPath("st", pStMemReq, pStDone, true)
	} else {
		pStMemReq := n.Place("stMemReq", 0)
		tStMem := n.Immediate("T17_smem", wf(1-app.StoreHit), 0)
		n.In(tStMem, pStIss, 1)
		n.Out(tStMem, pStMemReq, 1)
		bankPath("st", pStMemReq, pStDone, false)
	}

	return n, id
}

// Result is one Monte-Carlo evaluation of a model.
type Result struct {
	// MemCPI is the memory-system CPI component: cycles per instruction
	// beyond the single issue cycle.
	MemCPI float64
	// TotalCPI = BaseCPI + MemCPI (the paper's Table 3 decomposition:
	// BaseCPI already contains the 1.0 issue cycle).
	TotalCPI float64
	// BankUtilization is the mean busy fraction across banks.
	BankUtilization float64
	// StallFrac is the fraction of time the CPU was scoreboard-stalled.
	StallFrac float64
	// LSUBusyFrac is the fraction of time the load/store unit was busy.
	LSUBusyFrac float64
	// Instructions actually simulated.
	Instructions int64
}

// Run evaluates the model for the given number of instructions.
func (m *Model) Run(instructions int64, seed int64) (Result, error) {
	if instructions < 1 {
		return Result{}, fmt.Errorf("cpumodel: need a positive instruction count")
	}
	sim := gspn.NewSim(m.net, seed)
	if err := sim.RunUntilFirings(m.ids.tIssue, instructions); err != nil {
		return Result{}, fmt.Errorf("cpumodel: %s/%s: %w", m.Cfg.Name, m.App.Name, err)
	}
	cycles := sim.Now()
	netCPI := cycles / float64(instructions)
	var freeSum float64
	for _, p := range m.ids.pBankFree {
		freeSum += sim.TimeAvgTokens(p)
	}
	return Result{
		MemCPI:          netCPI - 1,
		TotalCPI:        m.App.BaseCPI + netCPI - 1,
		BankUtilization: 1 - freeSum/float64(len(m.ids.pBankFree)),
		StallFrac:       sim.TimeAvgTokens(m.ids.pStalled),
		LSUBusyFrac:     1 - sim.TimeAvgTokens(m.ids.pLSU),
		Instructions:    instructions,
	}, nil
}

// Evaluate is the one-call helper: build and run.
func Evaluate(cfg SystemConfig, app AppRates, instructions, seed int64) (Result, error) {
	m, err := Build(cfg, app)
	if err != nil {
		return Result{}, err
	}
	return m.Run(instructions, seed)
}

// NetShape describes the built GSPN's structure, for the Figure 9/10
// structural report and for tests that pin the model topology.
type NetShape struct {
	Places        int
	Immediate     int
	Deterministic int
	Exponential   int
	Banks         int
	HasL2         bool
}

// Shape returns the model's net structure.
func (m *Model) Shape() NetShape {
	sh := NetShape{Places: m.net.NumPlaces(), Banks: m.banks, HasL2: m.Cfg.HasL2}
	for i := 0; i < m.net.NumTrans(); i++ {
		switch m.net.TransKind(gspn.TransID(i)) {
		case gspn.Immediate:
			sh.Immediate++
		case gspn.Deterministic:
			sh.Deterministic++
		case gspn.Exponential:
			sh.Exponential++
		}
	}
	return sh
}

// AnalyticMemCPI returns a closed-form first-order approximation of
// the memory CPI component, ignoring bank contention and scoreboard
// overlap:
//
//	CPI_mem ≈ missI·Tmem' + fL·missL·Tload' + (store drain stalls ≈ 0)
//
// where Tmem' folds the conditional L2 hit when present. It exists to
// cross-validate the GSPN (see TestAnalyticAgreesWithGSPN): the Monte-
// Carlo result must land near this value whenever contention is light,
// and above it when contention matters.
func AnalyticMemCPI(cfg SystemConfig, app AppRates) float64 {
	memI := cfg.MemCycles
	memD := cfg.MemCycles
	if cfg.HasL2 {
		memI = app.IL2Hit*cfg.L2Cycles + (1-app.IL2Hit)*(cfg.L2Cycles+cfg.MemCycles)
		memD = app.LoadL2Hit*cfg.L2Cycles + (1-app.LoadL2Hit)*(cfg.L2Cycles+cfg.MemCycles)
	}
	overlap := 0.0
	if cfg.ScoreboardRate > 0 {
		overlap = 1 / cfg.ScoreboardRate // instructions issued under the miss
	}
	loadStall := memD - overlap
	if loadStall < 0 {
		loadStall = 0
	}
	return (1-app.IHit)*memI + app.LoadFrac*(1-app.LoadHit)*loadStall
}

// Ensemble is a multi-seed Monte-Carlo evaluation: the mean memory CPI
// with a ~95% confidence half-width, so "differences below the error
// limits of the simulation" (Section 5.6) is a measurable statement.
type Ensemble struct {
	MemCPI   stats.Running
	TotalCPI stats.Running
	BankUtil stats.Running
}

// EvaluateN runs the model across `seeds` independent seeds.
func EvaluateN(cfg SystemConfig, app AppRates, instructions int64, seeds int) (*Ensemble, error) {
	if seeds < 1 {
		return nil, fmt.Errorf("cpumodel: need at least one seed")
	}
	m, err := Build(cfg, app)
	if err != nil {
		return nil, err
	}
	e := &Ensemble{}
	for s := 0; s < seeds; s++ {
		r, err := m.Run(instructions, int64(s+1))
		if err != nil {
			return nil, err
		}
		e.MemCPI.Add(r.MemCPI)
		e.TotalCPI.Add(r.TotalCPI)
		e.BankUtil.Add(r.BankUtilization)
	}
	return e, nil
}

// WithinNoise reports whether two ensembles' memory CPIs are
// statistically indistinguishable at their combined 95% intervals.
func WithinNoise(a, b *Ensemble) bool {
	diff := a.MemCPI.Mean() - b.MemCPI.Mean()
	if diff < 0 {
		diff = -diff
	}
	return diff <= a.MemCPI.CI95()+b.MemCPI.CI95()
}
