// Package interconnect models the serial-link fabric of Section 4.2:
// four 2.5 Gbit/s point-to-point links per processing element (the
// S-Connect system), giving the node its off-chip bandwidth and the
// sub-200 ns remote latency budget the multiprocessor latencies of
// Table 6 are derived from. The model is analytic — message latency
// and link occupancy — plus a small event-based link scheduler used to
// study contention on a node's links.
package interconnect

import "fmt"

// LinkParams describes one serial link.
type LinkParams struct {
	GbitPerSec float64 // raw signalling rate (2.5 in a 0.25 µm process)
	Efficiency float64 // usable fraction after coding/protocol overhead
	FlightNs   float64 // wire/fibre time of flight
	RouteNs    float64 // per-hop switching latency
}

// Default returns the paper's link: 2.5 Gbit/s, 80% usable (8b/10b-
// style coding), short board-level flight time, and S-Connect's
// low-latency cut-through switching (~10 ns per hop — the fabric was
// designed so that "remote memory latencies can be reduced below
// 200ns" even across a board-scale machine).
func Default() LinkParams {
	return LinkParams{GbitPerSec: 2.5, Efficiency: 0.8, FlightNs: 5, RouteNs: 10}
}

// BytesPerNs returns the usable payload bandwidth of one link.
func (l LinkParams) BytesPerNs() float64 {
	return l.GbitPerSec * l.Efficiency / 8
}

// Node is a processing element's link interface: several links whose
// next-free times are tracked so concurrent messages queue.
type Node struct {
	Links    int
	Params   LinkParams
	nextFree []float64

	BytesSent int64
	Messages  int64
}

// NewNode creates a node interface with n links.
func NewNode(n int, p LinkParams) *Node {
	if n < 1 {
		panic("interconnect: need at least one link")
	}
	return &Node{Links: n, Params: p, nextFree: make([]float64, n)}
}

// PeakBytesPerSec returns the node's aggregate usable bandwidth.
func (n *Node) PeakBytesPerSec() float64 {
	return float64(n.Links) * n.Params.GbitPerSec * 1e9 * n.Params.Efficiency / 8
}

// Send schedules a message of the given size at time nowNs on the
// least-loaded link and returns its delivery time after hops switch
// delays. Occupancy is tracked per link.
func (n *Node) Send(nowNs float64, bytes int, hops int) (deliveredNs float64) {
	best := 0
	for i := 1; i < n.Links; i++ {
		if n.nextFree[i] < n.nextFree[best] {
			best = i
		}
	}
	start := nowNs
	if n.nextFree[best] > start {
		start = n.nextFree[best]
	}
	serialise := float64(bytes) / n.bytesPerNs()
	n.nextFree[best] = start + serialise
	n.BytesSent += int64(bytes)
	n.Messages++
	return start + serialise + n.Params.FlightNs + float64(hops)*n.Params.RouteNs
}

func (n *Node) bytesPerNs() float64 {
	return n.Params.GbitPerSec * n.Params.Efficiency / 8
}

// RemoteReadNs estimates a remote read round trip: request (small
// header) out, block back, over the given hop count each way. Payloads
// are striped across the node's links, as S-Connect does for block
// transfers — a single 2.5 Gbit/s lane could not meet the paper's
// sub-200 ns remote latency on its own.
func (n *Node) RemoteReadNs(blockBytes, hops int) float64 {
	const headerBytes = 16
	bw := n.bytesPerNs() * float64(n.Links)
	req := float64(headerBytes)/bw + n.Params.FlightNs + float64(hops)*n.Params.RouteNs
	resp := float64(blockBytes+headerBytes)/bw + n.Params.FlightNs + float64(hops)*n.Params.RouteNs
	return req + resp
}

// Check verifies the paper's headline claims about the fabric; it
// returns a descriptive error when a claim does not hold under the
// given parameters (used by tests as executable documentation).
func Check(n *Node) error {
	if got := n.PeakBytesPerSec(); got < 0.9e9 {
		return fmt.Errorf("interconnect: peak bandwidth %.3g B/s too low for the paper's ~1 GB/s-class fabric", got)
	}
	if rt := n.RemoteReadNs(32, 2); rt > 200 {
		return fmt.Errorf("interconnect: remote read %.1f ns exceeds the paper's sub-200 ns claim", rt)
	}
	return nil
}
