package interconnect

import "testing"

func TestPeakBandwidth(t *testing.T) {
	n := NewNode(4, Default())
	// 4 × 2.5 Gbit/s × 0.8 / 8 = 1.0 GB/s usable payload.
	if got := n.PeakBytesPerSec(); got != 1e9 {
		t.Errorf("peak = %v B/s, want 1e9", got)
	}
}

func TestRemoteReadUnder200ns(t *testing.T) {
	n := NewNode(4, Default())
	if rt := n.RemoteReadNs(32, 2); rt >= 200 {
		t.Errorf("32 B remote read = %v ns, want < 200 (paper's claim)", rt)
	}
	if err := Check(n); err != nil {
		t.Error(err)
	}
}

func TestSendSerialisesOnLink(t *testing.T) {
	n := NewNode(1, Default())
	d1 := n.Send(0, 1000, 0)
	d2 := n.Send(0, 1000, 0)
	if d2 <= d1 {
		t.Errorf("second message on a busy link must finish later: %v vs %v", d2, d1)
	}
	if n.BytesSent != 2000 || n.Messages != 2 {
		t.Errorf("accounting: %d bytes, %d messages", n.BytesSent, n.Messages)
	}
}

func TestSendSpreadsAcrossLinks(t *testing.T) {
	n := NewNode(4, Default())
	d1 := n.Send(0, 1000, 0)
	d2 := n.Send(0, 1000, 0)
	if d2 != d1 {
		t.Errorf("idle links should give equal delivery times: %v vs %v", d1, d2)
	}
}

func TestHopsAddLatency(t *testing.T) {
	n := NewNode(4, Default())
	near := n.RemoteReadNs(32, 1)
	far := n.RemoteReadNs(32, 5)
	if far <= near {
		t.Error("more hops must cost more")
	}
}

func TestCheckFailsWeakFabric(t *testing.T) {
	weak := NewNode(1, LinkParams{GbitPerSec: 0.1, Efficiency: 0.5, FlightNs: 500, RouteNs: 500})
	if err := Check(weak); err == nil {
		t.Error("Check must reject a fabric that violates the paper's claims")
	}
}

func TestNewNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero links")
		}
	}()
	NewNode(0, Default())
}

func TestRingHops(t *testing.T) {
	f, err := NewFabric(Ring, 8, Default())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[[2]int]int{
		{0, 0}: 0, {0, 1}: 1, {0, 4}: 4, {0, 7}: 1, {2, 6}: 4,
	}
	for pair, want := range cases {
		if got := f.Hops(pair[0], pair[1]); got != want {
			t.Errorf("ring hops(%d,%d) = %d, want %d", pair[0], pair[1], got, want)
		}
	}
	if f.Diameter() != 4 {
		t.Errorf("ring-8 diameter = %d, want 4", f.Diameter())
	}
	if f.BisectionLinks() != 2 {
		t.Errorf("ring bisection = %d links, want 2", f.BisectionLinks())
	}
}

func TestTorusHops(t *testing.T) {
	f, err := NewFabric(Torus2D, 16, Default()) // 4x4
	if err != nil {
		t.Fatal(err)
	}
	if f.Cols != 4 {
		t.Fatalf("cols = %d", f.Cols)
	}
	// Node 0 to node 15 (3,3): wrap both ways -> 1+1 = 2 hops.
	if got := f.Hops(0, 15); got != 2 {
		t.Errorf("torus hops(0,15) = %d, want 2", got)
	}
	// Node 0 to node 10 (2,2): 2+2 = 4 hops (the diameter).
	if got := f.Hops(0, 10); got != 4 {
		t.Errorf("torus hops(0,10) = %d, want 4", got)
	}
	if f.Diameter() != 4 {
		t.Errorf("4x4 torus diameter = %d, want 4", f.Diameter())
	}
}

func TestBisectionGrowsWithMachine(t *testing.T) {
	rows, err := ScalingStudy(Torus2D, []int{4, 16, 64, 256}, Default())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].BisectionGBs <= rows[i-1].BisectionGBs {
			t.Errorf("bisection did not grow: %d nodes %.2f GB/s vs %d nodes %.2f GB/s",
				rows[i].Nodes, rows[i].BisectionGBs, rows[i-1].Nodes, rows[i-1].BisectionGBs)
		}
	}
	// The paper's sub-200 ns remote budget holds at board scale (<=64).
	for _, r := range rows {
		if r.Nodes <= 64 && !r.Within200ns {
			t.Errorf("%d nodes: remote read %.0f ns exceeds 200 ns", r.Nodes, r.RemoteReadNs)
		}
	}
}

func TestFabricErrors(t *testing.T) {
	if _, err := NewFabric(Ring, 1, Default()); err == nil {
		t.Error("1-node fabric accepted")
	}
	if _, err := NewFabric(Torus2D, 7, Default()); err == nil {
		t.Error("non-tiling torus accepted")
	}
}

func TestTopologyString(t *testing.T) {
	if Ring.String() == "" || Torus2D.String() == "" || Topology(9).String() == "" {
		t.Error("topology strings")
	}
}

// TestMeanHopsMatchesPairwise checks the O(n) vertex-transitive
// MeanHops shortcut against the brute-force mean over all distinct
// pairs, across both topologies and square plus rectangular tori.
func TestMeanHopsMatchesPairwise(t *testing.T) {
	cases := []struct {
		topo  Topology
		nodes int
	}{
		{Ring, 2}, {Ring, 5}, {Ring, 8}, {Ring, 33},
		{Torus2D, 4}, {Torus2D, 16}, {Torus2D, 12}, {Torus2D, 64}, {Torus2D, 256},
	}
	for _, c := range cases {
		f, err := NewFabric(c.topo, c.nodes, Default())
		if err != nil {
			t.Fatalf("%v/%d: %v", c.topo, c.nodes, err)
		}
		var sum, pairs int
		for a := 0; a < f.Nodes; a++ {
			for b := a + 1; b < f.Nodes; b++ {
				sum += f.Hops(a, b)
				pairs++
			}
		}
		want := float64(sum) / float64(pairs)
		if got := f.MeanHops(); got != want {
			t.Errorf("%v/%d nodes: MeanHops = %v, pairwise mean = %v", c.topo, c.nodes, got, want)
		}
	}
}
