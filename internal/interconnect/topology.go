package interconnect

import (
	"fmt"
	"math"
)

// Topology models the S-Connect fabric at the system level (Section 8,
// Figure 18): processing elements plugged into a silicon-less
// motherboard whose sockets wire a point-to-point network with four
// links per node. The paper's scaling claim — "the system's
// bi-sectional bandwidth increases as components are added" — and its
// sub-200 ns remote-latency budget both depend on the topology, so
// this model computes hop distances, average/worst-case remote
// latencies, and bisection bandwidth as the machine grows.
type Topology int

// Supported topologies. With four links per node, the natural choices
// are a 2-D torus (4 neighbours — the motherboard grid of Figure 18)
// and a ring (2 links used, the degenerate small-system wiring).
const (
	Ring Topology = iota
	Torus2D
)

func (t Topology) String() string {
	switch t {
	case Ring:
		return "ring"
	case Torus2D:
		return "2-D torus"
	default:
		return fmt.Sprintf("Topology(%d)", int(t))
	}
}

// Fabric is a sized instance of a topology.
type Fabric struct {
	Topo  Topology
	Nodes int
	Link  LinkParams
	// Cols is the torus width (≈ √Nodes, chosen automatically).
	Cols int
}

// NewFabric lays out n nodes on the topology.
func NewFabric(t Topology, n int, link LinkParams) (*Fabric, error) {
	if n < 2 {
		return nil, fmt.Errorf("interconnect: a fabric needs at least 2 nodes")
	}
	f := &Fabric{Topo: t, Nodes: n, Link: link}
	if t == Torus2D {
		f.Cols = int(math.Round(math.Sqrt(float64(n))))
		if f.Cols < 2 {
			f.Cols = 2
		}
		if n%f.Cols != 0 {
			return nil, fmt.Errorf("interconnect: %d nodes do not tile a %d-wide torus", n, f.Cols)
		}
	}
	return f, nil
}

// Hops returns the minimal hop count between two nodes.
func (f *Fabric) Hops(a, b int) int {
	if a == b {
		return 0
	}
	switch f.Topo {
	case Ring:
		d := abs(a - b)
		if w := f.Nodes - d; w < d {
			d = w
		}
		return d
	case Torus2D:
		rows := f.Nodes / f.Cols
		ax, ay := a%f.Cols, a/f.Cols
		bx, by := b%f.Cols, b/f.Cols
		dx := abs(ax - bx)
		if w := f.Cols - dx; w < dx {
			dx = w
		}
		dy := abs(ay - by)
		if w := rows - dy; w < dy {
			dy = w
		}
		return dx + dy
	default:
		panic("interconnect: unknown topology")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// MeanHops returns the average hop count over all distinct node pairs.
// Rings and tori are vertex-transitive — the distance profile is the
// same from every node — so the mean over all pairs equals the mean
// distance from node 0, computed in O(n) instead of O(n²).
func (f *Fabric) MeanHops() float64 {
	var sum int
	for b := 1; b < f.Nodes; b++ {
		sum += f.Hops(0, b)
	}
	return float64(sum) / float64(f.Nodes-1)
}

// Diameter returns the worst-case hop count.
func (f *Fabric) Diameter() int {
	max := 0
	for b := 1; b < f.Nodes; b++ {
		if h := f.Hops(0, b); h > max {
			max = h
		}
	}
	return max
}

// BisectionLinks counts links crossing the best balanced cut.
func (f *Fabric) BisectionLinks() int {
	switch f.Topo {
	case Ring:
		return 2
	case Torus2D:
		rows := f.Nodes / f.Cols
		// Cut between two row-halves: 2×Cols wrap+cross links; or
		// between column halves: 2×rows. Bisection = the smaller cut.
		byRows := 2 * f.Cols
		byCols := 2 * rows
		if byCols < byRows {
			return byCols
		}
		return byRows
	default:
		panic("interconnect: unknown topology")
	}
}

// BisectionBytesPerSec returns the usable bisection bandwidth.
func (f *Fabric) BisectionBytesPerSec() float64 {
	return float64(f.BisectionLinks()) * f.Link.GbitPerSec * 1e9 * f.Link.Efficiency / 8
}

// RemoteLatencyNs estimates the average remote read latency for a
// 32-byte coherence block across the fabric, using the per-node
// striped-link model of RemoteReadNs.
func (f *Fabric) RemoteLatencyNs() float64 {
	n := NewNode(4, f.Link)
	return n.RemoteReadNs(32, int(math.Ceil(f.MeanHops())))
}

// ScalingRow is one machine size in a scaling study.
type ScalingRow struct {
	Nodes        int
	MeanHops     float64
	Diameter     int
	BisectionGBs float64
	RemoteReadNs float64
	Within200ns  bool
}

// ScalingStudy evaluates the fabric across machine sizes (the paper's
// Lego-block growth story: plug in more PEs, bandwidth grows).
func ScalingStudy(t Topology, sizes []int, link LinkParams) ([]ScalingRow, error) {
	rows := make([]ScalingRow, 0, len(sizes))
	for _, n := range sizes {
		f, err := NewFabric(t, n, link)
		if err != nil {
			return nil, err
		}
		lat := f.RemoteLatencyNs()
		rows = append(rows, ScalingRow{
			Nodes:        n,
			MeanHops:     f.MeanHops(),
			Diameter:     f.Diameter(),
			BisectionGBs: f.BisectionBytesPerSec() / 1e9,
			RemoteReadNs: lat,
			Within200ns:  lat < 200,
		})
	}
	return rows, nil
}
