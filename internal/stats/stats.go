// Package stats provides the small statistical toolkit used by the
// simulators: streaming means and variances, confidence intervals,
// histograms, and event-rate counters.
//
// Every simulator in this repository is a Monte-Carlo or discrete-event
// model, so results are reported with their sampling error wherever that
// error is meaningful.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of float64 samples using Welford's
// algorithm, giving numerically stable mean and variance without storing
// the samples. The zero value is ready to use.
type Running struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// Merge folds another accumulator into r, producing the same mean,
// variance, min, and max as if every sample behind o had been Added to
// r directly (up to floating-point rounding). It uses Chan et al.'s
// pairwise combination, which stays numerically stable when sharded
// accumulators from parallel sweep workers are reduced into one.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	rn, on := float64(r.n), float64(o.n)
	n := rn + on
	d := o.mean - r.mean
	r.mean += d * on / n
	r.m2 += o.m2 + d*d*rn*on/n
	if o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n += o.n
}

// N returns the number of samples recorded.
func (r *Running) N() int64 { return r.n }

// Mean returns the sample mean, or 0 with no samples.
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample, or 0 with no samples.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample, or 0 with no samples.
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance (n-1 denominator), or 0
// with fewer than two samples. The result is clamped at 0: Merge's
// pairwise combination can round the second moment a hair below zero
// when shards have near-identical means, and propagating that negative
// value would turn StdDev into NaN.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	v := r.m2 / float64(r.n-1)
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	return v
}

// StdDev returns the sample standard deviation, or 0 with fewer than
// two samples.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean, or 0 with fewer than
// two samples (a single sample carries no spread information, and the
// n==0 case would otherwise divide by sqrt(0)).
func (r *Running) StdErr() float64 {
	if r.n < 2 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// CI95 returns the half-width of a ~95% confidence interval for the mean
// using the normal approximation (adequate for the sample counts used by
// the Monte-Carlo runners, which are in the thousands).
func (r *Running) CI95() float64 { return 1.96 * r.StdErr() }

// String formats the accumulator as "mean ± ci95 (n=N)".
func (r *Running) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", r.Mean(), r.CI95(), r.N())
}

// Counter is a monotonically increasing event counter paired with a
// population counter, reporting a rate. It is the basic unit of
// cache-miss accounting.
type Counter struct {
	Events int64 // e.g. misses
	Total  int64 // e.g. accesses
}

// Rate returns Events/Total, or 0 when Total is 0.
func (c Counter) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Events) / float64(c.Total)
}

// Percent returns the rate as a percentage.
func (c Counter) Percent() float64 { return 100 * c.Rate() }

// Add merges another counter into this one.
func (c *Counter) Add(o Counter) {
	c.Events += o.Events
	c.Total += o.Total
}

// String formats the counter as "events/total (rate%)".
func (c Counter) String() string {
	return fmt.Sprintf("%d/%d (%.3f%%)", c.Events, c.Total, c.Percent())
}

// Histogram is a fixed-bucket histogram over float64 values in
// [Lo, Hi); values outside the range are clamped to the first or last
// bucket. It is used for latency and occupancy distributions.
type Histogram struct {
	Lo, Hi  float64
	Buckets []int64
	n       int64
}

// NewHistogram creates a histogram with the given bucket count over
// [lo, hi). It panics if buckets < 1 or hi <= lo, which are programming
// errors, not data errors.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets < 1 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic("stats: histogram range is empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, buckets)}
}

// Add records one observation. Values outside [Lo, Hi) are clamped:
// x < Lo lands in the first bucket and x >= Hi in the last, so every
// observation is counted and N always equals the number of Adds.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.Buckets)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
	h.n++
}

// N returns the total number of observations.
func (h *Histogram) N() int64 { return h.n }

// Quantile returns an approximation of the q-quantile assuming
// observations are uniform within a bucket. The result is always inside
// [Lo, Hi]: q is clamped to [0, 1], an empty histogram reports Lo,
// q == 0 reports the lower edge of the first non-empty bucket, and
// q == 1 reports the upper edge of the last non-empty bucket even when
// trailing buckets are empty. Because Add clamps out-of-range
// observations into the edge buckets, quantiles of clamped data are
// still bounded by [Lo, Hi], not by the raw observed values.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return h.Lo
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	var cum float64
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, b := range h.Buckets {
		next := cum + float64(b)
		if next >= target && b > 0 {
			frac := (target - cum) / float64(b)
			return h.Lo + (float64(i)+frac)*width
		}
		cum = next
	}
	return h.Hi
}

// Mean returns the histogram's approximate mean (bucket midpoints).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	width := (h.Hi - h.Lo) / float64(len(h.Buckets))
	var sum float64
	for i, b := range h.Buckets {
		mid := h.Lo + (float64(i)+0.5)*width
		sum += mid * float64(b)
	}
	return sum / float64(h.n)
}

// Median of a slice (the slice is sorted in place).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// GeoMean returns the geometric mean of positive values; zero or
// negative values are ignored. SPEC-style ratios are combined this way.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
