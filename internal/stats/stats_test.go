package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	// Known sample stddev of this classic data set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(r.StdDev()-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", r.StdDev(), want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.CI95() != 0 {
		t.Error("empty accumulator not zero")
	}
	r.Add(3)
	if r.Mean() != 3 || r.Variance() != 0 {
		t.Error("single sample stats wrong")
	}
}

// TestRunningSmallN: every derived statistic is finite and zero on
// empty and single-sample accumulators, so a metrics dump of an idle
// accumulator always JSON-encodes (encoding/json rejects NaN).
func TestRunningSmallN(t *testing.T) {
	single := Running{}
	single.Add(42)
	cases := []struct {
		name string
		r    Running
		n    int64
		mean float64
		min  float64
		max  float64
	}{
		{name: "n=0", r: Running{}, n: 0, mean: 0, min: 0, max: 0},
		{name: "n=1", r: single, n: 1, mean: 42, min: 42, max: 42},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.r
			if r.N() != tc.n {
				t.Errorf("N = %d, want %d", r.N(), tc.n)
			}
			if r.Mean() != tc.mean || r.Min() != tc.min || r.Max() != tc.max {
				t.Errorf("mean/min/max = %v/%v/%v, want %v/%v/%v",
					r.Mean(), r.Min(), r.Max(), tc.mean, tc.min, tc.max)
			}
			for name, got := range map[string]float64{
				"Variance": r.Variance(),
				"StdDev":   r.StdDev(),
				"StdErr":   r.StdErr(),
				"CI95":     r.CI95(),
			} {
				if got != 0 {
					t.Errorf("%s = %v, want 0", name, got)
				}
				if math.IsNaN(got) || math.IsInf(got, 0) {
					t.Errorf("%s = %v, must be finite", name, got)
				}
			}
		})
	}
}

// TestVarianceClampsNegativeM2: Merge's pairwise combination can round
// the second moment slightly negative when shards have near-identical
// means; Variance must clamp rather than let StdDev go NaN.
func TestVarianceClampsNegativeM2(t *testing.T) {
	r := Running{n: 3, mean: 1, m2: -1e-18}
	if v := r.Variance(); v != 0 {
		t.Errorf("Variance with negative m2 = %v, want 0", v)
	}
	if sd := r.StdDev(); sd != 0 || math.IsNaN(sd) {
		t.Errorf("StdDev with negative m2 = %v, want 0", sd)
	}
	if se := r.StdErr(); math.IsNaN(se) || se != 0 {
		t.Errorf("StdErr with negative m2 = %v, want 0", se)
	}
}

// TestRunningMatchesDirect (property): Welford result equals the
// two-pass computation.
func TestRunningMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var r Running
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			r.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(n-1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRunningMerge (property): merging two accumulators over split
// halves of a stream equals one accumulator over the whole stream.
func TestRunningMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		cut := rng.Intn(n + 1)
		var whole, a, b Running
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*50 + 10
			whole.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-9 &&
			a.Min() == whole.Min() && a.Max() == whole.Max() &&
			math.Abs(a.CI95()-whole.CI95()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEdgeCases(t *testing.T) {
	// empty + empty
	var a, b Running
	a.Merge(b)
	if a.N() != 0 || a.Mean() != 0 || a.CI95() != 0 {
		t.Error("empty+empty not zero")
	}
	// empty + populated adopts the populated side wholesale.
	var c Running
	b.Add(4)
	b.Add(8)
	c.Merge(b)
	if c.N() != 2 || c.Mean() != 6 || c.Min() != 4 || c.Max() != 8 {
		t.Errorf("empty.Merge(populated) = %v", c)
	}
	// populated + empty is a no-op.
	var empty Running
	before := c
	c.Merge(empty)
	if c != before {
		t.Error("merge of empty accumulator changed state")
	}
	// single + single: CI95 half-width becomes defined (n=2).
	var s1, s2 Running
	s1.Add(1)
	s2.Add(3)
	s1.Merge(s2)
	if s1.N() != 2 || s1.Mean() != 2 {
		t.Errorf("single+single: n=%d mean=%v", s1.N(), s1.Mean())
	}
	wantCI := 1.96 * math.Sqrt(2) / math.Sqrt(2) // sd=sqrt(2), se=sd/sqrt(2)=1
	if math.Abs(s1.CI95()-wantCI) > 1e-12 {
		t.Errorf("single+single CI95 = %v, want %v", s1.CI95(), wantCI)
	}
	// merging a single sample into a populated accumulator keeps the
	// variance consistent with direct accumulation.
	var direct, left, right Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7} {
		direct.Add(x)
		left.Add(x)
	}
	direct.Add(9)
	right.Add(9)
	left.Merge(right)
	if math.Abs(left.Variance()-direct.Variance()) > 1e-12 {
		t.Errorf("merge single: variance %v vs %v", left.Variance(), direct.Variance())
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Events: 3, Total: 12}
	if c.Rate() != 0.25 || c.Percent() != 25 {
		t.Errorf("rate/percent = %v/%v", c.Rate(), c.Percent())
	}
	var zero Counter
	if zero.Rate() != 0 {
		t.Error("zero counter rate must be 0")
	}
	c.Add(Counter{Events: 1, Total: 4})
	if c.Events != 4 || c.Total != 16 {
		t.Errorf("after Add: %+v", c)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 11 {
		t.Errorf("median = %v, want ~50", q)
	}
	if m := h.Mean(); math.Abs(m-50) > 1 {
		t.Errorf("mean = %v, want ~50", m)
	}
	// Clamping.
	h.Add(-5)
	h.Add(1e9)
	if h.Buckets[0] < 1 || h.Buckets[9] < 1 {
		t.Error("out-of-range values not clamped")
	}
}

// TestHistogramQuantileBoundaries pins the clamping contract documented
// on Quantile: results stay inside [Lo, Hi] for q at and beyond the
// boundaries, with trailing empty buckets, and with clamped
// out-of-range observations.
func TestHistogramQuantileBoundaries(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		h := NewHistogram(10, 20, 5)
		for _, q := range []float64{-1, 0, 0.5, 1, 2} {
			if got := h.Quantile(q); got != 10 {
				t.Errorf("Quantile(%v) on empty = %v, want Lo=10", q, got)
			}
		}
	})
	t.Run("q0-and-q1-trailing-empty", func(t *testing.T) {
		// Observations only in bucket 1 of [0,100)/10 buckets: buckets
		// 2..9 are empty tails.
		h := NewHistogram(0, 100, 10)
		for i := 0; i < 7; i++ {
			h.Add(15)
		}
		if got := h.Quantile(0); got != 10 {
			t.Errorf("Quantile(0) = %v, want lower edge 10", got)
		}
		if got := h.Quantile(1); got != 20 {
			t.Errorf("Quantile(1) = %v, want upper edge 20 (not Hi=100)", got)
		}
	})
	t.Run("q-clamped", func(t *testing.T) {
		h := NewHistogram(0, 100, 10)
		for i := 0; i < 100; i++ {
			h.Add(float64(i))
		}
		if got, want := h.Quantile(-0.5), h.Quantile(0); got != want {
			t.Errorf("Quantile(-0.5) = %v, want Quantile(0)=%v", got, want)
		}
		if got, want := h.Quantile(1.5), h.Quantile(1); got != want {
			t.Errorf("Quantile(1.5) = %v, want Quantile(1)=%v", got, want)
		}
		if got := h.Quantile(-0.5); got < 0 {
			t.Errorf("Quantile(-0.5) = %v, below Lo", got)
		}
	})
	t.Run("clamped-observations", func(t *testing.T) {
		h := NewHistogram(0, 100, 10)
		h.Add(-50) // clamps into first bucket
		h.Add(1e9) // clamps into last bucket
		lo, hi := h.Quantile(0), h.Quantile(1)
		if lo < 0 || hi > 100 {
			t.Errorf("quantiles of clamped data = [%v, %v], must stay in [0,100]", lo, hi)
		}
		if hi != 100 {
			t.Errorf("Quantile(1) with clamped max = %v, want upper edge 100", hi)
		}
	})
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Errorf("geomean of non-positives = %v, want 0", g)
	}
	if g := GeoMean([]float64{5, -1, 0}); g != 5 {
		t.Errorf("geomean skipping non-positives = %v, want 5", g)
	}
}
