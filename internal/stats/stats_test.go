package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Errorf("mean = %v, want 5", r.Mean())
	}
	// Known sample stddev of this classic data set: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(r.StdDev()-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", r.StdDev(), want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %v/%v", r.Min(), r.Max())
	}
}

func TestRunningEmptyAndSingle(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Variance() != 0 || r.CI95() != 0 {
		t.Error("empty accumulator not zero")
	}
	r.Add(3)
	if r.Mean() != 3 || r.Variance() != 0 {
		t.Error("single sample stats wrong")
	}
}

// TestRunningMatchesDirect (property): Welford result equals the
// two-pass computation.
func TestRunningMatchesDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var r Running
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			r.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(n-1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestRunningMerge (property): merging two accumulators over split
// halves of a stream equals one accumulator over the whole stream.
func TestRunningMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		cut := rng.Intn(n + 1)
		var whole, a, b Running
		for i := 0; i < n; i++ {
			x := rng.NormFloat64()*50 + 10
			whole.Add(x)
			if i < cut {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-9 &&
			a.Min() == whole.Min() && a.Max() == whole.Max() &&
			math.Abs(a.CI95()-whole.CI95()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEdgeCases(t *testing.T) {
	// empty + empty
	var a, b Running
	a.Merge(b)
	if a.N() != 0 || a.Mean() != 0 || a.CI95() != 0 {
		t.Error("empty+empty not zero")
	}
	// empty + populated adopts the populated side wholesale.
	var c Running
	b.Add(4)
	b.Add(8)
	c.Merge(b)
	if c.N() != 2 || c.Mean() != 6 || c.Min() != 4 || c.Max() != 8 {
		t.Errorf("empty.Merge(populated) = %v", c)
	}
	// populated + empty is a no-op.
	var empty Running
	before := c
	c.Merge(empty)
	if c != before {
		t.Error("merge of empty accumulator changed state")
	}
	// single + single: CI95 half-width becomes defined (n=2).
	var s1, s2 Running
	s1.Add(1)
	s2.Add(3)
	s1.Merge(s2)
	if s1.N() != 2 || s1.Mean() != 2 {
		t.Errorf("single+single: n=%d mean=%v", s1.N(), s1.Mean())
	}
	wantCI := 1.96 * math.Sqrt(2) / math.Sqrt(2) // sd=sqrt(2), se=sd/sqrt(2)=1
	if math.Abs(s1.CI95()-wantCI) > 1e-12 {
		t.Errorf("single+single CI95 = %v, want %v", s1.CI95(), wantCI)
	}
	// merging a single sample into a populated accumulator keeps the
	// variance consistent with direct accumulation.
	var direct, left, right Running
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7} {
		direct.Add(x)
		left.Add(x)
	}
	direct.Add(9)
	right.Add(9)
	left.Merge(right)
	if math.Abs(left.Variance()-direct.Variance()) > 1e-12 {
		t.Errorf("merge single: variance %v vs %v", left.Variance(), direct.Variance())
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Events: 3, Total: 12}
	if c.Rate() != 0.25 || c.Percent() != 25 {
		t.Errorf("rate/percent = %v/%v", c.Rate(), c.Percent())
	}
	var zero Counter
	if zero.Rate() != 0 {
		t.Error("zero counter rate must be 0")
	}
	c.Add(Counter{Events: 1, Total: 4})
	if c.Events != 4 || c.Total != 16 {
		t.Errorf("after Add: %+v", c)
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Errorf("N = %d", h.N())
	}
	if q := h.Quantile(0.5); math.Abs(q-50) > 11 {
		t.Errorf("median = %v, want ~50", q)
	}
	if m := h.Mean(); math.Abs(m-50) > 1 {
		t.Errorf("mean = %v, want ~50", m)
	}
	// Clamping.
	h.Add(-5)
	h.Add(1e9)
	if h.Buckets[0] < 1 || h.Buckets[9] < 1 {
		t.Error("out-of-range values not clamped")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewHistogram(0, 0, 5) },
		func() { NewHistogram(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("geomean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Errorf("geomean of non-positives = %v, want 0", g)
	}
	if g := GeoMean([]float64{5, -1, 0}); g != 5 {
		t.Errorf("geomean skipping non-positives = %v, want 5", g)
	}
}
