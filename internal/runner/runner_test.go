package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// quickReq is the CI-sized request the tests run: cheap analytic
// outputs plus one real trace-driven figure.
func quickReq(names ...string) Request {
	return Request{Experiments: names, Quick: true, Budget: 50_000}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string // substring of the error, "" = valid
	}{
		{"empty", Request{}, "no experiments"},
		{"unknown", quickReq("fig99"), `unknown experiment "fig99"`},
		{"known", quickReq("fig7", "spec", "designspace", "all"), ""},
		{"bad-procs", Request{Experiments: []string{"fig13"}, Procs: []int{0}}, "processor count"},
		{"bad-machine-json", Request{Experiments: []string{"spec"}, Machine: json.RawMessage(`{`)}, "machine config"},
		{"unknown-machine-field", Request{Experiments: []string{"spec"}, Machine: json.RawMessage(`{"NoSuchKnob":1}`)}, "machine config"},
		{"invalid-machine", Request{Experiments: []string{"spec"}, Machine: json.RawMessage(`{"Banks":0}`)}, "machine config"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.req.Validate()
			if c.want == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, c.want)
			}
		})
	}
}

func TestExpandNames(t *testing.T) {
	all := ExpandNames([]string{"all"})
	if len(all) < 10 || all[0] != "spec" || all[len(all)-1] != "selftest" {
		t.Errorf("ExpandNames(all) = %v", all)
	}
	plain := []string{"fig7", "fig8"}
	if got := ExpandNames(plain); len(got) != 2 || got[0] != "fig7" {
		t.Errorf("ExpandNames(%v) = %v", plain, got)
	}
}

// TestRunRendersAndReports: Run renders every requested experiment to
// Out in request order and mirrors each through OnResult.
func TestRunRendersAndReports(t *testing.T) {
	var out bytes.Buffer
	var results []Result
	err := Run(context.Background(), quickReq("cost", "spec"), Config{
		Out:      &out,
		OnResult: func(r Result) { results = append(results, r) },
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if out.Len() == 0 {
		t.Fatal("Run produced no output")
	}
	if len(results) != 2 || results[0].Name != "cost" || results[1].Name != "spec" {
		t.Fatalf("OnResult order = %+v, want cost then spec", results)
	}
	if results[0].Units != 1 || results[0].Value == nil {
		t.Errorf("cost result = %+v", results[0])
	}
}

// TestRunUnknownExperiment: a name that slips past the caller fails
// with the same error the CLI has always printed.
func TestRunUnknownExperiment(t *testing.T) {
	err := Run(context.Background(), quickReq("fig99"), Config{})
	if err == nil || !strings.Contains(err.Error(), `unknown experiment "fig99"`) {
		t.Fatalf("Run = %v, want unknown-experiment error", err)
	}
}

// TestRunCanceled: a pre-canceled context runs nothing and reports
// context.Canceled; no result is ever delivered.
func TestRunCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out bytes.Buffer
	called := 0
	err := Run(ctx, quickReq("cost"), Config{
		Out:      &out,
		OnResult: func(Result) { called++ },
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if called != 0 || out.Len() != 0 {
		t.Errorf("canceled run delivered results (OnResult %d, %d bytes out)", called, out.Len())
	}
}

// TestRunWarmCache: the second run against the same result-cache dir is
// served entirely from cache (hits > 0, misses == 0) with byte-identical
// rendered output — the property the daemon's overlapping-request
// workload depends on.
func TestRunWarmCache(t *testing.T) {
	dir := t.TempDir()
	req := quickReq("fig7")

	var cold bytes.Buffer
	coldReg := obs.NewRegistry()
	if err := Run(context.Background(), req, Config{
		Out: &cold, Obs: coldReg, ResultCacheDir: dir, Workers: 4,
	}); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if misses := coldReg.Counter("resultcache", "misses").Value(); misses == 0 {
		t.Fatalf("cold run reported no misses")
	}

	var warm bytes.Buffer
	warmReg := obs.NewRegistry()
	var units, skipped int
	if err := Run(context.Background(), req, Config{
		Out: &warm, Obs: warmReg, ResultCacheDir: dir, Workers: 2,
		OnUnit: func(ev sweep.UnitEvent) {
			units++
			if ev.Skipped {
				skipped++
			}
		},
	}); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if !bytes.Equal(cold.Bytes(), warm.Bytes()) {
		t.Error("warm output differs from cold")
	}
	hits := warmReg.Counter("resultcache", "hits").Value()
	misses := warmReg.Counter("resultcache", "misses").Value()
	if hits == 0 || misses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want hits>0 misses==0", hits, misses)
	}
	if units == 0 || skipped != 0 {
		t.Errorf("OnUnit saw %d units (%d skipped)", units, skipped)
	}
}

// TestRunFrontierExport: the designspace frontier lands at
// Config.FrontierPath without any CLI globals involved.
func TestRunFrontierExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pareto.csv")
	var out bytes.Buffer
	if err := Run(context.Background(), quickReq("designspace"), Config{
		Out: &out, FrontierPath: path,
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("frontier not written: %v", err)
	}
	if lines := bytes.Count(data, []byte("\n")); lines < 2 {
		t.Errorf("frontier CSV has %d lines, want header + rows:\n%s", lines, data)
	}
}
