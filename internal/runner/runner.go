// Package runner is the run-orchestration layer between the experiment
// registry and the user-facing frontends. A Request names experiments
// plus the full fidelity surface (budget, seed, machine description,
// design-space axes, quick mode) as plain serializable data; Run owns
// everything a frontend would otherwise reimplement — building
// experiments.Options, wiring the trace and result caches, constructing
// the sweep engine, rendering each assembled result, and reporting
// structured progress. cmd/iramsim is a thin flag-parsing client of
// this package, and cmd/iramsimd serves the same Requests over HTTP:
// one run path, two transports, byte-identical output.
package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/resultstore"
	"repro/internal/selftest"
	"repro/internal/sweep"
	"repro/internal/tracestore"
	"repro/internal/workload"
)

// Request specifies one run: which experiments, at what fidelity,
// against which machine. It is plain data with JSON tags — the daemon
// decodes a POST body straight into it — and deliberately carries no
// local paths or callbacks; those are the caller's Config.
type Request struct {
	// Experiments are the experiment names, in output order. The single
	// name "all" expands to the full `iramsim all` sequence.
	Experiments []string `json:"experiments"`
	// Quick selects reduced-fidelity (CI-sized) runs.
	Quick bool `json:"quick,omitempty"`
	// Budget overrides the per-workload instruction budget (0 = default).
	Budget int64 `json:"budget,omitempty"`
	// Seed drives all Monte-Carlo randomness (0 = the default seed 1).
	Seed int64 `json:"seed,omitempty"`
	// Procs overrides the processor counts for fig13..fig17.
	Procs []int `json:"procs,omitempty"`
	// Machine is an optional JSON machine description overriding the
	// paper's integrated device, validated by core.FromJSON exactly as
	// the -machine flag is.
	Machine json.RawMessage `json:"machine,omitempty"`
	// DSBanks..DSVictims override the designspace search axes.
	DSBanks   []int `json:"ds_banks,omitempty"`
	DSColumns []int `json:"ds_columns,omitempty"`
	DSWays    []int `json:"ds_ways,omitempty"`
	DSVictims []int `json:"ds_victims,omitempty"`
	// DSCoarse / DSRefine control the designspace coarse-grid stride
	// and adaptive-refinement rounds.
	DSCoarse int `json:"ds_coarse,omitempty"`
	DSRefine int `json:"ds_refine,omitempty"`
}

// Config carries the cross-cutting wiring a caller sets up once per
// run: output streams, caches, observability, and progress callbacks.
// The zero value runs serially with no caches and discards all output.
type Config struct {
	// Workers sizes the sweep worker pool (<=0 means serial). A
	// resource decision, so it lives here and not on the Request.
	Workers int
	// JSON renders experiment results as JSON instead of tables.
	JSON bool
	// Out receives the deterministic rendered experiment output; nil
	// discards it (callers may consume OnResult instead).
	Out io.Writer
	// Progress receives human-readable per-unit progress lines; nil is
	// silent. Timing-dependent, so never mix it into Out.
	Progress io.Writer
	// Obs, when non-nil, receives every metric family the run touches.
	Obs *obs.Registry
	// Trace, when non-nil, records sweep unit events.
	Trace *obs.Tracer
	// TraceDir, when non-empty, replays recorded workload streams from
	// this cache directory, recording on miss. RecordTraces forces
	// re-recording (and disables the result cache: a record run's
	// purpose is to execute every workload).
	TraceDir     string
	RecordTraces bool
	// ResultCache, when non-nil, memoizes assembled unit results. When
	// nil and ResultCacheDir is non-empty, Run opens a store there —
	// the daemon passes a shared *resultstore.Store so concurrent runs
	// single-flight their overlapping units in-process.
	ResultCache    sweep.ResultCache
	ResultCacheDir string
	// FrontierPath, when non-empty, exports any result carrying a
	// Pareto frontier (the designspace search) to this file after
	// rendering (.csv = CSV, anything else JSON).
	FrontierPath string
	// OnUnit, when non-nil, receives one structured event per sweep
	// unit as it completes — the daemon streams these to HTTP clients.
	OnUnit func(sweep.UnitEvent)
	// OnResult, when non-nil, receives each experiment's assembled
	// result after it is rendered.
	OnResult func(Result)
}

// Result is one experiment's assembled outcome.
type Result struct {
	// Name is the experiment name.
	Name string
	// Value is the experiment's structured result.
	Value interface{}
	// Units is the number of sweep units the experiment decomposed into.
	Units int
	// Elapsed is the summed unit wall time (not wall-clock).
	Elapsed time.Duration
}

// cliNames are the text-only outputs registered here rather than in the
// experiments package (they render repository metadata, not paper
// figures): the datasheet, the workload table, the GSPN shape lines,
// and the built-in self test.
var cliNames = []string{"spec", "workloads", "fig910", "selftest"}

// ExpandNames resolves the "all" shorthand to the full experiment
// sequence and otherwise returns the names unchanged.
func ExpandNames(names []string) []string {
	if len(names) == 1 && names[0] == "all" {
		all := append([]string{"spec"}, experiments.SweepNames()...)
		return append(all, "selftest")
	}
	return names
}

// Known reports whether name is a runnable experiment.
func Known(name string) bool {
	switch name {
	case "all", "designspace": // designspace is runnable but not part of "all"
		return true
	}
	for _, n := range cliNames {
		if n == name {
			return true
		}
	}
	for _, n := range experiments.SweepNames() {
		if n == name {
			return true
		}
	}
	return false
}

// Validate rejects malformed requests before any work is scheduled:
// unknown experiment names, an unparsable or invalid machine
// description (the core.FromJSON validation errors, verbatim), and
// non-positive processor counts. The daemon surfaces these as 400s.
func (r Request) Validate() error {
	if len(r.Experiments) == 0 {
		return fmt.Errorf("runner: no experiments requested")
	}
	for _, name := range r.Experiments {
		if !Known(name) {
			return fmt.Errorf("runner: unknown experiment %q", name)
		}
	}
	for _, p := range r.Procs {
		if p < 1 {
			return fmt.Errorf("runner: bad processor count %d", p)
		}
	}
	if len(r.Machine) > 0 {
		if _, err := core.FromJSON(r.Machine); err != nil {
			return err
		}
	}
	return nil
}

// Options resolves the request into experiment options (without the
// caller wiring, which Run adds from its Config).
func (r Request) Options() (experiments.Options, error) {
	opts := experiments.Default()
	if r.Quick {
		opts = experiments.Quick()
	}
	if r.Budget > 0 {
		opts.Budget = r.Budget
	}
	if r.Seed != 0 {
		opts.Seed = r.Seed
	}
	if len(r.Procs) > 0 {
		for _, p := range r.Procs {
			if p < 1 {
				return experiments.Options{}, fmt.Errorf("runner: bad processor count %d", p)
			}
		}
		opts.Procs = append([]int(nil), r.Procs...)
	}
	if len(r.Machine) > 0 {
		dev, err := core.FromJSON(r.Machine)
		if err != nil {
			return experiments.Options{}, err
		}
		opts.Machine = &dev
	}
	opts.DSBanks = append([]int(nil), r.DSBanks...)
	opts.DSColumns = append([]int(nil), r.DSColumns...)
	opts.DSWays = append([]int(nil), r.DSWays...)
	opts.DSVictims = append([]int(nil), r.DSVictims...)
	opts.DSCoarse = r.DSCoarse
	opts.DSRefine = r.DSRefine
	return opts, nil
}

// OpenTraceSource wires a workload trace cache directory into a
// workload.Source (replay, record-on-miss; force re-records). Exposed
// for the CLI's record-all mode, which streams workloads outside a run.
func OpenTraceSource(dir string, seed int64, force bool) (workload.Source, error) {
	store, err := tracestore.NewStore(dir)
	if err != nil {
		return nil, err
	}
	return workload.Traced{Store: store, Seed: seed, Force: force}, nil
}

// Run executes the request end to end: resolve options, wire caches,
// fan the experiments across the worker pool, render each result to
// cfg.Out in request order, and report structured progress through the
// Config callbacks. Canceling ctx abandons the run's queued units and
// returns ctx.Err(). Output is byte-identical for any worker count and
// whether or not the caches are warm.
func Run(ctx context.Context, req Request, cfg Config) error {
	opts, err := req.Options()
	if err != nil {
		return err
	}
	if cfg.TraceDir != "" {
		src, err := OpenTraceSource(cfg.TraceDir, opts.Seed, cfg.RecordTraces)
		if err != nil {
			return err
		}
		opts.TraceSource = src
	}
	// The result cache is never consulted by a trace-record run: its
	// purpose is to execute every workload so the traces get written.
	if cfg.ResultCache == nil && cfg.ResultCacheDir != "" && !cfg.RecordTraces {
		store, err := resultstore.NewStore(cfg.ResultCacheDir)
		if err != nil {
			return err
		}
		cfg.ResultCache = store
	}
	if cfg.RecordTraces {
		cfg.ResultCache = nil
	}
	opts.Workers = cfg.Workers
	opts.Obs = cfg.Obs
	opts.ResultCache = cfg.ResultCache
	opts.Ctx = ctx
	ms := experiments.NewMeasurementSet(opts)
	return RunJobs(ctx, ExpandNames(req.Experiments), opts, ms, cfg)
}

// RunJobs is the options-level entry point under Run: it fans the named
// experiments' units over the worker pool against pre-built options and
// a caller-owned MeasurementSet, rendering each assembled result in
// name order as its sweep frontier completes. The CLI's determinism and
// golden tests drive this directly so the byte-identity contract is
// pinned at the same layer both frontends share.
func RunJobs(ctx context.Context, names []string, opts experiments.Options,
	ms *experiments.MeasurementSet, cfg Config) error {
	jobs := make([]sweep.Job, 0, len(names))
	for _, name := range names {
		j, err := jobFor(name, opts, ms)
		if err != nil {
			return err
		}
		jobs = append(jobs, j)
	}
	eng := &sweep.Engine{
		Workers:  cfg.Workers,
		Progress: cfg.Progress,
		Obs:      cfg.Obs,
		Trace:    cfg.Trace,
		Cache:    cfg.ResultCache,
		OnUnit:   cfg.OnUnit,
	}
	return eng.RunContext(ctx, jobs, func(r sweep.JobResult) error {
		if cfg.Out != nil {
			if err := render(cfg.Out, r.Name, r.Value, cfg.JSON, cfg.FrontierPath); err != nil {
				return err
			}
		}
		if cfg.OnResult != nil {
			cfg.OnResult(Result{Name: r.Name, Value: r.Value, Units: r.Units, Elapsed: r.Elapsed})
		}
		return nil
	})
}

// jobFor maps an experiment name to a sweep job. The text-only outputs
// (spec, workloads, fig910, selftest) live here as single-unit jobs
// that render into a buffer; everything else comes from the
// experiments registry.
func jobFor(name string, opts experiments.Options, ms *experiments.MeasurementSet) (sweep.Job, error) {
	switch name {
	case "spec":
		return sweep.Single(name, 0, func() (interface{}, error) {
			var buf bytes.Buffer
			for _, line := range opts.Device().Datasheet() {
				fmt.Fprintln(&buf, line)
			}
			fmt.Fprintln(&buf)
			return buf.Bytes(), nil
		}), nil
	case "workloads":
		return sweep.Single(name, 0, func() (interface{}, error) {
			var buf bytes.Buffer
			t := report.NewTable("Table 2: benchmark stand-ins",
				"benchmark", "fp", "base CPI", "budget", "description")
			for _, name := range workload.Names() {
				w, err := workload.ByName(name)
				if err != nil {
					return nil, err
				}
				desc := w.Description
				if len(desc) > 72 {
					desc = desc[:69] + "..."
				}
				t.Row(w.Name, w.Float, w.BaseCPI, w.Budget, desc)
			}
			t.Render(&buf)
			return buf.Bytes(), nil
		}), nil
	case "fig910":
		return sweep.Single(name, 0, func() (interface{}, error) {
			var buf bytes.Buffer
			for _, cfg := range []cpumodel.SystemConfig{cpumodel.ConfigFor(opts.Device()), cpumodel.Reference()} {
				m, err := cpumodel.Build(cfg, cpumodel.AppRates{
					Name: "shape", BaseCPI: 1, LoadFrac: 0.25, StoreFrac: 0.1,
					IHit: 0.95, LoadHit: 0.95, StoreHit: 0.95,
					IL2Hit: 0.9, LoadL2Hit: 0.9, StoreL2Hit: 0.9,
				})
				if err != nil {
					return nil, err
				}
				sh := m.Shape()
				fmt.Fprintf(&buf,
					"Figure 9/10 net (%s): %d places, %d immediate + %d deterministic + %d exponential transitions, %d banks, L2=%v"+"\n",
					cfg.Name, sh.Places, sh.Immediate, sh.Deterministic, sh.Exponential, sh.Banks, sh.HasL2)
			}
			fmt.Fprintln(&buf)
			return buf.Bytes(), nil
		}), nil
	case "selftest":
		return sweep.Single(name, 0, func() (interface{}, error) {
			var buf bytes.Buffer
			r, err := selftest.Run(selftest.Config{WindowBytes: 256 << 10})
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(&buf, "built-in self test: passed=%v phase=%s instructions=%d window=%dKB fills=%d\n\n",
				r.Passed, r.Phase, r.Instructions, r.MemoryBytes>>10, r.CacheFills)
			return buf.Bytes(), nil
		}), nil
	}
	j, err := experiments.JobFor(name, opts, ms)
	if err != nil {
		return sweep.Job{}, fmt.Errorf("unknown experiment %q", name)
	}
	return j, nil
}

// render writes one experiment's assembled result to out in the same
// format the serial CLI has always produced.
func render(out io.Writer, name string, v interface{}, jsonMode bool, frontierPath string) error {
	switch name {
	case "cost", "fabric":
		// rendered as plain tables even in JSON mode, as before
		v.(*report.Table).Render(out)
		return nil
	}
	if b, ok := v.([]byte); ok {
		_, err := out.Write(b)
		return err
	}
	if err := exportFrontier(v, frontierPath); err != nil {
		return err
	}
	if !jsonMode {
		if mt, ok := v.(multiTabler); ok {
			for _, tab := range mt.Tables() {
				tab.Render(out)
			}
			return nil
		}
	}
	t, ok := v.(tabler)
	if !ok {
		return fmt.Errorf("experiment %q returned unrenderable %T", name, v)
	}
	if err := emit(out, name, t, jsonMode); err != nil {
		return err
	}
	if !jsonMode {
		if p, ok := v.(plotter); ok {
			p.Plot().Render(out)
		}
	}
	return nil
}

// tabler is any experiment result that can render itself.
type tabler interface{ Table() *report.Table }

// multiTabler marks results that render as several tables (the
// designspace search: point grid + Pareto frontier). It takes
// precedence over tabler outside JSON mode.
type multiTabler interface{ Tables() []*report.Table }

// plotter marks results that also render an ASCII plot (fig11, fig12,
// fig13..fig17).
type plotter interface{ Plot() *report.Series }

// emit writes a result as a table or, in JSON mode, as indented JSON
// tagged with the experiment name.
func emit(out io.Writer, name string, v tabler, jsonMode bool) error {
	if !jsonMode {
		v.Table().Render(out)
		return nil
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]interface{}{"experiment": name, "result": v})
}

// frontierWriter is implemented by results with an exportable Pareto
// frontier (the designspace search).
type frontierWriter interface {
	WriteFrontierJSON(io.Writer) error
	WriteFrontierCSV(io.Writer) error
}

// exportFrontier writes one result's Pareto frontier to path; the
// format follows the file extension (.csv = CSV, anything else JSON).
func exportFrontier(v interface{}, path string) error {
	fw, ok := v.(frontierWriter)
	if !ok || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("ds-frontier: %w", err)
	}
	if strings.HasSuffix(path, ".csv") {
		err = fw.WriteFrontierCSV(f)
	} else {
		err = fw.WriteFrontierJSON(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("ds-frontier: %w", err)
	}
	return nil
}
