package experiments

import (
	"fmt"

	"repro/internal/cpumodel"
	"repro/internal/memsys"
	"repro/internal/paperref"
	"repro/internal/report"
	"repro/internal/vm"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Figures 11 & 12: CPI sensitivity to cache/memory latency.
// ---------------------------------------------------------------------

// LatencyPoint is one (latency, CPI) sample for one application.
type LatencyPoint struct {
	Bench     string
	SLCCycles float64 // conventional system (Figure 11) only
	MemCycles float64
	CPI       float64
}

// LatencyResult is a Figure 11 or Figure 12 data set.
type LatencyResult struct {
	Conventional bool
	Points       []LatencyPoint
}

// fig1112Benches are the paper's representative high/low-CPI pair.
var fig1112Benches = []string{"141.apsi", "126.gcc"}

// Fig11 sweeps second-level-cache and memory latency for the
// conventional reference CPU (141.apsi and 126.gcc, as in the paper).
func Fig11(o Options, ms *MeasurementSet) (*LatencyResult, error) {
	res := &LatencyResult{Conventional: true}
	slcLats := []float64{2, 4, 6, 10, 14, 20}
	memLats := []float64{6, 12, 20, 30, 40, 60}
	for _, name := range fig1112Benches {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		m, err := ms.Get(w)
		if err != nil {
			return nil, err
		}
		rates := m.Rates(false, false)
		for _, slc := range slcLats {
			for _, mem := range memLats {
				cfg := cpumodel.Reference()
				cfg.L2Cycles = slc
				cfg.MemCycles = mem
				cfg.PrechargeCycles = mem / 2
				r, err := cpumodel.Evaluate(cfg, rates, o.GSPNInstr, o.Seed)
				if err != nil {
					return nil, err
				}
				res.Points = append(res.Points, LatencyPoint{
					Bench: name, SLCCycles: slc, MemCycles: mem, CPI: r.TotalCPI,
				})
			}
		}
	}
	return res, nil
}

// Fig12 sweeps memory latency for the integrated CPU.
func Fig12(o Options, ms *MeasurementSet) (*LatencyResult, error) {
	res := &LatencyResult{}
	memLats := []float64{2, 4, 6, 8, 10, 14, 20}
	for _, name := range fig1112Benches {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		m, err := ms.Get(w)
		if err != nil {
			return nil, err
		}
		rates := m.Rates(true, true)
		for _, mem := range memLats {
			cfg := cpumodel.Integrated()
			cfg.MemCycles = mem
			cfg.PrechargeCycles = mem / 2
			r, err := cpumodel.Evaluate(cfg, rates, o.GSPNInstr, o.Seed)
			if err != nil {
				return nil, err
			}
			res.Points = append(res.Points, LatencyPoint{
				Bench: name, MemCycles: mem, CPI: r.TotalCPI,
			})
		}
	}
	return res, nil
}

// Table renders a latency sweep.
func (r *LatencyResult) Table() *report.Table {
	if r.Conventional {
		t := report.NewTable("Figure 11: conventional CPU CPI vs SLC & memory latency",
			"benchmark", "SLC (cy)", "memory (cy)", "CPI")
		for _, p := range r.Points {
			t.Row(p.Bench, p.SLCCycles, p.MemCycles, fmt.Sprintf("%.3f", p.CPI))
		}
		t.Note("paper: memory latency alone can cost up to 2x over the raw CPI in the operating region")
		return t
	}
	t := report.NewTable("Figure 12: integrated CPU CPI vs memory latency",
		"benchmark", "memory (cy)", "CPI")
	for _, p := range r.Points {
		t.Row(p.Bench, p.MemCycles, fmt.Sprintf("%.3f", p.CPI))
	}
	t.Note("paper: at 30 ns (6 cycles) the CPI impact is 10-25 percent above the raw figure")
	return t
}

// CPIAt returns the CPI for a bench at given latencies (0 = any).
func (r *LatencyResult) CPIAt(bench string, slc, mem float64) (float64, bool) {
	for _, p := range r.Points {
		if p.Bench == bench && (slc == 0 || p.SLCCycles == slc) && p.MemCycles == mem {
			return p.CPI, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Section 5.6: bank-count sensitivity.
// ---------------------------------------------------------------------

// BankRow is one (banks, benchmark) sample.
type BankRow struct {
	Bench       string
	Integrated  bool
	Banks       int
	MemCPI      float64
	MemCPICI    float64 // 95% half-width over the seed ensemble
	Utilization float64
}

// BankResult is the Section 5.6 study.
type BankResult struct{ Rows []BankRow }

// Banks evaluates 4/8/16 banks for the integrated system and 2-8 for
// the conventional reference, reporting CPI and bank utilisation.
func Banks(o Options, ms *MeasurementSet) (*BankResult, error) {
	res := &BankResult{}
	benches := []string{"126.gcc", "102.swim"}
	for _, name := range benches {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		m, err := ms.Get(w)
		if err != nil {
			return nil, err
		}
		intRates := m.Rates(true, true)
		refRates := m.Rates(false, false)
		const seeds = 5
		for _, b := range []int{4, 8, 16} {
			cfg := cpumodel.Integrated()
			cfg.Banks = b
			e, err := cpumodel.EvaluateN(cfg, intRates, o.GSPNInstr, seeds)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, BankRow{
				Bench: name, Integrated: true, Banks: b,
				MemCPI: e.MemCPI.Mean(), MemCPICI: e.MemCPI.CI95(),
				Utilization: e.BankUtil.Mean(),
			})
		}
		for _, b := range []int{2, 4, 8} {
			cfg := cpumodel.Reference()
			cfg.Banks = b
			e, err := cpumodel.EvaluateN(cfg, refRates, o.GSPNInstr, seeds)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, BankRow{
				Bench: name, Integrated: false, Banks: b,
				MemCPI: e.MemCPI.Mean(), MemCPICI: e.MemCPI.CI95(),
				Utilization: e.BankUtil.Mean(),
			})
		}
	}
	return res, nil
}

// Table renders the bank study.
func (r *BankResult) Table() *report.Table {
	t := report.NewTable("Section 5.6: memory bank sensitivity (5-seed ensembles)",
		"benchmark", "system", "banks", "mem CPI (±95%)", "bank utilisation %")
	for _, row := range r.Rows {
		sys := "conventional"
		if row.Integrated {
			sys = "integrated"
		}
		t.Row(row.Bench, sys, row.Banks,
			fmt.Sprintf("%.3f ± %.3f", row.MemCPI, row.MemCPICI),
			fmt.Sprintf("%.2f", 100*row.Utilization))
	}
	t.Note("paper: performance differences across bank counts are below simulation noise;")
	t.Note("gcc keeps 16 banks ~1.2 percent busy, rising to ~9.6 percent with 2 banks")
	return t
}

// ---------------------------------------------------------------------
// Table 1 and Figure 2: the SS-5 versus SS-10/61 motivation study.
// ---------------------------------------------------------------------

// Table1Row is one machine's measured-vs-modelled comparison.
type Table1Row struct {
	Machine        string
	SpecInt92      float64 // published
	SpecFp92       float64 // published
	PaperSynopsys  float64 // minutes, published
	ModelNsPerInst float64 // our hierarchy model on the Synopsys stand-in
	ModelRelative  float64 // run time relative to the fastest machine
}

// Table1Result is the Table 1 reproduction.
type Table1Result struct{ Rows []Table1Row }

// Table1 runs the Synopsys stand-in workload through the SS-5 and
// SS-10/61 hierarchy models and compares with the published run times.
func Table1(o Options) (*Table1Result, error) {
	w, err := workload.ByName("synopsys")
	if err != nil {
		return nil, err
	}
	budget := o.Budget
	if budget <= 0 {
		budget = w.Budget
	}
	machines := []*memsys.Hierarchy{memsys.SS5(), memsys.SS10()}
	ests := make([]memsys.RunEstimate, len(machines))
	for i, h := range machines {
		est := &memsys.Estimator{H: h}
		prog := w.Build()
		if _, err := vm.RunProgram(prog, est, budget); err != nil {
			return nil, err
		}
		ests[i] = est.Estimate()
	}
	best := ests[0].NsPerInstr
	for _, e := range ests {
		if e.NsPerInstr < best {
			best = e.NsPerInstr
		}
	}
	res := &Table1Result{}
	for i, pub := range paperref.Table1 {
		res.Rows = append(res.Rows, Table1Row{
			Machine:        pub.Machine,
			SpecInt92:      pub.SpecInt92,
			SpecFp92:       pub.SpecFp92,
			PaperSynopsys:  pub.SynopsysMins,
			ModelNsPerInst: ests[i].NsPerInstr,
			ModelRelative:  ests[i].NsPerInstr / best,
		})
	}
	return res, nil
}

// Table renders the Table 1 reproduction.
func (r *Table1Result) Table() *report.Table {
	t := report.NewTable("Table 1: SS-5 vs SS-10/61 (published SPEC'92; modelled Synopsys run time)",
		"machine", "SpecInt92*", "SpecFp92*", "Synopsys mins*", "model ns/instr", "model relative")
	for _, row := range r.Rows {
		t.Row(row.Machine, row.SpecInt92, row.SpecFp92, row.PaperSynopsys,
			fmt.Sprintf("%.1f", row.ModelNsPerInst),
			fmt.Sprintf("%.2f", row.ModelRelative))
	}
	t.Note("* published values from the paper; the model column is this reproduction's")
	t.Note("hierarchy simulation of the >50 MB Synopsys stand-in (paper ratio: 44/32 = 1.38)")
	return t
}

// ---------------------------------------------------------------------
// Figure 2: latency vs array size and stride.
// ---------------------------------------------------------------------

// Fig2Result holds the latency surface for both machines.
type Fig2Result struct {
	Machines []string
	Sizes    []uint64
	Strides  []uint64
	// AvgNs[machine][size][stride]
	AvgNs map[string]map[uint64]map[uint64]float64
}

// Fig2 measures the stride/size latency surface on the SS-5 and
// SS-10/61 models.
func Fig2(o Options) (*Fig2Result, error) {
	sizes := []uint64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	strides := []uint64{16, 128, 512, 4096}
	res := &Fig2Result{
		Machines: []string{"SS-5", "SS-10/61", "Integrated"},
		Sizes:    sizes,
		Strides:  strides,
		AvgNs:    map[string]map[uint64]map[uint64]float64{},
	}
	// The integrated device is not part of the paper's measured
	// Figure 2, but plotting it on the same axes is the whole argument:
	// a flat ~30 ns line where both workstations climb.
	for _, h := range []*memsys.Hierarchy{memsys.SS5(), memsys.SS10(), memsys.Integrated()} {
		res.AvgNs[h.Name] = map[uint64]map[uint64]float64{}
		for _, sz := range sizes {
			res.AvgNs[h.Name][sz] = map[uint64]float64{}
			for _, st := range strides {
				if st >= sz {
					continue
				}
				res.AvgNs[h.Name][sz][st] = h.Walk(sz, st).AvgNs
			}
		}
	}
	return res, nil
}

// Table renders the latency surface.
func (r *Fig2Result) Table() *report.Table {
	t := report.NewTable("Figure 2: average load latency (ns) vs array size and stride",
		"machine", "array", "stride 16", "stride 128", "stride 512", "stride 4096")
	for _, m := range r.Machines {
		for _, sz := range r.Sizes {
			row := []interface{}{m, sizeLabel(sz)}
			for _, st := range r.Strides {
				v, ok := r.AvgNs[m][sz][st]
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.0f", v))
			}
			t.Row(row...)
		}
	}
	t.Note("SS-10 wins inside its 1 MB L2 and at small linear strides (prefetch unit);")
	t.Note("SS-5's integrated memory controller wins beyond the caches — the paper's Figure 2 crossover;")
	t.Note("the Integrated row (not in the paper's figure) is the proposal: flat ~30 ns everywhere")
	return t
}

func sizeLabel(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}

// Plot renders the latency sweep as an ASCII line plot (one series per
// benchmark; Figure 11 plots against memory latency at the paper's
// 6-cycle SLC, Figure 12 against memory latency).
func (r *LatencyResult) Plot() *report.Series {
	title := "Figure 12: integrated CPI vs memory latency"
	if r.Conventional {
		title = "Figure 11: conventional CPI vs memory latency (SLC = 6 cycles)"
	}
	s := report.NewSeries(title, "memory cycles", "CPI")
	for _, p := range r.Points {
		if r.Conventional && p.SLCCycles != 6 {
			continue
		}
		s.Add(p.Bench, p.MemCycles, p.CPI)
	}
	return s
}
