package experiments

import (
	"fmt"

	"repro/internal/cpumodel"
	"repro/internal/memsys"
	"repro/internal/paperref"
	"repro/internal/report"
	"repro/internal/stackdist"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Figures 11 & 12: CPI sensitivity to cache/memory latency.
// ---------------------------------------------------------------------

// LatencyPoint is one (latency, CPI) sample for one application.
type LatencyPoint struct {
	Bench     string
	SLCCycles float64 // conventional system (Figure 11) only
	MemCycles float64
	CPI       float64
}

// LatencyResult is a Figure 11 or Figure 12 data set.
type LatencyResult struct {
	Conventional bool
	Points       []LatencyPoint
}

// fig1112Benches are the paper's representative high/low-CPI pair.
var fig1112Benches = []string{"141.apsi", "126.gcc"}

// Fig11 sweeps second-level-cache and memory latency for the
// conventional reference CPU (141.apsi and 126.gcc, as in the paper).
func Fig11(o Options, ms *MeasurementSet) (*LatencyResult, error) {
	v, err := sweep.RunSerial(Fig11Job(o, ms))
	if err != nil {
		return nil, err
	}
	return v.(*LatencyResult), nil
}

// Fig11Job enumerates Figure 11 as one unit per benchmark; each unit
// runs that benchmark's full latency grid through the GSPN.
func Fig11Job(o Options, ms *MeasurementSet) sweep.Job {
	k := newKeyer("fig11", o,
		fmt.Sprintf("budget=%d", o.Budget), fmt.Sprintf("gspn=%d", o.GSPNInstr))
	units := make([]sweep.Unit, len(fig1112Benches))
	for i, name := range fig1112Benches {
		units[i] = sweep.Unit{
			Name:  "fig11/" + name,
			Seed:  o.Seed,
			Key:   k.key("fig11/"+name, o.Seed, latencyCodec.schema()),
			Codec: latencyCodec,
			Run:   func() (interface{}, error) { return fig11Bench(o, ms, name) },
		}
	}
	return sweep.Job{Name: "fig11", Units: units,
		Assemble: assembleLatency(true)}
}

// assembleLatency concatenates per-benchmark latency points.
func assembleLatency(conventional bool) func([]interface{}) (interface{}, error) {
	return func(parts []interface{}) (interface{}, error) {
		res := &LatencyResult{Conventional: conventional}
		for _, p := range parts {
			res.Points = append(res.Points, p.([]LatencyPoint)...)
		}
		return res, nil
	}
}

// fig11Bench runs one benchmark's SLC × memory latency grid.
func fig11Bench(o Options, ms *MeasurementSet, name string) ([]LatencyPoint, error) {
	slcLats := []float64{2, 4, 6, 10, 14, 20}
	memLats := []float64{6, 12, 20, 30, 40, 60}
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	m, err := ms.Get(w)
	if err != nil {
		return nil, err
	}
	rates := m.Rates(false, false)
	var points []LatencyPoint
	for _, slc := range slcLats {
		for _, mem := range memLats {
			cfg := cpumodel.Reference()
			cfg.L2Cycles = slc
			cfg.MemCycles = mem
			cfg.PrechargeCycles = mem / 2
			r, err := cpumodel.Evaluate(cfg, rates, o.GSPNInstr, o.Seed)
			if err != nil {
				return nil, err
			}
			points = append(points, LatencyPoint{
				Bench: name, SLCCycles: slc, MemCycles: mem, CPI: r.TotalCPI,
			})
		}
	}
	return points, nil
}

// Fig12 sweeps memory latency for the integrated CPU.
func Fig12(o Options, ms *MeasurementSet) (*LatencyResult, error) {
	v, err := sweep.RunSerial(Fig12Job(o, ms))
	if err != nil {
		return nil, err
	}
	return v.(*LatencyResult), nil
}

// Fig12Job enumerates Figure 12 as one unit per benchmark.
func Fig12Job(o Options, ms *MeasurementSet) sweep.Job {
	k := newKeyer("fig12", o,
		fmt.Sprintf("budget=%d", o.Budget), fmt.Sprintf("gspn=%d", o.GSPNInstr))
	units := make([]sweep.Unit, len(fig1112Benches))
	for i, name := range fig1112Benches {
		units[i] = sweep.Unit{
			Name:  "fig12/" + name,
			Seed:  o.Seed,
			Key:   k.key("fig12/"+name, o.Seed, latencyCodec.schema()),
			Codec: latencyCodec,
			Run:   func() (interface{}, error) { return fig12Bench(o, ms, name) },
		}
	}
	return sweep.Job{Name: "fig12", Units: units,
		Assemble: assembleLatency(false)}
}

// fig12Bench runs one benchmark's memory-latency sweep.
func fig12Bench(o Options, ms *MeasurementSet, name string) ([]LatencyPoint, error) {
	memLats := []float64{2, 4, 6, 8, 10, 14, 20}
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	m, err := ms.Get(w)
	if err != nil {
		return nil, err
	}
	rates := m.Rates(true, true)
	var points []LatencyPoint
	for _, mem := range memLats {
		cfg := cpumodel.ConfigFor(o.Device())
		cfg.MemCycles = mem
		cfg.PrechargeCycles = mem / 2
		r, err := cpumodel.Evaluate(cfg, rates, o.GSPNInstr, o.Seed)
		if err != nil {
			return nil, err
		}
		points = append(points, LatencyPoint{
			Bench: name, MemCycles: mem, CPI: r.TotalCPI,
		})
	}
	return points, nil
}

// Table renders a latency sweep.
func (r *LatencyResult) Table() *report.Table {
	if r.Conventional {
		t := report.NewTable("Figure 11: conventional CPU CPI vs SLC & memory latency",
			"benchmark", "SLC (cy)", "memory (cy)", "CPI")
		for _, p := range r.Points {
			t.Row(p.Bench, p.SLCCycles, p.MemCycles, fmt.Sprintf("%.3f", p.CPI))
		}
		t.Note("paper: memory latency alone can cost up to 2x over the raw CPI in the operating region")
		return t
	}
	t := report.NewTable("Figure 12: integrated CPU CPI vs memory latency",
		"benchmark", "memory (cy)", "CPI")
	for _, p := range r.Points {
		t.Row(p.Bench, p.MemCycles, fmt.Sprintf("%.3f", p.CPI))
	}
	t.Note("paper: at 30 ns (6 cycles) the CPI impact is 10-25 percent above the raw figure")
	return t
}

// CPIAt returns the CPI for a bench at given latencies (0 = any).
func (r *LatencyResult) CPIAt(bench string, slc, mem float64) (float64, bool) {
	for _, p := range r.Points {
		if p.Bench == bench && (slc == 0 || p.SLCCycles == slc) && p.MemCycles == mem {
			return p.CPI, true
		}
	}
	return 0, false
}

// ---------------------------------------------------------------------
// Section 5.6: bank-count sensitivity.
// ---------------------------------------------------------------------

// BankRow is one (banks, benchmark) sample.
type BankRow struct {
	Bench       string
	Integrated  bool
	Banks       int
	MemCPI      float64
	MemCPICI    float64 // 95% half-width over the seed ensemble
	Utilization float64
}

// BankResult is the Section 5.6 study.
type BankResult struct{ Rows []BankRow }

// Banks evaluates 4/8/16 banks for the integrated system and 2-8 for
// the conventional reference, reporting CPI and bank utilisation.
func Banks(o Options, ms *MeasurementSet) (*BankResult, error) {
	v, err := sweep.RunSerial(BanksJob(o, ms))
	if err != nil {
		return nil, err
	}
	return v.(*BankResult), nil
}

// BanksJob enumerates the bank study as one unit per
// (benchmark, system, bank count) ensemble — the 5-seed Monte-Carlo
// evaluations are the expensive part and they are all independent.
func BanksJob(o Options, ms *MeasurementSet) sweep.Job {
	k := newKeyer("banks", o,
		fmt.Sprintf("budget=%d", o.Budget), fmt.Sprintf("gspn=%d", o.GSPNInstr))
	var units []sweep.Unit
	for _, name := range []string{"126.gcc", "102.swim"} {
		for _, b := range []int{4, 8, 16} {
			uname := fmt.Sprintf("banks/%s/integrated/%d", name, b)
			units = append(units, sweep.Unit{
				Name:  uname,
				Seed:  o.Seed,
				Key:   k.key(uname, o.Seed, bankCodec.schema()),
				Codec: bankCodec,
				Run:   func() (interface{}, error) { return bankRow(o, ms, name, true, b) },
			})
		}
		for _, b := range []int{2, 4, 8} {
			uname := fmt.Sprintf("banks/%s/conventional/%d", name, b)
			units = append(units, sweep.Unit{
				Name:  uname,
				Seed:  o.Seed,
				Key:   k.key(uname, o.Seed, bankCodec.schema()),
				Codec: bankCodec,
				Run:   func() (interface{}, error) { return bankRow(o, ms, name, false, b) },
			})
		}
	}
	return sweep.Job{Name: "banks", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &BankResult{Rows: make([]BankRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(BankRow)
		}
		return res, nil
	}}
}

// bankRow runs one 5-seed ensemble at the given bank count.
func bankRow(o Options, ms *MeasurementSet, name string, integrated bool, banks int) (BankRow, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return BankRow{}, err
	}
	m, err := ms.Get(w)
	if err != nil {
		return BankRow{}, err
	}
	const seeds = 5
	var cfg cpumodel.SystemConfig
	var rates cpumodel.AppRates
	if integrated {
		cfg = cpumodel.ConfigFor(o.Device())
		rates = m.Rates(true, true)
	} else {
		cfg = cpumodel.Reference()
		rates = m.Rates(false, false)
	}
	cfg.Banks = banks
	e, err := cpumodel.EvaluateN(cfg, rates, o.GSPNInstr, seeds)
	if err != nil {
		return BankRow{}, err
	}
	return BankRow{
		Bench: name, Integrated: integrated, Banks: banks,
		MemCPI: e.MemCPI.Mean(), MemCPICI: e.MemCPI.CI95(),
		Utilization: e.BankUtil.Mean(),
	}, nil
}

// Table renders the bank study.
func (r *BankResult) Table() *report.Table {
	t := report.NewTable("Section 5.6: memory bank sensitivity (5-seed ensembles)",
		"benchmark", "system", "banks", "mem CPI (±95%)", "bank utilisation %")
	for _, row := range r.Rows {
		sys := "conventional"
		if row.Integrated {
			sys = "integrated"
		}
		t.Row(row.Bench, sys, row.Banks,
			fmt.Sprintf("%.3f ± %.3f", row.MemCPI, row.MemCPICI),
			fmt.Sprintf("%.2f", 100*row.Utilization))
	}
	t.Note("paper: performance differences across bank counts are below simulation noise;")
	t.Note("gcc keeps 16 banks ~1.2 percent busy, rising to ~9.6 percent with 2 banks")
	return t
}

// ---------------------------------------------------------------------
// Table 1 and Figure 2: the SS-5 versus SS-10/61 motivation study.
// ---------------------------------------------------------------------

// Table1Row is one machine's measured-vs-modelled comparison.
type Table1Row struct {
	Machine        string
	SpecInt92      float64 // published
	SpecFp92       float64 // published
	PaperSynopsys  float64 // minutes, published
	ModelNsPerInst float64 // our hierarchy model on the Synopsys stand-in
	ModelRelative  float64 // run time relative to the fastest machine
}

// Table1Result is the Table 1 reproduction.
type Table1Result struct{ Rows []Table1Row }

// Table1 runs the Synopsys stand-in workload through the SS-5 and
// SS-10/61 hierarchy models and compares with the published run times.
func Table1(o Options) (*Table1Result, error) {
	v, err := sweep.RunSerial(Table1Job(o))
	if err != nil {
		return nil, err
	}
	return v.(*Table1Result), nil
}

// Table1Job enumerates Table 1 as one unit per machine model; the
// relative column needs both estimates, so it is computed at assembly.
func Table1Job(o Options) sweep.Job {
	k := newKeyer("table1", o, fmt.Sprintf("budget=%d", o.Budget))
	builders := []func() *memsys.Hierarchy{memsys.SS5, memsys.SS10}
	labels := []string{"ss5", "ss10"}
	units := make([]sweep.Unit, len(builders))
	for i, build := range builders {
		units[i] = sweep.Unit{
			Name:  "table1/" + labels[i],
			Key:   k.key("table1/"+labels[i], 0, estimateCodec.schema()),
			Codec: estimateCodec,
			Run: func() (interface{}, error) {
				return table1Estimate(o, build())
			},
		}
	}
	return sweep.Job{Name: "table1", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		ests := make([]memsys.RunEstimate, len(parts))
		for i, p := range parts {
			ests[i] = p.(memsys.RunEstimate)
		}
		best := ests[0].NsPerInstr
		for _, e := range ests {
			if e.NsPerInstr < best {
				best = e.NsPerInstr
			}
		}
		res := &Table1Result{}
		for i, pub := range paperref.Table1 {
			res.Rows = append(res.Rows, Table1Row{
				Machine:        pub.Machine,
				SpecInt92:      pub.SpecInt92,
				SpecFp92:       pub.SpecFp92,
				PaperSynopsys:  pub.SynopsysMins,
				ModelNsPerInst: ests[i].NsPerInstr,
				ModelRelative:  ests[i].NsPerInstr / best,
			})
		}
		return res, nil
	}}
}

// table1Estimate runs the Synopsys stand-in on one hierarchy model.
func table1Estimate(o Options, h *memsys.Hierarchy) (memsys.RunEstimate, error) {
	w, err := workload.ByName("synopsys")
	if err != nil {
		return memsys.RunEstimate{}, err
	}
	h.Instrument(o.Obs)
	est := &memsys.Estimator{H: h}
	if err := o.stream(w, est); err != nil {
		return memsys.RunEstimate{}, err
	}
	return est.Estimate(), nil
}

// Table renders the Table 1 reproduction.
func (r *Table1Result) Table() *report.Table {
	t := report.NewTable("Table 1: SS-5 vs SS-10/61 (published SPEC'92; modelled Synopsys run time)",
		"machine", "SpecInt92*", "SpecFp92*", "Synopsys mins*", "model ns/instr", "model relative")
	for _, row := range r.Rows {
		t.Row(row.Machine, row.SpecInt92, row.SpecFp92, row.PaperSynopsys,
			fmt.Sprintf("%.1f", row.ModelNsPerInst),
			fmt.Sprintf("%.2f", row.ModelRelative))
	}
	t.Note("* published values from the paper; the model column is this reproduction's")
	t.Note("hierarchy simulation of the >50 MB Synopsys stand-in (paper ratio: 44/32 = 1.38)")
	return t
}

// ---------------------------------------------------------------------
// Figure 2: latency vs array size and stride.
// ---------------------------------------------------------------------

// Fig2Result holds the latency surface for both machines.
type Fig2Result struct {
	Machines []string
	Sizes    []uint64
	Strides  []uint64
	// AvgNs[machine][size][stride]
	AvgNs map[string]map[uint64]map[uint64]float64
}

// Fig2 measures the stride/size latency surface on the SS-5 and
// SS-10/61 models.
func Fig2(o Options) (*Fig2Result, error) {
	v, err := sweep.RunSerial(Fig2Job(o))
	if err != nil {
		return nil, err
	}
	return v.(*Fig2Result), nil
}

// fig2Surface is one machine's slice of the Figure 2 surface.
type fig2Surface struct {
	name  string
	avgNs map[uint64]map[uint64]float64
}

var (
	fig2Sizes   = []uint64{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	fig2Strides = []uint64{16, 128, 512, 4096}
)

// Fig2Job enumerates Figure 2 as one unit per machine model.
// The integrated device is not part of the paper's measured Figure 2,
// but plotting it on the same axes is the whole argument: a flat
// ~30 ns line where both workstations climb.
func Fig2Job(o Options) sweep.Job {
	integrated := func() *memsys.Hierarchy { return memsys.IntegratedFrom(o.Device()) }
	builders := []func() *memsys.Hierarchy{memsys.SS5, memsys.SS10, integrated}
	labels := []string{"ss5", "ss10", "integrated"}
	units := make([]sweep.Unit, len(builders))
	for i, build := range builders {
		units[i] = sweep.Unit{
			Name: "fig2/" + labels[i],
			Run: func() (interface{}, error) {
				h := build()
				h.Instrument(o.Obs)
				s := fig2Surface{name: h.Name, avgNs: map[uint64]map[uint64]float64{}}
				for _, sz := range fig2Sizes {
					s.avgNs[sz] = map[uint64]float64{}
					for _, st := range fig2Strides {
						if st >= sz {
							continue
						}
						s.avgNs[sz][st] = h.Walk(sz, st).AvgNs
					}
				}
				return s, nil
			},
		}
	}
	return sweep.Job{Name: "fig2", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &Fig2Result{
			Sizes:   fig2Sizes,
			Strides: fig2Strides,
			AvgNs:   map[string]map[uint64]map[uint64]float64{},
		}
		for _, p := range parts {
			s := p.(fig2Surface)
			res.Machines = append(res.Machines, s.name)
			res.AvgNs[s.name] = s.avgNs
		}
		return res, nil
	}}
}

// Table renders the latency surface.
func (r *Fig2Result) Table() *report.Table {
	t := report.NewTable("Figure 2: average load latency (ns) vs array size and stride",
		"machine", "array", "stride 16", "stride 128", "stride 512", "stride 4096")
	for _, m := range r.Machines {
		for _, sz := range r.Sizes {
			row := []interface{}{m, sizeLabel(sz)}
			for _, st := range r.Strides {
				v, ok := r.AvgNs[m][sz][st]
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.0f", v))
			}
			t.Row(row...)
		}
	}
	t.Note("SS-10 wins inside its 1 MB L2 and at small linear strides (prefetch unit);")
	t.Note("SS-5's integrated memory controller wins beyond the caches — the paper's Figure 2 crossover;")
	t.Note("the Integrated row (not in the paper's figure) is the proposal: flat ~30 ns everywhere")
	return t
}

func sizeLabel(b uint64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%dMB", b>>20)
	default:
		return fmt.Sprintf("%dKB", b>>10)
	}
}

// Plot renders the latency sweep as an ASCII line plot (one series per
// benchmark; Figure 11 plots against memory latency at the paper's
// 6-cycle SLC, Figure 12 against memory latency).
func (r *LatencyResult) Plot() *report.Series {
	title := "Figure 12: integrated CPI vs memory latency"
	if r.Conventional {
		title = "Figure 11: conventional CPI vs memory latency (SLC = 6 cycles)"
	}
	s := report.NewSeries(title, "memory cycles", "CPI")
	for _, p := range r.Points {
		if r.Conventional && p.SLCCycles != 6 {
			continue
		}
		s.Add(p.Bench, p.MemCycles, p.CPI)
	}
	return s
}

// ---------------------------------------------------------------------
// Mattson miss-ratio curves: every cache size from one profiled pass.
// ---------------------------------------------------------------------

// MattsonRow is one workload's fully-associative LRU miss-ratio curve
// plus its total line footprint, all measured in a single pass by the
// stack-distance profiler (internal/stackdist).
type MattsonRow struct {
	Bench     string
	Footprint int             // distinct 32 B lines touched
	MissPct   map[int]float64 // capacity KB -> miss % over all refs
}

// MattsonResult is the miss-ratio-curve data set.
type MattsonResult struct{ Rows []MattsonRow }

// mattsonSizesKB are the capacities of the miss-ratio curve. All of
// them come from the same histogram — adding a size is free.
var mattsonSizesKB = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Mattson measures every workload's miss-ratio curve.
func Mattson(o Options) (*MattsonResult, error) {
	v, err := sweep.RunSerial(MattsonJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*MattsonResult), nil
}

// MattsonJob enumerates the miss-ratio-curve study as one unit per
// workload: one execution, one stack-distance profile, eleven sizes.
func MattsonJob(o Options) sweep.Job {
	k := newKeyer("mattson", o, fmt.Sprintf("budget=%d", o.Budget))
	ws := workload.All()
	units := make([]sweep.Unit, len(ws))
	for i, w := range ws {
		w := w
		units[i] = sweep.Unit{
			Name:  "mattson/" + w.Name,
			Key:   k.key("mattson/"+w.Name, 0, mattsonCodec.schema()),
			Codec: mattsonCodec,
			Run:   func() (interface{}, error) { return mattsonRow(o, w) },
		}
	}
	return sweep.Job{Name: "mattson", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &MattsonResult{Rows: make([]MattsonRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(MattsonRow)
		}
		return res, nil
	}}
}

// mattsonRow profiles one workload's reference stream.
func mattsonRow(o Options, w workload.Workload) (MattsonRow, error) {
	p := stackdist.NewProfiler(32)
	if err := o.stream(w, p); err != nil {
		return MattsonRow{}, err
	}
	row := MattsonRow{Bench: w.Name, Footprint: p.Footprint(), MissPct: map[int]float64{}}
	for _, kb := range mattsonSizesKB {
		row.MissPct[kb] = p.MissCounterAll(uint64(kb) << 10 / 32).Percent()
	}
	return row, nil
}

// Table renders the miss-ratio curves.
func (r *MattsonResult) Table() *report.Table {
	cols := []string{"benchmark", "lines touched"}
	for _, kb := range mattsonSizesKB {
		cols = append(cols, sizeLabel(uint64(kb)<<10))
	}
	t := report.NewTable("Mattson miss-ratio curves: fully-assoc LRU miss % by capacity (32 B lines, one pass)", cols...)
	for _, row := range r.Rows {
		cells := []interface{}{row.Bench, row.Footprint}
		for _, kb := range mattsonSizesKB {
			cells = append(cells, pct(row.MissPct[kb]))
		}
		t.Row(cells...)
	}
	t.Note("single-pass exact LRU stack-distance profile (Mattson et al., 1970): the inclusion")
	t.Note("property makes every capacity's miss ratio a suffix sum of one distance histogram")
	return t
}
