package experiments

import (
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/resultstore"
	"repro/internal/sweep"
)

// rcQuick returns the reduced-fidelity options the result-cache tests
// share: small budgets, deterministic seed.
func rcQuick() Options {
	o := Quick()
	o.Budget = 50_000
	o.GSPNInstr = 2_000
	return o
}

// runJob executes one job through a cache-equipped engine and returns
// the assembled value.
func runJob(t *testing.T, j sweep.Job, workers int, cache sweep.ResultCache) interface{} {
	t.Helper()
	eng := &sweep.Engine{Workers: workers, Cache: cache}
	var got interface{}
	if err := eng.Run([]sweep.Job{j}, func(r sweep.JobResult) error {
		got = r.Value
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestResultKeysStableAndUnique is the key-stability guard: every
// registered experiment's keyed units must carry mutually distinct keys
// and stable names, key derivation must be deterministic across job
// rebuilds, and it must not depend on runtime knobs like the worker
// count. A unit RENAME changes its key — that is the documented
// invalidation mechanism (sweep.Unit.Key), and this test is what fails
// when a rename happens accidentally.
func TestResultKeysStableAndUnique(t *testing.T) {
	build := func(o Options) (names []string, keys []string, codecs []bool) {
		for _, name := range SweepNames() {
			ms := NewMeasurementSet(o)
			j, err := JobFor(name, o, ms)
			if err != nil {
				t.Fatal(err)
			}
			for _, u := range j.Units {
				names = append(names, j.Name+"|"+u.Name)
				keys = append(keys, u.Key)
				codecs = append(codecs, u.Codec != nil)
			}
		}
		return
	}

	oA := rcQuick()
	oB := rcQuick()
	oB.Workers = 7 // a runtime knob; must not reach the keys

	namesA, keysA, codecsA := build(oA)
	namesB, keysB, _ := build(oB)

	if !reflect.DeepEqual(namesA, namesB) {
		t.Fatal("unit names differ between two builds with equal fidelity options")
	}
	if !reflect.DeepEqual(keysA, keysB) {
		for i := range keysA {
			if keysA[i] != keysB[i] {
				t.Errorf("key for %s not deterministic:\n  %s\n  %s", namesA[i], keysA[i], keysB[i])
			}
		}
		t.Fatal("keys differ between two builds with equal fidelity options")
	}

	seenName := make(map[string]string)
	seenKey := make(map[string]string)
	for i, name := range namesA {
		if prev, dup := seenName[name]; dup {
			t.Errorf("duplicate unit name %q (also %q)", name, prev)
		}
		seenName[name] = name
		if keysA[i] == "" {
			continue // unkeyed units are legitimately uncacheable
		}
		if !codecsA[i] {
			t.Errorf("unit %s has a key but no codec", name)
		}
		if prev, dup := seenKey[keysA[i]]; dup {
			t.Errorf("units %s and %s share key %s", name, prev, keysA[i])
		}
		seenKey[keysA[i]] = name
	}

	// A fidelity parameter change must re-key the units that read it.
	oC := rcQuick()
	oC.Budget = oA.Budget + 1
	_, keysC, _ := build(oC)
	changed := false
	for i := range keysA {
		if keysA[i] != "" && keysA[i] != keysC[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("changing the budget re-keyed no unit")
	}
}

// TestEngineCacheRoundTripFig7: a cold run populates the store, a warm
// run decodes every unit, and the assembled results are identical.
func TestEngineCacheRoundTripFig7(t *testing.T) {
	o := rcQuick()
	store, err := resultstore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	cold := runJob(t, Fig7Job(o, NewMeasurementSet(o)), 4, store).(*Fig7Result)
	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(Fig7Job(o, NewMeasurementSet(o)).Units) {
		t.Fatalf("cold run stored %d entries, want one per unit", len(entries))
	}
	warm := runJob(t, Fig7Job(o, NewMeasurementSet(o)), 2, store).(*Fig7Result)
	if !reflect.DeepEqual(cold, warm) {
		t.Error("warm result differs from cold result")
	}
	none := runJob(t, Fig7Job(o, NewMeasurementSet(o)), 1, nil).(*Fig7Result)
	if !reflect.DeepEqual(cold, none) {
		t.Error("cached result differs from uncached result")
	}
}

// TestEngineCacheCorruptionRecovers: corrupt and stale-schema cache
// entries at the units' real keys must read as misses — the experiment
// recomputes and the result is identical, never wrong.
func TestEngineCacheCorruptionRecovers(t *testing.T) {
	o := rcQuick()
	store, err := resultstore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := runJob(t, Fig7Job(o, NewMeasurementSet(o)), 4, store).(*Fig7Result)
	units := Fig7Job(o, NewMeasurementSet(o)).Units

	t.Run("bit-flip", func(t *testing.T) {
		for _, u := range units {
			raw, err := os.ReadFile(store.Path(u.Key))
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)-3] ^= 0x20
			if err := os.WriteFile(store.Path(u.Key), raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got := runJob(t, Fig7Job(o, NewMeasurementSet(o)), 4, store).(*Fig7Result)
		if !reflect.DeepEqual(want, got) {
			t.Error("recomputed result differs after corruption")
		}
	})

	t.Run("truncated", func(t *testing.T) {
		for _, u := range units {
			raw, err := os.ReadFile(store.Path(u.Key))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(store.Path(u.Key), raw[:len(raw)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}
		got := runJob(t, Fig7Job(o, NewMeasurementSet(o)), 4, store).(*Fig7Result)
		if !reflect.DeepEqual(want, got) {
			t.Error("recomputed result differs after truncation")
		}
	})

	t.Run("stale-schema-version", func(t *testing.T) {
		// An entry written at the current key but with an older codec
		// version (e.g. by a buggy or rolled-back writer): the header
		// check fails, the engine recomputes and heals the entry.
		stale := gobCodec[Fig7Row]{name: fig7Codec.name, version: fig7Codec.version - 1}
		for i, u := range units {
			data, err := stale.Encode(Fig7Row{Bench: "stale", Conv: map[int]float64{8: float64(i)}})
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Put(u.Key, data); err != nil {
				t.Fatal(err)
			}
		}
		got := runJob(t, Fig7Job(o, NewMeasurementSet(o)), 4, store).(*Fig7Result)
		if !reflect.DeepEqual(want, got) {
			t.Error("stale-schema entries leaked into the result")
		}
		for _, row := range got.Rows {
			if row.Bench == "stale" {
				t.Fatal("a stale entry's payload surfaced as a result row")
			}
		}
		// The recompute healed the entries: a further run decodes them.
		again := runJob(t, Fig7Job(o, NewMeasurementSet(o)), 4, store).(*Fig7Result)
		if !reflect.DeepEqual(want, again) {
			t.Error("healed entries decode to a different result")
		}
	})
}

// TestDesignspaceCachedMatchesUncached: the search with a result cache
// — cold, then warm, including the nested GSPN stage — must reproduce
// the uncached search exactly. The warm run's accounting honestly
// reports zero trace passes: the passes counter counts work done, and
// a warm run does none.
func TestDesignspaceCachedMatchesUncached(t *testing.T) {
	o := rcQuick()
	plain, err := Designspace(o)
	if err != nil {
		t.Fatal(err)
	}

	store, err := resultstore.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o.ResultCache = store
	o.Workers = 4
	cold := runJob(t, DesignspaceJob(o), 4, store).(*DesignspaceResult)
	warm := runJob(t, DesignspaceJob(o), 2, store).(*DesignspaceResult)

	if !reflect.DeepEqual(plain.Rows, cold.Rows) || !reflect.DeepEqual(plain.Frontier, cold.Frontier) {
		t.Error("cold cached search differs from uncached search")
	}
	if plain.Accounting != cold.Accounting {
		t.Errorf("cold accounting %+v != uncached %+v", cold.Accounting, plain.Accounting)
	}
	if !reflect.DeepEqual(plain.Rows, warm.Rows) || !reflect.DeepEqual(plain.Frontier, warm.Frontier) {
		t.Error("warm cached search differs from uncached search")
	}
	if warm.Accounting.Passes != 0 {
		t.Errorf("warm run reports %d trace passes, want 0 (nothing was recomputed)", warm.Accounting.Passes)
	}

	// Refinement reuse: widening an axis re-keys only the families whose
	// registered point set changed; unchanged families decode from the
	// store. The victim axis is shared by every column family here, so
	// instead widen banks — both families change registration, but the
	// gspn stage's keys for previously evaluated (point, bench) pairs are
	// registration-independent and must hit.
	names := map[string]bool{}
	for _, u := range DesignspaceJob(o).Units {
		names[u.Key] = true
	}
	o2 := o
	o2.DSBanks = []int{8, 16, 32, 64}
	for _, u := range DesignspaceJob(o2).Units {
		if names[u.Key] {
			t.Errorf("family unit key unchanged after widening the banks axis: %s", u.Key)
		}
		if !strings.Contains(u.Key, "-") {
			t.Errorf("malformed key %q", u.Key)
		}
	}
}
