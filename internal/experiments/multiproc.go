package experiments

import (
	"fmt"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/interconnect"
	"repro/internal/report"
	"repro/internal/splash"
	"repro/internal/sweep"
)

// ---------------------------------------------------------------------
// Figures 13–17: SPLASH execution times.
// ---------------------------------------------------------------------

// SplashPoint is one (config, processors) execution time.
type SplashPoint struct {
	Config coherence.Config
	Procs  int
	Cycles uint64
}

// SplashResult is one figure's data set.
type SplashResult struct {
	Bench  string
	Points []SplashPoint
}

// splashFigures maps figure numbers to benchmarks, in paper order.
var splashFigures = map[int]string{
	13: "LU", 14: "MP3D", 15: "OCEAN", 16: "WATER", 17: "PTHOR",
}

// SplashFigure runs one of Figures 13–17 (figure number 13..17).
func SplashFigure(o Options, figure int) (*SplashResult, error) {
	j, err := SplashFigureJob(o, figure)
	if err != nil {
		return nil, err
	}
	v, err := sweep.RunSerial(j)
	if err != nil {
		return nil, err
	}
	return v.(*SplashResult), nil
}

// SplashFigureJob enumerates one of Figures 13–17 as sweep units.
func SplashFigureJob(o Options, figure int) (sweep.Job, error) {
	name, ok := splashFigures[figure]
	if !ok {
		return sweep.Job{}, fmt.Errorf("experiments: no SPLASH figure %d (want 13-17)", figure)
	}
	return SplashNameJob(o, fmt.Sprintf("fig%d", figure), name), nil
}

// SplashByName runs the named SPLASH benchmark over all processor
// counts and the three system configurations.
func SplashByName(o Options, name string) (*SplashResult, error) {
	v, err := sweep.RunSerial(SplashNameJob(o, "splash-"+name, name))
	if err != nil {
		return nil, err
	}
	return v.(*SplashResult), nil
}

// SplashNameJob enumerates one benchmark's SPLASH figure as one unit
// per (processor count, machine configuration) simulation — the
// per-processor-count multiprocessor runs are the dominant cost of
// `iramsim all` and they are all independent.
func SplashNameJob(o Options, jobName, bench string) sweep.Job {
	sz := splash.Full()
	if o.MPQuick {
		sz = splash.Quick()
	}
	configs := []coherence.Config{
		coherence.ReferenceCCNUMA,
		coherence.IntegratedPlain,
		coherence.IntegratedVictim,
	}
	k := newKeyer(jobName, o, fmt.Sprintf("mpquick=%v", o.MPQuick))
	var units []sweep.Unit
	for _, np := range o.Procs {
		for _, cfg := range configs {
			uname := fmt.Sprintf("%s/%s/p=%d/%s", jobName, bench, np, cfg)
			units = append(units, sweep.Unit{
				Name:  uname,
				Key:   k.key(uname, 0, splashCodec.schema()),
				Codec: splashCodec,
				Run: func() (interface{}, error) {
					b, err := splash.ByName(bench)
					if err != nil {
						return nil, err
					}
					prop := o.Device()
					m := coherence.NewConfiguredMachineDevices(cfg, np,
						uint64(prop.CoherenceUnitBytes), prop, core.Reference())
					r := b.RunMachine(np, m, sz)
					if o.Obs != nil {
						m.Publish(o.Obs)
						r.Coord.Publish(o.Obs)
					}
					return SplashPoint{Config: cfg, Procs: np, Cycles: r.Cycles}, nil
				},
			})
		}
	}
	return sweep.Job{Name: jobName, Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &SplashResult{Bench: bench, Points: make([]SplashPoint, len(parts))}
		for i, p := range parts {
			res.Points[i] = p.(SplashPoint)
		}
		return res, nil
	}}
}

// Cycles returns the execution time for a configuration/processor pair.
func (r *SplashResult) Cycles(cfg coherence.Config, procs int) (uint64, bool) {
	for _, p := range r.Points {
		if p.Config == cfg && p.Procs == procs {
			return p.Cycles, true
		}
	}
	return 0, false
}

// Table renders the figure as execution-time rows plus bars.
func (r *SplashResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("SPLASH %s: execution time (cycles) vs processors", r.Bench),
		"procs", "reference CC-NUMA", "integrated (no victim)", "integrated + victim")
	procs := []int{}
	seen := map[int]bool{}
	for _, p := range r.Points {
		if !seen[p.Procs] {
			seen[p.Procs] = true
			procs = append(procs, p.Procs)
		}
	}
	for _, np := range procs {
		ref, _ := r.Cycles(coherence.ReferenceCCNUMA, np)
		plain, _ := r.Cycles(coherence.IntegratedPlain, np)
		vic, _ := r.Cycles(coherence.IntegratedVictim, np)
		t.Row(np, ref, plain, vic)
	}
	t.Note("reference uses an infinite second-level cache (upper bound); Table 6 latencies")
	return t
}

// Bars renders a per-processor-count bar chart of the three configs.
func (r *SplashResult) Bars(procs int) *report.Bars {
	b := report.NewBars(fmt.Sprintf("%s at %d processors (cycles, shorter is better)", r.Bench, procs))
	for _, cfg := range []coherence.Config{
		coherence.ReferenceCCNUMA, coherence.IntegratedPlain, coherence.IntegratedVictim,
	} {
		if c, ok := r.Cycles(cfg, procs); ok {
			b.Add(cfg.String(), float64(c), "cy")
		}
	}
	return b
}

// ---------------------------------------------------------------------
// Section 3: cost model.
// ---------------------------------------------------------------------

// Cost reproduces the Section 3 arithmetic.
func Cost() *report.Table {
	in := costmodel.Default()
	r := costmodel.Evaluate(in)
	t := report.NewTable("Section 3: processor/memory integration cost model",
		"quantity", "value")
	t.Row("256 Mbit DRAM at $25/MB", fmt.Sprintf("$%.0f", r.PlainDRAMDollars))
	t.Row("integrated device (10% extra area)", fmt.Sprintf("$%.0f", r.IntegratedDollars))
	t.Row("effective processor cost", fmt.Sprintf("$%.0f", r.ProcessorPremium))
	t.Row("cost growth per area growth (CDRAM precedent)", fmt.Sprintf("%.2fx", r.CostPerAreaFactor))
	t.Row("processor area budget", fmt.Sprintf("%.0f mm2", r.ProcessorAreaMM2))
	t.Row("R4300i-class core fits budget", fmt.Sprintf("%v", r.CoreFitsBudget))
	t.Row("standard ECC overhead", fmt.Sprintf("%.1f%%", r.ECCOverheadPercent))
	t.Note("paper rounds the same extrapolation up to ~$1000 integrated / $200 premium;")
	t.Note("the straight CDRAM scaling shown here gives the lower bound of that estimate")
	return t
}

// ---------------------------------------------------------------------
// Extension: Simple-COMA versus CC-NUMA (Section 4.2).
// ---------------------------------------------------------------------

// SCOMARow is one benchmark's four-way machine comparison.
type SCOMARow struct {
	Bench  string
	Cycles map[coherence.Config]uint64
}

// SCOMAResult compares the protocol engines' two personalities.
type SCOMAResult struct {
	Procs int
	Rows  []SCOMARow
}

// SCOMA runs the SPLASH suite on the Simple-COMA machine alongside the
// three Section 6 configurations. The paper implements both protocols
// in the engines' microcode but evaluates only CC-NUMA; this is the
// reproduction's look at the road not taken: S-COMA turns remote
// re-accesses into local column-buffer hits at the price of page
// allocation traps.
func SCOMA(o Options) (*SCOMAResult, error) {
	v, err := sweep.RunSerial(SCOMAJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*SCOMAResult), nil
}

// scomaConfigs are the machine personalities compared by the S-COMA
// extension, in column order.
var scomaConfigs = []coherence.Config{
	coherence.ReferenceCCNUMA, coherence.IntegratedVictim, coherence.SimpleCOMA,
}

// SCOMAJob enumerates the S-COMA study as one unit per
// (benchmark, configuration) multiprocessor run.
func SCOMAJob(o Options) sweep.Job {
	const procs = 4
	sz := splash.Full()
	if o.MPQuick {
		sz = splash.Quick()
	}
	k := newKeyer("scoma", o, fmt.Sprintf("mpquick=%v", o.MPQuick))
	benches := splash.All()
	var units []sweep.Unit
	for _, b := range benches {
		for _, cfg := range scomaConfigs {
			uname := fmt.Sprintf("scoma/%s/%s", b.Name, cfg)
			units = append(units, sweep.Unit{
				Name:  uname,
				Key:   k.key(uname, 0, cyclesCodec.schema()),
				Codec: cyclesCodec,
				Run: func() (interface{}, error) {
					prop := o.Device()
					m := coherence.NewConfiguredMachineDevices(cfg, procs,
						uint64(prop.CoherenceUnitBytes), prop, core.Reference())
					r := b.RunMachine(procs, m, sz)
					if o.Obs != nil {
						m.Publish(o.Obs)
						r.Coord.Publish(o.Obs)
					}
					return r.Cycles, nil
				},
			})
		}
	}
	return sweep.Job{Name: "scoma", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &SCOMAResult{Procs: procs}
		for bi, b := range benches {
			row := SCOMARow{Bench: b.Name, Cycles: map[coherence.Config]uint64{}}
			for ci, cfg := range scomaConfigs {
				row.Cycles[cfg] = parts[bi*len(scomaConfigs)+ci].(uint64)
			}
			res.Rows = append(res.Rows, row)
		}
		return res, nil
	}}
}

// Table renders the S-COMA comparison.
func (r *SCOMAResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Extension: Simple-COMA vs CC-NUMA (%d procs), cycles", r.Procs),
		"benchmark", "reference CC-NUMA", "integrated + victim", "integrated S-COMA")
	for _, row := range r.Rows {
		t.Row(row.Bench,
			row.Cycles[coherence.ReferenceCCNUMA],
			row.Cycles[coherence.IntegratedVictim],
			row.Cycles[coherence.SimpleCOMA])
	}
	t.Note("S-COMA (Section 4.2's second protocol personality) backs remote data with")
	t.Note("local attraction-memory pages: re-accesses become column-buffer hits")
	return t
}

// ---------------------------------------------------------------------
// Extension: fabric scaling (Section 8's Lego-block vision).
// ---------------------------------------------------------------------

// CostJob wraps the Section 3 cost arithmetic as a single-unit job.
func CostJob() sweep.Job {
	return sweep.Single("cost", 0, func() (interface{}, error) { return Cost(), nil })
}

// FabricJob wraps the fabric scaling study as a single-unit job.
func FabricJob() sweep.Job {
	return sweep.Single("fabric", 0, func() (interface{}, error) { return Fabric() })
}

// Fabric evaluates the S-Connect fabric's scaling: bisection bandwidth
// growing with the machine, and remote latency against the paper's
// sub-200 ns budget.
func Fabric() (*report.Table, error) {
	rows, err := interconnect.ScalingStudy(interconnect.Torus2D,
		[]int{4, 16, 64, 256}, interconnect.Default())
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Extension: S-Connect fabric scaling (2-D torus, 4 × 2.5 Gbit/s links)",
		"nodes", "mean hops", "diameter", "bisection GB/s", "remote read ns", "< 200ns")
	for _, r := range rows {
		t.Row(r.Nodes, fmt.Sprintf("%.2f", r.MeanHops), r.Diameter,
			fmt.Sprintf("%.2f", r.BisectionGBs),
			fmt.Sprintf("%.0f", r.RemoteReadNs), r.Within200ns)
	}
	t.Note("Section 8: bi-sectional bandwidth increases as components are added;")
	t.Note("Section 4.2: remote memory latencies below 200 ns at board scale")
	return t, nil
}

// Plot renders the figure as an ASCII line plot (execution time vs
// processor count, one series per machine configuration).
func (r *SplashResult) Plot() *report.Series {
	s := report.NewSeries(
		fmt.Sprintf("Figure: SPLASH %s execution time", r.Bench),
		"processors", "cycles (lower is better)")
	for _, p := range r.Points {
		s.Add(p.Config.String(), float64(p.Procs), float64(p.Cycles))
	}
	return s
}
