package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/cpumodel"
	"repro/internal/mpsim"
	"repro/internal/report"
	"repro/internal/splash"
	"repro/internal/stackdist"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The ablation experiments probe the design choices DESIGN.md calls
// out: the 512 B line size, the 16-entry victim cache, the 7-way INC,
// the 32 B coherence unit, and the scoreboarding assumption. Each is
// grounded in a specific claim of the paper (cited per function).

// ablationBenches is the representative workload subset used by the
// cache-geometry ablations: one long-line winner, one conflict victim,
// one code-heavy integer benchmark, one random-access benchmark.
var ablationBenches = []string{"104.hydro2d", "101.tomcatv", "126.gcc", "129.compress"}

// LineSizeRow is one (benchmark, line size) data-cache measurement.
type LineSizeRow struct {
	Bench     string
	LineBytes int
	MissPct   float64 // 16 KB 2-way cache with that line size
}

// LineSizeResult is the line-size ablation.
type LineSizeResult struct{ Rows []LineSizeRow }

// AblateLineSize sweeps the D-cache line size at fixed 16 KB 2-way
// capacity. Paper grounding: Section 5.3 — long lines prefetch for
// high-locality codes but multiply conflicts when only 16 sets remain
// (tomcatv); and Section 5.6 — "increasing the line size will degrade
// performance due to higher resultant cache conflicts".
func AblateLineSize(o Options) (*LineSizeResult, error) {
	v, err := sweep.RunSerial(AblateLineSizeJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*LineSizeResult), nil
}

// AblateLineSizeJob enumerates the line-size ablation as one unit per
// benchmark; each unit is one trace pass feeding every line size.
func AblateLineSizeJob(o Options) sweep.Job {
	units := make([]sweep.Unit, len(ablationBenches))
	for i, name := range ablationBenches {
		units[i] = sweep.Unit{
			Name: "ablate-linesize/" + name,
			Run:  func() (interface{}, error) { return ablateLineSizeBench(o, name) },
		}
	}
	return sweep.Job{Name: "ablate-linesize", Units: units, Assemble: concatRows[LineSizeRow](func(rows []LineSizeRow) interface{} {
		return &LineSizeResult{Rows: rows}
	})}
}

// ablateLineSizeBench measures one benchmark at every line size using
// one stack-distance set profiler per line size (a 16 KB 2-way cache at
// line size L is the 16KB/(2·L)-sets × 2-ways geometry). Runs of
// references within one 32 B block — necessarily within one block of
// every larger line size too — collapse into MRU-hit bumps.
func ablateLineSizeBench(o Options, name string) ([]LineSizeRow, error) {
	lineSizes := []int{32, 64, 128, 256, 512, 1024}
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	// The capacity and associativity under ablation come from the device
	// under test; only the line size varies.
	dev := o.Device()
	dBytes, dWays := uint64(dev.DCacheBytes), dev.DCacheWays
	profs := make([]*stackdist.SetProfiler, len(lineSizes))
	for i, ls := range lineSizes {
		profs[i] = stackdist.NewSetProfiler(uint64(ls),
			[]stackdist.Geometry{{Sets: dBytes / (uint64(dWays) * uint64(ls)), Ways: dWays}})
	}
	var lastLine uint64 // previous data ref's 32 B line + 1 (0 = none)
	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.Ifetch {
			return
		}
		if line := r.Addr >> 5; line+1 == lastLine {
			for _, p := range profs {
				p.AddRepeats(r.Kind, 1)
			}
			return
		} else {
			lastLine = line + 1
		}
		for _, p := range profs {
			p.Access(r.Addr, r.Kind)
		}
	})
	if err := o.stream(w, sink); err != nil {
		return nil, err
	}
	rows := make([]LineSizeRow, len(lineSizes))
	for i, ls := range lineSizes {
		sets := dBytes / (uint64(dWays) * uint64(ls))
		miss := profs[i].MissCounter(sets, dWays, trace.Load)
		miss.Add(profs[i].MissCounter(sets, dWays, trace.Store))
		rows[i] = LineSizeRow{
			Bench: name, LineBytes: ls,
			MissPct: miss.Percent(),
		}
	}
	return rows, nil
}

// concatRows builds an Assemble function that concatenates per-unit
// row slices (in unit order) and wraps them in a result value.
func concatRows[T any](wrap func([]T) interface{}) func([]interface{}) (interface{}, error) {
	return func(parts []interface{}) (interface{}, error) {
		var rows []T
		for _, p := range parts {
			rows = append(rows, p.([]T)...)
		}
		return wrap(rows), nil
	}
}

// Table renders the line-size ablation.
func (r *LineSizeResult) Table() *report.Table {
	t := report.NewTable("Ablation: D-cache line size (16 KB, 2-way), miss rate %",
		"benchmark", "32B", "64B", "128B", "256B", "512B", "1024B")
	byBench := map[string]map[int]float64{}
	var order []string
	for _, row := range r.Rows {
		if byBench[row.Bench] == nil {
			byBench[row.Bench] = map[int]float64{}
			order = append(order, row.Bench)
		}
		byBench[row.Bench][row.LineBytes] = row.MissPct
	}
	for _, b := range order {
		m := byBench[b]
		t.Row(b, pct(m[32]), pct(m[64]), pct(m[128]), pct(m[256]), pct(m[512]), pct(m[1024]))
	}
	t.Note("hydro2d-class codes improve monotonically with line size; tomcatv-class")
	t.Note("codes blow up once the set count collapses — the tension the victim cache resolves")
	return t
}

// VictimSizeRow is one (benchmark, entries) measurement.
type VictimSizeRow struct {
	Bench   string
	Entries int
	MissPct float64
}

// VictimSizeResult is the victim-size ablation.
type VictimSizeResult struct{ Rows []VictimSizeRow }

// AblateVictimSize sweeps the victim-cache entry count around the
// paper's choice of 16 (one column's worth). Paper grounding: Section
// 5.4 sizes the victim cache to exactly one 512 B column buffer.
func AblateVictimSize(o Options) (*VictimSizeResult, error) {
	v, err := sweep.RunSerial(AblateVictimSizeJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*VictimSizeResult), nil
}

// AblateVictimSizeJob enumerates the victim-size ablation as one unit
// per benchmark.
func AblateVictimSizeJob(o Options) sweep.Job {
	benches := []string{"101.tomcatv", "102.swim", "099.go"}
	units := make([]sweep.Unit, len(benches))
	for i, name := range benches {
		units[i] = sweep.Unit{
			Name: "ablate-victim/" + name,
			Run:  func() (interface{}, error) { return ablateVictimBench(o, name) },
		}
	}
	return sweep.Job{Name: "ablate-victim", Units: units, Assemble: concatRows[VictimSizeRow](func(rows []VictimSizeRow) interface{} {
		return &VictimSizeResult{Rows: rows}
	})}
}

// ablateVictimBench measures one benchmark at every victim size. This
// ablation stays on the per-config replay path deliberately: victim
// cache contents depend on main-cache eviction order and sub-block
// recency, which stack-distance profiling cannot express (see
// internal/stackdist's package doc).
func ablateVictimBench(o Options, name string) ([]VictimSizeRow, error) {
	entries := []int{0, 4, 8, 16, 32, 64}
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	dev := o.Device()
	mkMain := func() *cache.SetAssoc {
		return cache.NewSetAssoc("ablate-victim main", uint64(dev.DCacheBytes),
			uint64(dev.DCacheLineBytes), dev.DCacheWays)
	}
	vline := uint64(dev.VictimLineBytes)
	if vline == 0 {
		vline = cache.VictimLineSize
	}
	plain := mkMain()
	withV := make([]*cache.WithVictim, 0, len(entries)-1)
	for _, e := range entries[1:] {
		withV = append(withV, cache.NewWithVictim(mkMain(), cache.NewVictim(e, vline)))
	}
	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.Ifetch {
			return
		}
		plain.Access(r.Addr, r.Kind)
		for _, c := range withV {
			c.Access(r.Addr, r.Kind)
		}
	})
	if err := o.stream(w, sink); err != nil {
		return nil, err
	}
	rows := []VictimSizeRow{{
		Bench: name, Entries: 0, MissPct: plain.Stats().Data().Percent(),
	}}
	for i, e := range entries[1:] {
		rows = append(rows, VictimSizeRow{
			Bench: name, Entries: e, MissPct: withV[i].Stats().Data().Percent(),
		})
	}
	return rows, nil
}

// Table renders the victim-size ablation.
func (r *VictimSizeResult) Table() *report.Table {
	t := report.NewTable("Ablation: victim cache entries (paper: 16×32 B), miss rate %",
		"benchmark", "none", "4", "8", "16", "32", "64")
	byBench := map[string]map[int]float64{}
	var order []string
	for _, row := range r.Rows {
		if byBench[row.Bench] == nil {
			byBench[row.Bench] = map[int]float64{}
			order = append(order, row.Bench)
		}
		byBench[row.Bench][row.Entries] = row.MissPct
	}
	for _, b := range order {
		m := byBench[b]
		t.Row(b, pct(m[0]), pct(m[4]), pct(m[8]), pct(m[16]), pct(m[32]), pct(m[64]))
	}
	t.Note("16 entries (one column) captures nearly all of the conflict absorption;")
	t.Note("doubling it buys little — the paper's sizing is on the knee of the curve")
	return t
}

// UnitRow is one (benchmark, unit) multiprocessor measurement.
type UnitRow struct {
	Bench     string
	UnitBytes uint64
	Cycles    uint64
}

// UnitResult is the coherence-unit ablation.
type UnitResult struct {
	Procs int
	Rows  []UnitRow
}

// AblateCoherenceUnit runs SPLASH benchmarks with 32, 128, and 512 B
// coherence units on the integrated+victim machine. Paper grounding:
// Section 6.2 — "it is important not to use the long cache lines as
// coherence units, because the false-sharing costs would outweigh the
// prefetching benefits for most applications".
func AblateCoherenceUnit(o Options) (*UnitResult, error) {
	v, err := sweep.RunSerial(AblateCoherenceUnitJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*UnitResult), nil
}

// ablateUnitProcs is the processor count of the coherence-unit study.
const ablateUnitProcs = 4

// AblateCoherenceUnitJob enumerates the coherence-unit ablation as one
// unit per SPLASH benchmark plus one for the false-sharing
// microbenchmark.
func AblateCoherenceUnitJob(o Options) sweep.Job {
	benches := []string{"MP3D", "WATER", "OCEAN"}
	var units []sweep.Unit
	for _, name := range benches {
		units = append(units, sweep.Unit{
			Name: "ablate-unit/" + name,
			Run:  func() (interface{}, error) { return ablateUnitBench(o, name) },
		})
	}
	units = append(units, sweep.Unit{
		Name: "ablate-unit/falseshare",
		Run:  func() (interface{}, error) { return ablateUnitMicro() },
	})
	return sweep.Job{Name: "ablate-unit", Units: units, Assemble: concatRows[UnitRow](func(rows []UnitRow) interface{} {
		return &UnitResult{Procs: ablateUnitProcs, Rows: rows}
	})}
}

// ablateUnitBench runs one SPLASH benchmark at every coherence unit.
func ablateUnitBench(o Options, name string) ([]UnitRow, error) {
	sz := splash.Full()
	if o.MPQuick {
		sz = splash.Quick()
	}
	b, err := splash.ByName(name)
	if err != nil {
		return nil, err
	}
	var rows []UnitRow
	for _, u := range []uint64{32, 128, 512} {
		r := b.RunUnit(ablateUnitProcs, coherence.IntegratedVictim, sz, u)
		rows = append(rows, UnitRow{Bench: name, UnitBytes: u, Cycles: r.Cycles})
	}
	return rows, nil
}

// ablateUnitMicro is a false-sharing microbenchmark: each processor
// repeatedly updates its own 32 B counter, with all counters packed
// into one 512 B region. With 32 B units every processor owns its
// counter; with 512 B units the writes ping-pong ownership of the
// whole unit.
func ablateUnitMicro() ([]UnitRow, error) {
	var rows []UnitRow
	for _, u := range []uint64{32, 128, 512} {
		m := coherence.NewConfiguredMachineUnit(coherence.IntegratedVictim, ablateUnitProcs, u)
		r := mpsim.Run(ablateUnitProcs, m, m.Lat.SyncCosts(), func(p *mpsim.Proc) {
			addr := uint64(0x1000 + p.ID*coherence.BlockSize)
			for i := 0; i < 400; i++ {
				p.Read(addr)
				p.Compute(2)
				p.Write(addr)
			}
		})
		rows = append(rows, UnitRow{Bench: "falseshare (micro)", UnitBytes: u, Cycles: r.Cycles})
	}
	return rows, nil
}

// Table renders the coherence-unit ablation.
func (r *UnitResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ablation: coherence unit size (integrated+victim, %d procs), cycles", r.Procs),
		"benchmark", "32B unit", "128B unit", "512B unit", "512B/32B")
	byBench := map[string]map[uint64]uint64{}
	var order []string
	for _, row := range r.Rows {
		if byBench[row.Bench] == nil {
			byBench[row.Bench] = map[uint64]uint64{}
			order = append(order, row.Bench)
		}
		byBench[row.Bench][row.UnitBytes] = row.Cycles
	}
	for _, b := range order {
		m := byBench[b]
		ratio := float64(m[512]) / float64(m[32])
		t.Row(b, m[32], m[128], m[512], fmt.Sprintf("%.2fx", ratio))
	}
	t.Note("coarse producer-consumer sharing (OCEAN rows) can benefit from bulk transfer,")
	t.Note("but interleaved writers (the false-sharing microbenchmark) ping-pong whole units —")
	t.Note("the paper's reason for keeping coherence at 32 B despite 512 B cache lines")
	return t
}

// ScoreboardRow is one (benchmark, rate) CPI measurement.
type ScoreboardRow struct {
	Bench  string
	Rate   float64 // 0 = no scoreboarding
	MemCPI float64
}

// ScoreboardResult is the scoreboarding ablation.
type ScoreboardResult struct{ Rows []ScoreboardRow }

// AblateScoreboard sweeps the T23 stall rate of the Figure 10 GSPN.
// Paper grounding: Section 5.5 — "to model a system without
// scoreboarding, this rate for T23 is set to infinity. However, we
// assumed the presence of scoreboarding logic for the integrated
// system, therefore the rate of T23 was set [to] 1".
func AblateScoreboard(o Options, ms *MeasurementSet) (*ScoreboardResult, error) {
	v, err := sweep.RunSerial(AblateScoreboardJob(o, ms))
	if err != nil {
		return nil, err
	}
	return v.(*ScoreboardResult), nil
}

// AblateScoreboardJob enumerates the scoreboard ablation as one unit
// per (benchmark, T23 rate) GSPN evaluation; the units share one
// workload measurement through the single-flight MeasurementSet.
func AblateScoreboardJob(o Options, ms *MeasurementSet) sweep.Job {
	rates := []float64{0, 2, 1, 0.5, 0.25} // 0 = stall immediately
	var units []sweep.Unit
	for _, name := range []string{"126.gcc", "101.tomcatv"} {
		for _, rate := range rates {
			units = append(units, sweep.Unit{
				Name: fmt.Sprintf("ablate-scoreboard/%s/rate=%g", name, rate),
				Seed: o.Seed,
				Run:  func() (interface{}, error) { return ablateScoreboardPoint(o, ms, name, rate) },
			})
		}
	}
	return sweep.Job{Name: "ablate-scoreboard", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &ScoreboardResult{Rows: make([]ScoreboardRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(ScoreboardRow)
		}
		return res, nil
	}}
}

// ablateScoreboardPoint evaluates one benchmark at one T23 rate.
func ablateScoreboardPoint(o Options, ms *MeasurementSet, name string, rate float64) (ScoreboardRow, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return ScoreboardRow{}, err
	}
	m, err := ms.Get(w)
	if err != nil {
		return ScoreboardRow{}, err
	}
	cfg := cpumodel.ConfigFor(o.Device())
	cfg.ScoreboardRate = rate
	r, err := cpumodel.Evaluate(cfg, m.Rates(true, true), o.GSPNInstr, o.Seed)
	if err != nil {
		return ScoreboardRow{}, err
	}
	return ScoreboardRow{Bench: name, Rate: rate, MemCPI: r.MemCPI}, nil
}

// Table renders the scoreboarding ablation.
func (r *ScoreboardResult) Table() *report.Table {
	t := report.NewTable("Ablation: scoreboard stall rate (Figure 10 transition T23)",
		"benchmark", "T23 rate", "mem CPI")
	for _, row := range r.Rows {
		label := fmt.Sprintf("%.2f", row.Rate)
		if row.Rate == 0 {
			label = "none (stall at once)"
		}
		t.Row(row.Bench, label, fmt.Sprintf("%.4f", row.MemCPI))
	}
	t.Note("lower rates let more instructions issue under an outstanding load;")
	t.Note("the paper's rate of 1 hides about one instruction per miss")
	return t
}

// INCRow is one (ways, benchmark) measurement of INC effectiveness.
type INCRow struct {
	Bench       string
	Ways        int
	RemoteLoads int64
	Cycles      uint64
}

// INCResult is the INC-associativity ablation.
type INCResult struct{ Rows []INCRow }

// AblateINCAssociativity compares the paper's 7-way INC against
// direct-mapped and lower-associativity organisations. Paper
// grounding: Section 6.2 — the 512 B columns "enable access to seven
// 32-Byte INC blocks each — providing 7 way associativity for cached
// remote memory reducing conflict misses". The INC is deliberately
// under-sized here (a 16 KB slice instead of 1 MB) so that conflicts —
// not capacity slack — are what the associativity fights; the paper's
// own INC is sized above the working sets for the same reason in
// reverse (Section 6.1).
func AblateINCAssociativity(o Options) (*INCResult, error) {
	v, err := sweep.RunSerial(AblateINCAssociativityJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*INCResult), nil
}

// AblateINCAssociativityJob enumerates the INC ablation as one unit
// per (associativity, benchmark) multiprocessor run.
func AblateINCAssociativityJob(o Options) sweep.Job {
	sz := splash.Full()
	// Undersizing tracks the data set: small enough that the remote
	// working set does not rattle around in capacity slack, large
	// enough that conflicts (not pure capacity) decide the outcome.
	smallINC := uint64(256 << 10)
	if o.MPQuick {
		sz = splash.Quick()
		smallINC = 16 << 10
	}
	var units []sweep.Unit
	for _, ways := range []int{1, 2, 7} {
		for _, name := range []string{"WATER", "LU"} {
			units = append(units, sweep.Unit{
				Name: fmt.Sprintf("ablate-inc/%s/ways=%d", name, ways),
				Run: func() (interface{}, error) {
					b, err := splash.ByName(name)
					if err != nil {
						return nil, err
					}
					m := coherence.NewMachineINC(coherence.IntegratedVictim, 4, ways, smallINC)
					r := b.RunMachine(4, m, sz)
					return INCRow{
						Bench: name, Ways: ways,
						RemoteLoads: m.RemoteLoads, Cycles: r.Cycles,
					}, nil
				},
			})
		}
	}
	return sweep.Job{Name: "ablate-inc", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &INCResult{Rows: make([]INCRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(INCRow)
		}
		return res, nil
	}}
}

// Table renders the INC ablation.
func (r *INCResult) Table() *report.Table {
	t := report.NewTable("Ablation: Inter-Node Cache associativity (paper: 7-way)",
		"benchmark", "ways", "remote loads", "cycles")
	for _, row := range r.Rows {
		t.Row(row.Bench, row.Ways, row.RemoteLoads, row.Cycles)
	}
	t.Note("lower associativity turns INC conflicts into 80-cycle remote re-fetches")
	return t
}

// EngineRow is one (benchmark, engines-per-node) measurement.
type EngineRow struct {
	Bench       string
	Engines     int
	Cycles      uint64
	QueueCycles uint64
}

// EngineResult is the protocol-engine ablation.
type EngineResult struct {
	Procs int
	Rows  []EngineRow
}

// AblateEngines varies the number of protocol engines per node. Paper
// grounding: Section 4.2 budgets 60K gates for *two* coherence and
// communications engines; this ablation shows what one engine would
// queue and what a fourth would buy, using the occupancy model of
// internal/coherence/engines.go.
func AblateEngines(o Options) (*EngineResult, error) {
	v, err := sweep.RunSerial(AblateEnginesJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*EngineResult), nil
}

// AblateEnginesJob enumerates the protocol-engine ablation as one unit
// per (benchmark, engine count) multiprocessor run.
func AblateEnginesJob(o Options) sweep.Job {
	procs := 8
	sz := splash.Full()
	if o.MPQuick {
		sz = splash.Quick()
		procs = 4
	}
	var units []sweep.Unit
	for _, name := range []string{"MP3D", "WATER"} {
		for _, engines := range []int{1, 2, 4} {
			units = append(units, sweep.Unit{
				Name: fmt.Sprintf("ablate-engines/%s/engines=%d", name, engines),
				Run: func() (interface{}, error) {
					b, err := splash.ByName(name)
					if err != nil {
						return nil, err
					}
					m := coherence.NewConfiguredMachine(coherence.IntegratedVictim, procs)
					m.EnableEngines(engines)
					r := b.RunMachine(procs, m, sz)
					q, _ := m.EngineStats()
					return EngineRow{
						Bench: name, Engines: engines, Cycles: r.Cycles, QueueCycles: q,
					}, nil
				},
			})
		}
	}
	return sweep.Job{Name: "ablate-engines", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &EngineResult{Procs: procs, Rows: make([]EngineRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(EngineRow)
		}
		return res, nil
	}}
}

// Table renders the engine ablation.
func (r *EngineResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ablation: protocol engines per node (paper: 2), %d procs", r.Procs),
		"benchmark", "engines", "cycles", "engine queue cycles")
	for _, row := range r.Rows {
		t.Row(row.Bench, row.Engines, row.Cycles, row.QueueCycles)
	}
	t.Note("each coherence transaction occupies a home-node engine for ~16 cycles;")
	t.Note("one engine queues under MP3D-style invalidation storms, two barely do (Section 4.2)")
	return t
}

// JouppiRow compares Jouppi's two structures on one benchmark.
type JouppiRow struct {
	Bench     string
	PlainPct  float64 // column-buffer cache alone
	VictimPct float64 // + 16×32 B victim cache (the paper's choice)
	StreamPct float64 // + 4×4 stream buffers (the alternative)
}

// JouppiResult is the victim-vs-stream-buffer ablation.
type JouppiResult struct{ Rows []JouppiRow }

// AblateJouppi compares the paper's victim cache against Jouppi's
// stream buffers (both come from the paper's reference [18]). The
// 512 B column fills already deliver the sequential prefetch a stream
// buffer provides, so the victim cache — which recovers *evicted*
// blocks — is the structure that pays off; this experiment quantifies
// that design rationale.
func AblateJouppi(o Options) (*JouppiResult, error) {
	v, err := sweep.RunSerial(AblateJouppiJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*JouppiResult), nil
}

// AblateJouppiJob enumerates the Jouppi comparison as one unit per
// benchmark; each unit is one trace pass feeding all three structures.
func AblateJouppiJob(o Options) sweep.Job {
	benches := []string{"101.tomcatv", "102.swim", "104.hydro2d", "099.go"}
	units := make([]sweep.Unit, len(benches))
	for i, name := range benches {
		units[i] = sweep.Unit{
			Name: "ablate-jouppi/" + name,
			Run:  func() (interface{}, error) { return ablateJouppiBench(o, name) },
		}
	}
	return sweep.Job{Name: "ablate-jouppi", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &JouppiResult{Rows: make([]JouppiRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(JouppiRow)
		}
		return res, nil
	}}
}

// ablateJouppiBench measures one benchmark with all three structures.
func ablateJouppiBench(o Options, name string) (JouppiRow, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return JouppiRow{}, err
	}
	plain := cache.ProposedDCache()
	vic := cache.Proposed()
	str := cache.NewWithStream(cache.ProposedDCache(), cache.NewStreamBuffer(4, 4))
	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind == trace.Ifetch {
			return
		}
		plain.Access(r.Addr, r.Kind)
		vic.Access(r.Addr, r.Kind)
		str.Access(r.Addr, r.Kind)
	})
	if err := o.stream(w, sink); err != nil {
		return JouppiRow{}, err
	}
	return JouppiRow{
		Bench:     name,
		PlainPct:  plain.Stats().Data().Percent(),
		VictimPct: vic.Stats().Data().Percent(),
		StreamPct: str.Stats().Data().Percent(),
	}, nil
}

// Table renders the Jouppi-structure comparison.
func (r *JouppiResult) Table() *report.Table {
	t := report.NewTable("Ablation: victim cache vs stream buffers (Jouppi [18]), miss rate %",
		"benchmark", "column buffers", "+ victim (paper)", "+ stream buffers")
	for _, row := range r.Rows {
		t.Row(row.Bench, pct(row.PlainPct), pct(row.VictimPct), pct(row.StreamPct))
	}
	t.Note("the 512 B column fill already is a prefetch; the conflict misses the paper")
	t.Note("fights are re-references to evicted blocks, which only the victim cache holds")
	return t
}
