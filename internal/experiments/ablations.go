package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/coherence"
	"repro/internal/cpumodel"
	"repro/internal/mpsim"
	"repro/internal/report"
	"repro/internal/splash"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/workload"
)

// The ablation experiments probe the design choices DESIGN.md calls
// out: the 512 B line size, the 16-entry victim cache, the 7-way INC,
// the 32 B coherence unit, and the scoreboarding assumption. Each is
// grounded in a specific claim of the paper (cited per function).

// ablationBenches is the representative workload subset used by the
// cache-geometry ablations: one long-line winner, one conflict victim,
// one code-heavy integer benchmark, one random-access benchmark.
var ablationBenches = []string{"104.hydro2d", "101.tomcatv", "126.gcc", "129.compress"}

// LineSizeRow is one (benchmark, line size) data-cache measurement.
type LineSizeRow struct {
	Bench     string
	LineBytes int
	MissPct   float64 // 16 KB 2-way cache with that line size
}

// LineSizeResult is the line-size ablation.
type LineSizeResult struct{ Rows []LineSizeRow }

// AblateLineSize sweeps the D-cache line size at fixed 16 KB 2-way
// capacity. Paper grounding: Section 5.3 — long lines prefetch for
// high-locality codes but multiply conflicts when only 16 sets remain
// (tomcatv); and Section 5.6 — "increasing the line size will degrade
// performance due to higher resultant cache conflicts".
func AblateLineSize(o Options) (*LineSizeResult, error) {
	lineSizes := []int{32, 64, 128, 256, 512, 1024}
	res := &LineSizeResult{}
	for _, name := range ablationBenches {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		caches := make([]*cache.SetAssoc, len(lineSizes))
		for i, ls := range lineSizes {
			caches[i] = cache.NewSetAssoc(fmt.Sprintf("16KB 2W %dB", ls),
				16<<10, uint64(ls), 2)
		}
		sink := trace.SinkFunc(func(r trace.Ref) {
			if r.Kind == trace.Ifetch {
				return
			}
			for _, c := range caches {
				c.Access(r.Addr, r.Kind)
			}
		})
		budget := o.Budget
		if budget <= 0 {
			budget = w.Budget
		}
		if _, err := vm.RunProgram(w.Build(), sink, budget); err != nil {
			return nil, err
		}
		for i, ls := range lineSizes {
			res.Rows = append(res.Rows, LineSizeRow{
				Bench: name, LineBytes: ls,
				MissPct: caches[i].Stats().Data().Percent(),
			})
		}
	}
	return res, nil
}

// Table renders the line-size ablation.
func (r *LineSizeResult) Table() *report.Table {
	t := report.NewTable("Ablation: D-cache line size (16 KB, 2-way), miss rate %",
		"benchmark", "32B", "64B", "128B", "256B", "512B", "1024B")
	byBench := map[string]map[int]float64{}
	var order []string
	for _, row := range r.Rows {
		if byBench[row.Bench] == nil {
			byBench[row.Bench] = map[int]float64{}
			order = append(order, row.Bench)
		}
		byBench[row.Bench][row.LineBytes] = row.MissPct
	}
	for _, b := range order {
		m := byBench[b]
		t.Row(b, pct(m[32]), pct(m[64]), pct(m[128]), pct(m[256]), pct(m[512]), pct(m[1024]))
	}
	t.Note("hydro2d-class codes improve monotonically with line size; tomcatv-class")
	t.Note("codes blow up once the set count collapses — the tension the victim cache resolves")
	return t
}

// VictimSizeRow is one (benchmark, entries) measurement.
type VictimSizeRow struct {
	Bench   string
	Entries int
	MissPct float64
}

// VictimSizeResult is the victim-size ablation.
type VictimSizeResult struct{ Rows []VictimSizeRow }

// AblateVictimSize sweeps the victim-cache entry count around the
// paper's choice of 16 (one column's worth). Paper grounding: Section
// 5.4 sizes the victim cache to exactly one 512 B column buffer.
func AblateVictimSize(o Options) (*VictimSizeResult, error) {
	entries := []int{0, 4, 8, 16, 32, 64}
	res := &VictimSizeResult{}
	for _, name := range []string{"101.tomcatv", "102.swim", "099.go"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		plain := cache.ProposedDCache()
		withV := make([]*cache.WithVictim, 0, len(entries)-1)
		for _, e := range entries[1:] {
			withV = append(withV, cache.NewWithVictim(
				cache.ProposedDCache(), cache.NewVictim(e, cache.VictimLineSize)))
		}
		sink := trace.SinkFunc(func(r trace.Ref) {
			if r.Kind == trace.Ifetch {
				return
			}
			plain.Access(r.Addr, r.Kind)
			for _, c := range withV {
				c.Access(r.Addr, r.Kind)
			}
		})
		budget := o.Budget
		if budget <= 0 {
			budget = w.Budget
		}
		if _, err := vm.RunProgram(w.Build(), sink, budget); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, VictimSizeRow{
			Bench: name, Entries: 0, MissPct: plain.Stats().Data().Percent(),
		})
		for i, e := range entries[1:] {
			res.Rows = append(res.Rows, VictimSizeRow{
				Bench: name, Entries: e, MissPct: withV[i].Stats().Data().Percent(),
			})
		}
	}
	return res, nil
}

// Table renders the victim-size ablation.
func (r *VictimSizeResult) Table() *report.Table {
	t := report.NewTable("Ablation: victim cache entries (paper: 16×32 B), miss rate %",
		"benchmark", "none", "4", "8", "16", "32", "64")
	byBench := map[string]map[int]float64{}
	var order []string
	for _, row := range r.Rows {
		if byBench[row.Bench] == nil {
			byBench[row.Bench] = map[int]float64{}
			order = append(order, row.Bench)
		}
		byBench[row.Bench][row.Entries] = row.MissPct
	}
	for _, b := range order {
		m := byBench[b]
		t.Row(b, pct(m[0]), pct(m[4]), pct(m[8]), pct(m[16]), pct(m[32]), pct(m[64]))
	}
	t.Note("16 entries (one column) captures nearly all of the conflict absorption;")
	t.Note("doubling it buys little — the paper's sizing is on the knee of the curve")
	return t
}

// UnitRow is one (benchmark, unit) multiprocessor measurement.
type UnitRow struct {
	Bench     string
	UnitBytes uint64
	Cycles    uint64
}

// UnitResult is the coherence-unit ablation.
type UnitResult struct {
	Procs int
	Rows  []UnitRow
}

// AblateCoherenceUnit runs SPLASH benchmarks with 32, 128, and 512 B
// coherence units on the integrated+victim machine. Paper grounding:
// Section 6.2 — "it is important not to use the long cache lines as
// coherence units, because the false-sharing costs would outweigh the
// prefetching benefits for most applications".
func AblateCoherenceUnit(o Options) (*UnitResult, error) {
	units := []uint64{32, 128, 512}
	procs := 4
	sz := splash.Full()
	if o.MPQuick {
		sz = splash.Quick()
	}
	res := &UnitResult{Procs: procs}
	for _, name := range []string{"MP3D", "WATER", "OCEAN"} {
		b, err := splash.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, u := range units {
			r := b.RunUnit(procs, coherence.IntegratedVictim, sz, u)
			res.Rows = append(res.Rows, UnitRow{Bench: name, UnitBytes: u, Cycles: r.Cycles})
		}
	}
	// A false-sharing microbenchmark: each processor repeatedly updates
	// its own 32 B counter, with all counters packed into one 512 B
	// region. With 32 B units every processor owns its counter; with
	// 512 B units the writes ping-pong ownership of the whole unit.
	for _, u := range units {
		m := coherence.NewConfiguredMachineUnit(coherence.IntegratedVictim, procs, u)
		r := mpsim.Run(procs, m, mpsim.DefaultSyncCosts(), func(p *mpsim.Proc) {
			addr := uint64(0x1000 + p.ID*32)
			for i := 0; i < 400; i++ {
				p.Read(addr)
				p.Compute(2)
				p.Write(addr)
			}
		})
		res.Rows = append(res.Rows, UnitRow{Bench: "falseshare (micro)", UnitBytes: u, Cycles: r.Cycles})
	}
	return res, nil
}

// Table renders the coherence-unit ablation.
func (r *UnitResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ablation: coherence unit size (integrated+victim, %d procs), cycles", r.Procs),
		"benchmark", "32B unit", "128B unit", "512B unit", "512B/32B")
	byBench := map[string]map[uint64]uint64{}
	var order []string
	for _, row := range r.Rows {
		if byBench[row.Bench] == nil {
			byBench[row.Bench] = map[uint64]uint64{}
			order = append(order, row.Bench)
		}
		byBench[row.Bench][row.UnitBytes] = row.Cycles
	}
	for _, b := range order {
		m := byBench[b]
		ratio := float64(m[512]) / float64(m[32])
		t.Row(b, m[32], m[128], m[512], fmt.Sprintf("%.2fx", ratio))
	}
	t.Note("coarse producer-consumer sharing (OCEAN rows) can benefit from bulk transfer,")
	t.Note("but interleaved writers (the false-sharing microbenchmark) ping-pong whole units —")
	t.Note("the paper's reason for keeping coherence at 32 B despite 512 B cache lines")
	return t
}

// ScoreboardRow is one (benchmark, rate) CPI measurement.
type ScoreboardRow struct {
	Bench  string
	Rate   float64 // 0 = no scoreboarding
	MemCPI float64
}

// ScoreboardResult is the scoreboarding ablation.
type ScoreboardResult struct{ Rows []ScoreboardRow }

// AblateScoreboard sweeps the T23 stall rate of the Figure 10 GSPN.
// Paper grounding: Section 5.5 — "to model a system without
// scoreboarding, this rate for T23 is set to infinity. However, we
// assumed the presence of scoreboarding logic for the integrated
// system, therefore the rate of T23 was set [to] 1".
func AblateScoreboard(o Options, ms *MeasurementSet) (*ScoreboardResult, error) {
	rates := []float64{0, 2, 1, 0.5, 0.25} // 0 = stall immediately
	res := &ScoreboardResult{}
	for _, name := range []string{"126.gcc", "101.tomcatv"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		m, err := ms.Get(w)
		if err != nil {
			return nil, err
		}
		app := m.Rates(true, true)
		for _, rate := range rates {
			cfg := cpumodel.Integrated()
			cfg.ScoreboardRate = rate
			r, err := cpumodel.Evaluate(cfg, app, o.GSPNInstr, o.Seed)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ScoreboardRow{Bench: name, Rate: rate, MemCPI: r.MemCPI})
		}
	}
	return res, nil
}

// Table renders the scoreboarding ablation.
func (r *ScoreboardResult) Table() *report.Table {
	t := report.NewTable("Ablation: scoreboard stall rate (Figure 10 transition T23)",
		"benchmark", "T23 rate", "mem CPI")
	for _, row := range r.Rows {
		label := fmt.Sprintf("%.2f", row.Rate)
		if row.Rate == 0 {
			label = "none (stall at once)"
		}
		t.Row(row.Bench, label, fmt.Sprintf("%.4f", row.MemCPI))
	}
	t.Note("lower rates let more instructions issue under an outstanding load;")
	t.Note("the paper's rate of 1 hides about one instruction per miss")
	return t
}

// INCRow is one (ways, benchmark) measurement of INC effectiveness.
type INCRow struct {
	Bench       string
	Ways        int
	RemoteLoads int64
	Cycles      uint64
}

// INCResult is the INC-associativity ablation.
type INCResult struct{ Rows []INCRow }

// AblateINCAssociativity compares the paper's 7-way INC against
// direct-mapped and lower-associativity organisations. Paper
// grounding: Section 6.2 — the 512 B columns "enable access to seven
// 32-Byte INC blocks each — providing 7 way associativity for cached
// remote memory reducing conflict misses". The INC is deliberately
// under-sized here (a 16 KB slice instead of 1 MB) so that conflicts —
// not capacity slack — are what the associativity fights; the paper's
// own INC is sized above the working sets for the same reason in
// reverse (Section 6.1).
func AblateINCAssociativity(o Options) (*INCResult, error) {
	sz := splash.Full()
	// Undersizing tracks the data set: small enough that the remote
	// working set does not rattle around in capacity slack, large
	// enough that conflicts (not pure capacity) decide the outcome.
	smallINC := uint64(256 << 10)
	if o.MPQuick {
		sz = splash.Quick()
		smallINC = 16 << 10
	}
	res := &INCResult{}
	for _, ways := range []int{1, 2, 7} {
		for _, name := range []string{"WATER", "LU"} {
			b, err := splash.ByName(name)
			if err != nil {
				return nil, err
			}
			m := coherence.NewMachineINC(coherence.IntegratedVictim, 4, ways, smallINC)
			r := b.RunMachine(4, m, sz)
			res.Rows = append(res.Rows, INCRow{
				Bench: name, Ways: ways,
				RemoteLoads: m.RemoteLoads, Cycles: r.Cycles,
			})
		}
	}
	return res, nil
}

// Table renders the INC ablation.
func (r *INCResult) Table() *report.Table {
	t := report.NewTable("Ablation: Inter-Node Cache associativity (paper: 7-way)",
		"benchmark", "ways", "remote loads", "cycles")
	for _, row := range r.Rows {
		t.Row(row.Bench, row.Ways, row.RemoteLoads, row.Cycles)
	}
	t.Note("lower associativity turns INC conflicts into 80-cycle remote re-fetches")
	return t
}

// EngineRow is one (benchmark, engines-per-node) measurement.
type EngineRow struct {
	Bench       string
	Engines     int
	Cycles      uint64
	QueueCycles uint64
}

// EngineResult is the protocol-engine ablation.
type EngineResult struct {
	Procs int
	Rows  []EngineRow
}

// AblateEngines varies the number of protocol engines per node. Paper
// grounding: Section 4.2 budgets 60K gates for *two* coherence and
// communications engines; this ablation shows what one engine would
// queue and what a fourth would buy, using the occupancy model of
// internal/coherence/engines.go.
func AblateEngines(o Options) (*EngineResult, error) {
	procs := 8
	sz := splash.Full()
	if o.MPQuick {
		sz = splash.Quick()
		procs = 4
	}
	res := &EngineResult{Procs: procs}
	for _, name := range []string{"MP3D", "WATER"} {
		b, err := splash.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, engines := range []int{1, 2, 4} {
			m := coherence.NewConfiguredMachine(coherence.IntegratedVictim, procs)
			m.EnableEngines(engines)
			r := b.RunMachine(procs, m, sz)
			q, _ := m.EngineStats()
			res.Rows = append(res.Rows, EngineRow{
				Bench: name, Engines: engines, Cycles: r.Cycles, QueueCycles: q,
			})
		}
	}
	return res, nil
}

// Table renders the engine ablation.
func (r *EngineResult) Table() *report.Table {
	t := report.NewTable(
		fmt.Sprintf("Ablation: protocol engines per node (paper: 2), %d procs", r.Procs),
		"benchmark", "engines", "cycles", "engine queue cycles")
	for _, row := range r.Rows {
		t.Row(row.Bench, row.Engines, row.Cycles, row.QueueCycles)
	}
	t.Note("each coherence transaction occupies a home-node engine for ~16 cycles;")
	t.Note("one engine queues under MP3D-style invalidation storms, two barely do (Section 4.2)")
	return t
}

// JouppiRow compares Jouppi's two structures on one benchmark.
type JouppiRow struct {
	Bench     string
	PlainPct  float64 // column-buffer cache alone
	VictimPct float64 // + 16×32 B victim cache (the paper's choice)
	StreamPct float64 // + 4×4 stream buffers (the alternative)
}

// JouppiResult is the victim-vs-stream-buffer ablation.
type JouppiResult struct{ Rows []JouppiRow }

// AblateJouppi compares the paper's victim cache against Jouppi's
// stream buffers (both come from the paper's reference [18]). The
// 512 B column fills already deliver the sequential prefetch a stream
// buffer provides, so the victim cache — which recovers *evicted*
// blocks — is the structure that pays off; this experiment quantifies
// that design rationale.
func AblateJouppi(o Options) (*JouppiResult, error) {
	res := &JouppiResult{}
	for _, name := range []string{"101.tomcatv", "102.swim", "104.hydro2d", "099.go"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		plain := cache.ProposedDCache()
		vic := cache.Proposed()
		str := cache.NewWithStream(cache.ProposedDCache(), cache.NewStreamBuffer(4, 4))
		sink := trace.SinkFunc(func(r trace.Ref) {
			if r.Kind == trace.Ifetch {
				return
			}
			plain.Access(r.Addr, r.Kind)
			vic.Access(r.Addr, r.Kind)
			str.Access(r.Addr, r.Kind)
		})
		budget := o.Budget
		if budget <= 0 {
			budget = w.Budget
		}
		if _, err := vm.RunProgram(w.Build(), sink, budget); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, JouppiRow{
			Bench:     name,
			PlainPct:  plain.Stats().Data().Percent(),
			VictimPct: vic.Stats().Data().Percent(),
			StreamPct: str.Stats().Data().Percent(),
		})
	}
	return res, nil
}

// Table renders the Jouppi-structure comparison.
func (r *JouppiResult) Table() *report.Table {
	t := report.NewTable("Ablation: victim cache vs stream buffers (Jouppi [18]), miss rate %",
		"benchmark", "column buffers", "+ victim (paper)", "+ stream buffers")
	for _, row := range r.Rows {
		t.Row(row.Bench, pct(row.PlainPct), pct(row.VictimPct), pct(row.StreamPct))
	}
	t.Note("the 512 B column fill already is a prefetch; the conflict misses the paper")
	t.Note("fights are re-references to evicted blocks, which only the victim cache holds")
	return t
}
