package experiments

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sweep"
)

// JobFor returns the named experiment as a sweep job: an enumerable
// list of independent units plus the assembly step that rebuilds the
// experiment's result in deterministic order. Every experiment the CLI
// can run in a sweep is registered here; cmd/iramsim adds its own
// single-unit jobs for the text-only outputs (spec, workloads, fig910,
// selftest).
func JobFor(name string, o Options, ms *MeasurementSet) (sweep.Job, error) {
	switch name {
	case "table1":
		return Table1Job(o), nil
	case "fig2":
		return Fig2Job(o), nil
	case "fig7":
		return Fig7Job(o, ms), nil
	case "fig8":
		return Fig8Job(o, ms), nil
	case "fig11":
		return Fig11Job(o, ms), nil
	case "fig12":
		return Fig12Job(o, ms), nil
	case "table3":
		return Table34Job(o, ms, false), nil
	case "table4":
		return Table34Job(o, ms, true), nil
	case "banks":
		return BanksJob(o, ms), nil
	case "mattson":
		return MattsonJob(o), nil
	case "realcpi":
		return RealCPIJob(o, ms), nil
	case "fig13", "fig14", "fig15", "fig16", "fig17":
		n, _ := strconv.Atoi(strings.TrimPrefix(name, "fig"))
		return SplashFigureJob(o, n)
	case "cost":
		return CostJob(), nil
	case "fabric":
		return FabricJob(), nil
	case "scoma":
		return SCOMAJob(o), nil
	case "ablate-linesize":
		return AblateLineSizeJob(o), nil
	case "ablate-victim":
		return AblateVictimSizeJob(o), nil
	case "ablate-unit":
		return AblateCoherenceUnitJob(o), nil
	case "ablate-scoreboard":
		return AblateScoreboardJob(o, ms), nil
	case "ablate-inc":
		return AblateINCAssociativityJob(o), nil
	case "ablate-engines":
		return AblateEnginesJob(o), nil
	case "ablate-jouppi":
		return AblateJouppiJob(o), nil
	case "designspace":
		return DesignspaceJob(o), nil
	default:
		return sweep.Job{}, fmt.Errorf("experiments: unknown experiment %q", name)
	}
}

// SweepNames lists every experiment JobFor accepts, in the order
// `iramsim all` runs them.
func SweepNames() []string {
	return []string{
		"cost", "table1", "fig2", "fig7", "fig8", "fig11", "fig12",
		"table3", "table4", "banks", "mattson", "realcpi",
		"fig13", "fig14", "fig15", "fig16", "fig17",
		"ablate-linesize", "ablate-victim", "ablate-unit",
		"ablate-scoreboard", "ablate-inc", "ablate-engines", "ablate-jouppi",
		"scoma", "fabric",
	}
}
