package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Extension: design-space search over the machine description.
//
// The paper evaluates exactly one integrated organisation (16 banks of
// 512 B column buffers, a 16-entry victim cache). With the machine
// description promoted to a first-class input, the same simulation
// paths can answer the neighbouring questions at scale: which of the
// 10^4-10^5 reachable organisations of a 256 Mbit die actually pay off,
// and what do they cost in silicon?
//
// The search engine stands on three legs:
//
//  1. Family-shared trace passes. Design points are grouped into
//     families by column size (= profiler line size); each
//     (family, bench) pair is one sweep unit making a single pass
//     through a workload.FamilyCacheSet, whose stack-distance trackers
//     answer every bank-count × associativity point of the family and
//     whose in-pass victim compounds answer the victim-bearing points
//     bit-for-bit. N points cost F ≪ N passes: O(families × refs)
//     instead of O(points × refs).
//  2. Coarse grid → adaptive refinement. With -ds-coarse k, only every
//     k-th lattice index per axis (plus the endpoints) is evaluated
//     first; each refinement round then expands the lattice neighbours
//     of the current screening frontier. Because the family passes
//     register the full lattice up front, refinement re-reads the
//     histograms — it never costs another trace pass.
//  3. Miss-rate screening before GSPN. Every evaluated point gets miss
//     rates, a die-area proxy, and an analytic CPI estimate (a
//     queueing-style formula over the same rates the GSPN consumes —
//     cheap, deterministic, and monotone in the right directions) from
//     the family histograms; the Monte-Carlo GSPN processor model runs
//     only for (point, bench) pairs on the estimated
//     (CPI, area, D-miss) Pareto frontier, capped per bench (or for
//     everything, on grids small enough that the classic exhaustive
//     table is wanted).
//
// The result is a Pareto frontier in (total CPI, die area, D-miss%).
// ---------------------------------------------------------------------

// DesignPoint is one machine geometry in the search lattice.
type DesignPoint struct {
	Banks         int // DRAM banks = column-buffer cache sets
	ColumnBytes   int // column buffer (cache line) size
	Ways          int // D-cache associativity (column buffers per bank)
	VictimEntries int // victim cache entries (0 = no victim cache)
}

func (p DesignPoint) String() string {
	return fmt.Sprintf("b=%d/col=%d/w=%d/vic=%d", p.Banks, p.ColumnBytes, p.Ways, p.VictimEntries)
}

// DesignRow is one (geometry, benchmark) evaluation. Every evaluated
// point carries miss rates and the area proxy; MemCPI/TotalCPI are only
// meaningful when HasCPI is set (the point survived miss-rate screening
// or the grid was small enough to evaluate exhaustively).
type DesignRow struct {
	Point    DesignPoint
	Bench    string
	IMissPct float64 // proposed I-cache miss rate, percent
	DMissPct float64 // proposed D-cache (+victim if present) miss rate
	AreaMM2  float64 // die-area proxy (internal/costmodel)
	MemCPI   float64 // GSPN memory component
	TotalCPI float64
	HasCPI   bool
}

// FrontierRow is one Pareto-optimal (bench, geometry) result: no other
// GSPN-evaluated point of the same bench is at least as good on all of
// (TotalCPI, AreaMM2, DMissPct) and better on one.
type FrontierRow struct {
	Bench    string
	Point    DesignPoint
	DMissPct float64
	AreaMM2  float64
	TotalCPI float64
}

// DesignAccounting is the search's cost ledger — the numbers that prove
// the family sharing did its job (Passes ≤ Families × Benches, however
// large Evaluated grows).
type DesignAccounting struct {
	Lattice   int // valid points in the full axis lattice
	Evaluated int // points with assembled miss-rate rows
	Families  int // distinct column sizes
	Benches   int
	Passes    int // trace passes actually made
	Compounds int // in-pass victim replays across all families
	GSPNEvals int // (point, bench) GSPN evaluations
	Rounds    int // refinement rounds that added points
}

func (a DesignAccounting) String() string {
	return fmt.Sprintf("accounting: lattice=%d evaluated=%d families=%d benches=%d passes=%d compounds=%d gspn=%d rounds=%d",
		a.Lattice, a.Evaluated, a.Families, a.Benches, a.Passes, a.Compounds, a.GSPNEvals, a.Rounds)
}

// DesignspaceResult is the assembled search.
type DesignspaceResult struct {
	Benches    []string
	Points     []DesignPoint // evaluated points, lattice order
	Rows       []DesignRow   // point-major, bench-minor: len = Points × Benches
	Frontier   []FrontierRow // final Pareto frontier, bench-major
	Accounting DesignAccounting

	rowIdx map[designKey]int
}

type designKey struct {
	p     DesignPoint
	bench string
}

// designspaceBenches are the two probe workloads: one integer code with
// a large instruction footprint (gcc) and one vectorisable float code
// with streaming data (tomcatv) — the two ends of Figures 7/8.
var designspaceBenches = []string{"126.gcc", "101.tomcatv"}

// gspnAllMax is the row count (points × benches) up to which every
// evaluated row is GSPN-evaluated (the classic exhaustive table);
// above it, only screening-frontier candidates are.
const gspnAllMax = 64

// gspnCapPerBench bounds the (slow, ~100 ms) Monte-Carlo GSPN stage on
// large searches: per bench, at most this many screening-frontier rows
// — strided uniformly across the frontier in ascending estimated-CPI
// order, so the whole area/CPI tradeoff gets real evaluations, not just
// the fast end — get a real CPI. Everything else keeps its miss rates
// and area with HasCPI=false, and the final Pareto frontier only
// reports evaluated rows.
const gspnCapPerBench = 48

// designspaceAxes returns the sweep axes, honouring Options overrides.
func designspaceAxes(o Options) (banks, columns, ways, victims []int) {
	banks, columns, ways, victims = o.DSBanks, o.DSColumns, o.DSWays, o.DSVictims
	if len(banks) == 0 {
		banks = []int{8, 16, 32}
	}
	if len(columns) == 0 {
		columns = []int{256, 512}
	}
	if len(ways) == 0 {
		ways = []int{o.Device().DCacheWays}
	}
	if len(victims) == 0 {
		victims = []int{0, 16}
	}
	return banks, columns, ways, victims
}

// designLattice is the validated axis cross-product: the full space the
// search can reach. Invalid geometries (e.g. a victim line that does
// not divide the column) are dropped at enumeration time, so the
// lattice — and everything derived from it — is deterministic.
type designLattice struct {
	points []DesignPoint
	devs   []core.Device
	axes   [][4]int            // per point: axis indices (banks, col, ways, vic)
	index  map[DesignPoint]int // point -> lattice index
	nAxis  [4]int              // axis lengths
}

func newDesignLattice(o Options) *designLattice {
	bankAxis, colAxis, wayAxis, vicAxis := designspaceAxes(o)
	base := o.Device()
	l := &designLattice{
		index: make(map[DesignPoint]int),
		nAxis: [4]int{len(bankAxis), len(colAxis), len(wayAxis), len(vicAxis)},
	}
	for bi, b := range bankAxis {
		for ci, c := range colAxis {
			for wi, w := range wayAxis {
				for vi, v := range vicAxis {
					dev := base.WithOrganisation(b, c, v, w)
					if err := dev.Validate(); err != nil {
						continue
					}
					p := DesignPoint{Banks: b, ColumnBytes: c, Ways: w, VictimEntries: v}
					l.index[p] = len(l.points)
					l.points = append(l.points, p)
					l.devs = append(l.devs, dev)
					l.axes = append(l.axes, [4]int{bi, ci, wi, vi})
				}
			}
		}
	}
	return l
}

// families groups the lattice by column size: one family per distinct
// column, each carrying every (banks, ways, victim) combination the
// lattice reaches at that column — the registration list for the
// family's single-pass profiler.
func (l *designLattice) families() (columns []int, byColumn map[int][]workload.FamilyPoint) {
	byColumn = make(map[int][]workload.FamilyPoint)
	for _, p := range l.points {
		if _, ok := byColumn[p.ColumnBytes]; !ok {
			columns = append(columns, p.ColumnBytes)
		}
		byColumn[p.ColumnBytes] = append(byColumn[p.ColumnBytes],
			workload.FamilyPoint{Banks: p.Banks, Ways: p.Ways, VictimEntries: p.VictimEntries})
	}
	sort.Ints(columns)
	return columns, byColumn
}

// coarseSelection returns the lattice indices of the round-0 grid:
// every point whose axis indices all lie on the stride-k subsample
// (always including each axis's first and last index). stride <= 1
// selects the whole lattice.
func (l *designLattice) coarseSelection(stride int) []int {
	if stride <= 1 {
		sel := make([]int, len(l.points))
		for i := range sel {
			sel[i] = i
		}
		return sel
	}
	on := func(axis, idx int) bool {
		return idx%stride == 0 || idx == l.nAxis[axis]-1
	}
	var sel []int
	for i, ax := range l.axes {
		if on(0, ax[0]) && on(1, ax[1]) && on(2, ax[2]) && on(3, ax[3]) {
			sel = append(sel, i)
		}
	}
	return sel
}

// neighbors returns the lattice indices one axis step (±1 on a single
// axis) away from the given point, sorted ascending.
func (l *designLattice) neighbors(i int) []int {
	var out []int
	ax := l.axes[i]
	p := l.points[i]
	bankAxis, colAxis, wayAxis, vicAxis := axisValuesOf(l)
	for axis := 0; axis < 4; axis++ {
		for _, d := range []int{-1, 1} {
			ni := ax[axis] + d
			if ni < 0 || ni >= l.nAxis[axis] {
				continue
			}
			q := p
			switch axis {
			case 0:
				q.Banks = bankAxis[ni]
			case 1:
				q.ColumnBytes = colAxis[ni]
			case 2:
				q.Ways = wayAxis[ni]
			case 3:
				q.VictimEntries = vicAxis[ni]
			}
			if j, ok := l.index[q]; ok {
				out = append(out, j)
			}
		}
	}
	sort.Ints(out)
	return out
}

// axisValuesOf reconstructs the axis value lists from the lattice (the
// lattice stores indices; values are recovered from the points). Axis
// values absent from every valid point are unreachable anyway.
func axisValuesOf(l *designLattice) (banks, cols, ways, vics []int) {
	banks = make([]int, l.nAxis[0])
	cols = make([]int, l.nAxis[1])
	ways = make([]int, l.nAxis[2])
	vics = make([]int, l.nAxis[3])
	for i, p := range l.points {
		ax := l.axes[i]
		banks[ax[0]] = p.Banks
		cols[ax[1]] = p.ColumnBytes
		ways[ax[2]] = p.Ways
		vics[ax[3]] = p.VictimEntries
	}
	return
}

// Designspace runs the search serially.
func Designspace(o Options) (*DesignspaceResult, error) {
	v, err := sweep.RunSerial(DesignspaceJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*DesignspaceResult), nil
}

// DesignspaceJob builds the search as a sweep job: one unit per
// (column family, benchmark) making the family's single trace pass, and
// an Assemble step that runs screening, adaptive refinement, and the
// GSPN stage over the completed histograms. Unit count — and therefore
// trace-pass count — is families × benches regardless of how many
// lattice points the axes span.
func DesignspaceJob(o Options) sweep.Job {
	lat := newDesignLattice(o)
	columns, byColumn := lat.families()

	// The family units' names encode only (column, bench); the axes come
	// from Options, so the registered point set is fingerprinted into
	// the cache key — widening an axis re-keys every affected family,
	// and a refinement re-run with wider axes reuses any family whose
	// registration list is unchanged.
	famK := newKeyer("designspace", o, fmt.Sprintf("budget=%d", o.Budget))
	var passes int64
	var units []sweep.Unit
	for _, col := range columns {
		col := col
		pts := byColumn[col]
		for _, bench := range designspaceBenches {
			bench := bench
			uname := fmt.Sprintf("designspace/col=%d/%s", col, bench)
			units = append(units, sweep.Unit{
				Name:  uname,
				Seed:  o.Seed,
				Key:   famK.key(uname, 0, familyCodec.schema(), "pts="+familyPointsFingerprint(col, pts)),
				Codec: familyCodec,
				Run: func() (interface{}, error) {
					w, err := workload.ByName(bench)
					if err != nil {
						return nil, err
					}
					atomic.AddInt64(&passes, 1)
					m, err := workload.RunFamily(w, o.Budget, workload.NewFamilyCacheSet(col, pts), o.source())
					if err != nil {
						return nil, err
					}
					// Distil the live profiler state down to the
					// serializable summary the assembly (and the result
					// cache) consumes.
					return m.Summary(pts), nil
				},
			})
		}
	}

	assemble := func(parts []interface{}) (interface{}, error) {
		// meas[column][bench] — unit order is family-major, bench-minor.
		meas := make(map[int]map[string]*workload.FamilySummary, len(columns))
		compounds := 0
		for fi, col := range columns {
			meas[col] = make(map[string]*workload.FamilySummary, len(designspaceBenches))
			for bi, bench := range designspaceBenches {
				m := parts[fi*len(designspaceBenches)+bi].(*workload.FamilySummary)
				meas[col][bench] = m
			}
			compounds += meas[col][designspaceBenches[0]].Compounds()
		}

		// rowsFor reads one point's per-bench miss rates and area out of
		// the family histograms — no trace pass, no GSPN.
		rowsFor := func(i int) []DesignRow {
			p := lat.points[i]
			fp := workload.FamilyPoint{Banks: p.Banks, Ways: p.Ways, VictimEntries: p.VictimEntries}
			area := lat.devs[i].AreaMM2()
			out := make([]DesignRow, len(designspaceBenches))
			for bi, bench := range designspaceBenches {
				set := meas[p.ColumnBytes][bench]
				d := set.DStats(p.Banks, p.Ways)
				if p.VictimEntries > 0 {
					d = set.DVictimStats(fp)
				}
				out[bi] = DesignRow{
					Point:    p,
					Bench:    bench,
					IMissPct: set.IStats(p.Banks).Ifetch.Percent(),
					DMissPct: d.Data().Percent(),
					AreaMM2:  area,
				}
			}
			return out
		}

		// estsFor computes the analytic CPI estimate that drives
		// screening — same rates the GSPN will consume, no Monte Carlo.
		estsFor := func(i int) []float64 {
			p := lat.points[i]
			fp := workload.FamilyPoint{Banks: p.Banks, Ways: p.Ways, VictimEntries: p.VictimEntries}
			cfg := cpumodel.ConfigFor(lat.devs[i])
			out := make([]float64, len(designspaceBenches))
			for bi, bench := range designspaceBenches {
				out[bi] = estimateCPI(cfg, meas[p.ColumnBytes][bench].Rates(fp))
			}
			return out
		}

		// Round 0: the coarse grid.
		selected := lat.coarseSelection(o.DSCoarse)
		inSel := make(map[int]bool, len(selected))
		rows := make(map[int][]DesignRow, len(selected))
		ests := make(map[int][]float64, len(selected))
		for _, i := range selected {
			inSel[i] = true
			rows[i] = rowsFor(i)
			ests[i] = estsFor(i)
		}

		// Adaptive refinement: expand lattice neighbours of the current
		// screening frontier until the frontier stops moving or the
		// round budget runs out. Purely histogram reads — pass count is
		// already fixed.
		rounds := 0
		for r := 0; r < o.DSRefine; r++ {
			frontier := screeningFrontier(selected, rows, ests)
			var fresh []int
			for _, i := range frontier {
				for _, n := range lat.neighbors(i) {
					if !inSel[n] {
						inSel[n] = true
						fresh = append(fresh, n)
					}
				}
			}
			if len(fresh) == 0 {
				break
			}
			sort.Ints(fresh)
			for _, i := range fresh {
				rows[i] = rowsFor(i)
				ests[i] = estsFor(i)
			}
			selected = append(selected, fresh...)
			rounds++
		}
		sort.Ints(selected)

		// GSPN stage: screening picks the (point, bench) candidates;
		// small grids run exhaustively so the classic table stays fully
		// populated. Large searches cap the Monte-Carlo budget per bench
		// at the gspnCapPerBench best rows by estimated CPI. The nested
		// sweep keeps evaluation order — and therefore output —
		// deterministic for any worker count.
		type gspnPair struct{ i, bi int }
		var gPairs []gspnPair
		if len(selected)*len(designspaceBenches) <= gspnAllMax {
			for _, i := range selected {
				for bi := range designspaceBenches {
					gPairs = append(gPairs, gspnPair{i, bi})
				}
			}
		} else {
			for bi := range designspaceBenches {
				cand := append([]int(nil), benchFrontier(selected, rows, ests, bi)...)
				sort.Slice(cand, func(a, b int) bool {
					ia, ib := cand[a], cand[b]
					if ests[ia][bi] != ests[ib][bi] {
						return ests[ia][bi] < ests[ib][bi]
					}
					if rows[ia][bi].AreaMM2 != rows[ib][bi].AreaMM2 {
						return rows[ia][bi].AreaMM2 < rows[ib][bi].AreaMM2
					}
					return ia < ib
				})
				if n := len(cand); n > gspnCapPerBench {
					strided := make([]int, 0, gspnCapPerBench)
					for k := 0; k < gspnCapPerBench; k++ {
						strided = append(strided, cand[k*(n-1)/(gspnCapPerBench-1)])
					}
					cand = strided
				}
				for _, i := range cand {
					gPairs = append(gPairs, gspnPair{i, bi})
				}
			}
			sort.Slice(gPairs, func(a, b int) bool {
				if gPairs[a].i != gPairs[b].i {
					return gPairs[a].i < gPairs[b].i
				}
				return gPairs[a].bi < gPairs[b].bi
			})
		}
		// The GSPN inputs are fully determined by the per-point device,
		// the rates (budget + bench, both in key or name), the run
		// length, and the seed — the family's other registered points
		// never reach this stage, so the key omits the axes fingerprint
		// and refinement re-runs with wider axes still hit.
		gspnK := newKeyer("designspace/gspn", o,
			fmt.Sprintf("budget=%d", o.Budget), fmt.Sprintf("gspn=%d", o.GSPNInstr))
		gUnits := make([]sweep.Unit, len(gPairs))
		for gi, pr := range gPairs {
			p := lat.points[pr.i]
			fp := workload.FamilyPoint{Banks: p.Banks, Ways: p.Ways, VictimEntries: p.VictimEntries}
			dev := lat.devs[pr.i]
			bench := designspaceBenches[pr.bi]
			uname := fmt.Sprintf("designspace/gspn/%s/%s", p, bench)
			gUnits[gi] = sweep.Unit{
				Name:  uname,
				Seed:  o.Seed,
				Key:   gspnK.key(uname, o.Seed, gspnCodec.schema(), "pdev="+deviceHash(dev)),
				Codec: gspnCodec,
				Run: func() (interface{}, error) {
					rates := meas[p.ColumnBytes][bench].Rates(fp)
					return cpumodel.Evaluate(cpumodel.ConfigFor(dev), rates, o.GSPNInstr, o.Seed)
				},
			}
		}
		gJob := sweep.Job{Name: "designspace/gspn", Units: gUnits,
			Assemble: func(ps []interface{}) (interface{}, error) { return ps, nil }}
		eng := &sweep.Engine{Workers: o.Workers, Cache: o.ResultCache}
		gv, err := eng.RunJobContext(o.ctx(), gJob)
		if err != nil {
			return nil, err
		}
		gParts := gv.([]interface{})
		for gi, pr := range gPairs {
			r := gParts[gi].(cpumodel.Result)
			row := &rows[pr.i][pr.bi]
			row.MemCPI = r.MemCPI
			row.TotalCPI = r.TotalCPI
			row.HasCPI = true
		}

		res := &DesignspaceResult{
			Benches: designspaceBenches,
			Accounting: DesignAccounting{
				Lattice:   len(lat.points),
				Evaluated: len(selected),
				Families:  len(columns),
				Benches:   len(designspaceBenches),
				Passes:    int(atomic.LoadInt64(&passes)),
				Compounds: compounds,
				GSPNEvals: len(gUnits),
				Rounds:    rounds,
			},
			rowIdx: make(map[designKey]int, len(selected)*len(designspaceBenches)),
		}
		for _, i := range selected {
			res.Points = append(res.Points, lat.points[i])
			for bi := range designspaceBenches {
				res.rowIdx[designKey{rows[i][bi].Point, rows[i][bi].Bench}] = len(res.Rows)
				res.Rows = append(res.Rows, rows[i][bi])
			}
		}
		res.Frontier = paretoFrontier(res)
		return res, nil
	}

	return sweep.Job{Name: "designspace", Units: units, Assemble: assemble}
}

// estimateCPI is the screening heuristic: an analytic M/M/1-flavoured
// CPI estimate built from the same per-bench rates the GSPN consumes.
// Miss traffic per instruction times DRAM service, plus a queueing bump
// that shrinks with bank count, over BaseCPI. It is cheap (a handful of
// float ops vs ~100 ms of Monte Carlo), deterministic, and monotone the
// right way in every axis — good enough to rank candidates for the real
// model, which alone decides the reported frontier.
func estimateCPI(cfg cpumodel.SystemConfig, app cpumodel.AppRates) float64 {
	miss := (1 - app.IHit) + app.LoadFrac*(1-app.LoadHit) + app.StoreFrac*(1-app.StoreHit)
	service := cfg.MemCycles + cfg.PrechargeCycles
	rho := miss * service / float64(cfg.Banks)
	if rho > 0.95 {
		rho = 0.95
	}
	wait := service * rho / (1 - rho)
	return app.BaseCPI + miss*(cfg.MemCycles+wait)
}

// benchFrontier returns (ascending lattice indices) the selected points
// whose (estimated CPI, area, D-miss) triple is Pareto-non-dominated
// for the given bench. This is the screening frontier that steers
// refinement and nominates GSPN candidates; screening is a heuristic —
// a point the estimate misranks can be pruned — but the reported
// frontier only ever contains GSPN-evaluated rows, so the heuristic
// costs recall, never correctness of what is claimed.
func benchFrontier(selected []int, rows map[int][]DesignRow, ests map[int][]float64, bi int) []int {
	var out []int
	for _, i := range selected {
		dominated := false
		for _, j := range selected {
			if i == j {
				continue
			}
			if screenDominates(ests[j][bi], rows[j][bi], ests[i][bi], rows[i][bi]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// screeningFrontier is the union of the per-bench frontiers, sorted and
// deduplicated — the refinement seed set.
func screeningFrontier(selected []int, rows map[int][]DesignRow, ests map[int][]float64) []int {
	nb := 0
	for _, i := range selected {
		nb = len(rows[i])
		break
	}
	keep := map[int]bool{}
	for bi := 0; bi < nb; bi++ {
		for _, i := range benchFrontier(selected, rows, ests, bi) {
			keep[i] = true
		}
	}
	out := make([]int, 0, len(keep))
	for i := range keep {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// screenDominates reports whether (estA, a) strictly dominates
// (estB, b) in the screening order: minimise estimated CPI, area, and
// D-miss.
func screenDominates(estA float64, a DesignRow, estB float64, b DesignRow) bool {
	if estA > estB || a.DMissPct > b.DMissPct || a.AreaMM2 > b.AreaMM2 {
		return false
	}
	return estA < estB || a.DMissPct < b.DMissPct || a.AreaMM2 < b.AreaMM2
}

// paretoFrontier extracts, per bench, the GSPN-evaluated rows that no
// other evaluated row dominates in (TotalCPI, AreaMM2, DMissPct), all
// minimised. Rows are ordered bench-major, then ascending CPI (area,
// then point order break ties), so the frontier is deterministic.
func paretoFrontier(res *DesignspaceResult) []FrontierRow {
	var out []FrontierRow
	for _, bench := range res.Benches {
		var cand []DesignRow
		for _, r := range res.Rows {
			if r.Bench == bench && r.HasCPI {
				cand = append(cand, r)
			}
		}
		for i, r := range cand {
			dominated := false
			for j, q := range cand {
				if i == j {
					continue
				}
				if q.TotalCPI <= r.TotalCPI && q.AreaMM2 <= r.AreaMM2 && q.DMissPct <= r.DMissPct &&
					(q.TotalCPI < r.TotalCPI || q.AreaMM2 < r.AreaMM2 || q.DMissPct < r.DMissPct) {
					dominated = true
					break
				}
			}
			if !dominated {
				out = append(out, FrontierRow{Bench: bench, Point: r.Point,
					DMissPct: r.DMissPct, AreaMM2: r.AreaMM2, TotalCPI: r.TotalCPI})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Bench != b.Bench {
			return benchOrder(res.Benches, a.Bench) < benchOrder(res.Benches, b.Bench)
		}
		if a.TotalCPI != b.TotalCPI {
			return a.TotalCPI < b.TotalCPI
		}
		if a.AreaMM2 != b.AreaMM2 {
			return a.AreaMM2 < b.AreaMM2
		}
		return false
	})
	return out
}

func benchOrder(benches []string, b string) int {
	for i, n := range benches {
		if n == b {
			return i
		}
	}
	return len(benches)
}

// Row finds the evaluation for a (point, bench) pair via the index
// built at assembly (O(1); the pre-rewrite linear scan made Table()
// quadratic at scale).
func (r *DesignspaceResult) Row(p DesignPoint, bench string) (DesignRow, bool) {
	if r.rowIdx == nil {
		r.rowIdx = make(map[designKey]int, len(r.Rows))
		for i, row := range r.Rows {
			r.rowIdx[designKey{row.Point, row.Bench}] = i
		}
	}
	i, ok := r.rowIdx[designKey{p, bench}]
	if !ok {
		return DesignRow{}, false
	}
	return r.Rows[i], true
}

// gridTableMax caps the per-point grid rendering; larger searches are
// reported by their frontier (the grid is still fully present in Rows
// and the -json / frontier-export paths).
const gridTableMax = 64

// Table renders the per-point grid (the classic exhaustive view).
func (r *DesignspaceResult) Table() *report.Table {
	cols := []string{"banks", "column B", "ways", "victim", "area mm2"}
	for _, b := range r.Benches {
		cols = append(cols, b+" I%", b+" D%", b+" CPI")
	}
	t := report.NewTable("Extension: integrated-node design space (device-derived geometries)", cols...)
	for _, p := range r.Points {
		var area float64
		if row, ok := r.Row(p, r.Benches[0]); ok {
			area = row.AreaMM2
		}
		cells := []interface{}{p.Banks, p.ColumnBytes, p.Ways, p.VictimEntries,
			fmt.Sprintf("%.1f", area)}
		for _, b := range r.Benches {
			row, ok := r.Row(p, b)
			if !ok {
				cells = append(cells, "-", "-", "-")
				continue
			}
			cpi := "-"
			if row.HasCPI {
				cpi = fmt.Sprintf("%.2f", row.TotalCPI)
			}
			cells = append(cells, pct(row.IMissPct), pct(row.DMissPct), cpi)
		}
		t.Row(cells...)
	}
	t.Note("each geometry is the base device re-derived by WithOrganisation(banks, column,")
	t.Note("victim, ways); miss rates come from one shared trace pass per column-size family,")
	t.Note("CPI from the GSPN ('-' = screened out before GSPN); the paper's organisation is")
	t.Note("the 16 x 512 x 2-way + 16-entry-victim row")
	return t
}

// FrontierTable renders the Pareto frontier plus the search accounting.
func (r *DesignspaceResult) FrontierTable() *report.Table {
	t := report.NewTable("Design-space Pareto frontier: (total CPI, die area, D-miss%)",
		"bench", "banks", "column B", "ways", "victim", "area mm2", "D%", "CPI")
	for _, f := range r.Frontier {
		t.Row(f.Bench, f.Point.Banks, f.Point.ColumnBytes, f.Point.Ways,
			f.Point.VictimEntries, fmt.Sprintf("%.1f", f.AreaMM2),
			pct(f.DMissPct), fmt.Sprintf("%.2f", f.TotalCPI))
	}
	t.Note(r.Accounting.String())
	t.Note(fmt.Sprintf("family sharing: %d points answered by %d trace passes (%d column-size",
		r.Accounting.Evaluated, r.Accounting.Passes, r.Accounting.Families))
	t.Note(fmt.Sprintf("families x benches); above %d rows the GSPN ran only for screening-frontier", gspnAllMax))
	t.Note(fmt.Sprintf("candidates (<= %d per bench, strided across the estimated frontier); refinement",
		gspnCapPerBench))
	t.Note("re-reads histograms, never re-traces")
	return t
}

// Tables implements the CLI's multi-table rendering: the grid (elided
// beyond gridTableMax points) followed by the frontier + accounting.
func (r *DesignspaceResult) Tables() []*report.Table {
	if len(r.Points) <= gridTableMax {
		return []*report.Table{r.Table(), r.FrontierTable()}
	}
	return []*report.Table{r.FrontierTable()}
}

// WriteFrontierJSON exports the frontier (with accounting) as JSON.
func (r *DesignspaceResult) WriteFrontierJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Accounting DesignAccounting
		Frontier   []FrontierRow
	}{r.Accounting, r.Frontier})
}

// WriteFrontierCSV exports the frontier as CSV (one header line, one
// row per frontier point).
func (r *DesignspaceResult) WriteFrontierCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "bench,banks,column_bytes,ways,victim_entries,area_mm2,dmiss_pct,total_cpi"); err != nil {
		return err
	}
	for _, f := range r.Frontier {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%d,%d,%.4f,%.6f,%.6f\n",
			f.Bench, f.Point.Banks, f.Point.ColumnBytes, f.Point.Ways,
			f.Point.VictimEntries, f.AreaMM2, f.DMissPct, f.TotalCPI); err != nil {
			return err
		}
	}
	return nil
}

// designPointReference is the pre-rewrite per-point path — one full
// trace pass per (geometry, bench) through CacheSet — retained as the
// oracle the family-shared path is verified against (see
// designspace_test.go).
func designPointReference(o Options, dev core.Device, p DesignPoint, bench string) (DesignRow, error) {
	w, err := workload.ByName(bench)
	if err != nil {
		return DesignRow{}, err
	}
	m, err := workload.RunDevicesFrom(w, o.Budget, dev, core.Reference(), o.source())
	if err != nil {
		return DesignRow{}, err
	}
	cs := m.Caches
	withVictim := p.VictimEntries > 0
	d := cs.PropDStats()
	if withVictim {
		d = cs.PropDVictimStats()
	}
	rates := m.Rates(true, withVictim)
	r, err := cpumodel.Evaluate(cpumodel.ConfigFor(dev), rates, o.GSPNInstr, o.Seed)
	if err != nil {
		return DesignRow{}, err
	}
	return DesignRow{
		Point:    p,
		Bench:    bench,
		IMissPct: cs.PropIStats().Ifetch.Percent(),
		DMissPct: d.Data().Percent(),
		AreaMM2:  dev.AreaMM2(),
		MemCPI:   r.MemCPI,
		TotalCPI: r.TotalCPI,
		HasCPI:   true,
	}, nil
}
