package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Extension: design-space sweep over the machine description.
//
// The paper evaluates exactly one integrated organisation (16 banks of
// 512 B column buffers, a 16-entry victim cache). With the machine
// description promoted to a first-class input, the same simulation
// paths can answer the neighbouring questions: what if the 256 Mbit
// part were organised as more, narrower banks? Does the victim cache
// still pay for itself when the column buffers shrink? This experiment
// sweeps bank count x column size x victim entries through the cache
// simulators and the GSPN processor model.
// ---------------------------------------------------------------------

// DesignPoint is one machine geometry in the sweep.
type DesignPoint struct {
	Banks         int // DRAM banks = column-buffer cache sets
	ColumnBytes   int // column buffer (cache line) size
	VictimEntries int // victim cache entries (0 = no victim cache)
}

func (p DesignPoint) String() string {
	return fmt.Sprintf("b=%d/col=%d/vic=%d", p.Banks, p.ColumnBytes, p.VictimEntries)
}

// DesignRow is one (geometry, benchmark) evaluation.
type DesignRow struct {
	Point    DesignPoint
	Bench    string
	IMissPct float64 // proposed I-cache miss rate, percent
	DMissPct float64 // proposed D-cache (+victim if present) miss rate
	MemCPI   float64 // GSPN memory component
	TotalCPI float64
}

// DesignspaceResult is the full sweep.
type DesignspaceResult struct {
	Benches []string
	Points  []DesignPoint
	Rows    []DesignRow
}

// designspaceBenches are the two probe workloads: one integer code with
// a large instruction footprint (gcc) and one vectorisable float code
// with streaming data (tomcatv) — the two ends of Figures 7/8.
var designspaceBenches = []string{"126.gcc", "101.tomcatv"}

// designspaceAxes returns the sweep axes, honouring Options overrides.
func designspaceAxes(o Options) (banks, columns, victims []int) {
	banks, columns, victims = o.DSBanks, o.DSColumns, o.DSVictims
	if len(banks) == 0 {
		banks = []int{8, 16, 32}
	}
	if len(columns) == 0 {
		columns = []int{256, 512}
	}
	if len(victims) == 0 {
		victims = []int{0, 16}
	}
	return banks, columns, victims
}

// Designspace runs the sweep serially.
func Designspace(o Options) (*DesignspaceResult, error) {
	v, err := sweep.RunSerial(DesignspaceJob(o))
	if err != nil {
		return nil, err
	}
	return v.(*DesignspaceResult), nil
}

// DesignspaceJob enumerates the sweep as one unit per
// (geometry, benchmark) pair. Geometries that fail device validation
// (e.g. a victim line that does not divide the column) are filtered at
// enumeration time, so the unit list — and therefore the output — is
// deterministic for a given axis set.
func DesignspaceJob(o Options) sweep.Job {
	bankAxis, colAxis, vicAxis := designspaceAxes(o)
	base := o.Device()
	var points []DesignPoint
	var devs []core.Device
	for _, b := range bankAxis {
		for _, c := range colAxis {
			for _, v := range vicAxis {
				dev := base.WithGeometry(b, c, v)
				if err := dev.Validate(); err != nil {
					continue
				}
				points = append(points, DesignPoint{Banks: b, ColumnBytes: c, VictimEntries: v})
				devs = append(devs, dev)
			}
		}
	}
	var units []sweep.Unit
	for pi, p := range points {
		dev := devs[pi]
		for _, bench := range designspaceBenches {
			units = append(units, sweep.Unit{
				Name: fmt.Sprintf("designspace/%s/%s", p, bench),
				Seed: o.Seed,
				Run: func() (interface{}, error) {
					return designPoint(o, dev, p, bench)
				},
			})
		}
	}
	return sweep.Job{Name: "designspace", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &DesignspaceResult{Benches: designspaceBenches, Points: points,
			Rows: make([]DesignRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(DesignRow)
		}
		return res, nil
	}}
}

// designPoint measures one geometry against one workload: cache miss
// rates from the trace-driven simulators, CPI from the GSPN with the
// bank count and timings of the swept device.
func designPoint(o Options, dev core.Device, p DesignPoint, bench string) (DesignRow, error) {
	w, err := workload.ByName(bench)
	if err != nil {
		return DesignRow{}, err
	}
	m, err := workload.RunDevices(w, o.Budget, dev, core.Reference())
	if err != nil {
		return DesignRow{}, err
	}
	cs := m.Caches
	withVictim := p.VictimEntries > 0
	d := cs.PropDStats()
	if withVictim {
		d = cs.PropDVictimStats()
	}
	rates := m.Rates(true, withVictim)
	r, err := cpumodel.Evaluate(cpumodel.ConfigFor(dev), rates, o.GSPNInstr, o.Seed)
	if err != nil {
		return DesignRow{}, err
	}
	return DesignRow{
		Point:    p,
		Bench:    bench,
		IMissPct: cs.PropIStats().Ifetch.Percent(),
		DMissPct: d.Data().Percent(),
		MemCPI:   r.MemCPI,
		TotalCPI: r.TotalCPI,
	}, nil
}

// Row finds the evaluation for a (point, bench) pair.
func (r *DesignspaceResult) Row(p DesignPoint, bench string) (DesignRow, bool) {
	for _, row := range r.Rows {
		if row.Point == p && row.Bench == bench {
			return row, true
		}
	}
	return DesignRow{}, false
}

// Table renders the sweep, one row per geometry with per-benchmark
// miss-rate and CPI columns.
func (r *DesignspaceResult) Table() *report.Table {
	cols := []string{"banks", "column B", "victim"}
	for _, b := range r.Benches {
		cols = append(cols, b+" I%", b+" D%", b+" CPI")
	}
	t := report.NewTable("Extension: integrated-node design space (device-derived geometries)", cols...)
	for _, p := range r.Points {
		cells := []interface{}{p.Banks, p.ColumnBytes, p.VictimEntries}
		for _, b := range r.Benches {
			row, ok := r.Row(p, b)
			if !ok {
				cells = append(cells, "-", "-", "-")
				continue
			}
			cells = append(cells, pct(row.IMissPct), pct(row.DMissPct),
				fmt.Sprintf("%.2f", row.TotalCPI))
		}
		t.Row(cells...)
	}
	t.Note("each geometry is core.Proposed().WithGeometry(banks, column, victim) — the same")
	t.Note("device description drives the cache simulators and the GSPN processor model;")
	t.Note("the paper's organisation is the 16 x 512 + 16-entry-victim row")
	return t
}
