package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/sweep"
)

// dsQuick returns the reduced-fidelity options the designspace tests
// share.
func dsQuick() Options {
	o := Quick()
	o.Budget = 50_000
	o.GSPNInstr = 2_000
	return o
}

// TestDesignspaceMatchesPerPoint is the search's equivalence anchor:
// on the seed 12-point grid, every row of the family-shared-pass search
// must match the pre-rewrite per-point path — one full CacheSet trace
// pass plus a GSPN run per (geometry, bench) — bit for bit, victim
// compounds included.
func TestDesignspaceMatchesPerPoint(t *testing.T) {
	o := dsQuick() // default axes: 3 banks x 2 columns x {0,16} victims = 12 points
	res, err := Designspace(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 12 {
		t.Fatalf("default grid has %d points, want 12", len(res.Points))
	}
	base := o.Device()
	for _, p := range res.Points {
		dev := base.WithOrganisation(p.Banks, p.ColumnBytes, p.VictimEntries, p.Ways)
		for _, bench := range res.Benches {
			want, err := designPointReference(o, dev, p, bench)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := res.Row(p, bench)
			if !ok {
				t.Fatalf("no row for %s/%s", p, bench)
			}
			if got != want {
				t.Errorf("%s/%s:\n family %+v\n  point %+v", p, bench, got, want)
			}
		}
	}
	if a := res.Accounting; a.Passes > a.Families*a.Benches {
		t.Errorf("accounting: %d passes for %d families x %d benches", a.Passes, a.Families, a.Benches)
	}
}

// TestDesignspaceRefinementZeroIsExhaustive: with a stride-1 coarse
// grid there is nothing to refine — any refinement budget must
// reproduce the exhaustive result byte for byte, with zero rounds
// spent.
func TestDesignspaceRefinementZeroIsExhaustive(t *testing.T) {
	render := func(refine int) []byte {
		o := dsQuick()
		o.DSCoarse = 1
		o.DSRefine = refine
		res, err := Designspace(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accounting.Rounds != 0 {
			t.Errorf("refine=%d: %d rounds spent on an exhaustive grid", refine, res.Accounting.Rounds)
		}
		var buf bytes.Buffer
		for _, tab := range res.Tables() {
			tab.Render(&buf)
		}
		return buf.Bytes()
	}
	if a, b := render(0), render(5); !bytes.Equal(a, b) {
		t.Errorf("exhaustive grid changed under refinement budget:\n--- refine=0 ---\n%s\n--- refine=5 ---\n%s", a, b)
	}
}

// TestDesignspaceRefinementConverges: a strided coarse grid plus
// refinement must (a) evaluate strictly fewer points than the lattice,
// (b) spend at least one round, and (c) cost no additional trace
// passes over the unrefined run.
func TestDesignspaceRefinementConverges(t *testing.T) {
	o := dsQuick()
	o.Budget = 20_000
	for b := 4; b <= 96; b += 4 {
		o.DSBanks = append(o.DSBanks, b) // 24 lattice indices on the banks axis
	}
	o.DSColumns = []int{256, 512}
	o.DSWays = []int{1, 2}
	o.DSVictims = []int{0, 16}
	o.DSCoarse = 6 // coarse banks indices {0, 6, 12, 18, 23}
	o.DSRefine = 1 // one round reaches only index-neighbours of those
	res, err := Designspace(o)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Accounting
	if a.Evaluated >= a.Lattice {
		t.Errorf("refined search evaluated %d of %d lattice points — no saving", a.Evaluated, a.Lattice)
	}
	if a.Rounds < 1 {
		t.Errorf("refinement spent %d rounds, want >= 1", a.Rounds)
	}
	if a.Passes > a.Families*a.Benches {
		t.Errorf("refinement cost extra passes: %d > %d families x %d benches",
			a.Passes, a.Families, a.Benches)
	}
	if len(res.Frontier) == 0 {
		t.Error("empty Pareto frontier")
	}
}

// TestDesignspaceDeterministicAcrossWorkers: the assembled search —
// grid rows, frontier, accounting — must be byte-identical for any
// worker count, including workers > families (the family units plus
// the nested GSPN stage all racing).
func TestDesignspaceDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		o := dsQuick()
		o.Workers = workers
		eng := &sweep.Engine{Workers: workers}
		v, err := eng.RunJob(DesignspaceJob(o))
		if err != nil {
			t.Fatal(err)
		}
		res := v.(*DesignspaceResult)
		var buf bytes.Buffer
		for _, tab := range res.Tables() {
			tab.Render(&buf)
		}
		return buf.Bytes()
	}
	serial := render(1)
	for _, w := range []int{3, 8} {
		if got := render(w); !bytes.Equal(serial, got) {
			t.Errorf("workers=%d output differs from serial:\n--- serial ---\n%s\n--- j=%d ---\n%s",
				w, serial, w, got)
		}
	}
}

// TestDesignspacePassReduction runs a deliberately large lattice and
// checks the headline claim: trace passes stay at families × benches,
// a >= 50x reduction over per-point evaluation, and the GSPN runs only
// for screening-frontier candidates.
func TestDesignspacePassReduction(t *testing.T) {
	o := dsQuick()
	o.Budget = 20_000
	o.DSBanks = []int{4, 6, 8, 10, 12, 14, 16, 20, 24, 28, 32, 40, 48, 56, 64}
	o.DSColumns = []int{256, 512}
	o.DSWays = []int{1, 2, 4}
	o.DSVictims = []int{0, 16}
	res, err := Designspace(o)
	if err != nil {
		t.Fatal(err)
	}
	a := res.Accounting
	if a.Lattice != 15*2*3*2 {
		t.Fatalf("lattice = %d points, want 180", a.Lattice)
	}
	if a.Passes > a.Families*a.Benches {
		t.Errorf("passes = %d, want <= %d (families x benches)", a.Passes, a.Families*a.Benches)
	}
	if reduction := a.Evaluated / a.Families; reduction < 50 {
		t.Errorf("pass reduction = %dx (evaluated %d / families %d), want >= 50x",
			reduction, a.Evaluated, a.Families)
	}
	if a.GSPNEvals >= a.Evaluated*a.Benches {
		t.Errorf("GSPN ran for all %d rows — screening did nothing", a.GSPNEvals)
	}
	if len(res.Frontier) == 0 {
		t.Error("empty Pareto frontier")
	}
	// Every frontier point must carry a real CPI from the GSPN stage.
	for _, f := range res.Frontier {
		row, ok := res.Row(f.Point, f.Bench)
		if !ok || !row.HasCPI {
			t.Errorf("frontier point %s/%s has no GSPN evaluation", f.Point, f.Bench)
		}
	}
}

// TestDesignspaceFrontierExport sanity-checks the two export formats.
func TestDesignspaceFrontierExport(t *testing.T) {
	o := dsQuick()
	o.DSBanks = []int{8, 16}
	o.DSColumns = []int{512}
	o.DSVictims = []int{0}
	res, err := Designspace(o)
	if err != nil {
		t.Fatal(err)
	}
	var j, c bytes.Buffer
	if err := res.WriteFrontierJSON(&j); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteFrontierCSV(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(j.Bytes(), []byte(`"Frontier"`)) || !bytes.Contains(j.Bytes(), []byte(`"Accounting"`)) {
		t.Errorf("JSON export missing sections:\n%s", j.String())
	}
	lines := bytes.Count(c.Bytes(), []byte("\n"))
	if lines != 1+len(res.Frontier) {
		t.Errorf("CSV export has %d lines, want %d", lines, 1+len(res.Frontier))
	}
}

// TestWithOrganisationMatchesWithGeometry pins the designspace device
// derivation to the PR 4 path at the base associativity.
func TestWithOrganisationMatchesWithGeometry(t *testing.T) {
	base := core.Proposed()
	a := base.WithOrganisation(32, 256, 8, base.DCacheWays)
	b := base.WithGeometry(32, 256, 8)
	if a != b {
		t.Errorf("WithOrganisation(base ways) != WithGeometry:\n a %+v\n b %+v", a, b)
	}
}
