package experiments

import (
	"strings"
	"testing"

	"repro/internal/coherence"
)

func TestAblateLineSize(t *testing.T) {
	r, err := AblateLineSize(topts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench string, line int) float64 {
		for _, row := range r.Rows {
			if row.Bench == bench && row.LineBytes == line {
				return row.MissPct
			}
		}
		t.Fatalf("missing %s/%d", bench, line)
		return 0
	}
	// hydro2d: long lines are pure prefetch (Section 5.3).
	if get("104.hydro2d", 512) >= get("104.hydro2d", 32) {
		t.Error("hydro2d should improve with 512 B lines")
	}
	// tomcatv: long lines collapse the set count and conflicts explode.
	if get("101.tomcatv", 512) <= get("101.tomcatv", 64) {
		t.Error("tomcatv should degrade with 512 B lines (16 sets)")
	}
	if r.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestAblateVictimSize(t *testing.T) {
	r, err := AblateVictimSize(topts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench string, entries int) float64 {
		for _, row := range r.Rows {
			if row.Bench == bench && row.Entries == entries {
				return row.MissPct
			}
		}
		t.Fatalf("missing %s/%d", bench, entries)
		return 0
	}
	// The paper's 16 entries capture the bulk of the benefit: 16 must
	// beat none by a lot, and 64 must add little over 16.
	none := get("101.tomcatv", 0)
	sixteen := get("101.tomcatv", 16)
	sixtyFour := get("101.tomcatv", 64)
	if sixteen > none/3 {
		t.Errorf("16-entry victim too weak: %.2f%% vs %.2f%%", sixteen, none)
	}
	if sixteen-sixtyFour > none/10 {
		t.Errorf("64 entries add too much over 16: %.2f%% vs %.2f%%", sixtyFour, sixteen)
	}
}

func TestAblateCoherenceUnit(t *testing.T) {
	r, err := AblateCoherenceUnit(topts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench string, unit uint64) uint64 {
		for _, row := range r.Rows {
			if row.Bench == bench && row.UnitBytes == unit {
				return row.Cycles
			}
		}
		t.Fatalf("missing %s/%d", bench, unit)
		return 0
	}
	// The false-sharing microbenchmark must blow up with 512 B units.
	small := get("falseshare (micro)", 32)
	big := get("falseshare (micro)", 512)
	if big < 10*small {
		t.Errorf("false sharing not visible: 32B=%d, 512B=%d", small, big)
	}
}

func TestAblateScoreboard(t *testing.T) {
	ms := NewMeasurementSet(topts)
	r, err := AblateScoreboard(topts, ms)
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench string, rate float64) float64 {
		for _, row := range r.Rows {
			if row.Bench == bench && row.Rate == rate {
				return row.MemCPI
			}
		}
		t.Fatalf("missing %s/%v", bench, rate)
		return 0
	}
	// More scoreboarding (lower rate) must not increase memory CPI.
	if get("126.gcc", 0.25) > get("126.gcc", 0)+0.005 {
		t.Error("aggressive scoreboarding should reduce memory CPI")
	}
}

func TestAblateINCAssociativity(t *testing.T) {
	r, err := AblateINCAssociativity(topts)
	if err != nil {
		t.Fatal(err)
	}
	var dm, sevenWay int64
	for _, row := range r.Rows {
		if row.Bench != "WATER" {
			continue
		}
		switch row.Ways {
		case 1:
			dm = row.RemoteLoads
		case 7:
			sevenWay = row.RemoteLoads
		}
	}
	if sevenWay >= dm {
		t.Errorf("7-way INC should cut remote loads: DM=%d, 7-way=%d", dm, sevenWay)
	}
}

func TestAblateEngines(t *testing.T) {
	r, err := AblateEngines(topts)
	if err != nil {
		t.Fatal(err)
	}
	get := func(bench string, engines int) EngineRow {
		for _, row := range r.Rows {
			if row.Bench == bench && row.Engines == engines {
				return row
			}
		}
		t.Fatalf("missing %s/%d", bench, engines)
		return EngineRow{}
	}
	one := get("MP3D", 1)
	two := get("MP3D", 2)
	four := get("MP3D", 4)
	if one.QueueCycles < two.QueueCycles || two.QueueCycles < four.QueueCycles {
		t.Errorf("engine queueing not monotone: %d / %d / %d",
			one.QueueCycles, two.QueueCycles, four.QueueCycles)
	}
	if one.Cycles < two.Cycles {
		t.Errorf("one engine should not beat two: %d vs %d", one.Cycles, two.Cycles)
	}
}

func TestAblateJouppi(t *testing.T) {
	r, err := AblateJouppi(topts)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		switch row.Bench {
		case "101.tomcatv", "102.swim":
			if row.VictimPct >= row.StreamPct {
				t.Errorf("%s: victim %.2f%% should beat stream %.2f%%",
					row.Bench, row.VictimPct, row.StreamPct)
			}
		}
		if row.VictimPct > row.PlainPct+0.01 {
			t.Errorf("%s: victim worse than plain", row.Bench)
		}
	}
}

// TestAblationTablesRender smoke-renders every ablation table so a
// formatting regression cannot slip through unrendered.
func TestAblationTablesRender(t *testing.T) {
	if r, err := AblateVictimSize(topts); err != nil || r.Table().String() == "" {
		t.Errorf("victim table: %v", err)
	}
	if r, err := AblateCoherenceUnit(topts); err != nil || r.Table().String() == "" {
		t.Errorf("unit table: %v", err)
	}
	ms := NewMeasurementSet(topts)
	if r, err := AblateScoreboard(topts, ms); err != nil || r.Table().String() == "" {
		t.Errorf("scoreboard table: %v", err)
	}
	if r, err := AblateINCAssociativity(topts); err != nil || r.Table().String() == "" {
		t.Errorf("inc table: %v", err)
	}
	if r, err := AblateEngines(topts); err != nil || r.Table().String() == "" {
		t.Errorf("engines table: %v", err)
	}
	if r, err := AblateJouppi(topts); err != nil || r.Table().String() == "" {
		t.Errorf("jouppi table: %v", err)
	}
}

func TestSCOMAEndToEnd(t *testing.T) {
	r, err := SCOMA(topts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	out := r.Table().String()
	for _, b := range []string{"LU", "WATER", "S-COMA"} {
		if !strings.Contains(out, b) {
			t.Errorf("scoma table missing %q", b)
		}
	}
	// S-COMA should be competitive with CC-NUMA+victim across the board
	// (within 2x either way; its wins are on the INC-bound codes).
	for _, row := range r.Rows {
		ccn := float64(row.Cycles[coherence.IntegratedVictim])
		sc := float64(row.Cycles[coherence.SimpleCOMA])
		if sc > 2*ccn || ccn > 2*sc {
			t.Errorf("%s: S-COMA %v vs CC-NUMA %v out of band", row.Bench, sc, ccn)
		}
	}
}
