// Package experiments implements every experiment of the reproduction:
// one function per table or figure of the paper's evaluation, each
// returning structured results plus a rendered report. The CLI
// (cmd/iramsim), the Go benchmarks (bench_test.go), and the shape tests
// all drive this package, so an experiment is defined in exactly one
// place.
//
// See DESIGN.md for the experiment index mapping table/figure numbers
// to these functions.
package experiments

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/obs"
	"repro/internal/paperref"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options controls experiment fidelity.
type Options struct {
	// Budget is the per-workload instruction budget for trace-driven
	// cache measurement (0 = each workload's default, ~2M).
	Budget int64
	// GSPNInstr is the instruction count per GSPN Monte-Carlo run.
	GSPNInstr int64
	// Seed drives all Monte-Carlo randomness.
	Seed int64
	// Procs are the processor counts for the SPLASH figures.
	Procs []int
	// MPQuick selects the reduced SPLASH data set.
	MPQuick bool
	// Machine optionally overrides the integrated device under test
	// (the iramsim -machine flag); nil means the paper's core.Proposed().
	Machine *core.Device
	// DSBanks / DSColumns / DSWays / DSVictims override the designspace
	// search axes (nil = built-in defaults; see DesignspaceJob).
	DSBanks, DSColumns, DSWays, DSVictims []int
	// DSCoarse is the designspace coarse-grid stride: round 0 evaluates
	// every DSCoarse-th lattice index per axis (plus the endpoints).
	// <= 1 evaluates the whole lattice.
	DSCoarse int
	// DSRefine bounds the adaptive-refinement rounds that expand the
	// lattice neighbours of the screening frontier (0 = no refinement).
	DSRefine int
	// Workers sizes the nested sweeps some experiments fan out from
	// their assembly step (the designspace GSPN stage); <= 0 means
	// serial. The CLI sets it from -j.
	Workers int
	// TraceSource, when non-nil, supplies every workload's reference
	// stream instead of live VM execution — the trace record/replay
	// pipeline behind the iramsim -record/-replay/-trace-dir flags.
	// Replayed streams are reference-for-reference identical to live
	// generation, so every experiment's output is unchanged.
	TraceSource workload.Source
	// Obs, when non-nil, receives per-workload cache measurements, the
	// coherence machines' protocol statistics, and mpsim coordinator
	// accounting (the iramsim -metrics flag). Nil costs one pointer
	// check at each publication site and changes no experiment output.
	Obs *obs.Registry
	// ResultCache, when non-nil, is consulted by nested sweeps some
	// experiments fan out from their assembly step (the designspace
	// GSPN stage). The CLI sets it alongside the top-level engine's
	// cache from -result-cache; cached and uncached runs produce
	// byte-identical output.
	ResultCache sweep.ResultCache
	// Ctx, when non-nil, cancels the nested sweeps some experiments fan
	// out from their assembly step: the runner sets it to the run's
	// context so an abandoned request stops the designspace GSPN stage
	// too, not just the outer unit queue. Nil means never canceled.
	Ctx context.Context
}

// ctx returns the cancellation context nested sweeps run under.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Device returns the integrated device the experiments run against.
func (o Options) Device() core.Device {
	if o.Machine != nil {
		return *o.Machine
	}
	return core.Proposed()
}

// source returns the workload reference-stream source: the configured
// trace store pipeline, or live VM execution.
func (o Options) source() workload.Source {
	if o.TraceSource != nil {
		return o.TraceSource
	}
	return workload.Live{}
}

// stream delivers w's reference stream for the options' budget into
// sink, via the trace store when one is configured. It is the single
// entry point for every experiment that consumes a raw stream outside
// a MeasurementSet (the ablations, mattson, and Table 1).
func (o Options) stream(w workload.Workload, sink trace.Sink) error {
	_, err := o.source().Stream(w, o.Budget, sink)
	return err
}

// Default returns full-fidelity options (paper-scale runs).
func Default() Options {
	return Options{
		GSPNInstr: 100_000,
		Seed:      1,
		Procs:     []int{1, 2, 4, 8, 16},
	}
}

// Quick returns reduced-fidelity options for tests and benchmarks.
func Quick() Options {
	return Options{
		Budget:    300_000,
		GSPNInstr: 20_000,
		Seed:      1,
		Procs:     []int{1, 4},
		MPQuick:   true,
	}
}

// MeasurementSet caches one cache-measurement run per workload so the
// Figure 7/8 and Table 3/4 experiments share a single simulation pass.
// It is concurrency-safe with single-flight semantics: when several
// sweep units request the same workload at once, exactly one goroutine
// simulates it and the others block until that result is ready, so a
// workload is never simulated twice.
type MeasurementSet struct {
	opts   Options
	replay bool
	mu     sync.Mutex
	m      map[string]*msEntry
}

// msEntry is one workload's single-flight slot.
type msEntry struct {
	once sync.Once
	m    *workload.Measurement
	err  error
}

// NewMeasurementSet creates an empty cache keyed by the options.
func NewMeasurementSet(o Options) *MeasurementSet {
	return &MeasurementSet{opts: o, m: make(map[string]*msEntry)}
}

// NewReplayMeasurementSet is NewMeasurementSet but with every workload
// measured by per-configuration cache replay instead of the
// stack-distance fast path. The two must produce identical results; it
// exists so tests (and a skeptical user) can regenerate any figure on
// the reference path.
func NewReplayMeasurementSet(o Options) *MeasurementSet {
	return &MeasurementSet{opts: o, replay: true, m: make(map[string]*msEntry)}
}

// Get measures the workload (once, even under concurrent callers).
func (s *MeasurementSet) Get(w workload.Workload) (*workload.Measurement, error) {
	s.mu.Lock()
	e, ok := s.m[w.Name]
	if !ok {
		e = &msEntry{}
		s.m[w.Name] = e
	}
	s.mu.Unlock()
	e.once.Do(func() {
		prop, ref := s.opts.Device(), core.Reference()
		src := s.opts.source()
		if s.replay {
			e.m, e.err = workload.RunReplayDevicesFrom(w, s.opts.Budget, prop, ref, src)
		} else {
			e.m, e.err = workload.RunDevicesFrom(w, s.opts.Budget, prop, ref, src)
		}
		if e.err == nil {
			// Single-flight makes this the one place a workload's
			// measurement materialises, so each workload publishes its
			// cache-level metrics exactly once per sweep.
			publishCacheMetrics(s.opts.Obs, w.Name, e.m)
		}
	})
	return e.m, e.err
}

// publishCacheMetrics records one workload's proposed-organisation
// cache measurement into reg's "cache" family (miss/reference counts
// for the I-cache, D-cache, and victim-augmented D-cache). A nil
// registry is a no-op.
func publishCacheMetrics(reg *obs.Registry, name string, m *workload.Measurement) {
	if reg == nil {
		return
	}
	reg.Counter("cache", name+"/instructions").Add(m.Instr)
	i := m.Caches.PropIStats().Ifetch
	reg.Counter("cache", name+"/icache_misses").Add(i.Events)
	reg.Counter("cache", name+"/icache_refs").Add(i.Total)
	d := m.Caches.PropDStats().Data()
	reg.Counter("cache", name+"/dcache_misses").Add(d.Events)
	reg.Counter("cache", name+"/dcache_refs").Add(d.Total)
	v := m.Caches.PropDVictimStats().Data()
	reg.Counter("cache", name+"/dcache_victim_misses").Add(v.Events)
}

// ---------------------------------------------------------------------
// Figure 7: instruction cache miss rates.
// ---------------------------------------------------------------------

// Fig7Row is one benchmark's I-cache miss rates (percent).
type Fig7Row struct {
	Bench    string
	Proposed float64         // 8 KB DM, 512 B lines
	Conv     map[int]float64 // size KB -> conventional DM 32 B lines
}

// Fig7Result is the Figure 7 data set.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7 measures instruction-cache miss rates for every workload.
func Fig7(o Options, ms *MeasurementSet) (*Fig7Result, error) {
	v, err := sweep.RunSerial(Fig7Job(o, ms))
	if err != nil {
		return nil, err
	}
	return v.(*Fig7Result), nil
}

// Fig7Job enumerates Figure 7 as one unit per workload.
func Fig7Job(o Options, ms *MeasurementSet) sweep.Job {
	k := newKeyer("fig7", o, fmt.Sprintf("budget=%d", o.Budget))
	ws := workload.All()
	units := make([]sweep.Unit, len(ws))
	for i, w := range ws {
		units[i] = sweep.Unit{
			Name:  "fig7/" + w.Name,
			Key:   k.key("fig7/"+w.Name, 0, fig7Codec.schema()),
			Codec: fig7Codec,
			Run:   func() (interface{}, error) { return fig7Row(ms, w) },
		}
	}
	return sweep.Job{Name: "fig7", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &Fig7Result{Rows: make([]Fig7Row, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(Fig7Row)
		}
		return res, nil
	}}
}

// fig7Row measures one workload's I-cache miss rates.
func fig7Row(ms *MeasurementSet, w workload.Workload) (Fig7Row, error) {
	m, err := ms.Get(w)
	if err != nil {
		return Fig7Row{}, err
	}
	row := Fig7Row{
		Bench:    w.Name,
		Proposed: m.Caches.PropIStats().Ifetch.Percent(),
		Conv:     map[int]float64{},
	}
	for _, kb := range workload.ConvISizesKB {
		row.Conv[kb] = m.Caches.ConvIStats(kb).Ifetch.Percent()
	}
	return row, nil
}

// Table renders the Figure 7 data.
func (r *Fig7Result) Table() *report.Table {
	t := report.NewTable("Figure 7: Instruction cache miss rates (%)",
		"benchmark", "proposed 8KB/512B", "conv 8KB", "conv 16KB", "conv 32KB", "conv 64KB")
	for _, row := range r.Rows {
		t.Row(row.Bench, pct(row.Proposed), pct(row.Conv[8]), pct(row.Conv[16]),
			pct(row.Conv[32]), pct(row.Conv[64]))
	}
	t.Note("proposed = 16 column buffers (512 B lines); conventional = direct-mapped, 32 B lines")
	return t
}

func pct(v float64) string { return fmt.Sprintf("%.3f", v) }

// ---------------------------------------------------------------------
// Figure 8: data cache miss rates.
// ---------------------------------------------------------------------

// Fig8Row is one benchmark's D-cache miss rates (percent, loads and
// stores reported separately as in the stacked bars of the figure).
type Fig8Row struct {
	Bench               string
	PropLoad, PropStore float64         // 16 KB 2-way 512 B, no victim
	VicLoad, VicStore   float64         // with victim cache
	ConvDM              map[int]float64 // total miss %, DM 32 B
	Conv2W              map[int]float64 // total miss %, 2-way 32 B
}

// Fig8Result is the Figure 8 data set.
type Fig8Result struct {
	Rows []Fig8Row
}

// Fig8 measures data-cache miss rates for every workload.
func Fig8(o Options, ms *MeasurementSet) (*Fig8Result, error) {
	v, err := sweep.RunSerial(Fig8Job(o, ms))
	if err != nil {
		return nil, err
	}
	return v.(*Fig8Result), nil
}

// Fig8Job enumerates Figure 8 as one unit per workload.
func Fig8Job(o Options, ms *MeasurementSet) sweep.Job {
	k := newKeyer("fig8", o, fmt.Sprintf("budget=%d", o.Budget))
	ws := workload.All()
	units := make([]sweep.Unit, len(ws))
	for i, w := range ws {
		units[i] = sweep.Unit{
			Name:  "fig8/" + w.Name,
			Key:   k.key("fig8/"+w.Name, 0, fig8Codec.schema()),
			Codec: fig8Codec,
			Run:   func() (interface{}, error) { return fig8Row(ms, w) },
		}
	}
	return sweep.Job{Name: "fig8", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &Fig8Result{Rows: make([]Fig8Row, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(Fig8Row)
		}
		return res, nil
	}}
}

// fig8Row measures one workload's D-cache miss rates.
func fig8Row(ms *MeasurementSet, w workload.Workload) (Fig8Row, error) {
	m, err := ms.Get(w)
	if err != nil {
		return Fig8Row{}, err
	}
	cs := m.Caches
	propD := cs.PropDStats()
	vicD := cs.PropDVictimStats()
	row := Fig8Row{
		Bench:     w.Name,
		PropLoad:  propD.Load.Percent(),
		PropStore: propD.Store.Percent(),
		VicLoad:   vicD.Load.Percent(),
		VicStore:  vicD.Store.Percent(),
		ConvDM:    map[int]float64{},
		Conv2W:    map[int]float64{},
	}
	for _, kb := range workload.ConvDSizesKB {
		row.ConvDM[kb] = cs.ConvDMStats(kb).Data().Percent()
		row.Conv2W[kb] = cs.Conv2WStats(kb).Data().Percent()
	}
	return row, nil
}

// Table renders the Figure 8 data.
func (r *Fig8Result) Table() *report.Table {
	t := report.NewTable("Figure 8: Data cache miss rates (%, loads+stores)",
		"benchmark", "proposed", "prop+victim", "DM 8KB", "DM 16KB", "2W 16KB",
		"DM 64KB", "2W 256KB")
	for _, row := range r.Rows {
		t.Row(row.Bench,
			pct(row.PropLoad+row.PropStore),
			pct(row.VicLoad+row.VicStore),
			pct(row.ConvDM[8]), pct(row.ConvDM[16]), pct(row.Conv2W[16]),
			pct(row.ConvDM[64]), pct(row.Conv2W[256]))
	}
	t.Note("proposed = 16 KB 2-way column-buffer cache (512 B lines); victim = 16×32 B fully associative")
	return t
}

// ---------------------------------------------------------------------
// Tables 3 & 4: SPEC'95 CPI estimates.
// ---------------------------------------------------------------------

// CPIRow is one benchmark's CPI decomposition.
type CPIRow struct {
	Bench         string
	BaseCPI       float64 // functional-unit component (model input)
	MemCPI        float64 // measured by the GSPN
	TotalCPI      float64
	SpecRatio     float64 // SpecCal / TotalCPI
	PaperMemCPI   float64 // paper's memory component
	PaperTotalCPI float64
	PaperRatio    float64
	Alpha21164    float64 // Table 4 only
	BankUtilz     float64
}

// CPIResult is a Table 3 or Table 4 data set.
type CPIResult struct {
	Victim bool
	Rows   []CPIRow
}

// Table34 evaluates the Spec'95 CPI table with or without the victim
// cache (Table 4 / Table 3 respectively).
func Table34(o Options, ms *MeasurementSet, victim bool) (*CPIResult, error) {
	v, err := sweep.RunSerial(Table34Job(o, ms, victim))
	if err != nil {
		return nil, err
	}
	return v.(*CPIResult), nil
}

// Table34Job enumerates Table 3 or 4 as one unit per SPEC workload.
func Table34Job(o Options, ms *MeasurementSet, victim bool) sweep.Job {
	name := "table3"
	if victim {
		name = "table4"
	}
	k := newKeyer(name, o,
		fmt.Sprintf("budget=%d", o.Budget), fmt.Sprintf("gspn=%d", o.GSPNInstr))
	ws := workload.Spec()
	units := make([]sweep.Unit, len(ws))
	for i, w := range ws {
		units[i] = sweep.Unit{
			Name:  name + "/" + w.Name,
			Seed:  o.Seed,
			Key:   k.key(name+"/"+w.Name, o.Seed, cpiCodec.schema()),
			Codec: cpiCodec,
			Run:   func() (interface{}, error) { return cpiRow(o, ms, w, victim) },
		}
	}
	return sweep.Job{Name: name, Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &CPIResult{Victim: victim, Rows: make([]CPIRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(CPIRow)
		}
		return res, nil
	}}
}

// cpiRow evaluates one workload's CPI decomposition through the GSPN.
func cpiRow(o Options, ms *MeasurementSet, w workload.Workload, victim bool) (CPIRow, error) {
	m, err := ms.Get(w)
	if err != nil {
		return CPIRow{}, err
	}
	rates := m.Rates(true, victim)
	r, err := cpumodel.Evaluate(cpumodel.ConfigFor(o.Device()), rates, o.GSPNInstr, o.Seed)
	if err != nil {
		return CPIRow{}, err
	}
	ref := paperref.Tables34[w.Name]
	row := CPIRow{
		Bench:     w.Name,
		BaseCPI:   rates.BaseCPI,
		MemCPI:    r.MemCPI,
		TotalCPI:  r.TotalCPI,
		BankUtilz: r.BankUtilization,
	}
	if w.SpecCal > 0 {
		row.SpecRatio = w.SpecCal / r.TotalCPI
	}
	if victim {
		row.PaperMemCPI = ref.TotalVictim - ref.BaseCPI
		row.PaperTotalCPI = ref.TotalVictim
		row.PaperRatio = ref.SpecRatioVictim
		row.Alpha21164 = ref.Alpha21164
	} else {
		row.PaperMemCPI = ref.MemNoVictim
		row.PaperTotalCPI = ref.BaseCPI + ref.MemNoVictim
		row.PaperRatio = ref.SpecRatioNoVictim
	}
	return row, nil
}

// GeoMeans returns the SPECint95/SPECfp95-style geometric means of the
// measured and paper Spec-ratios.
func (r *CPIResult) GeoMeans() (intMeasured, intPaper, fpMeasured, fpPaper float64) {
	var im, ip, fm, fp []float64
	for _, row := range r.Rows {
		ref, ok := paperref.Tables34[row.Bench]
		if !ok {
			continue
		}
		if ref.Float {
			fm = append(fm, row.SpecRatio)
			fp = append(fp, row.PaperRatio)
		} else {
			im = append(im, row.SpecRatio)
			ip = append(ip, row.PaperRatio)
		}
	}
	return stats.GeoMean(im), stats.GeoMean(ip), stats.GeoMean(fm), stats.GeoMean(fp)
}

// Table renders the CPI estimates.
func (r *CPIResult) Table() *report.Table {
	name := "Table 3: Spec'95 estimates, no victim cache"
	cols := []string{"benchmark", "cpu CPI", "mem CPI", "total CPI",
		"Spec-ratio", "paper mem", "paper total", "paper ratio"}
	if r.Victim {
		name = "Table 4: Spec'95 estimates, with victim cache"
		cols = append(cols, "Alpha 21164")
	}
	t := report.NewTable(name, cols...)
	for _, row := range r.Rows {
		cells := []interface{}{row.Bench,
			fmt.Sprintf("%.2f", row.BaseCPI),
			fmt.Sprintf("%.2f", row.MemCPI),
			fmt.Sprintf("%.2f", row.TotalCPI),
			fmt.Sprintf("%.1f", row.SpecRatio),
			fmt.Sprintf("%.2f", row.PaperMemCPI),
			fmt.Sprintf("%.2f", row.PaperTotalCPI),
			fmt.Sprintf("%.1f", row.PaperRatio),
		}
		if r.Victim {
			cells = append(cells, fmt.Sprintf("%.1f", row.Alpha21164))
		}
		t.Row(cells...)
	}
	im, ip, fm, fp := r.GeoMeans()
	t.Note("geometric means — SPECint95: measured %.1f vs paper %.1f; SPECfp95: measured %.1f vs paper %.1f",
		im, ip, fm, fp)
	t.Note("cpu CPI is the paper-published functional-unit component (DESIGN.md substitution 2);")
	t.Note("mem CPI is measured by this reproduction's GSPN from its own cache simulations")
	return t
}
