package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/coherence"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/memsys"
	"repro/internal/mpsim"
	"repro/internal/sweep"
)

// TestConfigEquivalence pins every parameter the machine-description
// refactor now derives from core.Proposed()/core.Reference() to the
// literal values the simulation paths hard-coded before the refactor.
// If a derivation formula drifts, this fails before the (slow) golden
// output diff does, and names the exact parameter.
func TestConfigEquivalence(t *testing.T) {
	prop, ref := core.Proposed(), core.Reference()

	// GSPN system configurations (Tables 3/4, Figures 11/12).
	wantInt := cpumodel.SystemConfig{
		Name: "integrated", Banks: 16, MemCycles: 6, PrechargeCycles: 3,
		ScoreboardRate: 1,
	}
	if got := cpumodel.ConfigFor(prop); got != wantInt {
		t.Errorf("ConfigFor(Proposed) = %+v, want pre-refactor literals %+v", got, wantInt)
	}
	wantRef := cpumodel.SystemConfig{
		Name: "reference", Banks: 2, MemCycles: 12, PrechargeCycles: 6,
		HasL2: true, L2Cycles: 6, ScoreboardRate: 1,
	}
	if got := cpumodel.ConfigFor(ref); got != wantRef {
		t.Errorf("ConfigFor(Reference) = %+v, want pre-refactor literals %+v", got, wantRef)
	}
	if got := cpumodel.Integrated(); got != wantInt {
		t.Errorf("cpumodel.Integrated() = %+v, want %+v", got, wantInt)
	}
	if got := cpumodel.Reference(); got != wantRef {
		t.Errorf("cpumodel.Reference() = %+v, want %+v", got, wantRef)
	}

	// Multiprocessor latencies (Table 6) and synchronisation costs.
	if got, want := coherence.LatenciesFor(prop), coherence.DefaultLatencies(); got != want {
		t.Errorf("LatenciesFor(Proposed) = %+v, want DefaultLatencies %+v", got, want)
	}
	if got, want := coherence.LatenciesFor(prop).SyncCosts(), mpsim.DefaultSyncCosts(); got != want {
		t.Errorf("SyncCosts from device = %+v, want DefaultSyncCosts %+v", got, want)
	}

	// DRAM timing: 6 cycles at 200 MHz is the paper's 30 ns.
	if got := prop.DRAM.AccessNanos(); got != 30 {
		t.Errorf("Proposed DRAM access = %g ns, want 30", got)
	}

	// WithGeometry at the paper's own point is the identity.
	if got := prop.WithGeometry(16, 512, 16); !reflect.DeepEqual(got, prop) {
		t.Errorf("WithGeometry(16,512,16) changed the paper device:\n got %+v\nwant %+v", got, prop)
	}

	// Memory-hierarchy specs (Figure 2): the named builders must still
	// describe the pre-refactor literal hierarchies.
	wantSS5 := memsys.Spec{
		Name: "SS-5", Levels: []memsys.LevelSpec{
			{Name: "SS-5 L1D 8KB", Bytes: 8 << 10, LineBytes: 16, Ways: 1, LatencyNs: 12},
		},
		MemoryNs: 280, ClockMHz: 85, BaseCPI: 1.3,
	}
	if got := memsys.SS5Spec(); !reflect.DeepEqual(got, wantSS5) {
		t.Errorf("SS5Spec = %+v, want %+v", got, wantSS5)
	}
	intSpec := memsys.SpecFor(prop)
	if intSpec.MemoryNs != 30 || intSpec.ClockMHz != 200 {
		t.Errorf("SpecFor(Proposed): MemoryNs=%g ClockMHz=%g, want 30/200",
			intSpec.MemoryNs, intSpec.ClockMHz)
	}

	// Both devices must self-validate, and Options.Device must default
	// to the paper's machine.
	if err := prop.Validate(); err != nil {
		t.Errorf("Proposed().Validate(): %v", err)
	}
	if err := ref.Validate(); err != nil {
		t.Errorf("Reference().Validate(): %v", err)
	}
	if got := (Options{}).Device(); !reflect.DeepEqual(got, prop) {
		t.Errorf("Options.Device() default is not core.Proposed()")
	}
}

// TestDesignspaceDeterministic: the designspace sweep filters invalid
// geometries at enumeration time and produces byte-identical rendered
// output across repeated runs.
func TestDesignspaceDeterministic(t *testing.T) {
	o := Quick()
	o.Budget = 50_000
	o.GSPNInstr = 2_000
	o.DSBanks = []int{8, 16}
	o.DSColumns = []int{512}
	o.DSVictims = []int{0, 16}
	render := func() []byte {
		v, err := sweep.RunSerial(DesignspaceJob(o))
		if err != nil {
			t.Fatalf("designspace: %v", err)
		}
		res := v.(*DesignspaceResult)
		if want := 2 * 2 * len(designspaceBenches); len(res.Rows) != want {
			t.Fatalf("designspace rows = %d, want %d", len(res.Rows), want)
		}
		var buf bytes.Buffer
		res.Table().Render(&buf)
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Errorf("two designspace runs differ:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

// TestDesignspaceFiltersInvalid: a victim-entry count whose line size
// cannot tile the column must be dropped from the lattice, not run.
// Units are per (column family, bench), so the invalid point shrinks
// the result, not the unit list.
func TestDesignspaceFiltersInvalid(t *testing.T) {
	o := Quick()
	o.Budget = 50_000
	o.GSPNInstr = 2_000
	o.DSBanks = []int{16}
	o.DSColumns = []int{512}
	o.DSVictims = []int{0, 3} // 512/3 is not an integer line size
	j := DesignspaceJob(o)
	if want := 1 * len(designspaceBenches); len(j.Units) != want {
		t.Errorf("designspace built %d units, want %d (one column family x benches)",
			len(j.Units), want)
	}
	v, err := sweep.RunSerial(j)
	if err != nil {
		t.Fatal(err)
	}
	res := v.(*DesignspaceResult)
	if len(res.Points) != 1 {
		t.Errorf("lattice kept %d points, want 1 (victim=3 filtered)", len(res.Points))
	}
}
