package experiments

import (
	"fmt"

	"repro/internal/cpumodel"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// ---------------------------------------------------------------------
// Real-program CPI: the GroupReal kernels through both system models.
// ---------------------------------------------------------------------

// RealCPIRow is one real-program kernel's CPI on the integrated device
// (with victim cache, as in Table 4) and the conventional reference
// system. Unlike the SPEC stand-ins there is no paper column: these
// kernels execute real algorithms end to end and self-verify, so the
// row is a genuine measurement, not a calibration.
type RealCPIRow struct {
	Bench        string
	BaseCPI      float64 // explicit per-kernel functional-unit CPI
	IntMemCPI    float64 // integrated system, victim cache on
	IntTotalCPI  float64
	RefMemCPI    float64 // conventional reference system
	RefTotalCPI  float64
	Speedup      float64 // RefTotalCPI / IntTotalCPI
	IMissPct     float64 // proposed I-cache miss %
	DMissPct     float64 // proposed D-cache (with victim) miss %
	LoadFraction float64
}

// RealCPIResult is the real-program CPI data set.
type RealCPIResult struct{ Rows []RealCPIRow }

// RealCPI evaluates every GroupReal kernel on both systems.
func RealCPI(o Options, ms *MeasurementSet) (*RealCPIResult, error) {
	v, err := sweep.RunSerial(RealCPIJob(o, ms))
	if err != nil {
		return nil, err
	}
	return v.(*RealCPIResult), nil
}

// RealCPIJob enumerates the real-program study as one unit per kernel.
func RealCPIJob(o Options, ms *MeasurementSet) sweep.Job {
	k := newKeyer("realcpi", o,
		fmt.Sprintf("budget=%d", o.Budget), fmt.Sprintf("gspn=%d", o.GSPNInstr))
	ws := workload.Real()
	units := make([]sweep.Unit, len(ws))
	for i, w := range ws {
		units[i] = sweep.Unit{
			Name:  "realcpi/" + w.Name,
			Seed:  o.Seed,
			Key:   k.key("realcpi/"+w.Name, o.Seed, realcpiCodec.schema()),
			Codec: realcpiCodec,
			Run:   func() (interface{}, error) { return realCPIRow(o, ms, w) },
		}
	}
	return sweep.Job{Name: "realcpi", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		res := &RealCPIResult{Rows: make([]RealCPIRow, len(parts))}
		for i, p := range parts {
			res.Rows[i] = p.(RealCPIRow)
		}
		return res, nil
	}}
}

// realCPIRow evaluates one kernel through the GSPN on both systems.
func realCPIRow(o Options, ms *MeasurementSet, w workload.Workload) (RealCPIRow, error) {
	m, err := ms.Get(w)
	if err != nil {
		return RealCPIRow{}, err
	}
	intRates := m.Rates(true, true)
	intRes, err := cpumodel.Evaluate(cpumodel.ConfigFor(o.Device()), intRates, o.GSPNInstr, o.Seed)
	if err != nil {
		return RealCPIRow{}, err
	}
	refRates := m.Rates(false, false)
	refRes, err := cpumodel.Evaluate(cpumodel.Reference(), refRates, o.GSPNInstr, o.Seed)
	if err != nil {
		return RealCPIRow{}, err
	}
	counts := m.Caches.RefCounts()
	return RealCPIRow{
		Bench:        w.Name,
		BaseCPI:      intRates.BaseCPI,
		IntMemCPI:    intRes.MemCPI,
		IntTotalCPI:  intRes.TotalCPI,
		RefMemCPI:    refRes.MemCPI,
		RefTotalCPI:  refRes.TotalCPI,
		Speedup:      refRes.TotalCPI / intRes.TotalCPI,
		IMissPct:     m.Caches.PropIStats().Ifetch.Percent(),
		DMissPct:     m.Caches.PropDVictimStats().Data().Percent(),
		LoadFraction: counts.LoadFrac(),
	}, nil
}

// Table renders the real-program CPI comparison.
func (r *RealCPIResult) Table() *report.Table {
	t := report.NewTable("Real-program kernels: integrated vs conventional CPI (self-verifying workloads)",
		"kernel", "cpu CPI", "int mem CPI", "int total", "ref mem CPI", "ref total",
		"speedup", "I-miss %", "D-miss %", "load frac")
	for _, row := range r.Rows {
		t.Row(row.Bench,
			fmt.Sprintf("%.2f", row.BaseCPI),
			fmt.Sprintf("%.2f", row.IntMemCPI),
			fmt.Sprintf("%.2f", row.IntTotalCPI),
			fmt.Sprintf("%.2f", row.RefMemCPI),
			fmt.Sprintf("%.2f", row.RefTotalCPI),
			fmt.Sprintf("%.2f", row.Speedup),
			pct(row.IMissPct), pct(row.DMissPct),
			fmt.Sprintf("%.3f", row.LoadFraction))
	}
	t.Note("gemm/bfs/hashjoin are complete programs assembled from source and executed to a")
	t.Note("self-checked result; cpu CPI is an explicit per-kernel estimate (no paper SpecCal exists)")
	return t
}
