package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

// Result-cache key derivation.
//
// A unit's key is the content address of its result: SHA-256 over a
// canonical tuple of everything the result depends on —
//
//   - both device descriptions (the proposed machine under test and
//     the conventional reference), hashed from their canonical JSON;
//   - the experiment name and the unit name (a unit RENAME is thereby
//     an INVALIDATION — see sweep.Unit.Key);
//   - the experiment's fidelity parameters (instruction budgets,
//     SPLASH data-set size, axis fingerprints — whichever of Options
//     the unit's computation actually reads);
//   - the unit's seed;
//   - the result codec's schema (type:version), so a shape change
//     re-keys as well as version-failing old entries.
//
// Keys deliberately over-approximate: a parameter folded in that a
// particular unit happens not to read costs at worst a spurious miss
// (recompute), never a wrong hit. What a key must never do is omit
// an input the computation reads. TraceSource is intentionally not a
// key input — replayed streams are verified reference-for-reference
// identical to live generation (see internal/tracestore), so the
// result is the same either way.
type keyer struct {
	exp    string
	dev    string
	params string
}

// deviceHash is the canonical fingerprint of a machine description:
// hex SHA-256 of its JSON encoding (fixed field order, all geometry
// and latency parameters included).
func deviceHash(d core.Device) string {
	raw, err := json.Marshal(d)
	if err != nil {
		// core.Device is a plain struct of scalars; Marshal cannot fail.
		panic(fmt.Sprintf("experiments: hashing device: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// newKeyer builds the key deriver for one experiment job: the devices
// under test plus the experiment-specific parameter list (each entry
// "name=value").
func newKeyer(exp string, o Options, params ...string) keyer {
	return keyer{
		exp:    exp,
		dev:    deviceHash(o.Device()) + "+" + deviceHash(core.Reference()),
		params: strings.Join(params, ","),
	}
}

// key derives one unit's cache key. The human-readable prefix keeps
// cache directories greppable; the digest suffix carries the actual
// content address (resultstore sanitizes the prefix but never the
// digest, so two distinct keys cannot alias).
func (k keyer) key(unitName string, seed int64, schema string, extra ...string) string {
	params := k.params
	if len(extra) > 0 {
		if params != "" {
			params += ","
		}
		params += strings.Join(extra, ",")
	}
	canon := fmt.Sprintf("rk1|dev=%s|exp=%s|unit=%s|params=%s|seed=%d|schema=%s",
		k.dev, k.exp, unitName, params, seed, schema)
	sum := sha256.Sum256([]byte(canon))
	return keyPrefix(unitName) + "-" + hex.EncodeToString(sum[:])
}

// keyPrefix compresses a unit name into a short filename-safe label.
func keyPrefix(unitName string) string {
	s := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, unitName)
	if len(s) > 80 {
		s = s[:80]
	}
	return s
}

// familyPointsFingerprint hashes a registered design-point list. The
// designspace family units' names encode only the column size and
// bench — the axes come from Options — so the registered point set
// must be a key input: a family pass result answers exactly the
// victim-bearing points it was built with.
func familyPointsFingerprint(column int, pts []workload.FamilyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "col=%d", column)
	for _, p := range pts {
		fmt.Fprintf(&b, "|%d/%d/%d", p.Banks, p.Ways, p.VictimEntries)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:16])
}
