package experiments

import (
	"strings"
	"testing"

	"repro/internal/coherence"
	"repro/internal/workload"
)

// Shared quick options + measurement cache for the whole package test.
var (
	topts = func() Options {
		o := Quick()
		o.Budget = 250_000
		o.GSPNInstr = 15_000
		o.Procs = []int{1, 4}
		return o
	}()
	tms = NewMeasurementSet(topts)
)

func TestFig7EndToEnd(t *testing.T) {
	r, err := Fig7(topts, tms)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 22 {
		t.Fatalf("%d rows, want 22 (SPEC + synopsys + real kernels)", len(r.Rows))
	}
	tbl := r.Table().String()
	for _, want := range []string{"Figure 7", "145.fpppp", "125.turb3d", "gemm", "bfs", "hashjoin"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestFig8EndToEnd(t *testing.T) {
	r, err := Fig8(topts, tms)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 22 {
		t.Fatalf("%d rows, want 22 (SPEC + synopsys + real kernels)", len(r.Rows))
	}
	// Spot-check the paper's central Figure 8 story on tomcatv.
	for _, row := range r.Rows {
		if row.Bench != "101.tomcatv" {
			continue
		}
		prop := row.PropLoad + row.PropStore
		vic := row.VicLoad + row.VicStore
		if vic >= prop {
			t.Errorf("tomcatv: victim %.2f%% should beat plain %.2f%%", vic, prop)
		}
		if prop <= row.ConvDM[16] {
			t.Errorf("tomcatv: plain proposed %.2f%% should exceed conv DM16 %.2f%%",
				prop, row.ConvDM[16])
		}
	}
}

func TestTables34EndToEnd(t *testing.T) {
	t3, err := Table34(topts, tms, false)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := Table34(topts, tms, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 18 || len(t4.Rows) != 18 {
		t.Fatalf("row counts %d/%d, want 18", len(t3.Rows), len(t4.Rows))
	}
	byName := func(rs []CPIRow, n string) CPIRow {
		for _, r := range rs {
			if r.Bench == n {
				return r
			}
		}
		t.Fatalf("missing %s", n)
		return CPIRow{}
	}
	// Victim cache must slash the conflict benchmarks' memory CPI.
	for _, n := range []string{"101.tomcatv", "102.swim", "103.su2cor", "146.wave5"} {
		no := byName(t3.Rows, n)
		yes := byName(t4.Rows, n)
		if yes.MemCPI > no.MemCPI/2 {
			t.Errorf("%s: victim mem CPI %.3f vs %.3f — want >= 2x reduction",
				n, yes.MemCPI, no.MemCPI)
		}
	}
	// Table 4 totals should land near the paper's (loose band: the
	// workloads are stand-ins).
	for _, r := range t4.Rows {
		if r.PaperTotalCPI == 0 {
			continue
		}
		ratio := r.TotalCPI / r.PaperTotalCPI
		if ratio < 0.75 || ratio > 1.45 {
			t.Errorf("%s: total CPI %.2f vs paper %.2f (ratio %.2f outside [0.75,1.45])",
				r.Bench, r.TotalCPI, r.PaperTotalCPI, ratio)
		}
	}
	// Rendering includes the Alpha column only for Table 4.
	if strings.Contains(t3.Table().String(), "Alpha") {
		t.Error("Table 3 must not include the Alpha column")
	}
	if !strings.Contains(t4.Table().String(), "Alpha") {
		t.Error("Table 4 must include the Alpha column")
	}
}

// TestRealCPIEndToEnd: the real-program kernels evaluate through both
// system models and the integrated device comes out ahead — the memory
// wall argument made with programs that actually compute something.
func TestRealCPIEndToEnd(t *testing.T) {
	r, err := RealCPI(topts, tms)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BaseCPI < 1 {
			t.Errorf("%s: BaseCPI %.2f below 1", row.Bench, row.BaseCPI)
		}
		if row.IntTotalCPI <= row.BaseCPI {
			t.Errorf("%s: integrated total %.3f not above base %.3f", row.Bench, row.IntTotalCPI, row.BaseCPI)
		}
		if row.Speedup <= 1 {
			t.Errorf("%s: integrated system not faster (speedup %.2f)", row.Bench, row.Speedup)
		}
	}
	tbl := r.Table().String()
	for _, want := range []string{"gemm", "bfs", "hashjoin", "speedup"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestFig11Fig12EndToEnd(t *testing.T) {
	f11, err := Fig11(topts, tms)
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Fig12(topts, tms)
	if err != nil {
		t.Fatal(err)
	}
	// CPI grows with memory latency in both systems.
	lo, ok1 := f11.CPIAt("126.gcc", 6, 6)
	hi, ok2 := f11.CPIAt("126.gcc", 6, 60)
	if !ok1 || !ok2 || hi <= lo {
		t.Errorf("Fig11 gcc: CPI(60cy)=%.3f should exceed CPI(6cy)=%.3f", hi, lo)
	}
	lo12, ok1 := f12.CPIAt("126.gcc", 0, 2)
	hi12, ok2 := f12.CPIAt("126.gcc", 0, 20)
	if !ok1 || !ok2 || hi12 <= lo12 {
		t.Errorf("Fig12 gcc: CPI(20cy)=%.3f should exceed CPI(2cy)=%.3f", hi12, lo12)
	}
	// Paper's headline: at the 30 ns (6-cycle) operating point the
	// integrated CPI impact is modest (10-25% in the paper; allow a
	// wider band for the stand-in workloads).
	cpi6, _ := f12.CPIAt("126.gcc", 0, 6)
	base := 1.01
	if over := cpi6/base - 1; over > 0.4 {
		t.Errorf("Fig12 gcc at 6 cycles: %.0f%% above base, want modest", 100*over)
	}
}

func TestBanksEndToEnd(t *testing.T) {
	r, err := Banks(topts, tms)
	if err != nil {
		t.Fatal(err)
	}
	// CPI differences across integrated bank counts are small (paper:
	// below simulation noise), and per-bank utilisation rises as banks
	// shrink.
	var cpi4, cpi16, util4, util16 float64
	for _, row := range r.Rows {
		if !row.Integrated || row.Bench != "126.gcc" {
			continue
		}
		switch row.Banks {
		case 4:
			cpi4, util4 = row.MemCPI, row.Utilization
		case 16:
			cpi16, util16 = row.MemCPI, row.Utilization
		}
	}
	if diff := cpi4 - cpi16; diff < -0.05 || diff > 0.05 {
		t.Errorf("gcc: bank-count CPI difference %.3f, want ~0 (paper: below noise)", diff)
	}
	if util4 <= util16 {
		t.Errorf("per-bank utilisation must rise with fewer banks: %.4f vs %.4f", util4, util16)
	}
}

func TestTable1EndToEnd(t *testing.T) {
	r, err := Table1(topts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	ss5, ss10 := r.Rows[0], r.Rows[1]
	if ss5.SpecInt92 >= ss10.SpecInt92 {
		t.Error("published SPEC'92 must favour the SS-10/61")
	}
	if ss5.ModelNsPerInst >= ss10.ModelNsPerInst {
		t.Errorf("the SS-5 must win the >50MB workload: %.1f vs %.1f ns/instr",
			ss5.ModelNsPerInst, ss10.ModelNsPerInst)
	}
	// The inversion factor should be in the neighbourhood of the
	// paper's 44/32 = 1.38.
	ratio := ss10.ModelNsPerInst / ss5.ModelNsPerInst
	if ratio < 1.1 || ratio > 2.0 {
		t.Errorf("SS-5 advantage %.2fx, want ~1.4x", ratio)
	}
}

func TestFig2EndToEnd(t *testing.T) {
	r, err := Fig2(topts)
	if err != nil {
		t.Fatal(err)
	}
	// Crossover: SS-10 faster at 256 KB, SS-5 faster at 16 MB.
	in5 := r.AvgNs["SS-5"][256<<10][512]
	in10 := r.AvgNs["SS-10/61"][256<<10][512]
	out5 := r.AvgNs["SS-5"][16<<20][512]
	out10 := r.AvgNs["SS-10/61"][16<<20][512]
	if in10 >= in5 {
		t.Errorf("inside L2: SS-10 %.0f should beat SS-5 %.0f", in10, in5)
	}
	if out5 >= out10 {
		t.Errorf("beyond L2: SS-5 %.0f should beat SS-10 %.0f", out5, out10)
	}
	// The prefetch footnote: SS-10's small-stride latency beyond the
	// caches stays low.
	if seq := r.AvgNs["SS-10/61"][16<<20][16]; seq > out10/2 {
		t.Errorf("SS-10 prefetch not visible: stride16 %.0f vs stride512 %.0f", seq, out10)
	}
}

func TestSplashFigures(t *testing.T) {
	for fig := 13; fig <= 17; fig++ {
		r, err := SplashFigure(topts, fig)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Points) != len(topts.Procs)*3 {
			t.Errorf("fig %d: %d points", fig, len(r.Points))
		}
		if _, ok := r.Cycles(coherence.IntegratedVictim, 4); !ok {
			t.Errorf("fig %d: missing victim config", fig)
		}
		if !strings.Contains(r.Table().String(), r.Bench) {
			t.Errorf("fig %d: table missing benchmark name", fig)
		}
		if r.Bars(4).String() == "" {
			t.Errorf("fig %d: empty bars", fig)
		}
	}
	if _, err := SplashFigure(topts, 99); err == nil {
		t.Error("SplashFigure accepted a bogus figure number")
	}
}

func TestCostTable(t *testing.T) {
	out := Cost().String()
	for _, want := range []string{"$800", "ECC", "mm2"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost table missing %q:\n%s", want, out)
		}
	}
}

func TestMeasurementSetCaches(t *testing.T) {
	ms := NewMeasurementSet(topts)
	w := mustWorkload(t, "132.ijpeg")
	m1, err := ms.Get(w)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := ms.Get(w)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("MeasurementSet re-ran a cached workload")
	}
}

func mustWorkload(t *testing.T, name string) workload.Workload {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFabricExperiment(t *testing.T) {
	tab, err := Fabric()
	if err != nil {
		t.Fatal(err)
	}
	out := tab.String()
	for _, want := range []string{"bisection", "256", "200"} {
		if !strings.Contains(out, want) {
			t.Errorf("fabric table missing %q", want)
		}
	}
}

func TestFig2IntegratedFlat(t *testing.T) {
	r, err := Fig2(topts)
	if err != nil {
		t.Fatal(err)
	}
	small := r.AvgNs["Integrated"][64<<10][512]
	big := r.AvgNs["Integrated"][16<<20][512]
	if big > 31 {
		t.Errorf("integrated latency at 16MB = %.1f ns, want <= ~30", big)
	}
	if big < small {
		t.Errorf("integrated latency shrank with size: %.1f vs %.1f", big, small)
	}
	// And it beats both workstations beyond the caches.
	if big >= r.AvgNs["SS-5"][16<<20][512] {
		t.Error("integrated device should beat the SS-5 beyond the caches")
	}
}

func TestGeoMeans(t *testing.T) {
	r, err := Table34(topts, tms, true)
	if err != nil {
		t.Fatal(err)
	}
	im, ip, fm, fp := r.GeoMeans()
	if im <= 0 || fm <= 0 {
		t.Fatalf("degenerate geomeans: %v %v", im, fm)
	}
	// Measured means should track the paper's within ~20%.
	if im/ip > 1.2 || ip/im > 1.2 {
		t.Errorf("SPECint geomean %0.1f vs paper %0.1f", im, ip)
	}
	if fm/fp > 1.2 || fp/fm > 1.2 {
		t.Errorf("SPECfp geomean %0.1f vs paper %0.1f", fm, fp)
	}
	if !strings.Contains(r.Table().String(), "geometric means") {
		t.Error("geomeans missing from rendered table")
	}
}
