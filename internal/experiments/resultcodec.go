package experiments

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/cpumodel"
	"repro/internal/memsys"
	"repro/internal/workload"
)

// codecHeader travels in front of every encoded result. Type and
// Version must match the decoding codec exactly; any mismatch — a
// result type renamed, its shape changed and the version bumped, an
// entry written by a newer binary — decodes as an error, which the
// sweep engine treats as a cache miss and recomputes. Stale entries
// can therefore never surface as wrong results, only as wasted disk.
type codecHeader struct {
	Type    string
	Version int
}

// gobCodec is a sweep.Codec encoding values of one concrete type as a
// versioned gob stream. gob encodes float64s bit-exactly, so a warm
// run's assembled output is byte-identical to the cold run that
// populated the cache.
//
// Versioning contract: bump version whenever the encoded type's shape
// or the meaning of any field changes. Old entries then miss and are
// recomputed; they are never misread.
type gobCodec[T any] struct {
	name    string
	version int
}

// schema identifies the codec's wire format; it is folded into the
// cache key, so a version bump re-keys every affected entry as well as
// failing the header check on old ones.
func (c gobCodec[T]) schema() string { return fmt.Sprintf("%s:%d", c.name, c.version) }

// Encode implements sweep.Codec.
func (c gobCodec[T]) Encode(v interface{}) ([]byte, error) {
	tv, ok := v.(T)
	if !ok {
		return nil, fmt.Errorf("experiments: codec %s cannot encode %T", c.schema(), v)
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(codecHeader{Type: c.name, Version: c.version}); err != nil {
		return nil, err
	}
	if err := enc.Encode(&tv); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode implements sweep.Codec.
func (c gobCodec[T]) Decode(data []byte) (interface{}, error) {
	dec := gob.NewDecoder(bytes.NewReader(data))
	var h codecHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("experiments: codec %s: bad header: %w", c.schema(), err)
	}
	if h.Type != c.name || h.Version != c.version {
		return nil, fmt.Errorf("experiments: codec %s: entry is %s:%d", c.schema(), h.Type, h.Version)
	}
	var v T
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("experiments: codec %s: %w", c.schema(), err)
	}
	return v, nil
}

// The codec registry: one codec per cacheable unit-result type, each
// at schema version 1. Bump a codec's version when its type's shape
// changes (see gobCodec doc); the key-stability test pins the schema
// strings so an accidental edit is caught.
var (
	fig7Codec     = gobCodec[Fig7Row]{name: "Fig7Row", version: 1}
	fig8Codec     = gobCodec[Fig8Row]{name: "Fig8Row", version: 1}
	cpiCodec      = gobCodec[CPIRow]{name: "CPIRow", version: 1}
	realcpiCodec  = gobCodec[RealCPIRow]{name: "RealCPIRow", version: 1}
	latencyCodec  = gobCodec[[]LatencyPoint]{name: "LatencyPoints", version: 1}
	bankCodec     = gobCodec[BankRow]{name: "BankRow", version: 1}
	mattsonCodec  = gobCodec[MattsonRow]{name: "MattsonRow", version: 1}
	estimateCodec = gobCodec[memsys.RunEstimate]{name: "RunEstimate", version: 1}
	splashCodec   = gobCodec[SplashPoint]{name: "SplashPoint", version: 1}
	cyclesCodec   = gobCodec[uint64]{name: "Cycles", version: 1}
	familyCodec   = gobCodec[*workload.FamilySummary]{name: "FamilySummary", version: 1}
	gspnCodec     = gobCodec[cpumodel.Result]{name: "GSPNResult", version: 1}
)
