package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Trace file format: Shade-style capture of a reference stream so that
// expensive workload executions can be replayed into many cache
// configurations without re-running the program.
//
// A file is:
//
//	8-byte magic "iramtrc" + one ASCII version byte ('2')
//	zero or more reference records
//	one end-of-trace record
//
// The reference encoding is a compact delta format. Each record starts
// with one opcode byte:
//
//	bits 7-6  kind (0 ifetch, 1 load, 2 store, 3 end-of-trace)
//	bits 5-4  size code (0=1, 1=2, 2=4, 3=8 bytes)
//	bits 3-0  address mode:
//	   0      delta == +size of previous same-kind access (no payload)
//	   1..8   n-byte little-endian signed delta from the previous
//	          same-kind address
//	   15     8-byte absolute address
//
// Sequential streams (the common case: instruction fetches, array
// sweeps) cost one byte per reference.
//
// The end-of-trace record (opcode 0xC0, written by Writer.Close) is
// followed by the total reference count as an 8-byte little-endian
// integer, then a CRC-32C of every preceding byte of the file (header
// and count included), and must be the last bytes of the file. It lets
// a reader distinguish a complete trace from one truncated at a record
// boundary — plain EOF before the marker is corruption, not
// termination — and the checksum catches bit rot that still decodes as
// a structurally valid stream. Version 1 files (no end marker, no
// checksum) are not readable by this package.

// FormatVersion is the trace file format generation. It participates in
// Store cache keys, so bumping it invalidates every cached trace.
const FormatVersion = 2

// fileMagic identifies a trace file; the last byte is the version.
var fileMagic = [8]byte{'i', 'r', 'a', 'm', 't', 'r', 'c', '0' + FormatVersion}

// endMarker is the opcode byte of the end-of-trace record (kind 3,
// size code 0, address mode 0).
const endMarker = 0xC0

// ErrBadTrace reports a corrupt or truncated trace file.
var ErrBadTrace = errors.New("trace: corrupt trace file")

// crcTable is the Castagnoli polynomial (hardware-accelerated on the
// platforms we care about); the checksum seeds from zero at byte 0 of
// the file.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

var sizeCodes = map[uint8]uint8{1: 0, 2: 1, 4: 2, 8: 3}
var sizeFromCode = [4]uint8{1, 2, 4, 8}

// Writer encodes a reference stream to an io.Writer. It implements
// Sink, so it can be used directly as a VM sink or inside a Tee.
type Writer struct {
	w    *bufio.Writer
	last [3]uint64 // previous address per kind
	n    int64
	crc  uint32  // running CRC-32C of every byte written
	one  [1]byte // scratch for checksumming single bytes without allocating
	pay  [8]byte // scratch for payload encoding (a local would escape into write)
	err  error
}

// NewWriter creates a trace writer and emits the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, crc: crc32.Update(0, crcTable, fileMagic[:])}, nil
}

// Ref implements Sink. Encoding errors are sticky and surfaced by
// Close (a Sink cannot return errors per reference).
func (t *Writer) Ref(r Ref) {
	if t.err != nil {
		return
	}
	sc, ok := sizeCodes[r.Size]
	if !ok {
		t.err = fmt.Errorf("trace: bad reference size %d", r.Size)
		return
	}
	k := uint8(r.Kind)
	if k > 2 {
		t.err = fmt.Errorf("trace: bad reference kind %d", r.Kind)
		return
	}
	head := k<<6 | sc<<4
	prev := t.last[k]
	t.last[k] = r.Addr
	t.n++

	delta := int64(r.Addr) - int64(prev)
	if t.n > 1 && delta == int64(r.Size) {
		t.writeByte(head | 0)
		return
	}
	// Choose the shortest signed delta encoding.
	if nb := signedLen(delta); t.n > 1 && nb <= 8 {
		t.writeByte(head | uint8(nb))
		binary.LittleEndian.PutUint64(t.pay[:], uint64(delta))
		t.write(t.pay[:nb])
		return
	}
	t.writeByte(head | 15)
	binary.LittleEndian.PutUint64(t.pay[:], r.Addr)
	t.write(t.pay[:])
}

// writeByte emits one byte, folding it into the checksum.
func (t *Writer) writeByte(b byte) {
	if t.err != nil {
		return
	}
	t.one[0] = b
	t.crc = crc32.Update(t.crc, crcTable, t.one[:])
	t.err = t.w.WriteByte(b)
}

// write emits a payload, folding it into the checksum.
func (t *Writer) write(p []byte) {
	if t.err != nil {
		return
	}
	t.crc = crc32.Update(t.crc, crcTable, p)
	_, t.err = t.w.Write(p)
}

// Refs implements BatchSink.
func (t *Writer) Refs(rs []Ref) {
	for i := range rs {
		t.Ref(rs[i])
	}
}

// signedLen returns the minimum bytes needed to hold v as a
// little-endian signed integer (1..9; 9 means "use absolute").
func signedLen(v int64) int {
	for n := 1; n <= 8; n++ {
		shift := uint(8 * n)
		if shift >= 64 {
			return 8
		}
		min := -(int64(1) << (shift - 1))
		max := int64(1)<<(shift-1) - 1
		if v >= min && v <= max {
			return n
		}
	}
	return 9
}

// Count returns the number of references written.
func (t *Writer) Count() int64 { return t.n }

// Close writes the end-of-trace record, flushes the stream, and
// returns any deferred encoding error. A trace without the end record
// is corrupt by definition; abandon the output on error.
func (t *Writer) Close() error {
	t.writeByte(endMarker)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(t.n))
	t.write(buf[:])
	// The checksum itself is excluded from the checksummed range.
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], t.crc)
	if t.err == nil {
		_, t.err = t.w.Write(sum[:])
	}
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a trace file.
type Reader struct {
	r    *bufio.Reader
	last [3]uint64
	n    int64
	off  int64   // bytes consumed, including the header
	crc  uint32  // running CRC-32C of every byte consumed
	one  [1]byte // scratch for checksumming single bytes without allocating
	pay  [8]byte // scratch for payload decoding (a local would escape into fill)
	done bool    // end-of-trace record seen and verified
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadTrace)
	}
	if magic != fileMagic {
		if [7]byte(magic[:7]) == [7]byte(fileMagic[:7]) {
			return nil, fmt.Errorf("%w: unsupported format version %c (want %c)",
				ErrBadTrace, magic[7], fileMagic[7])
		}
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	return &Reader{r: br, off: int64(len(magic)), crc: crc32.Update(0, crcTable, magic[:])}, nil
}

// Offset returns the number of bytes consumed so far (header included):
// the file offset at which the next record starts, or at which decoding
// stopped after an error.
func (t *Reader) Offset() int64 { return t.off }

// Next returns the next reference. At a verified end-of-trace record it
// returns io.EOF; every other end of input is corruption. In particular
// a partial trailing record — or input that stops at a record boundary
// without the end marker — returns an error wrapping both ErrBadTrace
// and io.ErrUnexpectedEOF, carrying the byte offset of the failure, and
// never a bare io.EOF.
func (t *Reader) Next() (Ref, error) {
	if t.done {
		return Ref{}, io.EOF
	}
	head, err := t.r.ReadByte()
	if err == io.EOF {
		return Ref{}, fmt.Errorf("%w: missing end-of-trace record at offset %d: %w",
			ErrBadTrace, t.off, io.ErrUnexpectedEOF)
	}
	if err != nil {
		return Ref{}, err
	}
	t.off++
	t.one[0] = head
	t.crc = crc32.Update(t.crc, crcTable, t.one[:])
	kind := Kind(head >> 6)
	if kind > Store {
		return t.finish(head)
	}
	size := sizeFromCode[(head>>4)&3]
	mode := head & 0x0f

	var addr uint64
	switch {
	case mode == 0:
		addr = t.last[kind] + uint64(size)
	case mode >= 1 && mode <= 8:
		t.pay = [8]byte{}
		if err := t.fill(t.pay[:mode], "delta"); err != nil {
			return Ref{}, err
		}
		// Sign-extend the little-endian delta.
		v := int64(binary.LittleEndian.Uint64(t.pay[:]))
		shift := uint(64 - 8*mode)
		v = v << shift >> shift
		addr = uint64(int64(t.last[kind]) + v)
	case mode == 15:
		if err := t.fill(t.pay[:], "address"); err != nil {
			return Ref{}, err
		}
		addr = binary.LittleEndian.Uint64(t.pay[:])
	default:
		return Ref{}, fmt.Errorf("%w: address mode %d at offset %d", ErrBadTrace, mode, t.off-1)
	}
	t.last[kind] = addr
	t.n++
	return Ref{Kind: kind, Addr: addr, Size: size}, nil
}

// fill reads a record payload, converting any short read into the
// truncation error contract (ErrBadTrace + io.ErrUnexpectedEOF + byte
// offset).
func (t *Reader) fill(buf []byte, what string) error {
	n, err := io.ReadFull(t.r, buf)
	t.off += int64(n)
	t.crc = crc32.Update(t.crc, crcTable, buf[:n])
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return fmt.Errorf("%w: truncated %s at offset %d: %w",
				ErrBadTrace, what, t.off, io.ErrUnexpectedEOF)
		}
		return err
	}
	return nil
}

// finish validates the end-of-trace record: the count must match the
// references decoded and nothing may follow it.
func (t *Reader) finish(head byte) (Ref, error) {
	if head != endMarker {
		return Ref{}, fmt.Errorf("%w: bad end-of-trace opcode 0x%02x at offset %d",
			ErrBadTrace, head, t.off-1)
	}
	var buf [8]byte
	if err := t.fill(buf[:], "end-of-trace count"); err != nil {
		return Ref{}, err
	}
	if count := int64(binary.LittleEndian.Uint64(buf[:])); count != t.n {
		return Ref{}, fmt.Errorf("%w: end-of-trace count %d, decoded %d records", ErrBadTrace, count, t.n)
	}
	want := t.crc // everything up to and including the count field
	var sum [4]byte
	if err := t.fill(sum[:], "checksum"); err != nil {
		return Ref{}, err
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return Ref{}, fmt.Errorf("%w: checksum %08x, computed %08x", ErrBadTrace, got, want)
	}
	if _, err := t.r.ReadByte(); err == nil {
		return Ref{}, fmt.Errorf("%w: trailing data after end-of-trace record at offset %d", ErrBadTrace, t.off)
	} else if err != io.EOF {
		return Ref{}, err
	}
	t.done = true
	return Ref{}, io.EOF
}

// BatchLen is the default replay staging-buffer length, matched to the
// VM run loop's batch size so replayed and live streams hit BatchSink
// consumers with the same slice granularity.
const BatchLen = 256

// Refs decodes up to len(buf) references into buf, returning how many
// were filled. It returns io.EOF (possibly with n > 0) at a verified
// end of trace, and otherwise exactly the errors Next returns.
func (t *Reader) Refs(buf []Ref) (int, error) {
	for i := range buf {
		r, err := t.Next()
		if err != nil {
			return i, err
		}
		buf[i] = r
	}
	return len(buf), nil
}

// Replay streams the remaining references into a sink, returning the
// count delivered. Decode errors carry the byte offset at which the
// trace went bad (see Next).
func (t *Reader) Replay(sink Sink) (int64, error) {
	return t.ReplayBatch(sink, nil)
}

// ReplayBatch is Replay with an explicit staging buffer: references are
// decoded into buf and handed to the sink in slices via the BatchSink
// fast path where the sink supports it, so replay costs zero
// allocations per reference. A nil or empty buf allocates a BatchLen
// buffer.
func (t *Reader) ReplayBatch(sink Sink, buf []Ref) (int64, error) {
	if len(buf) == 0 {
		buf = make([]Ref, BatchLen)
	}
	var n int64
	for {
		m, err := t.Refs(buf)
		if m > 0 {
			EmitAll(sink, buf[:m])
			n += int64(m)
		}
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}
