package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: Shade-style capture of a reference stream so that
// expensive workload executions can be replayed into many cache
// configurations without re-running the program.
//
// The encoding is a compact delta format. Each record starts with one
// opcode byte:
//
//	bits 7-6  kind (0 ifetch, 1 load, 2 store)
//	bits 5-4  size code (0=1, 1=2, 2=4, 3=8 bytes)
//	bits 3-0  address mode:
//	   0      delta == +size of previous same-kind access (no payload)
//	   1..8   n-byte little-endian signed delta from the previous
//	          same-kind address
//	   15     8-byte absolute address
//
// Sequential streams (the common case: instruction fetches, array
// sweeps) cost one byte per reference.

// fileMagic identifies a trace file.
var fileMagic = [8]byte{'i', 'r', 'a', 'm', 't', 'r', 'c', '1'}

// ErrBadTrace reports a corrupt or truncated trace file.
var ErrBadTrace = errors.New("trace: corrupt trace file")

var sizeCodes = map[uint8]uint8{1: 0, 2: 1, 4: 2, 8: 3}
var sizeFromCode = [4]uint8{1, 2, 4, 8}

// Writer encodes a reference stream to an io.Writer. It implements
// Sink, so it can be used directly as a VM sink or inside a Tee.
type Writer struct {
	w    *bufio.Writer
	last [3]uint64 // previous address per kind
	n    int64
	err  error
}

// NewWriter creates a trace writer and emits the header.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Ref implements Sink. Encoding errors are sticky and surfaced by
// Close (a Sink cannot return errors per reference).
func (t *Writer) Ref(r Ref) {
	if t.err != nil {
		return
	}
	sc, ok := sizeCodes[r.Size]
	if !ok {
		t.err = fmt.Errorf("trace: bad reference size %d", r.Size)
		return
	}
	k := uint8(r.Kind)
	if k > 2 {
		t.err = fmt.Errorf("trace: bad reference kind %d", r.Kind)
		return
	}
	head := k<<6 | sc<<4
	prev := t.last[k]
	t.last[k] = r.Addr
	t.n++

	delta := int64(r.Addr) - int64(prev)
	if t.n > 1 && delta == int64(r.Size) {
		t.err = t.w.WriteByte(head | 0)
		return
	}
	// Choose the shortest signed delta encoding.
	if nb := signedLen(delta); t.n > 1 && nb <= 8 {
		if err := t.w.WriteByte(head | uint8(nb)); err != nil {
			t.err = err
			return
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], uint64(delta))
		_, t.err = t.w.Write(buf[:nb])
		return
	}
	if err := t.w.WriteByte(head | 15); err != nil {
		t.err = err
		return
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], r.Addr)
	_, t.err = t.w.Write(buf[:])
}

// signedLen returns the minimum bytes needed to hold v as a
// little-endian signed integer (1..9; 9 means "use absolute").
func signedLen(v int64) int {
	for n := 1; n <= 8; n++ {
		shift := uint(8 * n)
		if shift >= 64 {
			return 8
		}
		min := -(int64(1) << (shift - 1))
		max := int64(1)<<(shift-1) - 1
		if v >= min && v <= max {
			return n
		}
	}
	return 9
}

// Count returns the number of references written.
func (t *Writer) Count() int64 { return t.n }

// Close flushes the stream and returns any deferred encoding error.
func (t *Writer) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader decodes a trace file.
type Reader struct {
	r    *bufio.Reader
	last [3]uint64
	n    int64
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header", ErrBadTrace)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
	}
	return &Reader{r: br}, nil
}

// Next returns the next reference, or io.EOF at the end of the trace.
func (t *Reader) Next() (Ref, error) {
	head, err := t.r.ReadByte()
	if err == io.EOF {
		return Ref{}, io.EOF
	}
	if err != nil {
		return Ref{}, err
	}
	kind := Kind(head >> 6)
	if kind > Store {
		return Ref{}, fmt.Errorf("%w: kind %d", ErrBadTrace, kind)
	}
	size := sizeFromCode[(head>>4)&3]
	mode := head & 0x0f

	var addr uint64
	switch {
	case mode == 0:
		addr = t.last[kind] + uint64(size)
	case mode >= 1 && mode <= 8:
		var buf [8]byte
		if _, err := io.ReadFull(t.r, buf[:mode]); err != nil {
			return Ref{}, fmt.Errorf("%w: truncated delta", ErrBadTrace)
		}
		// Sign-extend the little-endian delta.
		v := int64(binary.LittleEndian.Uint64(buf[:]))
		shift := uint(64 - 8*mode)
		v = v << shift >> shift
		addr = uint64(int64(t.last[kind]) + v)
	case mode == 15:
		var buf [8]byte
		if _, err := io.ReadFull(t.r, buf[:]); err != nil {
			return Ref{}, fmt.Errorf("%w: truncated address", ErrBadTrace)
		}
		addr = binary.LittleEndian.Uint64(buf[:])
	default:
		return Ref{}, fmt.Errorf("%w: address mode %d", ErrBadTrace, mode)
	}
	t.last[kind] = addr
	t.n++
	return Ref{Kind: kind, Addr: addr, Size: size}, nil
}

// Replay streams the remaining references into a sink, returning the
// count delivered.
func (t *Reader) Replay(sink Sink) (int64, error) {
	var n int64
	for {
		r, err := t.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		sink.Ref(r)
		n++
	}
}
