//go:build ignore

// Gen regenerates the seed traces for the fuzz corpus:
//
//	go run gen.go
//
// from this directory. Each seed is a small but complete trace
// exercising a different encoder regime (sequential runs, mixed-kind
// delta traffic, absolute jumps over the full 64-bit space).
package main

import (
	"log"
	"math/rand"
	"os"

	"repro/internal/trace"
)

func main() {
	write("seq.trc", sequential())
	write("mixed.trc", mixed())
	write("jumps.trc", jumps())
}

func write(path string, refs []trace.Ref) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		log.Fatal(err)
	}
	w.Refs(refs)
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	log.Printf("%s: %d refs", path, len(refs))
}

// sequential is the common case: straight-line ifetches.
func sequential() []trace.Ref {
	refs := make([]trace.Ref, 200)
	for i := range refs {
		refs[i] = trace.Ref{Kind: trace.Ifetch, Addr: 0x1000 + uint64(i)*4, Size: 4}
	}
	return refs
}

// mixed interleaves fetches with strided loads and stores.
func mixed() []trace.Ref {
	var refs []trace.Ref
	for i := 0; i < 64; i++ {
		refs = append(refs,
			trace.Ref{Kind: trace.Ifetch, Addr: 0x2000 + uint64(i)*4, Size: 4},
			trace.Ref{Kind: trace.Load, Addr: 0x80000 + uint64(i)*32, Size: 8},
		)
		if i%4 == 0 {
			refs = append(refs, trace.Ref{Kind: trace.Store, Addr: 0x90000 + uint64(i)*8, Size: 4})
		}
	}
	return refs
}

// jumps hits every delta width and the absolute-address fallback.
func jumps() []trace.Ref {
	rng := rand.New(rand.NewSource(1))
	sizes := []uint8{1, 2, 4, 8}
	refs := make([]trace.Ref, 100)
	for i := range refs {
		refs[i] = trace.Ref{
			Kind: trace.Kind(rng.Intn(3)),
			Addr: rng.Uint64() >> uint(rng.Intn(64)),
			Size: sizes[rng.Intn(len(sizes))],
		}
	}
	return refs
}
