package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// seedCorpus feeds every checked-in trace under testdata/ to the fuzz
// target, so the generators start from complete, valid files.
func seedCorpus(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.trc"))
	if err != nil {
		f.Fatal(err)
	}
	if len(paths) == 0 {
		f.Fatal("no seed traces in testdata/ (regenerate with go generate ./internal/trace)")
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
}

// FuzzReaderNext feeds arbitrary bytes to the decoder. The contract
// under attack: Next never panics, never loops without consuming
// input, and classifies every malformed stream as an error — a
// downstream cache model can trust that whatever Next returns was a
// validly encoded record.
func FuzzReaderNext(f *testing.F) {
	seedCorpus(f)
	// Headerless garbage and a corrupted header round out the seeds.
	f.Add([]byte("not a trace file"))
	f.Add([]byte("iramtrc2\xc0"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadTrace) {
				t.Fatalf("NewReader: non-trace error %v", err)
			}
			return
		}
		// Each Next consumes at least one byte or terminates, so the
		// record count is bounded by the input length.
		for i := 0; ; i++ {
			if i > len(data)+1 {
				t.Fatalf("decoder failed to terminate after %d records on %d input bytes", i, len(data))
			}
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				if !errors.Is(err, ErrBadTrace) {
					t.Fatalf("Next: non-trace error %v", err)
				}
				return
			}
		}
	})
}

// FuzzFileRoundTrip interprets arbitrary bytes as a reference stream,
// encodes it, and decodes it back: every valid stream must round-trip
// reference-for-reference, whatever its kind/size/address pattern.
func FuzzFileRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// 10 bytes per reference: kind, size code, 8-byte address.
		refs := make([]Ref, 0, len(data)/10)
		for len(data) >= 10 {
			refs = append(refs, Ref{
				Kind: Kind(data[0] % 3),
				Size: sizeFromCode[data[1]%4],
				Addr: binary.LittleEndian.Uint64(data[2:10]),
			})
			data = data[10:]
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		w.Refs(refs)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range refs {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("ref %d/%d: %v", i, len(refs), err)
			}
			if got != refs[i] {
				t.Fatalf("ref %d: got %+v, want %+v", i, got, refs[i])
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("after %d refs: err %v, want io.EOF", len(refs), err)
		}
	})
}
