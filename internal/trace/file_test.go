package trace

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, refs []Ref) []Ref {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		w.Ref(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []Ref
	for {
		ref, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ref)
	}
	return out
}

func TestFileRoundTripBasic(t *testing.T) {
	refs := []Ref{
		{Ifetch, 0x1000, 4},
		{Ifetch, 0x1004, 4}, // sequential: 1-byte record
		{Load, 0x200000, 8},
		{Store, 0x200000, 8},
		{Ifetch, 0x1008, 4},
		{Load, 0x200008, 8},
		{Load, 0x100, 4}, // big negative delta
	}
	got := roundTrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("got %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d: %+v != %+v", i, got[i], refs[i])
		}
	}
}

func TestFileCompactness(t *testing.T) {
	// A purely sequential ifetch stream must cost ~1 byte/ref.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Ref(Ref{Ifetch, 0x1000 + uint64(i)*4, 4})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Allowance: 8-byte header, one absolute first record, 13-byte
	// end-of-trace record (opcode, count, CRC), 1 byte per sequential
	// reference.
	if buf.Len() > 10000+8+16+13 {
		t.Errorf("sequential trace = %d bytes for 10000 refs, want ~1 byte/ref", buf.Len())
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]Ref, int(n)+1)
		for i := range refs {
			kind := Kind(rng.Intn(3))
			size := []uint8{1, 2, 4, 8}[rng.Intn(4)]
			var addr uint64
			switch rng.Intn(3) {
			case 0:
				addr = uint64(rng.Intn(1 << 20))
			case 1:
				addr = uint64(rng.Uint64()) // anywhere in 64-bit space
			default:
				if i > 0 {
					addr = refs[i-1].Addr + uint64(size)
				}
			}
			refs[i] = Ref{Kind: kind, Addr: addr, Size: size}
		}
		got := roundTrip(t, refs)
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
}

// encode builds a complete trace file from refs.
func encode(t *testing.T, refs []Ref) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		w.Ref(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// drain reads refs until the first error, which it returns.
func drain(t *testing.T, data []byte) (int, error) {
	t.Helper()
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.Next(); err != nil {
			return n, err
		}
		n++
	}
}

// TestFileTruncated pins the truncation error contract: any prefix of a
// valid trace that cuts a record — or stops before the end-of-trace
// record, even at a record boundary — must surface an error wrapping
// both ErrBadTrace and io.ErrUnexpectedEOF, never a silent io.EOF.
func TestFileTruncated(t *testing.T) {
	full := encode(t, []Ref{
		{Load, 0x123456789a, 8}, // absolute: 9 bytes
		{Load, 0x12345678a2, 8}, // sequential: 1 byte
		{Store, 0x77, 4},        // absolute
	})
	for cut := len(full) - 1; cut >= 8; cut-- {
		n, err := drain(t, full[:cut])
		if err == io.EOF {
			t.Fatalf("cut at %d bytes: silent io.EOF after %d refs", cut, n)
		}
		if !errors.Is(err, ErrBadTrace) || !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d bytes: err %v, want ErrBadTrace wrapping io.ErrUnexpectedEOF", cut, err)
		}
	}
	if n, err := drain(t, full); err != io.EOF || n != 3 {
		t.Fatalf("full trace: n=%d err=%v, want 3 refs and io.EOF", n, err)
	}
}

// TestReplayTruncationOffset locks the byte offset carried by the
// truncation error Replay surfaces.
func TestReplayTruncationOffset(t *testing.T) {
	full := encode(t, []Ref{{Load, 0x123456789a, 8}, {Load, 0x9000, 2}})
	// Cut into the second record's delta payload: header(8) +
	// absolute(9) + head byte + part of the delta.
	cut := full[:8+9+1+2]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var c Counts
	n, err := r.Replay(&c)
	if n != 1 {
		t.Fatalf("replayed %d refs before truncation, want 1", n)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err %v, want io.ErrUnexpectedEOF", err)
	}
	if want := fmt.Sprintf("offset %d", len(cut)); !strings.Contains(err.Error(), want) {
		t.Errorf("err %q does not carry the failure offset (%s)", err, want)
	}
	if r.Offset() != int64(len(cut)) {
		t.Errorf("Offset() = %d, want %d", r.Offset(), len(cut))
	}
}

// TestFileCountMismatch corrupts the end-of-trace count.
func TestFileCountMismatch(t *testing.T) {
	full := encode(t, []Ref{{Load, 0x40, 4}, {Load, 0x44, 4}})
	bad := bytes.Clone(full)
	bad[len(bad)-12]++ // low byte of the count (followed by the 4-byte CRC)
	if _, err := drain(t, bad); !errors.Is(err, ErrBadTrace) {
		t.Errorf("count mismatch: err %v, want ErrBadTrace", err)
	}
}

// TestFileChecksumMismatch pins the integrity contract: a flipped bit
// that still decodes as a structurally valid stream — right kind, right
// count — is caught by the CRC-32C in the end-of-trace record.
func TestFileChecksumMismatch(t *testing.T) {
	full := encode(t, []Ref{{Load, 0x123456789a, 8}, {Ifetch, 0x4000, 4}})
	// Byte 12 sits inside the first record's absolute address payload:
	// flipping it yields a different but perfectly decodable reference.
	body := bytes.Clone(full)
	body[12] ^= 0x40
	if _, err := drain(t, body); !errors.Is(err, ErrBadTrace) || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("payload bitflip: err %v, want ErrBadTrace naming the checksum", err)
	}
	// A corrupted checksum field itself is equally fatal.
	tail := bytes.Clone(full)
	tail[len(tail)-4] ^= 0x01
	if _, err := drain(t, tail); !errors.Is(err, ErrBadTrace) || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupt checksum: err %v, want ErrBadTrace naming the checksum", err)
	}
}

// TestFileTrailingGarbage rejects bytes after the end-of-trace record.
func TestFileTrailingGarbage(t *testing.T) {
	full := encode(t, []Ref{{Ifetch, 0x1000, 4}})
	if _, err := drain(t, append(bytes.Clone(full), 0x00)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("trailing garbage: err %v, want ErrBadTrace", err)
	}
}

// TestFileRejectsOldVersion pins the version check: a v1 header (no
// end-of-trace record existed in that format) is refused outright.
func TestFileRejectsOldVersion(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("iramtrc1")))
	if !errors.Is(err, ErrBadTrace) || !strings.Contains(err.Error(), "version") {
		t.Errorf("v1 header: err %v, want ErrBadTrace naming the version", err)
	}
}

func TestWriterRejectsBadRefs(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Ref(Ref{Load, 0, 3}) // invalid size
	if err := w.Close(); err == nil {
		t.Error("bad size not reported")
	}
}

func TestReplay(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Ref(Ref{Load, uint64(i) * 8, 8})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var c Counts
	n, err := r.Replay(&c)
	if err != nil || n != 100 || c.Loads != 100 {
		t.Errorf("replay: n=%d err=%v counts=%+v", n, err, c)
	}
}
