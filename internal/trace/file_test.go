package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, refs []Ref) []Ref {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		w.Ref(r)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out []Ref
	for {
		ref, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, ref)
	}
	return out
}

func TestFileRoundTripBasic(t *testing.T) {
	refs := []Ref{
		{Ifetch, 0x1000, 4},
		{Ifetch, 0x1004, 4}, // sequential: 1-byte record
		{Load, 0x200000, 8},
		{Store, 0x200000, 8},
		{Ifetch, 0x1008, 4},
		{Load, 0x200008, 8},
		{Load, 0x100, 4}, // big negative delta
	}
	got := roundTrip(t, refs)
	if len(got) != len(refs) {
		t.Fatalf("got %d refs, want %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Errorf("ref %d: %+v != %+v", i, got[i], refs[i])
		}
	}
}

func TestFileCompactness(t *testing.T) {
	// A purely sequential ifetch stream must cost ~1 byte/ref.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		w.Ref(Ref{Ifetch, 0x1000 + uint64(i)*4, 4})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 10000+8+16 {
		t.Errorf("sequential trace = %d bytes for 10000 refs, want ~1 byte/ref", buf.Len())
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		refs := make([]Ref, int(n)+1)
		for i := range refs {
			kind := Kind(rng.Intn(3))
			size := []uint8{1, 2, 4, 8}[rng.Intn(4)]
			var addr uint64
			switch rng.Intn(3) {
			case 0:
				addr = uint64(rng.Intn(1 << 20))
			case 1:
				addr = uint64(rng.Uint64()) // anywhere in 64-bit space
			default:
				if i > 0 {
					addr = refs[i-1].Addr + uint64(size)
				}
			}
			refs[i] = Ref{Kind: kind, Addr: addr, Size: size}
		}
		got := roundTrip(t, refs)
		if len(got) != len(refs) {
			return false
		}
		for i := range refs {
			if got[i] != refs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFileRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("empty file accepted")
	}
}

func TestFileTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Ref(Ref{Load, 0x123456789a, 8})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestWriterRejectsBadRefs(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Ref(Ref{Load, 0, 3}) // invalid size
	if err := w.Close(); err == nil {
		t.Error("bad size not reported")
	}
}

func TestReplay(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 100; i++ {
		w.Ref(Ref{Load, uint64(i) * 8, 8})
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var c Counts
	n, err := r.Replay(&c)
	if err != nil || n != 100 || c.Loads != 100 {
		t.Errorf("replay: n=%d err=%v counts=%+v", n, err, c)
	}
}
