// Package trace defines the memory-reference event stream that couples
// the functional simulator (internal/vm) to the architecture models
// (internal/cache, internal/memsys). It plays the role that the SHADE
// tracing interface plays in the paper's methodology: the VM executes a
// workload and pushes every instruction fetch, load, and store into a
// Sink; cache and timing models consume the stream online, so no trace
// is ever materialised on disk.
package trace

// Kind classifies a memory reference.
type Kind uint8

// Reference kinds.
const (
	Ifetch Kind = iota
	Load
	Store
)

func (k Kind) String() string {
	switch k {
	case Ifetch:
		return "ifetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return "unknown"
	}
}

// Ref is one memory reference.
type Ref struct {
	Kind Kind
	Addr uint64
	Size uint8 // bytes: 1, 2, 4, or 8 (4 for instruction fetches)
}

// Sink consumes a reference stream. Implementations must be safe for
// single-goroutine use only; the simulators never share a Sink across
// goroutines.
type Sink interface {
	Ref(r Ref)
}

// BatchSink is an optional extension of Sink for consumers that can
// amortise per-reference dispatch. Producers that buffer references
// (the VM's Run loop) type-assert their Sink to BatchSink and hand
// over slices; the slice is owned by the producer and reused after the
// call returns, so implementations must not retain it.
type BatchSink interface {
	Sink
	Refs(rs []Ref)
}

// EmitAll delivers a slice of references to a sink, using the batched
// path when the sink supports it.
func EmitAll(s Sink, rs []Ref) {
	if b, ok := s.(BatchSink); ok {
		b.Refs(rs)
		return
	}
	for i := range rs {
		s.Ref(rs[i])
	}
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Ref)

// Ref implements Sink.
func (f SinkFunc) Ref(r Ref) { f(r) }

// Tee duplicates a stream to several sinks in order.
type Tee []Sink

// Ref implements Sink.
func (t Tee) Ref(r Ref) {
	for _, s := range t {
		s.Ref(r)
	}
}

// Refs implements BatchSink, forwarding the whole batch to each inner
// sink (batched where supported) before moving to the next.
func (t Tee) Refs(rs []Ref) {
	for _, s := range t {
		EmitAll(s, rs)
	}
}

// Counts tallies references by kind. It is the cheapest possible sink
// and is used to cross-check instruction budgets and load/store mixes.
type Counts struct {
	Ifetches int64
	Loads    int64
	Stores   int64
}

// Ref implements Sink.
func (c *Counts) Ref(r Ref) {
	switch r.Kind {
	case Ifetch:
		c.Ifetches++
	case Load:
		c.Loads++
	case Store:
		c.Stores++
	}
}

// Refs implements BatchSink.
func (c *Counts) Refs(rs []Ref) {
	for i := range rs {
		c.Ref(rs[i])
	}
}

// Total returns the total number of references seen.
func (c *Counts) Total() int64 { return c.Ifetches + c.Loads + c.Stores }

// LoadFrac returns loads as a fraction of instructions fetched.
func (c *Counts) LoadFrac() float64 {
	if c.Ifetches == 0 {
		return 0
	}
	return float64(c.Loads) / float64(c.Ifetches)
}

// StoreFrac returns stores as a fraction of instructions fetched.
func (c *Counts) StoreFrac() float64 {
	if c.Ifetches == 0 {
		return 0
	}
	return float64(c.Stores) / float64(c.Ifetches)
}

// Filter forwards only references matching the kind to the inner sink.
type Filter struct {
	Keep Kind
	Next Sink
}

// Ref implements Sink.
func (f Filter) Ref(r Ref) {
	if r.Kind == f.Keep {
		f.Next.Ref(r)
	}
}

// DataOnly forwards loads and stores (not ifetches) to the inner sink.
type DataOnly struct{ Next Sink }

// Ref implements Sink.
func (d DataOnly) Ref(r Ref) {
	if r.Kind != Ifetch {
		d.Next.Ref(r)
	}
}

// Discard drops every reference. Useful as a placeholder.
var Discard Sink = SinkFunc(func(Ref) {})
