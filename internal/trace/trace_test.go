package trace

import "testing"

func TestCounts(t *testing.T) {
	var c Counts
	c.Ref(Ref{Kind: Ifetch, Addr: 0, Size: 4})
	c.Ref(Ref{Kind: Ifetch, Addr: 4, Size: 4})
	c.Ref(Ref{Kind: Load, Addr: 100, Size: 8})
	c.Ref(Ref{Kind: Store, Addr: 200, Size: 4})
	if c.Ifetches != 2 || c.Loads != 1 || c.Stores != 1 || c.Total() != 4 {
		t.Errorf("counts = %+v", c)
	}
	if c.LoadFrac() != 0.5 || c.StoreFrac() != 0.5 {
		t.Errorf("fractions = %v/%v", c.LoadFrac(), c.StoreFrac())
	}
}

func TestCountsEmpty(t *testing.T) {
	var c Counts
	if c.LoadFrac() != 0 || c.StoreFrac() != 0 {
		t.Error("fractions of empty counts must be 0")
	}
}

func TestTee(t *testing.T) {
	var a, b Counts
	tee := Tee{&a, &b}
	tee.Ref(Ref{Kind: Load})
	if a.Loads != 1 || b.Loads != 1 {
		t.Error("tee did not duplicate")
	}
}

func TestFilter(t *testing.T) {
	var c Counts
	f := Filter{Keep: Store, Next: &c}
	f.Ref(Ref{Kind: Load})
	f.Ref(Ref{Kind: Store})
	if c.Total() != 1 || c.Stores != 1 {
		t.Errorf("filter passed wrong refs: %+v", c)
	}
}

func TestDataOnly(t *testing.T) {
	var c Counts
	d := DataOnly{Next: &c}
	d.Ref(Ref{Kind: Ifetch})
	d.Ref(Ref{Kind: Load})
	d.Ref(Ref{Kind: Store})
	if c.Ifetches != 0 || c.Total() != 2 {
		t.Errorf("DataOnly: %+v", c)
	}
}

func TestSinkFuncAndDiscard(t *testing.T) {
	n := 0
	SinkFunc(func(Ref) { n++ }).Ref(Ref{})
	if n != 1 {
		t.Error("SinkFunc did not invoke")
	}
	Discard.Ref(Ref{Kind: Load}) // must not panic
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Ifetch: "ifetch", Load: "load", Store: "store", Kind(9): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
