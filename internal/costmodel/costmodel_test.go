package costmodel

import "testing"

// TestPaperArithmetic pins the Section 3 numbers: a 256 Mbit device at
// $25/MB is an $800 part, the CDRAM precedent prices area at ~1.43x,
// and the R4300i-class core fits the 10% (30 mm²) budget.
func TestPaperArithmetic(t *testing.T) {
	r := Evaluate(Default())
	if r.PlainDRAMDollars != 800 {
		t.Errorf("plain device = $%v, want $800", r.PlainDRAMDollars)
	}
	if r.CostPerAreaFactor < 1.42 || r.CostPerAreaFactor > 1.44 {
		t.Errorf("cost/area = %v, want ~1.43", r.CostPerAreaFactor)
	}
	// The integrated device lands between the plain $800 and the
	// paper's rounded-up $1000.
	if r.IntegratedDollars <= 800 || r.IntegratedDollars > 1000 {
		t.Errorf("integrated device = $%v, want (800, 1000]", r.IntegratedDollars)
	}
	if r.ProcessorPremium <= 0 || r.ProcessorPremium > 200 {
		t.Errorf("processor premium = $%v, want (0, 200]", r.ProcessorPremium)
	}
	if r.ProcessorAreaMM2 != 30 {
		t.Errorf("area budget = %v mm², want 30", r.ProcessorAreaMM2)
	}
	if !r.CoreFitsBudget {
		t.Error("the R4300i-class core must fit the 10% budget")
	}
	if r.ECCOverheadPercent != 12.5 {
		t.Errorf("ECC overhead = %v%%, want 12.5", r.ECCOverheadPercent)
	}
}

func TestOversizedCoreDoesNotFit(t *testing.T) {
	in := Default()
	in.CPUCoreAreaMM2 = 100 // a superscalar monster
	if Evaluate(in).CoreFitsBudget {
		t.Error("a 100 mm² core must not fit a 30 mm² budget")
	}
}

func TestPremiumScalesWithArea(t *testing.T) {
	small := Default()
	big := Default()
	big.ProcessorAreaFrac = 0.2
	if Evaluate(big).ProcessorPremium <= Evaluate(small).ProcessorPremium {
		t.Error("doubling the area fraction must raise the premium")
	}
}

// TestAreaProxyCalibration pins the proxy at the paper's device: a
// 256 Mbit array, 16 banks of 3 × 512 B buffers, a 512 B victim cache,
// and a 27 mm² core should land on the ~300 mm² Section 3 die.
func TestAreaProxyCalibration(t *testing.T) {
	m := DefaultArea()
	got := m.DeviceAreaMM2(AreaParams{
		CapacityMbit:       256,
		Banks:              16,
		BufferBytesPerBank: 3 * 512,
		VictimBytes:        512,
		CoreAreaMM2:        27,
	})
	if got < 290 || got > 310 {
		t.Errorf("paper device area = %.1f mm², want ~300", got)
	}
}

// TestAreaProxyMonotone checks that every axis costs silicon: more
// banks, wider columns (more buffer bytes), and a victim cache each
// strictly grow the proxy.
func TestAreaProxyMonotone(t *testing.T) {
	m := DefaultArea()
	base := AreaParams{CapacityMbit: 256, Banks: 16, BufferBytesPerBank: 3 * 512, VictimBytes: 0, CoreAreaMM2: 27}
	a0 := m.DeviceAreaMM2(base)

	more := base
	more.Banks = 32
	if m.DeviceAreaMM2(more) <= a0 {
		t.Error("doubling banks must grow the die")
	}
	more = base
	more.BufferBytesPerBank = 3 * 1024
	if m.DeviceAreaMM2(more) <= a0 {
		t.Error("doubling column buffers must grow the die")
	}
	more = base
	more.VictimBytes = 512
	if m.DeviceAreaMM2(more) <= a0 {
		t.Error("adding a victim cache must grow the die")
	}
}

// TestDollarsProxy checks the cost conversion: the cell array alone is
// the plain $800 part, and extra area is priced at the CDRAM factor.
func TestDollarsProxy(t *testing.T) {
	m := DefaultArea()
	in := Default()
	cells := m.CellMM2PerMbit * in.DRAMCapacityMbit
	if d := m.DollarsProxy(in, cells); d != 800 {
		t.Errorf("bare cell array = $%v, want $800", d)
	}
	// 10% extra area at the 1.43x factor ≈ +14.3% cost.
	d := m.DollarsProxy(in, cells*1.10)
	if d < 910 || d > 920 {
		t.Errorf("+10%% area = $%v, want ~$914", d)
	}
	if m.DollarsProxy(in, cells-10) != 800 {
		t.Error("area below the cell array must clamp to the plain part")
	}
}
