package costmodel

import "testing"

// TestPaperArithmetic pins the Section 3 numbers: a 256 Mbit device at
// $25/MB is an $800 part, the CDRAM precedent prices area at ~1.43x,
// and the R4300i-class core fits the 10% (30 mm²) budget.
func TestPaperArithmetic(t *testing.T) {
	r := Evaluate(Default())
	if r.PlainDRAMDollars != 800 {
		t.Errorf("plain device = $%v, want $800", r.PlainDRAMDollars)
	}
	if r.CostPerAreaFactor < 1.42 || r.CostPerAreaFactor > 1.44 {
		t.Errorf("cost/area = %v, want ~1.43", r.CostPerAreaFactor)
	}
	// The integrated device lands between the plain $800 and the
	// paper's rounded-up $1000.
	if r.IntegratedDollars <= 800 || r.IntegratedDollars > 1000 {
		t.Errorf("integrated device = $%v, want (800, 1000]", r.IntegratedDollars)
	}
	if r.ProcessorPremium <= 0 || r.ProcessorPremium > 200 {
		t.Errorf("processor premium = $%v, want (0, 200]", r.ProcessorPremium)
	}
	if r.ProcessorAreaMM2 != 30 {
		t.Errorf("area budget = %v mm², want 30", r.ProcessorAreaMM2)
	}
	if !r.CoreFitsBudget {
		t.Error("the R4300i-class core must fit the 10% budget")
	}
	if r.ECCOverheadPercent != 12.5 {
		t.Errorf("ECC overhead = %v%%, want 12.5", r.ECCOverheadPercent)
	}
}

func TestOversizedCoreDoesNotFit(t *testing.T) {
	in := Default()
	in.CPUCoreAreaMM2 = 100 // a superscalar monster
	if Evaluate(in).CoreFitsBudget {
		t.Error("a 100 mm² core must not fit a 30 mm² budget")
	}
}

func TestPremiumScalesWithArea(t *testing.T) {
	small := Default()
	big := Default()
	big.ProcessorAreaFrac = 0.2
	if Evaluate(big).ProcessorPremium <= Evaluate(small).ProcessorPremium {
		t.Error("doubling the area fraction must raise the premium")
	}
}
