// Package costmodel reproduces the cost and area arithmetic of
// Section 3 of the paper: the CDRAM-extrapolated cost of adding a
// processor to a 256 Mbit DRAM die, the die-area budget that the
// processor core and protocol engines must fit, and the resulting
// $/device comparison against a conventional CPU plus support chips.
package costmodel

// Inputs captures the paper's Section 3 assumptions; Default() returns
// them verbatim so deviations are visible at call sites.
type Inputs struct {
	DRAMCapacityMbit  float64 // 256 Mbit device
	DollarPerMByte    float64 // "today's DRAM prices of ~$25/Mbyte"
	CDRAMAreaIncrease float64 // CDRAM die-size increase (7%)
	CDRAMCostIncrease float64 // resulting cost increase (10%)
	ProcessorAreaFrac float64 // die fraction added for the processor (10%)
	DRAMDieAreaMM2    float64 // full 256 Mbit die area -> 10% = ~30 mm²
	CPUCoreAreaMM2    float64 // R4300i-class core at 0.25 µm
	ProtocolGates     int     // gates for the two protocol engines
	ECCOverheadWords  float64 // check bits per 64-bit word (8/64)
}

// Default returns the paper's numbers.
func Default() Inputs {
	return Inputs{
		DRAMCapacityMbit:  256,
		DollarPerMByte:    25,
		CDRAMAreaIncrease: 0.07,
		CDRAMCostIncrease: 0.10,
		ProcessorAreaFrac: 0.10,
		DRAMDieAreaMM2:    300, // 10% ≈ 30 mm² per the paper
		CPUCoreAreaMM2:    27,  // R4300i shrunk to 0.25 µm (< 30 mm²)
		ProtocolGates:     60000,
		ECCOverheadWords:  8.0 / 64.0,
	}
}

// Result is the derived cost breakdown.
type Result struct {
	PlainDRAMDollars   float64 // 256 Mbit device at $/MB
	IntegratedDollars  float64 // with the processor area added
	ProcessorPremium   float64 // the delta — what the CPU "costs"
	CostPerAreaFactor  float64 // cost growth per area growth (CDRAM)
	ProcessorAreaMM2   float64 // area budget for the processor
	CoreFitsBudget     bool    // CPU core fits the 10% budget
	ECCOverheadPercent float64
}

// AreaModel is the die-area proxy for the design-space search: a
// first-order decomposition of an integrated device into DRAM cell
// array, per-bank periphery, column-buffer SRAM, victim-cache CAM, and
// the processor core. It deliberately stays at the fidelity of the
// paper's own Section 3 arithmetic — good enough to rank geometries
// against each other (more banks and wider columns cost real silicon),
// not a layout tool. Default() calibrates the coefficients so the
// paper's device (256 Mbit, 16 banks x 3 x 512 B buffers, 512 B victim,
// 27 mm^2 core) lands on the ~300 mm^2 die of Section 3.
type AreaModel struct {
	CellMM2PerMbit float64 // DRAM cell array density
	BankFixedMM2   float64 // per-bank decoder/control stripe
	BufferMM2PerKB float64 // column-buffer SRAM (sense-amp latches)
	VictimMM2PerKB float64 // fully-associative victim array (CAM tags)
}

// DefaultArea returns the calibrated coefficients.
func DefaultArea() AreaModel {
	return AreaModel{
		CellMM2PerMbit: 1.0,
		BankFixedMM2:   0.35,
		BufferMM2PerKB: 0.40,
		VictimMM2PerKB: 0.80,
	}
}

// AreaParams describes one device geometry for the proxy.
type AreaParams struct {
	CapacityMbit       float64 // DRAM capacity
	Banks              int     // independent banks
	BufferBytesPerBank int     // column-buffer bytes per bank (all buffers)
	VictimBytes        int     // victim-cache capacity (0 = none)
	CoreAreaMM2        float64 // processor core
}

// DeviceAreaMM2 evaluates the proxy for one geometry.
func (m AreaModel) DeviceAreaMM2(p AreaParams) float64 {
	cells := m.CellMM2PerMbit * p.CapacityMbit
	banks := m.BankFixedMM2 * float64(p.Banks)
	buffers := m.BufferMM2PerKB * float64(p.Banks*p.BufferBytesPerBank) / 1024
	victim := m.VictimMM2PerKB * float64(p.VictimBytes) / 1024
	return cells + banks + buffers + victim + p.CoreAreaMM2
}

// DollarsProxy converts a proxy die area into a device-cost estimate
// using the CDRAM cost-per-area scaling of Section 3: the cell array
// at plain DRAM cost, everything above it growing cost at
// CostPerAreaFactor per unit of relative area added.
func (m AreaModel) DollarsProxy(in Inputs, areaMM2 float64) float64 {
	cells := m.CellMM2PerMbit * in.DRAMCapacityMbit
	if cells <= 0 {
		return 0
	}
	plain := in.DRAMCapacityMbit / 8 * in.DollarPerMByte
	extraFrac := (areaMM2 - cells) / cells
	if extraFrac < 0 {
		extraFrac = 0
	}
	costPerArea := in.CDRAMCostIncrease / in.CDRAMAreaIncrease
	return plain * (1 + extraFrac*costPerArea)
}

// Evaluate computes the Section 3 arithmetic.
func Evaluate(in Inputs) Result {
	mbytes := in.DRAMCapacityMbit / 8
	plain := mbytes * in.DollarPerMByte
	// CDRAM precedent: 7% area -> 10% cost. Scale to the processor's
	// area fraction.
	costPerArea := in.CDRAMCostIncrease / in.CDRAMAreaIncrease
	premiumFrac := in.ProcessorAreaFrac * costPerArea
	integrated := plain * (1 + premiumFrac)
	budget := in.DRAMDieAreaMM2 * in.ProcessorAreaFrac
	return Result{
		PlainDRAMDollars:   plain,
		IntegratedDollars:  integrated,
		ProcessorPremium:   integrated - plain,
		CostPerAreaFactor:  costPerArea,
		ProcessorAreaMM2:   budget,
		CoreFitsBudget:     in.CPUCoreAreaMM2 <= budget,
		ECCOverheadPercent: in.ECCOverheadWords * 100,
	}
}
