// Package costmodel reproduces the cost and area arithmetic of
// Section 3 of the paper: the CDRAM-extrapolated cost of adding a
// processor to a 256 Mbit DRAM die, the die-area budget that the
// processor core and protocol engines must fit, and the resulting
// $/device comparison against a conventional CPU plus support chips.
package costmodel

// Inputs captures the paper's Section 3 assumptions; Default() returns
// them verbatim so deviations are visible at call sites.
type Inputs struct {
	DRAMCapacityMbit  float64 // 256 Mbit device
	DollarPerMByte    float64 // "today's DRAM prices of ~$25/Mbyte"
	CDRAMAreaIncrease float64 // CDRAM die-size increase (7%)
	CDRAMCostIncrease float64 // resulting cost increase (10%)
	ProcessorAreaFrac float64 // die fraction added for the processor (10%)
	DRAMDieAreaMM2    float64 // full 256 Mbit die area -> 10% = ~30 mm²
	CPUCoreAreaMM2    float64 // R4300i-class core at 0.25 µm
	ProtocolGates     int     // gates for the two protocol engines
	ECCOverheadWords  float64 // check bits per 64-bit word (8/64)
}

// Default returns the paper's numbers.
func Default() Inputs {
	return Inputs{
		DRAMCapacityMbit:  256,
		DollarPerMByte:    25,
		CDRAMAreaIncrease: 0.07,
		CDRAMCostIncrease: 0.10,
		ProcessorAreaFrac: 0.10,
		DRAMDieAreaMM2:    300, // 10% ≈ 30 mm² per the paper
		CPUCoreAreaMM2:    27,  // R4300i shrunk to 0.25 µm (< 30 mm²)
		ProtocolGates:     60000,
		ECCOverheadWords:  8.0 / 64.0,
	}
}

// Result is the derived cost breakdown.
type Result struct {
	PlainDRAMDollars   float64 // 256 Mbit device at $/MB
	IntegratedDollars  float64 // with the processor area added
	ProcessorPremium   float64 // the delta — what the CPU "costs"
	CostPerAreaFactor  float64 // cost growth per area growth (CDRAM)
	ProcessorAreaMM2   float64 // area budget for the processor
	CoreFitsBudget     bool    // CPU core fits the 10% budget
	ECCOverheadPercent float64
}

// Evaluate computes the Section 3 arithmetic.
func Evaluate(in Inputs) Result {
	mbytes := in.DRAMCapacityMbit / 8
	plain := mbytes * in.DollarPerMByte
	// CDRAM precedent: 7% area -> 10% cost. Scale to the processor's
	// area fraction.
	costPerArea := in.CDRAMCostIncrease / in.CDRAMAreaIncrease
	premiumFrac := in.ProcessorAreaFrac * costPerArea
	integrated := plain * (1 + premiumFrac)
	budget := in.DRAMDieAreaMM2 * in.ProcessorAreaFrac
	return Result{
		PlainDRAMDollars:   plain,
		IntegratedDollars:  integrated,
		ProcessorPremium:   integrated - plain,
		CostPerAreaFactor:  costPerArea,
		ProcessorAreaMM2:   budget,
		CoreFitsBudget:     in.CPUCoreAreaMM2 <= budget,
		ECCOverheadPercent: in.ECCOverheadWords * 100,
	}
}
