// Package sweep is the experiment sweep engine: it fans independent
// experiment units out across a pool of worker goroutines and
// reassembles their results in a deterministic order, so that a
// parallel sweep produces byte-identical output to a serial one.
//
// The model is the same shape as a batch scheduler: an experiment is a
// Job made of enumerable Units (the smallest independently runnable
// pieces — one workload measurement, one GSPN evaluation, one
// multiprocessor run), each carrying an explicit seed so its result
// depends only on its inputs, never on scheduling. Workers execute
// units in whatever order the pool dictates; the engine buffers the
// partial results and assembles each job exactly once, emitting
// finished jobs strictly in submission order as their frontier
// completes. Determinism therefore holds for any worker count,
// including 1, which is the serial reference.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/stats"
)

// Unit is one independently runnable piece of an experiment. Run must
// be self-contained: any randomness must come from Seed (or from seeds
// closed over explicitly), and it must not mutate state shared with
// other units except through concurrency-safe structures (e.g. the
// single-flight measurement cache in internal/experiments).
type Unit struct {
	// Name labels the unit in progress and error reports
	// (e.g. "fig13/p=4/integrated + victim"). Unit names are cache-key
	// components (see Key): renaming a unit IS a cache invalidation,
	// deliberately — a rename usually accompanies a semantic change,
	// and a spurious miss only costs recomputation.
	Name string
	// Seed is the unit's explicit random seed (0 when the unit is
	// fully deterministic). It is informational here — the Run closure
	// must already incorporate it — but carrying it on the unit keeps
	// the seed assignment auditable and scheduling-independent. Like
	// Name, it is a cache-key component.
	Seed int64
	// Run computes the unit's partial result.
	Run func() (interface{}, error)
	// Key, when non-empty, content-addresses the unit's result: an
	// engine with a Cache consults it before calling Run and commits
	// the encoded result after. The key must cover every input Run's
	// value depends on (device hash, experiment, unit name, params,
	// seed, result schema version — see internal/experiments); two
	// units may share a key only if their results are byte-identical.
	// Empty means never cached.
	Key string
	// Codec encodes Run's result for the cache and decodes it back.
	// Required (along with Key) for the unit to be cacheable.
	Codec Codec
}

// Codec translates one unit-result type to and from cacheable bytes.
// Decode must return a value of the exact dynamic type Run produces —
// job Assemble steps type-assert on it — and must fail (not guess) on
// payloads written by another type or schema version; the engine
// treats any decode error as a miss and recomputes.
type Codec interface {
	Encode(v interface{}) ([]byte, error)
	Decode(data []byte) (interface{}, error)
}

// ResultCache is the on-disk result store seam (implemented by
// internal/resultstore): opaque keys to opaque payloads. Get reports a
// miss — never an error — for any absent or invalid entry; Put
// replaces atomically; Acquire single-flights in-process work per key
// so concurrent units sharing a key compute once.
type ResultCache interface {
	Get(key string) ([]byte, bool)
	Put(key string, data []byte) error
	Acquire(key string) (release func())
}

// Job is one experiment: an ordered list of units plus an assembly
// step that combines the partial results (given in unit order) into
// the experiment's final value.
type Job struct {
	Name  string
	Units []Unit
	// Assemble combines the unit results, parts[i] being Units[i]'s
	// return value. It runs on the coordinating goroutine, exactly
	// once, after every unit of the job has completed.
	Assemble func(parts []interface{}) (interface{}, error)
}

// Single wraps one function as a single-unit job.
func Single(name string, seed int64, run func() (interface{}, error)) Job {
	return Job{
		Name:     name,
		Units:    []Unit{{Name: name, Seed: seed, Run: run}},
		Assemble: func(parts []interface{}) (interface{}, error) { return parts[0], nil },
	}
}

// JobResult is one assembled experiment.
type JobResult struct {
	Name    string
	Value   interface{}
	Units   int
	Elapsed time.Duration // summed unit wall time (not wall-clock)
}

// Engine schedules units across workers.
type Engine struct {
	// Workers is the worker-pool size; values below 1 mean 1 (serial).
	Workers int
	// Progress, when non-nil, receives one line per completed unit and
	// a final summary. Progress output is timing-dependent and must
	// therefore go to a different stream than the deterministic
	// experiment output (the CLI sends it to stderr).
	Progress io.Writer
	// Obs, when non-nil, receives sweep metrics under the "sweep"
	// family: unit/job completion counters, per-unit and per-job
	// timings, worker count, and queue-depth high-water mark. A nil
	// registry costs one pointer check per hook.
	Obs *obs.Registry
	// Trace, when non-nil, records one unit_start/unit_done (or
	// unit_skipped/unit_failed) event per unit into per-worker shards.
	Trace *obs.Tracer
	// Cache, when non-nil, memoizes unit results on disk: units
	// carrying a Key and a Codec decode a stored result instead of
	// running, and commit their result after running. Metrics appear
	// under the "resultcache" family. Store failures are non-fatal —
	// a broken cache degrades to recomputation, never to an error.
	Cache ResultCache
	// OnUnit, when non-nil, receives one structured event per unit as
	// it completes (or is skipped after a failure/cancellation). It is
	// the machine-readable twin of Progress: called on the coordinating
	// goroutine, in completion order, so implementations need no
	// locking but must not block for long — the sweep's emit frontier
	// waits behind it. The daemon uses it to stream progress to HTTP
	// clients.
	OnUnit func(UnitEvent)
}

// UnitEvent describes one unit's completion for Engine.OnUnit.
type UnitEvent struct {
	// Job and Unit name the completed unit.
	Job, Unit string
	// Completed counts units finished so far (this one included);
	// Total is the sweep's unit count. Completed never skips numbers:
	// skipped and failed units count too.
	Completed, Total int
	// Skipped marks a unit abandoned after an earlier failure or a
	// context cancellation; its Err is nil and it did not run.
	Skipped bool
	// Err is the unit's failure, nil on success and on skip.
	Err error
	// Elapsed is the unit's wall time (zero when skipped).
	Elapsed time.Duration
}

// cacheCounters holds the resolved "resultcache" metric handles; all
// nil-safe no-ops when the engine has no registry.
type cacheCounters struct {
	hits, misses, stores           *obs.Counter
	bytesRead, bytesWritten        *obs.Counter
	decodeFailures, encodeFailures *obs.Counter
}

func (e *Engine) cacheCounters() cacheCounters {
	return cacheCounters{
		hits:           e.Obs.Counter("resultcache", "hits"),
		misses:         e.Obs.Counter("resultcache", "misses"),
		stores:         e.Obs.Counter("resultcache", "stores"),
		bytesRead:      e.Obs.Counter("resultcache", "bytes_read"),
		bytesWritten:   e.Obs.Counter("resultcache", "bytes_written"),
		decodeFailures: e.Obs.Counter("resultcache", "decode_failures"),
		encodeFailures: e.Obs.Counter("resultcache", "encode_failures"),
	}
}

// execUnit runs one unit through the result cache when the unit is
// cacheable, otherwise directly. Acquire single-flights the key for
// the whole lookup-or-compute-and-store span, so N concurrent units
// sharing a key cost one computation and N-1 decodes.
func (e *Engine) execUnit(u *Unit, cc *cacheCounters) (interface{}, error) {
	if e.Cache == nil || u.Key == "" || u.Codec == nil {
		return u.Run()
	}
	release := e.Cache.Acquire(u.Key)
	defer release()
	if data, ok := e.Cache.Get(u.Key); ok {
		cc.bytesRead.Add(int64(len(data)))
		if v, err := u.Codec.Decode(data); err == nil {
			cc.hits.Inc()
			return v, nil
		}
		// Stale schema, foreign type, or garbled gob: recompute and
		// overwrite. Never an error, never a wrong result.
		cc.decodeFailures.Inc()
	}
	cc.misses.Inc()
	v, err := u.Run()
	if err != nil {
		return nil, err
	}
	if data, encErr := u.Codec.Encode(v); encErr == nil {
		if e.Cache.Put(u.Key, data) == nil {
			cc.stores.Inc()
			cc.bytesWritten.Add(int64(len(data)))
		}
	} else {
		cc.encodeFailures.Inc()
	}
	return v, nil
}

// errCanceled marks units skipped after the first failure.
var errCanceled = errors.New("sweep: canceled")

// task addresses one unit in the flattened schedule.
type task struct{ job, unit int }

type completion struct {
	t   task
	val interface{}
	err error
	dur time.Duration
}

// Run executes every unit of every job across the worker pool and
// calls emit for each job, in job order, as soon as the job's units
// and every earlier job are complete (so output streams during the
// sweep). It returns the first unit or assembly error; emit may have
// been called for jobs that finished before the failure.
func (e *Engine) Run(jobs []Job, emit func(JobResult) error) error {
	return e.RunContext(context.Background(), jobs, emit)
}

// RunContext is Run with cancellation: when ctx is canceled the engine
// stops scheduling units — workers skip everything still queued (each
// skip accounted exactly like a post-failure skip: counted, traced,
// and printed so [completed/total] never skips numbers) — in-flight
// units run to completion, and RunContext returns ctx.Err(). Jobs
// whose every unit completed are still assembled and emitted; a job
// with any skipped unit never assembles, so no partially assembled
// job is ever emitted, and a skipped cacheable unit leaves no result-
// store entry (it never ran). An abandoned HTTP request cancels its
// sweep this way, freeing the worker pool for the next queued run.
func (e *Engine) RunContext(ctx context.Context, jobs []Job, emit func(JobResult) error) error {
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}

	var tasks []task
	for ji := range jobs {
		for ui := range jobs[ji].Units {
			tasks = append(tasks, task{ji, ui})
		}
	}
	if workers > len(tasks) && len(tasks) > 0 {
		workers = len(tasks)
	}

	// Metric handles are resolved once here; all of them are nil-safe
	// no-ops when e.Obs / e.Trace are nil.
	cCompleted := e.Obs.Counter("sweep", "units_completed")
	cFailed := e.Obs.Counter("sweep", "units_failed")
	cSkipped := e.Obs.Counter("sweep", "units_skipped")
	cEmitted := e.Obs.Counter("sweep", "jobs_emitted")
	rJob := e.Obs.Running("sweep", "job_seconds")
	gQueue := e.Obs.Gauge("sweep", "queue_depth")
	gQueueMax := e.Obs.Gauge("sweep", "queue_depth_max")
	e.Obs.Gauge("sweep", "workers").Set(int64(workers))
	e.Obs.Counter("sweep", "units_total").Add(int64(len(tasks)))
	cc := e.cacheCounters()

	// queue_depth tracks outstanding (queued + running) units live and
	// queue_depth_max is its high-water mark: it rises as tasks are
	// submitted below and falls as completions drain, so it reads as
	// the largest concurrent batch across every Run sharing a registry
	// (e.g. a design-space search's nested GSPN stage) and returns to
	// zero when all sweeps are done.
	taskCh := make(chan task, len(tasks))
	for _, t := range tasks {
		taskCh <- t
		gQueueMax.SetMax(gQueue.Add(1))
	}
	close(taskCh)

	doneCh := make(chan completion, workers+1)
	var stop atomic.Bool
	var wg sync.WaitGroup
	// Per-worker duration accumulators, merged after the run: sharded
	// so the hot path takes no lock. Trace shards are per-worker for
	// the same reason (Emit is single-goroutine by contract).
	durs := make([]stats.Running, workers)
	shards := make([]*obs.Shard, workers)
	if e.Trace != nil {
		for w := range shards {
			shards[w] = e.Trace.Shard(fmt.Sprintf("worker-%d", w))
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for t := range taskCh {
				if stop.Load() || ctx.Err() != nil {
					shards[w].Emit("unit_skipped", jobs[t.job].Units[t.unit].Name, int64(t.job), int64(t.unit))
					doneCh <- completion{t: t, err: errCanceled}
					continue
				}
				shards[w].Emit("unit_start", jobs[t.job].Units[t.unit].Name, int64(t.job), int64(t.unit))
				start := time.Now()
				v, err := e.execUnit(&jobs[t.job].Units[t.unit], &cc)
				d := time.Since(start)
				durs[w].Add(d.Seconds())
				if err != nil {
					shards[w].Emit("unit_failed", jobs[t.job].Units[t.unit].Name, int64(t.job), d.Microseconds())
				} else {
					shards[w].Emit("unit_done", jobs[t.job].Units[t.unit].Name, int64(t.job), d.Microseconds())
				}
				doneCh <- completion{t: t, val: v, err: err, dur: d}
			}
		}(w)
	}

	parts := make([][]interface{}, len(jobs))
	elapsed := make([]time.Duration, len(jobs))
	remaining := make([]int, len(jobs))
	for ji := range jobs {
		parts[ji] = make([]interface{}, len(jobs[ji].Units))
		remaining[ji] = len(jobs[ji].Units)
	}

	start := time.Now()
	next := 0 // frontier: next job to assemble and emit
	var firstErr error

	// flush assembles and emits every complete job at the frontier.
	flush := func() {
		for next < len(jobs) && remaining[next] == 0 && firstErr == nil {
			j := jobs[next]
			v, err := j.Assemble(parts[next])
			if err != nil {
				firstErr = fmt.Errorf("%s: %w", j.Name, err)
				stop.Store(true)
				return
			}
			if emit != nil {
				if err := emit(JobResult{Name: j.Name, Value: v, Units: len(j.Units), Elapsed: elapsed[next]}); err != nil {
					// Wrapped with the job name just like Assemble
					// errors, so callers see which job's emit failed.
					firstErr = fmt.Errorf("%s: %w", j.Name, err)
					stop.Store(true)
					return
				}
			}
			cEmitted.Inc()
			rJob.Add(elapsed[next].Seconds())
			parts[next] = nil // release partials once assembled
			next++
		}
	}
	flush() // zero-unit jobs at the head of the queue

	completed := 0
	for range tasks {
		c := <-doneCh
		completed++
		gQueue.Add(-1)
		ev := UnitEvent{
			Job:       jobs[c.t.job].Name,
			Unit:      jobs[c.t.job].Units[c.t.unit].Name,
			Completed: completed,
			Total:     len(tasks),
		}
		switch {
		case c.err == nil:
			parts[c.t.job][c.t.unit] = c.val
			elapsed[c.t.job] += c.dur
			remaining[c.t.job]--
			cCompleted.Inc()
			if e.Progress != nil {
				fmt.Fprintf(e.Progress, "sweep: [%d/%d] %s (%.2fs)\n",
					completed, len(tasks), jobs[c.t.job].Units[c.t.unit].Name, c.dur.Seconds())
			}
			ev.Elapsed = c.dur
			if e.OnUnit != nil {
				e.OnUnit(ev)
			}
			flush()
		case errors.Is(c.err, errCanceled):
			// Canceled after an earlier failure or a context
			// cancellation. The unit still counts toward
			// [completed/total] — print it, so the counter the user
			// watches never skips numbers.
			cSkipped.Inc()
			if e.Progress != nil {
				fmt.Fprintf(e.Progress, "sweep: [%d/%d] %s skipped\n",
					completed, len(tasks), jobs[c.t.job].Units[c.t.unit].Name)
			}
			ev.Skipped = true
			if e.OnUnit != nil {
				e.OnUnit(ev)
			}
		default:
			cFailed.Inc()
			if e.Progress != nil {
				fmt.Fprintf(e.Progress, "sweep: [%d/%d] %s failed: %v\n",
					completed, len(tasks), jobs[c.t.job].Units[c.t.unit].Name, c.err)
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", jobs[c.t.job].Units[c.t.unit].Name, c.err)
				stop.Store(true)
			}
			ev.Err = c.err
			ev.Elapsed = c.dur
			if e.OnUnit != nil {
				e.OnUnit(ev)
			}
		}
	}
	wg.Wait()

	// Fold the per-worker duration shards into one accumulator for the
	// summary line and the metrics registry — on failure too, so a
	// metrics dump of a failed sweep still reports the work done.
	var all stats.Running
	for i := range durs {
		all.Merge(durs[i])
	}
	e.Obs.Running("sweep", "unit_seconds").Merge(all)

	if firstErr != nil {
		return firstErr
	}
	// A canceled sweep reports the cancellation, not success: whatever
	// was skipped is missing from the output, and callers (the daemon)
	// key their run state off errors.Is(err, context.Canceled).
	if err := ctx.Err(); err != nil {
		return err
	}
	flush() // jobs with zero units after the last task
	if firstErr != nil {
		return firstErr
	}

	if e.Progress != nil && len(tasks) > 0 {
		fmt.Fprintf(e.Progress,
			"sweep: %d units on %d workers in %.2fs (unit mean %.2fs, max %.2fs)\n",
			len(tasks), workers, time.Since(start).Seconds(), all.Mean(), all.Max())
	}
	return nil
}

// RunJob runs a single job through the engine and returns its
// assembled value. It is the one-job convenience over Run, used by
// multi-stage experiments (the design-space search) that fan nested
// stages — refinement rounds, screened GSPN evaluations — back through
// the engine instead of hand-rolling goroutine pools.
func (e *Engine) RunJob(j Job) (interface{}, error) {
	return e.RunJobContext(context.Background(), j)
}

// RunJobContext is RunJob with cancellation, so nested sweeps (the
// designspace GSPN stage) abandon their queued units when the outer
// run's context is canceled instead of finishing minutes of dead work.
func (e *Engine) RunJobContext(ctx context.Context, j Job) (interface{}, error) {
	var out interface{}
	err := e.RunContext(ctx, []Job{j}, func(r JobResult) error {
		out = r.Value
		return nil
	})
	return out, err
}

// RunSerial executes one job's units in order on the calling
// goroutine and assembles the result. It is the serial reference
// implementation: Engine.Run with any worker count produces the same
// values. The monolithic experiment functions are wrappers over this,
// so the CLI sweep and the direct API share one code path.
func RunSerial(j Job) (interface{}, error) {
	parts := make([]interface{}, len(j.Units))
	for i, u := range j.Units {
		v, err := u.Run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", u.Name, err)
		}
		parts[i] = v
	}
	return j.Assemble(parts)
}
