package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// slowFirst builds a job whose first unit finishes last under a
// parallel pool, so emission order is exercised against completion
// order.
func slowFirst(name string, n int) Job {
	units := make([]Unit, n)
	for i := range units {
		i := i
		d := time.Duration(n-i) * time.Millisecond
		units[i] = Unit{
			Name: fmt.Sprintf("%s/u%d", name, i),
			Run: func() (interface{}, error) {
				time.Sleep(d)
				return i * i, nil
			},
		}
	}
	return Job{Name: name, Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		sum := 0
		for _, p := range parts {
			sum += p.(int)
		}
		return sum, nil
	}}
}

func runAll(t *testing.T, workers int, jobs []Job) []JobResult {
	t.Helper()
	var got []JobResult
	e := &Engine{Workers: workers}
	if err := e.Run(jobs, func(r JobResult) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return got
}

// TestOrderingAcrossWorkerCounts: jobs are emitted in submission order
// with identical values regardless of the worker count, even when unit
// completion order is reversed by construction.
func TestOrderingAcrossWorkerCounts(t *testing.T) {
	mk := func() []Job {
		return []Job{slowFirst("a", 5), slowFirst("b", 3), slowFirst("c", 4)}
	}
	ref := runAll(t, 1, mk())
	if len(ref) != 3 {
		t.Fatalf("got %d results, want 3", len(ref))
	}
	for _, workers := range []int{2, 4, 16} {
		got := runAll(t, workers, mk())
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Name != ref[i].Name || !reflect.DeepEqual(got[i].Value, ref[i].Value) ||
				got[i].Units != ref[i].Units {
				t.Errorf("workers=%d job %d: got (%s, %v, %d), want (%s, %v, %d)",
					workers, i, got[i].Name, got[i].Value, got[i].Units,
					ref[i].Name, ref[i].Value, ref[i].Units)
			}
		}
	}
}

// TestRunSerialParity: Engine.Run and RunSerial assemble the same
// values from the same job.
func TestRunSerialParity(t *testing.T) {
	serial, err := RunSerial(slowFirst("p", 4))
	if err != nil {
		t.Fatal(err)
	}
	got := runAll(t, 8, []Job{slowFirst("p", 4)})
	if !reflect.DeepEqual(got[0].Value, serial) {
		t.Errorf("parallel %v != serial %v", got[0].Value, serial)
	}
}

// TestErrorPropagation: the first failing unit's name wraps the error,
// later units are canceled, and no further jobs are emitted.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ranLate sync.Mutex
	late := 0
	jobs := []Job{
		{
			Name: "bad",
			Units: []Unit{
				{Name: "bad/ok", Run: func() (interface{}, error) { return 1, nil }},
				{Name: "bad/fail", Run: func() (interface{}, error) { return nil, boom }},
			},
			Assemble: func(parts []interface{}) (interface{}, error) { return parts, nil },
		},
	}
	// Cancellation is best-effort: the stop flag is set by the
	// coordinator after it sees the failure, so a unit already pulled by
	// a worker may still run. With many slow trailing units the flag
	// must land well before the queue drains.
	const trailing = 50
	afterUnits := make([]Unit, trailing)
	for i := range afterUnits {
		afterUnits[i] = Unit{
			Name: fmt.Sprintf("after/u%d", i),
			Run: func() (interface{}, error) {
				time.Sleep(time.Millisecond)
				ranLate.Lock()
				late++
				ranLate.Unlock()
				return 2, nil
			},
		}
	}
	jobs = append(jobs, Job{
		Name:     "after",
		Units:    afterUnits,
		Assemble: func(parts []interface{}) (interface{}, error) { return len(parts), nil },
	})
	var emitted []string
	e := &Engine{Workers: 1}
	err := e.Run(jobs, func(r JobResult) error {
		emitted = append(emitted, r.Name)
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "bad/fail") {
		t.Errorf("error %q does not name the failing unit", err)
	}
	if len(emitted) != 0 {
		t.Errorf("emitted %v after failure, want none", emitted)
	}
	ranLate.Lock()
	defer ranLate.Unlock()
	if late >= trailing {
		t.Errorf("all %d trailing units ran after the failure, want cancellation", trailing)
	}
}

// TestAssembleError: an assembly failure is reported with the job name.
func TestAssembleError(t *testing.T) {
	j := Job{
		Name:  "asm",
		Units: []Unit{{Name: "asm/u", Run: func() (interface{}, error) { return 1, nil }}},
		Assemble: func(parts []interface{}) (interface{}, error) {
			return nil, errors.New("mismatch")
		},
	}
	e := &Engine{Workers: 2}
	err := e.Run([]Job{j}, nil)
	if err == nil || !strings.Contains(err.Error(), "asm") {
		t.Fatalf("err = %v, want assembly error naming job", err)
	}
}

// TestEmitError: an emit failure stops the sweep and is returned,
// wrapped with the job name exactly like Assemble errors are.
func TestEmitError(t *testing.T) {
	stop := errors.New("emit failed")
	e := &Engine{Workers: 2}
	err := e.Run([]Job{slowFirst("x", 2)}, func(JobResult) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want emit error", err)
	}
	if !strings.Contains(err.Error(), "x:") {
		t.Errorf("emit error %q does not name the job like Assemble errors do", err)
	}
}

// TestMoreWorkersThanUnits: worker count far above the unit count.
func TestMoreWorkersThanUnits(t *testing.T) {
	got := runAll(t, 64, []Job{slowFirst("w", 2)})
	if len(got) != 1 || got[0].Value.(int) != 1 {
		t.Fatalf("got %+v", got)
	}
}

// TestZeroUnitJobs: empty jobs assemble and emit in order, including
// at the head, middle, and tail of the queue, and with no jobs at all.
func TestZeroUnitJobs(t *testing.T) {
	empty := func(name string) Job {
		return Job{Name: name, Assemble: func(parts []interface{}) (interface{}, error) {
			if len(parts) != 0 {
				return nil, fmt.Errorf("got %d parts", len(parts))
			}
			return name, nil
		}}
	}
	got := runAll(t, 4, []Job{empty("head"), slowFirst("mid", 2), empty("in"), empty("tail")})
	names := make([]string, len(got))
	for i, r := range got {
		names[i] = r.Name
	}
	want := []string{"head", "mid", "in", "tail"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("emit order %v, want %v", names, want)
	}

	if got := runAll(t, 4, nil); len(got) != 0 {
		t.Errorf("no jobs: emitted %d results", len(got))
	}
}

// TestSingle: Single wraps a function as a one-unit job.
func TestSingle(t *testing.T) {
	j := Single("one", 7, func() (interface{}, error) { return "v", nil })
	if len(j.Units) != 1 || j.Units[0].Seed != 7 {
		t.Fatalf("bad job %+v", j)
	}
	v, err := RunSerial(j)
	if err != nil || v != "v" {
		t.Fatalf("RunSerial = %v, %v", v, err)
	}
}

// TestProgress: one line per unit plus a summary, on the progress
// writer only.
func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	e := &Engine{Workers: 2, Progress: &buf}
	if err := e.Run([]Job{slowFirst("p", 3)}, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d progress lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, l := range lines[:3] {
		if !strings.HasPrefix(l, "sweep: [") {
			t.Errorf("unit line %q", l)
		}
	}
	if !strings.Contains(lines[3], "3 units on 2 workers") {
		t.Errorf("summary line %q", lines[3])
	}
}

// TestProgressUnderFailure: after a unit fails, the [completed/total]
// counter keeps counting — the failed unit prints a "failed" line and
// canceled units print "skipped" lines, so the numbering never skips.
func TestProgressUnderFailure(t *testing.T) {
	boom := errors.New("boom")
	units := []Unit{
		{Name: "f/fail", Run: func() (interface{}, error) { return nil, boom }},
	}
	const trailing = 30
	for i := 0; i < trailing; i++ {
		units = append(units, Unit{
			Name: fmt.Sprintf("f/u%d", i),
			Run: func() (interface{}, error) {
				time.Sleep(time.Millisecond)
				return 0, nil
			},
		})
	}
	job := Job{Name: "f", Units: units,
		Assemble: func(parts []interface{}) (interface{}, error) { return nil, nil }}

	var buf bytes.Buffer
	e := &Engine{Workers: 1, Progress: &buf}
	if err := e.Run([]Job{job}, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	out := buf.String()
	total := trailing + 1
	// Every completion number appears exactly once: no gaps in the
	// counter even though most units were canceled.
	for i := 1; i <= total; i++ {
		marker := fmt.Sprintf("[%d/%d]", i, total)
		if strings.Count(out, marker) != 1 {
			t.Errorf("progress counter %s missing or duplicated:\n%s", marker, out)
		}
	}
	if !strings.Contains(out, "f/fail failed: boom") {
		t.Errorf("no failed line for the failing unit:\n%s", out)
	}
	// Cancellation is best-effort, but with 30 slow trailing units on
	// one worker at least one must be skipped after the stop flag lands.
	if !strings.Contains(out, "skipped") {
		t.Errorf("no skipped lines after failure:\n%s", out)
	}
}

// TestEngineObs: the engine publishes unit/job accounting into the
// registry and per-unit events into the tracer.
func TestEngineObs(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	e := &Engine{Workers: 2, Obs: reg, Trace: tr}
	jobs := []Job{slowFirst("a", 3), slowFirst("b", 2)}
	if err := e.Run(jobs, func(JobResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"units_total":     5,
		"units_completed": 5,
		"units_failed":    0,
		"units_skipped":   0,
		"jobs_emitted":    2,
	} {
		if got := reg.Counter("sweep", name).Value(); got != want {
			t.Errorf("sweep/%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("sweep", "workers").Value(); got != 2 {
		t.Errorf("workers gauge = %d, want 2", got)
	}
	snap := reg.Running("sweep", "unit_seconds").Snapshot()
	if snap.N() != 5 {
		t.Errorf("unit_seconds n = %d, want 5", snap.N())
	}
	var trace bytes.Buffer
	if err := tr.Drain(&trace); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(trace.String(), "unit_start"); got != 5 {
		t.Errorf("unit_start events = %d, want 5:\n%s", got, trace.String())
	}
	if got := strings.Count(trace.String(), "unit_done"); got != 5 {
		t.Errorf("unit_done events = %d, want 5:\n%s", got, trace.String())
	}
}

// mapCache is an in-memory ResultCache for engine tests.
type mapCache struct {
	mu   sync.Mutex
	m    map[string][]byte
	held map[string]bool
	// overlap is set if two holders ever acquire one key concurrently.
	overlap bool
}

func newMapCache() *mapCache {
	return &mapCache{m: map[string][]byte{}, held: map[string]bool{}}
}

func (c *mapCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.m[key]
	return b, ok
}

func (c *mapCache) Put(key string, data []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = append([]byte(nil), data...)
	return nil
}

func (c *mapCache) Acquire(key string) func() {
	for {
		c.mu.Lock()
		if !c.held[key] {
			c.held[key] = true
			c.mu.Unlock()
			return func() {
				c.mu.Lock()
				c.held[key] = false
				c.mu.Unlock()
			}
		}
		c.overlap = true
		c.mu.Unlock()
		time.Sleep(100 * time.Microsecond)
	}
}

// intCodec encodes ints as decimal strings.
type intCodec struct{}

func (intCodec) Encode(v interface{}) ([]byte, error) {
	return []byte(fmt.Sprintf("%d", v.(int))), nil
}

func (intCodec) Decode(data []byte) (interface{}, error) {
	var n int
	if _, err := fmt.Sscanf(string(data), "%d", &n); err != nil {
		return nil, err
	}
	return n, nil
}

// cachedJob builds a job of n keyed units that count their executions.
func cachedJob(name string, n int, ran *int64) Job {
	units := make([]Unit, n)
	for i := range units {
		i := i
		units[i] = Unit{
			Name:  fmt.Sprintf("%s/u%d", name, i),
			Key:   fmt.Sprintf("%s-u%d-key", name, i),
			Codec: intCodec{},
			Run: func() (interface{}, error) {
				atomic.AddInt64(ran, 1)
				return i * i, nil
			},
		}
	}
	return Job{Name: name, Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		sum := 0
		for _, p := range parts {
			sum += p.(int)
		}
		return sum, nil
	}}
}

// TestEngineCache: a cold run computes and stores every keyed unit; a
// warm run decodes every one without calling Run, with identical
// assembled values, and the resultcache metrics account for both.
func TestEngineCache(t *testing.T) {
	cache := newMapCache()
	reg := obs.NewRegistry()
	var ran int64

	e := &Engine{Workers: 4, Cache: cache, Obs: reg}
	cold, err := e.RunJob(cachedJob("c", 6, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran != 6 {
		t.Fatalf("cold run executed %d units, want 6", ran)
	}
	for name, want := range map[string]int64{
		"hits": 0, "misses": 6, "stores": 6, "decode_failures": 0,
	} {
		if got := reg.Counter("resultcache", name).Value(); got != want {
			t.Errorf("cold resultcache/%s = %d, want %d", name, got, want)
		}
	}

	warm, err := e.RunJob(cachedJob("c", 6, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if ran != 6 {
		t.Errorf("warm run executed %d more units, want 0", ran-6)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm value %v != cold value %v", warm, cold)
	}
	if got := reg.Counter("resultcache", "hits").Value(); got != 6 {
		t.Errorf("warm hits = %d, want 6", got)
	}
	if got := reg.Counter("resultcache", "bytes_read").Value(); got == 0 {
		t.Error("bytes_read stayed 0 across a warm run")
	}
	if got := reg.Counter("resultcache", "bytes_written").Value(); got == 0 {
		t.Error("bytes_written stayed 0 across a cold run")
	}
	if cache.overlap {
		t.Error("two units held one key concurrently")
	}
}

// TestEngineCacheDecodeFailure: a corrupt entry is a counted miss that
// recomputes and heals the cache — never an error, never a wrong value.
func TestEngineCacheDecodeFailure(t *testing.T) {
	cache := newMapCache()
	reg := obs.NewRegistry()
	var ran int64

	e := &Engine{Workers: 2, Cache: cache, Obs: reg}
	if _, err := e.RunJob(cachedJob("d", 3, &ran)); err != nil {
		t.Fatal(err)
	}
	for k := range cache.m {
		cache.m[k] = []byte("not a number")
	}
	v, err := e.RunJob(cachedJob("d", 3, &ran))
	if err != nil {
		t.Fatal(err)
	}
	if v.(int) != 0+1+4 {
		t.Errorf("value after corruption = %v, want 5", v)
	}
	if ran != 6 {
		t.Errorf("corrupt entries recomputed %d units, want 3", ran-3)
	}
	if got := reg.Counter("resultcache", "decode_failures").Value(); got != 3 {
		t.Errorf("decode_failures = %d, want 3", got)
	}
	// The recompute overwrote the corrupt entries: a third run hits.
	if _, err := e.RunJob(cachedJob("d", 3, &ran)); err != nil {
		t.Fatal(err)
	}
	if ran != 6 {
		t.Errorf("run after heal executed %d more units, want 0", ran-6)
	}
}

// TestEngineCacheUnkeyedUnits: units without Key or Codec bypass the
// cache entirely.
func TestEngineCacheUnkeyedUnits(t *testing.T) {
	cache := newMapCache()
	var ran int64
	mk := func() Job {
		return Job{Name: "u", Units: []Unit{{
			Name: "u/plain",
			Run: func() (interface{}, error) {
				atomic.AddInt64(&ran, 1)
				return 7, nil
			},
		}}, Assemble: func(parts []interface{}) (interface{}, error) { return parts[0], nil }}
	}
	e := &Engine{Workers: 1, Cache: cache}
	for i := 0; i < 2; i++ {
		if _, err := e.RunJob(mk()); err != nil {
			t.Fatal(err)
		}
	}
	if ran != 2 {
		t.Errorf("unkeyed unit ran %d times, want 2 (no caching)", ran)
	}
	if len(cache.m) != 0 {
		t.Errorf("unkeyed unit stored %d entries", len(cache.m))
	}
}

// TestQueueDepth: queue_depth_max records the true high-water mark of
// outstanding units (not a one-shot len(tasks) stamp) and queue_depth
// drains back to zero; a smaller later run on the same registry leaves
// the mark at the larger batch.
func TestQueueDepth(t *testing.T) {
	reg := obs.NewRegistry()
	e := &Engine{Workers: 2, Obs: reg}
	if err := e.Run([]Job{slowFirst("big", 5)}, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("sweep", "queue_depth_max").Value(); got != 5 {
		t.Errorf("queue_depth_max = %d, want 5", got)
	}
	if got := reg.Gauge("sweep", "queue_depth").Value(); got != 0 {
		t.Errorf("queue_depth after run = %d, want 0", got)
	}
	if err := e.Run([]Job{slowFirst("small", 2)}, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("sweep", "queue_depth_max").Value(); got != 5 {
		t.Errorf("queue_depth_max after smaller run = %d, want 5 (high-water)", got)
	}
	if got := reg.Gauge("sweep", "queue_depth").Value(); got != 0 {
		t.Errorf("queue_depth after second run = %d, want 0", got)
	}
}

// TestRunContextCancel: canceling mid-sweep skips everything still
// queued with the same accounting as post-failure skips (counted,
// printed, [completed/total] never skips numbers), leaves no cache
// entry for a unit that never ran, and returns ctx.Err().
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cache := newMapCache()
	reg := obs.NewRegistry()
	var progress bytes.Buffer

	started := make(chan struct{}, 2)
	release := make(chan struct{})
	var lateRan int64
	units := make([]Unit, 4)
	for i := range units {
		i := i
		units[i] = Unit{
			Name:  fmt.Sprintf("cancel/u%d", i),
			Key:   fmt.Sprintf("cancel-u%d-key", i),
			Codec: intCodec{},
		}
		if i < 2 {
			units[i].Run = func() (interface{}, error) {
				started <- struct{}{}
				<-release
				return i, nil
			}
		} else {
			units[i].Run = func() (interface{}, error) {
				atomic.AddInt64(&lateRan, 1)
				return i, nil
			}
		}
	}
	job := Job{Name: "cancel", Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		return len(parts), nil
	}}

	emitted := 0
	e := &Engine{Workers: 2, Progress: &progress, Obs: reg, Cache: cache}
	errCh := make(chan error, 1)
	go func() {
		errCh <- e.RunContext(ctx, []Job{job}, func(JobResult) error {
			emitted++
			return nil
		})
	}()
	<-started
	<-started // both workers are mid-unit; units 2 and 3 still queued
	cancel()
	close(release)
	err := <-errCh

	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
	if lateRan != 0 {
		t.Errorf("queued units ran %d times after cancellation, want 0", lateRan)
	}
	if emitted != 0 {
		t.Errorf("job with skipped units was emitted %d times, want 0", emitted)
	}
	if got := reg.Counter("sweep", "units_skipped").Value(); got != 2 {
		t.Errorf("units_skipped = %d, want 2", got)
	}
	if got := reg.Counter("sweep", "units_completed").Value(); got != 2 {
		t.Errorf("units_completed = %d, want 2", got)
	}
	out := progress.String()
	for _, want := range []string{"[4/4]", "skipped"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}
	// In-flight units committed their results; skipped units must not
	// have partial (or any) entries.
	for i, u := range units {
		_, ok := cache.m[u.Key]
		if want := i < 2; ok != want {
			t.Errorf("cache entry for %s: present=%v, want %v", u.Name, ok, want)
		}
	}
}

// TestRunContextPreCanceled: a sweep started with an already-canceled
// context runs nothing, skips every unit, and emits no job.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	e := &Engine{Workers: 4}
	v, err := e.RunJobContext(ctx, cachedJob("pre", 6, &ran))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunJobContext = (%v, %v), want context.Canceled", v, err)
	}
	if ran != 0 {
		t.Errorf("%d units ran under a pre-canceled context", ran)
	}
	if v != nil {
		t.Errorf("canceled job returned a value: %v", v)
	}
}

// TestOnUnitEvents: OnUnit receives one event per unit in completion
// order, with Completed counting 1..Total and failures/skips marked.
func TestOnUnitEvents(t *testing.T) {
	boom := errors.New("boom")
	jobs := []Job{
		slowFirst("ok", 2),
		{Name: "bad", Units: []Unit{{Name: "bad/u0", Run: func() (interface{}, error) {
			return nil, boom
		}}}},
		slowFirst("after", 2),
	}
	var events []UnitEvent
	e := &Engine{Workers: 1, OnUnit: func(ev UnitEvent) { events = append(events, ev) }}
	err := e.Run(jobs, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want boom", err)
	}
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5: %+v", len(events), events)
	}
	var failed, skipped, completed int
	for i, ev := range events {
		if ev.Completed != i+1 || ev.Total != 5 {
			t.Errorf("event %d: Completed/Total = %d/%d, want %d/5", i, ev.Completed, ev.Total, i+1)
		}
		switch {
		case ev.Err != nil:
			failed++
			if ev.Job != "bad" {
				t.Errorf("failure attributed to job %q, want bad", ev.Job)
			}
		case ev.Skipped:
			skipped++
		default:
			completed++
			if ev.Elapsed < 0 {
				t.Errorf("event %d: negative Elapsed", i)
			}
		}
	}
	// The stop flag is advisory for the worker loop, so how many of the
	// trailing units run vs skip is timing-dependent; the invariant is
	// that every unit is accounted exactly once.
	if failed != 1 || completed+skipped != 4 {
		t.Errorf("completed/failed/skipped = %d/%d/%d, want 1 failure and 4 others", completed, failed, skipped)
	}
}
