package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// slowFirst builds a job whose first unit finishes last under a
// parallel pool, so emission order is exercised against completion
// order.
func slowFirst(name string, n int) Job {
	units := make([]Unit, n)
	for i := range units {
		i := i
		d := time.Duration(n-i) * time.Millisecond
		units[i] = Unit{
			Name: fmt.Sprintf("%s/u%d", name, i),
			Run: func() (interface{}, error) {
				time.Sleep(d)
				return i * i, nil
			},
		}
	}
	return Job{Name: name, Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		sum := 0
		for _, p := range parts {
			sum += p.(int)
		}
		return sum, nil
	}}
}

func runAll(t *testing.T, workers int, jobs []Job) []JobResult {
	t.Helper()
	var got []JobResult
	e := &Engine{Workers: workers}
	if err := e.Run(jobs, func(r JobResult) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return got
}

// TestOrderingAcrossWorkerCounts: jobs are emitted in submission order
// with identical values regardless of the worker count, even when unit
// completion order is reversed by construction.
func TestOrderingAcrossWorkerCounts(t *testing.T) {
	mk := func() []Job {
		return []Job{slowFirst("a", 5), slowFirst("b", 3), slowFirst("c", 4)}
	}
	ref := runAll(t, 1, mk())
	if len(ref) != 3 {
		t.Fatalf("got %d results, want 3", len(ref))
	}
	for _, workers := range []int{2, 4, 16} {
		got := runAll(t, workers, mk())
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Name != ref[i].Name || !reflect.DeepEqual(got[i].Value, ref[i].Value) ||
				got[i].Units != ref[i].Units {
				t.Errorf("workers=%d job %d: got (%s, %v, %d), want (%s, %v, %d)",
					workers, i, got[i].Name, got[i].Value, got[i].Units,
					ref[i].Name, ref[i].Value, ref[i].Units)
			}
		}
	}
}

// TestRunSerialParity: Engine.Run and RunSerial assemble the same
// values from the same job.
func TestRunSerialParity(t *testing.T) {
	serial, err := RunSerial(slowFirst("p", 4))
	if err != nil {
		t.Fatal(err)
	}
	got := runAll(t, 8, []Job{slowFirst("p", 4)})
	if !reflect.DeepEqual(got[0].Value, serial) {
		t.Errorf("parallel %v != serial %v", got[0].Value, serial)
	}
}

// TestErrorPropagation: the first failing unit's name wraps the error,
// later units are canceled, and no further jobs are emitted.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ranLate sync.Mutex
	late := 0
	jobs := []Job{
		{
			Name: "bad",
			Units: []Unit{
				{Name: "bad/ok", Run: func() (interface{}, error) { return 1, nil }},
				{Name: "bad/fail", Run: func() (interface{}, error) { return nil, boom }},
			},
			Assemble: func(parts []interface{}) (interface{}, error) { return parts, nil },
		},
	}
	// Cancellation is best-effort: the stop flag is set by the
	// coordinator after it sees the failure, so a unit already pulled by
	// a worker may still run. With many slow trailing units the flag
	// must land well before the queue drains.
	const trailing = 50
	afterUnits := make([]Unit, trailing)
	for i := range afterUnits {
		afterUnits[i] = Unit{
			Name: fmt.Sprintf("after/u%d", i),
			Run: func() (interface{}, error) {
				time.Sleep(time.Millisecond)
				ranLate.Lock()
				late++
				ranLate.Unlock()
				return 2, nil
			},
		}
	}
	jobs = append(jobs, Job{
		Name:     "after",
		Units:    afterUnits,
		Assemble: func(parts []interface{}) (interface{}, error) { return len(parts), nil },
	})
	var emitted []string
	e := &Engine{Workers: 1}
	err := e.Run(jobs, func(r JobResult) error {
		emitted = append(emitted, r.Name)
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "bad/fail") {
		t.Errorf("error %q does not name the failing unit", err)
	}
	if len(emitted) != 0 {
		t.Errorf("emitted %v after failure, want none", emitted)
	}
	ranLate.Lock()
	defer ranLate.Unlock()
	if late >= trailing {
		t.Errorf("all %d trailing units ran after the failure, want cancellation", trailing)
	}
}

// TestAssembleError: an assembly failure is reported with the job name.
func TestAssembleError(t *testing.T) {
	j := Job{
		Name:  "asm",
		Units: []Unit{{Name: "asm/u", Run: func() (interface{}, error) { return 1, nil }}},
		Assemble: func(parts []interface{}) (interface{}, error) {
			return nil, errors.New("mismatch")
		},
	}
	e := &Engine{Workers: 2}
	err := e.Run([]Job{j}, nil)
	if err == nil || !strings.Contains(err.Error(), "asm") {
		t.Fatalf("err = %v, want assembly error naming job", err)
	}
}

// TestEmitError: an emit failure stops the sweep and is returned.
func TestEmitError(t *testing.T) {
	stop := errors.New("emit failed")
	e := &Engine{Workers: 2}
	err := e.Run([]Job{slowFirst("x", 2)}, func(JobResult) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want emit error", err)
	}
}

// TestMoreWorkersThanUnits: worker count far above the unit count.
func TestMoreWorkersThanUnits(t *testing.T) {
	got := runAll(t, 64, []Job{slowFirst("w", 2)})
	if len(got) != 1 || got[0].Value.(int) != 1 {
		t.Fatalf("got %+v", got)
	}
}

// TestZeroUnitJobs: empty jobs assemble and emit in order, including
// at the head, middle, and tail of the queue, and with no jobs at all.
func TestZeroUnitJobs(t *testing.T) {
	empty := func(name string) Job {
		return Job{Name: name, Assemble: func(parts []interface{}) (interface{}, error) {
			if len(parts) != 0 {
				return nil, fmt.Errorf("got %d parts", len(parts))
			}
			return name, nil
		}}
	}
	got := runAll(t, 4, []Job{empty("head"), slowFirst("mid", 2), empty("in"), empty("tail")})
	names := make([]string, len(got))
	for i, r := range got {
		names[i] = r.Name
	}
	want := []string{"head", "mid", "in", "tail"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("emit order %v, want %v", names, want)
	}

	if got := runAll(t, 4, nil); len(got) != 0 {
		t.Errorf("no jobs: emitted %d results", len(got))
	}
}

// TestSingle: Single wraps a function as a one-unit job.
func TestSingle(t *testing.T) {
	j := Single("one", 7, func() (interface{}, error) { return "v", nil })
	if len(j.Units) != 1 || j.Units[0].Seed != 7 {
		t.Fatalf("bad job %+v", j)
	}
	v, err := RunSerial(j)
	if err != nil || v != "v" {
		t.Fatalf("RunSerial = %v, %v", v, err)
	}
}

// TestProgress: one line per unit plus a summary, on the progress
// writer only.
func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	e := &Engine{Workers: 2, Progress: &buf}
	if err := e.Run([]Job{slowFirst("p", 3)}, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d progress lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, l := range lines[:3] {
		if !strings.HasPrefix(l, "sweep: [") {
			t.Errorf("unit line %q", l)
		}
	}
	if !strings.Contains(lines[3], "3 units on 2 workers") {
		t.Errorf("summary line %q", lines[3])
	}
}
