package sweep

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// slowFirst builds a job whose first unit finishes last under a
// parallel pool, so emission order is exercised against completion
// order.
func slowFirst(name string, n int) Job {
	units := make([]Unit, n)
	for i := range units {
		i := i
		d := time.Duration(n-i) * time.Millisecond
		units[i] = Unit{
			Name: fmt.Sprintf("%s/u%d", name, i),
			Run: func() (interface{}, error) {
				time.Sleep(d)
				return i * i, nil
			},
		}
	}
	return Job{Name: name, Units: units, Assemble: func(parts []interface{}) (interface{}, error) {
		sum := 0
		for _, p := range parts {
			sum += p.(int)
		}
		return sum, nil
	}}
}

func runAll(t *testing.T, workers int, jobs []Job) []JobResult {
	t.Helper()
	var got []JobResult
	e := &Engine{Workers: workers}
	if err := e.Run(jobs, func(r JobResult) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return got
}

// TestOrderingAcrossWorkerCounts: jobs are emitted in submission order
// with identical values regardless of the worker count, even when unit
// completion order is reversed by construction.
func TestOrderingAcrossWorkerCounts(t *testing.T) {
	mk := func() []Job {
		return []Job{slowFirst("a", 5), slowFirst("b", 3), slowFirst("c", 4)}
	}
	ref := runAll(t, 1, mk())
	if len(ref) != 3 {
		t.Fatalf("got %d results, want 3", len(ref))
	}
	for _, workers := range []int{2, 4, 16} {
		got := runAll(t, workers, mk())
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if got[i].Name != ref[i].Name || !reflect.DeepEqual(got[i].Value, ref[i].Value) ||
				got[i].Units != ref[i].Units {
				t.Errorf("workers=%d job %d: got (%s, %v, %d), want (%s, %v, %d)",
					workers, i, got[i].Name, got[i].Value, got[i].Units,
					ref[i].Name, ref[i].Value, ref[i].Units)
			}
		}
	}
}

// TestRunSerialParity: Engine.Run and RunSerial assemble the same
// values from the same job.
func TestRunSerialParity(t *testing.T) {
	serial, err := RunSerial(slowFirst("p", 4))
	if err != nil {
		t.Fatal(err)
	}
	got := runAll(t, 8, []Job{slowFirst("p", 4)})
	if !reflect.DeepEqual(got[0].Value, serial) {
		t.Errorf("parallel %v != serial %v", got[0].Value, serial)
	}
}

// TestErrorPropagation: the first failing unit's name wraps the error,
// later units are canceled, and no further jobs are emitted.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	var ranLate sync.Mutex
	late := 0
	jobs := []Job{
		{
			Name: "bad",
			Units: []Unit{
				{Name: "bad/ok", Run: func() (interface{}, error) { return 1, nil }},
				{Name: "bad/fail", Run: func() (interface{}, error) { return nil, boom }},
			},
			Assemble: func(parts []interface{}) (interface{}, error) { return parts, nil },
		},
	}
	// Cancellation is best-effort: the stop flag is set by the
	// coordinator after it sees the failure, so a unit already pulled by
	// a worker may still run. With many slow trailing units the flag
	// must land well before the queue drains.
	const trailing = 50
	afterUnits := make([]Unit, trailing)
	for i := range afterUnits {
		afterUnits[i] = Unit{
			Name: fmt.Sprintf("after/u%d", i),
			Run: func() (interface{}, error) {
				time.Sleep(time.Millisecond)
				ranLate.Lock()
				late++
				ranLate.Unlock()
				return 2, nil
			},
		}
	}
	jobs = append(jobs, Job{
		Name:     "after",
		Units:    afterUnits,
		Assemble: func(parts []interface{}) (interface{}, error) { return len(parts), nil },
	})
	var emitted []string
	e := &Engine{Workers: 1}
	err := e.Run(jobs, func(r JobResult) error {
		emitted = append(emitted, r.Name)
		return nil
	})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "bad/fail") {
		t.Errorf("error %q does not name the failing unit", err)
	}
	if len(emitted) != 0 {
		t.Errorf("emitted %v after failure, want none", emitted)
	}
	ranLate.Lock()
	defer ranLate.Unlock()
	if late >= trailing {
		t.Errorf("all %d trailing units ran after the failure, want cancellation", trailing)
	}
}

// TestAssembleError: an assembly failure is reported with the job name.
func TestAssembleError(t *testing.T) {
	j := Job{
		Name:  "asm",
		Units: []Unit{{Name: "asm/u", Run: func() (interface{}, error) { return 1, nil }}},
		Assemble: func(parts []interface{}) (interface{}, error) {
			return nil, errors.New("mismatch")
		},
	}
	e := &Engine{Workers: 2}
	err := e.Run([]Job{j}, nil)
	if err == nil || !strings.Contains(err.Error(), "asm") {
		t.Fatalf("err = %v, want assembly error naming job", err)
	}
}

// TestEmitError: an emit failure stops the sweep and is returned,
// wrapped with the job name exactly like Assemble errors are.
func TestEmitError(t *testing.T) {
	stop := errors.New("emit failed")
	e := &Engine{Workers: 2}
	err := e.Run([]Job{slowFirst("x", 2)}, func(JobResult) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want emit error", err)
	}
	if !strings.Contains(err.Error(), "x:") {
		t.Errorf("emit error %q does not name the job like Assemble errors do", err)
	}
}

// TestMoreWorkersThanUnits: worker count far above the unit count.
func TestMoreWorkersThanUnits(t *testing.T) {
	got := runAll(t, 64, []Job{slowFirst("w", 2)})
	if len(got) != 1 || got[0].Value.(int) != 1 {
		t.Fatalf("got %+v", got)
	}
}

// TestZeroUnitJobs: empty jobs assemble and emit in order, including
// at the head, middle, and tail of the queue, and with no jobs at all.
func TestZeroUnitJobs(t *testing.T) {
	empty := func(name string) Job {
		return Job{Name: name, Assemble: func(parts []interface{}) (interface{}, error) {
			if len(parts) != 0 {
				return nil, fmt.Errorf("got %d parts", len(parts))
			}
			return name, nil
		}}
	}
	got := runAll(t, 4, []Job{empty("head"), slowFirst("mid", 2), empty("in"), empty("tail")})
	names := make([]string, len(got))
	for i, r := range got {
		names[i] = r.Name
	}
	want := []string{"head", "mid", "in", "tail"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("emit order %v, want %v", names, want)
	}

	if got := runAll(t, 4, nil); len(got) != 0 {
		t.Errorf("no jobs: emitted %d results", len(got))
	}
}

// TestSingle: Single wraps a function as a one-unit job.
func TestSingle(t *testing.T) {
	j := Single("one", 7, func() (interface{}, error) { return "v", nil })
	if len(j.Units) != 1 || j.Units[0].Seed != 7 {
		t.Fatalf("bad job %+v", j)
	}
	v, err := RunSerial(j)
	if err != nil || v != "v" {
		t.Fatalf("RunSerial = %v, %v", v, err)
	}
}

// TestProgress: one line per unit plus a summary, on the progress
// writer only.
func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	e := &Engine{Workers: 2, Progress: &buf}
	if err := e.Run([]Job{slowFirst("p", 3)}, nil); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d progress lines, want 4:\n%s", len(lines), buf.String())
	}
	for _, l := range lines[:3] {
		if !strings.HasPrefix(l, "sweep: [") {
			t.Errorf("unit line %q", l)
		}
	}
	if !strings.Contains(lines[3], "3 units on 2 workers") {
		t.Errorf("summary line %q", lines[3])
	}
}

// TestProgressUnderFailure: after a unit fails, the [completed/total]
// counter keeps counting — the failed unit prints a "failed" line and
// canceled units print "skipped" lines, so the numbering never skips.
func TestProgressUnderFailure(t *testing.T) {
	boom := errors.New("boom")
	units := []Unit{
		{Name: "f/fail", Run: func() (interface{}, error) { return nil, boom }},
	}
	const trailing = 30
	for i := 0; i < trailing; i++ {
		units = append(units, Unit{
			Name: fmt.Sprintf("f/u%d", i),
			Run: func() (interface{}, error) {
				time.Sleep(time.Millisecond)
				return 0, nil
			},
		})
	}
	job := Job{Name: "f", Units: units,
		Assemble: func(parts []interface{}) (interface{}, error) { return nil, nil }}

	var buf bytes.Buffer
	e := &Engine{Workers: 1, Progress: &buf}
	if err := e.Run([]Job{job}, nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	out := buf.String()
	total := trailing + 1
	// Every completion number appears exactly once: no gaps in the
	// counter even though most units were canceled.
	for i := 1; i <= total; i++ {
		marker := fmt.Sprintf("[%d/%d]", i, total)
		if strings.Count(out, marker) != 1 {
			t.Errorf("progress counter %s missing or duplicated:\n%s", marker, out)
		}
	}
	if !strings.Contains(out, "f/fail failed: boom") {
		t.Errorf("no failed line for the failing unit:\n%s", out)
	}
	// Cancellation is best-effort, but with 30 slow trailing units on
	// one worker at least one must be skipped after the stop flag lands.
	if !strings.Contains(out, "skipped") {
		t.Errorf("no skipped lines after failure:\n%s", out)
	}
}

// TestEngineObs: the engine publishes unit/job accounting into the
// registry and per-unit events into the tracer.
func TestEngineObs(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer(64)
	e := &Engine{Workers: 2, Obs: reg, Trace: tr}
	jobs := []Job{slowFirst("a", 3), slowFirst("b", 2)}
	if err := e.Run(jobs, func(JobResult) error { return nil }); err != nil {
		t.Fatal(err)
	}
	for name, want := range map[string]int64{
		"units_total":     5,
		"units_completed": 5,
		"units_failed":    0,
		"units_skipped":   0,
		"jobs_emitted":    2,
	} {
		if got := reg.Counter("sweep", name).Value(); got != want {
			t.Errorf("sweep/%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("sweep", "workers").Value(); got != 2 {
		t.Errorf("workers gauge = %d, want 2", got)
	}
	snap := reg.Running("sweep", "unit_seconds").Snapshot()
	if snap.N() != 5 {
		t.Errorf("unit_seconds n = %d, want 5", snap.N())
	}
	var trace bytes.Buffer
	if err := tr.Drain(&trace); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(trace.String(), "unit_start"); got != 5 {
		t.Errorf("unit_start events = %d, want 5:\n%s", got, trace.String())
	}
	if got := strings.Count(trace.String(), "unit_done"); got != 5 {
		t.Errorf("unit_done events = %d, want 5:\n%s", got, trace.String())
	}
}
