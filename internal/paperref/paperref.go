// Package paperref holds numbers published in Saulsbury, Pong &
// Nowatzyk (ISCA'96) that this reproduction uses either as model inputs
// or as comparison targets. Keeping them in one package makes every
// paper-sourced constant auditable: nothing here is measured by our
// simulators.
package paperref

// Table1 reproduces the paper's Table 1: measured SPEC'92 ratings and
// Synopsys run times of the SparcStation 5 and SparcStation 10/61.
type Table1Row struct {
	Machine      string
	SpecInt92    float64
	SpecFp92     float64
	SynopsysMins float64
}

// Table1 rows (SS-5 outperforms the SS-10/61 on the >50 MB workload
// despite the lower SPEC rating — the paper's motivating observation).
var Table1 = []Table1Row{
	{Machine: "SS-5", SpecInt92: 64, SpecFp92: 54.6, SynopsysMins: 32},
	{Machine: "SS-10/61", SpecInt92: 89, SpecFp92: 103, SynopsysMins: 44},
}

// CPI holds one application's CPI decomposition from Tables 3 and 4.
type CPI struct {
	// BaseCPI is the functional-unit ("cpu") component measured by
	// Sun's internal MicroSparc-II simulator with a zero-latency memory
	// system. The paper adds its GSPN-derived memory component to this
	// value; we use it the same way (DESIGN.md substitution 2).
	BaseCPI float64
	// MemNoVictim is the paper's memory CPI component without the
	// victim cache (Table 3).
	MemNoVictim float64
	// TotalVictim is the paper's total CPI with the victim cache
	// (Table 4); the memory component is TotalVictim - BaseCPI.
	TotalVictim float64
	// SpecRatioNoVictim and SpecRatioVictim are the estimated SPEC'95
	// ratios from Tables 3 and 4.
	SpecRatioNoVictim float64
	SpecRatioVictim   float64
	// Alpha21164 is the measured SPEC'95 ratio of the DEC 8200 5/300
	// (Table 4, right column): published hardware data.
	Alpha21164 float64
	// Float marks SPEC'95 floating-point benchmarks.
	Float bool
}

// Tables34 indexes the paper's Tables 3 and 4 by benchmark name.
var Tables34 = map[string]CPI{
	"099.go":       {BaseCPI: 1.01, MemNoVictim: 0.48, TotalVictim: 1.30, SpecRatioNoVictim: 6.0, SpecRatioVictim: 6.9, Alpha21164: 10.1},
	"124.m88ksim":  {BaseCPI: 1.01, MemNoVictim: 0.12, TotalVictim: 1.10, SpecRatioNoVictim: 4.3, SpecRatioVictim: 4.5, Alpha21164: 7.1},
	"126.gcc":      {BaseCPI: 1.01, MemNoVictim: 0.14, TotalVictim: 1.13, SpecRatioNoVictim: 7.6, SpecRatioVictim: 7.8, Alpha21164: 6.7},
	"129.compress": {BaseCPI: 1.03, MemNoVictim: 0.17, TotalVictim: 1.16, SpecRatioNoVictim: 6.4, SpecRatioVictim: 6.6, Alpha21164: 6.8},
	"130.li":       {BaseCPI: 1.02, MemNoVictim: 0.06, TotalVictim: 1.07, SpecRatioNoVictim: 6.7, SpecRatioVictim: 6.8, Alpha21164: 6.8},
	"132.ijpeg":    {BaseCPI: 1.00, MemNoVictim: 0.01, TotalVictim: 1.01, SpecRatioNoVictim: 5.8, SpecRatioVictim: 5.8, Alpha21164: 6.9},
	"134.perl":     {BaseCPI: 1.04, MemNoVictim: 0.21, TotalVictim: 1.21, SpecRatioNoVictim: 6.0, SpecRatioVictim: 6.2, Alpha21164: 8.1},
	"147.vortex":   {BaseCPI: 1.02, MemNoVictim: 0.27, TotalVictim: 1.17, SpecRatioNoVictim: 6.4, SpecRatioVictim: 7.1, Alpha21164: 7.4},

	"101.tomcatv": {Float: true, BaseCPI: 1.15, MemNoVictim: 0.50, TotalVictim: 1.23, SpecRatioNoVictim: 8.2, SpecRatioVictim: 11.1, Alpha21164: 14.0},
	"102.swim":    {Float: true, BaseCPI: 1.56, MemNoVictim: 0.97, TotalVictim: 1.65, SpecRatioNoVictim: 12.7, SpecRatioVictim: 19.5, Alpha21164: 18.3},
	"103.su2cor":  {Float: true, BaseCPI: 1.41, MemNoVictim: 0.44, TotalVictim: 1.51, SpecRatioNoVictim: 3.2, SpecRatioVictim: 3.9, Alpha21164: 7.2},
	"104.hydro2d": {Float: true, BaseCPI: 1.74, MemNoVictim: 0.04, TotalVictim: 1.75, SpecRatioNoVictim: 4.2, SpecRatioVictim: 4.2, Alpha21164: 7.8},
	"107.mgrid":   {Float: true, BaseCPI: 1.20, MemNoVictim: 0.01, TotalVictim: 1.21, SpecRatioNoVictim: 3.2, SpecRatioVictim: 3.2, Alpha21164: 9.1},
	"110.applu":   {Float: true, BaseCPI: 1.53, MemNoVictim: 0.01, TotalVictim: 1.54, SpecRatioNoVictim: 3.9, SpecRatioVictim: 4.0, Alpha21164: 6.5},
	"125.turb3d":  {Float: true, BaseCPI: 1.16, MemNoVictim: 0.05, TotalVictim: 1.20, SpecRatioNoVictim: 4.3, SpecRatioVictim: 4.3, Alpha21164: 10.8},
	"141.apsi":    {Float: true, BaseCPI: 1.70, MemNoVictim: 0.08, TotalVictim: 1.76, SpecRatioNoVictim: 5.0, SpecRatioVictim: 5.1, Alpha21164: 14.5},
	"145.fpppp":   {Float: true, BaseCPI: 1.34, MemNoVictim: 0.08, TotalVictim: 1.42, SpecRatioNoVictim: 7.5, SpecRatioVictim: 7.5, Alpha21164: 21.3},
	"146.wave5":   {Float: true, BaseCPI: 1.31, MemNoVictim: 0.25, TotalVictim: 1.41, SpecRatioNoVictim: 7.6, SpecRatioVictim: 8.4, Alpha21164: 16.8},
}

// SpecCal returns the calibration constant mapping a total CPI to an
// estimated SPEC'95 ratio for the benchmark: ratio = SpecCal/CPI. It is
// derived from Table 4 (ratio × CPI), encapsulating the per-benchmark
// reference time and instruction count we cannot measure ourselves.
func SpecCal(bench string) float64 {
	r, ok := Tables34[bench]
	if !ok {
		return 0
	}
	return r.SpecRatioVictim * r.TotalVictim
}

// Table6 gives the multiprocessor latencies (in 200 MHz processor
// cycles) used by the paper's execution-driven simulations.
var Table6 = struct {
	ColumnBufferHit int // proposed: hit in column buffer
	VictimHit       int // proposed: hit in victim cache
	LocalMemory     int // proposed: access local memory & INC
	InvalidationRT  int // both: invalidation round trip
	RemoteLoad      int // both: load remote data
	FLCHit          int // reference CC-NUMA: first-level cache hit
	SLCHit          int // reference CC-NUMA: second-level cache hit
}{
	ColumnBufferHit: 1,
	VictimHit:       1,
	LocalMemory:     6,
	InvalidationRT:  80,
	RemoteLoad:      80,
	FLCHit:          1,
	SLCHit:          6,
}
