package paperref

import "testing"

func TestTables34Complete(t *testing.T) {
	if len(Tables34) != 18 {
		t.Fatalf("%d benchmarks, want 18 (Tables 3/4)", len(Tables34))
	}
	intCount, fpCount := 0, 0
	for name, r := range Tables34 {
		if r.Float {
			fpCount++
		} else {
			intCount++
		}
		if r.BaseCPI < 1 {
			t.Errorf("%s: base CPI %v < 1", name, r.BaseCPI)
		}
		// Table 4 totals include the base plus a non-negative memory
		// component.
		if r.TotalVictim < r.BaseCPI {
			t.Errorf("%s: victim total %v below base %v", name, r.TotalVictim, r.BaseCPI)
		}
		// The victim cache never makes the memory component larger.
		if r.TotalVictim-r.BaseCPI > r.MemNoVictim+1e-9 {
			t.Errorf("%s: victim memory CPI exceeds no-victim", name)
		}
		if r.SpecRatioVictim < r.SpecRatioNoVictim {
			t.Errorf("%s: victim ratio below no-victim ratio", name)
		}
		if r.Alpha21164 <= 0 {
			t.Errorf("%s: missing Alpha column", name)
		}
	}
	if intCount != 8 || fpCount != 10 {
		t.Errorf("%d integer / %d fp benchmarks, want 8/10", intCount, fpCount)
	}
}

func TestSpecCal(t *testing.T) {
	// go: 6.9 × 1.30 = 8.97.
	if got := SpecCal("099.go"); got < 8.96 || got > 8.98 {
		t.Errorf("SpecCal(go) = %v, want 8.97", got)
	}
	if SpecCal("nonesuch") != 0 {
		t.Error("SpecCal of unknown benchmark must be 0")
	}
}

func TestTable1Published(t *testing.T) {
	if len(Table1) != 2 {
		t.Fatal("Table 1 must have two machines")
	}
	ss5, ss10 := Table1[0], Table1[1]
	if ss5.Machine != "SS-5" || ss10.Machine != "SS-10/61" {
		t.Error("machine names wrong")
	}
	// The paper's central observation encoded in the data.
	if !(ss5.SpecInt92 < ss10.SpecInt92 && ss5.SynopsysMins < ss10.SynopsysMins) {
		t.Error("Table 1 inversion not present in published data")
	}
}

func TestTable6Latencies(t *testing.T) {
	l := Table6
	if l.ColumnBufferHit != 1 || l.VictimHit != 1 || l.LocalMemory != 6 ||
		l.InvalidationRT != 80 || l.RemoteLoad != 80 || l.FLCHit != 1 || l.SLCHit != 6 {
		t.Errorf("Table 6 latencies wrong: %+v", l)
	}
}
