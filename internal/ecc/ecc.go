// Package ecc implements the error-correction layout used by the
// integrated processor/memory device of Saulsbury et al. (ISCA'96).
//
// Two schemes are provided:
//
//   - The industry-standard SECDED code over 64-bit words (8 check bits
//     per word, "(72,64)" Hamming + overall parity), which the paper
//     assumes for a plain DRAM: single-error correction, double-error
//     detection, 12.5% storage overhead.
//
//   - The paper's directory-in-ECC scheme (Section 4.2, Figure 5): the
//     correction granularity is relaxed from one error per 64 bits to
//     one error per 128 bits. A 32-byte coherence block then needs only
//     two (79,128)-style code groups instead of four (72,64) groups,
//     freeing 14 bits per 32-byte block which hold the directory state
//     and node pointer. This avoids any dedicated directory storage.
//
// The SECDED implementation is a real, bit-accurate code: Encode
// computes check bits, Decode corrects any single-bit error (data or
// check bit) and detects double-bit errors.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// CheckBits is the number of ECC bits protecting one 64-bit word in the
// standard scheme: 7 Hamming bits + 1 overall parity.
const CheckBits = 8

// ErrDoubleError reports an uncorrectable (two-bit) error.
var ErrDoubleError = errors.New("ecc: uncorrectable double-bit error")

// hamming64 computes the 7 Hamming check bits for a 64-bit word.
// Check bit i is the parity of all data bits whose (1-based, gapped)
// code position has bit i set. We use the classic construction where
// data bits occupy non-power-of-two positions 1..72.
func hamming64(data uint64) uint8 {
	var check uint8
	pos := 1
	for i := 0; i < 64; i++ {
		// Skip power-of-two positions: they hold check bits.
		for pos&(pos-1) == 0 {
			pos++
		}
		if data&(1<<uint(i)) != 0 {
			check ^= uint8(pos & 0x7f)
		}
		pos++
	}
	return check
}

// overallParity returns the parity over the data word and 7 Hamming bits.
func overallParity(data uint64, h uint8) uint8 {
	p := bits.OnesCount64(data) + bits.OnesCount8(h&0x7f)
	return uint8(p & 1)
}

// Encode returns the 8 check bits for a 64-bit word: bits 0..6 are the
// Hamming syndrome bits, bit 7 is the overall parity (SECDED extension).
func Encode(data uint64) uint8 {
	h := hamming64(data)
	return h | overallParity(data, h)<<7
}

// codePosition maps data-bit index (0..63) to its 1-based position in
// the gapped Hamming codeword (power-of-two positions reserved).
func codePosition(dataBit int) int {
	pos := 1
	for i := 0; ; i++ {
		for pos&(pos-1) == 0 {
			pos++
		}
		if i == dataBit {
			return pos
		}
		pos++
	}
}

// dataBitAt inverts codePosition: given a gapped code position, it
// returns the data-bit index, or -1 if the position holds a check bit.
func dataBitAt(pos int) int {
	if pos <= 0 || pos&(pos-1) == 0 {
		return -1
	}
	i := 0
	p := 1
	for {
		for p&(p-1) == 0 {
			p++
		}
		if p == pos {
			return i
		}
		p++
		i++
	}
}

// Decode checks a (data, check) pair. It returns the corrected data
// word and the number of corrected bits (0 or 1). A double-bit error
// returns ErrDoubleError; the returned data is then unspecified.
func Decode(data uint64, check uint8) (corrected uint64, fixed int, err error) {
	h := hamming64(data)
	syndrome := (h ^ check) & 0x7f
	// A correctly stored word has even parity over data + all 8 check
	// bits (Encode sets bit 7 to make it so); odd total parity means an
	// odd number of bit flips, i.e. a single-bit error somewhere.
	total := bits.OnesCount64(data) + bits.OnesCount8(check)
	parityErr := total%2 != 0

	switch {
	case syndrome == 0 && !parityErr:
		return data, 0, nil
	case syndrome == 0 && parityErr:
		// The overall parity bit itself flipped; data is intact.
		return data, 1, nil
	case syndrome != 0 && parityErr:
		// Single-bit error at code position `syndrome`.
		db := dataBitAt(int(syndrome))
		if db >= 0 {
			return data ^ (1 << uint(db)), 1, nil
		}
		// Error in a Hamming check bit; data is intact.
		return data, 1, nil
	default: // syndrome != 0 && !parityErr
		return data, 0, ErrDoubleError
	}
}

// DirState is the coherence state held in the embedded directory entry.
type DirState uint8

// Directory states for the write-invalidate protocol. The encoding fits
// the 2 bits the paper's 14-bit entry reserves for state.
const (
	DirInvalid DirState = iota // no remote copies; home has only copy
	DirShared                  // one or more read-only remote copies
	DirDirty                   // exactly one remote node holds it modified
	DirGone                    // home copy invalid, data migrated (COMA support)
)

func (s DirState) String() string {
	switch s {
	case DirInvalid:
		return "Invalid"
	case DirShared:
		return "Shared"
	case DirDirty:
		return "Dirty"
	case DirGone:
		return "Gone"
	default:
		return fmt.Sprintf("DirState(%d)", uint8(s))
	}
}

// DirEntry is the paper's 14-bit embedded directory entry for one
// 32-byte coherence block: 2 bits of state plus a 12-bit field that is
// either a node pointer (DirDirty) or a coarse sharing vector.
type DirEntry struct {
	State   DirState
	Pointer uint16 // 12 significant bits
}

// DirEntryBits is the number of ECC bits freed per 32-byte block by
// halving the correction granularity (Section 4.2).
const DirEntryBits = 14

// maxPointer is the largest value the 12-bit pointer field can hold.
const maxPointer = 1<<12 - 1

// Pack encodes the entry into its 14-bit representation.
// It returns an error if the pointer overflows 12 bits.
func (e DirEntry) Pack() (uint16, error) {
	if e.Pointer > maxPointer {
		return 0, fmt.Errorf("ecc: directory pointer %d exceeds 12 bits", e.Pointer)
	}
	if e.State > DirGone {
		return 0, fmt.Errorf("ecc: invalid directory state %d", e.State)
	}
	return uint16(e.State)<<12 | e.Pointer, nil
}

// UnpackDirEntry decodes a 14-bit directory entry.
func UnpackDirEntry(v uint16) DirEntry {
	return DirEntry{State: DirState(v>>12) & 3, Pointer: v & maxPointer}
}

// Overhead describes ECC storage overhead for a protection scheme.
type Overhead struct {
	DataBits  int
	CheckBits int
}

// Percent returns the storage overhead in percent.
func (o Overhead) Percent() float64 {
	return 100 * float64(o.CheckBits) / float64(o.DataBits)
}

// StandardOverhead is the 64-bit-word SECDED scheme: 8 check bits per
// 64 data bits = 12.5% (the paper quotes "a 12% memory-size increase").
func StandardOverhead() Overhead { return Overhead{DataBits: 64, CheckBits: 8} }

// DirectoryOverhead is the relaxed 128-bit-granularity scheme for a
// 32-byte block: 256 data bits protected by two 9-bit SECDED groups
// (2×9=18 check bits), leaving 32-18 = 14 bits of the standard budget
// for the directory entry. Total stored bits are unchanged.
func DirectoryOverhead() Overhead { return Overhead{DataBits: 256, CheckBits: 18} }

// FreedBitsPer32B returns the directory bits gained per 32-byte block
// by switching from StandardOverhead to DirectoryOverhead.
func FreedBitsPer32B() int {
	std := 4 * CheckBits // four 64-bit words per 32B block
	return std - DirectoryOverhead().CheckBits
}
