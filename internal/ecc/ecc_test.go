package ecc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeClean(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xdeadbeef, ^uint64(0), 1 << 63} {
		c := Encode(v)
		got, fixed, err := Decode(v, c)
		if err != nil || fixed != 0 || got != v {
			t.Errorf("Decode(%#x) = %#x, %d, %v", v, got, fixed, err)
		}
	}
}

// TestSingleBitCorrection: every single data-bit flip is corrected.
func TestSingleBitCorrection(t *testing.T) {
	v := uint64(0x0123456789abcdef)
	c := Encode(v)
	for bit := 0; bit < 64; bit++ {
		corrupted := v ^ (1 << uint(bit))
		got, fixed, err := Decode(corrupted, c)
		if err != nil {
			t.Fatalf("bit %d: %v", bit, err)
		}
		if fixed != 1 || got != v {
			t.Errorf("bit %d: got %#x (fixed=%d), want %#x", bit, got, fixed, v)
		}
	}
}

// TestCheckBitCorrection: flips in the stored check bits are detected
// as single-bit errors and the data is returned intact.
func TestCheckBitCorrection(t *testing.T) {
	v := uint64(0xfeedface)
	c := Encode(v)
	for bit := 0; bit < 8; bit++ {
		got, fixed, err := Decode(v, c^(1<<uint(bit)))
		if err != nil {
			t.Fatalf("check bit %d: %v", bit, err)
		}
		if fixed != 1 || got != v {
			t.Errorf("check bit %d: got %#x fixed=%d", bit, got, fixed)
		}
	}
}

// TestDoubleErrorDetected: any two data-bit flips are flagged.
func TestDoubleErrorDetected(t *testing.T) {
	v := uint64(0x5555aaaa12345678)
	c := Encode(v)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		b1 := rng.Intn(64)
		b2 := rng.Intn(64)
		if b1 == b2 {
			continue
		}
		corrupted := v ^ (1 << uint(b1)) ^ (1 << uint(b2))
		_, _, err := Decode(corrupted, c)
		if !errors.Is(err, ErrDoubleError) {
			t.Fatalf("bits %d,%d: err = %v, want ErrDoubleError", b1, b2, err)
		}
	}
}

// TestRoundTripProperty (property): encode/corrupt-one-bit/decode
// recovers the original word for random data.
func TestRoundTripProperty(t *testing.T) {
	f := func(v uint64, bit uint8) bool {
		c := Encode(v)
		corrupted := v ^ (1 << uint(bit%64))
		got, fixed, err := Decode(corrupted, c)
		return err == nil && fixed == 1 && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDirEntryPackUnpack(t *testing.T) {
	for _, e := range []DirEntry{
		{State: DirInvalid, Pointer: 0},
		{State: DirShared, Pointer: 0xabc},
		{State: DirDirty, Pointer: 4095},
		{State: DirGone, Pointer: 1},
	} {
		v, err := e.Pack()
		if err != nil {
			t.Fatalf("Pack(%+v): %v", e, err)
		}
		if v >= 1<<DirEntryBits {
			t.Errorf("Pack(%+v) = %#x exceeds 14 bits", e, v)
		}
		if got := UnpackDirEntry(v); got != e {
			t.Errorf("round trip %+v -> %+v", e, got)
		}
	}
}

func TestDirEntryPackRejectsOverflow(t *testing.T) {
	if _, err := (DirEntry{State: DirShared, Pointer: 1 << 12}).Pack(); err == nil {
		t.Error("Pack accepted a 13-bit pointer")
	}
}

func TestDirEntryPackUnpackProperty(t *testing.T) {
	f := func(s uint8, ptr uint16) bool {
		e := DirEntry{State: DirState(s % 4), Pointer: ptr & 0xfff}
		v, err := e.Pack()
		if err != nil {
			return false
		}
		return UnpackDirEntry(v) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestOverheads pins the paper's storage-overhead arithmetic: 12.5%
// for standard SECDED, and 14 freed bits per 32-byte block when the
// correction granularity is halved (Section 4.2).
func TestOverheads(t *testing.T) {
	if got := StandardOverhead().Percent(); got != 12.5 {
		t.Errorf("standard overhead = %v%%, want 12.5", got)
	}
	if got := FreedBitsPer32B(); got != DirEntryBits {
		t.Errorf("freed bits = %d, want %d", got, DirEntryBits)
	}
}

func TestDirStateString(t *testing.T) {
	if DirShared.String() != "Shared" || DirState(9).String() == "" {
		t.Error("DirState.String misbehaves")
	}
}

// TestCodePositionInverse: codePosition and dataBitAt are inverse maps
// over the gapped Hamming layout, and no data bit lands on a
// power-of-two (check-bit) position.
func TestCodePositionInverse(t *testing.T) {
	seen := map[int]bool{}
	for bit := 0; bit < 64; bit++ {
		pos := codePosition(bit)
		if pos&(pos-1) == 0 {
			t.Fatalf("data bit %d assigned check position %d", bit, pos)
		}
		if seen[pos] {
			t.Fatalf("position %d reused", pos)
		}
		seen[pos] = true
		if got := dataBitAt(pos); got != bit {
			t.Errorf("dataBitAt(codePosition(%d)) = %d", bit, got)
		}
	}
	for _, pos := range []int{0, 1, 2, 4, 8, 16, 32, 64} {
		if dataBitAt(pos) != -1 {
			t.Errorf("check position %d mapped to a data bit", pos)
		}
	}
}
