// Package stackdist implements single-pass multi-configuration cache
// evaluation for the miss-rate studies of Sections 5.2-5.4.
//
// The paper's Figures 7 and 8 sweep cache size × associativity over the
// same reference streams; replaying the trace once per configuration
// costs O(configs × refs). Mattson's classic observation (Mattson,
// Gecsei, Slutz & Traiger, "Evaluation techniques for storage
// hierarchies", IBM Systems Journal 1970) is that LRU obeys an
// inclusion property, so ONE pass that records each reference's LRU
// stack distance yields the exact miss ratio of every fully-associative
// LRU cache size simultaneously. This package provides:
//
//   - Profiler: the exact global LRU stack-distance profiler (a hash
//     map and Fenwick-tree order maintenance over line addresses; the
//     tree makes each distance query O(log n)). Distances
//     are bucketed by powers of two, so the miss ratio of every
//     power-of-two capacity at the profiler's line size follows in
//     closed form from one histogram per reference kind.
//
//   - SetProfiler (setprofiler.go): the set-level extension that makes
//     the direct-mapped and N-way grids of Figures 7/8 come out of the
//     same pass, by tracking exact per-set LRU hit positions for a
//     family of set counts at one line size.
//
// Organisations the profilers cannot express — the victim cache, whose
// contents depend on eviction order, and conditional second-level
// streams — fall back to the per-config replay in internal/cache.
package stackdist

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/stats"
	"repro/internal/trace"
)

// kindCount is the number of trace.Kind values (ifetch, load, store).
const kindCount = 3

// distBuckets bounds the log2-bucketed distance histogram: bucket k
// holds distances in [2^(k-1), 2^k), bucket 0 holds distance 0, so 64
// buckets cover every uint64 distance.
const distBuckets = 65

// Profiler is an exact LRU stack-distance profiler over line addresses.
// Feed it a reference stream with Access; MissCounter then returns the
// exact miss statistics of a fully-associative LRU cache of any
// power-of-two line capacity, all from the single pass.
//
// The order-maintenance structure is a Fenwick tree over access-time
// slots: each resident line occupies the slot of its most recent
// access, and the stack distance of a reference is the number of
// occupied slots newer than the line's previous slot — an O(log n)
// query. Slots are compacted when the slot space fills.
type Profiler struct {
	lineSize  uint64
	lineShift uint
	linePow2  bool

	last map[uint64]int32 // line address -> slot of most recent access
	tree []int32          // Fenwick tree: tree[i] covers occupied slots
	cap  int32            // slot capacity (== len(tree)-1)
	next int32            // next unassigned slot

	hist  [kindCount][distBuckets]int64
	cold  [kindCount]int64 // first-touch references (infinite distance)
	total [kindCount]int64
}

// NewProfiler creates a profiler for the given cache line size.
func NewProfiler(lineSize uint64) *Profiler {
	if lineSize == 0 {
		panic("stackdist: zero line size")
	}
	p := &Profiler{
		lineSize: lineSize,
		linePow2: lineSize&(lineSize-1) == 0,
		last:     make(map[uint64]int32),
	}
	if p.linePow2 {
		p.lineShift = uint(bits.TrailingZeros64(lineSize))
	}
	p.grow(1 << 16)
	return p
}

// grow resets the Fenwick tree to a new slot capacity.
func (p *Profiler) grow(capacity int32) {
	p.cap = capacity
	p.tree = make([]int32, capacity+1)
	p.next = 0
}

// lineOf maps a byte address to its line address.
func (p *Profiler) lineOf(addr uint64) uint64 {
	if p.linePow2 {
		return addr >> p.lineShift
	}
	return addr / p.lineSize
}

// add updates the Fenwick tree at 1-based position pos.
func (p *Profiler) add(pos int32, delta int32) {
	for ; pos <= p.cap; pos += pos & -pos {
		p.tree[pos] += delta
	}
}

// prefix returns the number of occupied slots at 1-based positions
// <= pos.
func (p *Profiler) prefix(pos int32) int32 {
	var s int32
	for ; pos > 0; pos -= pos & -pos {
		s += p.tree[pos]
	}
	return s
}

// Access records one reference.
func (p *Profiler) Access(addr uint64, kind trace.Kind) {
	la := p.lineOf(addr)
	p.total[kind]++
	// Compact before touching any state so the renumbering sees a
	// consistent map/tree pair.
	if p.next == p.cap {
		p.compact()
	}
	if slot, ok := p.last[la]; ok {
		// Stack distance = distinct lines touched since the previous
		// access to this line = occupied slots newer than its slot.
		dist := int64(len(p.last)) - int64(p.prefix(slot+1))
		p.hist[kind][bits.Len64(uint64(dist))]++
		p.add(slot+1, -1)
	} else {
		p.cold[kind]++
	}
	slot := p.next
	p.next++
	p.add(slot+1, 1)
	p.last[la] = slot
}

// compact renumbers the occupied slots densely, preserving recency
// order, and regrows the slot space to at least 4x the resident set so
// compactions stay amortised O(log n) per access.
func (p *Profiler) compact() {
	type entry struct {
		line uint64
		slot int32
	}
	entries := make([]entry, 0, len(p.last))
	for line, slot := range p.last {
		entries = append(entries, entry{line, slot})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].slot < entries[j].slot })
	capacity := int32(4 * len(entries))
	if capacity < 1<<16 {
		capacity = 1 << 16
	}
	p.grow(capacity)
	for i, e := range entries {
		p.last[e.line] = int32(i)
		p.add(int32(i)+1, 1)
	}
	p.next = int32(len(entries))
}

// Footprint returns the number of distinct lines touched so far.
func (p *Profiler) Footprint() int { return len(p.last) }

// LineSize returns the profiler's line size in bytes.
func (p *Profiler) LineSize() uint64 { return p.lineSize }

// MissCounter returns the exact miss statistics a fully-associative
// LRU cache with capacityLines lines (a power of two) would have seen
// for the given reference kind. A reference misses iff its stack
// distance is >= the capacity; first touches always miss.
func (p *Profiler) MissCounter(capacityLines uint64, kind trace.Kind) stats.Counter {
	if capacityLines == 0 || capacityLines&(capacityLines-1) != 0 {
		panic(fmt.Sprintf("stackdist: capacity %d is not a power of two", capacityLines))
	}
	// dist >= 2^m  <=>  bits.Len64(dist) >= m+1.
	m := bits.TrailingZeros64(capacityLines)
	misses := p.cold[kind]
	for b := m + 1; b < distBuckets; b++ {
		misses += p.hist[kind][b]
	}
	return stats.Counter{Events: misses, Total: p.total[kind]}
}

// MissCounterAll returns the combined miss statistics over every
// reference kind for the given fully-associative capacity.
func (p *Profiler) MissCounterAll(capacityLines uint64) stats.Counter {
	var c stats.Counter
	for k := 0; k < kindCount; k++ {
		c.Add(p.MissCounter(capacityLines, trace.Kind(k)))
	}
	return c
}

// Totals returns the per-kind reference count seen so far.
func (p *Profiler) Totals(kind trace.Kind) int64 { return p.total[kind] }

// Ref implements trace.Sink.
func (p *Profiler) Ref(r trace.Ref) { p.Access(r.Addr, r.Kind) }

// Refs implements trace.BatchSink.
func (p *Profiler) Refs(rs []trace.Ref) {
	for i := range rs {
		p.Access(rs[i].Addr, rs[i].Kind)
	}
}
