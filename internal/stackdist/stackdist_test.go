package stackdist

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/trace"
)

// genTraces builds adversarial reference streams: uniform random,
// strided sweeps with aliasing base addresses, loop nests, and
// pointer-chase style re-references. Each exercises a different part
// of the LRU position distribution.
func genTraces(seed int64, n int) map[string][]trace.Ref {
	rng := rand.New(rand.NewSource(seed))
	traces := map[string][]trace.Ref{}

	uniform := make([]trace.Ref, n)
	for i := range uniform {
		uniform[i] = trace.Ref{
			Kind: trace.Kind(rng.Intn(3)),
			Addr: uint64(rng.Intn(1 << 20)),
		}
	}
	traces["uniform"] = uniform

	// Multi-stream strided sweep: bases collide modulo small caches.
	strided := make([]trace.Ref, 0, n)
	for i := 0; len(strided) < n; i++ {
		for s := uint64(0); s < 4; s++ {
			strided = append(strided, trace.Ref{
				Kind: trace.Load,
				Addr: s*(64<<10) + uint64(i)*8,
			})
		}
	}
	traces["strided"] = strided[:n]

	// Loop nest: a hot inner working set plus a cold outer sweep.
	loops := make([]trace.Ref, 0, n)
	for i := 0; len(loops) < n; i++ {
		loops = append(loops, trace.Ref{Kind: trace.Ifetch, Addr: uint64(i%300) * 4})
		if i%3 == 0 {
			loops = append(loops, trace.Ref{Kind: trace.Store, Addr: uint64(i) * 32 % (1 << 18)})
		}
	}
	traces["loops"] = loops[:n]

	// Skewed random: Zipf-ish re-reference pattern.
	skew := make([]trace.Ref, n)
	for i := range skew {
		a := uint64(rng.Intn(1 << uint(8+rng.Intn(12))))
		skew[i] = trace.Ref{Kind: trace.Kind(rng.Intn(3)), Addr: a * 8}
	}
	traces["skew"] = skew

	return traces
}

// fig78Geometries is the full Figure 7/8 grid at 32-byte lines:
// direct-mapped 8..256 KB and 2-way 8..256 KB.
func fig78Geometries() []Geometry {
	var gs []Geometry
	for _, kb := range []int{8, 16, 32, 64, 128, 256} {
		gs = append(gs, Geometry{Sets: uint64(kb) << 10 / 32, Ways: 1})
		gs = append(gs, Geometry{Sets: uint64(kb) << 10 / 64, Ways: 2})
	}
	return gs
}

// TestSetProfilerMatchesReplay is the property-based equivalence test:
// identical random and structured traces through the stack-distance
// path and the per-config SetAssoc replay must produce equal miss
// counts for every size/associativity in the Figure 7/8 grid.
func TestSetProfilerMatchesReplay(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		for name, refs := range genTraces(seed, 20_000) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				geoms := fig78Geometries()
				p := NewSetProfiler(32, geoms)
				replicas := make([]*cache.SetAssoc, len(geoms))
				for i, g := range geoms {
					replicas[i] = cache.NewSetAssoc(
						fmt.Sprintf("replay %d×%d", g.Sets, g.Ways),
						g.Sets*uint64(g.Ways)*32, 32, g.Ways)
				}
				for _, r := range refs {
					p.Access(r.Addr, r.Kind)
					for _, c := range replicas {
						c.Access(r.Addr, r.Kind)
					}
				}
				for i, g := range geoms {
					s := replicas[i].Stats()
					for k, want := range []struct {
						events, total int64
					}{
						{s.Ifetch.Events, s.Ifetch.Total},
						{s.Load.Events, s.Load.Total},
						{s.Store.Events, s.Store.Total},
					} {
						got := p.MissCounter(g.Sets, g.Ways, trace.Kind(k))
						if got.Events != want.events || got.Total != want.total {
							t.Errorf("%d sets × %d ways kind=%v: profiler %d/%d, replay %d/%d",
								g.Sets, g.Ways, trace.Kind(k),
								got.Events, got.Total, want.events, want.total)
						}
					}
				}
			})
		}
	}
}

// TestSetProfilerSharedTracker checks that a DM and a 2-way geometry
// sharing a set count share one tracker and both stay exact.
func TestSetProfilerSharedTracker(t *testing.T) {
	geoms := []Geometry{{Sets: 64, Ways: 1}, {Sets: 64, Ways: 2}}
	p := NewSetProfiler(32, geoms)
	if len(p.Pos) != 1 {
		t.Fatalf("expected 1 merged tracker, got %d", len(p.Pos))
	}
	dm := cache.NewSetAssoc("dm", 64*32, 32, 1)
	tw := cache.NewSetAssoc("2w", 64*2*32, 32, 2)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50_000; i++ {
		a := uint64(rng.Intn(1 << 14))
		p.Access(a, trace.Load)
		dm.Access(a, trace.Load)
		tw.Access(a, trace.Load)
	}
	if got, want := p.MissCounter(64, 1, trace.Load), dm.Stats().Load; got != want {
		t.Errorf("DM: profiler %+v, replay %+v", got, want)
	}
	if got, want := p.MissCounter(64, 2, trace.Load), tw.Stats().Load; got != want {
		t.Errorf("2-way: profiler %+v, replay %+v", got, want)
	}
}

// TestSetProfilerPosRouting checks the Pos side channel used to feed
// the reference system's L2 with first-level misses only.
func TestSetProfilerPosRouting(t *testing.T) {
	p := NewSetProfiler(32, []Geometry{{Sets: 4, Ways: 2}})
	ti := p.TrackerIndex(4)
	if ti != 0 {
		t.Fatalf("TrackerIndex(4) = %d", ti)
	}
	if p.TrackerIndex(999) != -1 {
		t.Error("TrackerIndex should return -1 for unknown set counts")
	}
	p.Access(0x000, trace.Load) // miss
	if p.Pos[ti] != -1 {
		t.Errorf("cold access Pos = %d, want -1", p.Pos[ti])
	}
	p.Access(0x000, trace.Load) // MRU hit
	if p.Pos[ti] != 0 {
		t.Errorf("re-access Pos = %d, want 0", p.Pos[ti])
	}
	p.Access(0x200, trace.Load) // same set (4 sets × 32 B), second way
	p.Access(0x000, trace.Load) // now at LRU position 1
	if p.Pos[ti] != 1 {
		t.Errorf("second-way hit Pos = %d, want 1", p.Pos[ti])
	}
}

// TestAddRepeats checks that collapsing same-line runs is equivalent to
// replaying them.
func TestAddRepeats(t *testing.T) {
	geoms := []Geometry{{Sets: 16, Ways: 2}, {Sets: 64, Ways: 1}}
	full := NewSetProfiler(32, geoms)
	collapsed := NewSetProfiler(32, geoms)
	rng := rand.New(rand.NewSource(11))
	var lastLine uint64 = ^uint64(0)
	for i := 0; i < 30_000; i++ {
		a := uint64(rng.Intn(1 << 12))
		reps := rng.Intn(4)
		full.Access(a, trace.Load)
		collapsed.Access(a, trace.Load)
		lastLine = a >> 5
		for r := 0; r < reps; r++ {
			b := lastLine<<5 + uint64(rng.Intn(32)) // same 32 B line
			full.Access(b, trace.Store)
			collapsed.AddRepeats(trace.Store, 1)
		}
	}
	for _, g := range geoms {
		for k := trace.Ifetch; k <= trace.Store; k++ {
			if got, want := collapsed.MissCounter(g.Sets, g.Ways, k), full.MissCounter(g.Sets, g.Ways, k); got != want {
				t.Errorf("geometry %+v kind %v: collapsed %+v, full %+v", g, k, got, want)
			}
		}
	}
}

// TestProfilerMatchesFullyAssociative checks the Mattson profiler
// against brute-force fully-associative LRU simulation at every
// power-of-two capacity.
func TestProfilerMatchesFullyAssociative(t *testing.T) {
	capacities := []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	for seed := int64(1); seed <= 2; seed++ {
		for name, refs := range genTraces(seed, 10_000) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				p := NewProfiler(32)
				replicas := make([]*cache.SetAssoc, len(capacities))
				for i, c := range capacities {
					// One set, ways == capacity: fully-associative LRU.
					replicas[i] = cache.NewSetAssoc(
						fmt.Sprintf("fa%d", c), c*32, 32, int(c))
				}
				for _, r := range refs {
					p.Access(r.Addr, r.Kind)
					for _, c := range replicas {
						c.Access(r.Addr, r.Kind)
					}
				}
				for i, capacity := range capacities {
					s := replicas[i].Stats()
					var all cache.Stats = s
					want := all.All()
					got := p.MissCounterAll(capacity)
					if got != want {
						t.Errorf("capacity %d: profiler %+v, replay %+v", capacity, got, want)
					}
				}
			})
		}
	}
}

// TestProfilerCompaction forces slot-space compaction and verifies
// exactness across it.
func TestProfilerCompaction(t *testing.T) {
	p := NewProfiler(32)
	p.grow(256) // tiny slot space: compact every few hundred accesses
	fa := cache.NewSetAssoc("fa64", 64*32, 32, 64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20_000; i++ {
		a := uint64(rng.Intn(1 << 13))
		p.Access(a, trace.Load)
		fa.Access(a, trace.Load)
	}
	if got, want := p.MissCounter(64, trace.Load), fa.Stats().Load; got != want {
		t.Errorf("across compaction: profiler %+v, replay %+v", got, want)
	}
	if p.Footprint() == 0 {
		t.Error("footprint should be non-zero")
	}
}

// TestMissCounterPanicsOnBadCapacity documents the power-of-two
// contract.
func TestMissCounterPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two capacity")
		}
	}()
	NewProfiler(32).MissCounter(24, trace.Load)
}

func BenchmarkSetProfilerAccess(b *testing.B) {
	p := NewSetProfiler(32, fig78Geometries())
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(addrs[i&4095], trace.Load)
	}
}

func BenchmarkProfilerAccess(b *testing.B) {
	p := NewProfiler(32)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(addrs[i&4095], trace.Load)
	}
}
