package stackdist

import (
	"fmt"
	"math/bits"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Geometry names one set-associative organisation at the profiler's
// line size: Sets × Ways lines.
type Geometry struct {
	Sets uint64
	Ways int
}

// tracker holds exact per-set LRU state for one set count. tags is
// Sets × Ways line tags, MRU-first within each set; a tag is the line
// address + 1 so that 0 means invalid. hist[kind][p] counts references
// that hit at LRU position p; hist[kind][ways] counts misses. Because
// LRU within a set obeys inclusion over associativity, one tracker at
// ways W answers every organisation with the same set count and
// associativity <= W: an access hitting at position p hits every cache
// with more than p ways.
type tracker struct {
	sets    uint64
	mask    uint64 // sets-1 when sets is a power of two
	setPow2 bool
	ways    int
	tags    []uint64
	hist    [kindCount][]int64
}

// SetProfiler measures every requested set-associative geometry at one
// line size in a single pass over a reference stream. Geometries
// sharing a set count share one tracker at the maximum requested
// associativity, so e.g. the direct-mapped 16 KB and 2-way 32 KB
// points of the Figure 8 grid cost one LRU scan between them.
type SetProfiler struct {
	lineSize  uint64
	lineShift uint
	linePow2  bool
	trackers  []tracker
	index     map[uint64]int // set count -> tracker index

	// Pos holds, per tracker (in TrackerIndex order), the LRU position
	// the latest Access hit at, or -1 on a miss. It lets callers route
	// fall-back structures (the reference system's L2 sees only
	// first-level misses) without a second lookup. Reused across calls;
	// never allocated per access.
	Pos []int8
}

// NewSetProfiler builds a profiler for the given line size covering
// every geometry in geoms.
func NewSetProfiler(lineSize uint64, geoms []Geometry) *SetProfiler {
	if lineSize == 0 {
		panic("stackdist: zero line size")
	}
	p := &SetProfiler{
		lineSize: lineSize,
		linePow2: lineSize&(lineSize-1) == 0,
	}
	if p.linePow2 {
		p.lineShift = uint(bits.TrailingZeros64(lineSize))
	}
	// Merge geometries by set count, keeping the maximum ways.
	maxWays := map[uint64]int{}
	var order []uint64
	for _, g := range geoms {
		if g.Sets == 0 || g.Ways < 1 {
			panic(fmt.Sprintf("stackdist: invalid geometry %+v", g))
		}
		if _, ok := maxWays[g.Sets]; !ok {
			order = append(order, g.Sets)
		}
		if g.Ways > maxWays[g.Sets] {
			maxWays[g.Sets] = g.Ways
		}
	}
	for _, sets := range order {
		ways := maxWays[sets]
		t := tracker{
			sets:    sets,
			setPow2: sets&(sets-1) == 0,
			ways:    ways,
			tags:    make([]uint64, sets*uint64(ways)),
		}
		if t.setPow2 {
			t.mask = sets - 1
		}
		for k := range t.hist {
			t.hist[k] = make([]int64, ways+1)
		}
		p.trackers = append(p.trackers, t)
	}
	p.Pos = make([]int8, len(p.trackers))
	p.index = make(map[uint64]int, len(p.trackers))
	for i := range p.trackers {
		p.index[p.trackers[i].sets] = i
	}
	return p
}

// TrackerIndex returns the index into Pos of the tracker covering the
// given set count, or -1 if no requested geometry uses it. The lookup
// is O(1): design-space families register hundreds of set counts, and
// assembling their statistics probes every one.
func (p *SetProfiler) TrackerIndex(sets uint64) int {
	if i, ok := p.index[sets]; ok {
		return i
	}
	return -1
}

// Trackers returns the number of distinct set counts profiled — the
// per-reference scan cost, and the denominator of the family-sharing
// win: one pass answers every (set count, ways <= tracker ways) point.
func (p *SetProfiler) Trackers() int { return len(p.trackers) }

// MaxWays returns the associativity the tracker for the given set
// count maintains (every ways <= MaxWays is answerable), or 0 if the
// set count is not profiled.
func (p *SetProfiler) MaxWays(sets uint64) int {
	if i, ok := p.index[sets]; ok {
		return p.trackers[i].ways
	}
	return 0
}

// LineSize returns the profiler's line size in bytes.
func (p *SetProfiler) LineSize() uint64 { return p.lineSize }

// Access records one reference in every tracker and updates Pos.
func (p *SetProfiler) Access(addr uint64, kind trace.Kind) {
	var la uint64
	if p.linePow2 {
		la = addr >> p.lineShift
	} else {
		la = addr / p.lineSize
	}
	tag := la + 1
	for ti := range p.trackers {
		t := &p.trackers[ti]
		var set uint64
		if t.setPow2 {
			set = la & t.mask
		} else {
			set = la % t.sets
		}
		w := t.tags[set*uint64(t.ways) : set*uint64(t.ways)+uint64(t.ways)]
		if w[0] == tag {
			// MRU hit: no reordering needed. This is the dominant case
			// on instruction streams and the reason the scan is split.
			t.hist[kind][0]++
			p.Pos[ti] = 0
			continue
		}
		pos := -1
		for i := 1; i < len(w); i++ {
			if w[i] == tag {
				pos = i
				break
			}
		}
		if pos < 0 {
			t.hist[kind][t.ways]++
			p.Pos[ti] = -1
			copy(w[1:], w[:len(w)-1])
			w[0] = tag
			continue
		}
		t.hist[kind][pos]++
		p.Pos[ti] = int8(pos)
		copy(w[1:pos+1], w[:pos])
		w[0] = tag
	}
}

// AddRepeats credits n additional MRU hits of the given kind to every
// tracker without touching LRU state. It is only correct when the
// profiler's previous Access was to the same line as each repeated
// reference (the line is then at the MRU position of its set in every
// tracker, and re-accessing it changes no ordering). Callers use it to
// collapse runs of same-line references — ~7/8 of an instruction
// stream at 32-byte lines — into one counter bump.
func (p *SetProfiler) AddRepeats(kind trace.Kind, n int64) {
	if n == 0 {
		return
	}
	for ti := range p.trackers {
		p.trackers[ti].hist[kind][0] += n
	}
}

// counter derives the miss statistics of the (sets, ways) organisation
// for one kind from the tracker histograms.
func (p *SetProfiler) counter(t *tracker, ways int, kind trace.Kind) stats.Counter {
	var hits, total int64
	for pos, n := range t.hist[kind] {
		total += n
		if pos < ways {
			hits += n
		}
	}
	return stats.Counter{Events: total - hits, Total: total}
}

// MissCounter returns the exact miss statistics the (sets, ways)
// set-associative LRU cache would have accumulated over the profiled
// stream for one reference kind. The geometry must be covered by the
// profiler: its set count registered and ways no larger than the
// tracker's associativity.
func (p *SetProfiler) MissCounter(sets uint64, ways int, kind trace.Kind) stats.Counter {
	ti := p.TrackerIndex(sets)
	if ti < 0 || ways < 1 || ways > p.trackers[ti].ways {
		panic(fmt.Sprintf("stackdist: geometry %d sets × %d ways not profiled", sets, ways))
	}
	return p.counter(&p.trackers[ti], ways, kind)
}

// Ref implements trace.Sink.
func (p *SetProfiler) Ref(r trace.Ref) { p.Access(r.Addr, r.Kind) }

// Refs implements trace.BatchSink.
func (p *SetProfiler) Refs(rs []trace.Ref) {
	for i := range rs {
		p.Access(rs[i].Addr, rs[i].Kind)
	}
}
