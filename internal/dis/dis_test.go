package dis

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/workload"
)

// TestRoundTripAllWorkloads is the tentpole property: every registered
// workload's image disassembles to source that reassembles to a
// byte-identical image. CI repeats this through the actual CLIs.
func TestRoundTripAllWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			if err := RoundTrip(w.Build()); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRoundTripHandwritten covers assembler features the generated
// workloads may not exercise: ragged .byte data, negative offsets,
// every pseudo-op, interior data labels, and symbols past segment end.
func TestRoundTripHandwritten(t *testing.T) {
	srcs := map[string]string{
		"pseudo-ops": `
	main:	li r1, -12345678901
		la r2, buf
		mv r3, r1
		not r4, r3
		neg r5, r4
		call fn
		j out
	fn:	ret
	out:	halt
	.data
	buf:	.space 16, 0xab
	`,
		"every class": `
	main:	add r1, r2, r3
		addi r4, r5, -6
		lui r6, 123
		fsqrt r7, r8
		cvtif r9, r10
		cvtfi r11, r12
		fslt r13, r14, r15
		lb r1, -1(r2)
		lhu r3, 2(r4)
		sd r5, 8(r6)
		sb r7, -3(r8)
		beq r1, r2, main
		bltu r3, r4, 0x1000
		jal r9, main
		jalr r10, r11, 44
		nop
		halt
	`,
		"ragged data": `
	main:	halt
	.data 0x20001
	x:	.byte 1, 2, 3
	y:	.word 0xdeadbeef
	z:	.dword 0xffffffffffffffff
	tail:	.byte 9
	end:
	`,
		"org gaps and align": `
	.text 0x4000
	main:	j tgt
	.org 0x4010
	tgt:	halt
	.data 0x100000
	a:	.dword 1
	.org 0x100100
	b:	.dword 2
	.align 64
	c:	.byte 7
	`,
	}
	for name, src := range srcs {
		src := src
		t.Run(name, func(t *testing.T) {
			p, err := asm.Assemble(src)
			if err != nil {
				t.Fatal(err)
			}
			if err := RoundTrip(p); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDisassembleRecoversLabels: branch and call targets render by
// label name when the symbol exists.
func TestDisassembleRecoversLabels(t *testing.T) {
	p := asm.MustAssemble(`
	main:	li r1, 3
	loop:	addi r1, r1, -1
		bne r1, zero, loop
		call helper
		halt
	helper:	ret
	`)
	src, err := Disassemble(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"loop:", "bne r1, r0, loop", "jal r31, helper", "helper:"} {
		if !strings.Contains(src, want) {
			t.Errorf("disassembly missing %q:\n%s", want, src)
		}
	}
}

// TestNonCanonicalRejected: images the assembler could never have
// produced are errors, not lossy output.
func TestNonCanonicalRejected(t *testing.T) {
	base := func() *isa.Program {
		return &isa.Program{
			Entry:    0x1000,
			CodeBase: 0x1000,
			Code:     []isa.Instr{{Op: isa.OpHalt}},
			Symbols:  map[string]uint64{},
		}
	}
	cases := map[string]func(p *isa.Program){
		"unaligned code base": func(p *isa.Program) { p.CodeBase = 0x1002; p.Entry = 0x1002 },
		"unrepresentable entry": func(p *isa.Program) {
			p.Entry = 0x2000 // no "main" symbol and not the code base
		},
		"entry contradicts main": func(p *isa.Program) { p.Symbols["main"] = 0x1004 },
		"bad symbol name":        func(p *isa.Program) { p.Symbols["no spaces"] = 0x1000 },
		"imm on rrr op": func(p *isa.Program) {
			p.Code[0] = isa.Instr{Op: isa.OpAdd, Rd: 1, Rs1: 2, Rs2: 3, Imm: 7}
		},
		"rs2 on load": func(p *isa.Program) {
			p.Code[0] = isa.Instr{Op: isa.OpLd, Rd: 1, Rs1: 2, Rs2: 3}
		},
		"rd on store": func(p *isa.Program) {
			p.Code[0] = isa.Instr{Op: isa.OpSd, Rd: 1, Rs1: 2, Rs2: 3}
		},
		"operands on halt": func(p *isa.Program) {
			p.Code[0] = isa.Instr{Op: isa.OpHalt, Rd: 1}
		},
		"empty data segment": func(p *isa.Program) {
			p.Data = []isa.Segment{{Base: 0x2000}}
		},
		"adjacent data segments": func(p *isa.Program) {
			p.Data = []isa.Segment{
				{Base: 0x2000, Bytes: []byte{1}},
				{Base: 0x2001, Bytes: []byte{2}},
			}
		},
		"unsorted data segments": func(p *isa.Program) {
			p.Data = []isa.Segment{
				{Base: 0x3000, Bytes: []byte{1}},
				{Base: 0x2000, Bytes: []byte{2}},
			}
		},
		"data span over cap": func(p *isa.Program) {
			p.Data = []isa.Segment{
				{Base: 0x2000, Bytes: []byte{1}},
				{Base: 0x2000 + (1 << 31), Bytes: []byte{2}},
			}
		},
	}
	for name, mutate := range cases {
		mutate := mutate
		t.Run(name, func(t *testing.T) {
			p := base()
			mutate(p)
			if _, err := Disassemble(p); err == nil {
				t.Error("non-canonical program disassembled without error")
			}
		})
	}
}

// TestRoundTripSyntheticSymbols: symbols at arbitrary addresses (end
// of text, inside segments, unaligned, far past all data) survive.
func TestRoundTripSyntheticSymbols(t *testing.T) {
	p := asm.MustAssemble(`
	main:	halt
	.data 0x2000
	x:	.dword 1, 2, 3
	`)
	p.Symbols["text_end"] = p.CodeBase + uint64(len(p.Code))*isa.WordSize
	p.Symbols["interior"] = 0x2008
	p.Symbols["odd"] = 0x2003
	p.Symbols["far"] = 0x90000
	p.Symbols["below"] = 0x10
	if err := RoundTrip(p); err != nil {
		t.Fatal(err)
	}
}
