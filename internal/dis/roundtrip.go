package dis

import (
	"bytes"
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// RoundTrip proves the disassembly of p is exact: it disassembles,
// reassembles, and compares the serialized images byte for byte. A nil
// return means `iramdis | iramasm` reproduces the input image exactly.
func RoundTrip(p *isa.Program) error {
	var orig bytes.Buffer
	if err := isa.WriteImage(&orig, p); err != nil {
		return fmt.Errorf("dis: serializing input: %w", err)
	}
	src, err := Disassemble(p)
	if err != nil {
		return err
	}
	p2, err := asm.Assemble(src)
	if err != nil {
		return fmt.Errorf("dis: reassembly failed: %w", err)
	}
	var re bytes.Buffer
	if err := isa.WriteImage(&re, p2); err != nil {
		return fmt.Errorf("dis: serializing reassembly: %w", err)
	}
	if !bytes.Equal(orig.Bytes(), re.Bytes()) {
		return fmt.Errorf("dis: round trip diverged: %s", describeDiff(p, p2))
	}
	return nil
}

// describeDiff pinpoints the first structural difference between the
// original and reassembled programs for the round-trip error message.
func describeDiff(a, b *isa.Program) string {
	switch {
	case a.Entry != b.Entry:
		return fmt.Sprintf("entry 0x%x != 0x%x", a.Entry, b.Entry)
	case a.CodeBase != b.CodeBase:
		return fmt.Sprintf("code base 0x%x != 0x%x", a.CodeBase, b.CodeBase)
	case len(a.Code) != len(b.Code):
		return fmt.Sprintf("%d instructions != %d", len(a.Code), len(b.Code))
	case len(a.Data) != len(b.Data):
		return fmt.Sprintf("%d data segments != %d", len(a.Data), len(b.Data))
	case len(a.Symbols) != len(b.Symbols):
		return fmt.Sprintf("%d symbols != %d", len(a.Symbols), len(b.Symbols))
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			return fmt.Sprintf("instruction %d: %v != %v", i, a.Code[i], b.Code[i])
		}
	}
	for i := range a.Data {
		if a.Data[i].Base != b.Data[i].Base {
			return fmt.Sprintf("segment %d base 0x%x != 0x%x", i, a.Data[i].Base, b.Data[i].Base)
		}
		if !bytes.Equal(a.Data[i].Bytes, b.Data[i].Bytes) {
			return fmt.Sprintf("segment %d at 0x%x differs (%d vs %d bytes)",
				i, a.Data[i].Base, len(a.Data[i].Bytes), len(b.Data[i].Bytes))
		}
	}
	for name, addr := range a.Symbols {
		if got, ok := b.Symbols[name]; !ok || got != addr {
			return fmt.Sprintf("symbol %q: 0x%x vs 0x%x (present=%v)", name, addr, got, ok)
		}
	}
	return "images differ but programs compare equal (serialization bug?)"
}
