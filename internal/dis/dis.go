// Package dis disassembles an assembled isa.Program back into
// canonical assembly source for internal/asm — the inverse of the
// assembler, mirroring the asm/dis tool split of classic toolchains.
//
// The output is *canonical*: reassembling it produces a Program whose
// serialized image (isa.WriteImage) is byte-for-byte identical to the
// input's. That round-trip property is the correctness proof for both
// tools, and CI enforces it for every registered workload. Programs
// that cannot be represented that way (non-zero operand fields the
// assembler never emits, unsorted or adjacent data segments, an entry
// point that is neither "main" nor the code base, symbol names the
// assembler would reject) are reported as errors rather than
// disassembled lossily.
//
// Layout of the generated source:
//
//	.text 0x<CodeBase>          every instruction, including the nops
//	label:	insn                the assembler uses for .org padding;
//	...                         labels from Symbols within the code
//	                            range annotate their instruction
//	.data 0x<min data address>  segments and out-of-text symbols in
//	...                         ascending address order, with .org
//	                            marking the gaps
//
// Branch and jal targets render as a label when one exists at exactly
// the target address, else as a numeric absolute address.
package dis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// maxBase and maxDataSpan mirror the assembler's base-address cap and
// data-section size cap: programs beyond them would be rejected on
// reassembly, so they are rejected here with a clearer message.
const (
	maxBase     = 1 << 62
	maxDataSpan = 1 << 30
)

// Disassemble renders p as canonical assembly source.
func Disassemble(p *isa.Program) (string, error) {
	if err := validate(p); err != nil {
		return "", err
	}
	textEnd := p.CodeBase + uint64(len(p.Code))*isa.WordSize

	// Partition symbols: labels inside the code range (aligned) go in
	// the text listing; everything else is placed by the data walk.
	textSyms := map[uint64][]string{} // instruction address → names
	var dataSyms []symbol
	for name, addr := range p.Symbols {
		if addr >= p.CodeBase && addr < textEnd && addr%isa.WordSize == 0 {
			textSyms[addr] = append(textSyms[addr], name)
		} else {
			dataSyms = append(dataSyms, symbol{name, addr})
		}
	}
	for _, names := range textSyms {
		sort.Strings(names)
	}
	sort.Slice(dataSyms, func(i, j int) bool {
		if dataSyms[i].addr != dataSyms[j].addr {
			return dataSyms[i].addr < dataSyms[j].addr
		}
		return dataSyms[i].name < dataSyms[j].name
	})

	// Branch/jal targets prefer a label; the alphabetically first name
	// at the target address is the canonical choice.
	labelAt := func(addr uint64) (string, bool) {
		if names := textSyms[addr]; len(names) > 0 {
			return names[0], true
		}
		// Control transfers into the data space are legal (the VM
		// faults at runtime, not the assembler); honour data symbols
		// too so the rendering stays symbolic where possible.
		i := sort.Search(len(dataSyms), func(i int) bool { return dataSyms[i].addr >= addr })
		if i < len(dataSyms) && dataSyms[i].addr == addr {
			return dataSyms[i].name, true
		}
		return "", false
	}

	var b strings.Builder
	fmt.Fprintf(&b, ".text 0x%x\n", p.CodeBase)
	for i, ins := range p.Code {
		addr := p.CodeBase + uint64(i)*isa.WordSize
		for _, name := range textSyms[addr] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		s, err := renderInstr(ins, labelAt)
		if err != nil {
			return "", fmt.Errorf("dis: instruction %d at 0x%x: %w", i, addr, err)
		}
		fmt.Fprintf(&b, "\t%s\n", s)
	}

	if len(p.Data) > 0 || len(dataSyms) > 0 {
		if err := renderData(&b, p.Data, dataSyms); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

type symbol struct {
	name string
	addr uint64
}

// validate rejects programs the canonical rendering cannot represent.
func validate(p *isa.Program) error {
	if p.CodeBase%isa.WordSize != 0 {
		return fmt.Errorf("dis: code base 0x%x not %d-byte aligned", p.CodeBase, isa.WordSize)
	}
	if p.CodeBase > maxBase {
		return fmt.Errorf("dis: code base 0x%x exceeds the assembler's base cap", p.CodeBase)
	}
	if len(p.Code) > 16<<20 {
		return fmt.Errorf("dis: %d instructions exceeds the assembler's text cap", len(p.Code))
	}
	if main, ok := p.Symbols["main"]; ok {
		if p.Entry != main {
			return fmt.Errorf("dis: entry 0x%x does not match the \"main\" symbol 0x%x", p.Entry, main)
		}
	} else if p.Entry != p.CodeBase {
		return fmt.Errorf("dis: entry 0x%x is neither a \"main\" symbol nor the code base 0x%x",
			p.Entry, p.CodeBase)
	}
	for name := range p.Symbols {
		if !isIdent(name) {
			return fmt.Errorf("dis: symbol name %q is not an assembler identifier", name)
		}
	}
	var prevEnd uint64
	for i, seg := range p.Data {
		if len(seg.Bytes) == 0 {
			return fmt.Errorf("dis: data segment %d at 0x%x is empty", i, seg.Base)
		}
		if seg.Base > maxBase {
			return fmt.Errorf("dis: data segment %d base 0x%x exceeds the assembler's base cap", i, seg.Base)
		}
		if i > 0 && seg.Base <= prevEnd {
			// Adjacent segments would coalesce on reassembly and
			// overlapping ones cannot be emitted in address order;
			// the assembler produces neither.
			return fmt.Errorf("dis: data segment %d at 0x%x is not strictly after previous end 0x%x",
				i, seg.Base, prevEnd)
		}
		prevEnd = seg.Base + uint64(len(seg.Bytes))
	}
	return nil
}

// renderInstr produces the canonical operand syntax for one
// instruction, erroring on operand fields the assembler never sets for
// the opcode (their values would be lost on reassembly).
func renderInstr(ins isa.Instr, labelAt func(uint64) (string, bool)) (string, error) {
	requireZero := func(what string, v int64) error {
		if v != 0 {
			return fmt.Errorf("%s has non-canonical %s %d", ins.Op, what, v)
		}
		return nil
	}
	target := func(imm int64) string {
		if imm >= 0 {
			if name, ok := labelAt(uint64(imm)); ok {
				return name
			}
			return fmt.Sprintf("0x%x", uint64(imm))
		}
		return fmt.Sprintf("%d", imm)
	}
	switch ins.Op.Class() {
	case isa.ClassRRR:
		if err := requireZero("immediate", ins.Imm); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s r%d, r%d, r%d", ins.Op, ins.Rd, ins.Rs1, ins.Rs2), nil
	case isa.ClassRRI:
		if err := requireZero("rs2", int64(ins.Rs2)); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s r%d, r%d, %d", ins.Op, ins.Rd, ins.Rs1, ins.Imm), nil
	case isa.ClassRR:
		if err := requireZero("rs2", int64(ins.Rs2)); err != nil {
			return "", err
		}
		if err := requireZero("immediate", ins.Imm); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s r%d, r%d", ins.Op, ins.Rd, ins.Rs1), nil
	case isa.ClassRI:
		if err := requireZero("rs1", int64(ins.Rs1)); err != nil {
			return "", err
		}
		if err := requireZero("rs2", int64(ins.Rs2)); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s r%d, %d", ins.Op, ins.Rd, ins.Imm), nil
	case isa.ClassLoad:
		if err := requireZero("rs2", int64(ins.Rs2)); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s r%d, %d(r%d)", ins.Op, ins.Rd, ins.Imm, ins.Rs1), nil
	case isa.ClassStore:
		if err := requireZero("rd", int64(ins.Rd)); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s r%d, %d(r%d)", ins.Op, ins.Rs2, ins.Imm, ins.Rs1), nil
	case isa.ClassBranch:
		if err := requireZero("rd", int64(ins.Rd)); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s r%d, r%d, %s", ins.Op, ins.Rs1, ins.Rs2, target(ins.Imm)), nil
	case isa.ClassJal:
		if err := requireZero("rs1", int64(ins.Rs1)); err != nil {
			return "", err
		}
		if err := requireZero("rs2", int64(ins.Rs2)); err != nil {
			return "", err
		}
		return fmt.Sprintf("jal r%d, %s", ins.Rd, target(ins.Imm)), nil
	case isa.ClassJalr:
		if err := requireZero("rs2", int64(ins.Rs2)); err != nil {
			return "", err
		}
		return fmt.Sprintf("jalr r%d, r%d, %d", ins.Rd, ins.Rs1, ins.Imm), nil
	default:
		if ins.Op != isa.OpNop && ins.Op != isa.OpHalt {
			return "", fmt.Errorf("opcode %d is not disassemblable", uint8(ins.Op))
		}
		if ins.Rd != 0 || ins.Rs1 != 0 || ins.Rs2 != 0 || ins.Imm != 0 {
			return "", fmt.Errorf("%s has non-canonical operand fields", ins.Op)
		}
		return ins.Op.String(), nil
	}
}

// renderData walks segments and out-of-text symbols in ascending
// address order, moving the location counter with .org across gaps.
// Contiguous byte directives coalesce back into one segment on
// reassembly, so emitting a segment as many lines (and splitting it at
// interior symbol addresses) preserves the exact segment structure.
func renderData(b *strings.Builder, segs []isa.Segment, syms []symbol) error {
	start := uint64(1) << 63
	if len(segs) > 0 {
		start = segs[0].Base
	}
	if len(syms) > 0 && syms[0].addr < start {
		start = syms[0].addr
	}
	end := start
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		end = last.Base + uint64(len(last.Bytes))
	}
	if len(syms) > 0 && syms[len(syms)-1].addr > end {
		end = syms[len(syms)-1].addr
	}
	if start > maxBase {
		return fmt.Errorf("dis: data start 0x%x exceeds the assembler's base cap", start)
	}
	if end-start > maxDataSpan {
		return fmt.Errorf("dis: data spans 0x%x bytes (assembler cap 0x%x)", end-start, uint64(maxDataSpan))
	}
	fmt.Fprintf(b, ".data 0x%x\n", start)
	loc := start
	org := func(to uint64) error {
		if to < loc {
			// Sorted inputs make this impossible for segments; a
			// symbol can only trip it if it precedes `start`, which
			// the start computation rules out.
			return fmt.Errorf("dis: data walk moved backwards from 0x%x to 0x%x", loc, to)
		}
		if to > loc {
			fmt.Fprintf(b, "\t.org 0x%x\n", to)
			loc = to
		}
		return nil
	}
	si := 0
	for _, seg := range segs {
		for si < len(syms) && syms[si].addr < seg.Base {
			if err := org(syms[si].addr); err != nil {
				return err
			}
			fmt.Fprintf(b, "%s:\n", syms[si].name)
			si++
		}
		if err := org(seg.Base); err != nil {
			return err
		}
		end := seg.Base + uint64(len(seg.Bytes))
		cur := seg.Base
		for si < len(syms) && syms[si].addr <= end {
			emitBytes(b, cur, seg.Bytes[cur-seg.Base:syms[si].addr-seg.Base])
			cur = syms[si].addr
			loc = cur
			fmt.Fprintf(b, "%s:\n", syms[si].name)
			si++
		}
		emitBytes(b, cur, seg.Bytes[cur-seg.Base:])
		loc = end
	}
	for si < len(syms) {
		if err := org(syms[si].addr); err != nil {
			return err
		}
		fmt.Fprintf(b, "%s:\n", syms[si].name)
		si++
	}
	return nil
}

// emitBytes renders a byte run starting at addr as .dword directives
// where 8-aligned and .byte directives for the ragged edges.
func emitBytes(b *strings.Builder, addr uint64, bytes []byte) {
	const dwordsPerLine = 4
	const bytesPerLine = 8
	emitByteRun := func(run []byte) {
		for len(run) > 0 {
			n := len(run)
			if n > bytesPerLine {
				n = bytesPerLine
			}
			parts := make([]string, n)
			for i := 0; i < n; i++ {
				parts[i] = fmt.Sprintf("0x%02x", run[i])
			}
			fmt.Fprintf(b, "\t.byte %s\n", strings.Join(parts, ", "))
			run = run[n:]
		}
	}
	// Leading ragged bytes up to 8-byte alignment.
	if r := int(addr % 8); r != 0 {
		n := 8 - r
		if n > len(bytes) {
			n = len(bytes)
		}
		emitByteRun(bytes[:n])
		bytes = bytes[n:]
	}
	for len(bytes) >= 8 {
		n := len(bytes) / 8
		if n > dwordsPerLine {
			n = dwordsPerLine
		}
		parts := make([]string, n)
		for i := 0; i < n; i++ {
			var v uint64
			for j := 7; j >= 0; j-- {
				v = v<<8 | uint64(bytes[i*8+j])
			}
			parts[i] = fmt.Sprintf("0x%x", v)
		}
		fmt.Fprintf(b, "\t.dword %s\n", strings.Join(parts, ", "))
		bytes = bytes[n*8:]
	}
	emitByteRun(bytes)
}

// isIdent matches the assembler's label grammar.
func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
