// Package selftest implements the paper's Section 3 testability
// argument: because the integrated device is a complete system, it can
// be tested by downloading a self-test program over its serial links —
// "this requires just two signal connections in addition to the power
// supply" — instead of a CPU-style or DRAM-style external tester.
//
// The self-test is a real program for the simulated device, assembled
// from generated source: a classic march-C style memory test over a
// configurable window, an ALU/branch verification block, a cache
// exerciser that pushes lines through the column buffers and the
// victim cache, and a checksum that the host verifies. A fault is
// reported with the failing phase.
package selftest

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/trace"
	"repro/internal/vm"
)

// Result reports a self-test run.
type Result struct {
	Passed       bool
	Phase        string // failing phase when !Passed
	Instructions int64
	MemoryBytes  uint64 // memory window exercised
	CacheFills   int64  // column-buffer fills observed
	VictimHits   int64
}

// Config sizes the self-test.
type Config struct {
	// WindowBytes is the memory window marched over (default 64 KiB —
	// a full tester pass over 32 MB is the same loop with a larger
	// constant, exactly as on the real device).
	WindowBytes uint64
	// FaultAddr, when non-zero, injects a stuck-at-zero byte at the
	// given offset inside the window (for testing the tester).
	FaultAddr uint64
}

// phase result codes written by the program into r28.
const (
	codeOK         = 0
	codeALU        = 1
	codeMarchUp    = 2
	codeMarchDn    = 3
	codeChecksum   = 4
	codeChecker    = 5
	codeWalkingOne = 6
)

// source generates the self-test program.
func source(windowBytes uint64) string {
	const base = 0x1000000
	return fmt.Sprintf(`
	.text 0x1000
main:	li r28, %d              # presumed-failing phase: ALU
	# --- phase 1: ALU and branch verification -------------------
	li r1, 41
	addi r1, r1, 1
	li r2, 42
	bne r1, r2, fail
	muli r3, r1, 3
	li r4, 126
	bne r3, r4, fail
	slli r5, r2, 4
	srli r5, r5, 4
	bne r5, r2, fail
	not r6, r0
	addi r6, r6, 1           # -1 + 1 = 0
	bne r6, zero, fail

	# --- phase 2: march up (write address-derived pattern) ------
	li r28, %d
	li r10, 0x%x             # window base
	li r11, %d               # window bytes
	add r12, r10, r11        # end
up:	xori r4, r10, 0x5a5a
	sd r4, 0(r10)
	addi r10, r10, 8
	bne r10, r12, up

	# --- phase 3: march down (verify, then invert) --------------
	li r28, %d
	mv r10, r12
	li r14, 0x%x             # window base
down:	addi r10, r10, -8
	ld r4, 0(r10)
	xori r5, r10, 0x5a5a
	bne r4, r5, fail
	not r4, r4
	sd r4, 0(r10)
	bne r10, r14, down

	# --- phase 4: checksum of the inverted window ---------------
	li r28, %d
	li r10, 0x%x
	li r7, 0
cksum:	ld r4, 0(r10)
	xori r5, r10, 0x5a5a
	not r5, r5
	bne r4, r5, fail
	add r7, r7, r4
	addi r10, r10, 8
	bne r10, r12, cksum

	# --- phase 5: checkerboard (alternating bit pattern) ---------
	li r28, %d
	li r10, 0x%x
	li r20, 0x5555
	muli r20, r20, 0x10001           # 0x55555555
	muli r20, r20, 0x100000001       # 0x5555555555555555
	not r21, r20                     # 0xaaaa...
chkw:	sd r20, 0(r10)
	sd r21, 8(r10)
	addi r10, r10, 16
	bne r10, r12, chkw
	li r10, 0x%x
chkr:	ld r4, 0(r10)
	bne r4, r20, fail
	ld r4, 8(r10)
	bne r4, r21, fail
	addi r10, r10, 16
	bne r10, r12, chkr

	# --- phase 6: walking ones through one word per column -------
	li r28, %d
	li r10, 0x%x
wcol:	li r5, 1
	li r6, 0
wbit:	sd r5, 0(r10)
	ld r4, 0(r10)
	bne r4, r5, fail
	slli r5, r5, 1
	addi r6, r6, 1
	slti r4, r6, 64
	bne r4, zero, wbit
	addi r10, r10, 512               # next column
	bltu r10, r12, wcol

	li r28, %d               # all phases passed
	halt
fail:	halt
`, codeALU, codeMarchUp, base, windowBytes, codeMarchDn, base, codeChecksum, base,
		codeChecker, base, base, codeWalkingOne, base, codeOK)
}

// Run executes the self-test against the device model.
func Run(cfg Config) (*Result, error) {
	if cfg.WindowBytes == 0 {
		cfg.WindowBytes = 64 << 10
	}
	if cfg.WindowBytes%8 != 0 {
		return nil, fmt.Errorf("selftest: window must be a multiple of 8 bytes")
	}
	prog, err := asm.Assemble(source(cfg.WindowBytes))
	if err != nil {
		return nil, fmt.Errorf("selftest: generator bug: %w", err)
	}

	dcache := cache.Proposed()
	sink := trace.SinkFunc(func(r trace.Ref) {
		if r.Kind != trace.Ifetch {
			dcache.Access(r.Addr, r.Kind)
		}
	})
	cpu := vm.New(prog, sink)

	if cfg.FaultAddr != 0 {
		// Inject a stuck-at fault: run the march-up phase normally and
		// corrupt the cell afterwards by intercepting below. Simplest
		// faithful model: pre-poison the cell and re-poison after every
		// store by stepping manually.
		return runWithFault(cpu, cfg, dcache)
	}

	if err := cpu.Run(200_000_000); err != nil {
		return nil, err
	}
	return summarise(cpu, cfg, dcache), nil
}

// runWithFault steps the CPU, forcing the faulty byte to zero after
// every store (a stuck-at-zero cell).
func runWithFault(cpu *vm.CPU, cfg Config, dcache *cache.WithVictim) (*Result, error) {
	const base = 0x1000000
	faulty := base + cfg.FaultAddr
	for i := 0; i < 200_000_000 && !cpu.Halted(); i++ {
		if err := cpu.Step(); err != nil {
			return nil, err
		}
		if cpu.Mem.Load8(faulty) != 0 {
			cpu.Mem.Store8(faulty, 0)
		}
	}
	return summarise(cpu, cfg, dcache), nil
}

func summarise(cpu *vm.CPU, cfg Config, dcache *cache.WithVictim) *Result {
	code := cpu.Regs[28]
	r := &Result{
		Passed:       code == codeOK,
		Instructions: cpu.Instructions,
		MemoryBytes:  cfg.WindowBytes,
		CacheFills:   dcache.Main.Fills,
		VictimHits:   dcache.Vic.Hits,
	}
	switch code {
	case codeOK:
		r.Phase = "complete"
	case codeALU:
		r.Phase = "alu/branch"
	case codeMarchUp:
		r.Phase = "march-up"
	case codeMarchDn:
		r.Phase = "march-down"
	case codeChecksum:
		r.Phase = "checksum"
	case codeChecker:
		r.Phase = "checkerboard"
	case codeWalkingOne:
		r.Phase = "walking-ones"
	default:
		r.Phase = fmt.Sprintf("unknown(%d)", code)
	}
	return r
}
