package selftest

import "testing"

func TestHealthyDevicePasses(t *testing.T) {
	r, err := Run(Config{WindowBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("healthy device failed in phase %q", r.Phase)
	}
	if r.Phase != "complete" {
		t.Errorf("phase = %q", r.Phase)
	}
	if r.Instructions < int64(16<<10/8*3) {
		t.Errorf("suspiciously few instructions: %d", r.Instructions)
	}
	if r.CacheFills == 0 {
		t.Error("the march never touched the column buffers")
	}
}

func TestStuckAtFaultDetected(t *testing.T) {
	r, err := Run(Config{WindowBytes: 16 << 10, FaultAddr: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed {
		t.Fatal("stuck-at-zero cell went undetected")
	}
	verifyPhases := map[string]bool{
		"march-down": true, "checksum": true, "checkerboard": true, "walking-ones": true,
	}
	if !verifyPhases[r.Phase] {
		t.Errorf("fault detected in phase %q, want a verify phase", r.Phase)
	}
}

func TestFaultAtWindowEdge(t *testing.T) {
	r, err := Run(Config{WindowBytes: 16 << 10, FaultAddr: 16<<10 - 8})
	if err != nil {
		t.Fatal(err)
	}
	if r.Passed {
		t.Error("edge fault went undetected")
	}
}

func TestBadWindowRejected(t *testing.T) {
	if _, err := Run(Config{WindowBytes: 13}); err == nil {
		t.Error("unaligned window accepted")
	}
}

func TestDefaultWindow(t *testing.T) {
	r, err := Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r.MemoryBytes != 64<<10 || !r.Passed {
		t.Errorf("default run: %+v", r)
	}
}

func TestWalkingOnesCoversColumns(t *testing.T) {
	r, err := Run(Config{WindowBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Passed {
		t.Fatalf("failed in %q", r.Phase)
	}
	// 6 phases over 8 KiB: the walking-ones phase alone is 64 writes ×
	// 16 columns, so the total must comfortably exceed the march cost.
	if r.Instructions < 8<<10/8*6 {
		t.Errorf("only %d instructions for the full phase set", r.Instructions)
	}
}
